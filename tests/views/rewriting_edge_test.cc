// Edge and budget behavior of the view-rewriting module.
#include <gtest/gtest.h>

#include "automata/words.h"
#include "views/rewriting.h"

namespace rq {
namespace {

class RewritingEdgeTest : public ::testing::Test {
 protected:
  RegexPtr Re(const std::string& text) {
    auto re = ParseRegex(text, &alphabet_);
    RQ_CHECK(re.ok());
    return *re;
  }
  Alphabet alphabet_;
};

TEST_F(RewritingEdgeTest, NoViewsIsAnError) {
  EXPECT_FALSE(MaximalRewriting(*Re("a"), {}, alphabet_).ok());
}

TEST_F(RewritingEdgeTest, StateBudgetIsEnforced) {
  // A query whose DFA has several states and many views force subset
  // growth; with max_states = 1 the construction must fail cleanly.
  std::vector<View> views{{"v0", Re("a")}, {"v1", Re("a a")},
                          {"v2", Re("a a a")}};
  auto rewriting =
      MaximalRewriting(*Re("a (a a)* | a a"), views, alphabet_, 1);
  EXPECT_FALSE(rewriting.ok());
  EXPECT_EQ(rewriting.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(RewritingEdgeTest, EpsilonQueryAcceptsEmptyRewriting) {
  // Q = a*: the empty view word must be in the rewriting (ε ∈ L(Q)).
  std::vector<View> views{{"v", Re("a")}};
  auto rewriting = MaximalRewriting(*Re("a*"), views, alphabet_).value();
  EXPECT_TRUE(rewriting.automaton.Accepts({}));
  EXPECT_TRUE(rewriting.automaton.Accepts({ForwardSymbolOf(0)}));
  auto exact = RewritingIsExact(rewriting, *Re("a*"), views, alphabet_);
  ASSERT_TRUE(exact.ok());
  // a* includes ε, which view concatenations of "a" can produce only via
  // the empty word — the rewriting (v*, including ε) is exact.
  EXPECT_TRUE(*exact);
}

TEST_F(RewritingEdgeTest, EmptyViewLanguageIsHarmless) {
  std::vector<View> views{{"dead", Regex::Empty()}, {"live", Re("a")}};
  auto rewriting = MaximalRewriting(*Re("a a"), views, alphabet_).value();
  EXPECT_FALSE(rewriting.empty);
  Symbol live = ForwardSymbolOf(1);
  EXPECT_TRUE(rewriting.automaton.Accepts({live, live}));
  // Words through the dead view contribute no answers.
  GraphDb db = GraphDb::FromText("x a y\ny a z\n").value();
  Relation answers = AnswerUsingViews(db, rewriting, views).value();
  EXPECT_EQ(answers.size(), 1u);
}

TEST_F(RewritingEdgeTest, OverlappingViewsAllUsable) {
  std::vector<View> views{{"one", Re("a")}, {"two", Re("a a")}};
  auto rewriting = MaximalRewriting(*Re("a a a"), views, alphabet_).value();
  Symbol one = ForwardSymbolOf(0);
  Symbol two = ForwardSymbolOf(1);
  EXPECT_TRUE(rewriting.automaton.Accepts({one, one, one}));
  EXPECT_TRUE(rewriting.automaton.Accepts({one, two}));
  EXPECT_TRUE(rewriting.automaton.Accepts({two, one}));
  EXPECT_FALSE(rewriting.automaton.Accepts({two, two}));
  EXPECT_FALSE(rewriting.automaton.Accepts({one, one}));
}

}  // namespace
}  // namespace rq

#include "views/rewriting.h"

#include <gtest/gtest.h>

#include "automata/containment.h"
#include "automata/words.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "pathquery/path_query.h"

namespace rq {
namespace {

class RewritingTest : public ::testing::Test {
 protected:
  RegexPtr Re(const std::string& text) {
    auto re = ParseRegex(text, &alphabet_);
    RQ_CHECK(re.ok());
    return *re;
  }
  Alphabet alphabet_;
};

TEST_F(RewritingTest, StarQueryOverMatchingView) {
  RegexPtr query = Re("(a b)*");
  std::vector<View> views{{"v1", Re("a b")}};
  auto rewriting = MaximalRewriting(*query, views, alphabet_);
  ASSERT_TRUE(rewriting.ok()) << rewriting.status().ToString();
  EXPECT_FALSE(rewriting->empty);
  // The rewriting is v1*: accepts ε, v1, v1 v1, ...
  Symbol v1 = ForwardSymbolOf(0);
  EXPECT_TRUE(rewriting->automaton.Accepts({}));
  EXPECT_TRUE(rewriting->automaton.Accepts({v1}));
  EXPECT_TRUE(rewriting->automaton.Accepts({v1, v1, v1}));
  auto exact = RewritingIsExact(*rewriting, *query, views, alphabet_);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(*exact);
}

TEST_F(RewritingTest, ChoosesUsableViewsOnly) {
  RegexPtr query = Re("a b c");
  std::vector<View> views{{"ab", Re("a b")},
                          {"c", Re("c")},
                          {"a", Re("a")}};
  auto rewriting = MaximalRewriting(*query, views, alphabet_);
  ASSERT_TRUE(rewriting.ok());
  EXPECT_FALSE(rewriting->empty);
  Symbol ab = ForwardSymbolOf(0);
  Symbol c = ForwardSymbolOf(1);
  Symbol a = ForwardSymbolOf(2);
  EXPECT_TRUE(rewriting->automaton.Accepts({ab, c}));
  EXPECT_FALSE(rewriting->automaton.Accepts({a, c}));  // no "b c" piece
  EXPECT_FALSE(rewriting->automaton.Accepts({ab}));
  auto exact = RewritingIsExact(*rewriting, *query, views, alphabet_);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(*exact);
}

TEST_F(RewritingTest, EmptyWhenViewsCannotCompose) {
  RegexPtr query = Re("a");
  std::vector<View> views{{"aa", Re("a a")}};
  auto rewriting = MaximalRewriting(*query, views, alphabet_);
  ASSERT_TRUE(rewriting.ok());
  EXPECT_TRUE(rewriting->empty);
}

TEST_F(RewritingTest, PartialRewritingIsNotExact) {
  // Views cover only the (a b) branch of the union.
  RegexPtr query = Re("(a b)+ | c");
  std::vector<View> views{{"ab", Re("a b")}};
  auto rewriting = MaximalRewriting(*query, views, alphabet_);
  ASSERT_TRUE(rewriting.ok());
  EXPECT_FALSE(rewriting->empty);
  auto exact = RewritingIsExact(*rewriting, *query, views, alphabet_);
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(*exact);
}

TEST_F(RewritingTest, RejectsTwoWayInputs) {
  RegexPtr query = Re("a-");
  std::vector<View> views{{"v", Re("a")}};
  EXPECT_FALSE(MaximalRewriting(*query, views, alphabet_).ok());
  RegexPtr ok_query = Re("a");
  std::vector<View> bad_views{{"v", Re("a-")}};
  EXPECT_FALSE(MaximalRewriting(*ok_query, bad_views, alphabet_).ok());
}

TEST_F(RewritingTest, RejectsDuplicateViewNames) {
  std::vector<View> views{{"v", Re("a")}, {"v", Re("a a")}};
  EXPECT_FALSE(MaximalRewriting(*Re("a"), views, alphabet_).ok());
}

TEST_F(RewritingTest, SoundnessEveryRewritingWordExpandsIntoQuery) {
  // Property over random instances: enumerate short rewriting words, splice
  // view definitions, and check language containment in Q.
  Rng rng(808);
  alphabet_.InternLabel("a");
  alphabet_.InternLabel("b");
  int nonempty = 0;
  for (int round = 0; round < 25; ++round) {
    RegexPtr query = RandomRegex(alphabet_, 3, false, rng);
    std::vector<View> views{
        {"v0", RandomRegex(alphabet_, 2, false, rng)},
        {"v1", RandomRegex(alphabet_, 2, false, rng)},
    };
    auto rewriting = MaximalRewriting(*query, views, alphabet_);
    ASSERT_TRUE(rewriting.ok());
    if (rewriting->empty) continue;
    ++nonempty;
    uint32_t k = static_cast<uint32_t>(alphabet_.num_symbols());
    Nfa qnfa = query->ToNfa(k);
    for (const auto& w :
         EnumerateAcceptedWords(rewriting->automaton, 3, 10)) {
      // Build the concatenation regex of the views along w.
      std::vector<RegexPtr> parts;
      for (Symbol s : w) parts.push_back(views[SymbolLabel(s)].definition);
      Nfa expansion = Regex::Concat(parts)->ToNfa(k);
      EXPECT_TRUE(CheckLanguageContainment(expansion, qnfa).contained)
          << query->ToString(alphabet_);
    }
  }
  EXPECT_GT(nonempty, 0);
}

TEST_F(RewritingTest, AnswerUsingViewsIsSoundAndExactWhenExact) {
  Rng rng(909);
  alphabet_.InternLabel("a");
  alphabet_.InternLabel("b");
  for (int round = 0; round < 20; ++round) {
    RegexPtr query = RandomRegex(alphabet_, 3, false, rng);
    std::vector<View> views{
        {"v0", RandomRegex(alphabet_, 2, false, rng)},
        {"v1", RandomRegex(alphabet_, 2, false, rng)},
        {"v2", Re("a")},
        {"v3", Re("b")},
    };
    auto rewriting = MaximalRewriting(*query, views, alphabet_);
    ASSERT_TRUE(rewriting.ok());
    auto exact = RewritingIsExact(*rewriting, *query, views, alphabet_);
    ASSERT_TRUE(exact.ok());
    // With the single-letter views v2, v3 present, every one-way query is
    // exactly rewritable.
    EXPECT_TRUE(*exact) << query->ToString(alphabet_);
    GraphDb db = RandomGraph(8, 16, {"a", "b"}, rng.Next());
    Relation via_views = AnswerUsingViews(db, *rewriting, views).value();
    Relation direct(2);
    for (const auto& [x, y] : EvalPathQuery(db, *query)) {
      direct.Insert({x, y});
    }
    EXPECT_EQ(via_views.SortedTuples(), direct.SortedTuples())
        << query->ToString(alphabet_);
  }
}

TEST_F(RewritingTest, AnswerUsingViewsSoundOnPartialViews) {
  RegexPtr query = Re("(a b)+ | b");
  std::vector<View> views{{"ab", Re("a b")}};
  auto rewriting = MaximalRewriting(*query, views, alphabet_);
  ASSERT_TRUE(rewriting.ok());
  GraphDb db = RandomGraph(10, 25, {"a", "b"}, 4242);
  Relation via_views = AnswerUsingViews(db, *rewriting, views).value();
  Relation direct(2);
  for (const auto& [x, y] : EvalPathQuery(db, *query)) {
    direct.Insert({x, y});
  }
  for (const Tuple& t : via_views.tuples()) {
    EXPECT_TRUE(direct.Contains(t));  // sound, possibly incomplete
  }
}

}  // namespace
}  // namespace rq

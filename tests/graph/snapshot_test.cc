#include "graph/snapshot.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "graph/graph_db.h"

namespace rq {
namespace {

std::vector<NodeId> ToVec(std::span<const NodeId> s) {
  return std::vector<NodeId>(s.begin(), s.end());
}

TEST(GraphSnapshotTest, ForwardAndInverseBuckets) {
  GraphDb db;
  db.EnsureNodes(4);
  db.AddEdge(0, "r", 1);
  db.AddEdge(0, "r", 2);
  db.AddEdge(2, "r", 1);
  db.AddEdge(1, "s", 3);
  GraphSnapshotPtr snap = db.Snapshot();

  const Symbol r = ForwardSymbolOf(0);
  const Symbol r_inv = InverseSymbolOf(0);
  const Symbol s = ForwardSymbolOf(1);
  EXPECT_EQ(snap->num_nodes(), 4u);
  EXPECT_EQ(snap->num_symbols(), 4u);
  EXPECT_EQ(snap->num_edges(), 4u);
  EXPECT_EQ(ToVec(snap->Successors(0, r)), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(ToVec(snap->Successors(1, r_inv)), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(ToVec(snap->Successors(1, s)), (std::vector<NodeId>{3}));
  EXPECT_EQ(ToVec(snap->Successors(3, InverseSymbolOf(1))),
            (std::vector<NodeId>{1}));
  EXPECT_TRUE(snap->Successors(3, r).empty());
  EXPECT_EQ(snap->OutDegree(0, r), 2u);
}

TEST(GraphSnapshotTest, DuplicateEdgesDeduplicate) {
  GraphDb db;
  db.EnsureNodes(2);
  db.AddEdge(0, "r", 1);
  db.AddEdge(0, "r", 1);
  db.AddEdge(0, "r", 1);
  GraphSnapshotPtr snap = db.Snapshot();
  EXPECT_EQ(ToVec(snap->Successors(0, ForwardSymbolOf(0))),
            (std::vector<NodeId>{1}));
  EXPECT_EQ(ToVec(snap->Successors(1, InverseSymbolOf(0))),
            (std::vector<NodeId>{0}));
}

TEST(GraphSnapshotTest, OutOfRangeNodeOrSymbolIsEmpty) {
  GraphDb db;
  db.EnsureNodes(2);
  db.AddEdge(0, "r", 1);
  GraphSnapshotPtr snap = db.Snapshot();
  EXPECT_TRUE(snap->Successors(99, ForwardSymbolOf(0)).empty());
  // A label interned after the snapshot (or any out-of-range symbol) has
  // no edges in the frozen arrays: empty, not UB.
  EXPECT_TRUE(snap->Successors(0, ForwardSymbolOf(7)).empty());
}

TEST(GraphSnapshotTest, SnapshotIsImmutableUnderLaterWrites) {
  GraphDb db;
  db.EnsureNodes(3);
  db.AddEdge(0, "r", 1);
  GraphSnapshotPtr before = db.Snapshot();
  std::span<const NodeId> succ = before->Successors(0, ForwardSymbolOf(0));

  db.AddEdge(0, "r", 2);
  db.AddEdge(1, "r", 2);
  GraphSnapshotPtr after = db.Snapshot();

  // The old snapshot (and spans into it) still reflect the old graph.
  EXPECT_EQ(ToVec(succ), (std::vector<NodeId>{1}));
  EXPECT_EQ(ToVec(before->Successors(0, ForwardSymbolOf(0))),
            (std::vector<NodeId>{1}));
  EXPECT_EQ(ToVec(after->Successors(0, ForwardSymbolOf(0))),
            (std::vector<NodeId>{1, 2}));
}

TEST(GraphSnapshotTest, SpanOutlivesOriginatingGraphDb) {
  GraphSnapshotPtr snap;
  {
    GraphDb db;
    db.EnsureNodes(2);
    db.AddEdge(0, "r", 1);
    snap = db.Snapshot();
  }  // db destroyed; the snapshot owns its arrays.
  EXPECT_EQ(ToVec(snap->Successors(0, ForwardSymbolOf(0))),
            (std::vector<NodeId>{1}));
}

TEST(GraphSnapshotTest, SymbolPairsMatchesGraphDbScan) {
  GraphDb db = RandomGraph(40, 200, {"a", "b", "c"}, /*seed=*/7);
  GraphSnapshotPtr snap = db.Snapshot();
  for (uint32_t label = 0; label < db.alphabet().num_labels(); ++label) {
    for (Symbol sym : {ForwardSymbolOf(label), InverseSymbolOf(label)}) {
      EXPECT_EQ(snap->SymbolPairs(sym), db.SymbolPairs(sym))
          << "symbol " << sym;
    }
  }
}

TEST(GraphSnapshotTest, SuccessorsMatchesGraphDbScanOnRandomGraph) {
  GraphDb db = RandomGraph(30, 150, {"a", "b"}, /*seed=*/11);
  GraphSnapshotPtr snap = db.Snapshot();
  for (NodeId n = 0; n < db.num_nodes(); ++n) {
    for (Symbol sym = 0; sym < db.alphabet().num_symbols(); ++sym) {
      EXPECT_EQ(ToVec(snap->Successors(n, sym)), db.Successors(n, sym))
          << "node " << n << " symbol " << sym;
    }
  }
}

TEST(GraphSnapshotTest, EmptyGraph) {
  GraphDb db;
  GraphSnapshotPtr snap = db.Snapshot();
  EXPECT_EQ(snap->num_nodes(), 0u);
  EXPECT_EQ(snap->num_edges(), 0u);
  EXPECT_TRUE(snap->Successors(0, 0).empty());
}

TEST(GraphDbTest, FindNodeHeterogeneousLookup) {
  GraphDb db;
  NodeId alice = db.AddNamedNode("alice");
  // string_view lookup without constructing a std::string at the call
  // site; also via const char* and std::string.
  std::string_view sv = "alice";
  EXPECT_EQ(db.FindNode(sv).value(), alice);
  EXPECT_EQ(db.FindNode("alice").value(), alice);
  EXPECT_EQ(db.FindNode(std::string("alice")).value(), alice);
  EXPECT_FALSE(db.FindNode("bob").ok());
  // AddNamedNode finds the existing entry through the same transparent map.
  EXPECT_EQ(db.AddNamedNode(sv), alice);
}

}  // namespace
}  // namespace rq

#include "graph/graph_db.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace rq {
namespace {

TEST(GraphDbTest, AddNodesAndEdges) {
  GraphDb db;
  NodeId a = db.AddNamedNode("alice");
  NodeId b = db.AddNamedNode("bob");
  db.AddEdge(a, "knows", b);
  EXPECT_EQ(db.num_nodes(), 2u);
  EXPECT_EQ(db.num_edges(), 1u);
  EXPECT_EQ(db.NodeName(a), "alice");
  EXPECT_EQ(db.AddNamedNode("alice"), a);  // idempotent
  EXPECT_TRUE(db.FindNode("bob").ok());
  EXPECT_FALSE(db.FindNode("carol").ok());
}

TEST(GraphDbTest, SuccessorsForwardAndBackward) {
  GraphDb db;
  NodeId a = db.AddNode();
  NodeId b = db.AddNode();
  NodeId c = db.AddNode();
  uint32_t e = db.alphabet().InternLabel("e");
  db.AddEdge(a, e, b);
  db.AddEdge(a, e, c);
  EXPECT_EQ(db.Successors(a, ForwardSymbolOf(e)),
            (std::vector<NodeId>{b, c}));
  EXPECT_TRUE(db.Successors(b, ForwardSymbolOf(e)).empty());
  EXPECT_EQ(db.Successors(b, InverseSymbolOf(e)), (std::vector<NodeId>{a}));
  EXPECT_EQ(db.Successors(c, InverseSymbolOf(e)), (std::vector<NodeId>{a}));
}

TEST(GraphDbTest, IndexRebuildsAfterMutation) {
  GraphDb db;
  NodeId a = db.AddNode();
  NodeId b = db.AddNode();
  uint32_t e = db.alphabet().InternLabel("e");
  db.AddEdge(a, e, b);
  EXPECT_EQ(db.Successors(a, ForwardSymbolOf(e)).size(), 1u);
  NodeId c = db.AddNode();
  db.AddEdge(a, e, c);
  EXPECT_EQ(db.Successors(a, ForwardSymbolOf(e)).size(), 2u);
}

TEST(GraphDbTest, SymbolPairsRespectsDirection) {
  GraphDb db;
  NodeId a = db.AddNode();
  NodeId b = db.AddNode();
  uint32_t e = db.alphabet().InternLabel("e");
  db.AddEdge(a, e, b);
  EXPECT_EQ(db.SymbolPairs(ForwardSymbolOf(e)),
            (std::vector<std::pair<NodeId, NodeId>>{{a, b}}));
  EXPECT_EQ(db.SymbolPairs(InverseSymbolOf(e)),
            (std::vector<std::pair<NodeId, NodeId>>{{b, a}}));
}

TEST(GraphDbTest, TextRoundTrip) {
  GraphDb db;
  NodeId a = db.AddNamedNode("a");
  NodeId b = db.AddNamedNode("b");
  NodeId c = db.AddNamedNode("c");
  db.AddEdge(a, "knows", b);
  db.AddEdge(b, "likes", c);
  std::string text = db.ToText();
  auto restored = GraphDb::FromText(text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_nodes(), 3u);
  EXPECT_EQ(restored->num_edges(), 2u);
  EXPECT_EQ(restored->ToText(), text);
}

TEST(GraphDbTest, FromTextRejectsMalformedLines) {
  EXPECT_FALSE(GraphDb::FromText("a knows").ok());
  EXPECT_FALSE(GraphDb::FromText("a knows b extra").ok());
  EXPECT_TRUE(GraphDb::FromText("# comment\n\na knows b\n").ok());
}

TEST(GeneratorsTest, PathAndCycleShapes) {
  GraphDb path = PathGraph(5, "e");
  EXPECT_EQ(path.num_nodes(), 5u);
  EXPECT_EQ(path.num_edges(), 4u);
  GraphDb cycle = CycleGraph(5, "e");
  EXPECT_EQ(cycle.num_edges(), 5u);
}

TEST(GeneratorsTest, GridHasRightAndDownEdges) {
  GraphDb grid = GridGraph(3, 2);
  EXPECT_EQ(grid.num_nodes(), 6u);
  // right edges: 2 per row * 2 rows = 4; down edges: 3.
  EXPECT_EQ(grid.num_edges(), 7u);
}

TEST(GeneratorsTest, RandomGraphIsDeterministicPerSeed) {
  GraphDb g1 = RandomGraph(20, 40, {"a", "b"}, 42);
  GraphDb g2 = RandomGraph(20, 40, {"a", "b"}, 42);
  GraphDb g3 = RandomGraph(20, 40, {"a", "b"}, 43);
  EXPECT_EQ(g1.ToText(), g2.ToText());
  EXPECT_NE(g1.ToText(), g3.ToText());
}

TEST(GeneratorsTest, LayeredDagEdgesGoForwardOneLayer) {
  GraphDb dag = LayeredDag(4, 5, 8, {"f"}, 7);
  for (const Edge& e : dag.edges()) {
    EXPECT_EQ(e.dst / 5, e.src / 5 + 1);
  }
}

TEST(GeneratorsTest, SocialNetworkHasAllLabelKinds) {
  GraphDb net = SocialNetwork(50, 5, 30, 11);
  EXPECT_TRUE(net.alphabet().FindLabel("knows").ok());
  EXPECT_TRUE(net.alphabet().FindLabel("member").ok());
  EXPECT_TRUE(net.alphabet().FindLabel("posted").ok());
  EXPECT_TRUE(net.alphabet().FindLabel("likes").ok());
  EXPECT_GT(net.num_edges(), 50u);
}

TEST(GeneratorsTest, AppendSemipathOrientation) {
  GraphDb db;
  Symbol a = db.alphabet().InternForward("a");
  SemipathEndpoints fwd = AppendSemipath(&db, {a});
  EXPECT_EQ(db.Successors(fwd.start, a), (std::vector<NodeId>{fwd.end}));
  SemipathEndpoints bwd = AppendSemipath(&db, {InverseSymbol(a)});
  EXPECT_EQ(db.Successors(bwd.end, a), (std::vector<NodeId>{bwd.start}));
}

}  // namespace
}  // namespace rq

// ThreadSanitizer regression tests for the snapshot evaluation contract.
//
// The seed implementation kept a lazily-rebuilt adjacency index inside
// GraphDb: the first const Successors() call after an AddEdge mutated
// shared state, so concurrent readers raced (and a returned reference
// could dangle after the next AddEdge). These tests pin down the fixed
// design: readers share one immutable GraphSnapshot, completely decoupled
// from later GraphDb writes. They run in the `tsan` ctest label so the
// tsan preset executes them under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "graph/snapshot.h"
#include "pathquery/path_query.h"

namespace rq {
namespace {

TEST(SnapshotConcurrencyTest, ManyThreadsQueryOneSharedSnapshot) {
  GraphDb db = RandomGraph(60, 400, {"a", "b", "c"}, /*seed=*/17);
  auto q = ParsePathQuery("a (b | c-)* a-", &db.alphabet());
  ASSERT_TRUE(q.ok());
  const Nfa nfa =
      q->regex->ToNfa(static_cast<uint32_t>(db.alphabet().num_symbols()))
          .WithoutEpsilons();
  const GraphSnapshotPtr snapshot = db.Snapshot();

  // Serial ground truth, one per source.
  std::vector<std::vector<NodeId>> expected;
  for (NodeId src = 0; src < snapshot->num_nodes(); ++src) {
    expected.push_back(EvalPathQueryFrom(*snapshot, nfa, src));
  }

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks every source, offset so threads collide on the
      // same CSR rows at different times.
      const size_t n = snapshot->num_nodes();
      for (size_t i = 0; i < n; ++i) {
        NodeId src = static_cast<NodeId>((i + t * 7) % n);
        if (EvalPathQueryFrom(*snapshot, nfa, src) != expected[src]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  threads.clear();  // join
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SnapshotConcurrencyTest, ReadersAreImmuneToWriterMutation) {
  GraphDb db = RandomGraph(40, 200, {"a", "b"}, /*seed=*/23);
  auto q = ParsePathQuery("(a b-)* a", &db.alphabet());
  ASSERT_TRUE(q.ok());
  const Nfa nfa =
      q->regex->ToNfa(static_cast<uint32_t>(db.alphabet().num_symbols()))
          .WithoutEpsilons();
  const GraphSnapshotPtr snapshot = db.Snapshot();
  const std::vector<NodeId> expected = EvalPathQueryFrom(*snapshot, nfa, 0);

  // Readers hammer the frozen snapshot while this thread keeps mutating
  // the GraphDb and taking fresh snapshots. Under the seed's lazy index
  // this interleaving was a data race; with immutable snapshots the
  // readers never observe the writes at all.
  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::jthread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (EvalPathQueryFrom(*snapshot, nfa, 0) != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    NodeId n = db.AddNode();
    db.AddEdge(n, "a", static_cast<NodeId>(round % 40));
    GraphSnapshotPtr fresh = db.Snapshot();
    EXPECT_EQ(fresh->num_nodes(), 40u + round + 1);
  }
  stop.store(true);
  readers.clear();  // join
  EXPECT_EQ(mismatches.load(), 0);
}

// The aliasing contract in graph/graph_db.h (load-bearing for live
// mutations, docs/SERVING.md "Updates"): a snapshot shares no storage with
// its GraphDb, so AddEdge after Snapshot() never invalidates memory a live
// snapshot reads — even when the writer appends into the very rows the
// readers iterate and re-snapshots per batch, the way the server's graph
// store does.
TEST(SnapshotConcurrencyTest, WriterAppendsToRowsReadersIterate) {
  GraphDb db = RandomGraph(30, 150, {"a", "b"}, /*seed=*/41);
  const GraphSnapshotPtr snapshot = db.Snapshot();
  const Symbol fwd_a = db.alphabet().InternForward("a");

  // Per-row serial ground truth over the frozen snapshot.
  std::vector<size_t> expected;
  for (NodeId n = 0; n < snapshot->num_nodes(); ++n) {
    expected.push_back(snapshot->Successors(n, fwd_a).size());
  }

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::jthread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (NodeId n = 0; n < snapshot->num_nodes(); ++n) {
          if (snapshot->Successors(n, fwd_a).size() != expected[n]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  // Writer: extend exactly the rows the readers walk, re-snapshotting
  // once per small batch like GraphStore::Apply does.
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 4; ++i) {
      db.AddEdge(static_cast<NodeId>((round + i) % 30), "a",
                 static_cast<NodeId>((round * 7 + i) % 30));
    }
    GraphSnapshotPtr fresh = db.Snapshot();
    EXPECT_GT(fresh->Successors(static_cast<NodeId>(round % 30), fwd_a).size(),
              0u);
  }
  stop.store(true);
  readers.clear();  // join
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SnapshotConcurrencyTest, ParallelMultiSourceMatchesSerial) {
  GraphDb db = RandomGraph(80, 600, {"a", "b", "c"}, /*seed=*/31);
  auto q = ParsePathQuery("a+ (b | c)*", &db.alphabet());
  ASSERT_TRUE(q.ok());
  const Nfa nfa =
      q->regex->ToNfa(static_cast<uint32_t>(db.alphabet().num_symbols()))
          .WithoutEpsilons();
  const GraphSnapshotPtr snapshot = db.Snapshot();
  std::vector<NodeId> sources;
  for (NodeId n = 0; n < snapshot->num_nodes(); ++n) sources.push_back(n);

  const auto serial = EvalPathQueryFromSources(*snapshot, nfa, sources,
                                               PathEvalOptions{.jobs = 1});
  const auto parallel = EvalPathQueryFromSources(*snapshot, nfa, sources,
                                                 PathEvalOptions{.jobs = 8});
  EXPECT_EQ(parallel, serial);
}

}  // namespace
}  // namespace rq

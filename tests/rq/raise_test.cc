#include "rq/raise.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "pathquery/path_query.h"
#include "rq/eval.h"
#include "rq/lower.h"

namespace rq {
namespace {

TEST(RaiseTest, AtomAndInverse) {
  Alphabet alphabet;
  alphabet.InternLabel("r");
  uint32_t next = 2;
  auto fwd = RaiseRegexToRq(*ParseRegex("r", &alphabet).value(), 0, 1,
                            alphabet, &next);
  ASSERT_TRUE(fwd.has_value());
  EXPECT_EQ((*fwd)->ToString(), "r(v0, v1)");
  auto inv = RaiseRegexToRq(*ParseRegex("r-", &alphabet).value(), 0, 1,
                            alphabet, &next);
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ((*inv)->ToString(), "r(v1, v0)");
}

TEST(RaiseTest, PlusBecomesClosure) {
  Alphabet alphabet;
  alphabet.InternLabel("r");
  uint32_t next = 2;
  auto raised = RaiseRegexToRq(*ParseRegex("r+", &alphabet).value(), 0, 1,
                               alphabet, &next);
  ASSERT_TRUE(raised.has_value());
  EXPECT_EQ((*raised)->kind(), RqExpr::Kind::kClosure);
}

TEST(RaiseTest, NullableExpressionsFail) {
  Alphabet alphabet;
  alphabet.InternLabel("r");
  uint32_t next = 2;
  EXPECT_FALSE(RaiseRegexToRq(*ParseRegex("r*", &alphabet).value(), 0, 1,
                              alphabet, &next)
                   .has_value());
  EXPECT_FALSE(RaiseRegexToRq(*ParseRegex("r?", &alphabet).value(), 0, 1,
                              alphabet, &next)
                   .has_value());
  EXPECT_FALSE(RaiseRegexToRq(*Regex::Epsilon(), 0, 1, alphabet, &next)
                   .has_value());
}

TEST(RaiseTest, RaisedRegexEvaluatesLikePathQuery) {
  Rng rng(272727);
  Alphabet scratch;
  scratch.InternLabel("a");
  scratch.InternLabel("b");
  int raised_count = 0;
  for (int round = 0; round < 40; ++round) {
    GraphDb graph = RandomGraph(8, 18, {"a", "b"}, rng.Next());
    RegexPtr re = RandomRegex(graph.alphabet(), 3, true, rng);
    uint32_t next = 2;
    auto raised =
        RaiseRegexToRq(*re, 0, 1, graph.alphabet(), &next);
    if (!raised.has_value()) continue;  // nullable subexpression
    ++raised_count;
    RqQuery query;
    query.root = *raised;
    query.head = {0, 1};
    Relation via_rq = EvalRqQuery(GraphToDatabase(graph), query).value();
    Relation via_path(2);
    for (const auto& [x, y] : EvalPathQuery(graph, *re)) {
      via_path.Insert({x, y});
    }
    EXPECT_EQ(via_rq.SortedTuples(), via_path.SortedTuples())
        << re->ToString(graph.alphabet());
  }
  EXPECT_GT(raised_count, 5);
}

TEST(RaiseTest, Uc2RpqRoundTripThroughRq) {
  // Raise a UC2RPQ to RQ, evaluate both, and lower back.
  Alphabet alphabet;
  auto query = ParseUc2Rpq(
      "q(x, y) :- (knows knows)(x, y), (likes+)(x, g)\n"
      "q(x, y) :- (knows)(x, y), (likes)(y, g)\n",
      &alphabet);
  ASSERT_TRUE(query.ok());
  auto raised = RaiseUc2RpqToRq(*query, alphabet);
  ASSERT_TRUE(raised.has_value());

  Rng rng(5);
  for (int round = 0; round < 6; ++round) {
    GraphDb graph = RandomGraph(9, 20, {"knows", "likes"}, rng.Next());
    Relation direct = EvalUc2Rpq(graph, *query).value();
    Relation via_rq =
        EvalRqQuery(GraphToDatabase(graph), *raised).value();
    EXPECT_EQ(direct.SortedTuples(), via_rq.SortedTuples());
  }

  // And the raised query lowers back into the UC2RPQ fragment.
  Alphabet lowered_alphabet;
  EXPECT_TRUE(TryLowerToUc2Rpq(*raised, &lowered_alphabet).has_value());
}

TEST(RaiseTest, HeadMismatchAcrossDisjunctsFails) {
  Alphabet alphabet;
  Uc2Rpq query;
  Crpq d1;
  d1.num_vars = 2;
  d1.head = {0, 1};
  d1.atoms = {{ParseRegex("a", &alphabet).value(), 0, 1}};
  Crpq d2;
  d2.num_vars = 2;
  d2.head = {1, 0};
  d2.atoms = {{ParseRegex("a", &alphabet).value(), 0, 1}};
  query.disjuncts = {d1, d2};
  EXPECT_FALSE(RaiseUc2RpqToRq(query, alphabet).has_value());
}

}  // namespace
}  // namespace rq

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "rq/containment.h"
#include "rq/eval.h"
#include "rq/lower.h"
#include "rq/parser.h"

namespace rq {
namespace {

RqQuery Parse(const std::string& text) {
  auto q = ParseRq(text);
  RQ_CHECK(q.ok());
  return *q;
}

TEST(LowerUc2RpqTest, TrianglePatternLowers) {
  Alphabet alphabet;
  // The paper's Example 1: not a single 2RPQ, but a C2RPQ.
  RqQuery q = Parse("q(x, y) := exists[z](r(x, y) & r(x, z) & r(y, z))");
  EXPECT_FALSE(TryLowerQuery(q, &alphabet).has_value());
  auto lowered = TryLowerToUc2Rpq(q, &alphabet);
  ASSERT_TRUE(lowered.has_value());
  EXPECT_EQ(lowered->disjuncts.size(), 1u);
  EXPECT_EQ(lowered->disjuncts[0].atoms.size(), 3u);
}

TEST(LowerUc2RpqTest, UnionOfPatternsLowers) {
  Alphabet alphabet;
  RqQuery q = Parse(
      "q(x, y) := exists[z](r(x, y) & r(y, z) & r(z, x)) | "
      "(s(x, y) & tc[x,y](r(x, y)))");
  auto lowered = TryLowerToUc2Rpq(q, &alphabet);
  ASSERT_TRUE(lowered.has_value());
  EXPECT_EQ(lowered->disjuncts.size(), 2u);
}

TEST(LowerUc2RpqTest, ChainsInsideConjunctsStayIntactOrSplit) {
  Alphabet alphabet;
  RqQuery q = Parse(
      "q(x, y) := exists[m](r(x, m) & s(m, y)) & t(x, y)");
  auto lowered = TryLowerToUc2Rpq(q, &alphabet);
  ASSERT_TRUE(lowered.has_value());
  // The flattened form has three binary atoms: r(x,m), s(m,y), t(x,y).
  EXPECT_EQ(lowered->disjuncts[0].atoms.size(), 3u);
}

TEST(LowerUc2RpqTest, SelectionAndHigherArityDoNotLower) {
  Alphabet alphabet;
  EXPECT_FALSE(
      TryLowerToUc2Rpq(Parse("q(x, y) := eq[x,y](r(x, y))"), &alphabet)
          .has_value());
  EXPECT_FALSE(
      TryLowerToUc2Rpq(Parse("q(x, y) := t(x, y, z)"), &alphabet)
          .has_value());
  // Unary conjunct (self-loop pattern with one free var) does not fit.
  EXPECT_FALSE(
      TryLowerToUc2Rpq(Parse("q(x) := r(x, x)"), &alphabet).has_value());
}

TEST(LowerUc2RpqTest, LoweringPreservesSemantics) {
  const char* queries[] = {
      "q(x, y) := exists[z](r(x, y) & r(x, z) & r(y, z))",
      "q(x, y) := r(x, y) & s(x, y)",
      "q(x, y) := exists[z](tc[x,z](r(x, z)) & s(z, y)) | r(x, y)",
      "q(x) := exists[y](r(x, y) & s(y, x))",
  };
  Rng rng(161616);
  for (const char* text : queries) {
    RqQuery q = Parse(text);
    for (int round = 0; round < 5; ++round) {
      GraphDb graph = RandomGraph(8, 18, {"r", "s"}, rng.Next());
      auto lowered = TryLowerToUc2Rpq(q, &graph.alphabet());
      ASSERT_TRUE(lowered.has_value()) << text;
      Relation via_rq = EvalRqQuery(GraphToDatabase(graph), q).value();
      Relation via_crpq = EvalUc2Rpq(graph, *lowered).value();
      EXPECT_EQ(via_rq.SortedTuples(), via_crpq.SortedTuples()) << text;
    }
  }
}

TEST(LowerUc2RpqTest, DispatcherUsesUc2RpqRoute) {
  // Triangle pattern ⊑ single-edge pattern: conjunctive, finite languages —
  // the UC2RPQ dispatch proves it exactly (previously the expansion route).
  auto result = CheckRqContainment(
      Parse("q(x, y) := exists[z](r(x, y) & r(x, z) & r(y, z))"),
      Parse("q(x, y) := r(x, y)"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->certainty, Certainty::kProved);
  EXPECT_EQ(result->method, "uc2rpq:expansion-exact");

  // And a refutation with a checkable certificate through the same route.
  auto neg = CheckRqContainment(
      Parse("q(x, y) := r(x, y) & s(x, y)"),
      Parse("q(x, y) := exists[z](r(x, y) & s(x, z) & s(z, y))"));
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(neg->certainty, Certainty::kRefuted);
  ASSERT_TRUE(neg->counterexample.has_value());
  Relation a1 = EvalRqQuery(*neg->counterexample,
                            Parse("q(x, y) := r(x, y) & s(x, y)"))
                    .value();
  EXPECT_TRUE(a1.Contains(neg->witness_tuple));
}

}  // namespace
}  // namespace rq

#include "rq/lower.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "pathquery/path_query.h"
#include "rq/eval.h"
#include "rq/parser.h"

namespace rq {
namespace {

RqQuery Parse(const std::string& text) {
  auto q = ParseRq(text);
  RQ_CHECK(q.ok());
  return *q;
}

TEST(LowerTest, AtomLowersToSymbol) {
  Alphabet alphabet;
  auto re = TryLowerQuery(Parse("q(x, y) := r(x, y)"), &alphabet);
  ASSERT_TRUE(re.has_value());
  EXPECT_EQ((*re)->ToString(alphabet), "r");
}

TEST(LowerTest, SwappedAtomLowersToInverse) {
  Alphabet alphabet;
  auto re = TryLowerQuery(Parse("q(x, y) := r(y, x)"), &alphabet);
  ASSERT_TRUE(re.has_value());
  EXPECT_EQ((*re)->ToString(alphabet), "r-");
}

TEST(LowerTest, CompositionLowersToConcat) {
  Alphabet alphabet;
  auto re = TryLowerQuery(
      Parse("q(x, z) := exists[y](r(x, y) & s(y, z))"), &alphabet);
  ASSERT_TRUE(re.has_value());
  EXPECT_EQ((*re)->ToString(alphabet), "r s");
}

TEST(LowerTest, ChainWithBackwardHop) {
  Alphabet alphabet;
  auto re = TryLowerQuery(
      Parse("q(x, z) := exists[y](r(x, y) & s(z, y))"), &alphabet);
  ASSERT_TRUE(re.has_value());
  EXPECT_EQ((*re)->ToString(alphabet), "r s-");
}

TEST(LowerTest, ClosureLowersToPlus) {
  Alphabet alphabet;
  auto re = TryLowerQuery(Parse("q(x, y) := tc[x,y](r(x, y))"), &alphabet);
  ASSERT_TRUE(re.has_value());
  EXPECT_EQ((*re)->ToString(alphabet), "r+");
}

TEST(LowerTest, UnionLowers) {
  Alphabet alphabet;
  auto re = TryLowerQuery(
      Parse("q(x, y) := r(x, y) | s(y, x)"), &alphabet);
  ASSERT_TRUE(re.has_value());
  EXPECT_EQ((*re)->ToString(alphabet), "r | s-");
}

TEST(LowerTest, LongChainLowers) {
  Alphabet alphabet;
  auto re = TryLowerQuery(
      Parse("q(a, d) := exists[b, c](r(a, b) & tc[b,c](s(b, c)) & r(d, c))"),
      &alphabet);
  ASSERT_TRUE(re.has_value());
  EXPECT_EQ((*re)->ToString(alphabet), "r s+ r-");
}

TEST(LowerTest, ParallelPathsDoNotLower) {
  Alphabet alphabet;
  // Two paths between the same endpoints: genuinely conjunctive, not a
  // 2RPQ.
  EXPECT_FALSE(
      TryLowerQuery(Parse("q(x, y) := r(x, y) & s(x, y)"), &alphabet)
          .has_value());
}

TEST(LowerTest, BranchingDoesNotLower) {
  Alphabet alphabet;
  // The paper's Example 1 (triangle-ish pattern): z is reached from both
  // endpoints, so the pattern is not a chain.
  EXPECT_FALSE(TryLowerQuery(
                   Parse("q(x, y) := exists[z](r(x, y) & r(x, z) & r(y, z))"),
                   &alphabet)
                   .has_value());
}

TEST(LowerTest, SelectionDoesNotLower) {
  Alphabet alphabet;
  EXPECT_FALSE(TryLowerQuery(Parse("q(x, y) := eq[x,y](r(x, y))"), &alphabet)
                   .has_value());
}

TEST(LowerTest, TernaryAtomDoesNotLower) {
  Alphabet alphabet;
  EXPECT_FALSE(
      TryLowerQuery(Parse("q(x, y) := t(x, y, x)"), &alphabet).has_value());
}

// Soundness: whenever lowering succeeds, the regex evaluated as a 2RPQ over
// a graph agrees with the RQ evaluated over the relational view.
TEST(LowerTest, LoweringPreservesSemantics) {
  const char* queries[] = {
      "q(x, y) := r(x, y)",
      "q(x, y) := r(y, x)",
      "q(x, z) := exists[y](r(x, y) & s(y, z))",
      "q(x, z) := exists[y](r(x, y) & s(z, y))",
      "q(x, y) := tc[x,y](r(x, y) | s(y, x))",
      "q(a, d) := exists[b, c](r(a, b) & tc[b,c](s(b, c)) & r(d, c))",
      "q(x, y) := tc[y,x](r(y, x))",
  };
  Rng rng(90210);
  for (const char* text : queries) {
    RqQuery q = Parse(text);
    for (int round = 0; round < 5; ++round) {
      GraphDb graph = RandomGraph(8, 16, {"r", "s"}, rng.Next());
      auto regex = TryLowerQuery(q, &graph.alphabet());
      ASSERT_TRUE(regex.has_value()) << text;
      Database db = GraphToDatabase(graph);
      Relation via_rq = EvalRqQuery(db, q).value();
      auto pairs = EvalPathQuery(graph, **regex);
      Relation via_2rpq(2);
      for (const auto& [x, y] : pairs) via_2rpq.Insert({x, y});
      EXPECT_EQ(via_rq.SortedTuples(), via_2rpq.SortedTuples()) << text;
    }
  }
}

}  // namespace
}  // namespace rq

#include "rq/to_datalog.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/eval.h"
#include "graph/generators.h"
#include "rq/eval.h"
#include "rq/from_datalog.h"
#include "rq/parser.h"

namespace rq {
namespace {

RqQuery Parse(const std::string& text) {
  auto q = ParseRq(text);
  RQ_CHECK(q.ok());
  return *q;
}

// Queries exercising every operator, used across the round-trip tests.
const char* kQueries[] = {
    "q(x, y) := r(x, y)",
    "q(x, y) := r(x, y) | s(x, y)",
    "q(x, z) := exists[y](r(x, y) & s(y, z))",
    "q(x, y) := eq[x,y](r(x, y))",
    "q(x, y) := tc[x,y](r(x, y))",
    "q(x, y) := tc[x,y](r(x, y) | s(y, x))",
    "q(x, z) := exists[y](tc[x,y](r(x, y)) & s(y, z))",
    "q(x, y) := tc[x,y]( exists[z]( r(x,y) & r(y,z) & r(z,x) ) )",
    "q(y, x) := r(x, y)",
};

TEST(RqToDatalogTest, TranslationEvaluatesIdentically) {
  Rng rng(1001);
  for (const char* text : kQueries) {
    RqQuery q = Parse(text);
    auto program = RqToDatalog(q);
    ASSERT_TRUE(program.ok()) << text << ": " << program.status().ToString();
    for (int round = 0; round < 6; ++round) {
      GraphDb graph = RandomGraph(8, 18, {"r", "s"}, rng.Next());
      Database db = GraphToDatabase(graph);
      Relation direct = EvalRqQuery(db, q).value();
      Relation via_datalog = EvalDatalogGoal(*program, db).value();
      EXPECT_EQ(direct.SortedTuples(), via_datalog.SortedTuples()) << text;
    }
  }
}

// §4.1's punchline: the embedding uses recursion only for transitive
// closure, so every translated program is GRQ.
TEST(RqToDatalogTest, TranslationIsAlwaysGrq) {
  for (const char* text : kQueries) {
    RqQuery q = Parse(text);
    auto program = RqToDatalog(q);
    ASSERT_TRUE(program.ok()) << text;
    GrqAnalysis analysis = AnalyzeGrq(*program);
    EXPECT_TRUE(analysis.is_grq) << text << ": " << analysis.reason;
  }
}

TEST(RqToDatalogTest, ClosureFreeTranslationIsNonrecursive) {
  auto program = RqToDatalog(Parse("q(x, z) := exists[y](r(x,y) & r(y,z))"));
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(program->IsRecursive());
  auto with_tc = RqToDatalog(Parse("q(x, y) := tc[x,y](r(x, y))"));
  ASSERT_TRUE(with_tc.ok());
  EXPECT_TRUE(with_tc->IsRecursive());
  EXPECT_TRUE(with_tc->IsLinear());
}

// Parameterized closures translate to valid Datalog (the recursive
// predicate carries the parameter), but the recursion has arity 3, so the
// program falls outside GRQ — which is why they stay out of kQueries.
TEST(RqToDatalogTest, ParameterizedClosureTranslatesButIsNotGrq) {
  RqQuery q = Parse("q(x, y, z) := tc[x,y](r(x, y, z))");
  auto program = RqToDatalog(q);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  GrqAnalysis analysis = AnalyzeGrq(*program);
  EXPECT_FALSE(analysis.is_grq);

  Rng rng(4242);
  for (int round = 0; round < 6; ++round) {
    Database db;
    Relation* r = db.GetOrCreate("r", 3).value();
    for (int i = 0; i < 15; ++i) {
      r->Insert({rng.Below(5), rng.Below(5), rng.Below(3)});
    }
    Relation direct = EvalRqQuery(db, q).value();
    Relation via_datalog = EvalDatalogGoal(*program, db).value();
    EXPECT_EQ(direct.SortedTuples(), via_datalog.SortedTuples());
  }
}

TEST(RqToDatalogTest, GoalNameCollisionRejected) {
  RqQuery q = Parse("q(x, y) := r(x, y)");
  EXPECT_FALSE(RqToDatalog(q, "r").ok());
  EXPECT_TRUE(RqToDatalog(q, "answer").ok());
}

TEST(RqToDatalogTest, RoundTripThroughGrqExtraction) {
  // RQ -> Datalog -> RQ must preserve semantics.
  Rng rng(77);
  for (const char* text : kQueries) {
    RqQuery original = Parse(text);
    auto program = RqToDatalog(original);
    ASSERT_TRUE(program.ok()) << text;
    auto extracted = DatalogToRq(*program);
    ASSERT_TRUE(extracted.ok())
        << text << ": " << extracted.status().ToString();
    for (int round = 0; round < 4; ++round) {
      GraphDb graph = RandomGraph(7, 15, {"r", "s"}, rng.Next());
      Database db = GraphToDatabase(graph);
      Relation a = EvalRqQuery(db, original).value();
      Relation b = EvalRqQuery(db, *extracted).value();
      EXPECT_EQ(a.SortedTuples(), b.SortedTuples()) << text;
    }
  }
}

}  // namespace
}  // namespace rq

#include "rq/containment.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "rq/eval.h"
#include "rq/expand.h"
#include "rq/parser.h"

namespace rq {
namespace {

RqQuery Parse(const std::string& text) {
  auto q = ParseRq(text);
  RQ_CHECK(q.ok());
  return *q;
}

RqContainmentResult Check(const std::string& q1, const std::string& q2) {
  auto result = CheckRqContainment(Parse(q1), Parse(q2));
  RQ_CHECK(result.ok());
  return *result;
}

TEST(RqExpandTest, ClosureFreeExpansionIsComplete) {
  auto expanded =
      ExpandRq(Parse("q(x, z) := exists[y](r(x,y) & (s(y,z) | t(y,z)))"));
  ASSERT_TRUE(expanded.ok());
  EXPECT_TRUE(expanded->complete);
  EXPECT_EQ(expanded->expansions.size(), 2u);
}

TEST(RqExpandTest, ClosureUnrollsToChains) {
  RqExpandLimits limits;
  limits.max_tc_unroll = 4;
  auto expanded = ExpandRq(Parse("q(x, y) := tc[x,y](r(x, y))"), limits);
  ASSERT_TRUE(expanded.ok());
  EXPECT_FALSE(expanded->complete);
  EXPECT_EQ(expanded->expansions.size(), 4u);
  EXPECT_EQ(expanded->expansions[0].atoms.size(), 1u);
  EXPECT_EQ(expanded->expansions[3].atoms.size(), 4u);
}

TEST(RqExpandTest, ExpansionsAnswerTheirCanonicalDatabases) {
  const char* queries[] = {
      "q(x, y) := tc[x,y](r(x, y) | s(x, y))",
      "q(x, z) := exists[y](tc[x,y](r(x, y)) & s(y, z))",
      "q(x, y) := eq[x,y](r(x, y)) | r(x, y)",
  };
  for (const char* text : queries) {
    RqQuery q = Parse(text);
    auto expanded = ExpandRq(q);
    ASSERT_TRUE(expanded.ok()) << text;
    ASSERT_FALSE(expanded->expansions.empty()) << text;
    for (const ConjunctiveQuery& cq : expanded->expansions) {
      Database canonical = cq.CanonicalDatabase();
      Relation answers = EvalRqQuery(canonical, q).value();
      EXPECT_TRUE(answers.Contains(cq.FrozenHead()))
          << text << " expansion " << cq.ToString();
    }
  }
}

TEST(RqContainmentTest, TwoRpqDispatchOnPathShapedQueries) {
  // p ⊑ p p⁻ p from the paper, expressed in the RQ algebra.
  RqContainmentResult result = Check(
      "q(x, y) := p(x, y)",
      "q(x, y) := exists[a, b](p(x, a) & p(b, a) & p(b, y))");
  EXPECT_EQ(result.method, "2rpq-fold");
  EXPECT_EQ(result.certainty, Certainty::kProved);
}

TEST(RqContainmentTest, ClosureFreeExactVerdicts) {
  // Triangle ⊑ single edge (drop atoms).
  RqContainmentResult pos = Check(
      "q(x, y) := exists[z](r(x,y) & r(y,z) & r(z,x))",
      "q(x, y) := r(x, y)");
  EXPECT_EQ(pos.certainty, Certainty::kProved);

  RqContainmentResult neg = Check(
      "q(x, y) := r(x, y)",
      "q(x, y) := exists[z](r(x,y) & r(y,z) & r(z,x))");
  EXPECT_EQ(neg.certainty, Certainty::kRefuted);
  ASSERT_TRUE(neg.counterexample.has_value());
  // The witness database separates the queries.
  Relation a1 =
      EvalRqQuery(*neg.counterexample, Parse("q(x, y) := r(x, y)")).value();
  Relation a2 = EvalRqQuery(
                    *neg.counterexample,
                    Parse("q(x, y) := exists[z](r(x,y) & r(y,z) & r(z,x))"))
                    .value();
  EXPECT_TRUE(a1.Contains(neg.witness_tuple));
  EXPECT_FALSE(a2.Contains(neg.witness_tuple));
}

TEST(RqContainmentTest, ClosureRefutedByShortExpansion) {
  // tc(r) is not contained in r: the 2-chain refutes it. Exercise the
  // expansion path by disabling the 2RPQ dispatch.
  RqContainmentOptions options;
  options.try_two_rpq_dispatch = false;
  auto result = CheckRqContainment(Parse("q(x, y) := tc[x,y](r(x, y))"),
                                   Parse("q(x, y) := r(x, y)"), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->certainty, Certainty::kRefuted);
  EXPECT_EQ(result->method, "expansion-bounded");
}

TEST(RqContainmentTest, ClosureProvedViaTwoRpqDispatch) {
  // tc(r) ⊑ r | r·r⁺ — equivalent unrollings; the 2RPQ dispatch proves it.
  RqContainmentResult result = Check(
      "q(x, y) := tc[x,y](r(x, y))",
      "q(x, y) := r(x, y) | exists[m](r(x, m) & tc[m,y](r(m, y)))");
  EXPECT_EQ(result.method, "2rpq-fold");
  EXPECT_EQ(result.certainty, Certainty::kProved);
}

TEST(RqContainmentTest, TriangleClosureProvedByTcMonotonicity) {
  // tc of the triangle query contained in tc of single edge: true but not
  // path-shaped; the structural TC-monotonicity rule proves it (the
  // triangle body ⊑ the single atom is an exact closure-free subgoal).
  RqContainmentResult result = Check(
      "q(x, y) := tc[x,y](exists[z](r(x,y) & r(y,z) & r(z,x)))",
      "q(x, y) := tc[x,y](r(x, y))");
  EXPECT_EQ(result.certainty, Certainty::kProved);
  EXPECT_EQ(result.method, "structural");
}

TEST(RqContainmentTest, ClosureUnknownBeyondTheProofRules) {
  // TC(r∘r) ⊑ TC(r) is true (even-length chains are chains) but needs
  // reasoning about iteration counts that neither expansions nor the
  // structural rules provide — and the left side is not 2RPQ-lowerable
  // here because of the guard conjunct. The checker must stay honest.
  RqContainmentResult result = Check(
      "q(x, y) := tc[x,y](exists[m](r(x, m) & r(m, y)) & g(x, y))",
      "q(x, y) := tc[x,y](r(x, y))");
  EXPECT_EQ(result.certainty, Certainty::kUnknownUpToBound);
  EXPECT_GT(result.expansions_checked, 0u);
}

TEST(RqContainmentTest, TriangleClosureNotContainedInEdge) {
  RqContainmentResult result = Check(
      "q(x, y) := tc[x,y](exists[z](r(x,y) & r(y,z) & r(z,x)))",
      "q(x, y) := r(x, y)");
  // The 2-step closure chain of triangles is not a single edge.
  EXPECT_EQ(result.certainty, Certainty::kRefuted);
}

TEST(RqContainmentTest, SelectionContainments) {
  RqContainmentResult pos =
      Check("q(x, y) := eq[x,y](r(x, y))", "q(x, y) := r(x, y)");
  EXPECT_EQ(pos.certainty, Certainty::kProved);
  RqContainmentResult neg =
      Check("q(x, y) := r(x, y)", "q(x, y) := eq[x,y](r(x, y))");
  EXPECT_EQ(neg.certainty, Certainty::kRefuted);
}

TEST(RqContainmentTest, ArityMismatchIsError) {
  EXPECT_FALSE(CheckRqContainment(Parse("q(x) := r(x, x)"),
                                  Parse("q(x, y) := r(x, y)"))
                   .ok());
}

TEST(RqContainmentTest, RefutationsAreSoundOnRandomPairs) {
  // Whatever the checker refutes must genuinely differ on the attached
  // counterexample.
  Rng rng(424242);
  const char* templates[] = {
      "q(x, y) := r(x, y)",
      "q(x, y) := s(x, y)",
      "q(x, y) := r(x, y) | s(x, y)",
      "q(x, y) := exists[z](r(x, z) & s(z, y))",
      "q(x, y) := tc[x,y](r(x, y))",
      "q(x, y) := tc[x,y](r(x, y) | s(x, y))",
      "q(x, y) := exists[z](r(x, z) & r(z, y))",
  };
  int refuted = 0;
  for (const char* t1 : templates) {
    for (const char* t2 : templates) {
      auto result = CheckRqContainment(Parse(t1), Parse(t2));
      ASSERT_TRUE(result.ok());
      if (result->certainty != Certainty::kRefuted) continue;
      ++refuted;
      ASSERT_TRUE(result->counterexample.has_value());
      Relation a1 = EvalRqQuery(*result->counterexample, Parse(t1)).value();
      Relation a2 = EvalRqQuery(*result->counterexample, Parse(t2)).value();
      EXPECT_TRUE(a1.Contains(result->witness_tuple)) << t1 << " vs " << t2;
      EXPECT_FALSE(a2.Contains(result->witness_tuple)) << t1 << " vs " << t2;
    }
  }
  EXPECT_GT(refuted, 10);
}

TEST(RqContainmentTest, ProvedVerdictsImplyAnswerInclusionOnRandomGraphs) {
  Rng rng(7777);
  const char* templates[] = {
      "q(x, y) := r(x, y)",
      "q(x, y) := r(x, y) | s(x, y)",
      "q(x, y) := exists[z](r(x, z) & s(z, y))",
      "q(x, y) := tc[x,y](r(x, y))",
      "q(x, y) := tc[x,y](r(x, y) | s(x, y))",
  };
  for (const char* t1 : templates) {
    for (const char* t2 : templates) {
      auto result = CheckRqContainment(Parse(t1), Parse(t2));
      ASSERT_TRUE(result.ok());
      if (result->certainty != Certainty::kProved) continue;
      for (int round = 0; round < 4; ++round) {
        GraphDb graph = RandomGraph(7, 14, {"r", "s"}, rng.Next());
        Database db = GraphToDatabase(graph);
        Relation a1 = EvalRqQuery(db, Parse(t1)).value();
        Relation a2 = EvalRqQuery(db, Parse(t2)).value();
        for (const Tuple& t : a1.tuples()) {
          EXPECT_TRUE(a2.Contains(t)) << t1 << " ⊑ " << t2;
        }
      }
    }
  }
}

}  // namespace
}  // namespace rq

#include "rq/from_datalog.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/eval.h"
#include "graph/generators.h"
#include "rq/eval.h"

namespace rq {
namespace {

DatalogProgram Parse(const std::string& text) {
  auto p = ParseDatalog(text);
  RQ_CHECK(p.ok());
  return *p;
}

void ExpectSameSemantics(const DatalogProgram& program, const RqQuery& query,
                         uint64_t seed, int rounds = 6) {
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    GraphDb graph = RandomGraph(8, 18, {"e", "f", "g"}, rng.Next());
    Database db = GraphToDatabase(graph);
    Relation via_datalog = EvalDatalogGoal(program, db).value();
    Relation via_rq = EvalRqQuery(db, query).value();
    EXPECT_EQ(via_datalog.SortedTuples(), via_rq.SortedTuples());
  }
}

TEST(GrqRecognitionTest, StrictTcShapeIsGrq) {
  DatalogProgram p = Parse(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    ?- tc.
  )");
  EXPECT_TRUE(AnalyzeGrq(p).is_grq);
  auto q = DatalogToRq(p);
  ASSERT_TRUE(q.ok());
  ExpectSameSemantics(p, *q, 1);
}

TEST(GrqRecognitionTest, LeftLinearTcIsGrq) {
  DatalogProgram p = Parse(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- e(X, Y), tc(Y, Z).
    ?- tc.
  )");
  EXPECT_TRUE(AnalyzeGrq(p).is_grq);
  auto q = DatalogToRq(p);
  ASSERT_TRUE(q.ok());
  ExpectSameSemantics(p, *q, 2);
}

TEST(GrqRecognitionTest, NonlinearTcIsGrq) {
  DatalogProgram p = Parse(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), tc(Y, Z).
    ?- tc.
  )");
  EXPECT_TRUE(AnalyzeGrq(p).is_grq);
  auto q = DatalogToRq(p);
  ASSERT_TRUE(q.ok());
  ExpectSameSemantics(p, *q, 3);
}

TEST(GrqRecognitionTest, TcOfConjunctiveBaseIsGrq) {
  // TC over a two-step base relation.
  DatalogProgram p = Parse(R"(
    hop2(X, Z) :- e(X, Y), f(Y, Z).
    tc(X, Y) :- hop2(X, Y).
    tc(X, Z) :- tc(X, Y), hop2(Y, Z).
    q(X, Y) :- tc(X, Y), g(X, X).
    ?- q.
  )");
  GrqAnalysis analysis = AnalyzeGrq(p);
  EXPECT_TRUE(analysis.is_grq) << analysis.reason;
  auto q = DatalogToRq(p);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ExpectSameSemantics(p, *q, 4);
}

TEST(GrqRecognitionTest, MixedLeftRightStepsAreGrq) {
  // lfp = f* e g* : expressible as composition of closures.
  DatalogProgram p = Parse(R"(
    path(X, Y) :- e(X, Y).
    path(X, Z) :- path(X, Y), g(Y, Z).
    path(X, Z) :- f(X, Y), path(Y, Z).
    ?- path.
  )");
  GrqAnalysis analysis = AnalyzeGrq(p);
  EXPECT_TRUE(analysis.is_grq) << analysis.reason;
  auto q = DatalogToRq(p);
  ASSERT_TRUE(q.ok());
  ExpectSameSemantics(p, *q, 5, 8);
}

TEST(GrqRecognitionTest, StepWithCompositeTailIsGrq) {
  // Step appends two edges at a time: tc = e (f g)*.
  DatalogProgram p = Parse(R"(
    walk(X, Y) :- e(X, Y).
    walk(X, Z) :- walk(X, Y), f(Y, W), g(W, Z).
    ?- walk.
  )");
  GrqAnalysis analysis = AnalyzeGrq(p);
  EXPECT_TRUE(analysis.is_grq) << analysis.reason;
  auto q = DatalogToRq(p);
  ASSERT_TRUE(q.ok());
  ExpectSameSemantics(p, *q, 6);
}

TEST(GrqRecognitionTest, MonadicRecursionIsNotGrq) {
  // The paper's §2.3 reachability program: recursive predicate has arity 1.
  DatalogProgram p = Parse(R"(
    reach(X) :- e(X, Y), p(Y).
    reach(X) :- e(X, Y), reach(Y).
    ?- reach.
  )");
  GrqAnalysis analysis = AnalyzeGrq(p);
  EXPECT_FALSE(analysis.is_grq);
  EXPECT_NE(analysis.reason.find("arity"), std::string::npos);
}

TEST(GrqRecognitionTest, MutualRecursionIsNotGrq) {
  DatalogProgram p = Parse(R"(
    a(X, Y) :- e(X, Y).
    a(X, Z) :- b(X, Y), e(Y, Z).
    b(X, Z) :- a(X, Y), f(Y, Z).
    ?- a.
  )");
  GrqAnalysis analysis = AnalyzeGrq(p);
  EXPECT_FALSE(analysis.is_grq);
}

TEST(GrqRecognitionTest, NonChainRecursionIsNotGrq) {
  // The recursive atom's first variable is not the head's first variable —
  // this computes something other than a transitive closure.
  DatalogProgram p = Parse(R"(
    w(X, Y) :- e(X, Y).
    w(X, Z) :- w(Y, X), e(Y, Z).
    ?- w.
  )");
  EXPECT_FALSE(AnalyzeGrq(p).is_grq);
}

TEST(GrqRecognitionTest, RecursionGuardedByHeadVarInTailIsNotGrq) {
  // x reappears in the tail: not a pure composition.
  DatalogProgram p = Parse(R"(
    w(X, Y) :- e(X, Y).
    w(X, Z) :- w(X, Y), e(Y, Z), f(X, Z).
    ?- w.
  )");
  EXPECT_FALSE(AnalyzeGrq(p).is_grq);
}

TEST(GrqRecognitionTest, NonrecursiveProgramsAreGrq) {
  DatalogProgram p = Parse(R"(
    two(X, Z) :- e(X, Y), e(Y, Z).
    q(X, Z) :- two(X, Z).
    q(X, Z) :- f(X, Z).
    ?- q.
  )");
  EXPECT_TRUE(AnalyzeGrq(p).is_grq);
  auto q = DatalogToRq(p);
  ASSERT_TRUE(q.ok());
  ExpectSameSemantics(p, *q, 7);
}

TEST(GrqRecognitionTest, RepeatedBodyVariablesHandled) {
  DatalogProgram p = Parse(R"(
    loopy(X, Y) :- e(X, X), f(X, Y).
    tc(X, Y) :- loopy(X, Y).
    tc(X, Z) :- tc(X, Y), loopy(Y, Z).
    ?- tc.
  )");
  GrqAnalysis analysis = AnalyzeGrq(p);
  EXPECT_TRUE(analysis.is_grq) << analysis.reason;
  auto q = DatalogToRq(p);
  ASSERT_TRUE(q.ok());
  ExpectSameSemantics(p, *q, 8);
}

TEST(GrqRecognitionTest, GoalRequiredForExtraction) {
  DatalogProgram p = Parse("tc(X, Y) :- e(X, Y).");
  EXPECT_TRUE(AnalyzeGrq(p).is_grq);  // analysis works without a goal
  EXPECT_FALSE(DatalogToRq(p).ok());  // extraction needs one
}

TEST(GrqRecognitionTest, HigherArityNonrecursiveIsSupported) {
  // GRQ generalizes to arbitrary-arity atoms outside the recursion.
  DatalogProgram p = Parse(R"(
    tc(X, Y) :- link(X, Y).
    tc(X, Z) :- tc(X, Y), link(Y, Z).
    q(X, Z) :- tc(X, Z), meta(X, Z, W), label(W).
    ?- q.
  )");
  GrqAnalysis analysis = AnalyzeGrq(p);
  EXPECT_TRUE(analysis.is_grq) << analysis.reason;
  auto query = DatalogToRq(p);
  ASSERT_TRUE(query.ok());
  // Evaluate on a small mixed-arity database.
  Database db;
  Relation* link = db.GetOrCreate("link", 2).value();
  link->Insert({1, 2});
  link->Insert({2, 3});
  Relation* meta = db.GetOrCreate("meta", 3).value();
  meta->Insert({1, 3, 7});
  meta->Insert({1, 2, 8});
  db.GetOrCreate("label", 1).value()->Insert({7});
  Relation direct = EvalDatalogGoal(p, db).value();
  Relation via_rq = EvalRqQuery(db, *query).value();
  EXPECT_EQ(direct.SortedTuples(), via_rq.SortedTuples());
  EXPECT_TRUE(direct.Contains({1, 3}));
  EXPECT_FALSE(direct.Contains({1, 2}));
}

}  // namespace
}  // namespace rq

#include "rq/expand.h"

#include <gtest/gtest.h>

#include "rq/containment.h"
#include "rq/parser.h"

namespace rq {
namespace {

RqQuery Parse(const std::string& text) {
  auto q = ParseRq(text);
  RQ_CHECK(q.ok());
  return *q;
}

// Regression: closure expansion used to build each link's variable
// environment from scratch, dropping every outer binding. With the body
// mentioning a variable bound by an enclosing Exists (here w, a closure
// parameter), the links' c-atoms kept the ORIGINAL w id while the p-atom
// outside the closure got the Exists-freshened copy — so expansions
// disagreed about a variable the query requires to be shared.
TEST(RqExpandTest, ClosureLinksSeeEnclosingBindings) {
  RqQuery q =
      Parse("q(x, y) := exists[w]( p(w) & tc[x,y]( a(x,y) & c(x,w) ) )");
  RqExpandLimits limits;
  limits.max_tc_unroll = 3;
  auto expansions = ExpandRq(q, limits);
  ASSERT_TRUE(expansions.ok());
  ASSERT_FALSE(expansions->expansions.empty());
  for (const ConjunctiveQuery& cq : expansions->expansions) {
    VarId p_var = 0;
    bool found_p = false;
    for (const CqAtom& atom : cq.atoms) {
      if (atom.predicate == "p") {
        p_var = atom.vars[0];
        found_p = true;
      }
    }
    ASSERT_TRUE(found_p);
    size_t c_atoms = 0;
    for (const CqAtom& atom : cq.atoms) {
      if (atom.predicate != "c") continue;
      ++c_atoms;
      EXPECT_EQ(atom.vars[1], p_var)
          << "closure link dropped the enclosing Exists binding of w";
    }
    EXPECT_GE(c_atoms, 1u);
  }
}

// Closure parameters are held fixed along the whole chain: every link atom
// of one expansion carries the same (free) parameter variable, and
// consecutive links share their chain endpoint.
TEST(RqExpandTest, ClosureParametersFixedAlongChain) {
  RqQuery q = Parse("q(x, y, z) := tc[x,y](r(x, y, z))");
  RqExpandLimits limits;
  limits.max_tc_unroll = 4;
  auto expansions = ExpandRq(q, limits);
  ASSERT_TRUE(expansions.ok());
  ASSERT_EQ(expansions->expansions.size(), 4u);  // one per chain length
  // Parser interning order: x=0, y=1, z=2.
  const VarId x = 0, y = 1, z = 2;
  for (const ConjunctiveQuery& cq : expansions->expansions) {
    ASSERT_FALSE(cq.atoms.empty());
    for (const CqAtom& atom : cq.atoms) {
      ASSERT_EQ(atom.predicate, "r");
      EXPECT_EQ(atom.vars[2], z) << "parameter not fixed along the chain";
    }
    EXPECT_EQ(cq.atoms.front().vars[0], x);
    EXPECT_EQ(cq.atoms.back().vars[1], y);
    for (size_t i = 0; i + 1 < cq.atoms.size(); ++i) {
      EXPECT_EQ(cq.atoms[i].vars[1], cq.atoms[i + 1].vars[0]);
    }
  }
}

// Nested closures: the inner closure's links must still see the outer
// closure's per-link endpoint renamings (they reach the inner body through
// the link env, not the original ids).
TEST(RqExpandTest, NestedClosureSeesOuterLinkRenaming) {
  RqQuery q = Parse("q(x, y) := tc[x,y]( tc[x,y](r(x, y)) )");
  RqExpandLimits limits;
  limits.max_tc_unroll = 2;
  auto expansions = ExpandRq(q, limits);
  ASSERT_TRUE(expansions.ok());
  // Every expansion must form one connected r-chain from x to y.
  const VarId x = 0, y = 1;
  for (const ConjunctiveQuery& cq : expansions->expansions) {
    EXPECT_EQ(cq.atoms.front().vars[0], x);
    EXPECT_EQ(cq.atoms.back().vars[1], y);
    for (size_t i = 0; i + 1 < cq.atoms.size(); ++i) {
      EXPECT_EQ(cq.atoms[i].vars[1], cq.atoms[i + 1].vars[0]);
    }
  }
}

// The max_expansions cap must truncate the enumeration, not corrupt it:
// whatever is returned must still be a genuine (complete) expansion.
TEST(RqExpandTest, TruncationKeepsExpansionsGenuine) {
  RqQuery q = Parse(
      "q(x, y) := tc[x,y]( (a(x,y) | b(x,y) | c(x,y)) & d(x,y) )");
  RqExpandLimits limits;
  limits.max_tc_unroll = 4;
  limits.max_expansions = 5;
  auto expansions = ExpandRq(q, limits);
  ASSERT_TRUE(expansions.ok());
  EXPECT_TRUE(expansions->truncated);
  EXPECT_LE(expansions->expansions.size(), limits.max_expansions);
  for (const ConjunctiveQuery& cq : expansions->expansions) {
    // Every link contributes one letter atom AND its d-atom; a short-circuit
    // that dropped conjuncts would break the pairing.
    size_t letters = 0;
    size_t ds = 0;
    for (const CqAtom& atom : cq.atoms) {
      if (atom.predicate == "d") {
        ++ds;
      } else {
        ++letters;
      }
    }
    EXPECT_EQ(letters, ds) << "partial conjunct emitted under truncation";
    EXPECT_GE(ds, 1u);
  }
}

// End-to-end soundness of the truncation short-circuits: Q ⊑ Q can never be
// refuted, no matter how tight the expansion bounds are (a spurious partial
// expansion would make Q2 appear to miss the frozen head).
TEST(RqExpandTest, TightBoundsNeverRefuteSelfContainment) {
  const char* queries[] = {
      "q(x, y) := tc[x,y]( a(x,y) | b(x,y) )",
      "q(x, y) := tc[x,y]( a(x,y) & b(x,y) )",
      "q(x, y) := exists[w]( p(w) & tc[x,y]( a(x,y) & c(x,w) ) )",
  };
  for (const char* text : queries) {
    RqQuery q = Parse(text);
    for (size_t cap : {1u, 2u, 3u, 7u}) {
      RqContainmentOptions options;
      options.expand.max_tc_unroll = 3;
      options.expand.max_expansions = cap;
      auto result = CheckRqContainment(q, q, options);
      ASSERT_TRUE(result.ok()) << text;
      EXPECT_NE(result->certainty, Certainty::kRefuted)
          << text << " with max_expansions=" << cap;
    }
  }
}

}  // namespace
}  // namespace rq

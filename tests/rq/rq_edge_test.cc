// Edge cases of the RQ algebra: boolean (0-ary) queries, deep nesting,
// selection/projection interactions, and SubstituteFreeVars hygiene.
#include <gtest/gtest.h>

#include "rq/eval.h"
#include "rq/parser.h"

namespace rq {
namespace {

RqQuery Parse(const std::string& text) {
  auto q = ParseRq(text);
  RQ_CHECK(q.ok());
  return *q;
}

Database EdgeDb(const std::string& name,
                const std::vector<std::pair<Value, Value>>& edges) {
  Database db;
  Relation* e = db.GetOrCreate(name, 2).value();
  for (const auto& [x, y] : edges) e->Insert({x, y});
  return db;
}

TEST(RqEdgeTest, ProjectionToSingleColumn) {
  Database db = EdgeDb("r", {{1, 2}, {3, 4}});
  Relation out = EvalRqQuery(db, Parse("q(x) := exists[y](r(x, y))")).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{1}, {3}}));
}

TEST(RqEdgeTest, SelectionThenProjection) {
  Database db = EdgeDb("r", {{1, 1}, {1, 2}, {3, 3}});
  Relation out =
      EvalRqQuery(db, Parse("q(x) := exists[y](eq[x,y](r(x, y)))")).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{1}, {3}}));
}

TEST(RqEdgeTest, DeeplyNestedClosures) {
  // tc(tc(r) ∘ tc(r)) — nested closures compose.
  Database db = EdgeDb("r", {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  RqQuery q = Parse(
      "q(x, y) := tc[x,y](exists[m](tc[x,m](r(x, m)) & tc[m,y](r(m, y))))");
  Relation out = EvalRqQuery(db, q).value();
  // Any pair at distance >= 2 (each step of the outer closure needs two
  // nonempty inner hops); the closure then reaches distance >= 2 pairs.
  EXPECT_TRUE(out.Contains({0, 2}));
  EXPECT_TRUE(out.Contains({0, 4}));
  EXPECT_TRUE(out.Contains({0, 3}));
  EXPECT_FALSE(out.Contains({0, 1}));
  EXPECT_FALSE(out.Contains({1, 0}));
}

TEST(RqEdgeTest, UnionOfDifferentShapes) {
  Database db;
  db.GetOrCreate("r", 2).value()->Insert({1, 2});
  db.GetOrCreate("s", 2).value()->Insert({2, 9});
  RqQuery q =
      Parse("q(x, y) := r(x, y) | exists[m](r(x, m) & s(m, y))");
  Relation out = EvalRqQuery(db, q).value();
  EXPECT_TRUE(out.Contains({1, 2}));
  EXPECT_TRUE(out.Contains({1, 9}));
  EXPECT_EQ(out.size(), 2u);
}

TEST(RqEdgeTest, SubstituteFreshensBoundVariables) {
  RqQuery q = Parse("q(x, z) := exists[y](r(x, y) & s(y, z))");
  uint32_t next = q.root->MaxVarIdPlus1();
  // Substitute x -> z's id to force potential capture; bound y must be
  // renamed away so the result stays well-formed.
  VarId x = q.head[0];
  VarId z = q.head[1];
  RqExprPtr substituted = SubstituteFreeVars(q.root, {{x, z}}, &next);
  // Free vars collapse to {z}.
  EXPECT_EQ(substituted->FreeVars(), (std::vector<VarId>{z}));
  // And evaluation works: pairs where both endpoints coincide.
  Database db;
  db.GetOrCreate("r", 2).value()->Insert({1, 5});
  db.GetOrCreate("s", 2).value()->Insert({5, 1});
  RqQuery collapsed;
  collapsed.root = substituted;
  collapsed.head = {z};
  Relation out = EvalRqQuery(db, collapsed).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{1}}));
}

TEST(RqEdgeTest, ComposeBinaryBuildsComposition) {
  uint32_t next = 10;
  RqExprPtr r = RqExpr::Atom("r", {0, 1});
  RqExprPtr s = RqExpr::Atom("s", {0, 1});
  RqExprPtr composed = ComposeBinary(r, s, &next);
  EXPECT_EQ(composed->FreeVars(), (std::vector<VarId>{0, 1}));
  Database db;
  db.GetOrCreate("r", 2).value()->Insert({1, 2});
  db.GetOrCreate("s", 2).value()->Insert({2, 3});
  db.GetOrCreate("s", 2).value()->Insert({4, 5});
  RqQuery q;
  q.root = composed;
  q.head = {0, 1};
  Relation out = EvalRqQuery(db, q).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{1, 3}}));
}

TEST(RqEdgeTest, EvalRespectsEmptyRelations) {
  Database db;
  db.GetOrCreate("r", 2).value();  // present but empty
  Relation out = EvalRqQuery(db, Parse("q(x, y) := tc[x,y](r(x, y))")).value();
  EXPECT_TRUE(out.empty());
}

TEST(RqEdgeTest, ExpressionSizeAndPredicates) {
  RqQuery q = Parse(
      "q(x, y) := tc[x,y](exists[z](a(x, z) & b(z, y))) | c(x, y)");
  EXPECT_EQ(q.root->Predicates(),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(q.root->UsesClosure());
  EXPECT_GE(q.root->Size(), 6u);
}

}  // namespace
}  // namespace rq

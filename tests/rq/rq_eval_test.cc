#include "rq/eval.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "rq/parser.h"

namespace rq {
namespace {

RqQuery Parse(const std::string& text) {
  auto q = ParseRq(text);
  RQ_CHECK(q.ok());
  return *q;
}

Database EdgeDb(const std::string& name,
                const std::vector<std::pair<Value, Value>>& edges) {
  Database db;
  Relation* e = db.GetOrCreate(name, 2).value();
  for (const auto& [x, y] : edges) e->Insert({x, y});
  return db;
}

TEST(RqParserTest, ParsesAtomsAndHead) {
  RqQuery q = Parse("q(x, y) := r(x, y)");
  EXPECT_EQ(q.head.size(), 2u);
  EXPECT_EQ(q.root->kind(), RqExpr::Kind::kAtom);
}

TEST(RqParserTest, DefaultHeadIsSortedFreeVars) {
  RqQuery q = Parse("r(x, y) & s(y, z)");
  EXPECT_EQ(q.head.size(), 3u);
}

TEST(RqParserTest, RejectsIllFormedQueries) {
  EXPECT_FALSE(ParseRq("").ok());
  EXPECT_FALSE(ParseRq("r(x, y) |").ok());
  EXPECT_FALSE(ParseRq("r(x, y) | s(x, z)").ok());   // different frees
  EXPECT_FALSE(ParseRq("exists[w](r(x, y))").ok());  // w not free
  // Ternary tc bodies are legal (z is a parameter, held fixed along the
  // chain; docs/SYNTAX.md), but both endpoints must be free and distinct.
  EXPECT_TRUE(ParseRq("tc[x,y](r(x, y) & r(y, z))").ok());
  EXPECT_FALSE(ParseRq("tc[x,y](r(x, x))").ok());  // y not free
  EXPECT_FALSE(ParseRq("tc[x,x](r(x, y))").ok());
  EXPECT_FALSE(ParseRq("q(x, w) := r(x, y)").ok());  // head var not free
}

TEST(RqParserTest, ToStringReparses) {
  RqQuery q =
      Parse("q(x, y) := tc[x,y]( exists[z]( r(x,y) & r(y,z) & r(z,x) ) )");
  auto round = ParseRq(q.ToString());
  ASSERT_TRUE(round.ok()) << q.ToString();
  EXPECT_EQ(round->ToString(), q.ToString());
}

TEST(RqEvalTest, AtomEvaluation) {
  Database db = EdgeDb("r", {{1, 2}, {2, 3}});
  Relation out = EvalRqQuery(db, Parse("q(x, y) := r(x, y)")).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{1, 2}, {2, 3}}));
}

TEST(RqEvalTest, AtomWithRepeatedVariable) {
  Database db = EdgeDb("r", {{1, 1}, {1, 2}, {3, 3}});
  Relation out = EvalRqQuery(db, Parse("q(x) := r(x, x)")).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{1}, {3}}));
}

TEST(RqEvalTest, HeadReordersAndRepeats) {
  Database db = EdgeDb("r", {{1, 2}});
  Relation swapped = EvalRqQuery(db, Parse("q(y, x) := r(x, y)")).value();
  EXPECT_EQ(swapped.SortedTuples(), (std::vector<Tuple>{{2, 1}}));
  Relation repeated = EvalRqQuery(db, Parse("q(x, x) := r(x, y)")).value();
  EXPECT_EQ(repeated.SortedTuples(), (std::vector<Tuple>{{1, 1}}));
}

TEST(RqEvalTest, ConjunctionJoins) {
  Database db = EdgeDb("r", {{1, 2}, {2, 3}, {3, 4}});
  Relation out =
      EvalRqQuery(db, Parse("q(x, z) := exists[y](r(x, y) & r(y, z))"))
          .value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{1, 3}, {2, 4}}));
}

TEST(RqEvalTest, DisjunctionUnions) {
  Database db;
  db.GetOrCreate("r", 2).value()->Insert({1, 2});
  db.GetOrCreate("s", 2).value()->Insert({3, 4});
  Relation out =
      EvalRqQuery(db, Parse("q(x, y) := r(x, y) | s(x, y)")).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{1, 2}, {3, 4}}));
}

TEST(RqEvalTest, SelectionFiltersEquality) {
  Database db = EdgeDb("r", {{1, 1}, {1, 2}});
  Relation out = EvalRqQuery(db, Parse("q(x, y) := eq[x,y](r(x, y))")).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{1, 1}}));
}

TEST(RqEvalTest, TransitiveClosure) {
  Database db = EdgeDb("r", {{1, 2}, {2, 3}, {3, 4}});
  Relation out = EvalRqQuery(db, Parse("q(x, y) := tc[x,y](r(x, y))")).value();
  EXPECT_EQ(out.size(), 6u);
  EXPECT_TRUE(out.Contains({1, 4}));
}

TEST(RqEvalTest, ClosureOfComposedQuery) {
  // tc of "two r-steps": reaches even distances.
  Database db = EdgeDb("r", {{1, 2}, {2, 3}, {3, 4}, {4, 5}});
  Relation out =
      EvalRqQuery(db,
                  Parse("q(x, z) := tc[x,z](exists[y](r(x,y) & r(y,z)))"))
          .value();
  EXPECT_TRUE(out.Contains({1, 3}));
  EXPECT_TRUE(out.Contains({1, 5}));
  EXPECT_FALSE(out.Contains({1, 2}));
  EXPECT_FALSE(out.Contains({1, 4}));
}

// The paper's §3.4 motivation: the transitive closure of the triangle query
// is expressible in RQ (but not in UC2RPQ).
TEST(RqEvalTest, TriangleClosurePaperExample) {
  RqQuery q =
      Parse("q(x, y) := tc[x,y]( exists[z]( r(x,y) & r(y,z) & r(z,x) ) )");
  // Two disjoint triangles (1,2,3) and (4,5,6) plus a bridge edge 3 -> 4
  // that belongs to no triangle.
  Database db = EdgeDb("r", {{1, 2},
                             {2, 3},
                             {3, 1},
                             {4, 5},
                             {5, 6},
                             {6, 4},
                             {3, 4}});
  Relation out = EvalRqQuery(db, q).value();
  // Within a triangle the base relation cycles, so its closure is total.
  EXPECT_TRUE(out.Contains({1, 2}));
  EXPECT_TRUE(out.Contains({2, 1}));
  EXPECT_TRUE(out.Contains({1, 1}));
  EXPECT_TRUE(out.Contains({4, 6}));
  // The bridge edge is not part of any triangle: the triangles stay
  // disconnected in the closure.
  EXPECT_FALSE(out.Contains({1, 4}));
  EXPECT_FALSE(out.Contains({3, 4}));
}

// Parameterized closure: the body's extra free variable z is held fixed
// along the chain, so the closure is computed per z-group. Edges with
// different parameters must not link up.
TEST(RqEvalTest, ParameterizedClosureGroupsByParameter) {
  Database db;
  Relation* r = db.GetOrCreate("r", 3).value();
  r->Insert({1, 2, 7});
  r->Insert({2, 3, 7});
  r->Insert({2, 3, 8});
  Relation out =
      EvalRqQuery(db, Parse("q(x, y, z) := tc[x,y](r(x, y, z))")).value();
  EXPECT_EQ(out.SortedTuples(),
            (std::vector<Tuple>{{1, 2, 7}, {1, 3, 7}, {2, 3, 7}, {2, 3, 8}}));
}

TEST(RqEvalTest, ParameterizedClosureNeverMixesParameters) {
  Database db;
  Relation* r = db.GetOrCreate("r", 3).value();
  r->Insert({1, 2, 7});
  r->Insert({2, 3, 8});  // would extend the chain only if z could change
  Relation out =
      EvalRqQuery(db, Parse("q(x, y, z) := tc[x,y](r(x, y, z))")).value();
  EXPECT_EQ(out.SortedTuples(),
            (std::vector<Tuple>{{1, 2, 7}, {2, 3, 8}}));
}

TEST(RqEvalTest, InverseOrientationViaAtomSwap) {
  Database db = EdgeDb("r", {{1, 2}});
  Relation out = EvalRqQuery(db, Parse("q(x, y) := r(y, x)")).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{2, 1}}));
}

TEST(RqEvalTest, GraphToDatabaseView) {
  GraphDb graph = PathGraph(3, "e");
  Database db = GraphToDatabase(graph);
  const Relation* e = db.Find("e");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->SortedTuples(), (std::vector<Tuple>{{0, 1}, {1, 2}}));
}

TEST(RqEvalTest, BinaryTransitiveClosureOnCycle) {
  Relation base(2);
  base.Insert({0, 1});
  base.Insert({1, 2});
  base.Insert({2, 0});
  Relation closed = BinaryTransitiveClosure(base);
  EXPECT_EQ(closed.size(), 9u);
}

TEST(RqEvalTest, FindColumnLocatesSortedVariables) {
  std::vector<VarId> vars{0, 2, 5};
  EXPECT_EQ(FindColumn(vars, 0).value(), 0u);
  EXPECT_EQ(FindColumn(vars, 2).value(), 1u);
  EXPECT_EQ(FindColumn(vars, 5).value(), 2u);
}

// A malformed expression tree (a variable that is not a column of the
// subresult) must surface as InvalidArgument through the Result<> channel,
// not abort the process.
TEST(RqEvalTest, FindColumnMissingVariableIsInvalidArgument) {
  std::vector<VarId> vars{0, 2, 5};
  for (VarId missing : {1u, 3u, 9u}) {
    Result<size_t> col = FindColumn(vars, missing);
    ASSERT_FALSE(col.ok());
    EXPECT_EQ(col.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(col.status().message().find("v" + std::to_string(missing)),
              std::string::npos);
  }
  Result<size_t> empty = FindColumn({}, 0);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
}

TEST(RqEvalTest, MissingRelationIsEmpty) {
  Database db;
  Relation out = EvalRqQuery(db, Parse("q(x, y) := ghost(x, y)")).value();
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace rq

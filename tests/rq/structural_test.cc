#include "rq/structural.h"

#include <gtest/gtest.h>

#include "rq/parser.h"

namespace rq {
namespace {

RqQuery Parse(const std::string& text) {
  auto q = ParseRq(text);
  RQ_CHECK(q.ok());
  return *q;
}

Certainty Verdict(const std::string& q1, const std::string& q2) {
  auto result = CheckRqContainment(Parse(q1), Parse(q2));
  RQ_CHECK(result.ok());
  return result->certainty;
}

TEST(StructuralEqualityTest, RenamedQueriesAreEqual) {
  EXPECT_TRUE(StructurallyEqual(
      Parse("q(x, y) := tc[x,y](r(x, y))"),
      Parse("q(a, b) := tc[a,b](r(a, b))")));
  EXPECT_TRUE(StructurallyEqual(
      Parse("q(x, z) := exists[m](r(x, m) & s(m, z))"),
      Parse("q(u, w) := exists[v](r(u, v) & s(v, w))")));
}

TEST(StructuralEqualityTest, DifferentStructureIsNotEqual) {
  EXPECT_FALSE(StructurallyEqual(Parse("q(x, y) := r(x, y)"),
                                 Parse("q(x, y) := s(x, y)")));
  EXPECT_FALSE(StructurallyEqual(Parse("q(x, y) := r(x, y)"),
                                 Parse("q(x, y) := r(y, x)")));
  EXPECT_FALSE(StructurallyEqual(Parse("q(x, y) := tc[x,y](r(x, y))"),
                                 Parse("q(x, y) := r(x, y)")));
}

TEST(StructuralEqualityTest, BijectionMustBeConsistent) {
  // x maps to both a and b — not a bijection.
  EXPECT_FALSE(StructurallyEqual(
      Parse("q(x, y) := r(x, y) & s(x, y)"),
      Parse("q(a, b) := r(a, b) & s(b, a)")));
}

// The headline rule: TC-monotonicity proves closure containments whose
// bodies are only expansion-checkable.
TEST(StructuralRulesTest, TcMonotonicityProvesClosurePairs) {
  // TC over (link ∧ acl) ⊑ TC over link — the declarative-networking
  // containment. The body is a parallel conjunction (not 2RPQ-lowerable),
  // so without the structural rule this is unknown-up-to-bound.
  Certainty verdict = Verdict(
      "q(x, y) := tc[x,y](link(x, y) & acl(x, y))",
      "q(x, y) := tc[x,y](link(x, y))");
  EXPECT_EQ(verdict, Certainty::kProved);
}

TEST(StructuralRulesTest, TcMonotonicityRespectsOrientation) {
  // TC(r ∧ s) in swapped orientation ⊑ TC(r swapped).
  Certainty verdict = Verdict(
      "q(y, x) := tc[x,y](r(x, y) & s(x, y))",
      "q(b, a) := tc[a,b](r(a, b))");
  EXPECT_EQ(verdict, Certainty::kProved);
}

TEST(StructuralRulesTest, NonContainedClosureBodiesStayRefutedOrUnknown) {
  // TC(link) ⊑ TC(link ∧ acl) is false; the expansion engine refutes it
  // before any structural rule fires.
  Certainty verdict = Verdict(
      "q(x, y) := tc[x,y](link(x, y))",
      "q(x, y) := tc[x,y](link(x, y) & acl(x, y))");
  EXPECT_EQ(verdict, Certainty::kRefuted);
}

TEST(StructuralRulesTest, OrDecompositionOnTheLeft) {
  // Each closure disjunct is contained in the wider closure.
  Certainty verdict = Verdict(
      "q(x, y) := tc[x,y](a(x, y) & c(x, y)) | tc[x,y](b(x, y) & c(x, y))",
      "q(x, y) := tc[x,y](a(x, y) | b(x, y))");
  EXPECT_EQ(verdict, Certainty::kProved);
}

TEST(StructuralRulesTest, TcIntroOnTheRight) {
  // A single step is contained in the closure, even when the step is not
  // path-shaped.
  Certainty verdict = Verdict(
      "q(x, y) := r(x, y) & s(x, y)",
      "q(x, y) := tc[x,y](r(x, y) & s(x, y))");
  EXPECT_EQ(verdict, Certainty::kProved);
}

TEST(StructuralRulesTest, AndWeakeningWithClosureConjuncts) {
  // Dropping a conjunct weakens; the kept conjunct is a closure, so the
  // subgoal goes through TC-MONO/EQ rather than expansions.
  Certainty verdict = Verdict(
      "q(x, y) := tc[x,y](r(x, y) & s(x, y)) & t(x, y)",
      "q(x, y) := tc[x,y](r(x, y))");
  // Left is an And at the top only after parsing: actually the left root
  // is And(tc, t); q2 is the closure — AND case requires q2.root And, so
  // this routes through... verify the verdict is at least not wrong.
  EXPECT_NE(verdict, Certainty::kRefuted);
}

TEST(StructuralRulesTest, ExistsCongruence) {
  Certainty verdict = Verdict(
      "q(x, z) := exists[m](tc[x,m](a(x, m) & b(x, m)) & c(m, z))",
      "q(x, z) := exists[m](tc[x,m](a(x, m)) & c(m, z))");
  EXPECT_EQ(verdict, Certainty::kProved);
}

TEST(StructuralRulesTest, SelfContainmentOfComplexClosures) {
  const char* queries[] = {
      "q(x, y) := tc[x,y](r(x, y) & s(x, y))",
      "q(x, y) := tc[x,y](exists[z](r(x, z) & r(z, y) & t(x, y)))",
      "q(x, y) := tc[x,y](r(x, y)) & tc[x,y](s(x, y))",
  };
  for (const char* text : queries) {
    auto result = CheckRqContainment(Parse(text), Parse(text));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->certainty, Certainty::kProved) << text;
  }
}

TEST(StructuralRulesTest, RulesNeverFireUnsoundly) {
  // Pairs that are NOT contained; structural rules must not prove them.
  const char* pairs[][2] = {
      {"q(x, y) := tc[x,y](r(x, y))",
       "q(x, y) := tc[x,y](r(x, y) & s(x, y))"},
      {"q(x, y) := tc[x,y](r(x, y) | s(x, y))",
       "q(x, y) := tc[x,y](r(x, y))"},
      {"q(x, y) := tc[x,y](r(x, y))", "q(x, y) := tc[x,y](s(x, y))"},
      {"q(x, y) := tc[x,y](r(x, y))", "q(y, x) := tc[x,y](r(x, y))"},
  };
  for (const auto& pair : pairs) {
    auto result = CheckRqContainment(Parse(pair[0]), Parse(pair[1]));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->certainty, Certainty::kRefuted)
        << pair[0] << " vs " << pair[1];
  }
}

}  // namespace
}  // namespace rq

#include "rq/equivalence.h"

#include <gtest/gtest.h>

#include "rq/parser.h"

namespace rq {
namespace {

RqQuery Parse(const std::string& text) {
  auto q = ParseRq(text);
  RQ_CHECK(q.ok());
  return *q;
}

EquivalenceVerdict Verdict(const std::string& q1, const std::string& q2) {
  auto result = CheckRqEquivalence(Parse(q1), Parse(q2));
  RQ_CHECK(result.ok());
  return result->verdict;
}

TEST(RqEquivalenceTest, SyntacticVariantsAreEquivalent) {
  EXPECT_EQ(Verdict("q(x, y) := r(x, y)", "q(a, b) := r(a, b)"),
            EquivalenceVerdict::kEquivalent);
  // p (p⁻ p)* ≡ (p p⁻)* p over graphs (both lower to 2RPQs).
  EXPECT_EQ(
      Verdict(
          "q(x, y) := exists[a](p(x, a) & tc[a,y]( exists[m](p(m, a) & "
          "p(m, y)) ) ) | p(x, y)",
          "q(x, y) := p(x, y) | exists[a](p(x, a) & tc[a,y]( "
          "exists[m](p(m, a) & p(m, y)) ) )"),
      EquivalenceVerdict::kEquivalent);
}

TEST(RqEquivalenceTest, StrictContainmentIsNotEquivalent) {
  auto result = CheckRqEquivalence(
      Parse("q(x, y) := r(x, y) & s(x, y)"), Parse("q(x, y) := r(x, y)"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->verdict, EquivalenceVerdict::kNotEquivalent);
  // Forward holds; backward is the refuted direction with a certificate.
  EXPECT_EQ(result->forward.certainty, Certainty::kProved);
  EXPECT_EQ(result->backward.certainty, Certainty::kRefuted);
  EXPECT_TRUE(result->backward.counterexample.has_value());
}

TEST(RqEquivalenceTest, OneDirectionRefutedIsNotEquivalent) {
  // True forward containment (unprovable within bounds), refuted backward:
  // the combination is a definite non-equivalence.
  auto result = CheckRqEquivalence(
      Parse("q(x, y) := tc[x,y](exists[m](r(x, m) & r(m, y)) & g(x, y))"),
      Parse("q(x, y) := tc[x,y](r(x, y))"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->verdict, EquivalenceVerdict::kNotEquivalent);
}

TEST(RqEquivalenceTest, UnknownStaysUnknown) {
  // TC(B) vs TC(B ∪ B∘B) with a guarded, non-lowerable B: truly
  // equivalent; the forward direction is proved by TC-monotonicity
  // (B ⊑ B ∪ B² is a closure-free exact subgoal) but the backward
  // direction would need B ∪ B² ⊑ TC-iteration reasoning no rule provides,
  // so the honest combined verdict is unknown-up-to-bound.
  EXPECT_EQ(
      Verdict(
          "q(x, y) := tc[x,y]( exists[m](r(x, m) & r(m, y)) & g(x, y) )",
          "q(x, y) := tc[x,y]( (exists[m](r(x, m) & r(m, y)) & g(x, y)) | "
          "exists[w]( (exists[a](r(x, a) & r(a, w)) & g(x, w)) & "
          "(exists[b](r(w, b) & r(b, y)) & g(w, y)) ) )"),
      EquivalenceVerdict::kUnknownUpToBound);
}

TEST(RqEquivalenceTest, DistinctPredicatesRefuted) {
  EXPECT_EQ(Verdict("q(x, y) := r(x, y)", "q(x, y) := s(x, y)"),
            EquivalenceVerdict::kNotEquivalent);
}

}  // namespace
}  // namespace rq

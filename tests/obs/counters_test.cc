#include "obs/counters.h"

#include <gtest/gtest.h>

namespace rq {
namespace obs {
namespace {

TEST(CountersTest, RegistryInternsHandles) {
  Counter* a = GetCounter("test.interning");
  Counter* b = GetCounter("test.interning");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->name(), "test.interning");
  EXPECT_NE(a, GetCounter("test.interning2"));
}

TEST(CountersTest, AddAndIncrement) {
  Counter* c = GetCounter("test.add_increment");
  uint64_t before = c->value();
  c->Add(40);
  c->Increment();
  c->Increment();
  EXPECT_EQ(c->value(), before + 42);
}

TEST(CountersTest, SnapshotIsNameSorted) {
  GetCounter("test.zzz")->Increment();
  GetCounter("test.aaa")->Increment();
  std::vector<CounterSample> snapshot = Registry::Global().Snapshot();
  ASSERT_GE(snapshot.size(), 2u);
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].name, snapshot[i].name);
  }
}

TEST(CountersTest, DeltaAttributesOneOperation) {
  GetCounter("test.delta")->Add(100);
  CounterDelta delta;
  EXPECT_EQ(delta.Delta("test.delta"), 0u);
  GetCounter("test.delta")->Add(7);
  EXPECT_EQ(delta.Delta("test.delta"), 7u);
  // Counters registered after the baseline report their full value.
  GetCounter("test.delta_late")->Add(3);
  EXPECT_EQ(delta.Delta("test.delta_late"), 3u);
  // Untouched counters do not show up in Deltas().
  for (const CounterSample& sample : delta.Deltas()) {
    EXPECT_NE(sample.value, 0u) << sample.name;
  }
}

TEST(CountersTest, ResetAllZeroesButKeepsRegistration) {
  Counter* c = GetCounter("test.reset");
  c->Add(5);
  Registry::Global().ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(GetCounter("test.reset"), c);
}

}  // namespace
}  // namespace obs
}  // namespace rq

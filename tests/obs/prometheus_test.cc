// Tests for the Prometheus text-exposition rendering (obs/prometheus.h):
// metric-name sanitization, the `_dist` histogram family suffix, and the
// histogram -> cumulative-bucket mapping edge cases — empty histogram,
// single sample, max-bucket saturation near UINT64_MAX, and p99/`le`
// agreement between the rq-obs/2 quantile (bucket lower bound) and the
// Prometheus bucket boundaries (inclusive upper bounds).
//
// The registries are process-wide and shared with every other test in this
// binary, so each test uses uniquely named metrics and parses only its own
// families out of the rendered document.
#include "obs/prometheus.h"

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/counters.h"
#include "obs/flight_recorder.h"
#include "obs/histogram.h"

namespace rq {
namespace obs {
namespace {

// All sample lines of one family: (labels-or-empty, value), in document
// order. `family` is the full Prometheus name incl. any _dist suffix;
// matches the family's _bucket/_sum/_count series too.
std::vector<std::pair<std::string, uint64_t>> FamilySamples(
    const std::string& text, const std::string& family) {
  std::vector<std::pair<std::string, uint64_t>> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    std::string key = line.substr(0, space);
    std::string name = key.substr(0, key.find('{'));
    if (name != family && name != family + "_bucket" &&
        name != family + "_sum" && name != family + "_count") {
      continue;
    }
    out.emplace_back(key, std::stoull(line.substr(space + 1)));
  }
  return out;
}

uint64_t SampleValue(const std::string& text, const std::string& key) {
  for (const auto& [k, v] : FamilySamples(text, key.substr(0, key.find('{'))))
    if (k == key) return v;
  ADD_FAILURE() << "sample not found: " << key;
  return 0;
}

// Cumulative (le, count) pairs for a histogram family, finite buckets only.
std::vector<std::pair<uint64_t, uint64_t>> FiniteBuckets(
    const std::string& text, const std::string& family) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  const std::string prefix = family + "_bucket{le=\"";
  for (const auto& [key, value] : FamilySamples(text, family)) {
    if (key.rfind(prefix, 0) != 0) continue;
    std::string le = key.substr(prefix.size());
    le = le.substr(0, le.find('"'));
    if (le == "+Inf") continue;
    out.emplace_back(std::stoull(le), value);
  }
  return out;
}

TEST(PrometheusTest, MetricNameSanitization) {
  EXPECT_EQ(PrometheusMetricName("containment.states_explored"),
            "rq_containment_states_explored");
  EXPECT_EQ(PrometheusMetricName("fold.peak-live cells"),
            "rq_fold_peak_live_cells");
  EXPECT_EQ(PrometheusMetricName("a:b_C9"), "rq_a:b_C9");
}

TEST(PrometheusTest, CounterAndTypeLines) {
  GetCounter("promtest.counter")->Add(7);
  std::string text = RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE rq_promtest_counter counter\n"),
            std::string::npos);
  EXPECT_EQ(SampleValue(text, "rq_promtest_counter"), 7u);
}

TEST(PrometheusTest, FlightRecordedTotalTracksRecorder) {
  FlightRecorder::Global().Reset();
  FlightRecorder::Global().Record(QueryKind::kGraphEval, kFlightVerdictOk,
                                  10, 1);
  std::string text = RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE rq_flight_recorded_total counter\n"),
            std::string::npos);
  EXPECT_EQ(SampleValue(text, "rq_flight_recorded_total"),
            FlightRecorder::Global().TotalRecorded());
}

// A histogram shares its counter's dotted name by convention; the _dist
// suffix must keep the two families distinct.
TEST(PrometheusTest, HistogramFamilyGetsDistSuffix) {
  GetCounter("promtest.shared")->Add(3);
  GetHistogram("promtest.shared")->Record(3);
  std::string text = RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE rq_promtest_shared counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rq_promtest_shared_dist histogram\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE rq_promtest_shared histogram"),
            std::string::npos);
}

// Edge case: a registered histogram that never recorded still renders a
// complete family — the mandatory +Inf bucket, _sum, and _count, all zero,
// and no finite buckets.
TEST(PrometheusTest, EmptyHistogramRendersZeroFamily) {
  GetHistogram("promtest.empty");
  std::string text = RenderPrometheusText();
  const std::string family = "rq_promtest_empty_dist";
  EXPECT_TRUE(FiniteBuckets(text, family).empty());
  EXPECT_EQ(SampleValue(text, family + "_bucket{le=\"+Inf\"}"), 0u);
  EXPECT_EQ(SampleValue(text, family + "_sum"), 0u);
  EXPECT_EQ(SampleValue(text, family + "_count"), 0u);
}

// Edge case: one sample yields exactly one finite bucket whose `le` is the
// inclusive upper bound of the sample's bucket, and the sample value lies
// in (previous bound, le].
TEST(PrometheusTest, SingleSampleBucketBounds) {
  constexpr uint64_t kValue = 37;
  GetHistogram("promtest.single")->Record(kValue);
  std::string text = RenderPrometheusText();
  const std::string family = "rq_promtest_single_dist";

  auto buckets = FiniteBuckets(text, family);
  ASSERT_EQ(buckets.size(), 1u);
  size_t index = Histogram::BucketIndex(kValue);
  EXPECT_EQ(buckets[0].first, Histogram::BucketLowerBound(index + 1) - 1);
  EXPECT_EQ(buckets[0].second, 1u);
  EXPECT_GE(buckets[0].first, kValue);
  EXPECT_LE(Histogram::BucketLowerBound(index), kValue);
  EXPECT_EQ(SampleValue(text, family + "_bucket{le=\"+Inf\"}"), 1u);
  EXPECT_EQ(SampleValue(text, family + "_sum"), kValue);
  EXPECT_EQ(SampleValue(text, family + "_count"), 1u);
}

// Edge case: a sample in the top bucket cannot get a finite `le`
// (BucketLowerBound(kNumBuckets) would overflow uint64); it must be folded
// into the +Inf bucket only.
TEST(PrometheusTest, MaxBucketSaturationFoldsIntoInf) {
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  ASSERT_EQ(Histogram::BucketIndex(kMax), Histogram::kNumBuckets - 1);
  GetHistogram("promtest.saturated")->Record(kMax);
  GetHistogram("promtest.saturated")->Record(5);
  std::string text = RenderPrometheusText();
  const std::string family = "rq_promtest_saturated_dist";

  auto buckets = FiniteBuckets(text, family);
  // Only the value-5 bucket gets a finite line; kMax lives in +Inf alone.
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].first,
            Histogram::BucketLowerBound(Histogram::BucketIndex(5) + 1) - 1);
  EXPECT_EQ(buckets[0].second, 1u);
  EXPECT_EQ(SampleValue(text, family + "_bucket{le=\"+Inf\"}"), 2u);
  EXPECT_EQ(SampleValue(text, family + "_count"), 2u);
  EXPECT_EQ(SampleValue(text, family + "_sum"), kMax + 5);  // wraps: 4
}

TEST(PrometheusTest, BucketsAreCumulativeAndEndAtCount) {
  Histogram* hist = GetHistogram("promtest.cumulative");
  for (uint64_t v : {1, 1, 2, 10, 100, 1000, 1000, 100000}) hist->Record(v);
  std::string text = RenderPrometheusText();
  const std::string family = "rq_promtest_cumulative_dist";

  auto buckets = FiniteBuckets(text, family);
  ASSERT_GE(buckets.size(), 4u);
  uint64_t prev_le = 0, prev_count = 0;
  for (const auto& [le, count] : buckets) {
    EXPECT_GT(le, prev_le);        // strictly increasing bounds
    EXPECT_GE(count, prev_count);  // cumulative counts never decrease
    prev_le = le;
    prev_count = count;
  }
  EXPECT_EQ(prev_count, hist->count());  // last finite bucket covers all
  EXPECT_EQ(SampleValue(text, family + "_bucket{le=\"+Inf\"}"),
            hist->count());
}

// The rq-obs/2 JSON export reports p99 as the LOWER bound of the bucket
// holding rank ceil(0.99 * count); the Prometheus `le` is that bucket's
// inclusive UPPER bound. The two must agree on the bucket: the smallest
// `le` whose cumulative count reaches the p99 rank bounds the exported p99
// from above, within one bucket's width.
TEST(PrometheusTest, P99AgreesBetweenJsonExportAndPrometheusBuckets) {
  Histogram* hist = GetHistogram("promtest.p99");
  for (int i = 0; i < 990; ++i) hist->Record(10);
  for (int i = 0; i < 10; ++i) hist->Record(5000);
  uint64_t p99 = hist->ValueAtQuantile(0.99);

  std::string text = RenderPrometheusText();
  auto buckets = FiniteBuckets(text, "rq_promtest_p99_dist");
  ASSERT_FALSE(buckets.empty());

  uint64_t rank = (hist->count() * 99 + 99) / 100;  // ceil(0.99 * count)
  uint64_t chosen_le = 0;
  for (const auto& [le, count] : buckets) {
    if (count >= rank) {
      chosen_le = le;
      break;
    }
  }
  ASSERT_NE(chosen_le, 0u);
  // Same bucket: the JSON p99 is the lower bound, the Prometheus le the
  // upper bound, of one and the same bucket.
  EXPECT_EQ(Histogram::BucketIndex(chosen_le), Histogram::BucketIndex(p99));
  EXPECT_EQ(p99, Histogram::BucketLowerBound(Histogram::BucketIndex(chosen_le)));
  EXPECT_LE(p99, chosen_le);
}

TEST(PrometheusTest, WriteFileRejectsUnwritablePath) {
  EXPECT_FALSE(WritePrometheusTextFile("/nonexistent-dir/metrics.prom").ok());
}

// Exposition-format escaping (0.0.4): label values escape backslash,
// double quote, and newline; HELP text escapes backslash and newline but
// NOT quotes.
TEST(PrometheusTest, LabelValueEscaping) {
  EXPECT_EQ(PrometheusEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusEscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(PrometheusEscapeLabelValue("two\nlines"), "two\\nlines");
  // A regex query the CLI would install: backslash-heavy, quoted.
  EXPECT_EQ(PrometheusEscapeLabelValue("(a\\-)* <= \"b\""),
            "(a\\\\-)* <= \\\"b\\\"");
}

TEST(PrometheusTest, HelpTextEscaping) {
  EXPECT_EQ(PrometheusEscapeHelp("plain help"), "plain help");
  EXPECT_EQ(PrometheusEscapeHelp("back\\slash"), "back\\\\slash");
  EXPECT_EQ(PrometheusEscapeHelp("two\nlines"), "two\\nlines");
  EXPECT_EQ(PrometheusEscapeHelp("keep \"quotes\""), "keep \"quotes\"");
}

// The CLI's query text reaches the export as rq_query_info{query="..."};
// arbitrary regex/RQ syntax (backslashes, quotes, newlines) must render as
// one parseable sample line.
TEST(PrometheusTest, QueryInfoMetricCarriesEscapedLabel) {
  SetFlightQueryLabel("2rpq (a\\-)* <= \"b\"\nmultiline");
  std::string text = RenderPrometheusText();
  SetFlightQueryLabel("");
  EXPECT_NE(text.find("# TYPE rq_query_info gauge\n"), std::string::npos);
  EXPECT_NE(
      text.find(
          "rq_query_info{query=\"2rpq (a\\\\-)* <= \\\"b\\\"\\nmultiline\"} 1"),
      std::string::npos);
  // The raw newline must NOT appear inside the rendered document.
  EXPECT_EQ(text.find("\"b\"\nmultiline"), std::string::npos);
}

TEST(PrometheusTest, NoQueryLabelMeansNoInfoMetric) {
  SetFlightQueryLabel("");
  std::string text = RenderPrometheusText();
  EXPECT_EQ(text.find("rq_query_info"), std::string::npos);
}

TEST(PrometheusTest, HelpLinesCarryDottedSourceNames) {
  GetCounter("promtest.helped")->Add(1);
  std::string text = RenderPrometheusText();
  EXPECT_NE(text.find("# HELP rq_promtest_helped promtest.helped\n"),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace rq

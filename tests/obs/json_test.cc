#include "obs/json.h"

#include <gtest/gtest.h>

#include "obs/counters.h"
#include "obs/export.h"
#include "obs/gauge.h"
#include "obs/histogram.h"

namespace rq {
namespace obs {
namespace {

TEST(JsonTest, DumpParseRoundTrip) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("rq-obs/2"));
  doc.Set("flag", JsonValue::Bool(true));
  doc.Set("nothing", JsonValue::Null());
  doc.Set("count", JsonValue::Number(uint64_t{1234567890123}));
  doc.Set("ratio", JsonValue::Number(0.5));
  doc.Set("text", JsonValue::String("quote \" slash \\ newline \n tab \t"));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Number(int64_t{-3}));
  arr.Append(JsonValue::String("x"));
  doc.Set("items", std::move(arr));

  for (int indent : {-1, 2}) {
    auto parsed = JsonValue::Parse(doc.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Dump(), doc.Dump());
    EXPECT_EQ(parsed->Find("schema")->string_value(), "rq-obs/2");
    EXPECT_TRUE(parsed->Find("flag")->bool_value());
    EXPECT_TRUE(parsed->Find("nothing")->is_null());
    // Large integers survive exactly (no exponent/precision loss).
    EXPECT_EQ(parsed->Find("count")->uint_value(), 1234567890123u);
    EXPECT_EQ(parsed->Find("text")->string_value(),
              "quote \" slash \\ newline \n tab \t");
    ASSERT_EQ(parsed->Find("items")->items().size(), 2u);
    EXPECT_EQ(parsed->Find("items")->items()[0].number_value(), -3.0);
  }
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("'single'").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
}

TEST(JsonTest, SnapshotExportRoundTrips) {
  GetCounter("test.snapshot_roundtrip")->Add(11);
  auto parsed = JsonValue::Parse(SnapshotJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("schema")->string_value(), "rq-obs/2");

  // Every registered counter appears, name-sorted, with its exact value.
  const JsonValue* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  std::vector<CounterSample> expected = Registry::Global().Snapshot();
  ASSERT_EQ(counters->items().size(), expected.size());
  bool found = false;
  for (size_t i = 0; i < expected.size(); ++i) {
    const JsonValue& entry = counters->items()[i];
    EXPECT_EQ(entry.Find("name")->string_value(), expected[i].name);
    EXPECT_EQ(entry.Find("value")->uint_value(), expected[i].value);
    found = found || expected[i].name == "test.snapshot_roundtrip";
  }
  EXPECT_TRUE(found);
  ASSERT_NE(parsed->Find("span_stats"), nullptr);
  ASSERT_NE(parsed->Find("dropped_spans"), nullptr);
}

TEST(JsonTest, SnapshotExportsGaugesAndHistograms) {
  GetGauge("test.json_gauge")->Reset();
  GetGauge("test.json_gauge")->Set(4);
  GetGauge("test.json_gauge")->Set(1);
  Histogram* h = GetHistogram("test.json_histogram");
  h->Reset();
  h->Record(2);
  h->Record(2);
  h->Record(1024);

  auto parsed = JsonValue::Parse(SnapshotJsonString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const JsonValue* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  bool gauge_found = false;
  for (const JsonValue& entry : gauges->items()) {
    if (entry.Find("name")->string_value() != "test.json_gauge") continue;
    gauge_found = true;
    EXPECT_EQ(entry.Find("value")->number_value(), 1.0);
    EXPECT_EQ(entry.Find("peak")->number_value(), 4.0);
  }
  EXPECT_TRUE(gauge_found);

  const JsonValue* histograms = parsed->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  bool histogram_found = false;
  for (const JsonValue& entry : histograms->items()) {
    if (entry.Find("name")->string_value() != "test.json_histogram") {
      continue;
    }
    histogram_found = true;
    EXPECT_EQ(entry.Find("count")->uint_value(), 3u);
    EXPECT_EQ(entry.Find("sum")->uint_value(), 1028u);
    EXPECT_EQ(entry.Find("max")->uint_value(), 1024u);
    EXPECT_EQ(entry.Find("p50")->uint_value(), 2u);
    EXPECT_EQ(entry.Find("p99")->uint_value(), 1024u);
  }
  EXPECT_TRUE(histogram_found);
}

}  // namespace
}  // namespace obs
}  // namespace rq

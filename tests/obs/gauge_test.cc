#include "obs/gauge.h"

#include <gtest/gtest.h>

#include <vector>

namespace rq {
namespace obs {
namespace {

TEST(GaugeTest, SetTracksLevelAndPeak) {
  Gauge* g = GetGauge("test.gauge_set");
  g->Reset();
  g->Set(10);
  g->Set(50);
  g->Set(20);
  EXPECT_EQ(g->value(), 20);
  EXPECT_EQ(g->peak(), 50);
}

TEST(GaugeTest, AddSubTracksHighWaterMark) {
  Gauge* g = GetGauge("test.gauge_addsub");
  g->Reset();
  g->Add(3);
  g->Add(4);   // level 7 — the high-water mark
  g->Sub(5);
  g->Add(1);   // level 3
  EXPECT_EQ(g->value(), 3);
  EXPECT_EQ(g->peak(), 7);
}

TEST(GaugeTest, PeakIgnoresNegativeLevels) {
  Gauge* g = GetGauge("test.gauge_negative");
  g->Reset();
  g->Sub(5);
  EXPECT_EQ(g->value(), -5);
  EXPECT_EQ(g->peak(), 0);
  g->Add(7);
  EXPECT_EQ(g->value(), 2);
  EXPECT_EQ(g->peak(), 2);
}

TEST(GaugeTest, ResetZeroesLevelAndPeak) {
  Gauge* g = GetGauge("test.gauge_reset");
  g->Set(99);
  g->Reset();
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(g->peak(), 0);
}

TEST(GaugeTest, RegistryInternsAndSnapshots) {
  Gauge* g = GetGauge("test.gauge_registry");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g, GetGauge("test.gauge_registry"));
  EXPECT_EQ(g->name(), "test.gauge_registry");
  g->Reset();
  g->Set(8);
  g->Set(2);

  bool found = false;
  std::vector<GaugeSample> snapshot = GaugeRegistry::Global().Snapshot();
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].name, snapshot[i].name);  // name-sorted
  }
  for (const GaugeSample& s : snapshot) {
    if (s.name != "test.gauge_registry") continue;
    found = true;
    EXPECT_EQ(s.value, 2);
    EXPECT_EQ(s.peak, 8);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace obs
}  // namespace rq

// Unit tests for the always-on flight recorder (obs/flight_recorder.h):
// ring recording and snapshot ordering, oldest-first eviction with the
// obs.flight_dropped accounting, the latency-gated slow-query log, the
// FlightTimer nesting suppression, and the WriteFlightDump text format.
// Concurrent-writer tearing is covered separately under the tsan label in
// tests/concurrency/flight_recorder_concurrency_test.cc.
#include "obs/flight_recorder.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/counters.h"
#include "rq/containment.h"

namespace rq {
namespace obs {
namespace {

constexpr uint64_t kDefaultThresholdNs = 100ull * 1000 * 1000;

// Every test owns the global recorder for its duration: clear the ring and
// pin the slow-query threshold so ordering between tests cannot leak.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::Global().Reset();
    FlightRecorder::Global().SetSlowQueryThresholdNs(kDefaultThresholdNs);
    SetFlightQueryLabel("");
  }
  void TearDown() override {
    FlightRecorder::Global().SetSlowQueryThresholdNs(kDefaultThresholdNs);
    SetFlightQueryLabel("");
  }
};

TEST_F(FlightRecorderTest, RecordSnapshotRoundtrip) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Record(QueryKind::kPathContainment, kFlightVerdictOk, 1000, 7);
  recorder.Record(QueryKind::kRqContainment, kFlightVerdictRefuted, 2000, 9);
  recorder.Record(QueryKind::kDatalogEval, kFlightVerdictOk, 3000, 11);

  EXPECT_EQ(recorder.TotalRecorded(), 3u);
  std::vector<FlightEntry> entries = recorder.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].seq, 0u);
  EXPECT_EQ(entries[0].kind, QueryKind::kPathContainment);
  EXPECT_EQ(entries[0].verdict, kFlightVerdictOk);
  EXPECT_EQ(entries[0].duration_ns, 1000u);
  EXPECT_EQ(entries[0].work, 7u);
  EXPECT_EQ(entries[1].seq, 1u);
  EXPECT_EQ(entries[1].kind, QueryKind::kRqContainment);
  EXPECT_EQ(entries[1].verdict, kFlightVerdictRefuted);
  EXPECT_EQ(entries[2].seq, 2u);
  EXPECT_EQ(entries[2].work, 11u);
}

TEST_F(FlightRecorderTest, FullRingDropsOldestFirst) {
  FlightRecorder& recorder = FlightRecorder::Global();
  constexpr size_t kOverflow = 10;
  uint64_t dropped_before = GetCounter("obs.flight_dropped")->value();

  for (size_t i = 0; i < FlightRecorder::kCapacity + kOverflow; ++i) {
    recorder.Record(QueryKind::kGraphEval, kFlightVerdictOk, i, i);
  }

  std::vector<FlightEntry> entries = recorder.Snapshot();
  ASSERT_EQ(entries.size(), FlightRecorder::kCapacity);
  // The kOverflow oldest summaries were evicted; the survivors are a dense
  // run of the newest seqs, oldest-first.
  EXPECT_EQ(entries.front().seq, kOverflow);
  EXPECT_EQ(entries.back().seq, FlightRecorder::kCapacity + kOverflow - 1);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].seq, kOverflow + i);
    EXPECT_EQ(entries[i].work, kOverflow + i);  // payload tracks its seq
  }
  EXPECT_EQ(GetCounter("obs.flight_dropped")->value() - dropped_before,
            kOverflow);
}

TEST_F(FlightRecorderTest, SlowQueryLogGatesOnThresholdAndCarriesLabel) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.SetSlowQueryThresholdNs(500);
  SetFlightQueryLabel("path a* <= (a|b)*");

  recorder.Record(QueryKind::kPathContainment, kFlightVerdictOk, 499, 1);
  recorder.Record(QueryKind::kPathContainment, kFlightVerdictRefuted, 500, 2);

  std::vector<SlowQueryEntry> slow = recorder.SlowQueries();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].seq, 1u);
  EXPECT_EQ(slow[0].verdict, kFlightVerdictRefuted);
  EXPECT_EQ(slow[0].duration_ns, 500u);
  EXPECT_EQ(slow[0].label, "path a* <= (a|b)*");

  // Threshold 0 disables the log entirely.
  recorder.SetSlowQueryThresholdNs(0);
  recorder.Record(QueryKind::kPathContainment, kFlightVerdictOk, 1 << 30, 3);
  EXPECT_EQ(recorder.SlowQueries().size(), 1u);
}

TEST_F(FlightRecorderTest, SlowQueryLogIsBounded) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.SetSlowQueryThresholdNs(1);
  constexpr size_t kOverflow = 5;
  for (size_t i = 0; i < FlightRecorder::kMaxSlowQueries + kOverflow; ++i) {
    recorder.Record(QueryKind::kRqEval, kFlightVerdictOk, 1000, i);
  }
  std::vector<SlowQueryEntry> slow = recorder.SlowQueries();
  ASSERT_EQ(slow.size(), FlightRecorder::kMaxSlowQueries);
  EXPECT_EQ(slow.front().seq, kOverflow);  // oldest rows evicted first
  EXPECT_EQ(slow.back().seq,
            FlightRecorder::kMaxSlowQueries + kOverflow - 1);
}

TEST_F(FlightRecorderTest, FlightTimerRecordsOnFinish) {
  {
    FlightTimer timer(QueryKind::kUc2RpqEval);
    timer.Finish(kFlightVerdictOk, 42);
  }
  std::vector<FlightEntry> entries = FlightRecorder::Global().Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, QueryKind::kUc2RpqEval);
  EXPECT_EQ(entries[0].verdict, kFlightVerdictOk);
  EXPECT_EQ(entries[0].work, 42u);
}

TEST_F(FlightRecorderTest, FlightTimerAbandonedWithoutFinish) {
  {
    FlightTimer timer(QueryKind::kDatalogContainment);
    // Destroyed without Finish: an error path unwound through the entry
    // point.
  }
  std::vector<FlightEntry> entries = FlightRecorder::Global().Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].verdict, kFlightVerdictAbandoned);
  EXPECT_EQ(entries[0].work, 0u);
}

TEST_F(FlightRecorderTest, NestedTimersOnOneThreadRecordOnce) {
  {
    FlightTimer outer(QueryKind::kRqContainment);
    {
      FlightTimer inner(QueryKind::kPathContainment);
      inner.Finish(kFlightVerdictOk, 500);  // suppressed: nested
    }
    outer.Finish(kFlightVerdictRefuted, 3);
  }
  std::vector<FlightEntry> entries = FlightRecorder::Global().Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].kind, QueryKind::kRqContainment);
  EXPECT_EQ(entries[0].verdict, kFlightVerdictRefuted);
  EXPECT_EQ(entries[0].work, 3u);

  // Once the outermost timer is gone the next timer records again.
  {
    FlightTimer next(QueryKind::kGraphEval);
    next.Finish(kFlightVerdictOk, 1);
  }
  EXPECT_EQ(FlightRecorder::Global().Snapshot().size(), 2u);
}

TEST_F(FlightRecorderTest, WriteFlightDumpRendersRingAndSlowLog) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.SetSlowQueryThresholdNs(1);
  SetFlightQueryLabel("dump-me");
  recorder.Record(QueryKind::kPathContainment, kFlightVerdictOk, 5000, 17);
  recorder.Record(QueryKind::kDatalogEval, kFlightVerdictError, 6000, 4);

  std::string path = ::testing::TempDir() + "rq_flight_dump_test.txt";
  ASSERT_TRUE(WriteFlightDump(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::string dump = buf.str();
  std::remove(path.c_str());

  EXPECT_NE(dump.find("== rq flight recorder: 2 queries recorded"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("seq=0 kind=path-containment verdict=ok"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("seq=1 kind=datalog-eval verdict=error"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("work=17"), std::string::npos) << dump;
  EXPECT_NE(dump.find("== slow queries"), std::string::npos) << dump;
  EXPECT_NE(dump.find("label=dump-me"), std::string::npos) << dump;
}

TEST_F(FlightRecorderTest, WriteFlightDumpRejectsUnwritablePath) {
  EXPECT_FALSE(WriteFlightDump("/nonexistent-dir/flight.txt").ok());
}

TEST_F(FlightRecorderTest, NameMappings) {
  EXPECT_STREQ(QueryKindName(QueryKind::kPathContainment),
               "path-containment");
  EXPECT_STREQ(QueryKindName(QueryKind::kDatalogContainment),
               "datalog-containment");
  EXPECT_STREQ(QueryKindName(QueryKind::kRqEval), "rq-eval");
  EXPECT_STREQ(FlightVerdictName(kFlightVerdictOk), "ok");
  EXPECT_STREQ(FlightVerdictName(kFlightVerdictRefuted), "refuted");
  EXPECT_STREQ(FlightVerdictName(kFlightVerdictUnknown), "unknown");
  EXPECT_STREQ(FlightVerdictName(kFlightVerdictError), "error");
  EXPECT_STREQ(FlightVerdictName(kFlightVerdictAbandoned), "abandoned");
}

TEST_F(FlightRecorderTest, FlightVerdictFromCertaintyMapping) {
  EXPECT_EQ(FlightVerdictFromCertainty(Certainty::kProved),
            kFlightVerdictOk);
  EXPECT_EQ(FlightVerdictFromCertainty(Certainty::kRefuted),
            kFlightVerdictRefuted);
  EXPECT_EQ(FlightVerdictFromCertainty(Certainty::kUnknownUpToBound),
            kFlightVerdictUnknown);
}

}  // namespace
}  // namespace obs
}  // namespace rq

// Tests for the per-query profiler (obs/profile.h): window isolation of
// counter/histogram/gauge deltas, single-active semantics, subsystem
// annotations (notes, stats, worker rows), the rq-profile/1 JSON report,
// and reconciliation of profile deltas against the global registries.
#include "obs/profile.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/counters.h"
#include "obs/gauge.h"
#include "obs/histogram.h"

namespace rq {
namespace obs {
namespace {

const ProfileCounterDelta* FindCounter(const QueryProfile& profile,
                                       const std::string& name) {
  for (const ProfileCounterDelta& d : profile.counters())
    if (d.name == name) return &d;
  return nullptr;
}

const ProfileHistogramDelta* FindHistogram(const QueryProfile& profile,
                                           const std::string& name) {
  for (const ProfileHistogramDelta& d : profile.histograms())
    if (d.name == name) return &d;
  return nullptr;
}

const ProfileGaugeDelta* FindGauge(const QueryProfile& profile,
                                   const std::string& name) {
  for (const ProfileGaugeDelta& d : profile.gauges())
    if (d.name == name) return &d;
  return nullptr;
}

// The window must report only growth BETWEEN Begin and End: counts made
// before Begin belong to the baseline, not the query.
TEST(ProfileTest, CounterDeltaIsWindowed) {
  Counter* counter = GetCounter("proftest.windowed_counter");
  counter->Add(3);  // pre-window noise

  QueryProfile profile;
  profile.Begin("test", "unit", "windowed counter");
  EXPECT_EQ(QueryProfile::Active(), &profile);
  counter->Add(5);
  profile.End();

  EXPECT_TRUE(profile.collected());
  EXPECT_EQ(QueryProfile::Active(), nullptr);
  const ProfileCounterDelta* delta =
      FindCounter(profile, "proftest.windowed_counter");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->delta, 5u);
}

// A counter that did not move inside the window must not appear at all.
TEST(ProfileTest, QuietCountersAreOmitted) {
  Counter* counter = GetCounter("proftest.quiet_counter");
  counter->Add(100);

  QueryProfile profile;
  profile.Begin("test", "unit", "quiet counter");
  profile.End();

  EXPECT_EQ(FindCounter(profile, "proftest.quiet_counter"), nullptr);
}

// Windowed quantiles are recomputed from the bucket DIFFERENCE, so a noisy
// pre-window distribution cannot leak into the profiled query's p50/p99.
TEST(ProfileTest, HistogramQuantilesAreWindowed) {
  Histogram* hist = GetHistogram("proftest.windowed_hist");
  for (int i = 0; i < 50; ++i) hist->Record(100000);  // pre-window noise

  QueryProfile profile;
  profile.Begin("test", "unit", "windowed histogram");
  hist->Record(1);
  hist->Record(2);
  hist->Record(3);
  profile.End();

  const ProfileHistogramDelta* delta =
      FindHistogram(profile, "proftest.windowed_hist");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->count, 3u);
  EXPECT_EQ(delta->sum, 6u);
  // Values < 4 land in exact singleton buckets, so the windowed quantiles
  // are exact despite 50 samples of 100000 sitting in the global buckets.
  EXPECT_EQ(delta->p50, 2u);
  EXPECT_EQ(delta->p99, 3u);
  EXPECT_EQ(delta->max, 3u);
}

TEST(ProfileTest, GaugeWindowReportsLevelsAndPeak) {
  Gauge* gauge = GetGauge("proftest.windowed_gauge");
  gauge->Reset();
  gauge->Set(10);

  QueryProfile profile;
  profile.Begin("test", "unit", "gauge window");
  gauge->Set(40);   // raises the peak inside the window
  gauge->Set(25);
  profile.End();

  const ProfileGaugeDelta* delta =
      FindGauge(profile, "proftest.windowed_gauge");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->begin_value, 10);
  EXPECT_EQ(delta->end_value, 25);
  EXPECT_TRUE(delta->peak_raised);
  EXPECT_EQ(delta->end_peak, 40);
}

// One profile at a time: a second Begin while another is active must
// record nothing and leave the first profile in place.
TEST(ProfileTest, SecondActiveProfileRecordsNothing) {
  QueryProfile first;
  first.Begin("test", "unit", "first");
  QueryProfile second;
  second.Begin("test", "unit", "second");
  EXPECT_EQ(QueryProfile::Active(), &first);

  GetCounter("proftest.single_active")->Add(2);
  second.End();
  EXPECT_FALSE(second.collected());
  EXPECT_EQ(QueryProfile::Active(), &first);

  first.End();
  EXPECT_TRUE(first.collected());
  const ProfileCounterDelta* delta =
      FindCounter(first, "proftest.single_active");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->delta, 2u);
}

TEST(ProfileTest, AnnotationsAndWorkersInReport) {
  QueryProfile profile;
  profile.Begin("test", "unit", "annotations");
  profile.AddNote("dispatch.method", "2rpq-fold");
  profile.AddStat("rounds", 3);
  profile.AddStat("rounds", 4);  // accumulates
  profile.RecordWorker(0, 7, 1500);
  profile.RecordWorker(1, 9, 2500);
  profile.End();

  ASSERT_EQ(profile.workers().size(), 2u);
  EXPECT_EQ(profile.workers()[0].worker, 0u);
  EXPECT_EQ(profile.workers()[0].jobs, 7u);
  EXPECT_EQ(profile.workers()[1].busy_ns, 2500u);

  std::string json = profile.ToJson().Dump();
  EXPECT_NE(json.find("\"rq-profile/1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dispatch.method\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"2rpq-fold\""), std::string::npos) << json;
  size_t rounds = json.find("\"rounds\"");
  ASSERT_NE(rounds, std::string::npos) << json;
  size_t value = json.find_first_of("0123456789", rounds + 8);
  ASSERT_NE(value, std::string::npos) << json;
  EXPECT_EQ(json[value], '7') << json;  // stat accumulated: 3 + 4
}

TEST(ProfileTest, TextReportCarriesQueryAndDeltas) {
  QueryProfile profile;
  profile.Begin("rqcheck", "uc2rpq", "x() <= y()");
  GetCounter("proftest.text_counter")->Add(11);
  profile.End();

  std::string text = profile.ToText();
  EXPECT_NE(text.find("rqcheck"), std::string::npos) << text;
  EXPECT_NE(text.find("x() <= y()"), std::string::npos) << text;
  EXPECT_NE(text.find("proftest.text_counter"), std::string::npos) << text;
  EXPECT_NE(text.find("11"), std::string::npos) << text;
}

TEST(ProfileTest, ProfileScopeBeginsAndEnds) {
  QueryProfile profile;
  {
    ProfileScope scope(&profile, "test", "unit", "raii");
    EXPECT_EQ(QueryProfile::Active(), &profile);
    GetCounter("proftest.scope_counter")->Increment();
  }
  EXPECT_EQ(QueryProfile::Active(), nullptr);
  EXPECT_TRUE(profile.collected());
  const ProfileCounterDelta* delta =
      FindCounter(profile, "proftest.scope_counter");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->delta, 1u);
}

// Acceptance property: profile deltas reconcile with the global export —
// for a window in which only this thread touches the registries, every
// profile delta equals the global counter's growth, and in general a
// profile delta can never exceed the global total.
TEST(ProfileTest, DeltasReconcileWithGlobalRegistry) {
  CounterDelta global_baseline;
  QueryProfile profile;
  profile.Begin("test", "unit", "reconcile");
  GetCounter("proftest.reconcile_a")->Add(13);
  GetCounter("proftest.reconcile_b")->Add(29);
  profile.End();

  for (const char* name : {"proftest.reconcile_a", "proftest.reconcile_b"}) {
    const ProfileCounterDelta* delta = FindCounter(profile, name);
    ASSERT_NE(delta, nullptr) << name;
    EXPECT_EQ(delta->delta, global_baseline.Delta(name)) << name;
    EXPECT_LE(delta->delta, GetCounter(name)->value()) << name;
  }
}

TEST(ProfileTest, WallTimeIsMeasured) {
  QueryProfile profile;
  profile.Begin("test", "unit", "wall");
  GetCounter("proftest.wall_counter")->Increment();
  profile.End();
  EXPECT_GT(profile.wall_ns(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace rq

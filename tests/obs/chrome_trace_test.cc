#include "obs/chrome_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include "obs/trace.h"

namespace rq {
namespace obs {
namespace {

class ChromeTraceTest : public ::testing::Test {
 protected:
  void TearDown() override { SetTraceMode(TraceMode::kDisabled); }
};

// Structural golden check: the export must be the Trace Event "JSON Object
// Format" — parseable, a "traceEvents" array of "X" complete events with
// microsecond ts/dur, plus "M" thread_name metadata. This is what Perfetto
// and chrome://tracing validate on load.
TEST_F(ChromeTraceTest, ExportIsValidTraceEventJson) {
  SetTraceMode(TraceMode::kFull);
  {
    RQ_TRACE_SPAN("containment.check");
    { RQ_TRACE_SPAN_VAR(span, "fold.construct"); span.AddAttr("states", 12); }
  }
  auto parsed = JsonValue::Parse(ChromeTraceJson().Dump(1));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("displayTimeUnit")->string_value(), "ns");

  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  size_t complete = 0, metadata = 0;
  for (const JsonValue& e : events->items()) {
    const std::string& ph = e.Find("ph")->string_value();
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(e.Find("name")->string_value(), "thread_name");
      ASSERT_NE(e.Find("args"), nullptr);
      EXPECT_FALSE(e.Find("args")->Find("name")->string_value().empty());
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    EXPECT_FALSE(e.Find("name")->string_value().empty());
    EXPECT_FALSE(e.Find("cat")->string_value().empty());
    EXPECT_NE(e.Find("pid"), nullptr);
    EXPECT_NE(e.Find("tid"), nullptr);
    EXPECT_GE(e.Find("ts")->number_value(), 0.0);
    EXPECT_GE(e.Find("dur")->number_value(), 0.0);
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_EQ(metadata, 1u);  // one lane: everything ran on this thread
}

TEST_F(ChromeTraceTest, CategoryIsSubsystemPrefixAndArgsAreAttrs) {
  SetTraceMode(TraceMode::kFull);
  {
    RQ_TRACE_SPAN_VAR(span, "datalog.fixpoint");
    span.AddAttr("rounds", 3);
  }
  JsonValue doc = ChromeTraceJson();
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool found = false;
  for (const JsonValue& e : events->items()) {
    if (e.Find("ph")->string_value() != "X") continue;
    found = true;
    EXPECT_EQ(e.Find("name")->string_value(), "datalog.fixpoint");
    EXPECT_EQ(e.Find("cat")->string_value(), "datalog");
    ASSERT_NE(e.Find("args"), nullptr);
    EXPECT_EQ(e.Find("args")->Find("rounds")->uint_value(), 3u);
  }
  EXPECT_TRUE(found);
}

TEST_F(ChromeTraceTest, EachRecordingThreadGetsItsOwnNamedLane) {
  SetTraceMode(TraceMode::kFull);
  {
    RQ_TRACE_SPAN("test.main_lane");
  }
  std::thread worker([] { RQ_TRACE_SPAN("test.worker_lane"); });
  worker.join();

  JsonValue doc = ChromeTraceJson();
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<uint64_t> lanes;
  std::set<std::string> names;
  for (const JsonValue& e : events->items()) {
    if (e.Find("ph")->string_value() != "M") continue;
    lanes.insert(e.Find("tid")->uint_value());
    names.insert(e.Find("args")->Find("name")->string_value());
  }
  EXPECT_EQ(lanes.size(), 2u);
  EXPECT_TRUE(names.count("main"));
  EXPECT_TRUE(names.count("worker-1"));
}

TEST_F(ChromeTraceTest, EmptyTraceIsStillValid) {
  SetTraceMode(TraceMode::kFull);
  ClearTrace();
  auto parsed = JsonValue::Parse(ChromeTraceJson().Dump(1));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_NE(parsed->Find("traceEvents"), nullptr);
  EXPECT_TRUE(parsed->Find("traceEvents")->items().empty());
}

TEST_F(ChromeTraceTest, WriteChromeTraceFileRoundTrips) {
  SetTraceMode(TraceMode::kFull);
  {
    RQ_TRACE_SPAN("test.file_span");
  }
  std::string path = ::testing::TempDir() + "/chrome_trace_test.json";
  Status status = WriteChromeTraceFile(path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = JsonValue::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_GE(parsed->Find("traceEvents")->items().size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace rq

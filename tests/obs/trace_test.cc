#include "obs/trace.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rq {
namespace obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { SetTraceMode(TraceMode::kDisabled); }
};

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  SetTraceMode(TraceMode::kDisabled);
  {
    RQ_TRACE_SPAN("test.disabled");
  }
  EXPECT_TRUE(CollectSpanRecords().empty());
  EXPECT_TRUE(CollectSpanStats().empty());
}

TEST_F(TraceTest, FullModeRecordsNestingDepthAndParent) {
  SetTraceMode(TraceMode::kFull);
  {
    RQ_TRACE_SPAN("test.outer");
    { RQ_TRACE_SPAN("test.inner"); }
    { RQ_TRACE_SPAN("test.inner"); }
  }
  std::vector<SpanRecord> records = CollectSpanRecords();
  ASSERT_EQ(records.size(), 3u);
  // Start order: outer first, then the two inner spans.
  EXPECT_EQ(records[0].name, "test.outer");
  EXPECT_EQ(records[0].depth, 0u);
  EXPECT_EQ(records[0].parent, -1);
  for (size_t i : {size_t{1}, size_t{2}}) {
    EXPECT_EQ(records[i].name, "test.inner");
    EXPECT_EQ(records[i].depth, 1u);
    EXPECT_EQ(records[i].parent, 0);
    EXPECT_LE(records[i].start_ns + records[i].duration_ns,
              records[0].start_ns + records[0].duration_ns);
    EXPECT_GE(records[i].start_ns, records[0].start_ns);
  }
  EXPECT_EQ(DroppedSpanRecords(), 0u);
}

TEST_F(TraceTest, AttrsAttachToTheirSpan) {
  SetTraceMode(TraceMode::kFull);
  {
    RQ_TRACE_SPAN_VAR(span, "test.attrs");
    span.AddAttr("answer", 42);
  }
  std::vector<SpanRecord> records = CollectSpanRecords();
  ASSERT_EQ(records.size(), 1u);
  ASSERT_EQ(records[0].attrs.size(), 1u);
  EXPECT_EQ(records[0].attrs[0].first, "answer");
  EXPECT_EQ(records[0].attrs[0].second, 42u);
}

TEST_F(TraceTest, AggregateModeKeepsStatsOnly) {
  SetTraceMode(TraceMode::kAggregate);
  for (int i = 0; i < 5; ++i) {
    RQ_TRACE_SPAN("test.agg");
  }
  EXPECT_TRUE(CollectSpanRecords().empty());
  std::vector<SpanStats> stats = CollectSpanStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "test.agg");
  EXPECT_EQ(stats[0].count, 5u);
}

TEST_F(TraceTest, ClearTraceDropsCollectedSpans) {
  SetTraceMode(TraceMode::kFull);
  {
    RQ_TRACE_SPAN("test.cleared");
  }
  ClearTrace();
  EXPECT_TRUE(CollectSpanRecords().empty());
  EXPECT_TRUE(CollectSpanStats().empty());
}

TEST_F(TraceTest, TidsAreDensePerRecordingThread) {
  SetTraceMode(TraceMode::kFull);
  {
    RQ_TRACE_SPAN("test.main_thread");  // first recorder → tid 0
  }
  std::thread worker([] { RQ_TRACE_SPAN("test.worker_thread"); });
  worker.join();
  std::vector<SpanRecord> records = CollectSpanRecords();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "test.main_thread");
  EXPECT_EQ(records[0].tid, 0u);
  EXPECT_EQ(records[1].name, "test.worker_thread");
  EXPECT_EQ(records[1].tid, 1u);
}

TEST_F(TraceTest, ParentsResolvePerThreadNotAcrossThreads) {
  SetTraceMode(TraceMode::kFull);
  {
    RQ_TRACE_SPAN("test.outer");
    // The worker runs while test.outer is open on this thread. Its spans
    // must root in their own lane, never under another thread's open span.
    std::thread worker([] {
      RQ_TRACE_SPAN("test.worker_root");
      { RQ_TRACE_SPAN("test.worker_child"); }
    });
    worker.join();
  }
  std::vector<SpanRecord> records = CollectSpanRecords();
  ASSERT_EQ(records.size(), 3u);
  int32_t worker_root = -1;
  for (size_t i = 0; i < records.size(); ++i) {
    const SpanRecord& r = records[i];
    if (r.name == "test.worker_root") {
      worker_root = static_cast<int32_t>(i);
      EXPECT_EQ(r.parent, -1);  // not parented under test.outer
      EXPECT_EQ(r.depth, 0u);
    }
  }
  ASSERT_GE(worker_root, 0);
  for (const SpanRecord& r : records) {
    if (r.name != "test.worker_child") continue;
    EXPECT_EQ(r.parent, worker_root);
    EXPECT_EQ(r.tid, records[static_cast<size_t>(worker_root)].tid);
  }
}

TEST_F(TraceTest, SpanStraddlingClearIsDiscardedEntirely) {
  SetTraceMode(TraceMode::kFull);
  {
    RQ_TRACE_SPAN_VAR(span, "test.straddler");
    ClearTrace();  // invalidates the recording session mid-span
    span.AddAttr("late", 1);  // must not touch the cleared buffer
  }
  // The straddling span contributes neither a record nor aggregate stats.
  EXPECT_TRUE(CollectSpanRecords().empty());
  EXPECT_TRUE(CollectSpanStats().empty());
  // The session keeps working for spans opened after the clear.
  {
    RQ_TRACE_SPAN("test.after_clear");
  }
  std::vector<SpanRecord> records = CollectSpanRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "test.after_clear");
  EXPECT_EQ(records[0].parent, -1);
  EXPECT_EQ(records[0].depth, 0u);
}

TEST_F(TraceTest, ModeSwitchInvalidatesStaleThreadStacks) {
  SetTraceMode(TraceMode::kFull);
  {
    RQ_TRACE_SPAN_VAR(span, "test.old_session");
    // Restarting tracing mid-span starts a new session; the open span
    // belongs to the old one and must not become a parent in the new one.
    SetTraceMode(TraceMode::kFull);
    { RQ_TRACE_SPAN("test.new_session"); }
  }
  std::vector<SpanRecord> records = CollectSpanRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, "test.new_session");
  EXPECT_EQ(records[0].parent, -1);
  EXPECT_EQ(records[0].depth, 0u);
}

}  // namespace
}  // namespace obs
}  // namespace rq

#include "obs/trace.h"

#include <gtest/gtest.h>

namespace rq {
namespace obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { SetTraceMode(TraceMode::kDisabled); }
};

TEST_F(TraceTest, DisabledModeRecordsNothing) {
  SetTraceMode(TraceMode::kDisabled);
  {
    RQ_TRACE_SPAN("test.disabled");
  }
  EXPECT_TRUE(CollectSpanRecords().empty());
  EXPECT_TRUE(CollectSpanStats().empty());
}

TEST_F(TraceTest, FullModeRecordsNestingDepthAndParent) {
  SetTraceMode(TraceMode::kFull);
  {
    RQ_TRACE_SPAN("test.outer");
    { RQ_TRACE_SPAN("test.inner"); }
    { RQ_TRACE_SPAN("test.inner"); }
  }
  std::vector<SpanRecord> records = CollectSpanRecords();
  ASSERT_EQ(records.size(), 3u);
  // Start order: outer first, then the two inner spans.
  EXPECT_EQ(records[0].name, "test.outer");
  EXPECT_EQ(records[0].depth, 0u);
  EXPECT_EQ(records[0].parent, -1);
  for (size_t i : {size_t{1}, size_t{2}}) {
    EXPECT_EQ(records[i].name, "test.inner");
    EXPECT_EQ(records[i].depth, 1u);
    EXPECT_EQ(records[i].parent, 0);
    EXPECT_LE(records[i].start_ns + records[i].duration_ns,
              records[0].start_ns + records[0].duration_ns);
    EXPECT_GE(records[i].start_ns, records[0].start_ns);
  }
  EXPECT_EQ(DroppedSpanRecords(), 0u);
}

TEST_F(TraceTest, AttrsAttachToTheirSpan) {
  SetTraceMode(TraceMode::kFull);
  {
    RQ_TRACE_SPAN_VAR(span, "test.attrs");
    span.AddAttr("answer", 42);
  }
  std::vector<SpanRecord> records = CollectSpanRecords();
  ASSERT_EQ(records.size(), 1u);
  ASSERT_EQ(records[0].attrs.size(), 1u);
  EXPECT_EQ(records[0].attrs[0].first, "answer");
  EXPECT_EQ(records[0].attrs[0].second, 42u);
}

TEST_F(TraceTest, AggregateModeKeepsStatsOnly) {
  SetTraceMode(TraceMode::kAggregate);
  for (int i = 0; i < 5; ++i) {
    RQ_TRACE_SPAN("test.agg");
  }
  EXPECT_TRUE(CollectSpanRecords().empty());
  std::vector<SpanStats> stats = CollectSpanStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "test.agg");
  EXPECT_EQ(stats[0].count, 5u);
}

TEST_F(TraceTest, ClearTraceDropsCollectedSpans) {
  SetTraceMode(TraceMode::kFull);
  {
    RQ_TRACE_SPAN("test.cleared");
  }
  ClearTrace();
  EXPECT_TRUE(CollectSpanRecords().empty());
  EXPECT_TRUE(CollectSpanStats().empty());
}

}  // namespace
}  // namespace obs
}  // namespace rq

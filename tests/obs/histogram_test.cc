#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace rq {
namespace obs {
namespace {

TEST(HistogramTest, BucketIndexIsIdentityBelowSubBuckets) {
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(v), v);
  }
}

TEST(HistogramTest, BucketBoundariesRoundTrip) {
  // Every bucket's lower bound must map back to that bucket, and the value
  // just below it to the previous bucket.
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    uint64_t lower = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lower), i) << "lower bound " << lower;
    if (i > 0) {
      EXPECT_EQ(Histogram::BucketIndex(lower - 1), i - 1)
          << "value " << lower - 1;
    }
  }
}

TEST(HistogramTest, BucketIndexAtPowersOfTwo) {
  // Powers of two start a new top bucket group; their quarter points are
  // the sub-bucket boundaries.
  EXPECT_EQ(Histogram::BucketIndex(4), 4u);
  EXPECT_EQ(Histogram::BucketIndex(5), 5u);
  EXPECT_EQ(Histogram::BucketIndex(7), 7u);
  EXPECT_EQ(Histogram::BucketIndex(8), 8u);
  EXPECT_EQ(Histogram::BucketIndex(10), 9u);   // 8 + 2/4 * 8 range
  EXPECT_EQ(Histogram::BucketIndex(15), 11u);
  EXPECT_EQ(Histogram::BucketIndex(16), 12u);
  // The top of the range still lands inside the table.
  EXPECT_LT(Histogram::BucketIndex(UINT64_MAX), Histogram::kNumBuckets);
}

TEST(HistogramTest, BucketWidthIsAtMostTwentyFivePercent) {
  for (size_t i = Histogram::kSubBuckets; i + 1 < Histogram::kNumBuckets;
       ++i) {
    uint64_t lower = Histogram::BucketLowerBound(i);
    uint64_t next = Histogram::BucketLowerBound(i + 1);
    ASSERT_GT(next, lower);
    // Width relative to the lower bound: (next - lower) / lower <= 1/4.
    EXPECT_LE((next - lower) * 4, lower);
  }
}

TEST(HistogramTest, CountSumMaxExact) {
  Histogram h;
  h.Record(1);
  h.Record(5);
  h.Record(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(HistogramTest, QuantilesExactForSmallValues) {
  // Values < kSubBuckets occupy exact singleton buckets, so quantiles are
  // exact: ten samples 0,1,2,3 weighted to make each rank unambiguous.
  Histogram h;
  for (int i = 0; i < 5; ++i) h.Record(1);   // ranks 1..5
  for (int i = 0; i < 4; ++i) h.Record(2);   // ranks 6..9
  h.Record(3);                               // rank 10
  EXPECT_EQ(h.ValueAtQuantile(0.50), 1u);    // rank ceil(0.5*10)=5
  EXPECT_EQ(h.ValueAtQuantile(0.90), 2u);    // rank 9
  EXPECT_EQ(h.ValueAtQuantile(0.99), 3u);    // rank 10
  EXPECT_EQ(h.ValueAtQuantile(1.0), 3u);     // exact max
}

TEST(HistogramTest, QuantilesExactOnBucketBoundaries) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Record(64);
  h.Record(1024);
  EXPECT_EQ(h.ValueAtQuantile(0.50), 64u);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 64u);   // rank 99 of 100
  EXPECT_EQ(h.ValueAtQuantile(1.0), 1024u);
}

TEST(HistogramTest, QuantileReturnsBucketLowerBound) {
  Histogram h;
  h.Record(70);  // inside bucket [64, 80)
  uint64_t p50 = h.ValueAtQuantile(0.5);
  EXPECT_EQ(p50, Histogram::BucketLowerBound(Histogram::BucketIndex(70)));
  EXPECT_LE(p50, 70u);
  EXPECT_GT(p50 * 5, uint64_t{70} * 4);  // underestimate by < 25%
}

TEST(HistogramTest, EmptyAndClampedQuantiles) {
  Histogram h;
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
  h.Record(42);
  EXPECT_EQ(h.ValueAtQuantile(-1.0), h.ValueAtQuantile(0.0));
  EXPECT_EQ(h.ValueAtQuantile(2.0), 42u);  // clamped to max
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h;
  h.Record(7);
  h.Record(9000);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 0u);
}

TEST(HistogramTest, RegistryInternsAndSnapshots) {
  Histogram* h = GetHistogram("test.histogram_registry");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h, GetHistogram("test.histogram_registry"));
  EXPECT_EQ(h->name(), "test.histogram_registry");
  h->Reset();
  h->Record(3);
  h->Record(5);

  bool found = false;
  std::vector<HistogramSample> snapshot =
      HistogramRegistry::Global().Snapshot();
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].name, snapshot[i].name);  // name-sorted
  }
  for (const HistogramSample& s : snapshot) {
    if (s.name != "test.histogram_registry") continue;
    found = true;
    EXPECT_EQ(s.count, 2u);
    EXPECT_EQ(s.sum, 8u);
    EXPECT_EQ(s.max, 5u);
    EXPECT_EQ(s.p50, 3u);
    EXPECT_EQ(s.p99, 5u);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace obs
}  // namespace rq

// Counter-exactness tests: hand-computed values for the observability
// vocabulary, pinning the round-counting contract (datalog/eval.h) and the
// product-search exploration count against worked examples.
#include <gtest/gtest.h>

#include "automata/containment.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "obs/counters.h"
#include "relational/relation.h"

namespace rq {
namespace {

constexpr const char* kTransitiveClosure =
    "q(x,y) :- e(x,y).\n"
    "q(x,z) :- q(x,y), e(y,z).\n"
    "?- q.\n";

Database ChainEdb(uint64_t n) {
  Database edb;
  Relation* e = edb.GetOrCreate("e", 2).value();
  for (uint64_t i = 1; i < n; ++i) e->Insert({i, i + 1});
  return edb;
}

// Chain 1→2→…→5: length-k paths appear in round k (k = 1..4) and round 5
// derives nothing, so both modes must report exactly 5 rounds and
// C(5,2) = 10 derived tuples.
TEST(DatalogCounterExactnessTest, ChainRoundsMatchHandComputation) {
  DatalogProgram program = ParseDatalog(kTransitiveClosure).value();
  Database edb = ChainEdb(5);
  for (DatalogEvalMode mode :
       {DatalogEvalMode::kNaive, DatalogEvalMode::kSemiNaive}) {
    DatalogEvalStats stats;
    obs::CounterDelta delta;
    Relation goal = EvalDatalogGoal(program, edb, mode, &stats).value();
    EXPECT_EQ(stats.rounds, 5u);
    EXPECT_EQ(stats.tuples_derived, 10u);
    EXPECT_EQ(goal.size(), 10u);
    // The stats struct is an adapter view over the datalog.* registry
    // counters; the two must agree exactly.
    EXPECT_EQ(delta.Delta("datalog.evals"), 1u);
    EXPECT_EQ(delta.Delta("datalog.rounds"), stats.rounds);
    EXPECT_EQ(delta.Delta("datalog.rule_applications"),
              stats.rule_applications);
    EXPECT_EQ(delta.Delta("datalog.tuples_considered"),
              stats.tuples_considered);
    EXPECT_EQ(delta.Delta("datalog.tuples_derived"), stats.tuples_derived);
  }
}

// An empty EDB confirms the fixpoint immediately: one round in both modes
// (semi-naive must not run a delta pass after an empty seed).
TEST(DatalogCounterExactnessTest, EmptyFixpointIsOneRoundInBothModes) {
  DatalogProgram program = ParseDatalog(kTransitiveClosure).value();
  Database edb = ChainEdb(1);
  for (DatalogEvalMode mode :
       {DatalogEvalMode::kNaive, DatalogEvalMode::kSemiNaive}) {
    DatalogEvalStats stats;
    Relation goal = EvalDatalogGoal(program, edb, mode, &stats).value();
    EXPECT_EQ(stats.rounds, 1u);
    EXPECT_EQ(goal.size(), 0u);
  }
}

// Mutual recursion where Gauss-Seidel (in-place) naive iteration would
// finish a round early: q sees p's same-round tuples only under in-place
// insertion. Snapshot semantics force round 1 to derive p alone, round 2
// to derive q, and round 3 to confirm — in both modes.
TEST(DatalogCounterExactnessTest, NaiveUsesSnapshotSemantics) {
  DatalogProgram program = ParseDatalog(
                               "p(x) :- b(x).\n"
                               "p(x) :- q(x).\n"
                               "q(x) :- p(x).\n"
                               "?- q.\n")
                               .value();
  Database edb;
  edb.GetOrCreate("b", 1).value()->Insert({1});
  for (DatalogEvalMode mode :
       {DatalogEvalMode::kNaive, DatalogEvalMode::kSemiNaive}) {
    DatalogEvalStats stats;
    Relation goal = EvalDatalogGoal(program, edb, mode, &stats).value();
    EXPECT_EQ(stats.rounds, 3u);
    EXPECT_EQ(goal.size(), 1u);
  }
}

// Naive re-derives everything each round, so it must consider strictly
// more join results than semi-naive on a recursive instance while agreeing
// on rounds and derived tuples.
TEST(DatalogCounterExactnessTest, ModesAgreeOnRoundsNotOnWork) {
  DatalogProgram program = ParseDatalog(kTransitiveClosure).value();
  Database edb = ChainEdb(8);
  DatalogEvalStats naive, semi;
  EXPECT_TRUE(
      EvalDatalogGoal(program, edb, DatalogEvalMode::kNaive, &naive).ok());
  EXPECT_TRUE(
      EvalDatalogGoal(program, edb, DatalogEvalMode::kSemiNaive, &semi).ok());
  EXPECT_EQ(naive.rounds, semi.rounds);
  EXPECT_EQ(naive.tuples_derived, semi.tuples_derived);
  EXPECT_GT(naive.tuples_considered, semi.tuples_considered);
}

// Hand-traced product search. A accepts exactly {a} (2 states), B accepts
// exactly {a}: the BFS visits (A0,{B0}) and (A1,{B1}) — 2 nodes — and
// proves containment.
TEST(ContainmentCounterExactnessTest, ContainedPairExploresTwoStates) {
  Nfa a(1), b(1);
  for (Nfa* m : {&a, &b}) {
    uint32_t s0 = m->AddState(), s1 = m->AddState();
    m->AddInitial(s0);
    m->AddTransition(s0, 0, s1);
    m->SetAccepting(s1);
  }
  obs::CounterDelta delta;
  LanguageContainmentResult result = CheckLanguageContainment(a, b);
  EXPECT_TRUE(result.contained);
  EXPECT_EQ(result.explored_states, 2u);
  EXPECT_EQ(delta.Delta("containment.checks"), 1u);
  EXPECT_EQ(delta.Delta("containment.states_explored"), 2u);
  EXPECT_EQ(delta.Delta("containment.refuted"), 0u);
}

// A accepts {ab} (3 states), B accepts {a}: the BFS visits (A0,{B0}),
// (A1,{B1}) and the rejecting (A2,∅) — 3 nodes — and refutes with "ab".
TEST(ContainmentCounterExactnessTest, RefutedPairExploresThreeStates) {
  Nfa a(2);
  uint32_t a0 = a.AddState(), a1 = a.AddState(), a2 = a.AddState();
  a.AddInitial(a0);
  a.AddTransition(a0, 0, a1);
  a.AddTransition(a1, 1, a2);
  a.SetAccepting(a2);
  Nfa b(2);
  uint32_t b0 = b.AddState(), b1 = b.AddState();
  b.AddInitial(b0);
  b.AddTransition(b0, 0, b1);
  b.SetAccepting(b1);

  obs::CounterDelta delta;
  LanguageContainmentResult result = CheckLanguageContainment(a, b);
  EXPECT_FALSE(result.contained);
  EXPECT_EQ(result.explored_states, 3u);
  EXPECT_EQ(result.counterexample, (std::vector<Symbol>{0, 1}));
  EXPECT_EQ(delta.Delta("containment.checks"), 1u);
  EXPECT_EQ(delta.Delta("containment.states_explored"), 3u);
  EXPECT_EQ(delta.Delta("containment.refuted"), 1u);
}

}  // namespace
}  // namespace rq

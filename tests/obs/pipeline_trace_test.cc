// Span nesting over the real containment pipeline: the fold construction
// (Lemma 3) must appear as a child of the 2RPQ fold-pipeline span.
#include <gtest/gtest.h>

#include "obs/trace.h"
#include "pathquery/containment.h"
#include "regex/regex.h"

namespace rq {
namespace {

TEST(PipelineTraceTest, FoldConstructionNestsUnderFoldPipeline) {
  Alphabet alphabet;
  RegexPtr r1 = ParseRegex("p", &alphabet).value();
  RegexPtr r2 = ParseRegex("p p- p", &alphabet).value();

  obs::SetTraceMode(obs::TraceMode::kFull);
  PathContainmentResult result =
      CheckPathQueryContainment(*r1, *r2, alphabet);
  std::vector<obs::SpanRecord> records = obs::CollectSpanRecords();
  obs::SetTraceMode(obs::TraceMode::kDisabled);

  EXPECT_TRUE(result.contained);
  int pipeline = -1, fold = -1;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].name == "containment.fold_pipeline") {
      pipeline = static_cast<int>(i);
    }
    if (records[i].name == "fold.construct") fold = static_cast<int>(i);
  }
  ASSERT_GE(pipeline, 0);
  ASSERT_GE(fold, 0);
  EXPECT_EQ(records[pipeline].depth, 0u);
  EXPECT_EQ(records[fold].parent, pipeline);
  EXPECT_EQ(records[fold].depth, records[pipeline].depth + 1);
}

}  // namespace
}  // namespace rq

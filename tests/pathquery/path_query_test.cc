#include "pathquery/path_query.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace rq {
namespace {

TEST(PathQueryTest, RpqOnPathGraph) {
  GraphDb db = PathGraph(5, "e");
  auto q = ParsePathQuery("e e", &db.alphabet());
  ASSERT_TRUE(q.ok());
  auto pairs = EvalPathQuery(db, *q->regex);
  EXPECT_EQ(pairs, (std::vector<std::pair<NodeId, NodeId>>{
                       {0, 2}, {1, 3}, {2, 4}}));
}

TEST(PathQueryTest, TransitiveClosureOnPathGraph) {
  GraphDb db = PathGraph(4, "e");
  auto q = ParsePathQuery("e+", &db.alphabet());
  ASSERT_TRUE(q.ok());
  auto pairs = EvalPathQuery(db, *q->regex);
  EXPECT_EQ(pairs.size(), 6u);  // all i < j pairs
  for (const auto& [x, y] : pairs) EXPECT_LT(x, y);
}

TEST(PathQueryTest, StarIncludesReflexivePairs) {
  GraphDb db = PathGraph(3, "e");
  auto q = ParsePathQuery("e*", &db.alphabet());
  ASSERT_TRUE(q.ok());
  auto pairs = EvalPathQuery(db, *q->regex);
  // (0,0),(1,1),(2,2),(0,1),(1,2),(0,2)
  EXPECT_EQ(pairs.size(), 6u);
}

TEST(PathQueryTest, InverseSymbolWalksBackward) {
  GraphDb db = PathGraph(3, "e");
  auto q = ParsePathQuery("e-", &db.alphabet());
  ASSERT_TRUE(q.ok());
  auto pairs = EvalPathQuery(db, *q->regex);
  EXPECT_EQ(pairs, (std::vector<std::pair<NodeId, NodeId>>{{1, 0}, {2, 1}}));
}

TEST(PathQueryTest, TwoWayQueryMixesDirections) {
  // Two children of a common parent: child1 -parent-> p <-parent- child2.
  GraphDb db;
  NodeId c1 = db.AddNamedNode("c1");
  NodeId c2 = db.AddNamedNode("c2");
  NodeId p = db.AddNamedNode("p");
  db.AddEdge(c1, "parent", p);
  db.AddEdge(c2, "parent", p);
  auto q = ParsePathQuery("parent parent-", &db.alphabet());
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(PathQueryAnswers(db, *q->regex, c1, c2));
  EXPECT_TRUE(PathQueryAnswers(db, *q->regex, c1, c1));
  EXPECT_FALSE(PathQueryAnswers(db, *q->regex, c1, p));
}

TEST(PathQueryTest, CycleGraphReachability) {
  GraphDb db = CycleGraph(4, "e");
  auto q = ParsePathQuery("e+", &db.alphabet());
  ASSERT_TRUE(q.ok());
  auto pairs = EvalPathQuery(db, *q->regex);
  EXPECT_EQ(pairs.size(), 16u);  // complete relation on a cycle
}

TEST(PathQueryTest, SemipathGraphAnswersItsOwnWord) {
  GraphDb db;
  Symbol a = db.alphabet().InternForward("a");
  Symbol b = db.alphabet().InternForward("b");
  std::vector<Symbol> word{a, InverseSymbol(b), a};
  SemipathEndpoints ends = AppendSemipath(&db, word);
  auto q = ParsePathQuery("a b- a", &db.alphabet());
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(PathQueryAnswers(db, *q->regex, ends.start, ends.end));
  auto q2 = ParsePathQuery("a b a", &db.alphabet());
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(PathQueryAnswers(db, *q2->regex, ends.start, ends.end));
}

TEST(PathQueryTest, EvalFromSingleSource) {
  GraphDb db = GridGraph(3, 3);
  auto q = ParsePathQuery("right down | down right", &db.alphabet());
  ASSERT_TRUE(q.ok());
  Nfa nfa = q->regex->ToNfa(
      static_cast<uint32_t>(db.alphabet().num_symbols()));
  std::vector<NodeId> answers = EvalPathQueryFrom(db, nfa, 0);
  // Both orders land on node (1,1) = id 4.
  EXPECT_EQ(answers, (std::vector<NodeId>{4}));
}

TEST(PathQueryTest, UnknownLabelYieldsNoAnswers) {
  GraphDb db = PathGraph(3, "e");
  Alphabet queries;  // separate alphabet with an extra label
  queries.InternLabel("e");
  queries.InternLabel("missing");
  auto q = ParsePathQuery("missing", &queries);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(EvalPathQuery(db, *q->regex).empty());
}

TEST(PathQueryTest, IsTwoWayDetection) {
  GraphDb db;
  auto rpq = ParsePathQuery("a b*", &db.alphabet());
  auto trpq = ParsePathQuery("a- b*", &db.alphabet());
  ASSERT_TRUE(rpq.ok() && trpq.ok());
  EXPECT_FALSE(rpq->IsTwoWay());
  EXPECT_TRUE(trpq->IsTwoWay());
}

}  // namespace
}  // namespace rq

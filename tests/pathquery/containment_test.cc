#include "pathquery/containment.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pathquery/path_query.h"
#include "regex/regex.h"

namespace rq {
namespace {

class PathContainmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alphabet_.InternLabel("p");
    alphabet_.InternLabel("q");
  }

  RegexPtr Re(const std::string& text) {
    auto re = ParseRegex(text, &alphabet_);
    RQ_CHECK(re.ok());
    return *re;
  }

  PathContainmentResult Check(const std::string& q1, const std::string& q2) {
    return CheckPathQueryContainment(*Re(q1), *Re(q2), alphabet_);
  }

  Alphabet alphabet_;
};

// The paper's flagship example (§3.2): Q1 = p is contained in Q2 = p p⁻ p
// as 2RPQs, although L(p) ⊄ L(p p⁻ p).
TEST_F(PathContainmentTest, PaperExamplePContainedInPPInvP) {
  PathContainmentResult result = Check("p", "p p- p");
  EXPECT_TRUE(result.contained);
  EXPECT_TRUE(result.used_fold_pipeline);

  // Language containment genuinely fails, demonstrating the divergence
  // between regular expressions over words and over graphs.
  Nfa n1 = Re("p")->ToNfa(4);
  Nfa n2 = Re("p p- p")->ToNfa(4);
  EXPECT_TRUE(n1.Accepts({ForwardSymbolOf(0)}));
  EXPECT_FALSE(n2.Accepts({ForwardSymbolOf(0)}));
}

TEST_F(PathContainmentTest, ReverseDirectionOfPaperExampleFails) {
  // The containment is strictly one-directional: p p⁻ p ⊄ p, because the
  // zig-zag semipath x -p-> y1 <-p- y2 -p-> y3 over distinct nodes answers
  // (x, y3) for p p⁻ p but has no direct p-edge from x to y3.
  PathContainmentResult result = Check("p p- p", "p");
  ASSERT_FALSE(result.contained);
  SemipathWitness witness =
      BuildSemipathWitness(alphabet_, result.counterexample);
  EXPECT_TRUE(PathQueryAnswers(witness.db, *Re("p p- p"), witness.start,
                               witness.end));
  EXPECT_FALSE(
      PathQueryAnswers(witness.db, *Re("p"), witness.start, witness.end));
}

TEST_F(PathContainmentTest, PlainRpqsUseLemma1) {
  PathContainmentResult result = Check("p q", "p q*");
  EXPECT_TRUE(result.contained);
  EXPECT_FALSE(result.used_fold_pipeline);
  PathContainmentResult not_contained = Check("p q*", "p q");
  EXPECT_FALSE(not_contained.contained);
  EXPECT_FALSE(not_contained.used_fold_pipeline);
}

TEST_F(PathContainmentTest, TwoWayNonContainmentHasValidSemipathWitness) {
  PathContainmentResult result = Check("p | q", "p p- p");
  ASSERT_FALSE(result.contained);
  // The counterexample word, turned into a semipath database, must be
  // answered by Q1 but not Q2 between its endpoints.
  SemipathWitness witness =
      BuildSemipathWitness(alphabet_, result.counterexample);
  EXPECT_TRUE(
      PathQueryAnswers(witness.db, *Re("p | q"), witness.start, witness.end));
  EXPECT_FALSE(PathQueryAnswers(witness.db, *Re("p p- p"), witness.start,
                                witness.end));
}

TEST_F(PathContainmentTest, InverseRoundTripContainments) {
  // p ⊑ p (p⁻ p)* trivially (zero iterations).
  EXPECT_TRUE(Check("p", "p (p- p)*").contained);
  // The converse fails: a p⁻ p round trip may visit fresh nodes, so the
  // endpoints need not be joined by a single p edge.
  EXPECT_FALSE(Check("p (p- p)*", "p").contained);
  // Richer positive case: p ⊑ p (q q⁻)* — zero iterations again — and
  // p q q⁻ ⊑ p q q- q q- is genuinely two-way.
  EXPECT_TRUE(Check("p", "p (q q-)*").contained);
  EXPECT_TRUE(Check("p q", "p q q- q").contained);
}

TEST_F(PathContainmentTest, TwoWayContainmentIsReflexive) {
  Rng rng(31337);
  for (int round = 0; round < 20; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 3, /*allow_inverse=*/true, rng);
    PathContainmentResult result =
        CheckPathQueryContainment(*re, *re, alphabet_);
    EXPECT_TRUE(result.contained) << re->ToString(alphabet_);
  }
}

TEST_F(PathContainmentTest, UnionContainsItsParts) {
  Rng rng(808);
  for (int round = 0; round < 20; ++round) {
    RegexPtr r1 = RandomRegex(alphabet_, 2, /*allow_inverse=*/true, rng);
    RegexPtr r2 = RandomRegex(alphabet_, 2, /*allow_inverse=*/true, rng);
    RegexPtr u = Regex::Union({r1, r2});
    EXPECT_TRUE(CheckPathQueryContainment(*r1, *u, alphabet_).contained)
        << r1->ToString(alphabet_);
    EXPECT_TRUE(CheckPathQueryContainment(*r2, *u, alphabet_).contained)
        << r2->ToString(alphabet_);
  }
}

TEST_F(PathContainmentTest, RandomVerdictsAreConsistentWithEvaluation) {
  // If Q1 ⊑ Q2 then on every semipath database of a word from L(Q1), Q2
  // must answer the endpoints; if not contained, the counterexample's
  // semipath database separates them.
  Rng rng(60606);
  int refuted = 0;
  for (int round = 0; round < 40; ++round) {
    RegexPtr r1 = RandomRegex(alphabet_, 2, /*allow_inverse=*/true, rng);
    RegexPtr r2 = RandomRegex(alphabet_, 2, /*allow_inverse=*/true, rng);
    PathContainmentResult result =
        CheckPathQueryContainment(*r1, *r2, alphabet_);
    if (!result.contained) {
      ++refuted;
      SemipathWitness witness =
          BuildSemipathWitness(alphabet_, result.counterexample);
      EXPECT_TRUE(
          PathQueryAnswers(witness.db, *r1, witness.start, witness.end))
          << r1->ToString(alphabet_);
      EXPECT_FALSE(
          PathQueryAnswers(witness.db, *r2, witness.start, witness.end))
          << r1->ToString(alphabet_) << " vs " << r2->ToString(alphabet_);
    }
  }
  EXPECT_GT(refuted, 0);  // random pairs should produce some refutations
}

TEST_F(PathContainmentTest, FoldPipelineAgreesWithLemma1OnOneWayQueries) {
  // For inverse-free queries the fold pipeline must give the same verdicts
  // as plain language containment.
  Rng rng(777);
  for (int round = 0; round < 30; ++round) {
    RegexPtr r1 = RandomRegex(alphabet_, 2, /*allow_inverse=*/false, rng);
    RegexPtr r2 = RandomRegex(alphabet_, 2, /*allow_inverse=*/false, rng);
    bool lemma1 = CheckPathQueryContainment(*r1, *r2, alphabet_).contained;
    bool fold = CheckTwoWayContainment(*r1, *r2, alphabet_).contained;
    EXPECT_EQ(lemma1, fold)
        << r1->ToString(alphabet_) << " vs " << r2->ToString(alphabet_);
  }
}

}  // namespace
}  // namespace rq

#include "pathquery/witness.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "graph/generators.h"
#include "pathquery/path_query.h"
#include "regex/regex.h"
#include "relational/relation.h"

namespace rq {
namespace {

// Replays a witness against the graph: every step must be a real edge in
// the claimed direction, endpoints must chain, and the spelled word must be
// in the query's language.
void ValidateWitness(const GraphDb& db, const Regex& regex, NodeId x,
                     NodeId y, const std::vector<SemipathStep>& path) {
  NodeId current = x;
  std::vector<Symbol> word;
  for (const SemipathStep& step : path) {
    EXPECT_EQ(step.from, current);
    const auto& successors = db.Successors(step.from, step.symbol);
    EXPECT_TRUE(std::find(successors.begin(), successors.end(), step.to) !=
                successors.end());
    word.push_back(step.symbol);
    current = step.to;
  }
  EXPECT_EQ(current, y);
  uint32_t k = std::max(static_cast<uint32_t>(db.alphabet().num_symbols()),
                        regex.MinNumSymbols());
  EXPECT_TRUE(regex.ToNfa(k).Accepts(word));
}

TEST(WitnessTest, ForwardChain) {
  GraphDb db = PathGraph(4, "e");
  auto q = ParsePathQuery("e e e", &db.alphabet());
  ASSERT_TRUE(q.ok());
  auto witness = FindWitnessSemipath(db, *q->regex, 0, 3);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->size(), 3u);
  ValidateWitness(db, *q->regex, 0, 3, *witness);
}

TEST(WitnessTest, BackwardStepsAreMarkedInverse) {
  GraphDb db;
  NodeId c1 = db.AddNamedNode("c1");
  NodeId c2 = db.AddNamedNode("c2");
  NodeId p = db.AddNamedNode("p");
  db.AddEdge(c1, "parent", p);
  db.AddEdge(c2, "parent", p);
  auto q = ParsePathQuery("parent parent-", &db.alphabet());
  ASSERT_TRUE(q.ok());
  auto witness = FindWitnessSemipath(db, *q->regex, c1, c2);
  ASSERT_TRUE(witness.has_value());
  ASSERT_EQ(witness->size(), 2u);
  EXPECT_FALSE(IsInverseSymbol((*witness)[0].symbol));
  EXPECT_TRUE(IsInverseSymbol((*witness)[1].symbol));
  ValidateWitness(db, *q->regex, c1, c2, *witness);
  EXPECT_EQ(SemipathToString(db, *witness),
            "c1 -parent-> p <-parent- c2");
}

TEST(WitnessTest, EmptyWordWitness) {
  GraphDb db = PathGraph(3, "e");
  auto q = ParsePathQuery("e*", &db.alphabet());
  ASSERT_TRUE(q.ok());
  auto witness = FindWitnessSemipath(db, *q->regex, 1, 1);
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->empty());
}

TEST(WitnessTest, NoWitnessWhenNotAnswered) {
  GraphDb db = PathGraph(3, "e");
  auto q = ParsePathQuery("e", &db.alphabet());
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(FindWitnessSemipath(db, *q->regex, 2, 0).has_value());
  EXPECT_FALSE(FindWitnessSemipath(db, *q->regex, 0, 2).has_value());
}

TEST(WitnessTest, WitnessIsShortest) {
  // Two routes: direct e-edge and a 3-step detour; both match e+.
  GraphDb db;
  NodeId a = db.AddNode();
  NodeId b = db.AddNode();
  NodeId m1 = db.AddNode();
  NodeId m2 = db.AddNode();
  uint32_t e = db.alphabet().InternLabel("e");
  db.AddEdge(a, e, m1);
  db.AddEdge(m1, e, m2);
  db.AddEdge(m2, e, b);
  db.AddEdge(a, e, b);
  auto q = ParsePathQuery("e+", &db.alphabet());
  ASSERT_TRUE(q.ok());
  auto witness = FindWitnessSemipath(db, *q->regex, a, b);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->size(), 1u);
}

TEST(WitnessTest, AgreesWithEvaluationOnRandomInputs) {
  Rng rng(20160701);
  for (int round = 0; round < 20; ++round) {
    GraphDb db = RandomGraph(8, 16, {"a", "b"}, rng.Next());
    RegexPtr re = RandomRegex(db.alphabet(), 3, true, rng);
    Relation answers(2);
    for (const auto& [x, y] : EvalPathQuery(db, *re)) {
      answers.Insert({x, y});
    }
    for (NodeId x = 0; x < db.num_nodes(); ++x) {
      for (NodeId y = 0; y < db.num_nodes(); ++y) {
        auto witness = FindWitnessSemipath(db, *re, x, y);
        EXPECT_EQ(witness.has_value(), answers.Contains({x, y}))
            << re->ToString(db.alphabet());
        if (witness.has_value()) {
          ValidateWitness(db, *re, x, y, *witness);
        }
      }
    }
  }
}

}  // namespace
}  // namespace rq

#include "pathquery/to_datalog.h"

#include <gtest/gtest.h>

#include "datalog/eval.h"
#include "graph/generators.h"
#include "rq/eval.h"

namespace rq {
namespace {

TEST(PathToDatalogTest, SimpleChainQuery) {
  Alphabet alphabet;
  auto re = ParseRegex("a b", &alphabet);
  ASSERT_TRUE(re.ok());
  auto program = PathQueryToDatalog(**re, alphabet);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->PredicateName(program->goal()), "ans");

  GraphDb graph;
  NodeId n0 = graph.AddNode();
  NodeId n1 = graph.AddNode();
  NodeId n2 = graph.AddNode();
  graph.AddEdge(n0, "a", n1);
  graph.AddEdge(n1, "b", n2);
  Relation out =
      EvalDatalogGoal(*program, GraphToDatabase(graph)).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{n0, n2}}));
}

TEST(PathToDatalogTest, StarQueryIncludesActiveDomainDiagonal) {
  Alphabet alphabet;
  auto re = ParseRegex("a*", &alphabet);
  ASSERT_TRUE(re.ok());
  auto program = PathQueryToDatalog(**re, alphabet);
  ASSERT_TRUE(program.ok());
  GraphDb graph = PathGraph(3, "a");
  Relation out =
      EvalDatalogGoal(*program, GraphToDatabase(graph)).value();
  // Diagonal on the active domain plus the forward pairs.
  EXPECT_TRUE(out.Contains({0, 0}));
  EXPECT_TRUE(out.Contains({2, 2}));
  EXPECT_TRUE(out.Contains({0, 2}));
  EXPECT_FALSE(out.Contains({2, 0}));
}

TEST(PathToDatalogTest, InverseSymbolsBecomeSwappedBodyAtoms) {
  Alphabet alphabet;
  auto re = ParseRegex("a-", &alphabet);
  ASSERT_TRUE(re.ok());
  auto program = PathQueryToDatalog(**re, alphabet);
  ASSERT_TRUE(program.ok());
  GraphDb graph;
  NodeId n0 = graph.AddNode();
  NodeId n1 = graph.AddNode();
  graph.AddEdge(n0, "a", n1);
  Relation out =
      EvalDatalogGoal(*program, GraphToDatabase(graph)).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{n1, n0}}));
}

TEST(PathToDatalogTest, EmptyLanguageGivesNoRulesForAns) {
  Alphabet alphabet;
  alphabet.InternLabel("a");
  auto program = PathQueryToDatalog(*Regex::Empty(), alphabet);
  ASSERT_TRUE(program.ok());
  GraphDb graph = PathGraph(3, "a");
  Relation out =
      EvalDatalogGoal(*program, GraphToDatabase(graph)).value();
  EXPECT_TRUE(out.empty());
}

TEST(PathToDatalogTest, LabelCollisionWithPrefixRejected) {
  Alphabet alphabet;
  alphabet.InternLabel("rpq_sneaky");
  auto re = ParseRegex("rpq_sneaky", &alphabet);
  ASSERT_TRUE(re.ok());
  EXPECT_FALSE(PathQueryToDatalog(**re, alphabet).ok());
}

TEST(PathToDatalogTest, AppendTwiceWithDistinctPrefixes) {
  Alphabet alphabet;
  auto r1 = ParseRegex("a+", &alphabet);
  auto r2 = ParseRegex("b", &alphabet);
  ASSERT_TRUE(r1.ok() && r2.ok());
  DatalogProgram program;
  auto ans1 = AppendPathAutomaton(&program, **r1, alphabet, "one_");
  auto ans2 = AppendPathAutomaton(&program, **r2, alphabet, "two_");
  ASSERT_TRUE(ans1.ok() && ans2.ok());
  EXPECT_NE(*ans1, *ans2);
  // Join them: q(X, Z) :- one_ans(X, Y), two_ans(Y, Z).
  auto q = program.InternPredicate("q", 2);
  ASSERT_TRUE(q.ok());
  DatalogRule rule;
  rule.num_vars = 3;
  rule.head = {*q, {0, 2}};
  rule.body = {{*ans1, {0, 1}}, {*ans2, {1, 2}}};
  program.AddRule(std::move(rule));
  program.SetGoal(*q);
  ASSERT_TRUE(program.Validate().ok());

  GraphDb graph;
  NodeId n0 = graph.AddNode();
  NodeId n1 = graph.AddNode();
  NodeId n2 = graph.AddNode();
  NodeId n3 = graph.AddNode();
  graph.AddEdge(n0, "a", n1);
  graph.AddEdge(n1, "a", n2);
  graph.AddEdge(n2, "b", n3);
  Relation out =
      EvalDatalogGoal(program, GraphToDatabase(graph)).value();
  EXPECT_TRUE(out.Contains({n0, n3}));
  EXPECT_TRUE(out.Contains({n1, n3}));
  EXPECT_FALSE(out.Contains({n0, n2}));
}

}  // namespace
}  // namespace rq

#include <gtest/gtest.h>

#include "common/bitset.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace rq {
namespace {

TEST(StatusTest, OkAndErrorStates) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "Ok");
  Status err = InvalidArgumentError("bad thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, ResultHoldsValueOrStatus) {
  Result<int> value(42);
  EXPECT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  Result<int> error(NotFoundError("nope"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  RQ_ASSIGN_OR_RETURN(int half, Half(x));
  RQ_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(StatusTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(StringsTest, SplitJoinStrip) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StripWhitespace("  hi \t"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StrJoin({"a", "b"}, ", "), "a, b");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringsTest, IdentifierChecks) {
  EXPECT_TRUE(IsIdentifier("abc_12"));
  EXPECT_TRUE(IsIdentifier("_x"));
  EXPECT_FALSE(IsIdentifier(""));
  EXPECT_FALSE(IsIdentifier("1ab"));
  EXPECT_FALSE(IsIdentifier("a-b"));
}

TEST(RngTest, DeterministicAndBounded) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng r(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Below(10), 10u);
    int64_t v = r.Between(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BelowCoversRange) {
  Rng r(3);
  std::vector<bool> seen(6, false);
  for (int i = 0; i < 200; ++i) seen[r.Below(6)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(BitsetTest, BasicOperations) {
  Bitset b(130);
  EXPECT_TRUE(b.None());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(64));
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitsetTest, SetAlgebra) {
  Bitset a(70), b(70);
  a.Set(1);
  a.Set(65);
  b.Set(65);
  b.Set(2);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.IsSubsetOf(b));
  Bitset u = a;
  EXPECT_TRUE(u.UnionWith(b));
  EXPECT_FALSE(u.UnionWith(b));  // already included
  EXPECT_TRUE(a.IsSubsetOf(u));
  EXPECT_TRUE(b.IsSubsetOf(u));
  u.IntersectWith(a);
  EXPECT_TRUE(u == a);
}

TEST(BitsetTest, ForEachVisitsInOrder) {
  Bitset b(200);
  b.Set(3);
  b.Set(77);
  b.Set(199);
  std::vector<size_t> seen;
  b.ForEach([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{3, 77, 199}));
}

TEST(BitsetTest, HashDistinguishesContents) {
  Bitset a(100), b(100);
  a.Set(5);
  b.Set(6);
  EXPECT_NE(a.Hash(), b.Hash());
  b.Reset(6);
  b.Set(5);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_TRUE(a == b);
}

}  // namespace
}  // namespace rq

#include "twoway/complement.h"

#include <gtest/gtest.h>

#include "automata/ops.h"
#include "twoway/random.h"
#include "twoway/tables.h"

namespace rq {
namespace {

std::vector<std::vector<Symbol>> AllWords(uint32_t k, size_t max_len) {
  std::vector<std::vector<Symbol>> out{{}};
  size_t start = 0;
  for (size_t len = 1; len <= max_len; ++len) {
    size_t end = out.size();
    for (size_t i = start; i < end; ++i) {
      for (Symbol a = 0; a < k; ++a) {
        std::vector<Symbol> w = out[i];
        w.push_back(a);
        out.push_back(std::move(w));
      }
    }
    start = end;
  }
  return out;
}

// Lemma 4 soundness/completeness: the Vardi construction accepts exactly
// the rejected words.
TEST(VardiComplementTest, ComplementsRandomSmall2Nfas) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    TwoNfa m = RandomTwoNfa(3, 2, 3, seed);
    auto comp = VardiComplementNfa(m, 2000000);
    ASSERT_TRUE(comp.ok()) << comp.status().ToString();
    for (const auto& w : AllWords(2, 4)) {
      EXPECT_EQ(!m.Accepts(w), comp->Accepts(w))
          << "seed " << seed << " len " << w.size();
    }
  }
}

TEST(VardiComplementTest, AgreesWithTableDfaComplement) {
  for (uint64_t seed = 100; seed <= 115; ++seed) {
    TwoNfa m = RandomTwoNfa(3, 2, 2, seed);
    auto comp = VardiComplementNfa(m, 2000000);
    auto table_dfa = MaterializeTableDfa(m, 100000);
    ASSERT_TRUE(comp.ok());
    ASSERT_TRUE(table_dfa.ok());
    Dfa naive = table_dfa->Complemented();
    for (const auto& w : AllWords(2, 4)) {
      EXPECT_EQ(naive.Accepts(w), comp->Accepts(w)) << "seed " << seed;
    }
  }
}

TEST(VardiComplementTest, RejectsOversized2Nfas) {
  TwoNfa m = RandomTwoNfa(25, 2, 2, 7);
  auto comp = VardiComplementNfa(m, 1000);
  EXPECT_FALSE(comp.ok());
  EXPECT_EQ(comp.status().code(), StatusCode::kInvalidArgument);
}

TEST(VardiComplementTest, HonorsStateBudget) {
  TwoNfa m = RandomTwoNfa(8, 2, 4, 13);
  auto comp = VardiComplementNfa(m, 10);
  if (!comp.ok()) {
    EXPECT_EQ(comp.status().code(), StatusCode::kResourceExhausted);
  }
}

// A 2NFA that accepts everything has an empty complement.
TEST(VardiComplementTest, UniversalMachineYieldsEmptyComplement) {
  TwoNfa m(2);
  uint32_t s = m.AddState();
  m.AddInitial(s);
  m.SetAccepting(s);
  m.AddTransition(s, m.LeftMarker(), s, Dir::kRight);
  m.AddTransition(s, 0, s, Dir::kRight);
  m.AddTransition(s, 1, s, Dir::kRight);
  auto comp = VardiComplementNfa(m, 1000000);
  ASSERT_TRUE(comp.ok());
  EXPECT_TRUE(comp->IsEmptyLanguage());
}

// A 2NFA with no accepting states has a universal complement.
TEST(VardiComplementTest, EmptyMachineYieldsUniversalComplement) {
  TwoNfa m(2);
  uint32_t s = m.AddState();
  m.AddInitial(s);
  m.AddTransition(s, m.LeftMarker(), s, Dir::kRight);
  m.AddTransition(s, 0, s, Dir::kRight);
  auto comp = VardiComplementNfa(m, 1000000);
  ASSERT_TRUE(comp.ok());
  for (const auto& w : AllWords(2, 3)) {
    EXPECT_TRUE(comp->Accepts(w));
  }
}

}  // namespace
}  // namespace rq

#include "twoway/fold.h"

#include <gtest/gtest.h>

#include "automata/words.h"
#include "common/rng.h"
#include "regex/regex.h"

namespace rq {
namespace {

class FoldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = ForwardSymbolOf(alphabet_.InternLabel("a"));
    b_ = ForwardSymbolOf(alphabet_.InternLabel("b"));
    c_ = ForwardSymbolOf(alphabet_.InternLabel("c"));
  }
  Alphabet alphabet_;
  Symbol a_, b_, c_;
};

// The paper's worked example (§3.2): abb⁻bc folds onto abc via the
// position sequence 0,1,2,1,2,3.
TEST_F(FoldTest, PaperExampleAbbInvBC) {
  std::vector<Symbol> v{a_, b_, InverseSymbol(b_), b_, c_};
  std::vector<Symbol> u{a_, b_, c_};
  EXPECT_TRUE(Folds(v, u));
  EXPECT_FALSE(Folds(u, v));  // folding is not symmetric
}

TEST_F(FoldTest, WordFoldsOntoItself) {
  std::vector<Symbol> w{a_, InverseSymbol(b_), c_};
  EXPECT_TRUE(Folds(w, w));
}

TEST_F(FoldTest, PpInversePFoldsOntoP) {
  // The 2RPQ containment example: p p⁻ p ; p.
  std::vector<Symbol> v{a_, InverseSymbol(a_), a_};
  std::vector<Symbol> u{a_};
  EXPECT_TRUE(Folds(v, u));
  EXPECT_FALSE(Folds(u, v));
}

TEST_F(FoldTest, MismatchedLettersDoNotFold) {
  EXPECT_FALSE(Folds({a_}, {b_}));
  EXPECT_FALSE(Folds({a_, b_}, {a_, c_}));
  EXPECT_FALSE(Folds({a_, InverseSymbol(b_), a_}, {a_}));
}

TEST_F(FoldTest, EmptyWordFoldsOnlyOntoEmpty) {
  EXPECT_TRUE(Folds({}, {}));
  EXPECT_FALSE(Folds({}, {a_}));
  EXPECT_FALSE(Folds({a_}, {}));
}

TEST_F(FoldTest, FoldCanTurnAroundAtRightEnd) {
  // v = a a⁻ a traverses to the end of u = a, backs up, returns.
  std::vector<Symbol> v{a_, InverseSymbol(a_), a_};
  EXPECT_TRUE(Folds(v, {a_}));
  // v = a b b⁻ c wanders past position 1 of u = a c? No: b does not match c.
  EXPECT_FALSE(Folds({a_, b_, InverseSymbol(b_), c_}, {a_, c_}));
}

TEST_F(FoldTest, FoldTwoNfaMatchesWordLevelDefinition) {
  // For random regexes over Sigma±, the Lemma 3 2NFA must agree with the
  // direct BFS fold check and the word-level Folds predicate.
  Rng rng(20160626);
  const uint32_t k = static_cast<uint32_t>(alphabet_.num_symbols());
  for (int round = 0; round < 25; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 3, /*allow_inverse=*/true, rng);
    Nfa nfa = re->ToNfa(k).WithoutEpsilons().Trimmed();
    TwoNfa fold2 = FoldTwoNfa(nfa);
    // Candidate u words: random short words over Sigma±.
    for (int w = 0; w < 25; ++w) {
      std::vector<Symbol> u;
      size_t len = rng.Below(4);
      for (size_t i = 0; i < len; ++i) {
        u.push_back(static_cast<Symbol>(rng.Below(k)));
      }
      bool direct = FoldsOntoWord(nfa, u);
      bool via_2nfa = fold2.Accepts(u);
      EXPECT_EQ(direct, via_2nfa)
          << re->ToString(alphabet_) << " on " << WordToString(alphabet_, u);
    }
    // Sanity: every accepted word of the NFA folds onto itself, so the
    // 2NFA must accept the NFA's own words.
    for (const auto& v : EnumerateAcceptedWords(nfa, 3, 15)) {
      EXPECT_TRUE(fold2.Accepts(v)) << re->ToString(alphabet_);
    }
  }
}

TEST_F(FoldTest, FoldTwoNfaStateCountMatchesLemma3) {
  Rng rng(77);
  const uint32_t k = static_cast<uint32_t>(alphabet_.num_symbols());
  for (int round = 0; round < 10; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 3, /*allow_inverse=*/true, rng);
    Nfa nfa = re->ToNfa(k).WithoutEpsilons().Trimmed();
    TwoNfa fold2 = FoldTwoNfa(nfa);
    EXPECT_EQ(fold2.num_states(), nfa.num_states() * (k + 1));
  }
}

TEST_F(FoldTest, FoldsAgainstBruteForceEnumeration) {
  // Cross-check FoldsOntoWord against brute-force search over all v of
  // bounded length accepted by the automaton.
  Rng rng(4242);
  const uint32_t k = static_cast<uint32_t>(alphabet_.num_symbols());
  for (int round = 0; round < 15; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 2, /*allow_inverse=*/true, rng);
    Nfa nfa = re->ToNfa(k).WithoutEpsilons().Trimmed();
    std::vector<std::vector<Symbol>> lang =
        EnumerateAcceptedWords(nfa, 6, 500);
    for (int w = 0; w < 10; ++w) {
      std::vector<Symbol> u;
      size_t len = rng.Below(3);
      for (size_t i = 0; i < len; ++i) {
        u.push_back(static_cast<Symbol>(rng.Below(k)));
      }
      bool brute = false;
      for (const auto& v : lang) {
        if (Folds(v, u)) {
          brute = true;
          break;
        }
      }
      bool direct = FoldsOntoWord(nfa, u);
      // Brute force only sees words up to length 6; it can miss folds that
      // need longer v, so brute==true must imply direct==true.
      if (brute) {
        EXPECT_TRUE(direct) << re->ToString(alphabet_);
      }
      if (!direct) {
        EXPECT_FALSE(brute) << re->ToString(alphabet_);
      }
    }
  }
}

}  // namespace
}  // namespace rq

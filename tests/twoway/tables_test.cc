#include "twoway/tables.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "regex/regex.h"
#include "twoway/fold.h"
#include "twoway/random.h"

namespace rq {
namespace {

// Exhaustive words up to length `max_len` over `k` symbols.
std::vector<std::vector<Symbol>> AllWords(uint32_t k, size_t max_len) {
  std::vector<std::vector<Symbol>> out{{}};
  size_t start = 0;
  for (size_t len = 1; len <= max_len; ++len) {
    size_t end = out.size();
    for (size_t i = start; i < end; ++i) {
      for (Symbol a = 0; a < k; ++a) {
        std::vector<Symbol> w = out[i];
        w.push_back(a);
        out.push_back(std::move(w));
      }
    }
    start = end;
  }
  return out;
}

TEST(TablesTest, SimulatorAgreesWithConfigurationBfsOnRandom2Nfas) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    TwoNfa m = RandomTwoNfa(4, 2, 4, seed);
    TwoNfaSimulator sim(m);
    for (const auto& w : AllWords(2, 5)) {
      EXPECT_EQ(m.Accepts(w), sim.AcceptsWord(w)) << "seed " << seed;
    }
  }
}

TEST(TablesTest, SimulatorAgreesOnFoldAutomata) {
  Alphabet alphabet;
  alphabet.InternLabel("p");
  alphabet.InternLabel("q");
  Rng rng(123);
  const uint32_t k = static_cast<uint32_t>(alphabet.num_symbols());
  for (int round = 0; round < 15; ++round) {
    RegexPtr re = RandomRegex(alphabet, 2, /*allow_inverse=*/true, rng);
    Nfa nfa = re->ToNfa(k).WithoutEpsilons().Trimmed();
    TwoNfa fold2 = FoldTwoNfa(nfa);
    TwoNfaSimulator sim(fold2);
    for (const auto& w : AllWords(k, 3)) {
      EXPECT_EQ(fold2.Accepts(w), sim.AcceptsWord(w))
          << re->ToString(alphabet);
    }
  }
}

TEST(TablesTest, MaterializedDfaMatchesDirectSimulation) {
  for (uint64_t seed = 50; seed <= 70; ++seed) {
    TwoNfa m = RandomTwoNfa(3, 2, 3, seed);
    auto dfa = MaterializeTableDfa(m, 100000);
    ASSERT_TRUE(dfa.ok()) << dfa.status().ToString();
    for (const auto& w : AllWords(2, 5)) {
      EXPECT_EQ(m.Accepts(w), dfa->Accepts(w)) << "seed " << seed;
    }
  }
}

TEST(TablesTest, MaterializeRespectsStateBudget) {
  TwoNfa m = RandomTwoNfa(6, 2, 5, 999);
  auto dfa = MaterializeTableDfa(m, 1);
  // Either the machine is trivial (1 state suffices) or we must get a
  // budget error; both are acceptable, but an over-budget success is not.
  if (dfa.ok()) {
    EXPECT_LE(dfa->num_states(), 1u);
  } else {
    EXPECT_EQ(dfa.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(TablesTest, EmptyWordAcceptanceMatches) {
  for (uint64_t seed = 200; seed <= 240; ++seed) {
    TwoNfa m = RandomTwoNfa(4, 2, 3, seed);
    TwoNfaSimulator sim(m);
    EXPECT_EQ(m.Accepts({}), sim.Accepts(sim.InitialTable()))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace rq

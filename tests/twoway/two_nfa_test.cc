// Direct unit tests of the two-way automaton model (hand-built machines
// exercising genuinely two-way behavior).
#include "twoway/two_nfa.h"

#include <gtest/gtest.h>

#include "automata/alphabet.h"

namespace rq {
namespace {

// A classic genuinely-two-way machine: accepts words whose FIRST letter
// equals their LAST letter (over symbols {0, 1}), by reading the first
// letter, running to the right end, and checking the letter before ⊣.
TwoNfa FirstEqualsLast() {
  TwoNfa m(2);
  // States: 0 = at start, 1/2 = saw first letter 0/1 running right,
  // 3/4 = at right marker expecting last letter 0/1, 5 = accept.
  for (int i = 0; i < 6; ++i) m.AddState();
  m.AddInitial(0);
  m.SetAccepting(5);
  m.AddTransition(0, m.LeftMarker(), 0, Dir::kRight);
  m.AddTransition(0, 0, 1, Dir::kRight);
  m.AddTransition(0, 1, 2, Dir::kRight);
  for (Symbol a = 0; a < 2; ++a) {
    m.AddTransition(1, a, 1, Dir::kRight);
    m.AddTransition(2, a, 2, Dir::kRight);
  }
  m.AddTransition(1, m.RightMarker(), 3, Dir::kLeft);
  m.AddTransition(2, m.RightMarker(), 4, Dir::kLeft);
  // Check the last letter, then run right again to accept at ⊣.
  m.AddTransition(3, 0, 5, Dir::kRight);
  m.AddTransition(4, 1, 5, Dir::kRight);
  m.AddTransition(5, m.RightMarker(), 5, Dir::kStay);
  return m;
}

TEST(TwoNfaTest, FirstEqualsLastMachine) {
  TwoNfa m = FirstEqualsLast();
  EXPECT_TRUE(m.Accepts({0}));
  EXPECT_TRUE(m.Accepts({1}));
  EXPECT_TRUE(m.Accepts({0, 1, 0}));
  EXPECT_TRUE(m.Accepts({1, 0, 0, 1}));
  EXPECT_FALSE(m.Accepts({0, 1}));
  EXPECT_FALSE(m.Accepts({1, 1, 0}));
  EXPECT_FALSE(m.Accepts({}));
}

TEST(TwoNfaTest, EmptyWordAcceptance) {
  TwoNfa m(2);
  uint32_t s = m.AddState();
  m.AddInitial(s);
  m.SetAccepting(s);
  m.AddTransition(s, m.LeftMarker(), s, Dir::kRight);
  // ⊢ then head lands on ⊣ (= position n+1 for n=0) in an accepting state.
  EXPECT_TRUE(m.Accepts({}));
  // But with a letter present it is stuck at position 1.
  EXPECT_FALSE(m.Accepts({0}));
}

TEST(TwoNfaTest, RunsDieAtTapeEdges) {
  TwoNfa m(1);
  uint32_t s = m.AddState();
  uint32_t t = m.AddState();
  m.AddInitial(s);
  m.SetAccepting(t);
  m.AddTransition(s, m.LeftMarker(), t, Dir::kLeft);  // falls off: dies
  EXPECT_FALSE(m.Accepts({}));
  EXPECT_FALSE(m.Accepts({0}));
}

TEST(TwoNfaTest, StayMovesDoNotLoopForever) {
  // A stay self-loop must not hang the membership test.
  TwoNfa m(1);
  uint32_t s = m.AddState();
  m.AddInitial(s);
  m.AddTransition(s, m.LeftMarker(), s, Dir::kStay);
  EXPECT_FALSE(m.Accepts({0}));
}

TEST(TwoNfaTest, ToStringListsTransitions) {
  Alphabet alphabet;
  alphabet.InternLabel("a");
  TwoNfa m = FirstEqualsLast();
  std::string text = m.ToString(alphabet);
  EXPECT_NE(text.find("2NFA states=6"), std::string::npos);
  EXPECT_NE(text.find("<|"), std::string::npos);
  EXPECT_NE(text.find("|>"), std::string::npos);
}

}  // namespace
}  // namespace rq

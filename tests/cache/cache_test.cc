// Tests for the content-addressed automata cache (src/cache/): key
// canonicalization, LRU byte-budget behavior, memoized-construction
// equivalence, and multi-threaded hammering (the latter is what the `tsan`
// ctest label runs under ThreadSanitizer).
#include "cache/automata_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "automata/containment.h"
#include "cache/key.h"
#include "cache/lru.h"
#include "obs/counters.h"
#include "regex/regex.h"
#include "twoway/fold.h"

namespace rq {
namespace {

// RAII: tests in this binary toggle the global cache; always restore.
struct ScopedCacheEnabled {
  ScopedCacheEnabled() {
    cache::AutomataCache::Global().Clear();
    cache::AutomataCache::Global().SetEnabled(true);
  }
  ~ScopedCacheEnabled() {
    cache::AutomataCache::Global().SetEnabled(false);
    cache::AutomataCache::Global().Clear();
  }
};

Nfa ChainNfa(uint32_t num_states, Symbol symbol) {
  Nfa nfa(2);
  for (uint32_t s = 0; s < num_states; ++s) nfa.AddState();
  nfa.AddInitial(0);
  nfa.SetAccepting(num_states - 1);
  for (uint32_t s = 0; s + 1 < num_states; ++s) {
    nfa.AddTransition(s, symbol, s + 1);
  }
  return nfa;
}

TEST(CacheKeyTest, EncodingIsInsensitiveToInsertionOrder) {
  Nfa a(2);
  a.AddState();
  a.AddState();
  a.AddInitial(0);
  a.SetAccepting(1);
  a.AddTransition(0, 0, 1);
  a.AddTransition(0, 1, 0);

  Nfa b(2);
  b.AddState();
  b.AddState();
  b.AddInitial(0);
  b.SetAccepting(1);
  b.AddTransition(0, 1, 0);  // same transitions, opposite order
  b.AddTransition(0, 0, 1);

  EXPECT_EQ(cache::Encode(a), cache::Encode(b));
  EXPECT_EQ(cache::StructuralHash(a), cache::StructuralHash(b));
}

TEST(CacheKeyTest, EncodingSeparatesDifferentAutomata) {
  Nfa a = ChainNfa(3, 0);
  Nfa b = ChainNfa(3, 1);
  Nfa c = ChainNfa(4, 0);
  EXPECT_NE(cache::Encode(a), cache::Encode(b));
  EXPECT_NE(cache::Encode(a), cache::Encode(c));
  // Accepting-state flip must change the key too.
  Nfa d = ChainNfa(3, 0);
  d.SetAccepting(0);
  EXPECT_NE(cache::Encode(a), cache::Encode(d));
}

TEST(CacheKeyTest, RegexEncodingDistinguishesStructure) {
  RegexPtr a = Regex::Concat({Regex::Atom(0), Regex::Atom(1)});
  RegexPtr b = Regex::Concat({Regex::Atom(1), Regex::Atom(0)});
  RegexPtr c = Regex::Star(Regex::Atom(0));
  RegexPtr d = Regex::Plus(Regex::Atom(0));
  EXPECT_NE(cache::Encode(*a), cache::Encode(*b));
  EXPECT_NE(cache::Encode(*c), cache::Encode(*d));
  EXPECT_EQ(cache::Encode(*a),
            cache::Encode(*Regex::Concat({Regex::Atom(0), Regex::Atom(1)})));
}

TEST(LruByteCacheTest, HitsMissesAndPromotions) {
  cache::LruByteCache<int> lru("test_a", 1 << 20);
  EXPECT_EQ(lru.Get("k1"), nullptr);
  lru.Put("k1", 41, 8);
  lru.Put("k2", 42, 8);
  auto hit = lru.Get("k1");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 41);
  EXPECT_EQ(lru.entries(), 2u);
}

TEST(LruByteCacheTest, EvictsLeastRecentlyUsedAgainstByteBudget) {
  // Budget fits two entries (each charged value + key + overhead).
  cache::LruByteCache<int> lru("test_b", 2 * (100 + 2 + 96));
  lru.Put("e1", 1, 100);
  lru.Put("e2", 2, 100);
  ASSERT_NE(lru.Get("e1"), nullptr);  // promote e1; e2 is now LRU
  lru.Put("e3", 3, 100);              // evicts e2
  EXPECT_NE(lru.Get("e1"), nullptr);
  EXPECT_EQ(lru.Get("e2"), nullptr);
  EXPECT_NE(lru.Get("e3"), nullptr);
  EXPECT_EQ(lru.entries(), 2u);
}

TEST(LruByteCacheTest, DuplicatePutKeepsFirstValue) {
  cache::LruByteCache<int> lru("test_c", 1 << 20);
  auto first = lru.Put("k", 1, 8);
  auto second = lru.Put("k", 2, 8);
  EXPECT_EQ(*second, 1) << "racing Put must not replace the stored value";
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(lru.entries(), 1u);
}

TEST(LruByteCacheTest, DuplicatePutCountsAsHit) {
  // A duplicate-key Put hands back the resident value — a hit. It must
  // bump the hit counters (per-kind and aggregate) and NOT count as an
  // insert, so hits + misses + inserts keeps tracking cache operations.
  cache::LruByteCache<int> lru("test_dup", 1 << 20);
  obs::CounterDelta delta;
  lru.Put("k", 1, 8);                     // insert
  lru.Put("k", 2, 8);                     // duplicate: hit, not insert
  EXPECT_EQ(delta.Delta("cache.test_dup_hits"), 1u);
  EXPECT_EQ(delta.Delta("cache.test_dup_misses"), 0u);
  EXPECT_EQ(delta.Delta("cache.hits"), 1u);
  EXPECT_EQ(delta.Delta("cache.inserts"), 1u);
}

TEST(AutomataCacheTest, CachedConstructionsMatchDirectOnes) {
  ScopedCacheEnabled enabled;
  RegexPtr regex = Regex::Concat(
      {Regex::Atom(0), Regex::Star(Regex::Union(
                           {Regex::Atom(1), Regex::Atom(2)}))});
  const uint32_t k = 4;
  Nfa direct = regex->ToNfa(k);
  auto cached = cache::CachedRegexToNfa(*regex, k);
  auto cached_again = cache::CachedRegexToNfa(*regex, k);
  EXPECT_EQ(cached.get(), cached_again.get()) << "second lookup must hit";
  EXPECT_EQ(cache::Encode(direct), cache::Encode(*cached));

  Nfa epsfree_direct = direct.WithoutEpsilons();
  auto epsfree_cached = cache::CachedEpsilonFree(direct);
  EXPECT_EQ(cache::Encode(epsfree_direct), cache::Encode(*epsfree_cached));
  // Already-epsilon-free inputs come back as aliases, not copies.
  auto alias = cache::CachedEpsilonFree(epsfree_direct);
  EXPECT_EQ(alias.get(), &epsfree_direct);

  TwoNfa fold_direct = FoldTwoNfa(epsfree_direct);
  auto fold_cached = cache::CachedFoldTwoNfa(epsfree_direct);
  EXPECT_EQ(cache::Encode(fold_direct), cache::Encode(*fold_cached));
}

TEST(AutomataCacheTest, VerdictCacheShortCircuitsRepeatedChecks) {
  ScopedCacheEnabled enabled;
  Nfa a = ChainNfa(4, 0);
  Nfa b = ChainNfa(4, 0);
  b.AddTransition(0, 1, 0);  // b also loops on symbol 1: L(a) ⊆ L(b)
  LanguageContainmentResult first = CheckLanguageContainment(a, b);
  obs::CounterDelta delta;
  LanguageContainmentResult second = CheckLanguageContainment(a, b);
  EXPECT_EQ(first.contained, second.contained);
  EXPECT_EQ(first.explored_states, second.explored_states);
  EXPECT_GE(delta.Delta("cache.verdict_hits"), 1u);
  // A hit answers without running the decision procedure.
  EXPECT_EQ(delta.Delta("containment.checks"), 0u);
}

TEST(AutomataCacheTest, DisabledCacheIsInert) {
  cache::AutomataCache::Global().SetEnabled(false);
  cache::AutomataCache::Global().Clear();
  Nfa a = ChainNfa(3, 0);
  obs::CounterDelta delta;
  CheckLanguageContainment(a, a);
  CheckLanguageContainment(a, a);
  EXPECT_EQ(delta.Delta("cache.hits"), 0u);
  EXPECT_EQ(delta.Delta("cache.misses"), 0u);
  EXPECT_EQ(delta.Delta("containment.checks"), 2u);
}

// Many threads hammering the same small key space: exercises the LRU mutex,
// the shared_ptr handoff, and the verdict cache under contention. Run under
// ThreadSanitizer via the tsan preset (ctest -L tsan).
TEST(AutomataCacheTest, ConcurrentMixedTrafficIsSafeAndConsistent) {
  ScopedCacheEnabled enabled;
  constexpr int kThreads = 8;
  constexpr int kIterations = 200;
  std::vector<Nfa> automata;
  for (uint32_t n = 2; n < 6; ++n) {
    automata.push_back(ChainNfa(n, 0));
    automata.push_back(ChainNfa(n, 1));
  }
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const Nfa& a = automata[(t + i) % automata.size()];
        const Nfa& b = automata[(t + 2 * i + 1) % automata.size()];
        LanguageContainmentResult result = CheckLanguageContainment(a, b);
        // Each chain accepts exactly one word, so containment holds iff the
        // chains are identical.
        bool expect = cache::Encode(a) == cache::Encode(b);
        if (result.contained != expect) ++failures[t];
        auto fold = cache::CachedFoldTwoNfa(a);
        if (fold == nullptr) ++failures[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);
}

}  // namespace
}  // namespace rq

#include "optimize/minimize.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/relation.h"

namespace rq {
namespace {

TEST(PruneDisjunctsTest, DropsSubsumedDisjuncts) {
  auto ucq = ParseUcq(
      "q(x, y) :- e(x, y)\n"
      "q(x, y) :- e(x, y), e(y, z)\n"
      "q(x, y) :- f(x, y)\n");
  ASSERT_TRUE(ucq.ok());
  auto pruned = PruneRedundantDisjuncts(*ucq);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->disjuncts.size(), 2u);
}

TEST(PruneDisjunctsTest, KeepsIndependentDisjuncts) {
  auto ucq = ParseUcq(
      "q(x, y) :- e(x, y)\n"
      "q(x, y) :- f(x, y)\n");
  ASSERT_TRUE(ucq.ok());
  auto pruned = PruneRedundantDisjuncts(*ucq);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->disjuncts.size(), 2u);
}

TEST(PruneDisjunctsTest, PrunedQueryStaysEquivalent) {
  auto ucq = ParseUcq(
      "q(x, y) :- e(x, y)\n"
      "q(x, y) :- e(x, z), e(z, y), e(x, y)\n"
      "q(x, y) :- f(x, y), f(x, x)\n"
      "q(x, y) :- f(x, y), f(y, y), f(x, x)\n");
  ASSERT_TRUE(ucq.ok());
  auto pruned = PruneRedundantDisjuncts(*ucq);
  ASSERT_TRUE(pruned.ok());
  EXPECT_LT(pruned->disjuncts.size(), ucq->disjuncts.size());
  EXPECT_TRUE(UcqContained(*ucq, *pruned).value());
  EXPECT_TRUE(UcqContained(*pruned, *ucq).value());
}

TEST(MinimizeCqTest, PathWithRedundantSideAtoms) {
  auto cq = ParseCq("q(x, y) :- e(x, y), e(x, z), e(w, z)");
  ASSERT_TRUE(cq.ok());
  auto minimized = MinimizeConjunctiveQuery(*cq);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->atoms.size(), 1u);
  EXPECT_TRUE(CqContained(*cq, *minimized).value());
  EXPECT_TRUE(CqContained(*minimized, *cq).value());
}

TEST(MinimizeCqTest, CoreOfTriangleIsTriangle) {
  // The triangle has no proper retract: nothing can be dropped.
  auto cq = ParseCq("q(x) :- e(x, y), e(y, z), e(z, x)");
  ASSERT_TRUE(cq.ok());
  auto minimized = MinimizeConjunctiveQuery(*cq);
  ASSERT_TRUE(minimized.ok());
  EXPECT_EQ(minimized->atoms.size(), 3u);
}

TEST(MinimizeCqTest, HeadSafetyPreserved) {
  // The only atom containing the head variable cannot be dropped.
  auto cq = ParseCq("q(w) :- f(w, a), e(a, b), e(b, c)");
  ASSERT_TRUE(cq.ok());
  auto minimized = MinimizeConjunctiveQuery(*cq);
  ASSERT_TRUE(minimized.ok());
  bool has_f = false;
  for (const CqAtom& atom : minimized->atoms) {
    if (atom.predicate == "f") has_f = true;
  }
  EXPECT_TRUE(has_f);
  EXPECT_TRUE(CqContained(*cq, *minimized).value());
  EXPECT_TRUE(CqContained(*minimized, *cq).value());
}

TEST(MinimizeCqTest, RandomizedMinimizationIsEquivalent) {
  Rng rng(515151);
  for (int round = 0; round < 40; ++round) {
    ConjunctiveQuery q = RandomBinaryCq(2 + rng.Below(5), 5, 2, rng);
    auto minimized = MinimizeConjunctiveQuery(q);
    ASSERT_TRUE(minimized.ok());
    EXPECT_LE(minimized->atoms.size(), q.atoms.size());
    EXPECT_TRUE(CqContained(q, *minimized).value()) << q.ToString();
    EXPECT_TRUE(CqContained(*minimized, q).value()) << q.ToString();
  }
}

TEST(ValidateRewriteTest, ClassifiesAllFourOutcomes) {
  Alphabet alphabet;
  RegexPtr original = ParseRegex("p (p- p)*", &alphabet).value();
  RegexPtr equivalent = ParseRegex("(p p-)* p", &alphabet).value();
  RegexPtr wider = ParseRegex("p (p- | p)*", &alphabet).value();
  RegexPtr narrower = ParseRegex("p", &alphabet).value();
  RegexPtr unrelated = ParseRegex("q", &alphabet).value();

  EXPECT_EQ(ValidatePathRewrite(*original, *equivalent, alphabet),
            RewriteVerdict::kEquivalent);
  EXPECT_EQ(ValidatePathRewrite(*original, *wider, alphabet),
            RewriteVerdict::kOverApproximates);
  EXPECT_EQ(ValidatePathRewrite(*original, *narrower, alphabet),
            RewriteVerdict::kUnderApproximates);
  EXPECT_EQ(ValidatePathRewrite(*original, *unrelated, alphabet),
            RewriteVerdict::kIncomparable);
}

}  // namespace
}  // namespace rq

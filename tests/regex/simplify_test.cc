#include "regex/simplify.h"

#include <gtest/gtest.h>

#include "automata/containment.h"
#include "common/rng.h"
#include "regex/derivatives.h"

namespace rq {
namespace {

class SimplifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alphabet_.InternLabel("a");
    alphabet_.InternLabel("b");
  }
  RegexPtr Re(const std::string& text) {
    auto re = ParseRegex(text, &alphabet_);
    RQ_CHECK(re.ok());
    return *re;
  }
  std::string Simplified(const std::string& text) {
    return SimplifyRegex(Re(text))->ToString(alphabet_);
  }
  Alphabet alphabet_;
};

TEST_F(SimplifyTest, ClassicalIdentities) {
  EXPECT_EQ(Simplified("a | a"), "a");
  EXPECT_EQ(Simplified("(a*)*"), "a*");
  EXPECT_EQ(Simplified("(a+)*"), "a*");
  EXPECT_EQ(Simplified("(a?)*"), "a*");
  EXPECT_EQ(Simplified("(a*)?"), "a*");
  EXPECT_EQ(Simplified("(a+)?"), "a*");
  EXPECT_EQ(Simplified("(a?)+"), "a*");
  EXPECT_EQ(Simplified("a* a*"), "a*");
  EXPECT_EQ(Simplified("a* a+"), "a+");
  EXPECT_EQ(Simplified("a+ a*"), "a+");
  EXPECT_EQ(Simplified("() a"), "a");
  EXPECT_EQ(Simplified("() | a*"), "a*");
  EXPECT_EQ(Simplified("()*"), "()");
}

TEST_F(SimplifyTest, EmptyAbsorbsAndVanishes) {
  RegexPtr empty_concat =
      Regex::Concat({Re("a"), Regex::Empty(), Re("b")});
  EXPECT_EQ(SimplifyRegex(empty_concat)->kind(), RegexKind::kEmpty);
  RegexPtr empty_union = Regex::Union({Regex::Empty(), Re("b")});
  EXPECT_EQ(SimplifyRegex(empty_union)->ToString(alphabet_), "b");
  EXPECT_EQ(SimplifyRegex(Regex::Star(Regex::Empty()))->kind(),
            RegexKind::kEpsilon);
}

TEST_F(SimplifyTest, NullableOptionalCollapses) {
  EXPECT_EQ(Simplified("(a | b?)?"), "a | b?");
  EXPECT_EQ(Simplified("(a b?)?") , "(a b?)?");  // not nullable: kept
}

TEST_F(SimplifyTest, FlattensNestedOperators) {
  RegexPtr nested = Regex::Union(
      {Regex::Union({Re("a"), Re("b")}), Regex::Union({Re("a")})});
  EXPECT_EQ(SimplifyRegex(nested)->ToString(alphabet_), "a | b");
  RegexPtr chained =
      Regex::Concat({Regex::Concat({Re("a"), Re("b")}), Re("a")});
  EXPECT_EQ(SimplifyRegex(chained)->ToString(alphabet_), "a b a");
}

TEST_F(SimplifyTest, IsIdempotent) {
  Rng rng(11);
  for (int round = 0; round < 60; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 4, true, rng);
    RegexPtr once = SimplifyRegex(re);
    RegexPtr twice = SimplifyRegex(once);
    EXPECT_EQ(once->ToString(alphabet_), twice->ToString(alphabet_));
  }
}

TEST_F(SimplifyTest, NeverGrows) {
  Rng rng(22);
  for (int round = 0; round < 60; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 4, true, rng);
    EXPECT_LE(SimplifyRegex(re)->Size(), re->Size())
        << re->ToString(alphabet_);
  }
}

TEST_F(SimplifyTest, PreservesLanguageOnRandomRegexes) {
  Rng rng(33);
  const uint32_t k = static_cast<uint32_t>(alphabet_.num_symbols());
  for (int round = 0; round < 80; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 4, true, rng);
    RegexPtr simplified = SimplifyRegex(re);
    EXPECT_TRUE(LanguagesEqual(re->ToNfa(k), simplified->ToNfa(k)))
        << re->ToString(alphabet_) << "  =>  "
        << simplified->ToString(alphabet_);
  }
}

TEST_F(SimplifyTest, PreservesMatchingPerDerivativeEngine) {
  Rng rng(44);
  for (int round = 0; round < 30; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 3, true, rng);
    RegexPtr simplified = SimplifyRegex(re);
    for (int w = 0; w < 20; ++w) {
      std::vector<Symbol> word;
      size_t len = rng.Below(5);
      for (size_t i = 0; i < len; ++i) {
        word.push_back(static_cast<Symbol>(rng.Below(4)));
      }
      EXPECT_EQ(DerivativeMatch(re, word), DerivativeMatch(simplified, word))
          << re->ToString(alphabet_);
    }
  }
}

}  // namespace
}  // namespace rq

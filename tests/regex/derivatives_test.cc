#include "regex/derivatives.h"

#include <gtest/gtest.h>

#include "automata/containment.h"
#include "automata/words.h"
#include "common/rng.h"

namespace rq {
namespace {

class DerivativesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alphabet_.InternLabel("a");
    alphabet_.InternLabel("b");
  }
  RegexPtr Re(const std::string& text) {
    auto re = ParseRegex(text, &alphabet_);
    RQ_CHECK(re.ok());
    return *re;
  }
  Alphabet alphabet_;
};

TEST_F(DerivativesTest, Nullability) {
  EXPECT_TRUE(IsNullable(*Re("a*")));
  EXPECT_TRUE(IsNullable(*Re("a?")));
  EXPECT_TRUE(IsNullable(*Re("()")));
  EXPECT_TRUE(IsNullable(*Re("a* b?")));
  EXPECT_FALSE(IsNullable(*Re("a")));
  EXPECT_FALSE(IsNullable(*Re("a+")));
  EXPECT_FALSE(IsNullable(*Re("a* b")));
  EXPECT_TRUE(IsNullable(*Re("a | b*")));
  EXPECT_FALSE(IsNullable(*Regex::Empty()));
}

TEST_F(DerivativesTest, BasicDerivatives) {
  Symbol a = ForwardSymbolOf(0);
  Symbol b = ForwardSymbolOf(1);
  EXPECT_TRUE(IsNullable(*Derivative(Re("a"), a)));
  EXPECT_EQ(Derivative(Re("a"), b)->kind(), RegexKind::kEmpty);
  // d_a(a b) = b.
  RegexPtr d = Derivative(Re("a b"), a);
  EXPECT_TRUE(DerivativeMatch(d, {b}));
  EXPECT_FALSE(DerivativeMatch(d, {a}));
  EXPECT_FALSE(IsNullable(*d));
}

TEST_F(DerivativesTest, MatchAgreesWithNfaOnRandomRegexes) {
  Rng rng(313);
  for (int round = 0; round < 60; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 4, /*allow_inverse=*/true, rng);
    Nfa nfa = re->ToNfa(4);
    for (int w = 0; w < 30; ++w) {
      std::vector<Symbol> word;
      size_t len = rng.Below(6);
      for (size_t i = 0; i < len; ++i) {
        word.push_back(static_cast<Symbol>(rng.Below(4)));
      }
      EXPECT_EQ(nfa.Accepts(word), DerivativeMatch(re, word))
          << re->ToString(alphabet_) << " on "
          << WordToString(alphabet_, word);
    }
  }
}

TEST_F(DerivativesTest, ContainmentAgreesWithAutomataRoute) {
  Rng rng(616);
  for (int round = 0; round < 50; ++round) {
    RegexPtr r1 = RandomRegex(alphabet_, 3, /*allow_inverse=*/false, rng);
    RegexPtr r2 = RandomRegex(alphabet_, 3, /*allow_inverse=*/false, rng);
    auto via_derivatives = DerivativeContainment(r1, r2, 4);
    ASSERT_TRUE(via_derivatives.ok()) << via_derivatives.status().ToString();
    bool via_automata =
        CheckLanguageContainment(r1->ToNfa(4), r2->ToNfa(4)).contained;
    EXPECT_EQ(*via_derivatives, via_automata)
        << r1->ToString(alphabet_) << " vs " << r2->ToString(alphabet_);
  }
}

TEST_F(DerivativesTest, DerivativeSpaceStaysFinite) {
  // Nested stars and unions: ACI normalization must keep the state space
  // small enough to terminate comfortably.
  RegexPtr r1 = Re("((a b)* | (b a)*)* a?");
  RegexPtr r2 = Re("(a | b)*");
  auto result = DerivativeContainment(r1, r2, 4, 10000);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result);
  auto reverse = DerivativeContainment(r2, r1, 4, 10000);
  ASSERT_TRUE(reverse.ok());
  EXPECT_FALSE(*reverse);
}

TEST_F(DerivativesTest, WordDerivativeCharacterizesResiduals) {
  // For every accepted word w = uv, d_u(re) must accept v.
  Rng rng(777);
  for (int round = 0; round < 25; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 3, /*allow_inverse=*/false, rng);
    Nfa nfa = re->ToNfa(4);
    for (const auto& w : EnumerateAcceptedWords(nfa, 4, 20)) {
      for (size_t split = 0; split <= w.size(); ++split) {
        RegexPtr residual = re;
        for (size_t i = 0; i < split; ++i) {
          residual = Derivative(residual, w[i]);
        }
        std::vector<Symbol> suffix(w.begin() + split, w.end());
        EXPECT_TRUE(DerivativeMatch(residual, suffix))
            << re->ToString(alphabet_);
      }
    }
  }
}

}  // namespace
}  // namespace rq

#include "regex/regex.h"

#include <gtest/gtest.h>

#include "automata/words.h"
#include "common/rng.h"

namespace rq {
namespace {

class RegexTest : public ::testing::Test {
 protected:
  Nfa Compile(const std::string& text) {
    auto re = ParseRegex(text, &alphabet_);
    RQ_CHECK(re.ok());
    return re.value()->ToNfa(
        static_cast<uint32_t>(alphabet_.num_symbols()));
  }

  std::vector<Symbol> Word(const std::string& spaced) {
    std::vector<Symbol> out;
    std::string token;
    for (char c : spaced + " ") {
      if (c == ' ') {
        if (!token.empty()) {
          out.push_back(alphabet_.ParseSymbol(token).value());
          token.clear();
        }
      } else {
        token.push_back(c);
      }
    }
    return out;
  }

  Alphabet alphabet_;
};

TEST_F(RegexTest, ParsesAtom) {
  Nfa nfa = Compile("knows");
  EXPECT_TRUE(nfa.Accepts(Word("knows")));
  EXPECT_FALSE(nfa.Accepts({}));
}

TEST_F(RegexTest, ParsesInverseAtom) {
  Nfa nfa = Compile("knows-");
  EXPECT_TRUE(nfa.Accepts(Word("knows-")));
  EXPECT_FALSE(nfa.Accepts(Word("knows")));
}

TEST_F(RegexTest, ParsesConcatByJuxtaposition) {
  Nfa nfa = Compile("a b c");
  EXPECT_TRUE(nfa.Accepts(Word("a b c")));
  EXPECT_FALSE(nfa.Accepts(Word("a b")));
  EXPECT_FALSE(nfa.Accepts(Word("a c b")));
}

TEST_F(RegexTest, ParsesUnion) {
  Nfa nfa = Compile("a | b c");
  EXPECT_TRUE(nfa.Accepts(Word("a")));
  EXPECT_TRUE(nfa.Accepts(Word("b c")));
  EXPECT_FALSE(nfa.Accepts(Word("b")));
}

TEST_F(RegexTest, ParsesStarPlusOptional) {
  Nfa star = Compile("a*");
  EXPECT_TRUE(star.Accepts({}));
  EXPECT_TRUE(star.Accepts(Word("a a a")));

  Nfa plus = Compile("a+");
  EXPECT_FALSE(plus.Accepts({}));
  EXPECT_TRUE(plus.Accepts(Word("a")));
  EXPECT_TRUE(plus.Accepts(Word("a a")));

  Nfa opt = Compile("a?");
  EXPECT_TRUE(opt.Accepts({}));
  EXPECT_TRUE(opt.Accepts(Word("a")));
  EXPECT_FALSE(opt.Accepts(Word("a a")));
}

TEST_F(RegexTest, ParsesEpsilonAsEmptyParens) {
  Nfa nfa = Compile("() | a");
  EXPECT_TRUE(nfa.Accepts({}));
  EXPECT_TRUE(nfa.Accepts(Word("a")));
}

TEST_F(RegexTest, PostfixBindsTighterThanConcat) {
  Nfa nfa = Compile("a b*");
  EXPECT_TRUE(nfa.Accepts(Word("a")));
  EXPECT_TRUE(nfa.Accepts(Word("a b b")));
  EXPECT_FALSE(nfa.Accepts(Word("a b a b")));
}

TEST_F(RegexTest, ConcatBindsTighterThanUnion) {
  Nfa nfa = Compile("a b | c");
  EXPECT_TRUE(nfa.Accepts(Word("a b")));
  EXPECT_TRUE(nfa.Accepts(Word("c")));
  EXPECT_FALSE(nfa.Accepts(Word("a c")));
}

TEST_F(RegexTest, ParseErrors) {
  Alphabet a;
  EXPECT_FALSE(ParseRegex("", &a).ok());
  EXPECT_FALSE(ParseRegex("a |", &a).ok());
  EXPECT_FALSE(ParseRegex("(a", &a).ok());
  EXPECT_FALSE(ParseRegex("a)", &a).ok());
  EXPECT_FALSE(ParseRegex("*", &a).ok());
  EXPECT_FALSE(ParseRegex("a ; b", &a).ok());
}

TEST_F(RegexTest, ToStringRoundTrips) {
  Rng rng(20260705);
  alphabet_.InternLabel("a");
  alphabet_.InternLabel("b");
  alphabet_.InternLabel("c");
  for (int i = 0; i < 60; ++i) {
    RegexPtr re = RandomRegex(alphabet_, 4, /*allow_inverse=*/true, rng);
    std::string text = re->ToString(alphabet_);
    auto reparsed = ParseRegex(text, &alphabet_);
    ASSERT_TRUE(reparsed.ok()) << text;
    // Same language: compare on enumerated words of both.
    Nfa n1 = re->ToNfa(static_cast<uint32_t>(alphabet_.num_symbols()));
    Nfa n2 = reparsed.value()->ToNfa(
        static_cast<uint32_t>(alphabet_.num_symbols()));
    for (const auto& w : EnumerateAcceptedWords(n1, 4, 50)) {
      EXPECT_TRUE(n2.Accepts(w)) << text;
    }
    for (const auto& w : EnumerateAcceptedWords(n2, 4, 50)) {
      EXPECT_TRUE(n1.Accepts(w)) << text;
    }
  }
}

TEST_F(RegexTest, InverseExpressionInvertsWords) {
  Rng rng(42);
  alphabet_.InternLabel("a");
  alphabet_.InternLabel("b");
  for (int i = 0; i < 40; ++i) {
    RegexPtr re = RandomRegex(alphabet_, 3, /*allow_inverse=*/true, rng);
    RegexPtr inv = re->InverseExpression();
    uint32_t k = static_cast<uint32_t>(alphabet_.num_symbols());
    Nfa fwd = re->ToNfa(k);
    Nfa bwd = inv->ToNfa(k);
    for (const auto& w : EnumerateAcceptedWords(fwd, 4, 40)) {
      EXPECT_TRUE(bwd.Accepts(InverseWord(w)))
          << re->ToString(alphabet_);
    }
    // Double inversion is the identity language.
    Nfa twice = inv->InverseExpression()->ToNfa(k);
    for (const auto& w : EnumerateAcceptedWords(fwd, 3, 20)) {
      EXPECT_TRUE(twice.Accepts(w));
    }
  }
}

TEST_F(RegexTest, UsesInverseDetection) {
  auto plain = ParseRegex("a (b | c)*", &alphabet_);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.value()->UsesInverse());
  auto twoway = ParseRegex("a (b- | c)*", &alphabet_);
  ASSERT_TRUE(twoway.ok());
  EXPECT_TRUE(twoway.value()->UsesInverse());
}

TEST_F(RegexTest, EmptyRegexHasEmptyLanguage) {
  Nfa nfa = Regex::Empty()->ToNfa(2);
  EXPECT_TRUE(nfa.IsEmptyLanguage());
}

TEST_F(RegexTest, MinNumSymbolsCoversAtoms) {
  auto re = ParseRegex("a b-", &alphabet_);
  ASSERT_TRUE(re.ok());
  // b is label 1 -> inverse symbol 3 -> need 4 symbols.
  EXPECT_EQ(re.value()->MinNumSymbols(), 4u);
}

}  // namespace
}  // namespace rq

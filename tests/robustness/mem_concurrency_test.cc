// Memory accounting under real concurrency (ctest label `memv1`, tsan
// binary): MemContext::ChildOf mirrors charging one shared pot from many
// threads, budget trips racing across mirrors, and the two fan-out sites
// that build per-worker mirrors (the batch containment pool and parallel
// multi-source graph evaluation). ThreadSanitizer checks the atomics; the
// asserts check that concurrent charges aggregate exactly and that budget
// trips are sticky and coherent on every thread.
#include "common/mem.h"

#include <gtest/gtest.h>

#include <latch>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "containment/batch.h"
#include "graph/generators.h"
#include "obs/counters.h"
#include "pathquery/path_query.h"
#include "regex/regex.h"

namespace rq {
namespace {

constexpr uint32_t kNumSymbols = 3;

Nfa RandomNfa(Rng& rng) {
  uint32_t num_states = 4 + static_cast<uint32_t>(rng.Below(6));
  Nfa nfa(kNumSymbols);
  for (uint32_t s = 0; s < num_states; ++s) nfa.AddState();
  nfa.AddInitial(static_cast<uint32_t>(rng.Below(num_states)));
  uint32_t num_transitions =
      2 * num_states + static_cast<uint32_t>(rng.Below(num_states));
  for (uint32_t t = 0; t < num_transitions; ++t) {
    nfa.AddTransition(static_cast<uint32_t>(rng.Below(num_states)),
                      static_cast<Symbol>(rng.Below(kNumSymbols)),
                      static_cast<uint32_t>(rng.Below(num_states)));
  }
  for (uint32_t s = 0; s < num_states; ++s) {
    if (rng.Below(3) == 0) nfa.SetAccepting(s);
  }
  return nfa;
}

struct NfaPool {
  std::vector<Nfa> automata;
  std::vector<NfaContainmentJob> jobs;
};

NfaPool MakePool(int num_jobs, uint64_t seed) {
  NfaPool pool;
  Rng rng(seed);
  for (int i = 0; i < 2 * num_jobs; ++i) {
    pool.automata.push_back(RandomNfa(rng));
  }
  for (int i = 0; i < num_jobs; ++i) {
    pool.jobs.push_back({&pool.automata[2 * i], &pool.automata[2 * i + 1]});
  }
  return pool;
}

TEST(MemConcurrencyTest, MirrorsAggregateExactlyIntoOnePot) {
  constexpr int kThreads = 8;
  constexpr int64_t kBytesPerThread = 1000;
  MemContext root;
  // Every thread holds its charge at the latch, so the pot's peak must
  // reach exactly kThreads * kBytesPerThread — no more (total never
  // overshoots), no less (all charges are simultaneously live).
  std::latch all_charged(kThreads);
  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&root, &all_charged] {
      MemContext mirror = MemContext::ChildOf(&root);
      ScopedMemContext scoped(&mirror);
      MemScope scope(MemSubsystem::kAutomata);
      MemCharge(kBytesPerThread);
      all_charged.arrive_and_wait();
    });
  }
  threads.clear();  // join; every scope released its charge
  EXPECT_EQ(root.total_bytes(), 0u);
  EXPECT_EQ(root.peak_total_bytes(),
            static_cast<uint64_t>(kThreads) * kBytesPerThread);
  EXPECT_EQ(root.peak_subsystem_bytes(MemSubsystem::kAutomata),
            static_cast<uint64_t>(kThreads) * kBytesPerThread);
}

TEST(MemConcurrencyTest, MirrorOutlivesItsRoot) {
  // The pot is shared_ptr-owned: a mirror keeps it alive after the root
  // context object is gone, so pool workers can outlast the frame that
  // spawned them.
  MemContext mirror;
  {
    MemContext root;
    mirror = MemContext::ChildOf(&root);
  }
  ScopedMemContext scoped(&mirror);
  MemCharge(5);
  MemCharge(-5);
  EXPECT_EQ(mirror.total_bytes(), 0u);
  EXPECT_GE(mirror.peak_total_bytes(), 5u);
}

TEST(MemConcurrencyTest, BudgetTripIsStickyAcrossRacingMirrors) {
  constexpr int kThreads = 8;
  obs::CounterDelta delta;
  MemContext root(/*budget_bytes=*/1);
  std::latch all_charged(kThreads);
  std::vector<StatusCode> codes(kThreads, StatusCode::kOk);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&root, &all_charged, &codes, t] {
        MemContext mirror = MemContext::ChildOf(&root);
        ScopedMemContext scoped(&mirror);
        MemScope scope(MemSubsystem::kFold);
        MemCharge(100);
        all_charged.arrive_and_wait();
        codes[static_cast<size_t>(t)] = mirror.Check().code();
      });
    }
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(codes[static_cast<size_t>(t)], StatusCode::kResourceExhausted)
        << "thread " << t;
  }
  EXPECT_TRUE(root.exceeded());
  // Each mirror latched once (one mem.budget_exceeded bump per context,
  // not per poll).
  EXPECT_EQ(delta.Delta("mem.budget_exceeded"),
            static_cast<uint64_t>(kThreads));
}

TEST(MemConcurrencyTest, BatchPoolWorkersChargeCallerPot) {
  NfaPool pool = MakePool(24, 1234);
  MemContext root;
  ScopedMemContext scoped(&root);
  ContainmentBatchOptions options;
  options.jobs = 4;
  options.algo = ContainmentAlgo::kExplicit;  // determinizes, so it charges
  std::vector<LanguageContainmentResult> results =
      CheckContainmentBatch(pool.jobs, options);
  ASSERT_EQ(results.size(), pool.jobs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].status.ok()) << "job " << i;
  }
  // Worker mirrors chained to the caller's context: their subset-row
  // charges aggregated into this pot from pool threads.
  EXPECT_GT(root.peak_total_bytes(), 0u);
  EXPECT_GT(root.peak_subsystem_bytes(MemSubsystem::kAutomata), 0u);
  EXPECT_EQ(root.total_bytes(), 0u);  // all scopes released at job exit
}

TEST(MemConcurrencyTest, PerJobBudgetFailsEveryJobIndependently) {
  NfaPool pool = MakePool(24, 77);
  ContainmentBatchOptions options;
  options.jobs = 4;
  options.algo = ContainmentAlgo::kExplicit;
  options.memory_budget_bytes = 1;
  // Without this, the first trip cancels the rest of the queue and the
  // per-job verdicts become a race between kResourceExhausted and
  // kCancelled.
  options.cancel_on_error = false;
  std::vector<LanguageContainmentResult> results =
      CheckContainmentBatch(pool.jobs, options);
  ASSERT_EQ(results.size(), pool.jobs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status.code(), StatusCode::kResourceExhausted)
        << "job " << i << ": " << results[i].status.ToString();
  }
}

TEST(MemConcurrencyTest, ParallelMultiSourceEvalChargesCallerPot) {
  GraphDb db = RandomGraph(60, 400, {"a", "b", "c"}, /*seed=*/17);
  auto q = ParsePathQuery("a (b | c-)* a-", &db.alphabet());
  ASSERT_TRUE(q.ok());
  const Nfa nfa =
      q->regex->ToNfa(static_cast<uint32_t>(db.alphabet().num_symbols()))
          .WithoutEpsilons();
  const GraphSnapshotPtr snapshot = db.Snapshot();
  std::vector<NodeId> sources;
  for (NodeId n = 0; n < snapshot->num_nodes(); ++n) sources.push_back(n);

  const auto serial = EvalPathQueryFromSources(*snapshot, nfa, sources,
                                               PathEvalOptions{.jobs = 1});
  MemContext root;
  ScopedMemContext scoped(&root);
  const auto parallel = EvalPathQueryFromSources(*snapshot, nfa, sources,
                                                 PathEvalOptions{.jobs = 8});
  EXPECT_EQ(parallel, serial);
  // The per-worker mirrors charged BFS bitsets/frontiers into this pot.
  EXPECT_GT(root.peak_subsystem_bytes(MemSubsystem::kGraph), 0u);
  EXPECT_EQ(root.total_bytes(), 0u);
}

}  // namespace
}  // namespace rq

// Memory accounting tests (ctest label `memv1`, sanitize binary): the
// MemScope/MemContext attribution semantics of common/mem.h, budget
// enforcement through the shared CheckExecContext() polling sites, the
// never-cache-truncated rule, the per-query profile memory section, the
// Prometheus rq_mem_* families, and the accounting-vs-RSS sanity bound.
// Budget tests use 1-byte budgets so the first charge crosses them —
// deterministic, no dependence on real construction sizes.
#include "common/mem.h"

#include <gtest/gtest.h>

#if !defined(_WIN32)
#include <sys/resource.h>
#endif

#include <string>

#include "cache/automata_cache.h"
#include "common/deadline.h"
#include "datalog/eval.h"
#include "obs/counters.h"
#include "obs/mem_stats.h"
#include "obs/profile.h"
#include "obs/prometheus.h"
#include "pathquery/containment.h"
#include "regex/regex.h"
#include "rq/expand.h"
#include "rq/parser.h"

namespace rq {
namespace {

RegexPtr Parse(const std::string& text, Alphabet* alphabet) {
  auto parsed = ParseRegex(text, alphabet);
  RQ_CHECK(parsed.ok());
  return *parsed;
}

int64_t LiveBytes(MemSubsystem subsystem) {
  return obs::MemStats::Get()
      .subsystem_bytes[static_cast<size_t>(subsystem)]
      ->value();
}

TEST(MemSubsystemTest, NamesMatchGaugeVocabulary) {
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kAutomata), "automata");
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kFold), "fold");
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kComplement), "complement");
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kRq), "rq");
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kDatalog), "datalog");
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kGraph), "graph");
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kCache), "cache");
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kOther), "other");
}

TEST(MemScopeTest, ChargeAttributesToInnermostAndReleasesOnExit) {
  int64_t fold_before = LiveBytes(MemSubsystem::kFold);
  int64_t rq_before = LiveBytes(MemSubsystem::kRq);
  {
    MemScope outer(MemSubsystem::kFold);
    MemCharge(1000);
    EXPECT_EQ(LiveBytes(MemSubsystem::kFold), fold_before + 1000);
    {
      MemScope inner(MemSubsystem::kRq);
      MemCharge(500);
      EXPECT_EQ(LiveBytes(MemSubsystem::kRq), rq_before + 500);
      EXPECT_EQ(inner.net_bytes(), 500);
    }
    // Inner scope released its net; outer's charge is still live.
    EXPECT_EQ(LiveBytes(MemSubsystem::kRq), rq_before);
    EXPECT_EQ(LiveBytes(MemSubsystem::kFold), fold_before + 1000);
    EXPECT_EQ(outer.net_bytes(), 1000);
  }
  EXPECT_EQ(LiveBytes(MemSubsystem::kFold), fold_before);
}

TEST(MemScopeTest, NegativeChargeReducesNet) {
  int64_t before = LiveBytes(MemSubsystem::kDatalog);
  {
    MemScope scope(MemSubsystem::kDatalog);
    MemCharge(800);
    MemCharge(-300);
    EXPECT_EQ(scope.net_bytes(), 500);
    EXPECT_EQ(LiveBytes(MemSubsystem::kDatalog), before + 500);
  }
  EXPECT_EQ(LiveBytes(MemSubsystem::kDatalog), before);
}

TEST(MemScopeTest, ChargeWithoutScopeLandsInOther) {
  int64_t before = LiveBytes(MemSubsystem::kOther);
  MemCharge(64);
  EXPECT_EQ(LiveBytes(MemSubsystem::kOther), before + 64);
  MemCharge(-64);
  EXPECT_EQ(LiveBytes(MemSubsystem::kOther), before);
}

TEST(MemContextTest, ChargesTrackSubsystemsAndPeaks) {
  MemContext ctx;
  ScopedMemContext scoped(&ctx);
  {
    MemScope scope(MemSubsystem::kComplement);
    MemCharge(2048);
    EXPECT_EQ(ctx.subsystem_bytes(MemSubsystem::kComplement), 2048u);
    EXPECT_EQ(ctx.total_bytes(), 2048u);
  }
  // Scope release returns live bytes to zero; peaks persist.
  EXPECT_EQ(ctx.subsystem_bytes(MemSubsystem::kComplement), 0u);
  EXPECT_EQ(ctx.total_bytes(), 0u);
  EXPECT_EQ(ctx.peak_subsystem_bytes(MemSubsystem::kComplement), 2048u);
  EXPECT_EQ(ctx.peak_total_bytes(), 2048u);
}

TEST(MemContextTest, NoInstalledContextIsOk) {
  EXPECT_TRUE(CheckMemBudget().ok());
}

TEST(MemContextTest, BudgetTripLatchesAndBumpsCounterOnce) {
  obs::CounterDelta delta;
  MemContext ctx(/*budget_bytes=*/1);
  ScopedMemContext scoped(&ctx);
  EXPECT_TRUE(ctx.Check().ok());  // under budget until a charge crosses it
  MemCharge(4096);
  MemCharge(-4096);
  EXPECT_TRUE(ctx.exceeded());  // sticky: crossing latches even after release
  Status first = CheckMemBudget();
  EXPECT_EQ(first.code(), StatusCode::kResourceExhausted);
  Status second = CheckMemBudget();
  EXPECT_EQ(second.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(ctx.stopped());
  EXPECT_EQ(delta.Delta("mem.budget_exceeded"), 1u);
}

TEST(MemContextTest, ChildOfSharesPotAndBudget) {
  MemContext parent(/*budget_bytes=*/1);
  MemContext child = MemContext::ChildOf(&parent);
  {
    ScopedMemContext scoped(&child);
    MemCharge(100);
  }
  EXPECT_EQ(parent.peak_total_bytes(), 100u);
  EXPECT_TRUE(parent.exceeded());
  // The mirror observes the shared trip with a fresh latch of its own.
  EXPECT_EQ(child.Check().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(parent.Check().code(), StatusCode::kResourceExhausted);
  MemContext orphan = MemContext::ChildOf(nullptr);
  EXPECT_FALSE(orphan.has_budget());
  EXPECT_EQ(orphan.total_bytes(), 0u);
}

TEST(MemContextTest, ParentChainReceivesChargesAndEnforcesBudget) {
  MemContext batch_wide(/*budget_bytes=*/1);
  MemContext job(/*budget_bytes=*/0, &batch_wide);
  ScopedMemContext scoped(&job);
  MemCharge(64);
  // The job has no budget of its own, but the chained batch-wide budget
  // still stops it.
  EXPECT_EQ(batch_wide.total_bytes(), 64u);
  EXPECT_TRUE(job.exceeded());
  EXPECT_EQ(job.Check().code(), StatusCode::kResourceExhausted);
  MemCharge(-64);
}

TEST(MemContextTest, DurableChargesSkipContextAndBudget) {
  MemContext ctx(/*budget_bytes=*/1);
  ScopedMemContext scoped(&ctx);
  int64_t before = LiveBytes(MemSubsystem::kCache);
  MemChargeDurable(MemSubsystem::kCache, 1 << 20);
  // Global gauge moved; the installed context saw nothing.
  EXPECT_EQ(LiveBytes(MemSubsystem::kCache), before + (1 << 20));
  EXPECT_EQ(ctx.total_bytes(), 0u);
  EXPECT_FALSE(ctx.exceeded());
  EXPECT_TRUE(ctx.Check().ok());
  MemReleaseDurable(MemSubsystem::kCache, 1 << 20);
  EXPECT_EQ(LiveBytes(MemSubsystem::kCache), before);
}

TEST(MemContextTest, ScopeRestoresPreviousContext) {
  MemContext outer;
  ScopedMemContext outer_scope(&outer);
  EXPECT_EQ(MemContext::Current(), &outer);
  {
    MemContext inner;
    ScopedMemContext inner_scope(&inner);
    EXPECT_EQ(MemContext::Current(), &inner);
  }
  EXPECT_EQ(MemContext::Current(), &outer);
}

// --- Propagation through the decision procedures -------------------------

TEST(MemBudgetPropagationTest, TwoWayFoldPipelineReturnsResourceExhausted) {
  Alphabet alphabet;
  RegexPtr q1 = Parse("p", &alphabet);
  RegexPtr q2 = Parse("p p- p", &alphabet);
  MemContext ctx(/*budget_bytes=*/1);
  ScopedMemContext scoped(&ctx);
  PathContainmentResult result =
      CheckPathQueryContainment(*q1, *q2, alphabet);
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(ctx.exceeded());
}

TEST(MemBudgetPropagationTest, DatalogEvalReturnsResourceExhausted) {
  auto program = ParseDatalog(R"(
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- tc(X, Y), edge(Y, Z).
    ?- tc.
  )");
  ASSERT_TRUE(program.ok());
  Database db;
  Relation* e = db.GetOrCreate("edge", 2).value();
  e->Insert({1, 2});
  e->Insert({2, 3});
  MemContext ctx(/*budget_bytes=*/1);
  ScopedMemContext scoped(&ctx);
  auto result = EvalDatalogGoal(*program, db);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(MemBudgetPropagationTest, RqExpansionReturnsResourceExhausted) {
  auto query = ParseRq("q(x,y) := tc[x,y](a(x,y) & b(x,y))");
  ASSERT_TRUE(query.ok());
  MemContext ctx(/*budget_bytes=*/1);
  ScopedMemContext scoped(&ctx);
  RqExpandLimits limits;
  auto result = ExpandRq(*query, limits);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(MemBudgetPropagationTest, UnlimitedContextStillAttributes) {
  Alphabet alphabet;
  RegexPtr q1 = Parse("p", &alphabet);
  RegexPtr q2 = Parse("p p- p", &alphabet);
  MemContext ctx;  // no budget: pure attribution
  ScopedMemContext scoped(&ctx);
  PathContainmentResult result =
      CheckPathQueryContainment(*q1, *q2, alphabet);
  EXPECT_TRUE(result.status.ok());
  // The fold pipeline charges fold-tagged bytes against the context.
  EXPECT_GT(ctx.peak_total_bytes(), 0u);
  EXPECT_GT(ctx.peak_subsystem_bytes(MemSubsystem::kFold), 0u);
}

TEST(MemBudgetPropagationTest, TruncatedByMemoryIsNeverCached) {
  cache::AutomataCache& ac = cache::AutomataCache::Global();
  ac.SetEnabled(true);
  ac.Clear();
  Alphabet alphabet;
  RegexPtr q1 = Parse("p", &alphabet);
  RegexPtr q2 = Parse("p (p- p)*", &alphabet);
  {
    MemContext ctx(/*budget_bytes=*/1);
    ScopedMemContext scoped(&ctx);
    PathContainmentResult truncated =
        CheckPathQueryContainment(*q1, *q2, alphabet);
    ASSERT_EQ(truncated.status.code(), StatusCode::kResourceExhausted);
  }
  // The poisoned run must not have memoized a verdict: the clean re-run
  // gets a real one.
  obs::CounterDelta delta;
  PathContainmentResult clean =
      CheckPathQueryContainment(*q1, *q2, alphabet);
  EXPECT_TRUE(clean.status.ok());
  EXPECT_TRUE(clean.contained);
  EXPECT_EQ(delta.Delta("cache.verdict_hits"), 0u);
  ac.SetEnabled(false);
  ac.Clear();
}

// --- Observability surfaces ----------------------------------------------

TEST(MemObsTest, ProfileReportsMemorySection) {
  obs::QueryProfile profile;
  profile.Begin("test", "mem", "profile-memory");
  MemContext ctx(/*budget_bytes=*/0);
  ScopedMemContext scoped(&ctx);
  {
    MemScope scope(MemSubsystem::kAutomata);
    MemCharge(4096);
  }
  profile.End();
  const obs::ProfileMemory& memory = profile.memory();
  ASSERT_TRUE(memory.present);
  EXPECT_GE(memory.peak_total_bytes, 4096u);
  EXPECT_GE(memory.peak_subsystem_bytes[static_cast<size_t>(
                MemSubsystem::kAutomata)],
            4096u);
  EXPECT_FALSE(memory.exceeded);
  std::string json = profile.ToJson().Dump(0);
  EXPECT_NE(json.find("\"memory\""), std::string::npos);
  EXPECT_NE(json.find("\"automata\""), std::string::npos);
  std::string text = profile.ToText();
  EXPECT_NE(text.find("memory (peak bytes, this query):"),
            std::string::npos);
}

TEST(MemObsTest, ProfileOmitsMemorySectionWithoutContext) {
  obs::QueryProfile profile;
  profile.Begin("test", "mem", "no-context");
  profile.End();
  EXPECT_FALSE(profile.memory().present);
  EXPECT_EQ(profile.ToJson().Dump(0).find("\"memory\""),
            std::string::npos);
}

TEST(MemObsTest, PrometheusCarriesMemFamilies) {
  {
    MemScope scope(MemSubsystem::kFold);
    MemCharge(1234);
  }
  std::string text = obs::RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE rq_mem_fold_bytes gauge"),
            std::string::npos);
  EXPECT_NE(text.find("rq_mem_fold_bytes_peak"), std::string::npos);
  EXPECT_NE(text.find("rq_mem_tracked_bytes"), std::string::npos);
  EXPECT_NE(text.find("rq_mem_peak_rss_bytes"), std::string::npos);
  EXPECT_NE(text.find("# HELP rq_mem_fold_bytes mem.fold_bytes"),
            std::string::npos);
}

TEST(MemObsTest, AccountingNeverExceedsRss) {
  // Hold a live charge while sampling so the bound is non-trivial, then
  // assert the self-reported total is within the OS's peak-RSS view —
  // the accountant tracks a subset of real allocations, so tracked <= RSS.
  MemScope scope(MemSubsystem::kGraph);
  MemCharge(1 << 20);
  uint64_t rss = obs::SampleRssGauge();
  if (rss == 0) GTEST_SKIP() << "getrusage unsupported here";
  int64_t tracked = obs::MemStats::Get().tracked_bytes.value();
  EXPECT_GT(tracked, 0);
  EXPECT_LE(static_cast<uint64_t>(tracked), rss);
  EXPECT_EQ(obs::MemStats::Get().peak_rss_bytes.value(),
            static_cast<int64_t>(rss));
}

TEST(MemObsTest, RuMaxRssScalingIsPlatformGated) {
  // Regression for the unconditional `* 1024`: ru_maxrss is kilobytes on
  // Linux but ALREADY bytes on macOS/BSD, so scaling must depend on the
  // unit. The pre-fix code inflated the bytes-unit reading 1024x, which
  // made AccountingNeverExceedsRss vacuous off-Linux.
  EXPECT_EQ(obs::RuMaxRssToBytes(5, obs::RuMaxRssUnit::kKilobytes), 5120u);
  EXPECT_EQ(obs::RuMaxRssToBytes(5, obs::RuMaxRssUnit::kBytes), 5u);
#if defined(__linux__)
  EXPECT_EQ(obs::kPlatformRuMaxRssUnit, obs::RuMaxRssUnit::kKilobytes);
#elif defined(__APPLE__)
  EXPECT_EQ(obs::kPlatformRuMaxRssUnit, obs::RuMaxRssUnit::kBytes);
#endif
  // The sampled gauge must agree with the helper applied to the raw
  // platform reading — i.e. SampleRssGauge applies exactly one scaling.
  uint64_t sampled = obs::SampleRssGauge();
  if (sampled == 0) GTEST_SKIP() << "getrusage unsupported here";
  struct rusage usage;
  ASSERT_EQ(getrusage(RUSAGE_SELF, &usage), 0);
  EXPECT_GE(obs::RuMaxRssToBytes(static_cast<uint64_t>(usage.ru_maxrss)),
            sampled);
}

TEST(MemObsTest, AllocHistogramRecordsPositiveChargesOnly) {
  uint64_t before = obs::MemStats::Get().alloc_bytes.count();
  {
    MemScope scope(MemSubsystem::kRq);
    MemCharge(512);
  }
  // One positive charge recorded; the scope's release did not.
  EXPECT_EQ(obs::MemStats::Get().alloc_bytes.count(), before + 1);
}

}  // namespace
}  // namespace rq

// Batch cancellation under real concurrency (ctest label `robustness`,
// tsan binary): an external CancelToken tripped from another thread while
// workers are mid-batch, plus the first-error cancellation path with
// parallel workers. ThreadSanitizer checks the token/queue synchronization;
// the asserts check that every job lands with a coherent per-job status and
// that the queue-depth gauge drains to zero.
#include "containment/batch.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/rng.h"
#include "obs/subsystems.h"
#include "regex/regex.h"

namespace rq {
namespace {

constexpr uint32_t kNumSymbols = 3;

Nfa RandomNfa(Rng& rng) {
  uint32_t num_states = 4 + static_cast<uint32_t>(rng.Below(6));
  Nfa nfa(kNumSymbols);
  for (uint32_t s = 0; s < num_states; ++s) nfa.AddState();
  nfa.AddInitial(static_cast<uint32_t>(rng.Below(num_states)));
  uint32_t num_transitions =
      2 * num_states + static_cast<uint32_t>(rng.Below(num_states));
  for (uint32_t t = 0; t < num_transitions; ++t) {
    nfa.AddTransition(static_cast<uint32_t>(rng.Below(num_states)),
                      static_cast<Symbol>(rng.Below(kNumSymbols)),
                      static_cast<uint32_t>(rng.Below(num_states)));
  }
  for (uint32_t s = 0; s < num_states; ++s) {
    if (rng.Below(3) == 0) nfa.SetAccepting(s);
  }
  return nfa;
}

struct NfaPool {
  std::vector<Nfa> automata;
  std::vector<NfaContainmentJob> jobs;
};

NfaPool MakePool(int num_jobs, uint64_t seed) {
  NfaPool pool;
  Rng rng(seed);
  for (int i = 0; i < 2 * num_jobs; ++i) {
    pool.automata.push_back(RandomNfa(rng));
  }
  for (int i = 0; i < num_jobs; ++i) {
    pool.jobs.push_back({&pool.automata[2 * i], &pool.automata[2 * i + 1]});
  }
  return pool;
}

// Every job must end in exactly one of: a real verdict (ok), cancelled
// before start / mid-run, or deadline exceeded. Anything else (or an
// abort) is a bug.
void ExpectCoherentStatuses(
    const std::vector<LanguageContainmentResult>& results) {
  for (size_t i = 0; i < results.size(); ++i) {
    const Status& s = results[i].status;
    EXPECT_TRUE(s.ok() || s.code() == StatusCode::kCancelled ||
                s.code() == StatusCode::kDeadlineExceeded)
        << "job " << i << ": " << s.ToString();
  }
}

TEST(BatchCancelConcurrencyTest, ExternalCancelMidBatchDrainsQueue) {
  NfaPool pool = MakePool(64, 2024);
  CancelToken token;
  ContainmentBatchOptions options;
  options.jobs = 4;
  options.cancel = &token;
  options.algo = ContainmentAlgo::kAntichain;

  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    token.Cancel();
  });
  std::vector<LanguageContainmentResult> results =
      CheckContainmentBatch(pool.jobs, options);
  canceller.join();

  ASSERT_EQ(results.size(), pool.jobs.size());
  ExpectCoherentStatuses(results);
  // Every job was accounted for: the backlog gauge returns to empty even
  // though most jobs never ran.
  EXPECT_EQ(obs::BatchCounters::Get().queue_depth.value(), 0);
}

TEST(BatchCancelConcurrencyTest, CancelBeforeStartCancelsEveryJob) {
  NfaPool pool = MakePool(32, 7);
  CancelToken token;
  token.Cancel();
  ContainmentBatchOptions options;
  options.jobs = 4;
  options.cancel = &token;
  std::vector<LanguageContainmentResult> results =
      CheckContainmentBatch(pool.jobs, options);
  ASSERT_EQ(results.size(), pool.jobs.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status.code(), StatusCode::kCancelled)
        << "job " << i;
  }
  EXPECT_EQ(obs::BatchCounters::Get().queue_depth.value(), 0);
}

TEST(BatchCancelConcurrencyTest, FirstErrorCancelsQueuedJobsAcrossWorkers) {
  // An expired parent deadline makes every started job fail, so the first
  // finisher trips the internal first-error token; jobs picked up after
  // that report kCancelled without running. Parallel workers exercise the
  // token from multiple threads.
  NfaPool pool = MakePool(48, 99);
  ExecContext parent(Deadline::AfterMillis(-1));
  ScopedExecContext scoped(&parent);
  ContainmentBatchOptions options;
  options.jobs = 4;
  std::vector<LanguageContainmentResult> results =
      CheckContainmentBatch(pool.jobs, options);
  ASSERT_EQ(results.size(), pool.jobs.size());
  size_t deadline_trips = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    const Status& s = results[i].status;
    EXPECT_TRUE(s.code() == StatusCode::kDeadlineExceeded ||
                s.code() == StatusCode::kCancelled)
        << "job " << i << ": " << s.ToString();
    if (s.code() == StatusCode::kDeadlineExceeded) ++deadline_trips;
  }
  // At least one job actually started and tripped its own deadline.
  EXPECT_GE(deadline_trips, 1u);
  EXPECT_EQ(obs::BatchCounters::Get().queue_depth.value(), 0);
}

TEST(BatchCancelConcurrencyTest, ConcurrentBatchesWithIndependentTokens) {
  // Two batches in flight at once: one cancelled, one running to
  // completion. The cancelled batch must not leak its cancellation into
  // the healthy one (separate tokens, separate guards).
  NfaPool pool = MakePool(24, 41);
  CancelToken token;
  token.Cancel();
  std::vector<LanguageContainmentResult> cancelled_results;
  std::thread cancelled_batch([&] {
    ContainmentBatchOptions options;
    options.jobs = 3;
    options.cancel = &token;
    cancelled_results = CheckContainmentBatch(pool.jobs, options);
  });
  ContainmentBatchOptions healthy;
  healthy.jobs = 3;
  std::vector<LanguageContainmentResult> healthy_results =
      CheckContainmentBatch(pool.jobs, healthy);
  cancelled_batch.join();

  ASSERT_EQ(healthy_results.size(), pool.jobs.size());
  for (size_t i = 0; i < healthy_results.size(); ++i) {
    EXPECT_TRUE(healthy_results[i].status.ok()) << "job " << i;
  }
  ASSERT_EQ(cancelled_results.size(), pool.jobs.size());
  for (size_t i = 0; i < cancelled_results.size(); ++i) {
    EXPECT_EQ(cancelled_results[i].status.code(), StatusCode::kCancelled)
        << "job " << i;
  }
  EXPECT_EQ(obs::BatchCounters::Get().queue_depth.value(), 0);
}

}  // namespace
}  // namespace rq

// Robustness tests (ctest label `robustness`, sanitize binary): deadline
// and cancellation semantics of common/deadline.h, their propagation
// through the containment ladder and the evaluators, per-job batch
// statuses, the expansion-truncation flag, the rewriting subset budget,
// and the LRU oversized-insert bypass. Timeout tests use pre-expired
// deadlines so they are deterministic — no racing against a real clock.
#include "common/deadline.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "automata/containment.h"
#include "cache/lru.h"
#include "common/mem.h"
#include "containment/batch.h"
#include "crpq/crpq.h"
#include "datalog/eval.h"
#include "obs/counters.h"
#include "pathquery/containment.h"
#include "regex/regex.h"
#include "rq/containment.h"
#include "rq/parser.h"
#include "views/rewriting.h"

namespace rq {
namespace {

Deadline ExpiredDeadline() { return Deadline::AfterMillis(-1); }

RegexPtr Parse(const std::string& text, Alphabet* alphabet) {
  auto parsed = ParseRegex(text, alphabet);
  RQ_CHECK(parsed.ok());
  return *parsed;
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingNanos(), Deadline::kInfiniteNs);
}

TEST(DeadlineTest, PastDeadlineIsExpired) {
  EXPECT_TRUE(ExpiredDeadline().Expired());
  EXPECT_LT(ExpiredDeadline().RemainingNanos(), 0);
  EXPECT_FALSE(Deadline::AfterMillis(60'000).Expired());
}

TEST(DeadlineTest, EarlierPicksFiniteOverInfinite) {
  Deadline finite = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(
      Deadline::Earlier(finite, Deadline::Infinite()).IsInfinite());
  EXPECT_FALSE(
      Deadline::Earlier(Deadline::Infinite(), finite).IsInfinite());
  EXPECT_TRUE(Deadline::Earlier(Deadline::Infinite(), Deadline::Infinite())
                  .IsInfinite());
}

TEST(ExecContextTest, NoInstalledContextIsOk) {
  EXPECT_TRUE(CheckExecContext().ok());
  EXPECT_FALSE(ExecStopRequested());
}

TEST(ExecContextTest, ExpiredDeadlineTripsAndLatches) {
  ExecContext ctx(ExpiredDeadline());
  ScopedExecContext scoped(&ctx);
  Status first = CheckExecContext();
  EXPECT_EQ(first.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(ctx.stopped());
  // Latched: every later poll returns the same verdict without a fresh
  // clock read.
  EXPECT_EQ(CheckExecContext().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(ExecStopRequested());
}

TEST(ExecContextTest, CancelTokenTripsAsCancelled) {
  CancelToken token;
  ExecContext ctx(Deadline::Infinite(), &token);
  ScopedExecContext scoped(&ctx);
  EXPECT_TRUE(CheckExecContext().ok());
  token.Cancel();
  EXPECT_EQ(CheckExecContext().code(), StatusCode::kCancelled);
  EXPECT_TRUE(ctx.stopped());
}

TEST(ExecContextTest, ScopeRestoresPreviousContext) {
  ExecContext outer(Deadline::Infinite());
  ScopedExecContext outer_scope(&outer);
  EXPECT_EQ(ExecContext::Current(), &outer);
  {
    ExecContext inner(ExpiredDeadline());
    ScopedExecContext inner_scope(&inner);
    EXPECT_EQ(ExecContext::Current(), &inner);
  }
  EXPECT_EQ(ExecContext::Current(), &outer);
  EXPECT_TRUE(CheckExecContext().ok());
}

TEST(ExecContextTest, TripBumpsExpiredCounterOnce) {
  obs::CounterDelta delta;
  ExecContext ctx(ExpiredDeadline());
  ScopedExecContext scoped(&ctx);
  (void)CheckExecContext();
  (void)CheckExecContext();
  EXPECT_EQ(delta.Delta("deadline.expired"), 1u);
  EXPECT_EQ(delta.Delta("deadline.cancelled"), 0u);
}

TEST(ExecContextTest, ChildOfMirrorsDeadlineAndToken) {
  CancelToken token;
  ExecContext parent(ExpiredDeadline(), &token);
  ExecContext child = ExecContext::ChildOf(&parent);
  EXPECT_EQ(child.cancel_token(), &token);
  EXPECT_TRUE(child.deadline().Expired());
  ExecContext orphan = ExecContext::ChildOf(nullptr);
  EXPECT_TRUE(orphan.deadline().IsInfinite());
  EXPECT_EQ(orphan.cancel_token(), nullptr);
}

TEST(DeadlinePropagationTest, LanguageContainmentReturnsDeadlineStatus) {
  Alphabet alphabet;
  RegexPtr r1 = Parse("(a | b)* a", &alphabet);
  RegexPtr r2 = Parse("(a | b)*", &alphabet);
  Nfa a = r1->ToNfa(r1->MinNumSymbols());
  Nfa b = r2->ToNfa(r2->MinNumSymbols());
  ExecContext ctx(ExpiredDeadline());
  ScopedExecContext scoped(&ctx);
  EXPECT_EQ(CheckLanguageContainment(a, b).status.code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(CheckLanguageContainmentAntichain(a, b).status.code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(CheckLanguageContainmentExplicit(a, b).status.code(),
            StatusCode::kDeadlineExceeded);
}

TEST(DeadlinePropagationTest, TwoWayFoldPipelineReturnsDeadlineStatus) {
  Alphabet alphabet;
  RegexPtr q1 = Parse("p", &alphabet);
  RegexPtr q2 = Parse("p p- p", &alphabet);
  ExecContext ctx(ExpiredDeadline());
  ScopedExecContext scoped(&ctx);
  PathContainmentResult result =
      CheckPathQueryContainment(*q1, *q2, alphabet);
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlinePropagationTest, RqContainmentReturnsDeadlineError) {
  auto q1 = ParseRq("q(x,y) := tc[x,y](a(x,y) & b(x,y))");
  auto q2 = ParseRq("q(x,y) := tc[x,y](a(x,y))");
  ASSERT_TRUE(q1.ok() && q2.ok());
  ExecContext ctx(ExpiredDeadline());
  ScopedExecContext scoped(&ctx);
  auto result = CheckRqContainment(*q1, *q2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlinePropagationTest, DatalogEvalReturnsDeadlineError) {
  auto program = ParseDatalog(R"(
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- tc(X, Y), edge(Y, Z).
    ?- tc.
  )");
  ASSERT_TRUE(program.ok());
  Database db;
  Relation* e = db.GetOrCreate("edge", 2).value();
  e->Insert({1, 2});
  e->Insert({2, 3});
  ExecContext ctx(ExpiredDeadline());
  ScopedExecContext scoped(&ctx);
  for (DatalogEvalMode mode :
       {DatalogEvalMode::kNaive, DatalogEvalMode::kSemiNaive}) {
    auto result = EvalDatalogGoal(*program, db, mode);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(DeadlinePropagationTest, Uc2RpqContainmentReturnsDeadlineError) {
  Alphabet alphabet;
  auto q1 = ParseUc2Rpq("q(x, y) :- (a*)(x, z), (a*)(z, y)", &alphabet);
  auto q2 = ParseUc2Rpq("q(x, y) :- (a*)(x, z), (a*)(z, y)", &alphabet);
  ASSERT_TRUE(q1.ok() && q2.ok());
  ExecContext ctx(ExpiredDeadline());
  ScopedExecContext scoped(&ctx);
  auto result = CheckUc2RpqContainment(*q1, *q2, alphabet);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DeadlinePropagationTest, RewritingReturnsDeadlineError) {
  Alphabet alphabet;
  RegexPtr query = Parse("(a b)*", &alphabet);
  std::vector<View> views;
  views.push_back({"v", Parse("a b", &alphabet)});
  ExecContext ctx(ExpiredDeadline());
  ScopedExecContext scoped(&ctx);
  auto result = MaximalRewriting(*query, views, alphabet);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// Satellite regression: the UC2RPQ expansion budget used to be computed and
// then discarded; the result must surface it.
TEST(CrpqTruncationTest, LowExpansionBudgetSetsTruncatedFlag) {
  Alphabet alphabet;
  auto q1 = ParseUc2Rpq("q(x, y) :- (a*)(x, z), (a*)(z, y)", &alphabet);
  ASSERT_TRUE(q1.ok());
  CrpqContainmentOptions options;
  options.max_expansions = 3;
  auto result = CheckUc2RpqContainment(*q1, *q1, alphabet, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
  EXPECT_EQ(result->certainty, Certainty::kUnknownUpToBound);
  EXPECT_LE(result->expansions_checked, options.max_expansions);
}

TEST(CrpqTruncationTest, FiniteLanguageIsNotTruncated) {
  Alphabet alphabet;
  auto q1 = ParseUc2Rpq("q(x, y) :- (a)(x, z), (b)(z, y)", &alphabet);
  ASSERT_TRUE(q1.ok());
  auto result = CheckUc2RpqContainment(*q1, *q1, alphabet);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->truncated);
  EXPECT_EQ(result->certainty, Certainty::kProved);
}

// Satellite: the subset construction's state budget fails cleanly with
// kResourceExhausted instead of looping or aborting.
TEST(RewritingBudgetTest, SubsetBudgetReturnsResourceExhausted) {
  Alphabet alphabet;
  RegexPtr query = Parse("(a b)* | a (b a)*", &alphabet);
  std::vector<View> views;
  views.push_back({"va", Parse("a", &alphabet)});
  views.push_back({"vb", Parse("b", &alphabet)});
  auto result = MaximalRewriting(*query, views, alphabet, /*max_states=*/1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(BatchStatusTest, NullJobsGetPerJobInvalidArgument) {
  Alphabet alphabet;
  RegexPtr r = Parse("a", &alphabet);
  Nfa a = r->ToNfa(r->MinNumSymbols());
  std::vector<NfaContainmentJob> jobs;
  jobs.push_back({&a, &a});      // contained
  jobs.push_back({nullptr, &a}); // invalid
  jobs.push_back({&a, nullptr}); // invalid
  jobs.push_back({&a, &a});      // contained — must still run
  ContainmentBatchOptions options;
  options.jobs = 2;
  std::vector<LanguageContainmentResult> results =
      CheckContainmentBatch(jobs, options);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_TRUE(results[0].contained);
  EXPECT_EQ(results[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(results[2].status.code(), StatusCode::kInvalidArgument);
  // Validation failures must not trip the first-error cancellation: the
  // healthy jobs still complete.
  EXPECT_TRUE(results[3].status.ok());
  EXPECT_TRUE(results[3].contained);
}

TEST(BatchStatusTest, PathBatchNullJobsGetPerJobInvalidArgument) {
  Alphabet alphabet;
  RegexPtr q = Parse("a b", &alphabet);
  std::vector<PathContainmentJob> jobs;
  jobs.push_back({q.get(), q.get()});
  jobs.push_back({nullptr, q.get()});
  std::vector<PathContainmentResult> results =
      CheckPathContainmentBatch(jobs, alphabet, {});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_TRUE(results[0].contained);
  EXPECT_EQ(results[1].status.code(), StatusCode::kInvalidArgument);
}

TEST(BatchStatusTest, ExpiredParentDeadlineFailsFirstJobAndCancelsRest) {
  Alphabet alphabet;
  RegexPtr r = Parse("(a | b)* a", &alphabet);
  Nfa a = r->ToNfa(r->MinNumSymbols());
  std::vector<NfaContainmentJob> jobs(4, {&a, &a});
  ExecContext parent(ExpiredDeadline());
  ScopedExecContext scoped(&parent);
  ContainmentBatchOptions options;
  options.jobs = 1;  // serial: deterministic first-error ordering
  std::vector<LanguageContainmentResult> results =
      CheckContainmentBatch(jobs, options);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kDeadlineExceeded);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status.code(), StatusCode::kCancelled)
        << "job " << i;
  }
}

TEST(BatchStatusTest, CancelOnErrorFalseKeepsRemainingJobsRunning) {
  Alphabet alphabet;
  RegexPtr r = Parse("a", &alphabet);
  Nfa a = r->ToNfa(r->MinNumSymbols());
  std::vector<NfaContainmentJob> jobs(3, {&a, &a});
  ExecContext parent(ExpiredDeadline());
  ScopedExecContext scoped(&parent);
  ContainmentBatchOptions options;
  options.jobs = 1;
  options.cancel_on_error = false;
  std::vector<LanguageContainmentResult> results =
      CheckContainmentBatch(jobs, options);
  for (size_t i = 0; i < results.size(); ++i) {
    // Every job runs (no first-error cancellation) and each one trips its
    // own expired deadline.
    EXPECT_EQ(results[i].status.code(), StatusCode::kDeadlineExceeded)
        << "job " << i;
  }
}

TEST(BatchStatusTest, ExternalTokenCancelsQueuedJobs) {
  Alphabet alphabet;
  RegexPtr r = Parse("a", &alphabet);
  Nfa a = r->ToNfa(r->MinNumSymbols());
  std::vector<NfaContainmentJob> jobs(3, {&a, &a});
  CancelToken token;
  token.Cancel();  // already fired: every job reports kCancelled
  ContainmentBatchOptions options;
  options.jobs = 2;
  options.cancel = &token;
  std::vector<LanguageContainmentResult> results =
      CheckContainmentBatch(jobs, options);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status.code(), StatusCode::kCancelled)
        << "job " << i;
  }
}

// Satellite regression for src/cache/lru.h: an entry larger than the whole
// budget used to evict every resident entry and then itself — the cache
// ended up empty. Oversized values now bypass insertion.
// Exit-code precedence when BOTH resource bounds trip (docs/ROBUSTNESS.md
// "Which error wins"): each context latches its own verdict independently
// and sticks to it, but the shared polling site CheckExecContext() consults
// the memory budget BEFORE the deadline, so once the byte budget is
// exceeded every subsequent poll reports kResourceExhausted — even if the
// deadline latched kDeadlineExceeded first. rqcheck mirrors this: a check
// whose MemContext pot was exceeded exits 4 even when the deadline also
// expired.
TEST(ResourcePrecedenceTest, MemoryVerdictOutranksLatchedDeadline) {
  ExecContext ctx(ExpiredDeadline());
  ScopedExecContext scoped(&ctx);
  // The deadline latches first: no memory context installed yet.
  EXPECT_EQ(CheckExecContext().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(ctx.stopped());

  MemContext mem(1);  // 1-byte budget: the first charge crosses it
  ScopedMemContext scoped_mem(&mem);
  {
    MemScope scope(MemSubsystem::kOther);
    MemCharge(2);
    // Both bounds are now tripped. The memory verdict wins at the shared
    // polling site, and keeps winning (both latches are sticky)...
    EXPECT_EQ(CheckExecContext().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(CheckExecContext().code(), StatusCode::kResourceExhausted);
  }
  // ...while the ExecContext's own latch still remembers the deadline —
  // precedence is a property of the polling site, not a rewrite of either
  // context's latched status.
  EXPECT_EQ(ctx.Check().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(mem.exceeded());
}

TEST(ResourcePrecedenceTest, MemoryVerdictWinsWhenBothTripBeforeFirstPoll) {
  // Fresh contexts, both already over their bounds before anything polls:
  // the first poll reports the memory verdict, so a query that trips both
  // surfaces kResourceExhausted (rqcheck exit 4), not kDeadlineExceeded.
  MemContext mem(1);
  ScopedMemContext scoped_mem(&mem);
  ExecContext ctx(ExpiredDeadline());
  ScopedExecContext scoped(&ctx);
  MemScope scope(MemSubsystem::kOther);
  MemCharge(2);
  EXPECT_EQ(CheckExecContext().code(), StatusCode::kResourceExhausted);
  // The deadline never got to latch through the shared site.
  EXPECT_FALSE(ctx.stopped());
}

TEST(ResourcePrecedenceTest, CheckerSurfacesMemoryErrorWhenBothTrip) {
  // End to end through a real decision procedure: with an expired deadline
  // AND an exhausted byte budget installed, the containment checker's
  // Status carries the memory verdict.
  Alphabet alphabet;
  RegexPtr q1 = Parse("a a* b", &alphabet);
  RegexPtr q2 = Parse("a* b", &alphabet);
  MemContext mem(1);
  ScopedMemContext scoped_mem(&mem);
  MemScope scope(MemSubsystem::kOther);
  MemCharge(2);
  ExecContext ctx(ExpiredDeadline());
  ScopedExecContext scoped(&ctx);
  PathContainmentResult result =
      CheckPathQueryContainment(*q1, *q2, alphabet);
  EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
}

TEST(LruOversizedTest, OversizedPutBypassesInsteadOfFlushingCache) {
  obs::CounterDelta delta;
  cache::LruByteCache<int> cache("ovsz_test", /*byte_budget=*/512);
  auto small = cache.Put("small", 7, /*value_bytes=*/16);
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(cache.entries(), 1u);

  auto big = cache.Put("big", 42, /*value_bytes=*/1 << 20);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(*big, 42);  // caller still gets the freshly built value
  EXPECT_EQ(cache.Get("big"), nullptr);  // but it was never cached

  // The resident entry survived.
  EXPECT_EQ(cache.entries(), 1u);
  auto hit = cache.Get("small");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 7);

  EXPECT_EQ(delta.Delta("cache.ovsz_test_oversized"), 1u);
  EXPECT_EQ(delta.Delta("cache.ovsz_test_evictions"), 0u);
}

TEST(LruOversizedTest, BudgetSizedEntryStillInserts) {
  cache::LruByteCache<int> cache("ovsz_fit_test", /*byte_budget=*/4096);
  auto stored = cache.Put("k", 1, /*value_bytes=*/256);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_NE(cache.Get("k"), nullptr);
}

}  // namespace
}  // namespace rq

// Concurrency tests for the flight recorder's per-slot seqlock protocol
// (obs/flight_recorder.h), run under ThreadSanitizer via the tsan-obsv3
// ctest label: many writers overflowing the full ring while a reader
// snapshots continuously must never produce a torn entry, and every
// summary not present in the final ring must be accounted for by the
// obs.flight_dropped counter.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/counters.h"
#include "obs/flight_recorder.h"

namespace rq {
namespace obs {
namespace {

constexpr unsigned kWriters = 8;
constexpr uint64_t kRecordsPerWriter = 2000;

// Each recorded summary derives every field from its `work` token, so a
// reader can verify an entry is internally consistent: any mix of fields
// from two different writers (a torn read the seqlock failed to catch)
// breaks at least one of these equations.
uint64_t WorkToken(unsigned writer, uint64_t i) {
  return writer * 1000000ull + i + 1;
}

QueryKind KindFor(uint64_t work) {
  return static_cast<QueryKind>(1 + work % 8);
}

int32_t VerdictFor(uint64_t work) {
  return static_cast<int32_t>(work % 4);
}

uint64_t DurationFor(uint64_t work) { return work * 7 + 1; }

void ExpectEntryConsistent(const FlightEntry& entry) {
  ASSERT_GT(entry.work, 0u);
  EXPECT_EQ(entry.kind, KindFor(entry.work));
  EXPECT_EQ(entry.verdict, VerdictFor(entry.work));
  EXPECT_EQ(entry.duration_ns, DurationFor(entry.work));
}

TEST(FlightRecorderConcurrencyTest, FullRingNeverTearsUnderConcurrentWriters) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Reset();
  recorder.SetSlowQueryThresholdNs(0);  // keep the mutex log out of the way
  uint64_t dropped_before = GetCounter("obs.flight_dropped")->value();

  // Fill the ring before the writers start, so every concurrent Record
  // runs against a FULL ring and must evict oldest-first.
  for (size_t i = 0; i < FlightRecorder::kCapacity; ++i) {
    uint64_t work = WorkToken(kWriters, i);  // distinct from writer tokens
    recorder.Record(KindFor(work), VerdictFor(work), DurationFor(work),
                    work);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> snapshots_taken{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const FlightEntry& entry : recorder.Snapshot()) {
        ExpectEntryConsistent(entry);
      }
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> writers;
  for (unsigned w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (uint64_t i = 0; i < kRecordsPerWriter; ++i) {
        uint64_t work = WorkToken(w, i);
        recorder.Record(KindFor(work), VerdictFor(work), DurationFor(work),
                        work);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(snapshots_taken.load(), 0u);

  // Quiescent accounting: every ticket ever issued either sits in the
  // final ring or was counted dropped (evicted by a newer summary, or
  // lost its slot claim to a lapped writer).
  const uint64_t total =
      FlightRecorder::kCapacity + uint64_t{kWriters} * kRecordsPerWriter;
  EXPECT_EQ(recorder.TotalRecorded(), total);

  std::vector<FlightEntry> entries = recorder.Snapshot();
  ASSERT_LE(entries.size(), FlightRecorder::kCapacity);
  uint64_t dropped =
      GetCounter("obs.flight_dropped")->value() - dropped_before;
  EXPECT_EQ(dropped, total - entries.size());

  uint64_t prev_seq = 0;
  bool first = true;
  for (const FlightEntry& entry : entries) {
    ExpectEntryConsistent(entry);
    if (!first) {
      EXPECT_GT(entry.seq, prev_seq);  // oldest-first, no dupes
    }
    prev_seq = entry.seq;
    first = false;
  }
}

// Serial control: with a single writer there is no slot-claim contention,
// so a full ring must retain EXACTLY the newest kCapacity summaries and
// drop precisely the oldest ones.
TEST(FlightRecorderConcurrencyTest, SerialOverflowKeepsNewestExactly) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Reset();
  recorder.SetSlowQueryThresholdNs(0);
  uint64_t dropped_before = GetCounter("obs.flight_dropped")->value();

  const uint64_t total = FlightRecorder::kCapacity * 3;
  for (uint64_t i = 0; i < total; ++i) {
    uint64_t work = WorkToken(0, i);
    recorder.Record(KindFor(work), VerdictFor(work), DurationFor(work),
                    work);
  }

  std::vector<FlightEntry> entries = recorder.Snapshot();
  ASSERT_EQ(entries.size(), FlightRecorder::kCapacity);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].seq, total - FlightRecorder::kCapacity + i);
    ExpectEntryConsistent(entries[i]);
  }
  EXPECT_EQ(GetCounter("obs.flight_dropped")->value() - dropped_before,
            total - FlightRecorder::kCapacity);
}

}  // namespace
}  // namespace obs
}  // namespace rq

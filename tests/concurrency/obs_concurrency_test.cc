// Concurrency tests for the observability layer (the `tsan`/`obsv2` ctest
// labels run this binary under ThreadSanitizer): histogram and gauge
// totals under contention, and the per-thread span attribution regression
// — a multi-worker containment batch in full trace mode must never link a
// span to a parent recorded by a different thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "automata/alphabet.h"
#include "common/rng.h"
#include "containment/batch.h"
#include "obs/gauge.h"
#include "obs/histogram.h"
#include "obs/subsystems.h"
#include "obs/trace.h"
#include "regex/regex.h"

namespace rq {
namespace {

TEST(ObsConcurrencyTest, HistogramConcurrentRecordsPreserveTotals) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 25000;
  obs::Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  uint64_t n = kThreads * kPerThread;
  EXPECT_EQ(h.count(), n);
  EXPECT_EQ(h.sum(), n * (n - 1) / 2);  // each value 0..n-1 exactly once
  EXPECT_EQ(h.max(), n - 1);
  EXPECT_GT(h.ValueAtQuantile(0.99), h.ValueAtQuantile(0.50));
}

TEST(ObsConcurrencyTest, GaugeConcurrentAddSubBalancesToZero) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 25000;
  obs::Gauge* g = obs::GetGauge("test.concurrent_gauge");
  g->Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([g] {
      for (int i = 0; i < kRounds; ++i) {
        g->Add(1);
        g->Sub(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g->value(), 0);
  EXPECT_GE(g->peak(), 1);
  EXPECT_LE(g->peak(), kThreads);
}

constexpr uint32_t kNumSymbols = 3;

Nfa RandomNfa(Rng& rng) {
  uint32_t num_states = 2 + static_cast<uint32_t>(rng.Below(4));
  Nfa nfa(kNumSymbols);
  for (uint32_t s = 0; s < num_states; ++s) nfa.AddState();
  nfa.AddInitial(static_cast<uint32_t>(rng.Below(num_states)));
  uint32_t num_transitions =
      num_states + static_cast<uint32_t>(rng.Below(num_states + 1));
  for (uint32_t t = 0; t < num_transitions; ++t) {
    nfa.AddTransition(static_cast<uint32_t>(rng.Below(num_states)),
                      static_cast<Symbol>(rng.Below(kNumSymbols)),
                      static_cast<uint32_t>(rng.Below(num_states)));
  }
  for (uint32_t s = 0; s < num_states; ++s) {
    if (rng.Below(3) == 0) nfa.SetAccepting(s);
  }
  return nfa;
}

// Regression test for cross-thread parent resolution: under a 4-worker
// batch in full trace mode, every recorded span's parent must be a span
// recorded by the SAME thread, properly nested around it.
TEST(ObsConcurrencyTest, BatchWorkerSpansParentWithinTheirOwnThread) {
  constexpr int kJobs = 256;
  std::vector<Nfa> automata;
  Rng rng(23);
  for (int i = 0; i < 2 * kJobs; ++i) automata.push_back(RandomNfa(rng));
  std::vector<NfaContainmentJob> jobs;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back({&automata[2 * i], &automata[2 * i + 1]});
  }

  obs::SetTraceMode(obs::TraceMode::kFull);
  ContainmentBatchOptions options;
  options.jobs = 4;
  std::vector<LanguageContainmentResult> results =
      CheckContainmentBatch(jobs, options);
  ASSERT_EQ(results.size(), jobs.size());

  // Collect before disabling: mode switches clear the recorded session.
  std::vector<obs::SpanRecord> records = obs::CollectSpanRecords();
  obs::SetTraceMode(obs::TraceMode::kDisabled);
  ASSERT_FALSE(records.empty());
  std::set<uint32_t> tids;
  for (size_t i = 0; i < records.size(); ++i) {
    const obs::SpanRecord& r = records[i];
    tids.insert(r.tid);
    if (r.parent < 0) {
      EXPECT_EQ(r.depth, 0u) << "span " << i;
      continue;
    }
    ASSERT_LT(static_cast<size_t>(r.parent), records.size());
    const obs::SpanRecord& parent = records[static_cast<size_t>(r.parent)];
    EXPECT_EQ(parent.tid, r.tid) << "span " << i << " (" << r.name
                                 << ") parented across threads";
    EXPECT_EQ(r.depth, parent.depth + 1) << "span " << i;
    EXPECT_GE(r.start_ns, parent.start_ns) << "span " << i;
    EXPECT_LE(r.start_ns + r.duration_ns,
              parent.start_ns + parent.duration_ns)
        << "span " << i;
  }
  // 256 jobs across 4 workers: more than one worker lane must appear.
  EXPECT_GE(tids.size(), 2u);
}

TEST(ObsConcurrencyTest, BatchQueueDepthGaugeDrainsToZero) {
  constexpr int kJobs = 64;
  std::vector<Nfa> automata;
  Rng rng(7);
  for (int i = 0; i < 2 * kJobs; ++i) automata.push_back(RandomNfa(rng));
  std::vector<NfaContainmentJob> jobs;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back({&automata[2 * i], &automata[2 * i + 1]});
  }

  obs::Gauge& depth = obs::BatchCounters::Get().queue_depth;
  depth.Reset();
  ContainmentBatchOptions options;
  options.jobs = 4;
  CheckContainmentBatch(jobs, options);
  EXPECT_EQ(depth.value(), 0);
  EXPECT_EQ(depth.peak(), kJobs);  // the whole batch is enqueued up front
}

}  // namespace
}  // namespace rq

// Tests for the parallel batch-containment engine (src/containment/batch.h):
// verdict equality with the serial checkers across worker counts and
// algorithms, deterministic result ordering, the process-default jobs knob,
// and concurrent batches sharing the enabled cache (the `tsan` ctest label
// runs this binary under ThreadSanitizer).
#include "containment/batch.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "automata/alphabet.h"
#include "cache/automata_cache.h"
#include "common/rng.h"
#include "obs/counters.h"
#include "regex/regex.h"

namespace rq {
namespace {

constexpr uint32_t kNumSymbols = 3;

Nfa RandomNfa(Rng& rng) {
  uint32_t num_states = 2 + static_cast<uint32_t>(rng.Below(4));
  Nfa nfa(kNumSymbols);
  for (uint32_t s = 0; s < num_states; ++s) nfa.AddState();
  nfa.AddInitial(static_cast<uint32_t>(rng.Below(num_states)));
  uint32_t num_transitions =
      num_states + static_cast<uint32_t>(rng.Below(num_states + 1));
  for (uint32_t t = 0; t < num_transitions; ++t) {
    nfa.AddTransition(static_cast<uint32_t>(rng.Below(num_states)),
                      static_cast<Symbol>(rng.Below(kNumSymbols)),
                      static_cast<uint32_t>(rng.Below(num_states)));
  }
  for (uint32_t s = 0; s < num_states; ++s) {
    if (rng.Below(3) == 0) nfa.SetAccepting(s);
  }
  return nfa;
}

struct NfaPool {
  std::vector<Nfa> automata;
  std::vector<NfaContainmentJob> jobs;
};

NfaPool MakePool(int num_jobs, uint64_t seed) {
  NfaPool pool;
  Rng rng(seed);
  for (int i = 0; i < 2 * num_jobs; ++i) {
    pool.automata.push_back(RandomNfa(rng));
  }
  for (int i = 0; i < num_jobs; ++i) {
    pool.jobs.push_back({&pool.automata[2 * i], &pool.automata[2 * i + 1]});
  }
  return pool;
}

TEST(BatchContainmentTest, ParallelVerdictsMatchSerialForEveryAlgo) {
  NfaPool pool = MakePool(32, 17);
  for (ContainmentAlgo algo : {ContainmentAlgo::kOnTheFly,
                               ContainmentAlgo::kAntichain,
                               ContainmentAlgo::kExplicit}) {
    ContainmentBatchOptions serial;
    serial.jobs = 1;
    serial.algo = algo;
    std::vector<LanguageContainmentResult> expected =
        CheckContainmentBatch(pool.jobs, serial);
    for (unsigned jobs : {2u, 4u, 8u}) {
      ContainmentBatchOptions parallel = serial;
      parallel.jobs = jobs;
      std::vector<LanguageContainmentResult> got =
          CheckContainmentBatch(pool.jobs, parallel);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].contained, expected[i].contained)
            << "algo " << static_cast<int>(algo) << " jobs " << jobs
            << " pair " << i;
        if (!got[i].contained) {
          // Counterexamples may differ between runs only for the antichain
          // engine (not length-minimal); they must still separate.
          EXPECT_TRUE(pool.jobs[i].a->Accepts(got[i].counterexample));
          EXPECT_FALSE(pool.jobs[i].b->Accepts(got[i].counterexample));
        }
      }
    }
  }
}

TEST(BatchContainmentTest, ResultsLandAtTheirJobIndex) {
  // Self-containment jobs interleaved with an impossible one: the verdict
  // pattern pins each result to its index even under parallel scheduling.
  Nfa accepts_a(kNumSymbols);
  accepts_a.AddState();
  accepts_a.AddState();
  accepts_a.AddInitial(0);
  accepts_a.SetAccepting(1);
  accepts_a.AddTransition(0, 0, 1);
  Nfa empty(kNumSymbols);
  empty.AddState();
  empty.AddInitial(0);

  std::vector<NfaContainmentJob> jobs;
  for (int i = 0; i < 64; ++i) {
    if (i % 3 == 2) {
      jobs.push_back({&accepts_a, &empty});  // refuted
    } else {
      jobs.push_back({&accepts_a, &accepts_a});  // contained
    }
  }
  ContainmentBatchOptions options;
  options.jobs = 8;
  std::vector<LanguageContainmentResult> results =
      CheckContainmentBatch(jobs, options);
  ASSERT_EQ(results.size(), jobs.size());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(results[i].contained, i % 3 != 2) << "index " << i;
  }
}

TEST(BatchContainmentTest, ZeroJobsUsesProcessDefault) {
  NfaPool pool = MakePool(8, 99);
  ContainmentBatchOptions explicit_serial;
  explicit_serial.jobs = 1;
  std::vector<LanguageContainmentResult> expected =
      CheckContainmentBatch(pool.jobs, explicit_serial);

  unsigned saved = DefaultContainmentJobs();
  SetDefaultContainmentJobs(4);
  std::vector<LanguageContainmentResult> got =
      CheckContainmentBatch(pool.jobs);  // options.jobs == 0
  SetDefaultContainmentJobs(saved);

  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].contained, expected[i].contained) << "pair " << i;
  }
}

TEST(BatchContainmentTest, BatchCountersTrackBatchesAndChecks) {
  NfaPool pool = MakePool(5, 3);
  obs::CounterDelta delta;
  ContainmentBatchOptions options;
  options.jobs = 2;
  CheckContainmentBatch(pool.jobs, options);
  EXPECT_EQ(delta.Delta("containment.batches"), 1u);
  EXPECT_EQ(delta.Delta("containment.batch_checks"), 5u);
  EXPECT_EQ(delta.Delta("containment.checks"), 5u);
}

TEST(BatchContainmentTest, PathBatchMatchesSerialPathChecks) {
  Alphabet alphabet;
  const char* pairs[][2] = {
      {"a b", "a (b | c)"},        // contained (one-way, lemma 1)
      {"a (b | c)", "a b"},        // refuted
      {"p", "p p- p"},             // 2RPQ, contained via fold pipeline
      {"p p- p", "p"},             // 2RPQ, refuted
      {"(a | b)*", "(a | b)* a?"}, // contained
  };
  std::vector<RegexPtr> owned;
  std::vector<PathContainmentJob> jobs;
  for (auto& pair : pairs) {
    for (const char* text : pair) {
      auto parsed = ParseRegex(text, &alphabet);
      ASSERT_TRUE(parsed.ok()) << text;
      owned.push_back(*parsed);
    }
    jobs.push_back({owned[owned.size() - 2].get(), owned.back().get()});
  }
  ContainmentBatchOptions serial;
  serial.jobs = 1;
  std::vector<PathContainmentResult> expected =
      CheckPathContainmentBatch(jobs, alphabet, serial);
  ContainmentBatchOptions parallel;
  parallel.jobs = 4;
  std::vector<PathContainmentResult> got =
      CheckPathContainmentBatch(jobs, alphabet, parallel);
  ASSERT_EQ(got.size(), 5u);
  bool expected_verdicts[] = {true, false, true, false, true};
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(expected[i].contained, expected_verdicts[i]) << "pair " << i;
    EXPECT_EQ(got[i].contained, expected[i].contained) << "pair " << i;
    EXPECT_EQ(got[i].used_fold_pipeline, expected[i].used_fold_pipeline);
  }
}

// Multiple batches running concurrently with the cache enabled: workers from
// different pools race on the same cache entries. ThreadSanitizer (ctest -L
// tsan) checks the synchronization; the verdict asserts check coherence.
TEST(BatchContainmentTest, ConcurrentBatchesShareTheCacheSafely) {
  cache::AutomataCache::Global().Clear();
  cache::AutomataCache::Global().SetEnabled(true);
  NfaPool pool = MakePool(16, 41);
  ContainmentBatchOptions serial;
  serial.jobs = 1;
  std::vector<LanguageContainmentResult> expected =
      CheckContainmentBatch(pool.jobs, serial);

  constexpr int kOuterThreads = 4;
  std::vector<int> failures(kOuterThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kOuterThreads; ++t) {
    threads.emplace_back([&, t] {
      ContainmentBatchOptions options;
      options.jobs = 3;
      for (int round = 0; round < 5; ++round) {
        std::vector<LanguageContainmentResult> got =
            CheckContainmentBatch(pool.jobs, options);
        for (size_t i = 0; i < got.size(); ++i) {
          if (got[i].contained != expected[i].contained) ++failures[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  cache::AutomataCache::Global().SetEnabled(false);
  cache::AutomataCache::Global().Clear();
  for (int t = 0; t < kOuterThreads; ++t) EXPECT_EQ(failures[t], 0);
}

}  // namespace
}  // namespace rq

#include "containment/containment.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/eval.h"
#include "graph/generators.h"
#include "rq/eval.h"

namespace rq {
namespace {

DatalogProgram Parse(const std::string& text) {
  auto p = ParseDatalog(text);
  RQ_CHECK(p.ok());
  return *p;
}

TEST(DatalogContainmentTest, GrqRouteOnTransitiveClosures) {
  // tc over e ⊑ tc over (e | f).
  DatalogProgram q1 = Parse(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    ?- tc.
  )");
  DatalogProgram q2 = Parse(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- f(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    tc(X, Z) :- tc(X, Y), f(Y, Z).
    ?- tc.
  )");
  auto result = CheckDatalogContainment(q1, q2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->certainty, Certainty::kProved);
  EXPECT_EQ(result->method, "grq:2rpq-fold");

  auto reverse = CheckDatalogContainment(q2, q1);
  ASSERT_TRUE(reverse.ok());
  EXPECT_EQ(reverse->certainty, Certainty::kRefuted);
}

TEST(DatalogContainmentTest, NonrecursiveExactFallback) {
  // Monadic-style program (not GRQ) with nonrecursive left side.
  DatalogProgram q1 = Parse(R"(
    q(X, Z) :- e(X, Y), e(Y, Z), f(X, X).
    ?- q.
  )");
  DatalogProgram q2 = Parse(R"(
    q(X, Z) :- e(X, Y), e(Y, Z).
    ?- q.
  )");
  auto result = CheckDatalogContainment(q1, q2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->certainty, Certainty::kProved);

  auto reverse = CheckDatalogContainment(q2, q1);
  ASSERT_TRUE(reverse.ok());
  EXPECT_EQ(reverse->certainty, Certainty::kRefuted);
  ASSERT_TRUE(reverse->counterexample.has_value());
  Relation a1 = EvalDatalogGoal(q2, *reverse->counterexample).value();
  Relation a2 = EvalDatalogGoal(q1, *reverse->counterexample).value();
  EXPECT_TRUE(a1.Contains(reverse->witness_tuple));
  EXPECT_FALSE(a2.Contains(reverse->witness_tuple));
}

TEST(DatalogContainmentTest, NonGrqRecursiveFallsBackToBounded) {
  // Monadic recursion on the left: not GRQ, bounded expansion kicks in.
  DatalogProgram q1 = Parse(R"(
    reach(X) :- e(X, Y), p(Y).
    reach(X) :- e(X, Y), reach(Y).
    ?- reach.
  )");
  DatalogProgram q2 = Parse(R"(
    reach(X) :- e(X, Y), any(Y, Y).
    reach(X) :- e(X, Y), reach(Y).
    ?- reach.
  )");
  auto result = CheckDatalogContainment(q1, q2);
  ASSERT_TRUE(result.ok());
  // p(Y) vs any(Y,Y): first expansion e(x,y),p(y) is not answered by q2.
  EXPECT_EQ(result->certainty, Certainty::kRefuted);
  EXPECT_EQ(result->method, "datalog-expansion-bounded");
}

TEST(DatalogContainmentTest, SelfContainmentOfNonGrqIsBoundedUnknown) {
  DatalogProgram q = Parse(R"(
    reach(X) :- e(X, Y), p(Y).
    reach(X) :- e(X, Y), reach(Y).
    ?- reach.
  )");
  auto result = CheckDatalogContainment(q, q);
  ASSERT_TRUE(result.ok());
  // Bounded expansion can never prove containment of a recursive non-GRQ
  // left side, but it must not refute a truth either.
  EXPECT_EQ(result->certainty, Certainty::kUnknownUpToBound);
  EXPECT_GT(result->expansions_checked, 0u);
}

TEST(DatalogContainmentTest, GrqSelfContainmentProved) {
  DatalogProgram q = Parse(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    ?- tc.
  )");
  auto result = CheckDatalogContainment(q, q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->certainty, Certainty::kProved);
}

TEST(DatalogContainmentTest, GoalArityMismatchIsError) {
  DatalogProgram q1 = Parse("a(X) :- e(X, X).\n?- a.");
  DatalogProgram q2 = Parse("b(X, Y) :- e(X, Y).\n?- b.");
  EXPECT_FALSE(CheckDatalogContainment(q1, q2).ok());
}

TEST(DatalogContainmentTest, HigherArityGrqContainment) {
  // GRQ with a ternary EDB predicate around a TC core.
  DatalogProgram q1 = Parse(R"(
    tc(X, Y) :- link(X, Y).
    tc(X, Z) :- tc(X, Y), link(Y, Z).
    q(X, Z) :- tc(X, Z), meta(X, Z, W).
    ?- q.
  )");
  DatalogProgram q2 = Parse(R"(
    tc(X, Y) :- link(X, Y).
    tc(X, Z) :- tc(X, Y), link(Y, Z).
    q(X, Z) :- tc(X, Z).
    ?- q.
  )");
  auto result = CheckDatalogContainment(q1, q2);
  ASSERT_TRUE(result.ok());
  // Dropping the meta atom weakens: q1 ⊑ q2. Not path-shaped (ternary
  // atom), so the verdict comes from expansions; with TC on the left it is
  // bounded-unknown at best — but never refuted.
  EXPECT_NE(result->certainty, Certainty::kRefuted);

  auto reverse = CheckDatalogContainment(q2, q1);
  ASSERT_TRUE(reverse.ok());
  EXPECT_EQ(reverse->certainty, Certainty::kRefuted);
}

TEST(DatalogContainmentTest, VerdictsConsistentWithRandomEvaluation) {
  DatalogProgram q1 = Parse(R"(
    p(X, Z) :- e(X, Y), e(Y, Z).
    p(X, Z) :- f(X, Z).
    ?- p.
  )");
  DatalogProgram q2 = Parse(R"(
    p(X, Z) :- e(X, Y), e(Y, Z).
    p(X, Z) :- f(X, Z).
    p(X, Z) :- e(X, Z), f(Z, Z).
    ?- p.
  )");
  auto result = CheckDatalogContainment(q1, q2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->certainty, Certainty::kProved);
  Rng rng(99);
  for (int round = 0; round < 6; ++round) {
    GraphDb graph = RandomGraph(8, 20, {"e", "f"}, rng.Next());
    Database db = GraphToDatabase(graph);
    Relation a1 = EvalDatalogGoal(q1, db).value();
    Relation a2 = EvalDatalogGoal(q2, db).value();
    for (const Tuple& t : a1.tuples()) EXPECT_TRUE(a2.Contains(t));
  }
}

}  // namespace
}  // namespace rq

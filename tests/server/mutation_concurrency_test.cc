// ThreadSanitizer tests for live graph mutations (docs/SERVING.md
// "Updates"): an eval admitted before a mutation completes must evaluate
// against its pinned pre-mutation snapshot while the writer publishes new
// epochs, and concurrent writers/readers across connections must be
// race-free. Runs in the `tsan-mutation` label so the tsan preset executes
// it under ThreadSanitizer.
#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/graph_db.h"
#include "gtest/gtest.h"
#include "obs/json.h"
#include "server/client.h"
#include "server/server.h"

namespace rq {
namespace server {
namespace {

constexpr char kHost[] = "127.0.0.1";

obs::JsonValue Req(const char* type, int64_t id) {
  obs::JsonValue request = obs::JsonValue::Object();
  request.Set("type", obs::JsonValue::String(type));
  request.Set("id", obs::JsonValue::Number(id));
  return request;
}

obs::JsonValue Eval(int64_t id, const char* query) {
  obs::JsonValue request = Req("eval", id);
  request.Set("class", obs::JsonValue::String("path"));
  request.Set("query", obs::JsonValue::String(query));
  return request;
}

obs::JsonValue AddEdge(int64_t id, const std::string& src,
                       const std::string& label, const std::string& dst) {
  obs::JsonValue request = Req("update", id);
  obs::JsonValue op = obs::JsonValue::Object();
  op.Set("op", obs::JsonValue::String("add_edge"));
  op.Set("src", obs::JsonValue::String(src));
  op.Set("label", obs::JsonValue::String(label));
  op.Set("dst", obs::JsonValue::String(dst));
  obs::JsonValue ops = obs::JsonValue::Array();
  ops.Append(std::move(op));
  request.Set("ops", std::move(ops));
  return request;
}

double Num(const obs::JsonValue& response, const char* key) {
  const obs::JsonValue* field = response.Find(key);
  return field == nullptr ? -1 : field->number_value();
}

// The ISSUE acceptance interleaving, made deterministic with one worker:
// pipeline sleep → eval E1 → update → eval E2 on a single connection. The
// reader admits (and version-pins) E1 before it applies the update, but
// the single worker is still busy with the sleep, so E1 EXECUTES after the
// mutation published — it must still answer from its pinned pre-mutation
// snapshot. E2, admitted after the update, sees the new graph.
TEST(MutationConcurrencyTest, EvalAdmittedBeforeMutationSeesOldSnapshot) {
  auto parsed = GraphDb::FromText("a knows b\nb knows c\nc knows a\n");
  ASSERT_TRUE(parsed.ok());
  GraphDb graph = std::move(parsed).value();
  ServerOptions options;
  options.graph = &graph;
  options.workers = 1;
  options.enable_sleep = true;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  obs::JsonValue sleep = Req("sleep", 1);
  sleep.Set("sleep_ms", obs::JsonValue::Number(int64_t{150}));
  ASSERT_TRUE(client->Send(sleep).ok());
  ASSERT_TRUE(client->Send(Eval(2, "knows")).ok());
  ASSERT_TRUE(client->Send(AddEdge(3, "c", "knows", "d")).ok());
  ASSERT_TRUE(client->Send(Eval(4, "knows")).ok());

  // Responses interleave across the pipelined requests; match on id.
  obs::JsonValue by_id[5];
  for (int i = 0; i < 4; ++i) {
    auto response = client->Receive();
    ASSERT_TRUE(response.ok());
    int64_t id = static_cast<int64_t>(Num(*response, "id"));
    ASSERT_GE(id, 1);
    ASSERT_LE(id, 4);
    by_id[id] = std::move(response).value();
  }

  EXPECT_TRUE(by_id[1].Find("ok")->bool_value());  // the sleep completed
  // The update published epoch 2 while E1 waited behind the sleep.
  ASSERT_TRUE(by_id[3].Find("ok")->bool_value());
  EXPECT_EQ(Num(by_id[3], "epoch"), 2);
  // E1: pinned at admission → pre-mutation answer and epoch.
  ASSERT_TRUE(by_id[2].Find("ok")->bool_value());
  EXPECT_EQ(Num(by_id[2], "count"), 3);
  EXPECT_EQ(Num(by_id[2], "epoch"), 1);
  // E2: admitted after the update → sees the write.
  ASSERT_TRUE(by_id[4].Find("ok")->bool_value());
  EXPECT_EQ(Num(by_id[4], "count"), 4);
  EXPECT_EQ(Num(by_id[4], "epoch"), 2);

  server.DrainAndWait();
}

// Writers on some connections hammer update batches (including the
// incremental closure maintenance for the seeded label) while readers on
// others run closure-shaped and plain evals. Every response must be OK,
// every answer internally consistent with the epoch that produced it.
TEST(MutationConcurrencyTest, ConcurrentWritersAndReadersStayConsistent) {
  auto parsed = GraphDb::FromText("a knows b\nb knows c\nc knows a\n");
  ASSERT_TRUE(parsed.ok());
  GraphDb graph = std::move(parsed).value();
  ServerOptions options;
  options.graph = &graph;
  options.workers = 4;
  options.max_queue_depth = 4096;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  // Seed the incremental path so writer batches maintain the closure.
  {
    auto seeder = BlockingClient::Connect(kHost, port);
    ASSERT_TRUE(seeder.ok());
    auto seeded = seeder->Call(Eval(0, "knows+"));
    ASSERT_TRUE(seeded.ok());
    ASSERT_TRUE(seeded->Find("ok")->bool_value());
  }

  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::jthread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto client = BlockingClient::Connect(kHost, port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRounds; ++i) {
        std::string src = "w" + std::to_string(w) + "n" + std::to_string(i);
        std::string dst = "w" + std::to_string(w) + "n" + std::to_string(i + 1);
        auto response = client->Call(AddEdge(i, src, "knows", dst));
        if (!response.ok() || !response->Find("ok")->bool_value()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      auto client = BlockingClient::Connect(kHost, port);
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const char* query = (r % 2 == 0) ? "knows+" : "knows knows";
      for (int i = 0; i < kRounds; ++i) {
        auto response = client->Call(Eval(i, query));
        if (!response.ok() || !response->Find("ok")->bool_value() ||
            Num(*response, "epoch") < 1) {
          failures.fetch_add(1);
        }
      }
    });
  }
  threads.clear();  // join
  EXPECT_EQ(failures.load(), 0);

  // All writer batches landed: one epoch each, plus the preload.
  EXPECT_EQ(server.graph_epoch(), 1u + kWriters * kRounds);
  auto client = BlockingClient::Connect(kHost, port);
  ASSERT_TRUE(client.ok());
  auto final_eval = client->Call(Eval(99, "knows"));
  ASSERT_TRUE(final_eval.ok());
  EXPECT_EQ(Num(*final_eval, "count"), 3 + kWriters * kRounds);

  server.DrainAndWait();
}

}  // namespace
}  // namespace server
}  // namespace rq

// Wire-protocol unit tests: framing round trips over a socketpair, strict
// request decoding, and the Status -> wire-error-code mapping
// (docs/SERVING.md).
#include "server/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "common/status.h"
#include "gtest/gtest.h"

namespace rq {
namespace server {
namespace {

class SocketPair {
 public:
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0); }
  ~SocketPair() {
    ::close(fds_[0]);
    ::close(fds_[1]);
  }
  int a() const { return fds_[0]; }
  int b() const { return fds_[1]; }

 private:
  int fds_[2] = {-1, -1};
};

TEST(FramingTest, RoundTripsPayloads) {
  SocketPair pair;
  for (const std::string& payload :
       {std::string(""), std::string("{}"), std::string(1000, 'x')}) {
    ASSERT_TRUE(WriteFrame(pair.a(), payload).ok());
    std::string got;
    bool clean_eof = true;
    ASSERT_TRUE(ReadFrame(pair.b(), &got, &clean_eof).ok());
    EXPECT_FALSE(clean_eof);
    EXPECT_EQ(got, payload);
  }
}

TEST(FramingTest, BackToBackFramesStayDelimited) {
  SocketPair pair;
  ASSERT_TRUE(WriteFrame(pair.a(), "first").ok());
  ASSERT_TRUE(WriteFrame(pair.a(), "second").ok());
  std::string got;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(pair.b(), &got, &clean_eof).ok());
  EXPECT_EQ(got, "first");
  ASSERT_TRUE(ReadFrame(pair.b(), &got, &clean_eof).ok());
  EXPECT_EQ(got, "second");
}

TEST(FramingTest, CleanPeerCloseIsNotAnError) {
  SocketPair pair;
  ::shutdown(pair.a(), SHUT_WR);
  std::string got = "stale";
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(pair.b(), &got, &clean_eof).ok());
  EXPECT_TRUE(clean_eof);
  EXPECT_TRUE(got.empty());
}

TEST(FramingTest, EofMidFrameIsAnError) {
  SocketPair pair;
  // A 100-byte header followed by only 3 bytes, then close.
  char header[4] = {0, 0, 0, 100};
  ASSERT_EQ(::send(pair.a(), header, 4, 0), 4);
  ASSERT_EQ(::send(pair.a(), "abc", 3, 0), 3);
  ::shutdown(pair.a(), SHUT_WR);
  std::string got;
  bool clean_eof = false;
  Status status = ReadFrame(pair.b(), &got, &clean_eof);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(clean_eof);
}

TEST(FramingTest, OversizedAnnouncementIsRejectedWithoutAllocating) {
  SocketPair pair;
  char header[4] = {0x7F, 0, 0, 0};  // ~2 GiB announced
  ASSERT_EQ(::send(pair.a(), header, 4, 0), 4);
  std::string got;
  bool clean_eof = false;
  Status status = ReadFrame(pair.b(), &got, &clean_eof);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ParseRequestTest, DecodesEveryField) {
  auto parsed = ParseRequest(
      R"({"type":"containment","id":7,"class":"rpq","q1":"a","q2":"a*",)"
      R"("query":"knows+","graph":"a knows b\n","timeout_ms":250,)"
      R"("memory_budget_mb":64,"max_tuples":10,"sleep_ms":5})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type, RequestType::kContainment);
  EXPECT_EQ(parsed->id.number_value(), 7);
  EXPECT_EQ(parsed->cls, "rpq");
  EXPECT_EQ(parsed->q1, "a");
  EXPECT_EQ(parsed->q2, "a*");
  EXPECT_EQ(parsed->query, "knows+");
  EXPECT_EQ(parsed->graph, "a knows b\n");
  EXPECT_EQ(parsed->timeout_ms, 250);
  EXPECT_EQ(parsed->memory_budget_mb, 64);
  EXPECT_EQ(parsed->max_tuples, 10);
  EXPECT_EQ(parsed->sleep_ms, 5);
}

TEST(ParseRequestTest, DefaultsWhenFieldsAbsent) {
  auto parsed = ParseRequest(R"({"type":"health"})");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type, RequestType::kHealth);
  EXPECT_TRUE(parsed->id.is_null());
  EXPECT_EQ(parsed->timeout_ms, 0);
  EXPECT_EQ(parsed->memory_budget_mb, 0);
}

TEST(ParseRequestTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("[1,2]").ok());            // not an object
  EXPECT_FALSE(ParseRequest(R"({"id":1})").ok());      // no type
  EXPECT_FALSE(ParseRequest(R"({"type":42})").ok());   // non-string type
  EXPECT_FALSE(ParseRequest(R"({"type":"nope"})").ok());
  EXPECT_FALSE(
      ParseRequest(R"({"type":"eval","timeout_ms":-5})").ok());
  EXPECT_FALSE(ParseRequest(R"({"type":"eval","q1":12})").ok());
}

TEST(ParseRequestTest, EveryTypeNameRoundTrips) {
  for (const char* name :
       {"containment", "equivalence", "eval", "stats", "health", "sleep"}) {
    auto parsed =
        ParseRequest(std::string(R"({"type":")") + name + R"("})");
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_STREQ(RequestTypeName(parsed->type), name);
  }
}

TEST(ErrorCodeTest, MapsStatusCodesToWireVocabulary) {
  EXPECT_STREQ(ErrorCodeForStatus(InvalidArgumentError("x")),
               "invalid_request");
  EXPECT_STREQ(ErrorCodeForStatus(NotFoundError("x")), "invalid_request");
  EXPECT_STREQ(ErrorCodeForStatus(UnimplementedError("x")), "unimplemented");
  EXPECT_STREQ(ErrorCodeForStatus(DeadlineExceededError("x")),
               "deadline_exceeded");
  EXPECT_STREQ(ErrorCodeForStatus(ResourceExhaustedError("x")),
               "resource_exhausted");
  EXPECT_STREQ(ErrorCodeForStatus(CancelledError("x")), "cancelled");
  EXPECT_STREQ(ErrorCodeForStatus(InternalError("x")), "internal");
}

TEST(ResponseTest, SkeletonsCarryIdAndOkFlag) {
  obs::JsonValue ok = OkResponse(obs::JsonValue::Number(int64_t{3}));
  EXPECT_EQ(ok.Find("id")->number_value(), 3);
  EXPECT_TRUE(ok.Find("ok")->bool_value());

  obs::JsonValue err =
      ErrorResponse(obs::JsonValue::Null(), "overloaded", "queue full");
  EXPECT_TRUE(err.Find("id")->is_null());
  EXPECT_FALSE(err.Find("ok")->bool_value());
  EXPECT_EQ(err.Find("error")->string_value(), "overloaded");
  EXPECT_EQ(err.Find("message")->string_value(), "queue full");
}

}  // namespace
}  // namespace server
}  // namespace rq

// End-to-end tests of the in-process query service (docs/SERVING.md):
// request dispatch across every class, admission control (bounded queue
// shedding), graceful drain with in-flight completion, and the HTTP
// /metrics surface on the same listener. All networking is loopback TCP on
// ephemeral ports, so the binary is hermetic.
#include "server/server.h"

#include <chrono>
#include <string>
#include <thread>

#include "graph/graph_db.h"
#include "gtest/gtest.h"
#include "obs/counters.h"
#include "obs/json.h"
#include "server/client.h"
#include "server/protocol.h"

namespace rq {
namespace server {
namespace {

constexpr char kHost[] = "127.0.0.1";

obs::JsonValue Req(const char* type, int64_t id) {
  obs::JsonValue request = obs::JsonValue::Object();
  request.Set("type", obs::JsonValue::String(type));
  request.Set("id", obs::JsonValue::Number(id));
  return request;
}

std::string ErrorCode(const obs::JsonValue& response) {
  const obs::JsonValue* error = response.Find("error");
  return error == nullptr ? "" : error->string_value();
}

// Polls the server until `predicate` holds (or ~2s elapse).
template <typename Predicate>
bool WaitFor(Predicate predicate) {
  for (int i = 0; i < 400; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

GraphDb TriangleGraph() {
  auto graph = GraphDb::FromText("a knows b\nb knows c\nc knows a\n");
  return std::move(graph).value();
}

TEST(QueryServerTest, ServesEveryRequestClass) {
  GraphDb graph = TriangleGraph();
  ServerOptions options;
  options.graph = &graph;
  options.workers = 2;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  // health: answered inline by the reader thread.
  auto health = client->Call(Req("health", 1));
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(health->Find("ok")->bool_value());
  EXPECT_EQ(health->Find("state")->string_value(), "serving");
  EXPECT_EQ(health->Find("id")->number_value(), 1);

  // containment, both verdicts.
  obs::JsonValue contained = Req("containment", 2);
  contained.Set("class", obs::JsonValue::String("rpq"));
  contained.Set("q1", obs::JsonValue::String("a a* b"));
  contained.Set("q2", obs::JsonValue::String("a* b"));
  auto verdict = client->Call(contained);
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(verdict->Find("ok")->bool_value());
  EXPECT_EQ(verdict->Find("verdict")->string_value(), "proved");

  obs::JsonValue refuted = Req("containment", 3);
  refuted.Set("class", obs::JsonValue::String("rpq"));
  refuted.Set("q1", obs::JsonValue::String("a*"));
  refuted.Set("q2", obs::JsonValue::String("a"));
  verdict = client->Call(refuted);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict->Find("verdict")->string_value(), "refuted");
  EXPECT_NE(verdict->Find("counterexample_word"), nullptr);

  // equivalence via the two-direction batch.
  obs::JsonValue equiv = Req("equivalence", 4);
  equiv.Set("class", obs::JsonValue::String("rpq"));
  equiv.Set("q1", obs::JsonValue::String("a|b"));
  equiv.Set("q2", obs::JsonValue::String("b|a"));
  verdict = client->Call(equiv);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict->Find("verdict")->string_value(), "equivalent");

  // eval against the preloaded graph.
  obs::JsonValue eval = Req("eval", 5);
  eval.Set("class", obs::JsonValue::String("path"));
  eval.Set("query", obs::JsonValue::String("knows knows"));
  auto answers = client->Call(eval);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->Find("ok")->bool_value());
  EXPECT_EQ(answers->Find("count")->number_value(), 3);

  // eval with an inline graph overriding the preloaded one.
  obs::JsonValue inline_eval = Req("eval", 6);
  inline_eval.Set("class", obs::JsonValue::String("path"));
  inline_eval.Set("query", obs::JsonValue::String("e"));
  inline_eval.Set("graph", obs::JsonValue::String("x e y\n"));
  answers = client->Call(inline_eval);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->Find("count")->number_value(), 1);

  // stats: the rq-obs/2 snapshot rides along.
  auto stats = client->Call(Req("stats", 7));
  ASSERT_TRUE(stats.ok());
  ASSERT_NE(stats->Find("stats"), nullptr);
  EXPECT_EQ(stats->Find("stats")->Find("schema")->string_value(), "rq-obs/2");

  server.DrainAndWait();
}

TEST(QueryServerTest, AnswerSetsAreCappedAtMaxTuples) {
  ServerOptions options;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  obs::JsonValue eval = Req("eval", 1);
  eval.Set("class", obs::JsonValue::String("path"));
  eval.Set("query", obs::JsonValue::String("e*"));
  eval.Set("graph",
           obs::JsonValue::String("a e b\nb e c\nc e d\nd e f\n"));
  eval.Set("max_tuples", obs::JsonValue::Number(int64_t{3}));
  auto answers = client->Call(eval);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->Find("tuples")->items().size(), 3u);
  EXPECT_TRUE(answers->Find("truncated")->bool_value());
  EXPECT_GT(answers->Find("count")->number_value(), 3);

  server.DrainAndWait();
}

TEST(QueryServerTest, MalformedFramesGetInvalidRequestResponses) {
  QueryServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  obs::JsonValue bogus = obs::JsonValue::Object();
  bogus.Set("type", obs::JsonValue::String("no-such-type"));
  auto response = client->Call(bogus);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->Find("ok")->bool_value());
  EXPECT_EQ(ErrorCode(*response), "invalid_request");

  // A parse error inside a query text also maps to invalid_request.
  obs::JsonValue bad_regex = Req("containment", 2);
  bad_regex.Set("class", obs::JsonValue::String("rpq"));
  bad_regex.Set("q1", obs::JsonValue::String("(("));
  bad_regex.Set("q2", obs::JsonValue::String("a"));
  response = client->Call(bad_regex);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ErrorCode(*response), "invalid_request");

  server.DrainAndWait();
}

TEST(QueryServerTest, PerRequestTimeoutTripsDeadline) {
  ServerOptions options;
  options.enable_sleep = true;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  obs::JsonValue sleep = Req("sleep", 1);
  sleep.Set("sleep_ms", obs::JsonValue::Number(int64_t{5000}));
  sleep.Set("timeout_ms", obs::JsonValue::Number(int64_t{30}));
  auto response = client->Call(sleep);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ErrorCode(*response), "deadline_exceeded");

  server.DrainAndWait();
}

TEST(QueryServerTest, ServerCapClipsRequestedTimeout) {
  ServerOptions options;
  options.enable_sleep = true;
  options.max_timeout_ms = 30;  // requests may not exceed this
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  obs::JsonValue sleep = Req("sleep", 1);
  sleep.Set("sleep_ms", obs::JsonValue::Number(int64_t{60000}));
  sleep.Set("timeout_ms", obs::JsonValue::Number(int64_t{600000}));
  auto response = client->Call(sleep);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ErrorCode(*response), "deadline_exceeded");

  server.DrainAndWait();
}

TEST(QueryServerTest, SleepRequestsAreRejectedUnlessEnabled) {
  QueryServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  obs::JsonValue sleep = Req("sleep", 1);
  sleep.Set("sleep_ms", obs::JsonValue::Number(int64_t{1}));
  auto response = client->Call(sleep);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ErrorCode(*response), "invalid_request");

  server.DrainAndWait();
}

TEST(QueryServerTest, BoundedQueueShedsInsteadOfBuffering) {
  obs::CounterDelta delta;
  ServerOptions options;
  options.workers = 1;
  options.max_queue_depth = 1;
  options.enable_sleep = true;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());

  auto busy = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(busy.ok());
  obs::JsonValue sleep = Req("sleep", 1);
  sleep.Set("sleep_ms", obs::JsonValue::Number(int64_t{2000}));
  ASSERT_TRUE(busy->Send(sleep).ok());
  // One request occupies the single worker, one more fills the queue.
  ASSERT_TRUE(WaitFor([&] { return server.inflight_requests() == 1; }));
  obs::JsonValue queued = Req("sleep", 2);
  queued.Set("sleep_ms", obs::JsonValue::Number(int64_t{1}));
  ASSERT_TRUE(busy->Send(queued).ok());
  ASSERT_TRUE(WaitFor([&] { return server.queue_depth() == 1; }));

  // The next request must be shed with `overloaded`, not buffered.
  auto extra = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(extra.ok());
  obs::JsonValue shed_me = Req("sleep", 3);
  shed_me.Set("sleep_ms", obs::JsonValue::Number(int64_t{1}));
  auto response = extra->Call(shed_me);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ErrorCode(*response), "overloaded");
  EXPECT_GE(delta.Delta("server.shed"), 1u);

  server.Stop();  // cancels the in-flight sleep
}

TEST(QueryServerTest, DrainCompletesInflightAndRefusesLateWork) {
  obs::CounterDelta delta;
  ServerOptions options;
  options.workers = 1;
  options.enable_sleep = true;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  auto client = BlockingClient::Connect(kHost, port);
  ASSERT_TRUE(client.ok());
  obs::JsonValue inflight = Req("sleep", 1);
  inflight.Set("sleep_ms", obs::JsonValue::Number(int64_t{200}));
  ASSERT_TRUE(client->Send(inflight).ok());
  ASSERT_TRUE(WaitFor([&] { return server.inflight_requests() == 1; }));

  server.BeginDrain();
  EXPECT_TRUE(server.draining());

  // A late frame on the existing connection is answered with `draining`.
  ASSERT_TRUE(client->Send(Req("containment", 2)).ok());
  auto late = client->Receive();
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late->Find("id")->number_value(), 2);
  EXPECT_EQ(ErrorCode(*late), "draining");

  // Health still answers, reporting the drain.
  ASSERT_TRUE(client->Send(Req("health", 3)).ok());
  auto health = client->Receive();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->Find("state")->string_value(), "draining");

  server.Wait();
  // The in-flight sleep completed during the drain and its response was
  // written before the connection tore down.
  auto response = client->Receive();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Find("id")->number_value(), 1);
  EXPECT_TRUE(response->Find("ok")->bool_value());
  EXPECT_EQ(response->Find("slept_ms")->number_value(), 200);
  EXPECT_GE(delta.Delta("server.drained"), 1u);

  // Fresh connections are refused once the drain began: the connect or
  // the first exchange fails, it never hangs.
  auto refused = BlockingClient::Connect(kHost, port);
  if (refused.ok()) {
    auto answer = refused->Call(Req("health", 4));
    EXPECT_FALSE(answer.ok());
  }
}

TEST(QueryServerTest, MetricsAndHealthzOverHttpOnTheSameListener) {
  obs::CounterDelta delta;
  QueryServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // Generate some framed traffic first so server.* families are non-zero.
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Call(Req("health", 1)).ok());

  auto body = HttpGet(kHost, server.port(), "/metrics");
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body->find("# TYPE rq_server_requests counter"),
            std::string::npos);
  EXPECT_NE(body->find("rq_server_active_connections"), std::string::npos);
  EXPECT_NE(body->find("rq_server_request_latency_ns_dist_count"),
            std::string::npos);
  EXPECT_GE(delta.Delta("server.metrics_scrapes"), 1u);

  auto healthz = HttpGet(kHost, server.port(), "/healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_EQ(*healthz, "ok\n");

  EXPECT_FALSE(HttpGet(kHost, server.port(), "/nope").ok());

  server.DrainAndWait();
}

TEST(QueryServerTest, RequestCountersBalance) {
  obs::CounterDelta delta;
  QueryServer server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(client->Call(Req("health", i)).ok());
  }
  client->Close();
  server.DrainAndWait();

  EXPECT_EQ(delta.Delta("server.requests"), 5u);
  EXPECT_EQ(delta.Delta("server.responses"), 5u);
  EXPECT_EQ(delta.Delta("server.connections"), 1u);
  EXPECT_EQ(delta.Delta("server.shed"), 0u);
}

}  // namespace
}  // namespace server
}  // namespace rq

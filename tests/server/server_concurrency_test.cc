// Concurrency stress tests for the query service, built to run under
// ThreadSanitizer (ctest label tsan-server): ≥64 simultaneous client
// connections with mixed request classes, load shedding under a saturated
// worker pool where every request still gets exactly one answer, and a
// drain racing live clients. The assertions are about completeness (every
// request answered once, ids echoed) — tsan supplies the race detection.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph_db.h"
#include "gtest/gtest.h"
#include "obs/counters.h"
#include "obs/json.h"
#include "server/client.h"
#include "server/server.h"

namespace rq {
namespace server {
namespace {

constexpr char kHost[] = "127.0.0.1";

obs::JsonValue Req(const char* type, int64_t id) {
  obs::JsonValue request = obs::JsonValue::Object();
  request.Set("type", obs::JsonValue::String(type));
  request.Set("id", obs::JsonValue::Number(id));
  return request;
}

std::string ErrorCode(const obs::JsonValue& response) {
  const obs::JsonValue* error = response.Find("error");
  return error == nullptr ? "" : error->string_value();
}

// One client's workload: a rotation over the request classes, each Call()
// strictly matched on its echoed id.
void MixedWorkload(uint16_t port, int64_t client_index, int requests,
                   std::atomic<int>* answered, std::atomic<int>* failures) {
  auto client = BlockingClient::Connect(kHost, port);
  if (!client.ok()) {
    failures->fetch_add(requests);
    return;
  }
  for (int i = 0; i < requests; ++i) {
    int64_t id = client_index * 1000 + i;
    obs::JsonValue request;
    switch (i % 4) {
      case 0: {
        request = Req("containment", id);
        request.Set("class", obs::JsonValue::String("rpq"));
        request.Set("q1", obs::JsonValue::String("a a* b"));
        request.Set("q2", obs::JsonValue::String("a* b"));
        break;
      }
      case 1: {
        request = Req("eval", id);
        request.Set("class", obs::JsonValue::String("path"));
        request.Set("query", obs::JsonValue::String("knows+"));
        break;
      }
      case 2: {
        request = Req("equivalence", id);
        request.Set("class", obs::JsonValue::String("rpq"));
        request.Set("q1", obs::JsonValue::String("a|b"));
        request.Set("q2", obs::JsonValue::String("b|a"));
        break;
      }
      default:
        request = Req("health", id);
        break;
    }
    auto response = client->Call(request);
    if (!response.ok() || response->Find("id") == nullptr ||
        response->Find("id")->number_value() != id) {
      failures->fetch_add(1);
      continue;
    }
    const obs::JsonValue* ok = response->Find("ok");
    if (ok == nullptr || !ok->bool_value()) {
      failures->fetch_add(1);
      continue;
    }
    answered->fetch_add(1);
  }
}

TEST(ServerConcurrencyTest, Sustains64ConcurrentConnections) {
  constexpr int kClients = 64;
  constexpr int kRequestsPerClient = 8;

  auto graph = GraphDb::FromText("a knows b\nb knows c\nc knows a\n");
  ASSERT_TRUE(graph.ok());
  ServerOptions options;
  options.graph = &*graph;
  options.workers = 4;
  options.max_connections = 2 * kClients;
  options.max_queue_depth = 4096;  // completeness run: shed nothing
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> answered{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int64_t c = 0; c < kClients; ++c) {
    clients.emplace_back(MixedWorkload, server.port(), c, kRequestsPerClient,
                         &answered, &failures);
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(answered.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(server.active_connections(), 0u);
  server.DrainAndWait();
}

TEST(ServerConcurrencyTest, ShedsUnderLoadButAnswersEveryRequest) {
  constexpr int kClients = 32;
  constexpr int kRequestsPerClient = 4;

  obs::CounterDelta delta;
  ServerOptions options;
  options.workers = 1;
  options.max_queue_depth = 2;  // force shedding under this fan-in
  options.enable_sleep = true;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> served{0};
  std::atomic<int> shed{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int64_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = BlockingClient::Connect(kHost, server.port());
      if (!client.ok()) {
        failures.fetch_add(kRequestsPerClient);
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        int64_t id = c * 1000 + i;
        obs::JsonValue request = Req("sleep", id);
        request.Set("sleep_ms", obs::JsonValue::Number(int64_t{5}));
        auto response = client->Call(request);
        if (!response.ok() ||
            response->Find("id")->number_value() != id) {
          failures.fetch_add(1);
          continue;
        }
        if (response->Find("ok")->bool_value()) {
          served.fetch_add(1);
        } else if (ErrorCode(*response) == "overloaded") {
          shed.fetch_add(1);
        } else {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Load shedding is not allowed to lose requests: every one of them came
  // back as either a result or an `overloaded` rejection.
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(served.load() + shed.load(), kClients * kRequestsPerClient);
  EXPECT_GT(served.load(), 0);
  // With 32 clients against one worker and a queue of 2, some shedding
  // must have happened — that is the whole point of admission control.
  EXPECT_GT(shed.load(), 0);
  EXPECT_EQ(delta.Delta("server.shed"), static_cast<uint64_t>(shed.load()));
  server.DrainAndWait();
}

TEST(ServerConcurrencyTest, DrainRacesLiveClients) {
  constexpr int kClients = 16;

  ServerOptions options;
  options.workers = 2;
  options.enable_sleep = true;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.port();

  std::atomic<int> clean{0};      // ok / draining / overloaded responses
  std::atomic<int> torn_down{0};  // connection errors once drain completes
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int64_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = BlockingClient::Connect(kHost, port);
      if (!client.ok()) {
        torn_down.fetch_add(1);
        return;
      }
      for (int64_t i = 0; !stop.load(); ++i) {
        obs::JsonValue request = Req("sleep", c * 100000 + i);
        request.Set("sleep_ms", obs::JsonValue::Number(int64_t{2}));
        auto response = client->Call(request);
        if (!response.ok()) {
          // Drain closed the connection under us — a clean outcome, but
          // retrying is pointless.
          torn_down.fetch_add(1);
          return;
        }
        std::string code = ErrorCode(*response);
        if (response->Find("ok")->bool_value() || code == "draining" ||
            code == "overloaded") {
          clean.fetch_add(1);
        } else {
          ADD_FAILURE() << "unexpected response: " << response->Dump();
          return;
        }
      }
    });
  }

  // Let the fleet get some traffic through, then drain mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.BeginDrain();
  server.Wait();
  stop.store(true);
  for (std::thread& t : clients) t.join();

  EXPECT_GT(clean.load(), 0);
  EXPECT_EQ(server.active_connections(), 0u);
  EXPECT_EQ(server.queue_depth(), 0u);
  EXPECT_EQ(server.inflight_requests(), 0u);
}

}  // namespace
}  // namespace server
}  // namespace rq

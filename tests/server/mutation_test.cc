// End-to-end tests of live graph mutations (docs/SERVING.md "Updates"):
// the `update` request verb, epoch-versioned snapshots, read-your-writes
// pipelining, epoch-keyed eval-cache invalidation, and the incremental
// per-label closure path with its budget-capped fallback. All networking
// is loopback TCP on ephemeral ports.
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_db.h"
#include "gtest/gtest.h"
#include "obs/counters.h"
#include "obs/json.h"
#include "relational/relation.h"
#include "server/client.h"
#include "server/graph_store.h"
#include "server/server.h"

namespace rq {
namespace server {
namespace {

constexpr char kHost[] = "127.0.0.1";

obs::JsonValue Req(const char* type, int64_t id) {
  obs::JsonValue request = obs::JsonValue::Object();
  request.Set("type", obs::JsonValue::String(type));
  request.Set("id", obs::JsonValue::Number(id));
  return request;
}

obs::JsonValue Eval(int64_t id, const char* query) {
  obs::JsonValue request = Req("eval", id);
  request.Set("class", obs::JsonValue::String("path"));
  request.Set("query", obs::JsonValue::String(query));
  return request;
}

obs::JsonValue AddEdgeOp(const char* src, const char* label,
                         const char* dst) {
  obs::JsonValue op = obs::JsonValue::Object();
  op.Set("op", obs::JsonValue::String("add_edge"));
  op.Set("src", obs::JsonValue::String(src));
  op.Set("label", obs::JsonValue::String(label));
  op.Set("dst", obs::JsonValue::String(dst));
  return op;
}

obs::JsonValue AddNodeOp(const char* name) {
  obs::JsonValue op = obs::JsonValue::Object();
  op.Set("op", obs::JsonValue::String("add_node"));
  op.Set("name", obs::JsonValue::String(name));
  return op;
}

obs::JsonValue Update(int64_t id, std::vector<obs::JsonValue> ops) {
  obs::JsonValue request = Req("update", id);
  obs::JsonValue array = obs::JsonValue::Array();
  for (auto& op : ops) array.Append(std::move(op));
  request.Set("ops", std::move(array));
  return request;
}

std::string ErrorCode(const obs::JsonValue& response) {
  const obs::JsonValue* error = response.Find("error");
  return error == nullptr ? "" : error->string_value();
}

double Num(const obs::JsonValue& response, const char* key) {
  const obs::JsonValue* field = response.Find(key);
  return field == nullptr ? -1 : field->number_value();
}

GraphDb TriangleGraph() {
  auto graph = GraphDb::FromText("a knows b\nb knows c\nc knows a\n");
  return std::move(graph).value();
}

// --- GraphStore unit tests (no networking) -------------------------------

TEST(GraphStoreTest, LoadPublishesEpochOneAndAcquireIsStable) {
  GraphDb graph = TriangleGraph();
  GraphStore store;
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_FALSE(store.Acquire().has_graph());
  store.Load(graph);
  EXPECT_EQ(store.epoch(), 1u);

  GraphView pinned = store.Acquire();
  ASSERT_TRUE(pinned.has_graph());
  EXPECT_EQ(pinned.epoch, 1u);
  EXPECT_EQ(pinned.graph->num_edges(), 3u);

  // A batch publishes the next epoch; the pinned view is untouched.
  std::vector<UpdateOp> ops(1);
  ops[0].kind = UpdateOp::Kind::kAddEdge;
  ops[0].src = "c";
  ops[0].label = "knows";
  ops[0].dst = "d";
  auto applied = store.Apply(ops);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->epoch, 2u);
  EXPECT_EQ(applied->edges_added, 1u);
  EXPECT_EQ(store.epoch(), 2u);
  EXPECT_EQ(pinned.epoch, 1u);
  EXPECT_EQ(pinned.graph->num_edges(), 3u);
  EXPECT_EQ(store.Acquire().graph->num_edges(), 4u);
}

TEST(GraphStoreTest, EvalCacheKeyBindsEpoch) {
  EXPECT_NE(GraphStore::EvalCacheKey(1, "path", "knows+"),
            GraphStore::EvalCacheKey(2, "path", "knows+"));
  EXPECT_NE(GraphStore::EvalCacheKey(1, "path", "knows+"),
            GraphStore::EvalCacheKey(1, "rq", "knows+"));
  EXPECT_EQ(GraphStore::EvalCacheKey(7, "path", "knows+"),
            GraphStore::EvalCacheKey(7, "path", "knows+"));
}

TEST(GraphStoreTest, StaleSeedIsDropped) {
  GraphDb graph = TriangleGraph();
  GraphStore store;
  store.Load(graph);
  GraphView old_view = store.Acquire();

  std::vector<UpdateOp> ops(1);
  ops[0].kind = UpdateOp::Kind::kAddNode;
  ops[0].name = "z";
  ASSERT_TRUE(store.Apply(ops).ok());  // epoch moves to 2

  // A seed computed against epoch 1 arrives late: it must not land.
  Relation base(2);
  base.Insert({0, 1});
  Relation closure(2);
  closure.Insert({0, 1});
  store.SeedClosure(old_view, 0, std::move(base), std::move(closure));
  EXPECT_EQ(store.Acquire().Closure(0), nullptr);
}

TEST(GraphStoreTest, FreshSeedPublishesClosureAtSameEpoch) {
  GraphDb graph = TriangleGraph();
  GraphStore store;
  store.Load(graph);
  GraphView view = store.Acquire();

  Relation base(2);
  Relation closure(2);
  for (Value x = 0; x < 3; ++x) {
    base.Insert({x, (x + 1) % 3});
    for (Value y = 0; y < 3; ++y) closure.Insert({x, y});
  }
  store.SeedClosure(view, 0, std::move(base), std::move(closure));
  GraphView reseen = store.Acquire();
  EXPECT_EQ(reseen.epoch, 1u);
  ASSERT_NE(reseen.Closure(0), nullptr);
  EXPECT_EQ(reseen.Closure(0)->size(), 9u);
}

// --- End-to-end server tests ---------------------------------------------

TEST(MutationTest, UpdateBatchAddsNodesAndEdgesAndBumpsEpoch) {
  GraphDb graph = TriangleGraph();
  ServerOptions options;
  options.graph = &graph;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.graph_epoch(), 1u);

  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  auto response = client->Call(Update(
      1, {AddNodeOp("d"), AddEdgeOp("c", "knows", "d")}));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->Find("ok")->bool_value());
  EXPECT_EQ(Num(*response, "epoch"), 2);
  EXPECT_EQ(Num(*response, "nodes_added"), 1);
  EXPECT_EQ(Num(*response, "edges_added"), 1);
  EXPECT_EQ(server.graph_epoch(), 2u);

  // One epoch per batch, however many ops it carries.
  response = client->Call(Update(
      2, {AddEdgeOp("d", "knows", "e"), AddEdgeOp("e", "knows", "f")}));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(Num(*response, "epoch"), 3);
  EXPECT_EQ(Num(*response, "edges_added"), 2);

  server.DrainAndWait();
}

// The ISSUE acceptance path: an eval pipelined after add_edge on the same
// connection observes the new answer (frames are handled in arrival order;
// the update publishes before the eval is admitted).
TEST(MutationTest, PipelinedUpdateThenEvalReadsOwnWrite) {
  GraphDb graph = TriangleGraph();
  ServerOptions options;
  options.graph = &graph;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  auto before = client->Call(Eval(1, "knows"));
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(Num(*before, "count"), 3);
  EXPECT_EQ(Num(*before, "epoch"), 1);

  // Pipeline the mutation and the re-read without waiting in between.
  ASSERT_TRUE(client->Send(Update(2, {AddEdgeOp("c", "knows", "d")})).ok());
  ASSERT_TRUE(client->Send(Eval(3, "knows")).ok());

  auto updated = client->Receive();
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(Num(*updated, "id"), 2);
  EXPECT_TRUE(updated->Find("ok")->bool_value());

  auto after = client->Receive();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(Num(*after, "id"), 3);
  EXPECT_EQ(Num(*after, "count"), 4);
  EXPECT_EQ(Num(*after, "epoch"), 2);

  server.DrainAndWait();
}

// Regression (ISSUE 10 satellite 2): eval answers are cached keyed by
// graph epoch, so a mutation must flip a previously cached answer — under
// the old graph-content-free key the second read would have returned the
// stale cached set.
TEST(MutationTest, MutationFlipsPreviouslyCachedEvalAnswer) {
  GraphDb graph = TriangleGraph();
  ServerOptions options;
  options.graph = &graph;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  // Use an rq-class eval: it has no incremental fast path, so the second
  // same-epoch read must come from the eval cache.
  obs::JsonValue query = Req("eval", 1);
  query.Set("class", obs::JsonValue::String("rq"));
  query.Set("query",
            obs::JsonValue::String("exists[y](knows(x, y) & knows(y, z))"));

  auto first = client->Call(query);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Find("ok")->bool_value());
  EXPECT_EQ(Num(*first, "count"), 3);
  EXPECT_EQ(first->Find("cached"), nullptr);

  auto cached = client->Call(query);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(Num(*cached, "count"), 3);
  ASSERT_NE(cached->Find("cached"), nullptr);
  EXPECT_TRUE(cached->Find("cached")->bool_value());

  auto mutated = client->Call(Update(2, {AddEdgeOp("a", "knows", "d"),
                                         AddEdgeOp("d", "knows", "b")}));
  ASSERT_TRUE(mutated.ok());
  ASSERT_TRUE(mutated->Find("ok")->bool_value());

  // Same query text, new epoch: the stale entry is unreachable and the
  // recomputed answer reflects the mutation.
  // New 2-paths: a→d→b, d→b→c, c→a→d.
  auto flipped = client->Call(query);
  ASSERT_TRUE(flipped.ok());
  EXPECT_EQ(Num(*flipped, "count"), 6);
  EXPECT_EQ(Num(*flipped, "epoch"), 2);
  EXPECT_EQ(flipped->Find("cached"), nullptr);

  auto recached = client->Call(query);
  ASSERT_TRUE(recached.ok());
  EXPECT_EQ(Num(*recached, "count"), 6);
  ASSERT_NE(recached->Find("cached"), nullptr);

  server.DrainAndWait();
}

// The incremental maintenance path: the first closure-shaped (`a+`) eval
// seeds the per-label closure; update batches then maintain it from deltas
// (incr.pairs_added) and later evals are served from it directly.
TEST(MutationTest, ClosureShapedEvalsAreMaintainedIncrementally) {
  obs::CounterDelta delta;
  GraphDb graph = TriangleGraph();
  ServerOptions options;
  options.graph = &graph;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  // Triangle: knows+ connects every pair. Seeds the label.
  auto seeded = client->Call(Eval(1, "knows+"));
  ASSERT_TRUE(seeded.ok());
  EXPECT_EQ(Num(*seeded, "count"), 9);
  EXPECT_GE(delta.Delta("incr.seeds"), 1u);

  // The batch's inserts flow through IncrementalClosure::AddEdge.
  auto mutated = client->Call(Update(2, {AddEdgeOp("c", "knows", "d")}));
  ASSERT_TRUE(mutated.ok());
  ASSERT_TRUE(mutated->Find("ok")->bool_value());
  // preds*(c) ∪ {c} = {a,b,c} × {d}: three new closure pairs.
  EXPECT_EQ(Num(*mutated, "closure_pairs"), 3);
  EXPECT_GE(delta.Delta("incr.pairs_added"), 3u);

  // Served from the maintained closure, not a fresh product-BFS.
  auto incremental = client->Call(Eval(3, "knows+"));
  ASSERT_TRUE(incremental.ok());
  EXPECT_EQ(Num(*incremental, "count"), 12);
  EXPECT_EQ(Num(*incremental, "epoch"), 2);
  ASSERT_NE(incremental->Find("incremental"), nullptr);
  EXPECT_TRUE(incremental->Find("incremental")->bool_value());
  EXPECT_EQ(delta.Delta("incr.fallbacks"), 0u);

  server.DrainAndWait();
}

// A delta product over the configured budget demotes the label
// (incr.fallbacks) instead of stalling the writer; evals fall back to the
// full product-BFS and stay correct.
TEST(MutationTest, BlownDeltaBudgetFallsBackToFullEvaluation) {
  obs::CounterDelta delta;
  GraphDb graph = TriangleGraph();
  ServerOptions options;
  options.graph = &graph;
  options.incr_delta_budget = 1;  // any real delta product blows it
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  auto seeded = client->Call(Eval(1, "knows+"));
  ASSERT_TRUE(seeded.ok());
  EXPECT_EQ(Num(*seeded, "count"), 9);

  // {a,b,c} × {d} = 3 > 1: the label demotes, the batch still succeeds.
  auto mutated = client->Call(Update(2, {AddEdgeOp("c", "knows", "d")}));
  ASSERT_TRUE(mutated.ok());
  ASSERT_TRUE(mutated->Find("ok")->bool_value());
  EXPECT_EQ(Num(*mutated, "closure_pairs"), 0);
  EXPECT_GE(delta.Delta("incr.fallbacks"), 1u);

  // Fallback path: full recomputation, same (correct) answer set.
  auto fallback = client->Call(Eval(3, "knows+"));
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(Num(*fallback, "count"), 12);
  EXPECT_EQ(fallback->Find("incremental"), nullptr);

  server.DrainAndWait();
}

TEST(MutationTest, UpdatesBuildAGraphFromNothing) {
  QueryServer server(ServerOptions{});  // no preloaded graph
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  auto missing = client->Call(Eval(1, "e"));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(ErrorCode(*missing), "invalid_request");

  auto created = client->Call(Update(2, {AddEdgeOp("x", "e", "y")}));
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(created->Find("ok")->bool_value());
  EXPECT_EQ(Num(*created, "epoch"), 1);

  auto answered = client->Call(Eval(3, "e"));
  ASSERT_TRUE(answered.ok());
  EXPECT_EQ(Num(*answered, "count"), 1);

  server.DrainAndWait();
}

TEST(MutationTest, ReadOnlyServerRejectsUpdates) {
  GraphDb graph = TriangleGraph();
  ServerOptions options;
  options.graph = &graph;
  options.enable_updates = false;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  auto response = client->Call(Update(1, {AddEdgeOp("c", "knows", "d")}));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ErrorCode(*response), "invalid_request");
  EXPECT_EQ(server.graph_epoch(), 1u);

  // Reads still serve.
  auto eval = client->Call(Eval(2, "knows"));
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(Num(*eval, "count"), 3);

  server.DrainAndWait();
}

TEST(MutationTest, DrainingServerRejectsUpdates) {
  GraphDb graph = TriangleGraph();
  ServerOptions options;
  options.graph = &graph;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Call(Req("health", 1)).ok());

  server.BeginDrain();
  ASSERT_TRUE(client->Send(Update(2, {AddEdgeOp("c", "knows", "d")})).ok());
  auto response = client->Receive();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(ErrorCode(*response), "draining");
  EXPECT_EQ(server.graph_epoch(), 1u);
  server.Wait();
}

TEST(MutationTest, MalformedUpdateBatchesAreRejected) {
  GraphDb graph = TriangleGraph();
  ServerOptions options;
  options.graph = &graph;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());

  // Empty batch.
  auto empty = client->Call(Update(1, {}));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(ErrorCode(*empty), "invalid_request");

  // Unknown op kind.
  obs::JsonValue bogus = obs::JsonValue::Object();
  bogus.Set("op", obs::JsonValue::String("drop_table"));
  auto unknown = client->Call(Update(2, {std::move(bogus)}));
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(ErrorCode(*unknown), "invalid_request");

  // add_edge with a missing endpoint.
  obs::JsonValue incomplete = obs::JsonValue::Object();
  incomplete.Set("op", obs::JsonValue::String("add_edge"));
  incomplete.Set("src", obs::JsonValue::String("a"));
  auto partial = client->Call(Update(3, {std::move(incomplete)}));
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(ErrorCode(*partial), "invalid_request");

  // Nothing was applied by any of them.
  EXPECT_EQ(server.graph_epoch(), 1u);
  auto eval = client->Call(Eval(4, "knows"));
  ASSERT_TRUE(eval.ok());
  EXPECT_EQ(Num(*eval, "count"), 3);

  server.DrainAndWait();
}

TEST(MutationTest, MutationMetricsAppearInPrometheusExport) {
  GraphDb graph = TriangleGraph();
  ServerOptions options;
  options.graph = &graph;
  QueryServer server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = BlockingClient::Connect(kHost, server.port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Call(Eval(1, "knows+")).ok());
  ASSERT_TRUE(
      client->Call(Update(2, {AddEdgeOp("c", "knows", "d")})).ok());

  auto body = HttpGet(kHost, server.port(), "/metrics");
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body->find("rq_graph_epoch"), std::string::npos);
  EXPECT_NE(body->find("rq_graph_mutations"), std::string::npos);
  EXPECT_NE(body->find("rq_graph_rebuild_ns"), std::string::npos);
  EXPECT_NE(body->find("rq_incr_pairs_added"), std::string::npos);

  server.DrainAndWait();
}

}  // namespace
}  // namespace server
}  // namespace rq

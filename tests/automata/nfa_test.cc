#include "automata/nfa.h"

#include <gtest/gtest.h>

#include "automata/alphabet.h"

namespace rq {
namespace {

// Builds an NFA for (ab)* over a 2-label alphabet (forward symbols only).
Nfa AbStar() {
  Nfa nfa(4);
  uint32_t s0 = nfa.AddState();
  uint32_t s1 = nfa.AddState();
  nfa.AddInitial(s0);
  nfa.SetAccepting(s0);
  nfa.AddTransition(s0, ForwardSymbolOf(0), s1);
  nfa.AddTransition(s1, ForwardSymbolOf(1), s0);
  return nfa;
}

TEST(NfaTest, AcceptsBasicWords) {
  Nfa nfa = AbStar();
  Symbol a = ForwardSymbolOf(0);
  Symbol b = ForwardSymbolOf(1);
  EXPECT_TRUE(nfa.Accepts({}));
  EXPECT_TRUE(nfa.Accepts({a, b}));
  EXPECT_TRUE(nfa.Accepts({a, b, a, b}));
  EXPECT_FALSE(nfa.Accepts({a}));
  EXPECT_FALSE(nfa.Accepts({b, a}));
  EXPECT_FALSE(nfa.Accepts({a, a}));
}

TEST(NfaTest, EpsilonClosureFollowsChains) {
  Nfa nfa(2);
  uint32_t s0 = nfa.AddState();
  uint32_t s1 = nfa.AddState();
  uint32_t s2 = nfa.AddState();
  nfa.AddEpsilon(s0, s1);
  nfa.AddEpsilon(s1, s2);
  std::vector<uint32_t> closure = nfa.EpsilonClosure({s0});
  EXPECT_EQ(closure, (std::vector<uint32_t>{s0, s1, s2}));
}

TEST(NfaTest, WithoutEpsilonsPreservesLanguage) {
  // a then epsilon to accepting.
  Nfa nfa(2);
  uint32_t s0 = nfa.AddState();
  uint32_t s1 = nfa.AddState();
  uint32_t s2 = nfa.AddState();
  nfa.AddInitial(s0);
  nfa.AddTransition(s0, 0, s1);
  nfa.AddEpsilon(s1, s2);
  nfa.SetAccepting(s2);
  Nfa ef = nfa.WithoutEpsilons();
  EXPECT_FALSE(ef.HasEpsilons());
  EXPECT_TRUE(ef.Accepts({0}));
  EXPECT_FALSE(ef.Accepts({}));
  EXPECT_FALSE(ef.Accepts({1}));
}

TEST(NfaTest, IsEmptyLanguageFindsShortestWitness) {
  Nfa nfa = AbStar();
  std::vector<Symbol> witness{99};
  EXPECT_FALSE(nfa.IsEmptyLanguage(&witness));
  EXPECT_TRUE(witness.empty());  // epsilon is the shortest accepted word

  Nfa empty(2);
  uint32_t s0 = empty.AddState();
  uint32_t s1 = empty.AddState();
  empty.AddInitial(s0);
  empty.SetAccepting(s1);  // unreachable
  EXPECT_TRUE(empty.IsEmptyLanguage());
}

TEST(NfaTest, ShortestWitnessHasMinimalLength) {
  // Language: aab | b. Shortest is "b".
  Nfa nfa(2);
  uint32_t s0 = nfa.AddState();
  uint32_t s1 = nfa.AddState();
  uint32_t s2 = nfa.AddState();
  uint32_t acc = nfa.AddState();
  nfa.AddInitial(s0);
  nfa.SetAccepting(acc);
  nfa.AddTransition(s0, 0, s1);
  nfa.AddTransition(s1, 0, s2);
  nfa.AddTransition(s2, 1, acc);
  nfa.AddTransition(s0, 1, acc);
  std::vector<Symbol> witness;
  EXPECT_FALSE(nfa.IsEmptyLanguage(&witness));
  EXPECT_EQ(witness, (std::vector<Symbol>{1}));
}

TEST(NfaTest, ReversedAcceptsMirrorWords) {
  // Language: ab. Reverse: ba.
  Nfa nfa(2);
  uint32_t s0 = nfa.AddState();
  uint32_t s1 = nfa.AddState();
  uint32_t s2 = nfa.AddState();
  nfa.AddInitial(s0);
  nfa.SetAccepting(s2);
  nfa.AddTransition(s0, 0, s1);
  nfa.AddTransition(s1, 1, s2);
  Nfa rev = nfa.Reversed();
  EXPECT_TRUE(rev.Accepts({1, 0}));
  EXPECT_FALSE(rev.Accepts({0, 1}));
}

TEST(NfaTest, TrimmedDropsUselessStates) {
  Nfa nfa(2);
  uint32_t s0 = nfa.AddState();
  uint32_t s1 = nfa.AddState();
  uint32_t dead = nfa.AddState();      // reachable, cannot reach accept
  uint32_t orphan = nfa.AddState();    // unreachable
  nfa.AddInitial(s0);
  nfa.SetAccepting(s1);
  nfa.AddTransition(s0, 0, s1);
  nfa.AddTransition(s0, 1, dead);
  nfa.AddTransition(orphan, 0, s1);
  Nfa trimmed = nfa.Trimmed();
  EXPECT_EQ(trimmed.num_states(), 2u);
  EXPECT_TRUE(trimmed.Accepts({0}));
  EXPECT_FALSE(trimmed.Accepts({1}));
}

TEST(NfaTest, TrimmedEmptyLanguageYieldsOneStateAutomaton) {
  Nfa nfa(2);
  uint32_t s0 = nfa.AddState();
  nfa.AddInitial(s0);
  Nfa trimmed = nfa.Trimmed();
  EXPECT_EQ(trimmed.num_states(), 1u);
  EXPECT_TRUE(trimmed.IsEmptyLanguage());
}

TEST(AlphabetTest, InverseSymbolArithmetic) {
  Alphabet alphabet;
  uint32_t knows = alphabet.InternLabel("knows");
  Symbol fwd = ForwardSymbolOf(knows);
  Symbol inv = InverseSymbolOf(knows);
  EXPECT_EQ(InverseSymbol(fwd), inv);
  EXPECT_EQ(InverseSymbol(inv), fwd);
  EXPECT_FALSE(IsInverseSymbol(fwd));
  EXPECT_TRUE(IsInverseSymbol(inv));
  EXPECT_EQ(SymbolLabel(fwd), knows);
  EXPECT_EQ(SymbolLabel(inv), knows);
  EXPECT_EQ(alphabet.SymbolName(fwd), "knows");
  EXPECT_EQ(alphabet.SymbolName(inv), "knows-");
}

TEST(AlphabetTest, InternIsIdempotent) {
  Alphabet alphabet;
  EXPECT_EQ(alphabet.InternLabel("a"), alphabet.InternLabel("a"));
  EXPECT_NE(alphabet.InternLabel("a"), alphabet.InternLabel("b"));
  EXPECT_EQ(alphabet.num_labels(), 2u);
  EXPECT_EQ(alphabet.num_symbols(), 4u);
}

TEST(AlphabetTest, ParseSymbolHandlesInverseSuffix) {
  Alphabet alphabet;
  uint32_t a = alphabet.InternLabel("a");
  auto fwd = alphabet.ParseSymbol("a");
  ASSERT_TRUE(fwd.ok());
  EXPECT_EQ(*fwd, ForwardSymbolOf(a));
  auto inv = alphabet.ParseSymbol(" a- ");
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(*inv, InverseSymbolOf(a));
  EXPECT_FALSE(alphabet.ParseSymbol("missing").ok());
}

TEST(AlphabetTest, InverseWordReversesAndFlips) {
  Alphabet alphabet;
  Symbol a = alphabet.InternForward("a");
  Symbol b = alphabet.InternForward("b");
  std::vector<Symbol> word{a, b, InverseSymbol(a)};
  std::vector<Symbol> inv = InverseWord(word);
  EXPECT_EQ(inv,
            (std::vector<Symbol>{a, InverseSymbol(b), InverseSymbol(a)}));
  EXPECT_EQ(InverseWord(inv), word);
}

}  // namespace
}  // namespace rq

#include "automata/containment.h"

#include <gtest/gtest.h>

#include "automata/ops.h"
#include "automata/words.h"
#include "common/rng.h"
#include "regex/regex.h"

namespace rq {
namespace {

class LanguageContainmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alphabet_.InternLabel("a");
    alphabet_.InternLabel("b");
  }

  Nfa FromRegex(const std::string& text) {
    auto re = ParseRegex(text, &alphabet_);
    RQ_CHECK(re.ok());
    return re.value()->ToNfa(4);
  }

  Alphabet alphabet_;
};

TEST_F(LanguageContainmentTest, BasicContainments) {
  EXPECT_TRUE(
      CheckLanguageContainment(FromRegex("a b"), FromRegex("a b* ")).contained);
  EXPECT_TRUE(
      CheckLanguageContainment(FromRegex("a+"), FromRegex("a*")).contained);
  EXPECT_FALSE(
      CheckLanguageContainment(FromRegex("a*"), FromRegex("a+")).contained);
  EXPECT_TRUE(CheckLanguageContainment(FromRegex("(a b)+"),
                                       FromRegex("a (b a)* b"))
                  .contained);
}

TEST_F(LanguageContainmentTest, CounterexampleIsValid) {
  Nfa q1 = FromRegex("a* b");
  Nfa q2 = FromRegex("a a* b");
  LanguageContainmentResult result = CheckLanguageContainment(q1, q2);
  ASSERT_FALSE(result.contained);
  EXPECT_TRUE(q1.Accepts(result.counterexample));
  EXPECT_FALSE(q2.Accepts(result.counterexample));
  // Shortest counterexample is "b".
  EXPECT_EQ(result.counterexample.size(), 1u);
}

TEST_F(LanguageContainmentTest, EmptyLanguageIsContainedInEverything) {
  Nfa empty = Regex::Empty()->ToNfa(4);
  EXPECT_TRUE(CheckLanguageContainment(empty, FromRegex("a")).contained);
  EXPECT_FALSE(CheckLanguageContainment(FromRegex("a"), empty).contained);
}

TEST_F(LanguageContainmentTest, EqualityViaBothDirections) {
  EXPECT_TRUE(LanguagesEqual(FromRegex("a (b a)*"), FromRegex("(a b)* a")));
  EXPECT_FALSE(LanguagesEqual(FromRegex("a*"), FromRegex("a+")));
}

TEST_F(LanguageContainmentTest, AgreesWithExplicitConstruction) {
  Rng rng(2026);
  for (int round = 0; round < 60; ++round) {
    RegexPtr r1 = RandomRegex(alphabet_, 3, /*allow_inverse=*/false, rng);
    RegexPtr r2 = RandomRegex(alphabet_, 3, /*allow_inverse=*/false, rng);
    Nfa n1 = r1->ToNfa(4);
    Nfa n2 = r2->ToNfa(4);
    LanguageContainmentResult on_the_fly = CheckLanguageContainment(n1, n2);
    LanguageContainmentResult explicit_route =
        CheckLanguageContainmentExplicit(n1, n2);
    EXPECT_EQ(on_the_fly.contained, explicit_route.contained)
        << r1->ToString(alphabet_) << " vs " << r2->ToString(alphabet_);
    if (!on_the_fly.contained) {
      EXPECT_TRUE(n1.Accepts(on_the_fly.counterexample));
      EXPECT_FALSE(n2.Accepts(on_the_fly.counterexample));
    }
  }
}

TEST_F(LanguageContainmentTest, ContainmentImpliesWordwiseContainment) {
  Rng rng(555);
  for (int round = 0; round < 40; ++round) {
    RegexPtr r1 = RandomRegex(alphabet_, 3, /*allow_inverse=*/false, rng);
    RegexPtr r2 = RandomRegex(alphabet_, 3, /*allow_inverse=*/false, rng);
    Nfa n1 = r1->ToNfa(4);
    Nfa n2 = r2->ToNfa(4);
    if (CheckLanguageContainment(n1, n2).contained) {
      for (const auto& w : EnumerateAcceptedWords(n1, 5, 80)) {
        EXPECT_TRUE(n2.Accepts(w))
            << r1->ToString(alphabet_) << " ⊑ " << r2->ToString(alphabet_);
      }
    }
  }
}

TEST_F(LanguageContainmentTest, SelfContainmentAlwaysHolds) {
  Rng rng(9);
  for (int round = 0; round < 30; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 4, /*allow_inverse=*/false, rng);
    Nfa nfa = re->ToNfa(4);
    EXPECT_TRUE(CheckLanguageContainment(nfa, nfa).contained)
        << re->ToString(alphabet_);
  }
}

TEST(WordsTest, EnumerateAcceptedWordsInLengthOrder) {
  Alphabet alphabet;
  alphabet.InternLabel("a");
  auto re = ParseRegex("a*", &alphabet);
  ASSERT_TRUE(re.ok());
  Nfa nfa = re.value()->ToNfa(2);
  auto words = EnumerateAcceptedWords(nfa, 3, 10);
  ASSERT_EQ(words.size(), 4u);  // eps, a, aa, aaa
  for (size_t i = 0; i + 1 < words.size(); ++i) {
    EXPECT_LE(words[i].size(), words[i + 1].size());
  }
}

TEST(WordsTest, FinitenessDetection) {
  Alphabet alphabet;
  alphabet.InternLabel("a");
  alphabet.InternLabel("b");
  auto finite = ParseRegex("a b | b a b", &alphabet);
  auto infinite = ParseRegex("a b*", &alphabet);
  ASSERT_TRUE(finite.ok() && infinite.ok());
  EXPECT_TRUE(IsFiniteLanguage(finite.value()->ToNfa(4)));
  EXPECT_FALSE(IsFiniteLanguage(infinite.value()->ToNfa(4)));
  EXPECT_EQ(CountWordsUpTo(finite.value()->ToNfa(4), 100), 2u);
  EXPECT_FALSE(CountWordsUpTo(infinite.value()->ToNfa(4), 100).has_value());
}

TEST(WordsTest, SampleAcceptedWordIsAccepted) {
  Alphabet alphabet;
  alphabet.InternLabel("a");
  alphabet.InternLabel("b");
  auto re = ParseRegex("a (a | b)* b", &alphabet);
  ASSERT_TRUE(re.ok());
  Nfa nfa = re.value()->ToNfa(4);
  Rng rng(11);
  int found = 0;
  for (int i = 0; i < 20; ++i) {
    auto word = SampleAcceptedWord(nfa, 8, 50, rng);
    if (word.has_value()) {
      ++found;
      EXPECT_TRUE(nfa.Accepts(*word));
    }
  }
  EXPECT_GT(found, 0);
}

}  // namespace
}  // namespace rq

#include "automata/ops.h"

#include <gtest/gtest.h>

#include "automata/words.h"
#include "common/rng.h"
#include "regex/regex.h"

namespace rq {
namespace {

Nfa FromRegex(const std::string& text, Alphabet* alphabet) {
  auto re = ParseRegex(text, alphabet);
  RQ_CHECK(re.ok());
  return re.value()->ToNfa(4);  // two labels a, b (plus unused inverses)
}

class OpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alphabet_.InternLabel("a");
    alphabet_.InternLabel("b");
  }
  Alphabet alphabet_;
};

TEST_F(OpsTest, DeterminizeMatchesNfaOnRandomWords) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 4, /*allow_inverse=*/false, rng);
    Nfa nfa = re->ToNfa(4);
    Dfa dfa = Determinize(nfa);
    for (int w = 0; w < 40; ++w) {
      std::vector<Symbol> word;
      size_t len = rng.Below(6);
      for (size_t i = 0; i < len; ++i) {
        word.push_back(ForwardSymbolOf(static_cast<uint32_t>(rng.Below(2))));
      }
      EXPECT_EQ(nfa.Accepts(word), dfa.Accepts(word))
          << re->ToString(alphabet_);
    }
  }
}

TEST_F(OpsTest, ComplementFlipsMembership) {
  Nfa nfa = FromRegex("a b*", &alphabet_);
  Dfa comp = ComplementToDfa(nfa);
  Symbol a = ForwardSymbolOf(0);
  Symbol b = ForwardSymbolOf(1);
  EXPECT_FALSE(comp.Accepts({a}));
  EXPECT_FALSE(comp.Accepts({a, b, b}));
  EXPECT_TRUE(comp.Accepts({}));
  EXPECT_TRUE(comp.Accepts({b}));
  EXPECT_TRUE(comp.Accepts({a, a}));
}

TEST_F(OpsTest, IntersectIsConjunction) {
  Nfa lhs = FromRegex("a* b*", &alphabet_);
  Nfa rhs = FromRegex("a b* | b a*", &alphabet_);
  Nfa both = Intersect(lhs, rhs);
  Symbol a = ForwardSymbolOf(0);
  Symbol b = ForwardSymbolOf(1);
  EXPECT_TRUE(both.Accepts({a, b, b}));
  EXPECT_TRUE(both.Accepts({b}));
  EXPECT_FALSE(both.Accepts({b, a}));  // in rhs but not lhs
  EXPECT_FALSE(both.Accepts({a, a})); // in lhs but not rhs
}

TEST_F(OpsTest, UnionIsDisjunction) {
  Nfa u = Union(FromRegex("a a", &alphabet_), FromRegex("b", &alphabet_));
  Symbol a = ForwardSymbolOf(0);
  Symbol b = ForwardSymbolOf(1);
  EXPECT_TRUE(u.Accepts({a, a}));
  EXPECT_TRUE(u.Accepts({b}));
  EXPECT_FALSE(u.Accepts({a}));
  EXPECT_FALSE(u.Accepts({a, b}));
}

TEST_F(OpsTest, ConcatComposesLanguages) {
  Nfa c = Concat(FromRegex("a+", &alphabet_), FromRegex("b", &alphabet_));
  Symbol a = ForwardSymbolOf(0);
  Symbol b = ForwardSymbolOf(1);
  EXPECT_TRUE(c.Accepts({a, b}));
  EXPECT_TRUE(c.Accepts({a, a, b}));
  EXPECT_FALSE(c.Accepts({b}));
  EXPECT_FALSE(c.Accepts({a}));
  EXPECT_FALSE(c.Accepts({a, b, b}));
}

TEST_F(OpsTest, MinimizeReducesAndPreserves) {
  // (a|b)(a|b) has a 3-state minimal DFA plus dead state = 4.
  Nfa nfa = FromRegex("(a | b)(a | b)", &alphabet_);
  Dfa dfa = Determinize(nfa);
  Dfa min = Minimize(dfa);
  EXPECT_LE(min.num_states(), dfa.num_states());
  Rng rng(3);
  for (int w = 0; w < 60; ++w) {
    std::vector<Symbol> word;
    size_t len = rng.Below(5);
    for (size_t i = 0; i < len; ++i) {
      word.push_back(ForwardSymbolOf(static_cast<uint32_t>(rng.Below(2))));
    }
    EXPECT_EQ(dfa.Accepts(word), min.Accepts(word));
  }
}

TEST_F(OpsTest, MinimizeIsCanonicalAcrossEquivalentRegexes) {
  // Two syntactically different, equivalent regexes.
  Nfa n1 = FromRegex("a (b a)*", &alphabet_);
  Nfa n2 = FromRegex("(a b)* a", &alphabet_);
  EXPECT_TRUE(LanguagesEqualByMinimization(n1, n2));
  Nfa n3 = FromRegex("a (b a)* b", &alphabet_);
  EXPECT_FALSE(LanguagesEqualByMinimization(n1, n3));
}

TEST_F(OpsTest, MinimizeRandomizedAgainstEnumeration) {
  Rng rng(99);
  for (int round = 0; round < 30; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 3, /*allow_inverse=*/false, rng);
    Nfa nfa = re->ToNfa(4);
    Dfa min = Minimize(Determinize(nfa));
    for (const auto& w : EnumerateAcceptedWords(nfa, 5, 60)) {
      EXPECT_TRUE(min.Accepts(w)) << re->ToString(alphabet_);
    }
  }
}

TEST_F(OpsTest, NfaFromDfaPreservesLanguage) {
  Nfa nfa = FromRegex("a b+ a?", &alphabet_);
  Nfa back = NfaFromDfa(Determinize(nfa));
  for (const auto& w : EnumerateAcceptedWords(nfa, 5, 50)) {
    EXPECT_TRUE(back.Accepts(w));
  }
  for (const auto& w : EnumerateAcceptedWords(back, 5, 50)) {
    EXPECT_TRUE(nfa.Accepts(w));
  }
}

}  // namespace
}  // namespace rq

#include <gtest/gtest.h>

#include "automata/containment.h"
#include "common/rng.h"
#include "regex/regex.h"

namespace rq {
namespace {

class AntichainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alphabet_.InternLabel("a");
    alphabet_.InternLabel("b");
    alphabet_.InternLabel("c");
  }
  Alphabet alphabet_;
};

TEST_F(AntichainTest, AgreesWithPlainSearchOnRandomPairs) {
  Rng rng(2468);
  uint64_t plain_total = 0;
  uint64_t antichain_total = 0;
  for (int round = 0; round < 80; ++round) {
    RegexPtr r1 = RandomRegex(alphabet_, 3, false, rng);
    RegexPtr r2 = RandomRegex(alphabet_, 3, false, rng);
    Nfa n1 = r1->ToNfa(6);
    Nfa n2 = r2->ToNfa(6);
    LanguageContainmentResult plain = CheckLanguageContainment(n1, n2);
    LanguageContainmentResult pruned =
        CheckLanguageContainmentAntichain(n1, n2);
    EXPECT_EQ(plain.contained, pruned.contained)
        << r1->ToString(alphabet_) << " vs " << r2->ToString(alphabet_);
    if (!pruned.contained) {
      // The (possibly non-shortest) counterexample must still separate.
      EXPECT_TRUE(n1.Accepts(pruned.counterexample));
      EXPECT_FALSE(n2.Accepts(pruned.counterexample));
    }
    plain_total += plain.explored_states;
    antichain_total += pruned.explored_states;
  }
  // The pruning must never explore more nodes overall.
  EXPECT_LE(antichain_total, plain_total);
}

TEST_F(AntichainTest, PrunesOnUnionHeavyRightSides) {
  // Right side with many overlapping disjuncts produces comparable
  // subsets; the antichain should strictly reduce exploration.
  auto r1 = ParseRegex("(a | b | c)* a (a | b | c)*", &alphabet_);
  auto r2 = ParseRegex(
      "(a | b | c)* (a | a b | a c | a a) (a | b | c)* | (b | c)*",
      &alphabet_);
  ASSERT_TRUE(r1.ok() && r2.ok());
  Nfa n1 = (*r1)->ToNfa(6);
  Nfa n2 = (*r2)->ToNfa(6);
  LanguageContainmentResult plain = CheckLanguageContainment(n1, n2);
  LanguageContainmentResult pruned =
      CheckLanguageContainmentAntichain(n1, n2);
  EXPECT_EQ(plain.contained, pruned.contained);
  EXPECT_LE(pruned.explored_states, plain.explored_states);
}

TEST_F(AntichainTest, ReflexiveContainmentHolds) {
  Rng rng(1357);
  for (int round = 0; round < 20; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 3, false, rng);
    Nfa nfa = re->ToNfa(6);
    EXPECT_TRUE(CheckLanguageContainmentAntichain(nfa, nfa).contained)
        << re->ToString(alphabet_);
  }
}

}  // namespace
}  // namespace rq

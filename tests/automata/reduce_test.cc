#include "automata/reduce.h"

#include <gtest/gtest.h>

#include "automata/containment.h"
#include "common/rng.h"
#include "regex/regex.h"

namespace rq {
namespace {

class ReduceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    alphabet_.InternLabel("a");
    alphabet_.InternLabel("b");
  }
  RegexPtr Re(const std::string& text) {
    auto re = ParseRegex(text, &alphabet_);
    RQ_CHECK(re.ok());
    return *re;
  }
  Alphabet alphabet_;
};

TEST_F(ReduceTest, MergesDuplicateBranches) {
  // a b | a b (structurally duplicated): Thompson yields parallel copies;
  // simulation quotient must merge them.
  Nfa nfa = Regex::Union({Re("a b"), Re("a b")})
                ->ToNfa(4)
                .WithoutEpsilons()
                .Trimmed();
  Nfa reduced = ReduceBySimulation(nfa);
  EXPECT_LT(reduced.num_states(), nfa.num_states());
  Symbol a = ForwardSymbolOf(0);
  Symbol b = ForwardSymbolOf(1);
  EXPECT_TRUE(reduced.Accepts({a, b}));
  EXPECT_FALSE(reduced.Accepts({a}));
}

TEST_F(ReduceTest, SimulationPreorderBasics) {
  // s0 -a-> s1(acc); s2 -a-> s3(acc), s2 -b-> s3: s0 ≼ s2 but not
  // conversely.
  Nfa nfa(4);
  uint32_t s0 = nfa.AddState();
  uint32_t s1 = nfa.AddState();
  uint32_t s2 = nfa.AddState();
  uint32_t s3 = nfa.AddState();
  nfa.AddInitial(s0);
  nfa.SetAccepting(s1);
  nfa.SetAccepting(s3);
  nfa.AddTransition(s0, ForwardSymbolOf(0), s1);
  nfa.AddTransition(s2, ForwardSymbolOf(0), s3);
  nfa.AddTransition(s2, ForwardSymbolOf(1), s3);
  auto sim = SimulationPreorder(nfa);
  EXPECT_TRUE(sim[s0][s2]);
  EXPECT_FALSE(sim[s2][s0]);
  EXPECT_TRUE(sim[s1][s3]);
  EXPECT_TRUE(sim[s3][s1]);
}

TEST_F(ReduceTest, PreservesLanguageOnRandomRegexes) {
  Rng rng(515);
  for (int round = 0; round < 60; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 4, true, rng);
    Nfa nfa = re->ToNfa(4).WithoutEpsilons().Trimmed();
    Nfa reduced = ReduceBySimulation(nfa);
    EXPECT_LE(reduced.num_states(), nfa.num_states());
    EXPECT_TRUE(LanguagesEqual(nfa, reduced)) << re->ToString(alphabet_);
  }
}

TEST_F(ReduceTest, IsIdempotentInSize) {
  Rng rng(626);
  for (int round = 0; round < 20; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 4, true, rng);
    Nfa once = ReduceBySimulation(re->ToNfa(4));
    Nfa twice = ReduceBySimulation(once);
    EXPECT_EQ(once.num_states(), twice.num_states())
        << re->ToString(alphabet_);
  }
}

TEST_F(ReduceTest, ReductionShrinksThompsonNfas) {
  // Thompson NFAs are verbose; measure aggregate shrinkage.
  Rng rng(737);
  size_t before = 0;
  size_t after = 0;
  for (int round = 0; round < 30; ++round) {
    RegexPtr re = RandomRegex(alphabet_, 4, false, rng);
    Nfa nfa = re->ToNfa(4).WithoutEpsilons().Trimmed();
    before += nfa.num_states();
    after += ReduceBySimulation(nfa).num_states();
  }
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace rq

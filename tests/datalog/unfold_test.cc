#include "datalog/unfold.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/eval.h"
#include "graph/generators.h"
#include "rq/eval.h"

namespace rq {
namespace {

DatalogProgram Parse(const std::string& text) {
  auto p = ParseDatalog(text);
  RQ_CHECK(p.ok());
  return *p;
}

TEST(UnfoldTest, NonrecursiveUnfoldsToUcq) {
  DatalogProgram p = Parse(R"(
    two(X, Z) :- e(X, Y), e(Y, Z).
    q(X, Z) :- two(X, Z).
    q(X, Z) :- f(X, Z).
    ?- q.
  )");
  auto ucq = UnfoldNonrecursive(p);
  ASSERT_TRUE(ucq.ok()) << ucq.status().ToString();
  EXPECT_EQ(ucq->disjuncts.size(), 2u);
}

TEST(UnfoldTest, RecursiveProgramRejected) {
  DatalogProgram p = Parse(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    ?- tc.
  )");
  auto ucq = UnfoldNonrecursive(p);
  EXPECT_FALSE(ucq.ok());
}

TEST(UnfoldTest, UnfoldingPreservesSemantics) {
  DatalogProgram p = Parse(R"(
    two(X, Z) :- e(X, Y), e(Y, Z).
    mix(X, Z) :- two(X, Y), f(Y, Z).
    mix(X, Z) :- f(X, Y), two(Y, Z).
    ?- mix.
  )");
  auto ucq = UnfoldNonrecursive(p);
  ASSERT_TRUE(ucq.ok());
  Rng rng(12);
  for (int round = 0; round < 10; ++round) {
    GraphDb graph = RandomGraph(8, 20, {"e", "f"}, rng.Next());
    Database db = GraphToDatabase(graph);
    Relation direct = EvalDatalogGoal(p, db).value();
    Relation via_ucq = EvalUcq(db, *ucq).value();
    EXPECT_EQ(direct.SortedTuples(), via_ucq.SortedTuples());
  }
}

TEST(UnfoldTest, ExponentialUnfoldingHitsLimits) {
  // Each level doubles the number of disjuncts: 2^10 > 100.
  std::string text;
  text += "l0(X, Y) :- e(X, Y).\nl0(X, Y) :- f(X, Y).\n";
  for (int i = 1; i <= 10; ++i) {
    std::string cur = "l" + std::to_string(i);
    std::string prev = "l" + std::to_string(i - 1);
    text += cur + "(X, Z) :- " + prev + "(X, Y), " + prev + "(Y, Z).\n";
  }
  text += "?- l10.\n";
  DatalogProgram p = Parse(text);
  UnfoldLimits limits;
  limits.max_disjuncts = 100;
  auto ucq = UnfoldNonrecursive(p, limits);
  EXPECT_FALSE(ucq.ok());
  EXPECT_EQ(ucq.status().code(), StatusCode::kResourceExhausted);
}

TEST(ExpandTest, TcExpansionsAreChains) {
  DatalogProgram p = Parse(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    ?- tc.
  )");
  ExpandLimits limits;
  limits.max_depth = 4;
  auto expanded = ExpandDatalog(p, limits);
  ASSERT_TRUE(expanded.ok());
  EXPECT_TRUE(expanded->depth_limited);  // deeper chains exist
  // Depth 4 yields chains of length 1..4.
  EXPECT_EQ(expanded->expansions.size(), 4u);
  for (const ConjunctiveQuery& cq : expanded->expansions) {
    // Each expansion is a simple e-chain: k atoms, k+1 distinct vars.
    for (const CqAtom& atom : cq.atoms) EXPECT_EQ(atom.predicate, "e");
  }
}

TEST(ExpandTest, ExpansionsAnswerTheirCanonicalDatabases) {
  DatalogProgram p = Parse(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    ?- tc.
  )");
  auto expanded = ExpandDatalog(p, {});
  ASSERT_TRUE(expanded.ok());
  ASSERT_FALSE(expanded->expansions.empty());
  for (const ConjunctiveQuery& cq : expanded->expansions) {
    Database canonical = cq.CanonicalDatabase();
    Relation answers = EvalDatalogGoal(p, canonical).value();
    EXPECT_TRUE(answers.Contains(cq.FrozenHead())) << cq.ToString();
  }
}

TEST(ExpandTest, EdbGoalYieldsIdentityExpansion) {
  DatalogProgram p = Parse(R"(
    unused(X, Y) :- e(X, Y).
    ?- e.
  )");
  auto expanded = ExpandDatalog(p, {});
  ASSERT_TRUE(expanded.ok());
  ASSERT_EQ(expanded->expansions.size(), 1u);
  EXPECT_EQ(expanded->expansions[0].atoms.size(), 1u);
  EXPECT_EQ(expanded->expansions[0].atoms[0].predicate, "e");
}

TEST(ExpandTest, RepeatedHeadVariablesUnify) {
  DatalogProgram p = Parse(R"(
    loop(X, X) :- e(X, X).
    q(A, B) :- loop(A, B).
    ?- q.
  )");
  auto expanded = ExpandDatalog(p, {});
  ASSERT_TRUE(expanded.ok());
  ASSERT_EQ(expanded->expansions.size(), 1u);
  const ConjunctiveQuery& cq = expanded->expansions[0];
  // The expansion must equate A and B: head vars identical.
  EXPECT_EQ(cq.head[0], cq.head[1]);
  ASSERT_EQ(cq.atoms.size(), 1u);
  EXPECT_EQ(cq.atoms[0].vars[0], cq.atoms[0].vars[1]);
}

TEST(ExpandTest, NonrecursiveExpansionMatchesUnfold) {
  DatalogProgram p = Parse(R"(
    a(X, Y) :- e(X, Y).
    a(X, Y) :- f(X, Y).
    b(X, Z) :- a(X, Y), a(Y, Z).
    ?- b.
  )");
  auto expanded = ExpandDatalog(p, {});
  auto unfolded = UnfoldNonrecursive(p);
  ASSERT_TRUE(expanded.ok() && unfolded.ok());
  EXPECT_FALSE(expanded->depth_limited);
  EXPECT_EQ(expanded->expansions.size(), unfolded->disjuncts.size());
  EXPECT_EQ(expanded->expansions.size(), 4u);  // 2 choices x 2 choices
}

}  // namespace
}  // namespace rq

#include "datalog/random.h"

#include <gtest/gtest.h>

#include "datalog/eval.h"
#include "datalog/unfold.h"
#include "graph/generators.h"
#include "rq/eval.h"
#include "rq/from_datalog.h"

namespace rq {
namespace {

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, GeneratedProgramsAreValid) {
  Rng rng(GetParam());
  RandomDatalogOptions options;
  for (int i = 0; i < 5; ++i) {
    DatalogProgram program = RandomDatalogProgram(options, rng);
    EXPECT_TRUE(program.Validate().ok());
    EXPECT_NE(program.goal(), kInvalidPred);
  }
}

TEST_P(RandomProgramTest, NaiveAndSemiNaiveAgreeOnRandomPrograms) {
  Rng rng(GetParam() * 3 + 1);
  RandomDatalogOptions options;
  DatalogProgram program = RandomDatalogProgram(options, rng);
  GraphDb graph = RandomGraph(8, 18, {"e0", "e1"}, GetParam() + 99);
  Database db = GraphToDatabase(graph);
  Relation naive =
      EvalDatalogGoal(program, db, DatalogEvalMode::kNaive).value();
  Relation semi =
      EvalDatalogGoal(program, db, DatalogEvalMode::kSemiNaive).value();
  EXPECT_EQ(naive.SortedTuples(), semi.SortedTuples())
      << program.ToString();
}

TEST_P(RandomProgramTest, ExpansionsAnswerCanonicalDatabases) {
  Rng rng(GetParam() * 7 + 2);
  RandomDatalogOptions options;
  options.num_idb = 2;
  DatalogProgram program = RandomDatalogProgram(options, rng);
  ExpandLimits limits;
  limits.max_depth = 3;
  limits.max_expansions = 50;
  auto expanded = ExpandDatalog(program, limits);
  ASSERT_TRUE(expanded.ok());
  for (const ConjunctiveQuery& cq : expanded->expansions) {
    Database canonical = cq.CanonicalDatabase();
    Relation answers = EvalDatalogGoal(program, canonical).value();
    EXPECT_TRUE(answers.Contains(cq.FrozenHead()))
        << program.ToString() << "\nexpansion: " << cq.ToString();
  }
}

TEST_P(RandomProgramTest, GrqGeneratorAlwaysPassesAnalysis) {
  Rng rng(GetParam() * 11 + 3);
  DatalogProgram program = RandomGrqProgram(1 + rng.Below(4), rng);
  GrqAnalysis analysis = AnalyzeGrq(program);
  EXPECT_TRUE(analysis.is_grq) << analysis.reason << "\n"
                               << program.ToString();
  // Extraction agrees with direct evaluation.
  auto query = DatalogToRq(program);
  ASSERT_TRUE(query.ok()) << program.ToString();
  GraphDb graph = RandomGraph(7, 16, {"base0", "base1"}, GetParam() + 5);
  Database db = GraphToDatabase(graph);
  Relation direct = EvalDatalogGoal(program, db).value();
  Relation via_rq = EvalRqQuery(db, *query).value();
  EXPECT_EQ(direct.SortedTuples(), via_rq.SortedTuples())
      << program.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace rq

#include "datalog/program.h"

#include <gtest/gtest.h>

namespace rq {
namespace {

DatalogProgram Parse(const std::string& text) {
  auto p = ParseDatalog(text);
  RQ_CHECK(p.ok());
  return *p;
}

constexpr char kTransitiveClosure[] = R"(
  tc(X, Y) :- edge(X, Y).
  tc(X, Z) :- tc(X, Y), edge(Y, Z).
  ?- tc.
)";

// The paper's §2.3 Monadic Datalog example: reachability INTO a set P.
constexpr char kMonadicReachability[] = R"(
  q(X) :- edge(X, Y), p(Y).
  q(X) :- edge(X, Y), q(Y).
  ?- q.
)";

TEST(DatalogParseTest, ParsesRulesAndGoal) {
  DatalogProgram p = Parse(kTransitiveClosure);
  EXPECT_EQ(p.rules().size(), 2u);
  EXPECT_EQ(p.PredicateName(p.goal()), "tc");
  EXPECT_EQ(p.PredicateArity(p.goal()), 2u);
}

TEST(DatalogParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseDatalog("tc(X, Y) :- edge(X, Y)").ok());   // no period
  EXPECT_FALSE(ParseDatalog("tc(X, Y).").ok());                // no body
  EXPECT_FALSE(ParseDatalog("tc(X, Y) :- edge(X).").ok() &&
               ParseDatalog("tc(X, Y) :- edge(X, Y), edge(X).").ok());
  EXPECT_FALSE(ParseDatalog("t(X, W) :- e(X, Y).").ok());      // unsafe head
  EXPECT_FALSE(ParseDatalog("?- nothing.").ok());              // unknown goal
}

TEST(DatalogParseTest, ArityConflictRejected) {
  EXPECT_FALSE(
      ParseDatalog("a(X) :- e(X, Y).\na(X, Y) :- e(X, Y).").ok());
}

TEST(DatalogClassifyTest, IdbEdbSplit) {
  DatalogProgram p = Parse(kTransitiveClosure);
  PredId tc = p.FindPredicate("tc").value();
  PredId edge = p.FindPredicate("edge").value();
  EXPECT_TRUE(p.IsIdb(tc));
  EXPECT_FALSE(p.IsIdb(edge));
}

TEST(DatalogClassifyTest, RecursionDetection) {
  EXPECT_TRUE(Parse(kTransitiveClosure).IsRecursive());
  EXPECT_FALSE(
      Parse("two(X, Z) :- e(X, Y), e(Y, Z).\n?- two.").IsRecursive());
}

// The paper's point in §2.3: the reachability program is monadic, but the
// transitive-closure program is not (its recursive predicate is binary).
TEST(DatalogClassifyTest, MonadicPerPaperSection23) {
  EXPECT_TRUE(Parse(kMonadicReachability).IsMonadic());
  EXPECT_FALSE(Parse(kTransitiveClosure).IsMonadic());
  // Nonrecursive programs are vacuously monadic.
  EXPECT_TRUE(Parse("two(X, Z) :- e(X, Y), e(Y, Z).\n?- two.").IsMonadic());
}

TEST(DatalogClassifyTest, LinearityDetection) {
  EXPECT_TRUE(Parse(kTransitiveClosure).IsLinear());
  DatalogProgram nonlinear = Parse(R"(
    tc(X, Y) :- edge(X, Y).
    tc(X, Z) :- tc(X, Y), tc(Y, Z).
    ?- tc.
  )");
  EXPECT_FALSE(nonlinear.IsLinear());
}

TEST(DatalogSccTest, TopologicalOrder) {
  DatalogProgram p = Parse(R"(
    a(X, Y) :- e(X, Y).
    b(X, Y) :- a(X, Y), f(X, X).
    c(X, Y) :- b(X, Y).
    c(X, Y) :- c(X, Z), b(Z, Y).
    ?- c.
  )");
  std::vector<DatalogProgram::Scc> sccs = p.DependencySccs();
  // Every predicate's dependencies appear in earlier SCCs.
  std::vector<int> position(p.num_predicates(), -1);
  for (size_t i = 0; i < sccs.size(); ++i) {
    for (PredId pred : sccs[i].predicates) {
      position[pred] = static_cast<int>(i);
    }
  }
  for (const DatalogRule& rule : p.rules()) {
    for (const DatalogAtom& atom : rule.body) {
      EXPECT_LE(position[atom.predicate], position[rule.head.predicate]);
    }
  }
  // Only c is recursive.
  PredId c = p.FindPredicate("c").value();
  std::vector<bool> recursive = p.RecursivePredicates();
  EXPECT_TRUE(recursive[c]);
  EXPECT_FALSE(recursive[p.FindPredicate("a").value()]);
  EXPECT_FALSE(recursive[p.FindPredicate("b").value()]);
}

TEST(DatalogSccTest, MutualRecursionFormsOneScc) {
  DatalogProgram p = Parse(R"(
    even(X, Y) :- base(X, Y).
    even(X, Z) :- odd(X, Y), e(Y, Z).
    odd(X, Z) :- even(X, Y), e(Y, Z).
    ?- even.
  )");
  std::vector<DatalogProgram::Scc> sccs = p.DependencySccs();
  bool found_pair = false;
  for (const auto& scc : sccs) {
    if (scc.predicates.size() == 2) {
      found_pair = true;
      EXPECT_TRUE(scc.recursive);
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(DatalogPrintTest, ToStringRoundTrips) {
  DatalogProgram p = Parse(kTransitiveClosure);
  auto reparsed = ParseDatalog(p.ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->rules().size(), 2u);
  EXPECT_EQ(reparsed->ToString(), p.ToString());
}

}  // namespace
}  // namespace rq

// Additional classification and robustness tests for the Datalog engine.
#include <gtest/gtest.h>

#include "datalog/eval.h"
#include "datalog/program.h"
#include "datalog/unfold.h"

namespace rq {
namespace {

DatalogProgram Parse(const std::string& text) {
  auto p = ParseDatalog(text);
  RQ_CHECK(p.ok());
  return *p;
}

TEST(DatalogEdgeTest, SelfLoopOnNonHeadPredicateIsFine) {
  // e appears only in bodies: EDB, no recursion.
  DatalogProgram p = Parse("q(X, Y) :- e(X, Y), e(Y, X).\n?- q.");
  EXPECT_FALSE(p.IsRecursive());
  EXPECT_EQ(p.EdbPredicates().size(), 1u);
  EXPECT_EQ(p.IdbPredicates().size(), 1u);
}

TEST(DatalogEdgeTest, IndirectRecursionThroughTwoLevels) {
  DatalogProgram p = Parse(R"(
    a(X, Y) :- b(X, Y).
    b(X, Y) :- c(X, Y).
    c(X, Y) :- a(X, Y), e(X, X).
    ?- a.
  )");
  EXPECT_TRUE(p.IsRecursive());
  std::vector<bool> recursive = p.RecursivePredicates();
  EXPECT_TRUE(recursive[p.FindPredicate("a").value()]);
  EXPECT_TRUE(recursive[p.FindPredicate("b").value()]);
  EXPECT_TRUE(recursive[p.FindPredicate("c").value()]);
  EXPECT_FALSE(recursive[p.FindPredicate("e").value()]);
}

TEST(DatalogEdgeTest, MonadicMixedWithBinaryNonrecursive) {
  // The recursive predicate is monadic; a binary nonrecursive goal on top
  // keeps the program monadic per §2.3 ("Monadic Datalog can have
  // non-monadic goals").
  DatalogProgram p = Parse(R"(
    reach(X) :- src(X, X).
    reach(X) :- e(X, Y), reach(Y).
    pair(X, Y) :- reach(X), reach(Y), e(X, Y).
    ?- pair.
  )");
  EXPECT_TRUE(p.IsRecursive());
  EXPECT_TRUE(p.IsMonadic());
  EXPECT_EQ(p.PredicateArity(p.goal()), 2u);
}

TEST(DatalogEdgeTest, UnaryRelationsEvaluate) {
  DatalogProgram p = Parse(R"(
    good(X) :- person(X), trusted(X).
    ?- good.
  )");
  Database db;
  db.GetOrCreate("person", 1).value()->Insert({1});
  db.GetOrCreate("person", 1).value()->Insert({2});
  db.GetOrCreate("trusted", 1).value()->Insert({2});
  db.GetOrCreate("trusted", 1).value()->Insert({3});
  Relation out = EvalDatalogGoal(p, db).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{2}}));
}

TEST(DatalogEdgeTest, TernaryPredicatesEvaluate) {
  DatalogProgram p = Parse(R"(
    joined(A, C) :- t(A, B, C), label(B).
    ?- joined.
  )");
  Database db;
  Relation* t = db.GetOrCreate("t", 3).value();
  t->Insert({1, 10, 2});
  t->Insert({3, 20, 4});
  db.GetOrCreate("label", 1).value()->Insert({10});
  Relation out = EvalDatalogGoal(p, db).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{1, 2}}));
}

TEST(DatalogEdgeTest, RepeatedVariableInHeadAndBody) {
  DatalogProgram p = Parse(R"(
    diag(X, X) :- e(X, X).
    ?- diag.
  )");
  Database db;
  Relation* e = db.GetOrCreate("e", 2).value();
  e->Insert({1, 1});
  e->Insert({1, 2});
  Relation out = EvalDatalogGoal(p, db).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{1, 1}}));
}

TEST(DatalogEdgeTest, DisconnectedRulesStillEvaluate) {
  // Cartesian product body (no shared variables).
  DatalogProgram p = Parse(R"(
    prod(X, Y) :- a(X), b(Y).
    ?- prod.
  )");
  Database db;
  db.GetOrCreate("a", 1).value()->Insert({1});
  db.GetOrCreate("a", 1).value()->Insert({2});
  db.GetOrCreate("b", 1).value()->Insert({7});
  Relation out = EvalDatalogGoal(p, db).value();
  EXPECT_EQ(out.size(), 2u);
}

TEST(DatalogEdgeTest, ExpansionOfMutualRecursionRespectsDepth) {
  DatalogProgram p = Parse(R"(
    even(X, Y) :- zero(X, Y).
    even(X, Z) :- odd(X, Y), e(Y, Z).
    odd(X, Z) :- even(X, Y), e(Y, Z).
    ?- even.
  )");
  ExpandLimits limits;
  limits.max_depth = 5;
  auto expanded = ExpandDatalog(p, limits);
  ASSERT_TRUE(expanded.ok());
  EXPECT_TRUE(expanded->depth_limited);
  // even-expansions have an even number of e-atoms: 0, 2, 4 within depth.
  for (const ConjunctiveQuery& cq : expanded->expansions) {
    size_t e_atoms = 0;
    for (const CqAtom& atom : cq.atoms) {
      if (atom.predicate == "e") ++e_atoms;
    }
    EXPECT_EQ(e_atoms % 2, 0u) << cq.ToString();
  }
}

TEST(DatalogEdgeTest, GoalOnEmptyProgramBody) {
  // A program whose goal has no rules and is EDB.
  DatalogProgram p = Parse("aux(X, Y) :- e(X, Y).\n?- e.");
  Database db;
  db.GetOrCreate("e", 2).value()->Insert({4, 5});
  Relation out = EvalDatalogGoal(p, db).value();
  EXPECT_EQ(out.SortedTuples(), (std::vector<Tuple>{{4, 5}}));
}

}  // namespace
}  // namespace rq

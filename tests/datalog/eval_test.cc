#include "datalog/eval.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "rq/eval.h"

namespace rq {
namespace {

DatalogProgram Parse(const std::string& text) {
  auto p = ParseDatalog(text);
  RQ_CHECK(p.ok());
  return *p;
}

constexpr char kTc[] = R"(
  tc(X, Y) :- edge(X, Y).
  tc(X, Z) :- tc(X, Y), edge(Y, Z).
  ?- tc.
)";

Database EdgeDb(const std::vector<std::pair<Value, Value>>& edges) {
  Database db;
  Relation* e = db.GetOrCreate("edge", 2).value();
  for (const auto& [x, y] : edges) e->Insert({x, y});
  return db;
}

TEST(DatalogEvalTest, TransitiveClosureOnChain) {
  Database db = EdgeDb({{1, 2}, {2, 3}, {3, 4}});
  Relation tc = EvalDatalogGoal(Parse(kTc), db).value();
  EXPECT_EQ(tc.size(), 6u);
  EXPECT_TRUE(tc.Contains({1, 4}));
  EXPECT_FALSE(tc.Contains({4, 1}));
}

TEST(DatalogEvalTest, TransitiveClosureOnCycle) {
  Database db = EdgeDb({{1, 2}, {2, 3}, {3, 1}});
  Relation tc = EvalDatalogGoal(Parse(kTc), db).value();
  EXPECT_EQ(tc.size(), 9u);  // complete on the cycle
}

TEST(DatalogEvalTest, NaiveAndSemiNaiveAgree) {
  Rng rng(5150);
  for (int round = 0; round < 10; ++round) {
    GraphDb graph = RandomGraph(12, 25, {"edge"}, rng.Next());
    Database db = GraphToDatabase(graph);
    DatalogProgram p = Parse(kTc);
    Relation naive =
        EvalDatalogGoal(p, db, DatalogEvalMode::kNaive).value();
    Relation semi =
        EvalDatalogGoal(p, db, DatalogEvalMode::kSemiNaive).value();
    EXPECT_EQ(naive.SortedTuples(), semi.SortedTuples());
  }
}

TEST(DatalogEvalTest, SemiNaiveDoesLessWork) {
  GraphDb graph = PathGraph(60, "edge");
  Database db = GraphToDatabase(graph);
  DatalogProgram p = Parse(kTc);
  DatalogEvalStats naive_stats, semi_stats;
  EvalDatalogGoal(p, db, DatalogEvalMode::kNaive, &naive_stats).value();
  EvalDatalogGoal(p, db, DatalogEvalMode::kSemiNaive, &semi_stats).value();
  // The classic gap: naive reconsiders every derived tuple every round.
  EXPECT_GT(naive_stats.tuples_considered,
            4 * semi_stats.tuples_considered);
}

TEST(DatalogEvalTest, SameGenerationProgram) {
  // sg(X, Y): X and Y are at the same depth below a common ancestor.
  DatalogProgram p = Parse(R"(
    sg(X, Y) :- flat(X, Y).
    sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
    ?- sg.
  )");
  Database db;
  Relation* up = db.GetOrCreate("up", 2).value();
  Relation* down = db.GetOrCreate("down", 2).value();
  Relation* flat = db.GetOrCreate("flat", 2).value();
  // Tree: 1 -> {2, 3}; 2 -> {4}; 3 -> {5}. up = child->parent.
  up->Insert({2, 1});
  up->Insert({3, 1});
  up->Insert({4, 2});
  up->Insert({5, 3});
  down->Insert({1, 2});
  down->Insert({1, 3});
  down->Insert({2, 4});
  down->Insert({3, 5});
  flat->Insert({1, 1});
  Relation sg = EvalDatalogGoal(p, db).value();
  EXPECT_TRUE(sg.Contains({2, 3}));  // siblings
  EXPECT_TRUE(sg.Contains({4, 5}));  // cousins
  EXPECT_FALSE(sg.Contains({2, 5}));  // different depths? no: 2 depth1,
                                      // 5 depth2 -> not same generation
}

TEST(DatalogEvalTest, MutualRecursionEvenOddDistance) {
  DatalogProgram p = Parse(R"(
    even(X, X) :- node(X, X).
    even(X, Z) :- odd(X, Y), edge(Y, Z).
    odd(X, Z) :- even(X, Y), edge(Y, Z).
    ?- odd.
  )");
  Database db;
  Relation* node = db.GetOrCreate("node", 2).value();
  Relation* edge = db.GetOrCreate("edge", 2).value();
  for (Value v = 0; v < 5; ++v) node->Insert({v, v});
  for (Value v = 0; v + 1 < 5; ++v) edge->Insert({v, v + 1});
  Relation odd = EvalDatalogGoal(p, db).value();
  EXPECT_TRUE(odd.Contains({0, 1}));
  EXPECT_TRUE(odd.Contains({0, 3}));
  EXPECT_FALSE(odd.Contains({0, 2}));
  EXPECT_FALSE(odd.Contains({0, 0}));
}

TEST(DatalogEvalTest, NonrecursiveProgramSinglePass) {
  DatalogProgram p = Parse(R"(
    two(X, Z) :- e(X, Y), e(Y, Z).
    three(X, W) :- two(X, Z), e(Z, W).
    ?- three.
  )");
  Database db = EdgeDb({});
  db.GetOrCreate("e", 2).value()->Insert({1, 2});
  db.FindMutable("e")->Insert({2, 3});
  db.FindMutable("e")->Insert({3, 4});
  Relation three = EvalDatalogGoal(p, db).value();
  EXPECT_EQ(three.SortedTuples(), (std::vector<Tuple>{{1, 4}}));
}

TEST(DatalogEvalTest, GoalRequired) {
  DatalogProgram p = Parse("tc(X, Y) :- edge(X, Y).");
  Database db = EdgeDb({{1, 2}});
  EXPECT_FALSE(EvalDatalogGoal(p, db).ok());
}

TEST(DatalogEvalTest, IdbPredicateInEdbIsRejected) {
  DatalogProgram p = Parse(kTc);
  Database db = EdgeDb({{1, 2}});
  db.GetOrCreate("tc", 2).value()->Insert({9, 9});
  EXPECT_FALSE(EvalDatalogGoal(p, db).ok());
}

TEST(DatalogEvalTest, EmptyEdbGivesEmptyIdb) {
  DatalogProgram p = Parse(kTc);
  Database db;
  Relation tc = EvalDatalogGoal(p, db).value();
  EXPECT_TRUE(tc.empty());
}

TEST(DatalogEvalTest, SemiNaiveMatchesDirectTransitiveClosure) {
  Rng rng(8080);
  for (int round = 0; round < 8; ++round) {
    GraphDb graph = RandomGraph(15, 30, {"edge"}, rng.Next());
    Database db = GraphToDatabase(graph);
    Relation via_datalog = EvalDatalogGoal(Parse(kTc), db).value();
    Relation via_closure =
        BinaryTransitiveClosure(*db.Find("edge"));
    EXPECT_EQ(via_datalog.SortedTuples(), via_closure.SortedTuples());
  }
}

}  // namespace
}  // namespace rq

// End-to-end scenario walking the paper's whole ladder on one dataset:
// evaluation at every level, the containment relationships between levels,
// certificates, optimization, and view-based answering. This is the
// "downstream user" flow the examples demonstrate, as assertions.
#include <gtest/gtest.h>

#include "containment/containment.h"
#include "crpq/crpq.h"
#include "datalog/eval.h"
#include "graph/generators.h"
#include "optimize/minimize.h"
#include "pathquery/containment.h"
#include "pathquery/path_query.h"
#include "pathquery/witness.h"
#include "rq/equivalence.h"
#include "rq/eval.h"
#include "rq/from_datalog.h"
#include "rq/parser.h"
#include "rq/to_datalog.h"
#include "views/rewriting.h"

namespace rq {
namespace {

class LadderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The data/team.graph org, inlined.
    auto parsed = GraphDb::FromText(R"(
      ana knows bo
      bo knows cy
      cy knows ana
      bo knows dee
      dee knows eve
      ana member core
      bo member core
      cy member infra
      dee member infra
      eve member apps
      core owns auth
      infra owns db
      infra owns cache
      apps owns web
      web calls auth
      web calls db
      auth calls db
      db calls cache
    )");
    RQ_CHECK(parsed.ok());
    graph_ = std::move(*parsed);
  }

  GraphDb graph_;
};

TEST_F(LadderTest, Level1RpqReachability) {
  auto q = ParsePathQuery("calls+", &graph_.alphabet()).value();
  NodeId web = graph_.FindNode("web").value();
  NodeId cache = graph_.FindNode("cache").value();
  EXPECT_TRUE(PathQueryAnswers(graph_, *q.regex, web, cache));
  // And the witness explains the chain.
  auto witness = FindWitnessSemipath(graph_, *q.regex, web, cache);
  ASSERT_TRUE(witness.has_value());
  EXPECT_GE(witness->size(), 2u);
}

TEST_F(LadderTest, Level2TwoWayTeammates) {
  auto q = ParsePathQuery("member member-", &graph_.alphabet()).value();
  NodeId ana = graph_.FindNode("ana").value();
  NodeId bo = graph_.FindNode("bo").value();
  NodeId cy = graph_.FindNode("cy").value();
  EXPECT_TRUE(PathQueryAnswers(graph_, *q.regex, ana, bo));
  EXPECT_FALSE(PathQueryAnswers(graph_, *q.regex, ana, cy));
}

TEST_F(LadderTest, Level3ConjunctionOfPaths) {
  auto q = ParseCrpq(
      "q(x, y) :- (knows)(x, y), (member)(x, t), (member)(y, t)",
      &graph_.alphabet());
  ASSERT_TRUE(q.ok());
  Relation in_team_knows = EvalCrpq(graph_, *q).value();
  NodeId ana = graph_.FindNode("ana").value();
  NodeId bo = graph_.FindNode("bo").value();
  NodeId dee = graph_.FindNode("dee").value();
  EXPECT_TRUE(in_team_knows.Contains({ana, bo}));
  EXPECT_FALSE(in_team_knows.Contains({bo, dee}));  // different teams
}

TEST_F(LadderTest, Level4RegularQueryClosure) {
  RqQuery chains =
      ParseRq(
          "q(x, y) := tc[x,y]( exists[t]( member(x, t) & member(y, t) & "
          "knows(x, y) ) )")
          .value();
  Relation result = EvalRqQuery(GraphToDatabase(graph_), chains).value();
  NodeId ana = graph_.FindNode("ana").value();
  NodeId bo = graph_.FindNode("bo").value();
  EXPECT_TRUE(result.Contains({ana, bo}));
  // The chain cannot jump teams.
  NodeId eve = graph_.FindNode("eve").value();
  EXPECT_FALSE(result.Contains({ana, eve}));
}

TEST_F(LadderTest, Level5DatalogAndGrqRoundTrip) {
  DatalogProgram impact = ParseDatalog(R"(
    impact(X, Y) :- calls(X, Y).
    impact(X, Z) :- impact(X, Y), calls(Y, Z).
    ?- impact.
  )")
                              .value();
  EXPECT_TRUE(AnalyzeGrq(impact).is_grq);
  Database db = GraphToDatabase(graph_);
  Relation direct = EvalDatalogGoal(impact, db).value();
  RqQuery extracted = DatalogToRq(impact).value();
  Relation via_rq = EvalRqQuery(db, extracted).value();
  EXPECT_EQ(direct.SortedTuples(), via_rq.SortedTuples());
  // Translate the RQ back to Datalog; still equivalent.
  DatalogProgram round = RqToDatalog(extracted).value();
  Relation via_round = EvalDatalogGoal(round, db).value();
  EXPECT_EQ(direct.SortedTuples(), via_round.SortedTuples());
}

TEST_F(LadderTest, ContainmentAcrossLevels) {
  // Each level's restriction is contained in its relaxation.
  // 2RPQ: teammates ⊑ "shares a team at distance ≤ 2".
  Alphabet sigma;
  auto direct = ParseRegex("member member-", &sigma).value();
  auto wide = ParseRegex("member member- (member member-)?", &sigma).value();
  EXPECT_TRUE(CheckPathQueryContainment(*direct, *wide, sigma).contained);
  EXPECT_FALSE(CheckPathQueryContainment(*wide, *direct, sigma).contained);

  // RQ with closures: guarded endorsement chains ⊑ knows-closure.
  auto verdict = CheckRqContainment(
                     ParseRq("q(x, y) := tc[x,y]( exists[t]( member(x, t) & "
                             "member(y, t) & knows(x, y) ) )")
                         .value(),
                     ParseRq("q(x, y) := tc[x,y](knows(x, y))").value())
                     .value();
  EXPECT_EQ(verdict.certainty, Certainty::kProved);
}

TEST_F(LadderTest, PolicyEquivalenceCheck) {
  // Two formulations of service impact: single-step base vs base ∪ 2-step.
  auto a = ParseRq("q(x, y) := tc[x,y](calls(x, y))").value();
  auto b = ParseRq(
               "q(x, y) := tc[x,y](calls(x, y) | "
               "exists[m](calls(x, m) & calls(m, y)))")
               .value();
  auto equivalence = CheckRqEquivalence(a, b).value();
  EXPECT_EQ(equivalence.verdict, EquivalenceVerdict::kEquivalent);
}

TEST_F(LadderTest, OptimizerShrinksRedundantPolicy) {
  auto ucq = ParseUcq(
      "q(x, y) :- calls(x, y)\n"
      "q(x, y) :- calls(x, y), owns(t, x)\n");
  ASSERT_TRUE(ucq.ok());
  auto pruned = PruneRedundantDisjuncts(*ucq).value();
  EXPECT_EQ(pruned.disjuncts.size(), 1u);
}

TEST_F(LadderTest, ViewBasedAnswering) {
  // Views: direct calls and 2-hop calls; query: calls-paths of length >= 1.
  std::vector<View> views;
  Alphabet sigma;
  views.push_back({"hop", ParseRegex("calls", &sigma).value()});
  RegexPtr query = ParseRegex("calls calls*", &sigma).value();
  auto rewriting = MaximalRewriting(*query, views, sigma).value();
  EXPECT_FALSE(rewriting.empty);
  EXPECT_TRUE(RewritingIsExact(rewriting, *query, views, sigma).value());
  Relation via_views =
      AnswerUsingViews(graph_, rewriting, views).value();
  Relation direct(2);
  for (const auto& [x, y] : EvalPathQuery(graph_, *query)) {
    direct.Insert({x, y});
  }
  EXPECT_EQ(via_views.SortedTuples(), direct.SortedTuples());
}

}  // namespace
}  // namespace rq

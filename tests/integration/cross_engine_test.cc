// Cross-engine consistency: the same query evaluated by independent
// implementations must agree. This is the library's main defense against
// subtle semantics bugs (semipath handling, folding, fixpoints).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crpq/crpq.h"
#include "datalog/eval.h"
#include "graph/generators.h"
#include "pathquery/containment.h"
#include "pathquery/path_query.h"
#include "pathquery/to_datalog.h"
#include "regex/regex.h"
#include "rq/eval.h"

namespace rq {
namespace {

// Nodes incident to at least one edge. The Datalog embedding of a path
// query quantifies over the active domain, while graph evaluation sees
// isolated nodes too; comparisons are restricted accordingly.
std::vector<bool> ActiveDomain(const GraphDb& graph) {
  std::vector<bool> active(graph.num_nodes(), false);
  for (const Edge& e : graph.edges()) {
    active[e.src] = true;
    active[e.dst] = true;
  }
  return active;
}

TEST(CrossEngineTest, PathQueryGraphBfsAgreesWithDatalogEmbedding) {
  Rng rng(1234);
  int compared = 0;
  for (int round = 0; round < 30; ++round) {
    GraphDb graph = RandomGraph(8, 16, {"a", "b"}, rng.Next());
    RegexPtr re = RandomRegex(graph.alphabet(), 3, /*allow_inverse=*/true,
                              rng);
    auto program = PathQueryToDatalog(*re, graph.alphabet());
    ASSERT_TRUE(program.ok()) << re->ToString(graph.alphabet());
    Database db = GraphToDatabase(graph);
    Relation via_datalog = EvalDatalogGoal(*program, db).value();

    std::vector<bool> active = ActiveDomain(graph);
    Relation via_bfs(2);
    for (const auto& [x, y] : EvalPathQuery(graph, *re)) {
      if (active[x] && active[y]) via_bfs.Insert({x, y});
    }
    EXPECT_EQ(via_bfs.SortedTuples(), via_datalog.SortedTuples())
        << re->ToString(graph.alphabet());
    ++compared;
  }
  EXPECT_EQ(compared, 30);
}

TEST(CrossEngineTest, SingleAtomCrpqAgreesWithPathQueryEval) {
  Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    GraphDb graph = RandomGraph(10, 22, {"a", "b", "c"}, rng.Next());
    RegexPtr re = RandomRegex(graph.alphabet(), 3, /*allow_inverse=*/true,
                              rng);
    Crpq query;
    query.num_vars = 2;
    query.head = {0, 1};
    query.atoms = {{re, 0, 1}};
    Relation via_crpq = EvalCrpq(graph, query).value();
    Relation via_path(2);
    for (const auto& [x, y] : EvalPathQuery(graph, *re)) {
      via_path.Insert({x, y});
    }
    EXPECT_EQ(via_crpq.SortedTuples(), via_path.SortedTuples());
  }
}

TEST(CrossEngineTest, ContainmentVerdictsMatchEvaluationOnRandomGraphs) {
  // For random 2RPQ pairs, a "contained" verdict must never be violated by
  // evaluation on random graphs; a "not contained" verdict must be
  // witnessed by its counterexample.
  Alphabet alphabet;
  alphabet.InternLabel("a");
  alphabet.InternLabel("b");
  Rng rng(31415);
  for (int round = 0; round < 25; ++round) {
    RegexPtr r1 = RandomRegex(alphabet, 2, /*allow_inverse=*/true, rng);
    RegexPtr r2 = RandomRegex(alphabet, 2, /*allow_inverse=*/true, rng);
    PathContainmentResult verdict =
        CheckPathQueryContainment(*r1, *r2, alphabet);
    if (verdict.contained) {
      for (int g = 0; g < 3; ++g) {
        GraphDb graph = RandomGraph(6, 12, {"a", "b"}, rng.Next());
        auto a1 = EvalPathQuery(graph, *r1);
        Relation a2(2);
        for (const auto& [x, y] : EvalPathQuery(graph, *r2)) {
          a2.Insert({x, y});
        }
        for (const auto& [x, y] : a1) {
          EXPECT_TRUE(a2.Contains({x, y}))
              << r1->ToString(alphabet) << " ⊑ " << r2->ToString(alphabet);
        }
      }
    } else {
      SemipathWitness witness =
          BuildSemipathWitness(alphabet, verdict.counterexample);
      EXPECT_TRUE(
          PathQueryAnswers(witness.db, *r1, witness.start, witness.end));
      EXPECT_FALSE(
          PathQueryAnswers(witness.db, *r2, witness.start, witness.end));
    }
  }
}

TEST(CrossEngineTest, DatalogEmbeddingOfPathQueryIsLinearDatalog) {
  Alphabet alphabet;
  alphabet.InternLabel("a");
  alphabet.InternLabel("b");
  Rng rng(11);
  for (int round = 0; round < 10; ++round) {
    RegexPtr re = RandomRegex(alphabet, 3, /*allow_inverse=*/true, rng);
    auto program = PathQueryToDatalog(*re, alphabet);
    ASSERT_TRUE(program.ok());
    EXPECT_TRUE(program->IsLinear()) << re->ToString(alphabet);
  }
}

TEST(CrossEngineTest, SocialNetworkQueriesAcrossEngines) {
  GraphDb net = SocialNetwork(60, 6, 40, 2026);
  Database db = GraphToDatabase(net);
  // Friend-of-friend who liked a common post, as UC2RPQ and as raw path
  // query pieces joined relationally.
  auto q = ParseCrpq(
      "q(x, y) :- (knows knows)(x, y), (likes likes-)(x, y)",
      &net.alphabet());
  ASSERT_TRUE(q.ok());
  Relation via_crpq = EvalCrpq(net, *q).value();

  auto fof = ParsePathQuery("knows knows", &net.alphabet());
  auto colike = ParsePathQuery("likes likes-", &net.alphabet());
  ASSERT_TRUE(fof.ok() && colike.ok());
  Relation a(2), b(2);
  for (const auto& [x, y] : EvalPathQuery(net, *fof->regex)) {
    a.Insert({x, y});
  }
  for (const auto& [x, y] : EvalPathQuery(net, *colike->regex)) {
    b.Insert({x, y});
  }
  Relation joined(2);
  for (const Tuple& t : a.tuples()) {
    if (b.Contains(t)) joined.Insert(t);
  }
  EXPECT_EQ(via_crpq.SortedTuples(), joined.SortedTuples());
}

}  // namespace
}  // namespace rq

// Parser robustness: random garbage and mutated valid inputs must produce
// clean errors (or valid parses), never crashes, across all five parsers.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "crpq/crpq.h"
#include "datalog/program.h"
#include "regex/regex.h"
#include "relational/cq.h"
#include "rq/parser.h"

namespace rq {
namespace {

std::string RandomGarbage(Rng& rng, size_t max_len) {
  static constexpr char kChars[] =
      "abcxyz_0189 ()[]{},.:-|&*+?=<>!@#\n\t";
  std::string out;
  size_t len = rng.Below(max_len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kChars[rng.Below(sizeof(kChars) - 1)]);
  }
  return out;
}

std::string Mutate(const std::string& base, Rng& rng) {
  std::string out = base;
  size_t edits = 1 + rng.Below(3);
  for (size_t e = 0; e < edits && !out.empty(); ++e) {
    size_t pos = rng.Below(out.size());
    switch (rng.Below(3)) {
      case 0:
        out.erase(pos, 1);
        break;
      case 1:
        out.insert(pos, 1, "()|&,.:-"[rng.Below(8)]);
        break;
      default:
        out[pos] = "abxyz()[],"[rng.Below(10)];
        break;
    }
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, RegexParserNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Alphabet alphabet;
    auto result = ParseRegex(RandomGarbage(rng, 30), &alphabet);
    if (result.ok()) {
      // A successful parse must round-trip.
      std::string printed = (*result)->ToString(alphabet);
      EXPECT_TRUE(ParseRegex(printed, &alphabet).ok()) << printed;
    }
  }
  for (int i = 0; i < 50; ++i) {
    Alphabet alphabet;
    auto result =
        ParseRegex(Mutate("a (b | c)* d-", rng), &alphabet);
    (void)result;  // ok or clean error, both fine
  }
}

TEST_P(ParserFuzzTest, CqParserNeverCrashes) {
  Rng rng(GetParam() * 3 + 1);
  for (int i = 0; i < 50; ++i) {
    auto result = ParseCq(RandomGarbage(rng, 40));
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
  for (int i = 0; i < 50; ++i) {
    auto result = ParseCq(Mutate("q(x, y) :- e(x, z), f(z, y)", rng));
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
}

TEST_P(ParserFuzzTest, DatalogParserNeverCrashes) {
  Rng rng(GetParam() * 7 + 2);
  const std::string base =
      "tc(X, Y) :- e(X, Y).\ntc(X, Z) :- tc(X, Y), e(Y, Z).\n?- tc.";
  for (int i = 0; i < 40; ++i) {
    auto result = ParseDatalog(RandomGarbage(rng, 60));
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
  for (int i = 0; i < 40; ++i) {
    auto result = ParseDatalog(Mutate(base, rng));
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
}

TEST_P(ParserFuzzTest, RqParserNeverCrashes) {
  Rng rng(GetParam() * 11 + 3);
  const std::string base =
      "q(x, y) := tc[x,y]( exists[z]( r(x,y) & r(y,z) & r(z,x) ) )";
  for (int i = 0; i < 40; ++i) {
    auto result = ParseRq(RandomGarbage(rng, 50));
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
      // Round trip.
      EXPECT_TRUE(ParseRq(result->ToString()).ok());
    }
  }
  for (int i = 0; i < 40; ++i) {
    auto result = ParseRq(Mutate(base, rng));
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
}

TEST_P(ParserFuzzTest, CrpqParserNeverCrashes) {
  Rng rng(GetParam() * 13 + 4);
  const std::string base = "q(x, y) :- (knows+)(x, z), (member-)(z, y)";
  for (int i = 0; i < 40; ++i) {
    Alphabet alphabet;
    auto result = ParseCrpq(RandomGarbage(rng, 50), &alphabet);
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
  for (int i = 0; i < 40; ++i) {
    Alphabet alphabet;
    auto result = ParseCrpq(Mutate(base, rng), &alphabet);
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok());
    }
  }
}

TEST_P(ParserFuzzTest, GraphParserNeverCrashes) {
  Rng rng(GetParam() * 17 + 5);
  for (int i = 0; i < 40; ++i) {
    auto result = GraphDb::FromText(RandomGarbage(rng, 80));
    if (result.ok()) {
      // Round trip.
      EXPECT_TRUE(GraphDb::FromText(result->ToText()).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace rq

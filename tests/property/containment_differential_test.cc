// Differential property test over the containment engines (ctest label
// `property`): on seeded random NFA pairs, the on-the-fly, antichain, and
// explicit-complement checkers must agree on every verdict, every
// counterexample must separate the languages, and the cached and batched
// paths must reproduce the uncached serial verdicts exactly.
#include <gtest/gtest.h>

#include <vector>

#include "automata/containment.h"
#include "automata/nfa.h"
#include "cache/automata_cache.h"
#include "common/rng.h"
#include "containment/batch.h"

namespace rq {
namespace {

constexpr uint32_t kNumSymbols = 2;
constexpr int kNumPairs = 200;

Nfa RandomNfa(Rng& rng) {
  uint32_t num_states = 2 + static_cast<uint32_t>(rng.Below(4));
  Nfa nfa(kNumSymbols);
  for (uint32_t s = 0; s < num_states; ++s) nfa.AddState();
  nfa.AddInitial(static_cast<uint32_t>(rng.Below(num_states)));
  // ~1.5 transitions per state keeps both verdicts common: denser automata
  // are almost always universal, sparser ones almost always empty.
  uint32_t num_transitions = num_states + static_cast<uint32_t>(
                                              rng.Below(num_states + 1));
  for (uint32_t t = 0; t < num_transitions; ++t) {
    nfa.AddTransition(static_cast<uint32_t>(rng.Below(num_states)),
                      static_cast<Symbol>(rng.Below(kNumSymbols)),
                      static_cast<uint32_t>(rng.Below(num_states)));
  }
  if (rng.Below(4) == 0) {
    nfa.AddEpsilon(static_cast<uint32_t>(rng.Below(num_states)),
                   static_cast<uint32_t>(rng.Below(num_states)));
  }
  for (uint32_t s = 0; s < num_states; ++s) {
    if (rng.Below(3) == 0) nfa.SetAccepting(s);
  }
  return nfa;
}

struct Fixture {
  std::vector<Nfa> as;
  std::vector<Nfa> bs;
  std::vector<LanguageContainmentResult> baseline;
};

// Built once: the uncached, serial, on-the-fly verdicts are ground truth
// for every other engine configuration below.
const Fixture& SharedFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    cache::AutomataCache::Global().SetEnabled(false);
    Rng rng(20260806);
    for (int i = 0; i < kNumPairs; ++i) {
      f->as.push_back(RandomNfa(rng));
      f->bs.push_back(RandomNfa(rng));
      f->baseline.push_back(
          CheckLanguageContainment(f->as.back(), f->bs.back()));
    }
    return f;
  }();
  return *fixture;
}

TEST(ContainmentDifferentialTest, EnginesAgreeOnRandomPairs) {
  const Fixture& f = SharedFixture();
  int contained = 0;
  for (int i = 0; i < kNumPairs; ++i) {
    const LanguageContainmentResult& otf = f.baseline[i];
    LanguageContainmentResult anti =
        CheckLanguageContainmentAntichain(f.as[i], f.bs[i]);
    LanguageContainmentResult expl =
        CheckLanguageContainmentExplicit(f.as[i], f.bs[i]);
    EXPECT_EQ(otf.contained, anti.contained) << "pair " << i;
    EXPECT_EQ(otf.contained, expl.contained) << "pair " << i;
    if (otf.contained) ++contained;
  }
  // The distribution must exercise both verdicts, or the test is vacuous.
  EXPECT_GT(contained, 10);
  EXPECT_LT(contained, kNumPairs - 10);
}

TEST(ContainmentDifferentialTest, CounterexamplesSeparateTheLanguages) {
  const Fixture& f = SharedFixture();
  int refuted = 0;
  for (int i = 0; i < kNumPairs; ++i) {
    const LanguageContainmentResult& otf = f.baseline[i];
    if (otf.contained) continue;
    ++refuted;
    EXPECT_TRUE(f.as[i].Accepts(otf.counterexample)) << "pair " << i;
    EXPECT_FALSE(f.bs[i].Accepts(otf.counterexample)) << "pair " << i;
    LanguageContainmentResult anti =
        CheckLanguageContainmentAntichain(f.as[i], f.bs[i]);
    EXPECT_TRUE(f.as[i].Accepts(anti.counterexample)) << "pair " << i;
    EXPECT_FALSE(f.bs[i].Accepts(anti.counterexample)) << "pair " << i;
  }
  EXPECT_GT(refuted, 10);
}

TEST(ContainmentDifferentialTest, CachedAndBatchedPathsMatchBaseline) {
  const Fixture& f = SharedFixture();
  std::vector<NfaContainmentJob> jobs;
  for (int i = 0; i < kNumPairs; ++i) {
    jobs.push_back({&f.as[i], &f.bs[i]});
  }
  cache::AutomataCache& ac = cache::AutomataCache::Global();
  ac.Clear();
  ac.SetEnabled(true);
  ContainmentBatchOptions options;
  options.jobs = 4;
  // Two rounds: the second one answers from the verdict cache.
  for (int round = 0; round < 2; ++round) {
    std::vector<LanguageContainmentResult> batched =
        CheckContainmentBatch(jobs, options);
    ASSERT_EQ(batched.size(), static_cast<size_t>(kNumPairs));
    for (int i = 0; i < kNumPairs; ++i) {
      EXPECT_EQ(batched[i].contained, f.baseline[i].contained)
          << "round " << round << " pair " << i;
      if (!batched[i].contained) {
        EXPECT_TRUE(f.as[i].Accepts(batched[i].counterexample));
        EXPECT_FALSE(f.bs[i].Accepts(batched[i].counterexample));
      }
    }
  }
  ac.SetEnabled(false);
  ac.Clear();
}

}  // namespace
}  // namespace rq

// Parameterized property sweeps: each suite re-runs an invariant across a
// range of RNG seeds, so every seed is an independently reported test case.
#include <gtest/gtest.h>

#include "automata/containment.h"
#include "automata/ops.h"
#include "automata/words.h"
#include "common/rng.h"
#include "datalog/eval.h"
#include "graph/generators.h"
#include "pathquery/containment.h"
#include "pathquery/path_query.h"
#include "regex/regex.h"
#include "relational/cq.h"
#include "rq/eval.h"
#include "rq/to_datalog.h"
#include "twoway/fold.h"
#include "twoway/random.h"
#include "twoway/tables.h"

namespace rq {
namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

// --- Regular languages -----------------------------------------------------

using RegexLanguageProperty = SeededTest;

// DeMorgan-ish sanity: L(r1) ⊆ L(r1|r2) and L(r1 r2) words concatenate.
TEST_P(RegexLanguageProperty, UnionAndConcatClosure) {
  Rng rng(GetParam());
  Alphabet alphabet;
  alphabet.InternLabel("a");
  alphabet.InternLabel("b");
  RegexPtr r1 = RandomRegex(alphabet, 3, false, rng);
  RegexPtr r2 = RandomRegex(alphabet, 3, false, rng);
  Nfa n1 = r1->ToNfa(4);
  Nfa n2 = r2->ToNfa(4);
  Nfa u = Regex::Union({r1, r2})->ToNfa(4);
  Nfa c = Regex::Concat({r1, r2})->ToNfa(4);
  EXPECT_TRUE(CheckLanguageContainment(n1, u).contained);
  EXPECT_TRUE(CheckLanguageContainment(n2, u).contained);
  for (const auto& w1 : EnumerateAcceptedWords(n1, 3, 8)) {
    for (const auto& w2 : EnumerateAcceptedWords(n2, 3, 8)) {
      std::vector<Symbol> cat = w1;
      cat.insert(cat.end(), w2.begin(), w2.end());
      EXPECT_TRUE(c.Accepts(cat)) << r1->ToString(alphabet) << " . "
                                  << r2->ToString(alphabet);
    }
  }
}

// Determinize/minimize/complement round trip: w ∈ L iff w ∉ complement(L).
TEST_P(RegexLanguageProperty, ComplementPartitionsWords) {
  Rng rng(GetParam() ^ 0xabcdef);
  Alphabet alphabet;
  alphabet.InternLabel("a");
  alphabet.InternLabel("b");
  RegexPtr re = RandomRegex(alphabet, 3, false, rng);
  Nfa nfa = re->ToNfa(4);
  Dfa comp = ComplementToDfa(nfa);
  Dfa minimized = Minimize(Determinize(nfa));
  for (int i = 0; i < 30; ++i) {
    std::vector<Symbol> w;
    size_t len = rng.Below(6);
    for (size_t j = 0; j < len; ++j) {
      w.push_back(ForwardSymbolOf(static_cast<uint32_t>(rng.Below(2))));
    }
    bool in = nfa.Accepts(w);
    EXPECT_NE(in, comp.Accepts(w)) << re->ToString(alphabet);
    EXPECT_EQ(in, minimized.Accepts(w)) << re->ToString(alphabet);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexLanguageProperty,
                         ::testing::Range<uint64_t>(1, 21));

// --- Two-way automata -------------------------------------------------------

using TwoWayProperty = SeededTest;

// Shepherdson tables decide exactly the same language as configuration BFS.
TEST_P(TwoWayProperty, TablesMatchConfigurationSearch) {
  TwoNfa m = RandomTwoNfa(5, 2, 4, GetParam());
  TwoNfaSimulator sim(m);
  Rng rng(GetParam() * 31);
  for (int i = 0; i < 40; ++i) {
    std::vector<Symbol> w;
    size_t len = rng.Below(7);
    for (size_t j = 0; j < len; ++j) {
      w.push_back(static_cast<Symbol>(rng.Below(2)));
    }
    EXPECT_EQ(m.Accepts(w), sim.AcceptsWord(w));
  }
}

// fold(L) contains L itself and is closed under inserting x x⁻ round trips
// at the end of the traversal... at minimum: every word of L folds onto
// itself, and FoldTwoNfa agrees with the direct fold search.
TEST_P(TwoWayProperty, FoldAgreement) {
  Rng rng(GetParam() * 101);
  Alphabet alphabet;
  alphabet.InternLabel("p");
  alphabet.InternLabel("q");
  RegexPtr re = RandomRegex(alphabet, 2, true, rng);
  Nfa nfa = re->ToNfa(4).WithoutEpsilons().Trimmed();
  TwoNfa fold2 = FoldTwoNfa(nfa);
  for (int i = 0; i < 20; ++i) {
    std::vector<Symbol> u;
    size_t len = rng.Below(4);
    for (size_t j = 0; j < len; ++j) {
      u.push_back(static_cast<Symbol>(rng.Below(4)));
    }
    EXPECT_EQ(FoldsOntoWord(nfa, u), fold2.Accepts(u))
        << re->ToString(alphabet);
  }
  for (const auto& v : EnumerateAcceptedWords(nfa, 3, 10)) {
    EXPECT_TRUE(Folds(v, v));
    EXPECT_TRUE(fold2.Accepts(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoWayProperty,
                         ::testing::Range<uint64_t>(1, 26));

// --- Path queries ------------------------------------------------------------

using PathQueryProperty = SeededTest;

// Graph evaluation is monotone under edge addition.
TEST_P(PathQueryProperty, EvaluationIsMonotone) {
  Rng rng(GetParam() * 7);
  GraphDb small = RandomGraph(8, 10, {"a", "b"}, GetParam());
  GraphDb big = RandomGraph(8, 10, {"a", "b"}, GetParam());
  // Extend `big` with extra random edges.
  for (int i = 0; i < 6; ++i) {
    big.AddEdge(static_cast<NodeId>(rng.Below(8)),
                static_cast<uint32_t>(rng.Below(2)),
                static_cast<NodeId>(rng.Below(8)));
  }
  RegexPtr re = RandomRegex(small.alphabet(), 3, true, rng);
  auto small_answers = EvalPathQuery(small, *re);
  Relation big_answers(2);
  for (const auto& [x, y] : EvalPathQuery(big, *re)) {
    big_answers.Insert({x, y});
  }
  for (const auto& [x, y] : small_answers) {
    EXPECT_TRUE(big_answers.Contains({x, y})) << re->ToString(small.alphabet());
  }
}

// Inverse symmetry: (x,y) ∈ Q(D) iff (y,x) ∈ Q⁻(D).
TEST_P(PathQueryProperty, InverseExpressionSwapsAnswers) {
  Rng rng(GetParam() * 13);
  GraphDb db = RandomGraph(8, 16, {"a", "b"}, GetParam() + 1000);
  RegexPtr re = RandomRegex(db.alphabet(), 3, true, rng);
  RegexPtr inv = re->InverseExpression();
  auto fwd = EvalPathQuery(db, *re);
  Relation bwd(2);
  for (const auto& [x, y] : EvalPathQuery(db, *inv)) bwd.Insert({x, y});
  EXPECT_EQ(fwd.size(), bwd.size());
  for (const auto& [x, y] : fwd) {
    EXPECT_TRUE(bwd.Contains({y, x})) << re->ToString(db.alphabet());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathQueryProperty,
                         ::testing::Range<uint64_t>(1, 21));

// --- Relational / Datalog ----------------------------------------------------

using DatalogProperty = SeededTest;

// Naive and semi-naive evaluation agree on every program/database pair.
TEST_P(DatalogProperty, EvaluationModesAgree) {
  const char* programs[] = {
      R"(tc(X, Y) :- e(X, Y).
         tc(X, Z) :- tc(X, Y), e(Y, Z).
         ?- tc.)",
      R"(tc(X, Y) :- e(X, Y).
         tc(X, Z) :- tc(X, Y), tc(Y, Z).
         ?- tc.)",
      R"(even(X, Y) :- e(X, Y).
         even(X, Z) :- odd(X, Y), e(Y, Z).
         odd(X, Z) :- even(X, Y), e(Y, Z).
         ?- even.)",
  };
  GraphDb graph = RandomGraph(10, 20, {"e"}, GetParam());
  Database db = GraphToDatabase(graph);
  for (const char* text : programs) {
    DatalogProgram program = ParseDatalog(text).value();
    Relation naive =
        EvalDatalogGoal(program, db, DatalogEvalMode::kNaive).value();
    Relation semi =
        EvalDatalogGoal(program, db, DatalogEvalMode::kSemiNaive).value();
    EXPECT_EQ(naive.SortedTuples(), semi.SortedTuples()) << text;
  }
}

// Datalog evaluation is monotone in the EDB.
TEST_P(DatalogProperty, EvaluationIsMonotone) {
  DatalogProgram program = ParseDatalog(R"(
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    ?- tc.
  )")
                               .value();
  GraphDb small = RandomGraph(9, 12, {"e"}, GetParam());
  Database small_db = GraphToDatabase(small);
  Database big_db = GraphToDatabase(small);
  Rng rng(GetParam() * 3);
  Relation* e = big_db.FindMutable("e");
  for (int i = 0; i < 5; ++i) {
    e->Insert({rng.Below(9), rng.Below(9)});
  }
  Relation a = EvalDatalogGoal(program, small_db).value();
  Relation b = EvalDatalogGoal(program, big_db).value();
  for (const Tuple& t : a.tuples()) EXPECT_TRUE(b.Contains(t));
}

// CQ evaluation agrees with its own canonical database: the frozen head is
// always answered (identity homomorphism).
TEST_P(DatalogProperty, CanonicalDatabaseAnswersItsQuery) {
  Rng rng(GetParam() * 17);
  for (int i = 0; i < 10; ++i) {
    ConjunctiveQuery q = RandomBinaryCq(1 + rng.Below(5), 5, 3, rng);
    Database canonical = q.CanonicalDatabase();
    Relation answers = EvalCq(canonical, q).value();
    EXPECT_TRUE(answers.Contains(q.FrozenHead())) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatalogProperty,
                         ::testing::Range<uint64_t>(1, 21));

// --- RQ / translations ---------------------------------------------------------

using RqProperty = SeededTest;

// The §4.1 embedding preserves semantics on random inputs, for a random
// query assembled from the full operator set.
TEST_P(RqProperty, DatalogTranslationAgrees) {
  Rng rng(GetParam() * 97);
  // Random binary RQ over labels r, s built recursively.
  std::function<RqExprPtr(int, VarId, VarId, uint32_t*)> build =
      [&](int depth, VarId from, VarId to, uint32_t* next) -> RqExprPtr {
    if (depth <= 0 || rng.Chance(0.4)) {
      const char* label = rng.Chance(0.5) ? "r" : "s";
      return rng.Chance(0.5) ? RqExpr::Atom(label, {from, to})
                             : RqExpr::Atom(label, {to, from});
    }
    switch (rng.Below(3)) {
      case 0: {  // composition
        VarId m = (*next)++;
        RqExprPtr left = build(depth - 1, from, m, next);
        RqExprPtr right = build(depth - 1, m, to, next);
        return RqExpr::Exists({m}, RqExpr::And({left, right}));
      }
      case 1: {  // union
        RqExprPtr a = build(depth - 1, from, to, next);
        RqExprPtr b = build(depth - 1, from, to, next);
        if (a->FreeVars() != b->FreeVars()) return a;
        return RqExpr::Or({a, b});
      }
      default:  // closure
        return RqExpr::Closure(from, to, build(depth - 1, from, to, next));
    }
  };
  uint32_t next = 2;
  RqQuery query;
  query.root = build(3, 0, 1, &next);
  query.head = {0, 1};
  auto program = RqToDatalog(query);
  ASSERT_TRUE(program.ok());
  GraphDb graph = RandomGraph(7, 14, {"r", "s"}, GetParam() + 5);
  Database db = GraphToDatabase(graph);
  Relation direct = EvalRqQuery(db, query).value();
  Relation translated = EvalDatalogGoal(*program, db).value();
  EXPECT_EQ(direct.SortedTuples(), translated.SortedTuples())
      << query.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RqProperty,
                         ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace rq

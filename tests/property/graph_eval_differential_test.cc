// Differential property test for the snapshot-CSR evaluation path (ctest
// label `property`): on seeded random graphs and random 2RPQs, the
// product-BFS over the CSR snapshot must return exactly the answer set of
// an independent reference evaluator written against GraphDb's plain
// O(edges) edge scan (the seed semantics). The parallel multi-source path
// must match the serial one, and every answered pair must carry a witness
// semipath whose steps are real graph steps spelling a word of the query
// language.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "automata/nfa.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/snapshot.h"
#include "pathquery/path_query.h"
#include "pathquery/witness.h"
#include "regex/regex.h"

namespace rq {
namespace {

// Reference product BFS over GraphDb::Successors — the stateless O(edges)
// scan, structurally independent of the CSR arrays under test.
std::vector<std::pair<NodeId, NodeId>> ReferenceEval(const GraphDb& db,
                                                     const Nfa& nfa) {
  std::vector<std::pair<NodeId, NodeId>> out;
  const size_t num_states = nfa.num_states();
  for (NodeId src = 0; src < db.num_nodes(); ++src) {
    std::vector<bool> visited(db.num_nodes() * num_states, false);
    std::vector<bool> answer(db.num_nodes(), false);
    std::vector<std::pair<NodeId, uint32_t>> queue;
    auto push = [&](NodeId node, uint32_t state) {
      size_t key = static_cast<size_t>(node) * num_states + state;
      if (visited[key]) return;
      visited[key] = true;
      queue.emplace_back(node, state);
    };
    for (uint32_t s : nfa.initial()) push(src, s);
    for (size_t i = 0; i < queue.size(); ++i) {
      auto [node, state] = queue[i];
      if (nfa.IsAccepting(state)) answer[node] = true;
      for (const NfaTransition& t : nfa.TransitionsFrom(state)) {
        for (NodeId next : db.Successors(node, t.symbol)) push(next, t.to);
      }
    }
    for (NodeId y = 0; y < db.num_nodes(); ++y) {
      if (answer[y]) out.emplace_back(src, y);
    }
  }
  return out;
}

TEST(GraphEvalDifferentialTest, SnapshotEvalMatchesReferenceEdgeScan) {
  const std::vector<std::string> labels{"a", "b", "c"};
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 7919);
    const size_t num_nodes = 4 + rng.Below(28);
    const size_t num_edges = num_nodes + rng.Below(3 * num_nodes);
    GraphDb db = RandomGraph(num_nodes, num_edges, labels, seed);
    RegexPtr regex =
        RandomRegex(db.alphabet(), 3, /*allow_inverse=*/true, rng);
    const uint32_t k =
        std::max(static_cast<uint32_t>(db.alphabet().num_symbols()),
                 regex->MinNumSymbols());
    const Nfa nfa = regex->ToNfa(k).WithoutEpsilons();

    const auto expected = ReferenceEval(db, nfa);
    const auto actual = EvalPathQuery(*db.Snapshot(), *regex);
    EXPECT_EQ(actual, expected)
        << "seed " << seed << " query " << regex->ToString(db.alphabet());
  }
}

TEST(GraphEvalDifferentialTest, ParallelJobsMatchSerialJobs) {
  const std::vector<std::string> labels{"a", "b"};
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed * 104729);
    GraphDb db = RandomGraph(20 + rng.Below(40), 120 + rng.Below(200),
                             labels, seed);
    RegexPtr regex =
        RandomRegex(db.alphabet(), 3, /*allow_inverse=*/true, rng);
    const auto serial =
        EvalPathQuery(*db.Snapshot(), *regex, PathEvalOptions{.jobs = 1});
    const auto parallel =
        EvalPathQuery(*db.Snapshot(), *regex, PathEvalOptions{.jobs = 4});
    EXPECT_EQ(parallel, serial)
        << "seed " << seed << " query " << regex->ToString(db.alphabet());
  }
}

TEST(GraphEvalDifferentialTest, AnswersCarryValidWitnessSemipaths) {
  const std::vector<std::string> labels{"a", "b"};
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 31337);
    GraphDb db = RandomGraph(4 + rng.Below(12), 10 + rng.Below(30), labels,
                             seed);
    RegexPtr regex =
        RandomRegex(db.alphabet(), 3, /*allow_inverse=*/true, rng);
    const uint32_t k =
        std::max(static_cast<uint32_t>(db.alphabet().num_symbols()),
                 regex->MinNumSymbols());
    const Nfa nfa = regex->ToNfa(k).WithoutEpsilons();
    const auto answers = EvalPathQuery(*db.Snapshot(), *regex);

    for (const auto& [x, y] : answers) {
      auto witness = FindWitnessSemipath(db, *regex, x, y);
      ASSERT_TRUE(witness.has_value())
          << "no witness for answered pair (" << x << ", " << y << "), seed "
          << seed;
      // Endpoints chain up from x to y, every step is a real graph step,
      // and the spelled word is in the query language.
      NodeId at = x;
      std::vector<Symbol> word;
      for (const SemipathStep& step : *witness) {
        EXPECT_EQ(step.from, at);
        const std::vector<NodeId> succ = db.Successors(step.from, step.symbol);
        EXPECT_TRUE(std::binary_search(succ.begin(), succ.end(), step.to))
            << "step is not a graph step, seed " << seed;
        word.push_back(step.symbol);
        at = step.to;
      }
      EXPECT_EQ(at, y);
      EXPECT_TRUE(nfa.Accepts(word))
          << "witness word not in language, seed " << seed;
    }
  }
}

// Pairs NOT in the answer must have no witness (spot-checked on the
// complement to keep runtime bounded).
TEST(GraphEvalDifferentialTest, NonAnswersHaveNoWitness) {
  const std::vector<std::string> labels{"a", "b"};
  Rng rng(424243);
  GraphDb db = RandomGraph(10, 25, labels, /*seed=*/5);
  RegexPtr regex = RandomRegex(db.alphabet(), 3, /*allow_inverse=*/true, rng);
  const auto answers = EvalPathQuery(*db.Snapshot(), *regex);
  for (NodeId x = 0; x < db.num_nodes(); ++x) {
    for (NodeId y = 0; y < db.num_nodes(); ++y) {
      const bool answered = std::binary_search(
          answers.begin(), answers.end(), std::make_pair(x, y));
      EXPECT_EQ(FindWitnessSemipath(db, *regex, x, y).has_value(), answered)
          << "(" << x << ", " << y << ")";
    }
  }
}

}  // namespace
}  // namespace rq

// Differential property test for incremental closure maintenance (ctest
// label `property`): on seeded random interleaved edge-insert streams, the
// incrementally maintained transitive closure — both the raw
// IncrementalClosure and the per-label generalization the live-mutation
// serving path uses (relational/incremental.h, server/graph_store.h) —
// must agree exactly with a from-scratch semi-naive fixpoint
// (BinaryTransitiveClosure) after EVERY insert. A second sweep drives the
// budget-capped path: random tiny delta budgets force demotions
// mid-stream, and a re-seed from the from-scratch closure must restore
// exact agreement — the lifecycle the server's update batches exercise.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "relational/incremental.h"
#include "relational/relation.h"
#include "rq/eval.h"

namespace rq {
namespace {

constexpr int kRounds = 12;
constexpr uint32_t kLabels = 4;

TEST(IncrementalDifferentialTest, ClosureMatchesSemiNaiveAfterEveryInsert) {
  Rng rng(0xC105E);
  for (int round = 0; round < kRounds; ++round) {
    size_t nodes = 6 + rng.Below(12);
    size_t edges = 25 + rng.Below(60);
    IncrementalClosure inc;
    Relation base(2);
    for (size_t i = 0; i < edges; ++i) {
      Value x = rng.Below(nodes);
      Value y = rng.Below(nodes);
      base.Insert({x, y});
      auto delta = inc.AddEdge(x, y);
      ASSERT_TRUE(delta.ok()) << delta.status().ToString();
      ASSERT_FALSE(delta->over_budget);
      ASSERT_EQ(inc.closure().SortedTuples(),
                BinaryTransitiveClosure(base).SortedTuples())
          << "round " << round << ", insert " << i << " (" << x << " -> "
          << y << ")";
    }
  }
}

TEST(IncrementalDifferentialTest, PerLabelClosuresMatchUnderInterleaving) {
  Rng rng(0xFACADE);
  for (int round = 0; round < kRounds; ++round) {
    size_t nodes = 6 + rng.Below(10);
    size_t edges = 30 + rng.Below(50);
    PerLabelClosure per_label;
    std::vector<Relation> bases;
    for (uint32_t l = 0; l < kLabels; ++l) {
      bases.emplace_back(2);
      per_label.Seed(l, Relation(2), Relation(2));
    }
    for (size_t i = 0; i < edges; ++i) {
      uint32_t label = static_cast<uint32_t>(rng.Below(kLabels));
      Value x = rng.Below(nodes);
      Value y = rng.Below(nodes);
      bases[label].Insert({x, y});
      auto added = per_label.AddEdge(label, x, y);
      ASSERT_TRUE(added.ok()) << added.status().ToString();
      for (uint32_t l = 0; l < kLabels; ++l) {
        const Relation* closure = per_label.closure(l);
        ASSERT_NE(closure, nullptr) << "label " << l << " lost liveness";
        ASSERT_EQ(closure->SortedTuples(),
                  BinaryTransitiveClosure(bases[l]).SortedTuples())
            << "label " << l << ", round " << round << ", insert " << i;
      }
    }
  }
}

TEST(IncrementalDifferentialTest, DemotionAndReseedCycleStaysExact) {
  Rng rng(0x5EED);
  for (int round = 0; round < kRounds; ++round) {
    size_t nodes = 8 + rng.Below(8);
    size_t edges = 40 + rng.Below(40);
    // A tiny random budget makes demotions likely but not certain.
    PerLabelClosure per_label(/*max_delta_product=*/1 + rng.Below(6));
    Relation base(2);
    per_label.Seed(0, Relation(2), Relation(2));
    size_t demotions = 0;
    for (size_t i = 0; i < edges; ++i) {
      Value x = rng.Below(nodes);
      Value y = rng.Below(nodes);
      base.Insert({x, y});
      auto added = per_label.AddEdge(0, x, y);
      ASSERT_TRUE(added.ok()) << added.status().ToString();
      if (!per_label.live(0)) {
        // Blown budget: the serving path falls back to a from-scratch
        // evaluation and re-seeds from it (GraphStore::SeedClosure).
        ++demotions;
        Relation reseed_base = base;
        per_label.Seed(0, std::move(reseed_base),
                       BinaryTransitiveClosure(base));
      }
      const Relation* closure = per_label.closure(0);
      ASSERT_NE(closure, nullptr);
      ASSERT_EQ(closure->SortedTuples(),
                BinaryTransitiveClosure(base).SortedTuples())
          << "round " << round << ", insert " << i << " after " << demotions
          << " demotions";
    }
  }
}

}  // namespace
}  // namespace rq

#include "crpq/to_datalog.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/eval.h"
#include "graph/generators.h"
#include "rq/eval.h"

namespace rq {
namespace {

// A random graph with no isolated nodes (cycle backbone + random chords),
// since the Datalog embedding quantifies over the active domain.
GraphDb ConnectedRandomGraph(size_t nodes, size_t chords, uint64_t seed) {
  GraphDb db = CycleGraph(nodes, "a");
  uint32_t b = db.alphabet().InternLabel("b");
  Rng rng(seed);
  for (size_t i = 0; i < chords; ++i) {
    db.AddEdge(static_cast<NodeId>(rng.Below(nodes)), b,
               static_cast<NodeId>(rng.Below(nodes)));
  }
  return db;
}

TEST(Uc2RpqToDatalogTest, SingleAtomMatchesEvaluation) {
  GraphDb graph = ConnectedRandomGraph(10, 15, 1);
  auto query = ParseUc2Rpq("q(x, y) :- (a b)(x, y)", &graph.alphabet());
  ASSERT_TRUE(query.ok());
  auto program = Uc2RpqToDatalog(*query, graph.alphabet());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Relation direct = EvalUc2Rpq(graph, *query).value();
  Relation translated =
      EvalDatalogGoal(*program, GraphToDatabase(graph)).value();
  EXPECT_EQ(direct.SortedTuples(), translated.SortedTuples());
}

TEST(Uc2RpqToDatalogTest, ConjunctionAndUnionMatchEvaluation) {
  GraphDb graph = ConnectedRandomGraph(9, 12, 2);
  auto query = ParseUc2Rpq(
      "q(x, y) :- (a+)(x, z), (b)(z, y)\n"
      "q(x, y) :- (b a)(x, y), (a-)(x, w)\n",
      &graph.alphabet());
  ASSERT_TRUE(query.ok());
  auto program = Uc2RpqToDatalog(*query, graph.alphabet());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Relation direct = EvalUc2Rpq(graph, *query).value();
  Relation translated =
      EvalDatalogGoal(*program, GraphToDatabase(graph)).value();
  EXPECT_EQ(direct.SortedTuples(), translated.SortedTuples());
}

TEST(Uc2RpqToDatalogTest, RandomizedAgreement) {
  Rng rng(99);
  for (int round = 0; round < 12; ++round) {
    GraphDb graph = ConnectedRandomGraph(8, 10, rng.Next());
    // Random single-disjunct query with 2 atoms over shared variables.
    Crpq q;
    q.num_vars = 3;
    q.head = {0, 2};
    RegexPtr r1 = RandomRegex(graph.alphabet(), 2, true, rng);
    RegexPtr r2 = RandomRegex(graph.alphabet(), 2, true, rng);
    q.atoms = {{r1, 0, 1}, {r2, 1, 2}};
    Uc2Rpq u;
    u.disjuncts.push_back(q);
    auto program = Uc2RpqToDatalog(u, graph.alphabet());
    ASSERT_TRUE(program.ok());
    Relation direct = EvalUc2Rpq(graph, u).value();
    Relation translated =
        EvalDatalogGoal(*program, GraphToDatabase(graph)).value();
    EXPECT_EQ(direct.SortedTuples(), translated.SortedTuples())
        << r1->ToString(graph.alphabet()) << " / "
        << r2->ToString(graph.alphabet());
  }
}

TEST(Uc2RpqToDatalogTest, GeneratedProgramIsLinearDatalog) {
  Alphabet alphabet;
  auto query = ParseUc2Rpq(
      "q(x, y) :- (a+ b-)(x, z), ((a | b)*)(z, y)", &alphabet);
  ASSERT_TRUE(query.ok());
  auto program = Uc2RpqToDatalog(*query, alphabet);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->IsLinear());
  EXPECT_TRUE(program->IsRecursive());
}

TEST(MatcherAblationTest, InOrderMatcherAgreesWithGreedy) {
  Rng rng(7);
  Database db;
  Relation* p0 = db.GetOrCreate("p0", 2).value();
  Relation* p1 = db.GetOrCreate("p1", 2).value();
  for (int i = 0; i < 120; ++i) {
    p0->Insert({rng.Below(15), rng.Below(15)});
    p1->Insert({rng.Below(15), rng.Below(15)});
  }
  std::vector<MatchAtom> atoms = {{p0, {0, 1}}, {p1, {1, 2}}, {p0, {2, 0}}};
  Relation greedy(3), in_order(3);
  MatchConjunction(atoms, 3, [&](const std::vector<Value>& b) {
    greedy.Insert({b[0], b[1], b[2]});
    return true;
  });
  MatchConjunctionInOrder(atoms, 3, [&](const std::vector<Value>& b) {
    in_order.Insert({b[0], b[1], b[2]});
    return true;
  });
  EXPECT_EQ(greedy.SortedTuples(), in_order.SortedTuples());
}

}  // namespace
}  // namespace rq

#include "crpq/crpq.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "pathquery/path_query.h"

namespace rq {
namespace {

class CrpqTest : public ::testing::Test {
 protected:
  Crpq Parse(const std::string& text) {
    auto q = ParseCrpq(text, &alphabet_);
    RQ_CHECK(q.ok());
    return *q;
  }
  Uc2Rpq ParseUnion(const std::string& text) {
    auto q = ParseUc2Rpq(text, &alphabet_);
    RQ_CHECK(q.ok());
    return *q;
  }
  Alphabet alphabet_;
};

TEST_F(CrpqTest, ParsesAtomsAndVariables) {
  Crpq q = Parse("q(x, y) :- (knows+)(x, z), (member)(z, y)");
  EXPECT_EQ(q.head.size(), 2u);
  EXPECT_EQ(q.atoms.size(), 2u);
  EXPECT_EQ(q.num_vars, 3u);
}

TEST_F(CrpqTest, RejectsMalformedQueries) {
  Alphabet a;
  EXPECT_FALSE(ParseCrpq("q(x, y) - (r)(x, y)", &a).ok());
  EXPECT_FALSE(ParseCrpq("q(x, y) :- (r)(x)", &a).ok());
  EXPECT_FALSE(ParseCrpq("q(x, w) :- (r)(x, y)", &a).ok());  // unsafe head
  EXPECT_FALSE(ParseCrpq("q(x, y) :- (r(x, y)", &a).ok());
}

TEST_F(CrpqTest, EvaluationJoinsAtomRelations) {
  GraphDb db;
  NodeId a = db.AddNode();
  NodeId b = db.AddNode();
  NodeId c = db.AddNode();
  NodeId d = db.AddNode();
  db.AddEdge(a, "knows", b);
  db.AddEdge(b, "knows", c);
  db.AddEdge(c, "member", d);
  Alphabet& alphabet = db.alphabet();
  auto q = ParseCrpq("q(x, y) :- (knows+)(x, z), (member)(z, y)", &alphabet);
  ASSERT_TRUE(q.ok());
  Relation answers = EvalCrpq(db, *q).value();
  EXPECT_EQ(answers.SortedTuples(),
            (std::vector<Tuple>{{a, d}, {b, d}}));
}

// The paper's Example 1 (§3.3): the triangle-ish pattern and its union.
TEST_F(CrpqTest, PaperExampleOneTrianglePattern) {
  GraphDb db;
  NodeId a = db.AddNode();
  NodeId b = db.AddNode();
  NodeId c = db.AddNode();
  db.AddEdge(a, "r", b);
  db.AddEdge(a, "r", c);
  db.AddEdge(b, "r", c);
  auto q1 =
      ParseCrpq("q(x, y) :- (r)(x, y), (r)(x, z), (r)(y, z)", &db.alphabet());
  ASSERT_TRUE(q1.ok());
  Relation answers = EvalCrpq(db, *q1).value();
  EXPECT_TRUE(answers.Contains({a, b}));
  EXPECT_FALSE(answers.Contains({b, a}));

  // Add the directed-cycle disjunct; a full cycle now also answers.
  GraphDb cycle;
  NodeId x = cycle.AddNode();
  NodeId y = cycle.AddNode();
  NodeId z = cycle.AddNode();
  cycle.AddEdge(x, "r", y);
  cycle.AddEdge(y, "r", z);
  cycle.AddEdge(z, "r", x);
  auto u = ParseUc2Rpq(
      "q(x, y) :- (r)(x, y), (r)(x, z), (r)(y, z)\n"
      "q(x, y) :- (r)(x, y), (r)(y, z), (r)(z, x)\n",
      &cycle.alphabet());
  ASSERT_TRUE(u.ok());
  Relation union_answers = EvalUc2Rpq(cycle, *u).value();
  EXPECT_TRUE(union_answers.Contains({x, y}));
}

TEST_F(CrpqTest, TwoWayAtomsEvaluateOverSemipaths) {
  GraphDb db;
  NodeId c1 = db.AddNode();
  NodeId c2 = db.AddNode();
  NodeId p = db.AddNode();
  db.AddEdge(c1, "parent", p);
  db.AddEdge(c2, "parent", p);
  auto q = ParseCrpq("q(x, y) :- (parent parent-)(x, y)", &db.alphabet());
  ASSERT_TRUE(q.ok());
  Relation siblings = EvalCrpq(db, *q).value();
  EXPECT_TRUE(siblings.Contains({c1, c2}));
  EXPECT_TRUE(siblings.Contains({c1, c1}));
  EXPECT_FALSE(siblings.Contains({c1, p}));
}

TEST_F(CrpqTest, SharedRegexesAreEvaluatedOnce) {
  // Not directly observable; assert correctness with repeated atoms.
  GraphDb db = PathGraph(4, "e");
  auto q = ParseCrpq("q(x, z) :- (e+)(x, y), (e+)(y, z)", &db.alphabet());
  ASSERT_TRUE(q.ok());
  Relation answers = EvalCrpq(db, *q).value();
  EXPECT_TRUE(answers.Contains({0, 2}));
  EXPECT_TRUE(answers.Contains({0, 3}));
  EXPECT_FALSE(answers.Contains({0, 1}));  // needs two nonempty hops
}

class CrpqContainmentTest : public CrpqTest {};

TEST_F(CrpqContainmentTest, SingleAtomDispatchUsesFoldPipeline) {
  Uc2Rpq q1 = ParseUnion("q(x, y) :- (p)(x, y)");
  Uc2Rpq q2 = ParseUnion("q(x, y) :- (p p- p)(x, y)");
  auto result = CheckUc2RpqContainment(q1, q2, alphabet_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->method, "2rpq-fold");
  EXPECT_EQ(result->certainty, Certainty::kProved);
}

TEST_F(CrpqContainmentTest, SwappedHeadUsesInverseExpression) {
  Uc2Rpq q1 = ParseUnion("q(x, y) :- (p)(y, x)");
  Uc2Rpq q2 = ParseUnion("q(x, y) :- (p-)(x, y)");
  auto result = CheckUc2RpqContainment(q1, q2, alphabet_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->certainty, Certainty::kProved);
}

TEST_F(CrpqContainmentTest, DroppingAtomsWeakens) {
  Uc2Rpq q1 = ParseUnion("q(x, y) :- (r)(x, y), (s)(x, z)");
  Uc2Rpq q2 = ParseUnion("q(x, y) :- (r)(x, y)");
  auto result = CheckUc2RpqContainment(q1, q2, alphabet_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->certainty, Certainty::kProved);
  EXPECT_EQ(result->method, "expansion-exact");

  auto reverse = CheckUc2RpqContainment(q2, q1, alphabet_);
  ASSERT_TRUE(reverse.ok());
  EXPECT_EQ(reverse->certainty, Certainty::kRefuted);
}

TEST_F(CrpqContainmentTest, FiniteLanguagesGiveExactVerdicts) {
  Uc2Rpq q1 = ParseUnion("q(x, y) :- (r r | r s)(x, y)");
  Uc2Rpq q2 = ParseUnion("q(x, y) :- (r (r | s))(x, y), (r)(x, z)");
  auto result = CheckUc2RpqContainment(q1, q2, alphabet_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->certainty, Certainty::kProved);
  EXPECT_EQ(result->method, "expansion-exact");
}

TEST_F(CrpqContainmentTest, RefutationCarriesCheckableGraph) {
  Uc2Rpq q1 = ParseUnion("q(x, y) :- (r r)(x, y)");
  Uc2Rpq q2 = ParseUnion("q(x, y) :- (r)(x, y)");
  auto result = CheckUc2RpqContainment(q1, q2, alphabet_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->certainty, Certainty::kRefuted);
  ASSERT_TRUE(result->counterexample.has_value());
  Relation a1 = EvalUc2Rpq(*result->counterexample, q1).value();
  Relation a2 = EvalUc2Rpq(*result->counterexample, q2).value();
  Tuple witness{result->witness_x, result->witness_y};
  EXPECT_TRUE(a1.Contains(witness));
  EXPECT_FALSE(a2.Contains(witness));
}

TEST_F(CrpqContainmentTest, EpsilonWordsMergeEndpoints) {
  // q1 with an optional atom: the empty word forces x = z in one
  // expansion. q1: (r?)(x,z), (s)(z,y) ⊑ (r? s)(x, y)?  With r? empty the
  // canonical graph merges x and z; q2 must still answer.
  Uc2Rpq q1 = ParseUnion("q(x, y) :- (r?)(x, z), (s)(z, y)");
  Uc2Rpq q2 = ParseUnion("q(x, y) :- (r? s)(x, y)");
  auto result = CheckUc2RpqContainment(q1, q2, alphabet_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->certainty, Certainty::kProved);
  EXPECT_EQ(result->method, "expansion-exact");
}

TEST_F(CrpqContainmentTest, InfiniteLanguagesAreBoundedButRefutable) {
  Uc2Rpq q1 = ParseUnion("q(x, y) :- (r+)(x, y), (s)(x, z)");
  Uc2Rpq q2 = ParseUnion("q(x, y) :- (r r+)(x, y), (s)(x, z)");
  auto result = CheckUc2RpqContainment(q1, q2, alphabet_);
  ASSERT_TRUE(result.ok());
  // r alone (length 1) refutes.
  EXPECT_EQ(result->certainty, Certainty::kRefuted);

  auto other = CheckUc2RpqContainment(q2, q1, alphabet_);
  ASSERT_TRUE(other.ok());
  // True containment, but only bounded evidence is available.
  EXPECT_EQ(other->certainty, Certainty::kUnknownUpToBound);
}

TEST_F(CrpqContainmentTest, UnionDisjunctsEachChecked) {
  Uc2Rpq q1 = ParseUnion(
      "q(x, y) :- (r)(x, y)\n"
      "q(x, y) :- (s)(x, y)");
  Uc2Rpq q2 = ParseUnion("q(x, y) :- (r | s)(x, y)");
  auto result = CheckUc2RpqContainment(q1, q2, alphabet_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->certainty, Certainty::kProved);
  // And the union is contained back (r|s as one atom vs two disjuncts).
  auto back = CheckUc2RpqContainment(q2, q1, alphabet_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->certainty, Certainty::kProved);
}

}  // namespace
}  // namespace rq

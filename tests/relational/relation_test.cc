#include "relational/relation.h"

#include <gtest/gtest.h>

#include "relational/matcher.h"

namespace rq {
namespace {

TEST(RelationTest, InsertDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Insert({2, 1}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({3, 3}));
}

TEST(RelationTest, ColumnIndexFindsRows) {
  Relation r(2);
  r.Insert({1, 10});
  r.Insert({1, 20});
  r.Insert({2, 10});
  EXPECT_EQ(r.RowsWithValue(0, 1).size(), 2u);
  EXPECT_EQ(r.RowsWithValue(1, 10).size(), 2u);
  EXPECT_TRUE(r.RowsWithValue(0, 99).empty());
  // Index refreshes after inserts.
  r.Insert({1, 30});
  EXPECT_EQ(r.RowsWithValue(0, 1).size(), 3u);
}

TEST(RelationTest, ZeroArityRelationActsAsBoolean) {
  Relation r(0);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.Insert({}));
  EXPECT_FALSE(r.Insert({}));
  EXPECT_TRUE(r.Contains({}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, InsertAllCountsNewTuples) {
  Relation a(1);
  a.Insert({1});
  a.Insert({2});
  Relation b(1);
  b.Insert({2});
  b.Insert({3});
  EXPECT_EQ(a.InsertAll(b), 1u);
  EXPECT_EQ(a.size(), 3u);
}

TEST(DatabaseTest, GetOrCreateChecksArity) {
  Database db;
  ASSERT_TRUE(db.GetOrCreate("r", 2).ok());
  EXPECT_TRUE(db.GetOrCreate("r", 2).ok());
  EXPECT_FALSE(db.GetOrCreate("r", 3).ok());
  EXPECT_EQ(db.Find("missing"), nullptr);
}

TEST(DatabaseTest, ToStringIsSortedAndStable) {
  Database db;
  db.GetOrCreate("b", 1).value()->Insert({2});
  db.GetOrCreate("a", 2).value()->Insert({1, 2});
  db.GetOrCreate("b", 1).value()->Insert({1});
  EXPECT_EQ(db.ToString(), "a(1,2)\nb(1)\nb(2)\n");
}

TEST(MatcherTest, SingleAtomEnumeratesRows) {
  Relation r(2);
  r.Insert({1, 2});
  r.Insert({3, 4});
  std::vector<std::vector<Value>> bindings;
  MatchConjunction({{&r, {0, 1}}}, 2, [&](const std::vector<Value>& b) {
    bindings.push_back(b);
    return true;
  });
  EXPECT_EQ(bindings.size(), 2u);
}

TEST(MatcherTest, RepeatedVariableFiltersDiagonal) {
  Relation r(2);
  r.Insert({1, 1});
  r.Insert({1, 2});
  r.Insert({2, 2});
  size_t count = MatchConjunction(
      {{&r, {0, 0}}}, 1, [](const std::vector<Value>&) { return true; });
  EXPECT_EQ(count, 2u);  // (1,1) and (2,2)
}

TEST(MatcherTest, JoinSharesVariables) {
  Relation e(2);
  e.Insert({1, 2});
  e.Insert({2, 3});
  e.Insert({3, 4});
  // e(x, y), e(y, z): paths of length 2.
  std::vector<std::vector<Value>> bindings;
  MatchConjunction({{&e, {0, 1}}, {&e, {1, 2}}}, 3,
                   [&](const std::vector<Value>& b) {
                     bindings.push_back(b);
                     return true;
                   });
  EXPECT_EQ(bindings.size(), 2u);
}

TEST(MatcherTest, EarlyTerminationStopsEnumeration) {
  Relation r(1);
  for (Value v = 0; v < 100; ++v) r.Insert({v});
  size_t seen = 0;
  MatchConjunction({{&r, {0}}}, 1, [&](const std::vector<Value>&) {
    ++seen;
    return seen < 5;
  });
  EXPECT_EQ(seen, 5u);
}

TEST(MatcherTest, TriangleJoin) {
  Relation e(2);
  e.Insert({1, 2});
  e.Insert({2, 3});
  e.Insert({3, 1});
  e.Insert({1, 3});  // extra chord
  // Triangle: e(x,y), e(y,z), e(z,x).
  size_t triangles = MatchConjunction(
      {{&e, {0, 1}}, {&e, {1, 2}}, {&e, {2, 0}}}, 3,
      [](const std::vector<Value>&) { return true; });
  EXPECT_EQ(triangles, 3u);  // rotations of (1,2,3)
}

TEST(MatcherTest, EmptyRelationYieldsNoMatches) {
  Relation e(2);
  EXPECT_FALSE(ConjunctionSatisfiable({{&e, {0, 1}}}, 2));
}

TEST(MatcherTest, CrossProductWithoutSharedVars) {
  Relation a(1), b(1);
  a.Insert({1});
  a.Insert({2});
  b.Insert({7});
  b.Insert({8});
  b.Insert({9});
  size_t count =
      MatchConjunction({{&a, {0}}, {&b, {1}}}, 2,
                       [](const std::vector<Value>&) { return true; });
  EXPECT_EQ(count, 6u);
}

}  // namespace
}  // namespace rq

#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/cq.h"

namespace rq {
namespace {

ConjunctiveQuery Cq(const std::string& text) {
  auto q = ParseCq(text);
  RQ_CHECK(q.ok());
  return *q;
}

// Validates a homomorphism certificate: every q2 atom, with variables
// mapped through `witness`, must be a tuple of q1's canonical database,
// and q2's head must map to q1's frozen head.
void ValidateWitness(const ConjunctiveQuery& q1, const ConjunctiveQuery& q2,
                     const std::vector<Value>& witness) {
  Database canonical = q1.CanonicalDatabase();
  for (const CqAtom& atom : q2.atoms) {
    const Relation* rel = canonical.Find(atom.predicate);
    ASSERT_NE(rel, nullptr);
    Tuple mapped;
    for (VarId v : atom.vars) mapped.push_back(witness[v]);
    EXPECT_TRUE(rel->Contains(mapped)) << q2.ToString();
  }
  Tuple frozen = q1.FrozenHead();
  for (size_t i = 0; i < q2.head.size(); ++i) {
    EXPECT_EQ(witness[q2.head[i]], frozen[i]);
  }
}

TEST(CqWitnessTest, TriangleIntoEdgeWitness) {
  ConjunctiveQuery triangle = Cq("q(x, y) :- e(x, y), e(y, z), e(z, x)");
  ConjunctiveQuery edge = Cq("q(x, y) :- e(x, y)");
  auto witness = CqContainmentWitness(triangle, edge);
  ASSERT_TRUE(witness.ok());
  ASSERT_TRUE(witness->has_value());
  ValidateWitness(triangle, edge, **witness);
}

TEST(CqWitnessTest, NoWitnessWhenNotContained) {
  ConjunctiveQuery edge = Cq("q(x, y) :- e(x, y)");
  ConjunctiveQuery two = Cq("q(x, y) :- e(x, m), e(m, y)");
  auto witness = CqContainmentWitness(edge, two);
  ASSERT_TRUE(witness.ok());
  EXPECT_FALSE(witness->has_value());
}

TEST(CqWitnessTest, FoldingWitnessMapsTwoVarsToOne) {
  ConjunctiveQuery loop = Cq("q(x) :- e(x, x)");
  ConjunctiveQuery cyc = Cq("q(x) :- e(x, y), e(y, x)");
  auto witness = CqContainmentWitness(loop, cyc);
  ASSERT_TRUE(witness.ok());
  ASSERT_TRUE(witness->has_value());
  ValidateWitness(loop, cyc, **witness);
  // Both of cyc's variables collapse onto the loop variable.
  EXPECT_EQ((**witness)[0], (**witness)[1]);
}

TEST(CqWitnessTest, AgreesWithBooleanTest) {
  Rng rng(99887);
  for (int round = 0; round < 80; ++round) {
    ConjunctiveQuery q1 = RandomBinaryCq(2 + rng.Below(3), 4, 2, rng);
    ConjunctiveQuery q2 = RandomBinaryCq(2 + rng.Below(3), 4, 2, rng);
    auto contained = CqContained(q1, q2);
    auto witness = CqContainmentWitness(q1, q2);
    ASSERT_TRUE(contained.ok() && witness.ok());
    EXPECT_EQ(*contained, witness->has_value())
        << q1.ToString() << " vs " << q2.ToString();
    if (witness->has_value()) {
      ValidateWitness(q1, q2, **witness);
    }
  }
}

}  // namespace
}  // namespace rq

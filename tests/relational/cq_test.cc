#include "relational/cq.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rq {
namespace {

ConjunctiveQuery Cq(const std::string& text) {
  auto q = ParseCq(text);
  RQ_CHECK(q.ok());
  return *q;
}

UnionOfConjunctiveQueries Ucq(const std::string& text) {
  auto q = ParseUcq(text);
  RQ_CHECK(q.ok());
  return *q;
}

// A small random database for evaluation cross-checks.
Database RandomDb(size_t num_preds, size_t domain, size_t tuples,
                  uint64_t seed) {
  Database db;
  Rng rng(seed);
  for (size_t p = 0; p < num_preds; ++p) {
    Relation* rel = db.GetOrCreate("p" + std::to_string(p), 2).value();
    for (size_t t = 0; t < tuples; ++t) {
      rel->Insert({rng.Below(domain), rng.Below(domain)});
    }
  }
  return db;
}

TEST(CqParseTest, ParsesHeadAndBody) {
  ConjunctiveQuery q = Cq("q(x, y) :- edge(x, z), edge(z, y)");
  EXPECT_EQ(q.head.size(), 2u);
  EXPECT_EQ(q.atoms.size(), 2u);
  EXPECT_EQ(q.num_vars, 3u);
  EXPECT_EQ(q.atoms[0].predicate, "edge");
}

TEST(CqParseTest, RejectsUnsafeQueries) {
  EXPECT_FALSE(ParseCq("q(x, w) :- edge(x, y)").ok());  // w not in body
  EXPECT_FALSE(ParseCq("q(x) : edge(x, y)").ok());      // missing :-
  EXPECT_FALSE(ParseCq("q(x) :- ").ok());               // empty body
  EXPECT_FALSE(ParseCq("q(x) :- e(x), e(x, x)").ok());  // arity conflict
}

TEST(CqEvalTest, PathOfLengthTwo) {
  Database db;
  Relation* e = db.GetOrCreate("edge", 2).value();
  e->Insert({1, 2});
  e->Insert({2, 3});
  e->Insert({3, 4});
  auto result = EvalCq(db, Cq("q(x, y) :- edge(x, z), edge(z, y)"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->SortedTuples(),
            (std::vector<Tuple>{{1, 3}, {2, 4}}));
}

TEST(CqEvalTest, MissingRelationGivesEmptyAnswer) {
  Database db;
  auto result = EvalCq(db, Cq("q(x) :- nothing(x, x)"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(CqEvalTest, RepeatedHeadVariable) {
  Database db;
  Relation* e = db.GetOrCreate("edge", 2).value();
  e->Insert({1, 2});
  auto result = EvalCq(db, Cq("q(x, x) :- edge(x, y)"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->SortedTuples(), (std::vector<Tuple>{{1, 1}}));
}

// Chandra-Merlin classics.
TEST(CqContainmentTest, LongerPathContainedInShorter) {
  // A length-3 path query is contained in the length-2 path query? No —
  // containment goes the other way: more atoms = more constraints = fewer
  // answers ⊆ ... but over the SAME head pair, a path of length 3 does not
  // imply a path of length 2. Neither containment holds.
  ConjunctiveQuery p2 = Cq("q(x, y) :- e(x, m), e(m, y)");
  ConjunctiveQuery p3 = Cq("q(x, y) :- e(x, a), e(a, b), e(b, y)");
  EXPECT_FALSE(CqContained(p3, p2).value());
  EXPECT_FALSE(CqContained(p2, p3).value());
}

TEST(CqContainmentTest, TriangleContainedInPath) {
  // Triangle q(x,y) :- e(x,y), e(y,z), e(z,x) is contained in
  // q(x,y) :- e(x,y) (drop atoms = weaken).
  ConjunctiveQuery triangle = Cq("q(x, y) :- e(x, y), e(y, z), e(z, x)");
  ConjunctiveQuery single = Cq("q(x, y) :- e(x, y)");
  EXPECT_TRUE(CqContained(triangle, single).value());
  EXPECT_FALSE(CqContained(single, triangle).value());
}

TEST(CqContainmentTest, HomomorphismFoldsCycleOntoSelfLoop) {
  // q1: x with a self loop; q2: x on a 2-cycle. q1 ⊑ q2 via hom mapping
  // both cycle nodes onto the loop node.
  ConjunctiveQuery loop = Cq("q(x) :- e(x, x)");
  ConjunctiveQuery cyc = Cq("q(x) :- e(x, y), e(y, x)");
  EXPECT_TRUE(CqContained(loop, cyc).value());
  EXPECT_FALSE(CqContained(cyc, loop).value());
}

TEST(CqContainmentTest, EquivalentUpToVariableRenaming) {
  ConjunctiveQuery a = Cq("q(x, y) :- e(x, z), f(z, y)");
  ConjunctiveQuery b = Cq("q(u, v) :- e(u, w), f(w, v)");
  EXPECT_TRUE(CqContained(a, b).value());
  EXPECT_TRUE(CqContained(b, a).value());
}

TEST(CqContainmentTest, ContainmentImpliesAnswerInclusion) {
  Rng rng(314);
  int containments = 0;
  for (int round = 0; round < 120; ++round) {
    ConjunctiveQuery q1 = RandomBinaryCq(2 + rng.Below(3), 4, 2, rng);
    ConjunctiveQuery q2 = RandomBinaryCq(2 + rng.Below(3), 4, 2, rng);
    auto contained = CqContained(q1, q2);
    ASSERT_TRUE(contained.ok());
    if (!*contained) continue;
    ++containments;
    Database db = RandomDb(2, 5, 12, rng.Next());
    Relation a1 = EvalCq(db, q1).value();
    Relation a2 = EvalCq(db, q2).value();
    for (const Tuple& t : a1.tuples()) {
      EXPECT_TRUE(a2.Contains(t)) << q1.ToString() << "  ⊑  "
                                  << q2.ToString();
    }
  }
  EXPECT_GT(containments, 0);
}

TEST(CqContainmentTest, NonContainmentHasSeparatingDatabase) {
  Rng rng(2718);
  for (int round = 0; round < 60; ++round) {
    ConjunctiveQuery q1 = RandomBinaryCq(2, 3, 2, rng);
    ConjunctiveQuery q2 = RandomBinaryCq(3, 4, 2, rng);
    auto contained = CqContained(q1, q2);
    ASSERT_TRUE(contained.ok());
    if (*contained) continue;
    // The canonical database of q1 must separate the queries.
    Database canonical = q1.CanonicalDatabase();
    Relation a1 = EvalCq(canonical, q1).value();
    Relation a2 = EvalCq(canonical, q2).value();
    EXPECT_TRUE(a1.Contains(q1.FrozenHead()));
    EXPECT_FALSE(a2.Contains(q1.FrozenHead()));
  }
}

TEST(UcqContainmentTest, DisjunctsContainedInUnion) {
  UnionOfConjunctiveQueries u =
      Ucq("q(x, y) :- e(x, y)\nq(x, y) :- f(x, y)");
  UnionOfConjunctiveQueries left = Ucq("q(x, y) :- e(x, y)");
  EXPECT_TRUE(UcqContained(left, u).value());
  EXPECT_FALSE(UcqContained(u, left).value());
}

TEST(UcqContainmentTest, UnionNeedsEveryDisjunctCovered) {
  UnionOfConjunctiveQueries u1 =
      Ucq("q(x, y) :- e(x, y), e(y, z)\nq(x, y) :- f(x, y), f(y, z)");
  UnionOfConjunctiveQueries u2 =
      Ucq("q(x, y) :- e(x, y)\nq(x, y) :- f(x, y)");
  EXPECT_TRUE(UcqContained(u1, u2).value());
  EXPECT_FALSE(UcqContained(u2, u1).value());
}

TEST(UcqContainmentTest, EvalUnionIsUnionOfEvals) {
  Database db;
  db.GetOrCreate("e", 2).value()->Insert({1, 2});
  db.GetOrCreate("f", 2).value()->Insert({3, 4});
  UnionOfConjunctiveQueries u =
      Ucq("q(x, y) :- e(x, y)\nq(x, y) :- f(x, y)");
  Relation answers = EvalUcq(db, u).value();
  EXPECT_EQ(answers.SortedTuples(),
            (std::vector<Tuple>{{1, 2}, {3, 4}}));
}

TEST(UcqContainmentTest, ArityMismatchIsAnError) {
  UnionOfConjunctiveQueries u1 = Ucq("q(x) :- e(x, y)");
  UnionOfConjunctiveQueries u2 = Ucq("q(x, y) :- e(x, y)");
  EXPECT_FALSE(UcqContained(u1, u2).ok());
}

}  // namespace
}  // namespace rq

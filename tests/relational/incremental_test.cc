#include "relational/incremental.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rq/eval.h"

namespace rq {
namespace {

TEST(IncrementalClosureTest, ChainGrowsQuadratically) {
  IncrementalClosure inc;
  EXPECT_EQ(inc.AddEdge(0, 1), 1u);
  EXPECT_EQ(inc.AddEdge(1, 2), 2u);  // (1,2), (0,2)
  EXPECT_EQ(inc.AddEdge(2, 3), 3u);  // (2,3), (1,3), (0,3)
  EXPECT_EQ(inc.closure().size(), 6u);
  EXPECT_TRUE(inc.Reaches(0, 3));
  EXPECT_FALSE(inc.Reaches(3, 0));
}

TEST(IncrementalClosureTest, CycleClosesCompletely) {
  IncrementalClosure inc;
  inc.AddEdge(0, 1);
  inc.AddEdge(1, 2);
  inc.AddEdge(2, 0);
  EXPECT_EQ(inc.closure().size(), 9u);
  EXPECT_TRUE(inc.Reaches(0, 0));
  EXPECT_TRUE(inc.Reaches(2, 1));
}

TEST(IncrementalClosureTest, RedundantEdgeAddsNothing) {
  IncrementalClosure inc;
  inc.AddEdge(0, 1);
  inc.AddEdge(1, 2);
  EXPECT_EQ(inc.AddEdge(0, 2), 0u);  // already reachable
  EXPECT_EQ(inc.AddEdge(0, 1), 0u);  // duplicate
  EXPECT_EQ(inc.closure().size(), 3u);
}

TEST(IncrementalClosureTest, SelfLoop) {
  IncrementalClosure inc;
  EXPECT_EQ(inc.AddEdge(5, 5), 1u);
  EXPECT_TRUE(inc.Reaches(5, 5));
  inc.AddEdge(5, 6);
  EXPECT_TRUE(inc.Reaches(5, 6));
  EXPECT_FALSE(inc.Reaches(6, 5));
}

TEST(IncrementalClosureTest, MatchesRecomputationOnRandomStreams) {
  Rng rng(13579);
  for (int round = 0; round < 15; ++round) {
    IncrementalClosure inc;
    Relation base(2);
    size_t edges = 20 + rng.Below(30);
    for (size_t i = 0; i < edges; ++i) {
      Value x = rng.Below(10);
      Value y = rng.Below(10);
      inc.AddEdge(x, y);
      base.Insert({x, y});
      // Spot-check after every few insertions.
      if (i % 5 == 4) {
        Relation recomputed = BinaryTransitiveClosure(base);
        ASSERT_EQ(inc.closure().SortedTuples(),
                  recomputed.SortedTuples())
            << "after " << (i + 1) << " edges, seed round " << round;
      }
    }
    Relation recomputed = BinaryTransitiveClosure(base);
    EXPECT_EQ(inc.closure().SortedTuples(), recomputed.SortedTuples());
  }
}

}  // namespace
}  // namespace rq

#include "relational/incremental.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/mem.h"
#include "common/rng.h"
#include "obs/counters.h"
#include "rq/eval.h"

namespace rq {
namespace {

// Unwraps AddEdge in tests that exercise the happy path (no deadline, no
// budget): the call must succeed and stay within budget.
size_t MustAdd(IncrementalClosure& inc, Value x, Value y) {
  auto delta = inc.AddEdge(x, y);
  EXPECT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_FALSE(delta->over_budget);
  return delta->pairs_added;
}

TEST(IncrementalClosureTest, ChainGrowsQuadratically) {
  IncrementalClosure inc;
  EXPECT_EQ(MustAdd(inc, 0, 1), 1u);
  EXPECT_EQ(MustAdd(inc, 1, 2), 2u);  // (1,2), (0,2)
  EXPECT_EQ(MustAdd(inc, 2, 3), 3u);  // (2,3), (1,3), (0,3)
  EXPECT_EQ(inc.closure().size(), 6u);
  EXPECT_TRUE(inc.Reaches(0, 3));
  EXPECT_FALSE(inc.Reaches(3, 0));
}

TEST(IncrementalClosureTest, CycleClosesCompletely) {
  IncrementalClosure inc;
  MustAdd(inc, 0, 1);
  MustAdd(inc, 1, 2);
  MustAdd(inc, 2, 0);
  EXPECT_EQ(inc.closure().size(), 9u);
  EXPECT_TRUE(inc.Reaches(0, 0));
  EXPECT_TRUE(inc.Reaches(2, 1));
}

TEST(IncrementalClosureTest, RedundantEdgeAddsNothing) {
  IncrementalClosure inc;
  MustAdd(inc, 0, 1);
  MustAdd(inc, 1, 2);
  EXPECT_EQ(MustAdd(inc, 0, 2), 0u);  // already reachable
  EXPECT_EQ(MustAdd(inc, 0, 1), 0u);  // duplicate
  EXPECT_EQ(inc.closure().size(), 3u);
}

TEST(IncrementalClosureTest, SelfLoop) {
  IncrementalClosure inc;
  EXPECT_EQ(MustAdd(inc, 5, 5), 1u);
  EXPECT_TRUE(inc.Reaches(5, 5));
  MustAdd(inc, 5, 6);
  EXPECT_TRUE(inc.Reaches(5, 6));
  EXPECT_FALSE(inc.Reaches(6, 5));
}

TEST(IncrementalClosureTest, MatchesRecomputationOnRandomStreams) {
  Rng rng(13579);
  for (int round = 0; round < 15; ++round) {
    IncrementalClosure inc;
    Relation base(2);
    size_t edges = 20 + rng.Below(30);
    for (size_t i = 0; i < edges; ++i) {
      Value x = rng.Below(10);
      Value y = rng.Below(10);
      MustAdd(inc, x, y);
      base.Insert({x, y});
      // Spot-check after every few insertions.
      if (i % 5 == 4) {
        Relation recomputed = BinaryTransitiveClosure(base);
        ASSERT_EQ(inc.closure().SortedTuples(),
                  recomputed.SortedTuples())
            << "after " << (i + 1) << " edges, seed round " << round;
      }
    }
    Relation recomputed = BinaryTransitiveClosure(base);
    EXPECT_EQ(inc.closure().SortedTuples(), recomputed.SortedTuples());
  }
}

TEST(IncrementalClosureTest, SeedThenMaintainMatchesFromScratch) {
  Relation base(2);
  base.Insert({0, 1});
  base.Insert({1, 2});
  IncrementalClosure inc;
  inc.Seed(base, BinaryTransitiveClosure(base));
  EXPECT_EQ(inc.closure().size(), 3u);
  EXPECT_EQ(MustAdd(inc, 2, 3), 3u);  // (2,3), (1,3), (0,3)
  Relation full = base;
  full.Insert({2, 3});
  EXPECT_EQ(inc.closure().SortedTuples(),
            BinaryTransitiveClosure(full).SortedTuples());
}

TEST(IncrementalClosureTest, MoveTransfersStateAndCharge) {
  IncrementalClosure inc;
  MustAdd(inc, 0, 1);
  MustAdd(inc, 1, 2);
  size_t bytes = inc.ApproxBytes();
  EXPECT_GT(bytes, 0u);
  IncrementalClosure moved = std::move(inc);
  EXPECT_EQ(moved.ApproxBytes(), bytes);
  EXPECT_TRUE(moved.Reaches(0, 2));
  EXPECT_EQ(inc.ApproxBytes(), 0u);  // NOLINT(bugprone-use-after-move)
}

// Regression for the serving-path bug (ISSUE 10 satellite 1): AddEdge used
// to run the sources × targets product with no deadline polling, so the
// edge completing a large bipartite hub stalled the caller for the whole
// O(V^2) product. With an expired deadline installed, the call must unwind
// with kDeadlineExceeded instead.
TEST(IncrementalClosureTest, ExpiredDeadlineStopsLargeDeltaProduct) {
  IncrementalClosure inc;
  // Star: many predecessors of 0, many successors of 1. The (0, 1) insert
  // then has a delta product of ~kFan^2 pairs.
  constexpr Value kFan = 200;
  for (Value i = 0; i < kFan; ++i) {
    MustAdd(inc, 2 + i, 0);
    MustAdd(inc, 1, 2 + kFan + i);
  }
  ExecContext ctx(Deadline::AfterNanos(-1));
  ScopedExecContext installed(&ctx);
  auto delta = inc.AddEdge(0, 1);
  ASSERT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(IncrementalClosureTest, MemoryBudgetStopsLargeDeltaProduct) {
  IncrementalClosure inc;
  constexpr Value kFan = 200;
  for (Value i = 0; i < kFan; ++i) {
    MustAdd(inc, 2 + i, 0);
    MustAdd(inc, 1, 2 + kFan + i);
  }
  MemContext mem(/*budget_bytes=*/1024);
  ScopedMemContext installed(&mem);
  auto delta = inc.AddEdge(0, 1);
  ASSERT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kResourceExhausted);
}

TEST(IncrementalClosureTest, OverBudgetLeavesClosureUntouched) {
  IncrementalClosure inc;
  MustAdd(inc, 0, 1);
  MustAdd(inc, 1, 2);
  MustAdd(inc, 3, 4);
  size_t before = inc.closure().size();
  // (2, 3) bridges {0,1,2} × {3,4}: delta product 3 × 2 = 6 > 1.
  auto delta = inc.AddEdge(2, 3, /*max_delta_product=*/1);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_TRUE(delta->over_budget);
  EXPECT_EQ(delta->pairs_added, 0u);
  // Base recorded the edge; the closure was not extended.
  EXPECT_TRUE(inc.base().Contains({2, 3}));
  EXPECT_EQ(inc.closure().size(), before);
}

TEST(IncrementalClosureTest, BudgetLargeEnoughStillCompletes) {
  IncrementalClosure inc;
  MustAdd(inc, 0, 1);
  auto delta = inc.AddEdge(1, 2, /*max_delta_product=*/64);
  ASSERT_TRUE(delta.ok());
  EXPECT_FALSE(delta->over_budget);
  EXPECT_EQ(delta->pairs_added, 2u);
}

TEST(PerLabelClosureTest, UntrackedLabelIsIgnored) {
  PerLabelClosure per_label;
  auto added = per_label.AddEdge(0, 1, 2);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 0u);
  EXPECT_FALSE(per_label.live(0));
  EXPECT_EQ(per_label.closure(0), nullptr);
  EXPECT_EQ(per_label.num_live(), 0u);
}

TEST(PerLabelClosureTest, SeededLabelMaintainsClosure) {
  PerLabelClosure per_label;
  Relation base(2);
  base.Insert({0, 1});
  per_label.Seed(7, base, BinaryTransitiveClosure(base));
  ASSERT_TRUE(per_label.live(7));

  auto added = per_label.AddEdge(7, 1, 2);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 2u);  // (1,2), (0,2)
  const Relation* closure = per_label.closure(7);
  ASSERT_NE(closure, nullptr);
  EXPECT_TRUE(closure->Contains({0, 2}));
  // Other labels remain untracked.
  EXPECT_FALSE(per_label.live(8));
}

TEST(PerLabelClosureTest, OverBudgetDemotesLabel) {
  obs::CounterDelta counters;
  PerLabelClosure per_label(/*max_delta_product=*/1);
  Relation base(2);
  base.Insert({0, 1});
  base.Insert({1, 2});
  base.Insert({3, 4});
  per_label.Seed(3, base, BinaryTransitiveClosure(base));
  ASSERT_TRUE(per_label.live(3));

  // Bridging edge blows the product bound: label demoted, no error.
  auto added = per_label.AddEdge(3, 2, 3);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, 0u);
  EXPECT_FALSE(per_label.live(3));
  EXPECT_EQ(per_label.closure(3), nullptr);
  EXPECT_GE(counters.Delta("incr.fallbacks"), 1u);

  // Demoted labels swallow further inserts until re-seeded.
  auto again = per_label.AddEdge(3, 5, 6);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);

  // Re-seeding promotes the label back to live.
  Relation full = base;
  full.Insert({2, 3});
  full.Insert({5, 6});
  per_label.Seed(3, full, BinaryTransitiveClosure(full));
  EXPECT_TRUE(per_label.live(3));
}

TEST(PerLabelClosureTest, ResourceTripDemotesAndPropagates) {
  PerLabelClosure per_label;
  Relation base(2);
  constexpr Value kFan = 200;
  for (Value i = 0; i < kFan; ++i) {
    base.Insert({2 + i, 0});
    base.Insert({1, 2 + kFan + i});
  }
  per_label.Seed(0, base, BinaryTransitiveClosure(base));
  ASSERT_TRUE(per_label.live(0));

  ExecContext ctx(Deadline::AfterNanos(-1));
  ScopedExecContext installed(&ctx);
  auto added = per_label.AddEdge(0, 0, 1);
  ASSERT_FALSE(added.ok());
  EXPECT_EQ(added.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(per_label.live(0));
}

// Property differential test (ISSUE 10 satellite 4): random interleaved
// per-label edge inserts; after every insert the maintained closures must
// agree exactly with a from-scratch semi-naive TC over the label's base
// edges — both for the raw IncrementalClosure and for the per-label
// generalization the serving path uses.
TEST(PerLabelClosureTest, DifferentialAgainstSemiNaiveRecomputation) {
  Rng rng(246813579);
  constexpr uint32_t kLabels = 3;
  for (int round = 0; round < 8; ++round) {
    PerLabelClosure per_label;
    std::vector<Relation> bases;
    for (uint32_t l = 0; l < kLabels; ++l) {
      bases.emplace_back(2);
      per_label.Seed(l, Relation(2), Relation(2));
    }
    size_t edges = 30 + rng.Below(40);
    for (size_t i = 0; i < edges; ++i) {
      uint32_t label = static_cast<uint32_t>(rng.Below(kLabels));
      Value x = rng.Below(12);
      Value y = rng.Below(12);
      bases[label].Insert({x, y});
      auto added = per_label.AddEdge(label, x, y);
      ASSERT_TRUE(added.ok()) << added.status().ToString();
      for (uint32_t l = 0; l < kLabels; ++l) {
        ASSERT_TRUE(per_label.live(l));
        const Relation* closure = per_label.closure(l);
        ASSERT_NE(closure, nullptr);
        ASSERT_EQ(closure->SortedTuples(),
                  BinaryTransitiveClosure(bases[l]).SortedTuples())
            << "label " << l << " after " << (i + 1) << " edges, round "
            << round;
      }
    }
  }
}

TEST(PerLabelClosureTest, PairsAddedCounterTracksLiveMaintenance) {
  obs::CounterDelta counters;
  PerLabelClosure per_label;
  per_label.Seed(0, Relation(2), Relation(2));
  auto a = per_label.AddEdge(0, 0, 1);
  auto b = per_label.AddEdge(0, 1, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a + *b, 3u);
  EXPECT_EQ(counters.Delta("incr.pairs_added"), 3u);
}

}  // namespace
}  // namespace rq

// The RQ → Datalog embedding of paper §4.1.
//
// Every RQ operator maps to nonrecursive Datalog rules except transitive
// closure, which maps to the two TC rules
//     Qtc(x, y) :- Q(x, y).
//     Qtc(x, z) :- Qtc(x, y), Q(y, z).
// — recursion is used only to express transitive closure, which is exactly
// the GRQ fragment. The translated program therefore always satisfies
// AnalyzeGrq (tested), and evaluating it agrees with direct RQ evaluation
// (tested + benchmarked in bench_rq_to_datalog).
#ifndef RQ_RQ_TO_DATALOG_H_
#define RQ_RQ_TO_DATALOG_H_

#include <string_view>

#include "common/status.h"
#include "datalog/program.h"
#include "rq/rq_expr.h"

namespace rq {

// Translates the query into a Datalog program whose goal predicate
// `goal_name` computes EvalRqQuery's answer. Subquery predicates are named
// "<goal_name>_<k>". Fails if a predicate in the query collides with a
// generated name.
Result<DatalogProgram> RqToDatalog(const RqQuery& query,
                                   std::string_view goal_name = "q");

}  // namespace rq

#endif  // RQ_RQ_TO_DATALOG_H_

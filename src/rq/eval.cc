#include "rq/eval.h"

#include <algorithm>
#include <map>

#include "obs/flight_recorder.h"
#include "obs/subsystems.h"
#include "obs/trace.h"
#include "relational/matcher.h"

namespace rq {

Result<size_t> FindColumn(const std::vector<VarId>& vars, VarId v) {
  auto it = std::lower_bound(vars.begin(), vars.end(), v);
  if (it == vars.end() || *it != v) {
    return InvalidArgumentError(
        "RQ eval: variable v" + std::to_string(v) +
        " is not a column of the subresult (malformed expression)");
  }
  return static_cast<size_t>(it - vars.begin());
}

Relation BinaryTransitiveClosure(const Relation& base) {
  RQ_CHECK(base.arity() == 2);
  Relation total(2);
  total.InsertAll(base);
  Relation delta(2);
  delta.InsertAll(base);
  while (!delta.empty()) {
    Relation next(2);
    for (const Tuple& t : delta.tuples()) {
      for (uint32_t row : base.RowsWithValue(0, t[1])) {
        Tuple joined{t[0], base.tuples()[row][1]};
        if (!total.Contains(joined)) next.Insert(joined);
      }
    }
    total.InsertAll(next);
    delta = std::move(next);
  }
  obs::RqCounters::Get().closure_tuples.Add(total.size());
  return total;
}

Result<RqRelation> EvalRqExpr(const Database& db, const RqExpr& e) {
  switch (e.kind()) {
    case RqExpr::Kind::kAtom: {
      RqRelation out;
      out.vars = e.FreeVars();
      out.relation = Relation(out.vars.size());
      const Relation* stored = db.Find(e.predicate());
      if (stored == nullptr) return out;
      if (stored->arity() != e.atom_vars().size()) {
        return InvalidArgumentError("RQ atom " + e.predicate() +
                                    " arity mismatch with database");
      }
      // Column of each atom position, resolved once up front.
      std::vector<size_t> col_of_pos;
      col_of_pos.reserve(e.atom_vars().size());
      for (VarId v : e.atom_vars()) {
        RQ_ASSIGN_OR_RETURN(size_t col, FindColumn(out.vars, v));
        col_of_pos.push_back(col);
      }
      for (const Tuple& t : stored->tuples()) {
        // Repeated variables filter; then project onto sorted free vars.
        bool ok = true;
        Tuple projected(out.vars.size());
        for (size_t i = 0; i < e.atom_vars().size() && ok; ++i) {
          size_t col = col_of_pos[i];
          // First write wins; later occurrences must agree.
          bool first = true;
          for (size_t j = 0; j < i; ++j) {
            if (e.atom_vars()[j] == e.atom_vars()[i]) {
              first = false;
              break;
            }
          }
          if (first) {
            projected[col] = t[i];
          } else if (projected[col] != t[i]) {
            ok = false;
          }
        }
        if (ok) out.relation.Insert(projected);
      }
      return out;
    }
    case RqExpr::Kind::kAnd: {
      // Natural join via the generic matcher over materialized children.
      std::vector<RqRelation> parts;
      parts.reserve(e.children().size());
      uint32_t num_vars = 0;
      for (const RqExprPtr& c : e.children()) {
        RQ_ASSIGN_OR_RETURN(RqRelation part, EvalRqExpr(db, *c));
        if (!part.vars.empty()) {
          num_vars = std::max(num_vars, part.vars.back() + 1);
        }
        parts.push_back(std::move(part));
      }
      std::vector<MatchAtom> atoms;
      atoms.reserve(parts.size());
      for (const RqRelation& part : parts) {
        atoms.push_back({&part.relation, part.vars});
      }
      RqRelation out;
      out.vars = e.FreeVars();
      out.relation = Relation(out.vars.size());
      MatchConjunction(atoms, num_vars,
                       [&](const std::vector<Value>& binding) {
                         Tuple t;
                         t.reserve(out.vars.size());
                         for (VarId v : out.vars) t.push_back(binding[v]);
                         out.relation.Insert(t);
                         return true;
                       });
      return out;
    }
    case RqExpr::Kind::kOr: {
      RqRelation out;
      out.vars = e.FreeVars();
      out.relation = Relation(out.vars.size());
      for (const RqExprPtr& c : e.children()) {
        RQ_ASSIGN_OR_RETURN(RqRelation part, EvalRqExpr(db, *c));
        // Children share the same free vars, hence the same column order.
        out.relation.InsertAll(part.relation);
      }
      return out;
    }
    case RqExpr::Kind::kExists: {
      RQ_ASSIGN_OR_RETURN(RqRelation child,
                          EvalRqExpr(db, *e.children()[0]));
      RqRelation out;
      out.vars = e.FreeVars();
      out.relation = Relation(out.vars.size());
      std::vector<size_t> keep;
      keep.reserve(out.vars.size());
      for (VarId v : out.vars) {
        RQ_ASSIGN_OR_RETURN(size_t col, FindColumn(child.vars, v));
        keep.push_back(col);
      }
      for (const Tuple& t : child.relation.tuples()) {
        Tuple projected;
        projected.reserve(keep.size());
        for (size_t col : keep) projected.push_back(t[col]);
        out.relation.Insert(projected);
      }
      return out;
    }
    case RqExpr::Kind::kEq: {
      RQ_ASSIGN_OR_RETURN(RqRelation child,
                          EvalRqExpr(db, *e.children()[0]));
      RQ_ASSIGN_OR_RETURN(size_t ca, FindColumn(child.vars, e.eq_a()));
      RQ_ASSIGN_OR_RETURN(size_t cb, FindColumn(child.vars, e.eq_b()));
      RqRelation out;
      out.vars = child.vars;
      out.relation = Relation(out.vars.size());
      for (const Tuple& t : child.relation.tuples()) {
        if (t[ca] == t[cb]) out.relation.Insert(t);
      }
      return out;
    }
    case RqExpr::Kind::kClosure: {
      RQ_ASSIGN_OR_RETURN(RqRelation child,
                          EvalRqExpr(db, *e.children()[0]));
      // Orient columns (from, to) for the closure; remaining columns are
      // parameters, fixed along a chain: group by them and close per group.
      RQ_ASSIGN_OR_RETURN(size_t cf,
                          FindColumn(child.vars, e.closure_from()));
      RQ_ASSIGN_OR_RETURN(size_t ct, FindColumn(child.vars, e.closure_to()));
      std::vector<size_t> param_cols;
      for (size_t col = 0; col < child.vars.size(); ++col) {
        if (col != cf && col != ct) param_cols.push_back(col);
      }
      std::map<Tuple, Relation> groups;
      for (const Tuple& t : child.relation.tuples()) {
        Tuple params;
        params.reserve(param_cols.size());
        for (size_t col : param_cols) params.push_back(t[col]);
        auto [it, inserted] = groups.try_emplace(std::move(params),
                                                 Relation(2));
        it->second.Insert({t[cf], t[ct]});
      }
      RqRelation out;
      out.vars = e.FreeVars();
      out.relation = Relation(out.vars.size());
      for (const auto& [params, oriented] : groups) {
        Relation closed = BinaryTransitiveClosure(oriented);
        for (const Tuple& t : closed.tuples()) {
          Tuple row(out.vars.size());
          row[cf] = t[0];
          row[ct] = t[1];
          for (size_t i = 0; i < param_cols.size(); ++i) {
            row[param_cols[i]] = params[i];
          }
          out.relation.Insert(std::move(row));
        }
      }
      return out;
    }
  }
  RQ_CHECK(false);
  return InvalidArgumentError("unreachable");
}

Result<Relation> EvalRqQuery(const Database& db, const RqQuery& query) {
  RQ_TRACE_SPAN("rq.eval");
  obs::FlightTimer timer(obs::QueryKind::kRqEval);
  obs::RqCounters::Get().evals.Increment();
  RQ_RETURN_IF_ERROR(query.Validate());
  RQ_ASSIGN_OR_RETURN(RqRelation result, EvalRqExpr(db, *query.root));
  Relation out(query.head.size());
  std::vector<size_t> cols;
  cols.reserve(query.head.size());
  for (VarId v : query.head) {
    RQ_ASSIGN_OR_RETURN(size_t col, FindColumn(result.vars, v));
    cols.push_back(col);
  }
  for (const Tuple& t : result.relation.tuples()) {
    Tuple projected;
    projected.reserve(cols.size());
    for (size_t col : cols) projected.push_back(t[col]);
    out.Insert(projected);
  }
  timer.Finish(obs::kFlightVerdictOk, out.tuples().size());
  return out;
}

Database GraphToDatabase(const GraphDb& graph) {
  Database db;
  for (uint32_t label = 0; label < graph.alphabet().num_labels(); ++label) {
    db.GetOrCreate(graph.alphabet().LabelName(label), 2).value();
  }
  for (const Edge& e : graph.edges()) {
    Relation* rel =
        db.FindMutable(graph.alphabet().LabelName(e.label));
    rel->Insert({e.src, e.dst});
  }
  return db;
}

}  // namespace rq

// The Regular Query algebra (paper §3.4).
//
// RQ is the closure of atomic queries under selection, projection,
// disjunction, conjunction, and transitive closure:
//   * Atom        — r(x1,...,xk); binary over graph databases (RQ proper),
//                   arbitrary arity for the GRQ generalization (§4.1).
//   * And / Or    — conjunction and disjunction. Disjuncts must share the
//                   same free variables.
//   * Exists      — projection: existentially quantifies variables away.
//   * Eq          — selection Q ∧ y = z; both variables stay free.
//   * Closure     — transitive closure Q+ over a pair of free variables;
//                   extra free variables act as fixed parameters.
//
// Expressions are immutable trees built through the static factories, which
// enforce the well-formedness rules above (RQ_CHECK: violations are
// programming errors; the parser reports user errors as Status before
// constructing nodes). Free variables are computed at construction.
#ifndef RQ_RQ_RQ_EXPR_H_
#define RQ_RQ_RQ_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/matcher.h"

namespace rq {

class RqExpr;
using RqExprPtr = std::shared_ptr<const RqExpr>;

class RqExpr {
 public:
  enum class Kind { kAtom, kAnd, kOr, kExists, kEq, kClosure };

  static RqExprPtr Atom(std::string predicate, std::vector<VarId> vars);
  // Conjunction; at least one child.
  static RqExprPtr And(std::vector<RqExprPtr> children);
  // Disjunction; children must have identical free-variable sets.
  static RqExprPtr Or(std::vector<RqExprPtr> children);
  // Projection: `vars` (nonempty, free in child) become bound.
  static RqExprPtr Exists(std::vector<VarId> vars, RqExprPtr child);
  // Selection: a and b must be free in child and distinct.
  static RqExprPtr Eq(VarId a, VarId b, RqExprPtr child);
  // Transitive closure over the (from, to) pair: both must be free in the
  // child and distinct. Any further free variables of the child are
  // parameters: they remain free in the closure and are held fixed along
  // the whole chain (Q⁺(x, y, p̄) iff a chain x = z0, ..., zk = y exists
  // with Q(z_i, z_{i+1}, p̄) for every link).
  static RqExprPtr Closure(VarId from, VarId to, RqExprPtr child);

  Kind kind() const { return kind_; }
  const std::string& predicate() const { return predicate_; }
  const std::vector<VarId>& atom_vars() const { return atom_vars_; }
  const std::vector<RqExprPtr>& children() const { return children_; }
  const std::vector<VarId>& bound_vars() const { return bound_vars_; }
  VarId eq_a() const { return var_a_; }
  VarId eq_b() const { return var_b_; }
  VarId closure_from() const { return var_a_; }
  VarId closure_to() const { return var_b_; }

  // Sorted, deduplicated free variables.
  const std::vector<VarId>& FreeVars() const { return free_vars_; }

  size_t Size() const;
  bool UsesClosure() const;
  // One past the largest variable id anywhere in the tree (free or bound).
  uint32_t MaxVarIdPlus1() const;
  // Predicate names used, sorted and deduplicated.
  std::vector<std::string> Predicates() const;

  // Renders with names[v] when available, else "v<k>".
  std::string ToString(const std::vector<std::string>& names = {}) const;

 private:
  RqExpr() = default;

  Kind kind_ = Kind::kAtom;
  std::string predicate_;
  std::vector<VarId> atom_vars_;
  std::vector<RqExprPtr> children_;
  std::vector<VarId> bound_vars_;
  VarId var_a_ = 0;
  VarId var_b_ = 0;
  std::vector<VarId> free_vars_;
};

// A complete query: an expression plus the output variable order.
struct RqQuery {
  RqExprPtr root;
  std::vector<VarId> head;             // each must be free in root
  std::vector<std::string> var_names;  // id -> name (optional)

  size_t arity() const { return head.size(); }
  Status Validate() const;
  std::string ToString() const;
};

// Substitutes free variables per `mapping` (identity where absent) and
// renames every bound variable to a fresh id drawn from *next_var. Callers
// embedding one expression inside another use this to keep variable scopes
// disjoint.
RqExprPtr SubstituteFreeVars(
    const RqExprPtr& expr,
    const std::vector<std::pair<VarId, VarId>>& mapping, uint32_t* next_var);

// Compose(e1, e2): both binary with free vars {0, 1}; the relational
// composition Exists[m](e1(0,m) & e2(m,1)) with fresh m, free vars {0, 1}.
RqExprPtr ComposeBinary(const RqExprPtr& e1, const RqExprPtr& e2,
                        uint32_t* next_var);

}  // namespace rq

#endif  // RQ_RQ_RQ_EXPR_H_

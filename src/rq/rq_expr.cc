#include "rq/rq_expr.h"

#include <algorithm>
#include <unordered_map>

namespace rq {

namespace {

std::vector<VarId> SortedUnique(std::vector<VarId> vars) {
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

bool IsFree(const RqExprPtr& e, VarId v) {
  const auto& fv = e->FreeVars();
  return std::binary_search(fv.begin(), fv.end(), v);
}

}  // namespace

RqExprPtr RqExpr::Atom(std::string predicate, std::vector<VarId> vars) {
  RQ_CHECK(!predicate.empty());
  RQ_CHECK(!vars.empty());
  auto e = std::shared_ptr<RqExpr>(new RqExpr());
  e->kind_ = Kind::kAtom;
  e->predicate_ = std::move(predicate);
  e->atom_vars_ = vars;
  e->free_vars_ = SortedUnique(std::move(vars));
  return e;
}

RqExprPtr RqExpr::And(std::vector<RqExprPtr> children) {
  RQ_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  auto e = std::shared_ptr<RqExpr>(new RqExpr());
  e->kind_ = Kind::kAnd;
  std::vector<VarId> frees;
  for (const RqExprPtr& c : children) {
    frees.insert(frees.end(), c->FreeVars().begin(), c->FreeVars().end());
  }
  e->free_vars_ = SortedUnique(std::move(frees));
  e->children_ = std::move(children);
  return e;
}

RqExprPtr RqExpr::Or(std::vector<RqExprPtr> children) {
  RQ_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  for (size_t i = 1; i < children.size(); ++i) {
    RQ_CHECK(children[i]->FreeVars() == children[0]->FreeVars());
  }
  auto e = std::shared_ptr<RqExpr>(new RqExpr());
  e->kind_ = Kind::kOr;
  e->free_vars_ = children[0]->FreeVars();
  e->children_ = std::move(children);
  return e;
}

RqExprPtr RqExpr::Exists(std::vector<VarId> vars, RqExprPtr child) {
  RQ_CHECK(!vars.empty());
  vars = SortedUnique(std::move(vars));
  for (VarId v : vars) RQ_CHECK(IsFree(child, v));
  auto e = std::shared_ptr<RqExpr>(new RqExpr());
  e->kind_ = Kind::kExists;
  std::vector<VarId> frees;
  for (VarId v : child->FreeVars()) {
    if (!std::binary_search(vars.begin(), vars.end(), v)) {
      frees.push_back(v);
    }
  }
  e->free_vars_ = std::move(frees);
  e->bound_vars_ = std::move(vars);
  e->children_ = {std::move(child)};
  return e;
}

RqExprPtr RqExpr::Eq(VarId a, VarId b, RqExprPtr child) {
  RQ_CHECK(a != b);
  RQ_CHECK(IsFree(child, a) && IsFree(child, b));
  auto e = std::shared_ptr<RqExpr>(new RqExpr());
  e->kind_ = Kind::kEq;
  e->var_a_ = a;
  e->var_b_ = b;
  e->free_vars_ = child->FreeVars();
  e->children_ = {std::move(child)};
  return e;
}

RqExprPtr RqExpr::Closure(VarId from, VarId to, RqExprPtr child) {
  RQ_CHECK(from != to);
  RQ_CHECK(IsFree(child, from) && IsFree(child, to));
  auto e = std::shared_ptr<RqExpr>(new RqExpr());
  e->kind_ = Kind::kClosure;
  e->var_a_ = from;
  e->var_b_ = to;
  // Free variables besides the endpoints are parameters: they stay free and
  // are held fixed along the whole chain.
  e->free_vars_ = child->FreeVars();
  e->children_ = {std::move(child)};
  return e;
}

size_t RqExpr::Size() const {
  size_t n = 1;
  for (const RqExprPtr& c : children_) n += c->Size();
  return n;
}

bool RqExpr::UsesClosure() const {
  if (kind_ == Kind::kClosure) return true;
  for (const RqExprPtr& c : children_) {
    if (c->UsesClosure()) return true;
  }
  return false;
}

uint32_t RqExpr::MaxVarIdPlus1() const {
  uint32_t n = 0;
  for (VarId v : atom_vars_) n = std::max(n, v + 1);
  for (VarId v : bound_vars_) n = std::max(n, v + 1);
  if (kind_ == Kind::kEq || kind_ == Kind::kClosure) {
    n = std::max({n, var_a_ + 1, var_b_ + 1});
  }
  for (const RqExprPtr& c : children_) n = std::max(n, c->MaxVarIdPlus1());
  return n;
}

std::vector<std::string> RqExpr::Predicates() const {
  std::vector<std::string> out;
  if (kind_ == Kind::kAtom) out.push_back(predicate_);
  for (const RqExprPtr& c : children_) {
    std::vector<std::string> sub = c->Predicates();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

std::string NameOf(const std::vector<std::string>& names, VarId v) {
  if (v < names.size() && !names[v].empty()) return names[v];
  return "v" + std::to_string(v);
}

}  // namespace

std::string RqExpr::ToString(const std::vector<std::string>& names) const {
  switch (kind_) {
    case Kind::kAtom: {
      std::string out = predicate_ + "(";
      for (size_t i = 0; i < atom_vars_.size(); ++i) {
        if (i > 0) out += ", ";
        out += NameOf(names, atom_vars_[i]);
      }
      return out + ")";
    }
    case Kind::kAnd: {
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += " & ";
        out += children_[i]->ToString(names);
      }
      return out + ")";
    }
    case Kind::kOr: {
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += " | ";
        out += children_[i]->ToString(names);
      }
      return out + ")";
    }
    case Kind::kExists: {
      std::string out = "exists[";
      for (size_t i = 0; i < bound_vars_.size(); ++i) {
        if (i > 0) out += ", ";
        out += NameOf(names, bound_vars_[i]);
      }
      return out + "](" + children_[0]->ToString(names) + ")";
    }
    case Kind::kEq:
      return "eq[" + NameOf(names, var_a_) + ", " + NameOf(names, var_b_) +
             "](" + children_[0]->ToString(names) + ")";
    case Kind::kClosure:
      return "tc[" + NameOf(names, var_a_) + ", " + NameOf(names, var_b_) +
             "](" + children_[0]->ToString(names) + ")";
  }
  RQ_CHECK(false);
  return "";
}

Status RqQuery::Validate() const {
  if (root == nullptr) return InvalidArgumentError("RqQuery: null root");
  if (head.empty()) return InvalidArgumentError("RqQuery: empty head");
  for (VarId v : head) {
    const auto& fv = root->FreeVars();
    if (!std::binary_search(fv.begin(), fv.end(), v)) {
      return InvalidArgumentError(
          "RqQuery: head variable not free in the expression");
    }
  }
  return Status::Ok();
}

std::string RqQuery::ToString() const {
  std::string out = "q(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += NameOf(var_names, head[i]);
  }
  out += ") := ";
  out += root == nullptr ? "<null>" : root->ToString(var_names);
  return out;
}

namespace {

RqExprPtr SubstituteImpl(const RqExprPtr& expr,
                         std::unordered_map<VarId, VarId>& env,
                         uint32_t* next_var) {
  auto lookup = [&](VarId v) {
    auto it = env.find(v);
    return it == env.end() ? v : it->second;
  };
  switch (expr->kind()) {
    case RqExpr::Kind::kAtom: {
      std::vector<VarId> vars;
      vars.reserve(expr->atom_vars().size());
      for (VarId v : expr->atom_vars()) vars.push_back(lookup(v));
      return RqExpr::Atom(expr->predicate(), std::move(vars));
    }
    case RqExpr::Kind::kAnd:
    case RqExpr::Kind::kOr: {
      std::vector<RqExprPtr> children;
      children.reserve(expr->children().size());
      for (const RqExprPtr& c : expr->children()) {
        children.push_back(SubstituteImpl(c, env, next_var));
      }
      return expr->kind() == RqExpr::Kind::kAnd
                 ? RqExpr::And(std::move(children))
                 : RqExpr::Or(std::move(children));
    }
    case RqExpr::Kind::kExists: {
      // Bound variables get fresh ids; restore the outer env afterwards.
      std::vector<std::pair<VarId, bool>> saved;  // var, had_entry
      std::vector<VarId> old_values;
      std::vector<VarId> fresh;
      for (VarId v : expr->bound_vars()) {
        VarId nv = (*next_var)++;
        fresh.push_back(nv);
        auto it = env.find(v);
        if (it != env.end()) {
          saved.push_back({v, true});
          old_values.push_back(it->second);
          it->second = nv;
        } else {
          saved.push_back({v, false});
          old_values.push_back(0);
          env.emplace(v, nv);
        }
      }
      RqExprPtr child = SubstituteImpl(expr->children()[0], env, next_var);
      for (size_t i = 0; i < saved.size(); ++i) {
        if (saved[i].second) {
          env[saved[i].first] = old_values[i];
        } else {
          env.erase(saved[i].first);
        }
      }
      return RqExpr::Exists(std::move(fresh), std::move(child));
    }
    case RqExpr::Kind::kEq: {
      VarId a = lookup(expr->eq_a());
      VarId b = lookup(expr->eq_b());
      RqExprPtr child = SubstituteImpl(expr->children()[0], env, next_var);
      // A substitution that merges the two selected variables makes the
      // selection trivially true.
      if (a == b) return child;
      return RqExpr::Eq(a, b, std::move(child));
    }
    case RqExpr::Kind::kClosure:
      return RqExpr::Closure(
          lookup(expr->closure_from()), lookup(expr->closure_to()),
          SubstituteImpl(expr->children()[0], env, next_var));
  }
  RQ_CHECK(false);
  return nullptr;
}

}  // namespace

RqExprPtr SubstituteFreeVars(
    const RqExprPtr& expr,
    const std::vector<std::pair<VarId, VarId>>& mapping, uint32_t* next_var) {
  std::unordered_map<VarId, VarId> env;
  for (const auto& [from, to] : mapping) env.emplace(from, to);
  return SubstituteImpl(expr, env, next_var);
}

RqExprPtr ComposeBinary(const RqExprPtr& e1, const RqExprPtr& e2,
                        uint32_t* next_var) {
  RQ_CHECK(e1->FreeVars() == (std::vector<VarId>{0, 1}));
  RQ_CHECK(e2->FreeVars() == (std::vector<VarId>{0, 1}));
  VarId m = (*next_var)++;
  RqExprPtr left = SubstituteFreeVars(e1, {{1, m}}, next_var);
  RqExprPtr right = SubstituteFreeVars(e2, {{0, m}}, next_var);
  return RqExpr::Exists({m},
                        RqExpr::And({std::move(left), std::move(right)}));
}

}  // namespace rq

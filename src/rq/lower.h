// Best-effort lowering of binary Regular Queries to 2RPQs.
//
// The 2RPQ-expressible fragment of RQ is exactly what you can build from
// binary atoms (in either orientation), composition chains
// (exists-projected middles), disjunction, and transitive closure. When a
// query lies in this fragment, containment is decidable by the exact
// PSPACE fold pipeline (Theorem 5) instead of the bounded expansion search,
// so the containment dispatcher tries this lowering first.
//
// TryLowerToRegex is sound: when it returns a regex, the regex's semipath
// semantics from `from` to `to` coincides with the expression's relation.
// It is deliberately not complete (e.g. conjunctions of parallel paths are
// not 2RPQs and are rejected).
#ifndef RQ_RQ_LOWER_H_
#define RQ_RQ_LOWER_H_

#include <optional>

#include "automata/alphabet.h"
#include "crpq/crpq.h"
#include "regex/regex.h"
#include "rq/rq_expr.h"

namespace rq {

// Lowers `e` viewed as a binary query from `from` to `to`. Both must be
// free in `e` and be its only free variables. Labels are interned into
// `alphabet`.
std::optional<RegexPtr> TryLowerToRegex(const RqExpr& e, VarId from, VarId to,
                                        Alphabet* alphabet);

// Lowers a whole query (head must be two distinct variables).
std::optional<RegexPtr> TryLowerQuery(const RqQuery& query,
                                      Alphabet* alphabet);

// Lowers a query into the UC2RPQ fragment (paper §3.3): a union of
// conjunctions of 2RPQ atoms. Succeeds when every disjunct flattens into
// conjuncts that are each path-shaped between two variables (closures only
// inside those paths), with non-head variables existential. Strictly more
// queries lower this way than to a single 2RPQ — e.g. the paper's Example 1
// patterns — which lets the containment dispatcher use the exact UC2RPQ
// procedure on finite-language instances.
std::optional<Uc2Rpq> TryLowerToUc2Rpq(const RqQuery& query,
                                       Alphabet* alphabet);

}  // namespace rq

#endif  // RQ_RQ_LOWER_H_

// Textual syntax for Regular Queries.
//
//   query  := [ IDENT '(' vars ')' ':=' ] expr
//   expr   := and ( '|' and )*                 disjunction
//   and    := prim ( '&' prim )*               conjunction
//   prim   := IDENT '(' vars ')'               atom
//           | 'exists' '[' vars ']' '(' expr ')'   projection
//           | 'tc' '[' v ',' v ']' '(' expr ')'    transitive closure
//           | 'eq' '[' v ',' v ']' '(' expr ')'    selection
//           | '(' expr ')'
//
// Example — the transitive closure of the paper's triangle query (§3.4):
//   q(x, y) := tc[x,y]( exists[z]( r(x,y) & r(y,z) & r(z,x) ) )
// Without an explicit head, the head is the sorted free variables.
// 'exists', 'tc' and 'eq' are reserved words.
#ifndef RQ_RQ_PARSER_H_
#define RQ_RQ_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "rq/rq_expr.h"

namespace rq {

Result<RqQuery> ParseRq(std::string_view text);

}  // namespace rq

#endif  // RQ_RQ_PARSER_H_

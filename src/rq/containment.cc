#include "rq/containment.h"

#include "common/deadline.h"
#include "graph/generators.h"
#include "obs/flight_recorder.h"
#include "obs/profile.h"
#include "obs/subsystems.h"
#include "obs/trace.h"
#include "pathquery/containment.h"
#include "rq/eval.h"
#include "rq/lower.h"
#include "rq/structural.h"

namespace rq {

const char* CertaintyName(Certainty certainty) {
  switch (certainty) {
    case Certainty::kProved:
      return "proved";
    case Certainty::kRefuted:
      return "refuted";
    case Certainty::kUnknownUpToBound:
      return "unknown-up-to-bound";
  }
  return "?";
}

int32_t FlightVerdictFromCertainty(Certainty certainty) {
  switch (certainty) {
    case Certainty::kProved:
      return obs::kFlightVerdictOk;
    case Certainty::kRefuted:
      return obs::kFlightVerdictRefuted;
    case Certainty::kUnknownUpToBound:
      return obs::kFlightVerdictUnknown;
  }
  return obs::kFlightVerdictError;
}

namespace {

// Converts a 2RPQ counterexample word into a relational counterexample
// database (the canonical semipath) plus the witness pair.
void AttachSemipathCounterexample(const Alphabet& alphabet,
                                  const std::vector<Symbol>& word,
                                  RqContainmentResult* result) {
  SemipathWitness witness = BuildSemipathWitness(alphabet, word);
  result->counterexample = GraphToDatabase(witness.db);
  result->witness_tuple = {witness.start, witness.end};
}

// Dispatcher body; the public CheckRqContainment wraps it with flight
// recording and per-query profile annotation.
Result<RqContainmentResult> CheckRqContainmentImpl(
    const RqQuery& q1, const RqQuery& q2,
    const RqContainmentOptions& options) {
  RQ_TRACE_SPAN("rq.containment");
  RQ_RETURN_IF_ERROR(q1.Validate());
  RQ_RETURN_IF_ERROR(q2.Validate());
  if (q1.arity() != q2.arity()) {
    return InvalidArgumentError("CheckRqContainment: head arity mismatch");
  }
  RqContainmentResult result;

  // Step 1: exact 2RPQ dispatch (Theorem 5) when both sides are
  // path-shaped binary queries.
  if (options.try_two_rpq_dispatch && q1.arity() == 2) {
    Alphabet alphabet;
    std::optional<RegexPtr> r1 = TryLowerQuery(q1, &alphabet);
    std::optional<RegexPtr> r2 = TryLowerQuery(q2, &alphabet);
    if (r1.has_value() && r2.has_value()) {
      obs::RqCounters::Get().dispatch_2rpq.Increment();
      PathContainmentResult path =
          CheckPathQueryContainment(**r1, **r2, alphabet);
      RQ_RETURN_IF_ERROR(path.status);
      result.method = "2rpq-fold";
      if (path.contained) {
        result.certainty = Certainty::kProved;
      } else {
        result.certainty = Certainty::kRefuted;
        AttachSemipathCounterexample(alphabet, path.counterexample, &result);
      }
      return result;
    }
  }

  // Step 1.5: UC2RPQ dispatch (Theorem 6 level) when both sides lower to
  // unions of conjunctive 2RPQs. The UC2RPQ checker is exact on
  // finite-language instances and on single-atom pairs; its bounded
  // verdicts are ignored in favor of the RQ machinery below.
  if (options.try_two_rpq_dispatch) {
    Alphabet alphabet;
    std::optional<Uc2Rpq> u1 = TryLowerToUc2Rpq(q1, &alphabet);
    std::optional<Uc2Rpq> u2 =
        u1.has_value() ? TryLowerToUc2Rpq(q2, &alphabet) : std::nullopt;
    if (u1.has_value() && u2.has_value()) {
      RQ_ASSIGN_OR_RETURN(CrpqContainmentResult crpq,
                          CheckUc2RpqContainment(*u1, *u2, alphabet));
      if (crpq.certainty != Certainty::kUnknownUpToBound) {
        obs::RqCounters::Get().dispatch_uc2rpq.Increment();
        result.method = "uc2rpq:" + crpq.method;
        result.certainty = crpq.certainty;
        if (crpq.counterexample.has_value()) {
          result.counterexample = GraphToDatabase(*crpq.counterexample);
          result.witness_tuple = crpq.witness_tuple;
        }
        return result;
      }
    }
  }

  // Steps 2-3: expansion-based testing. Q2 evaluated on the canonical
  // database of each expansion of Q1 must answer the frozen head.
  RQ_ASSIGN_OR_RETURN(RqExpansions expansions,
                      ExpandRq(q1, options.expand));
  obs::RqCounters& counters = obs::RqCounters::Get();
  counters.dispatch_expansion.Increment();
  result.method =
      expansions.complete ? "expansion-exact" : "expansion-bounded";
  for (const ConjunctiveQuery& cq : expansions.expansions) {
    RQ_RETURN_IF_ERROR(CheckExecContext());
    ++result.expansions_checked;
    counters.expansion_checks.Increment();
    Database canonical = cq.CanonicalDatabase();
    RQ_ASSIGN_OR_RETURN(Relation answers, EvalRqQuery(canonical, q2));
    if (!answers.Contains(cq.FrozenHead())) {
      result.certainty = Certainty::kRefuted;
      result.counterexample = std::move(canonical);
      result.witness_tuple = cq.FrozenHead();
      return result;
    }
  }
  if (expansions.complete) {
    result.certainty = Certainty::kProved;
    return result;
  }
  // No counterexample within the bound and the expansion set is
  // incomplete: try the sound structural proof rules (TC-monotonicity,
  // disjunct selection, congruences) before settling for unknown.
  if (StructurallyContained(q1, q2, options)) {
    counters.dispatch_structural.Increment();
    result.certainty = Certainty::kProved;
    result.method = "structural";
    return result;
  }
  result.certainty = Certainty::kUnknownUpToBound;
  return result;
}

}  // namespace

Result<RqContainmentResult> CheckRqContainment(
    const RqQuery& q1, const RqQuery& q2,
    const RqContainmentOptions& options) {
  obs::FlightTimer timer(obs::QueryKind::kRqContainment);
  Result<RqContainmentResult> result =
      CheckRqContainmentImpl(q1, q2, options);
  if (!result.ok()) {
    timer.Finish(obs::FlightVerdictFromError(result.status()), 0);
    return result;
  }
  timer.Finish(FlightVerdictFromCertainty(result->certainty),
               result->expansions_checked);
  if (obs::QueryProfile* profile = obs::QueryProfile::Active()) {
    profile->AddNote("rq.method", result->method);
  }
  return result;
}

}  // namespace rq

// Containment for Regular Queries (paper §3.4, Theorem 7) and, through the
// GRQ bridge, for Datalog with TC-only recursion (§4.1, Theorem 8).
//
// The exact problem is 2EXPSPACE-complete; as the paper's §4.2 stresses,
// worst-case bounds say little about behavior on real instances. The
// dispatcher below is exact wherever an exact procedure is practical and
// honest about certainty everywhere else:
//
//   1. 2RPQ dispatch — if both queries lower to 2RPQs (binary, path-shaped),
//      run the exact PSPACE fold pipeline of Theorem 5. Verdicts are final.
//   2. Exact expansion test — Q1 ⊑ Q2 iff every expansion of Q1, frozen
//      into its canonical database, is answered by Q2 (Q2 is evaluable and
//      monotone, so each individual check is exact). If Q1 is closure-free
//      its expansion set is finite: the verdict is final.
//   3. Bounded expansion search — with closures on the left, expansions are
//      enumerated up to a bound. Any failing expansion is a certified
//      counterexample (final NO). Exhausting the bound yields
//      kUnknownUpToBound, never a claimed YES.
#ifndef RQ_RQ_CONTAINMENT_H_
#define RQ_RQ_CONTAINMENT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"
#include "relational/relation.h"
#include "rq/expand.h"
#include "rq/rq_expr.h"

namespace rq {

enum class Certainty {
  kProved,           // containment holds, exactly decided
  kRefuted,          // containment fails, certificate attached
  kUnknownUpToBound  // no counterexample within the configured bounds
};

const char* CertaintyName(Certainty certainty);

// Maps a certainty onto the flight recorder's verdict codes
// (obs/flight_recorder.h): proved → ok, refuted → refuted,
// unknown-up-to-bound → unknown. Shared by every containment entry point
// that records a flight summary.
int32_t FlightVerdictFromCertainty(Certainty certainty);

struct RqContainmentOptions {
  RqExpandLimits expand;
  bool try_two_rpq_dispatch = true;
};

struct RqContainmentResult {
  Certainty certainty = Certainty::kUnknownUpToBound;
  // Which procedure decided: "2rpq-fold", "expansion-exact",
  // "expansion-bounded".
  std::string method;
  // When refuted: a database on which q1 answers `witness_tuple` but q2
  // does not.
  std::optional<Database> counterexample;
  Tuple witness_tuple;
  size_t expansions_checked = 0;

  bool Contained() const { return certainty == Certainty::kProved; }
  bool Refuted() const { return certainty == Certainty::kRefuted; }
};

// Decides (or bounds) q1 ⊑ q2. Head arities must match.
Result<RqContainmentResult> CheckRqContainment(
    const RqQuery& q1, const RqQuery& q2,
    const RqContainmentOptions& options = {});

}  // namespace rq

#endif  // RQ_RQ_CONTAINMENT_H_

#include "rq/from_datalog.h"

#include <algorithm>
#include <unordered_map>

namespace rq {

namespace {

// Translation context: per-predicate canonical expressions whose free
// variables are exactly the positions 0..arity-1. EDB predicates map to
// nullptr (their atoms are emitted directly).
struct GrqTranslator {
  const DatalogProgram& program;
  std::vector<RqExprPtr> exprs;  // per PredId; nullptr for EDB
  std::vector<bool> is_edb;
  uint32_t next_var;

  explicit GrqTranslator(const DatalogProgram& p)
      : program(p),
        exprs(p.num_predicates()),
        is_edb(p.num_predicates(), true) {
    for (PredId pred : p.IdbPredicates()) is_edb[pred] = false;
    uint32_t max_rule_vars = 0;
    for (const DatalogRule& rule : p.rules()) {
      max_rule_vars = std::max(max_rule_vars, rule.num_vars);
    }
    next_var = 64 + max_rule_vars;
  }

  // Converts one body atom into a conjunct over the rule's variable space.
  Result<RqExprPtr> ConvertAtom(const DatalogAtom& atom) {
    if (is_edb[atom.predicate]) {
      return RqExpr::Atom(program.PredicateName(atom.predicate), atom.vars);
    }
    RqExprPtr stored = exprs[atom.predicate];
    RQ_CHECK(stored != nullptr);  // topological order guarantees this
    // Map position i to the atom's i-th variable. Repeated variables map
    // later positions to fresh stand-ins equated with the first occurrence.
    std::vector<std::pair<VarId, VarId>> mapping;
    std::vector<std::pair<VarId, VarId>> equate;  // (target, stand-in)
    std::vector<VarId> stand_ins;
    for (size_t i = 0; i < atom.vars.size(); ++i) {
      bool repeat = false;
      for (size_t j = 0; j < i; ++j) {
        if (atom.vars[j] == atom.vars[i]) {
          repeat = true;
          break;
        }
      }
      if (!repeat) {
        mapping.push_back({static_cast<VarId>(i), atom.vars[i]});
      } else {
        VarId w = next_var++;
        mapping.push_back({static_cast<VarId>(i), w});
        equate.push_back({atom.vars[i], w});
        stand_ins.push_back(w);
      }
    }
    RqExprPtr out = SubstituteFreeVars(stored, mapping, &next_var);
    for (const auto& [target, stand_in] : equate) {
      out = RqExpr::Eq(target, stand_in, std::move(out));
    }
    if (!stand_ins.empty()) {
      out = RqExpr::Exists(std::move(stand_ins), std::move(out));
    }
    return out;
  }

  // Converts a rule body (a subset of atoms) into an expression whose free
  // variables are exactly `interface` (all other body variables projected).
  Result<RqExprPtr> ConvertBody(const std::vector<const DatalogAtom*>& atoms,
                                const std::vector<VarId>& interface) {
    RQ_CHECK(!atoms.empty());
    std::vector<RqExprPtr> conjuncts;
    conjuncts.reserve(atoms.size());
    for (const DatalogAtom* atom : atoms) {
      RQ_ASSIGN_OR_RETURN(RqExprPtr conjunct, ConvertAtom(*atom));
      conjuncts.push_back(std::move(conjunct));
    }
    RqExprPtr body = RqExpr::And(std::move(conjuncts));
    std::vector<VarId> to_project;
    for (VarId v : body->FreeVars()) {
      if (std::find(interface.begin(), interface.end(), v) ==
          interface.end()) {
        to_project.push_back(v);
      }
    }
    if (!to_project.empty()) {
      body = RqExpr::Exists(std::move(to_project), std::move(body));
    }
    // Every interface variable must be constrained by the body.
    std::vector<VarId> expected = interface;
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    if (body->FreeVars() != expected) {
      return InvalidArgumentError(
          "rule body does not connect the required interface variables");
    }
    return body;
  }

  // Renames an expression whose free variables are `from` (distinct) into
  // positional form 0..from.size()-1.
  RqExprPtr ToPositional(const RqExprPtr& expr,
                         const std::vector<VarId>& from) {
    std::vector<std::pair<VarId, VarId>> mapping;
    for (size_t i = 0; i < from.size(); ++i) {
      mapping.push_back({from[i], static_cast<VarId>(i)});
    }
    return SubstituteFreeVars(expr, mapping, &next_var);
  }

  // Nonrecursive rule. Repeated head variables (e.g. P(x, x) :- B(x)) are
  // expressed with one body copy per occurrence plus Eq selections: the
  // copies bind each head position independently, and the selections force
  // the positions equal — exactly the relation the rule defines.
  Result<RqExprPtr> ConvertRule(const DatalogRule& rule) {
    const std::vector<VarId>& head = rule.head.vars;
    std::vector<const DatalogAtom*> atoms;
    for (const DatalogAtom& atom : rule.body) atoms.push_back(&atom);
    std::vector<VarId> distinct = head;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    RQ_ASSIGN_OR_RETURN(RqExprPtr body, ConvertBody(atoms, distinct));

    // First positional occurrence of each head variable.
    std::vector<std::pair<VarId, VarId>> first_map;
    std::vector<std::pair<size_t, size_t>> equal_positions;  // (first, dup)
    for (size_t i = 0; i < head.size(); ++i) {
      size_t first = i;
      for (size_t j = 0; j < i; ++j) {
        if (head[j] == head[i]) {
          first = j;
          break;
        }
      }
      if (first == i) {
        first_map.push_back({head[i], static_cast<VarId>(i)});
      } else {
        equal_positions.push_back({first, i});
      }
    }
    RqExprPtr expr = SubstituteFreeVars(body, first_map, &next_var);
    for (const auto& [first, dup] : equal_positions) {
      // A copy whose occurrence of the repeated variable binds position
      // `dup` instead; all other head variables keep their first positions.
      std::vector<std::pair<VarId, VarId>> copy_map = first_map;
      for (auto& [var, pos] : copy_map) {
        if (var == head[dup]) pos = static_cast<VarId>(dup);
      }
      RqExprPtr copy = SubstituteFreeVars(body, copy_map, &next_var);
      expr = RqExpr::Eq(static_cast<VarId>(first), static_cast<VarId>(dup),
                        RqExpr::And({std::move(expr), std::move(copy)}));
    }
    return expr;
  }

  Result<RqExprPtr> TranslateNonrecursive(PredId pred) {
    std::vector<RqExprPtr> alternatives;
    for (const DatalogRule* rule : program.RulesFor(pred)) {
      RQ_ASSIGN_OR_RETURN(RqExprPtr alt, ConvertRule(*rule));
      alternatives.push_back(std::move(alt));
    }
    RQ_CHECK(!alternatives.empty());
    return RqExpr::Or(std::move(alternatives));
  }

  Result<RqExprPtr> TranslateRecursive(const DatalogProgram::Scc& scc) {
    if (scc.predicates.size() != 1) {
      return InvalidArgumentError(
          "mutually recursive predicates (SCC of size " +
          std::to_string(scc.predicates.size()) +
          ") are not transitive-closure recursion");
    }
    PredId pred = scc.predicates[0];
    const std::string& name = program.PredicateName(pred);
    if (program.PredicateArity(pred) != 2) {
      return InvalidArgumentError(
          "recursive predicate " + name + " has arity " +
          std::to_string(program.PredicateArity(pred)) +
          "; transitive-closure recursion requires arity 2");
    }

    std::vector<RqExprPtr> bases;
    std::vector<RqExprPtr> rights;
    std::vector<RqExprPtr> lefts;
    bool nonlinear = false;

    for (const DatalogRule* rule : program.RulesFor(pred)) {
      size_t self_atoms = 0;
      for (const DatalogAtom& atom : rule->body) {
        if (atom.predicate == pred) ++self_atoms;
      }
      VarId x = rule->head.vars[0];
      VarId z = rule->head.vars[1];
      if (x == z) {
        return InvalidArgumentError("rule for " + name +
                                    " repeats its head variable");
      }
      if (self_atoms == 0) {
        RQ_ASSIGN_OR_RETURN(RqExprPtr base, ConvertRule(*rule));
        bases.push_back(std::move(base));
        continue;
      }
      if (self_atoms == 1) {
        const DatalogAtom* self = nullptr;
        std::vector<const DatalogAtom*> rest;
        for (const DatalogAtom& atom : rule->body) {
          if (atom.predicate == pred && self == nullptr) {
            self = &atom;
          } else {
            rest.push_back(&atom);
          }
        }
        VarId a = self->vars[0];
        VarId b = self->vars[1];
        if (a == b || rest.empty()) {
          return InvalidArgumentError("rule for " + name +
                                      " is not a transitive-closure step");
        }
        // Does `rest` mention a variable? (for the x/z-untouched checks)
        auto rest_uses = [&](VarId v) {
          for (const DatalogAtom* atom : rest) {
            for (VarId w : atom->vars) {
              if (w == v) return true;
            }
          }
          return false;
        };
        if (a == x && b != x && b != z && !rest_uses(x)) {
          // Right step: P(x,z) :- P(x,b), tail(b..z).
          RQ_ASSIGN_OR_RETURN(RqExprPtr tail, ConvertBody(rest, {b, z}));
          rights.push_back(ToPositional(tail, {b, z}));
          continue;
        }
        if (b == z && a != x && a != z && !rest_uses(z)) {
          // Left step: P(x,z) :- head(x..a), P(a,z).
          RQ_ASSIGN_OR_RETURN(RqExprPtr head, ConvertBody(rest, {x, a}));
          lefts.push_back(ToPositional(head, {x, a}));
          continue;
        }
        return InvalidArgumentError(
            "rule for " + name +
            " uses recursion in a non-transitive-closure shape");
      }
      if (self_atoms == 2) {
        if (rule->body.size() != 2) {
          return InvalidArgumentError(
              "rule for " + name +
              " mixes two recursive atoms with other atoms");
        }
        VarId a0 = rule->body[0].vars[0];
        VarId b0 = rule->body[0].vars[1];
        VarId a1 = rule->body[1].vars[0];
        VarId b1 = rule->body[1].vars[1];
        bool pattern = a0 == x && b1 == z && b0 == a1 && b0 != x &&
                       b0 != z && a0 != b0 && a1 != b1;
        if (!pattern) {
          return InvalidArgumentError(
              "rule for " + name +
              " is not the nonlinear transitive-closure rule");
        }
        nonlinear = true;
        continue;
      }
      return InvalidArgumentError("rule for " + name +
                                  " has more than two recursive atoms");
    }
    if (bases.empty()) {
      return InvalidArgumentError("recursive predicate " + name +
                                  " has no base rule");
    }
    RqExprPtr u = RqExpr::Or(std::move(bases));
    std::vector<RqExprPtr> parts{u};
    RqExprPtr tcl, tcr;
    if (!lefts.empty()) {
      tcl = RqExpr::Closure(0, 1, RqExpr::Or(std::move(lefts)));
      parts.push_back(ComposeBinary(tcl, u, &next_var));
    }
    if (!rights.empty()) {
      tcr = RqExpr::Closure(0, 1, RqExpr::Or(std::move(rights)));
      parts.push_back(ComposeBinary(u, tcr, &next_var));
    }
    if (tcl != nullptr && tcr != nullptr) {
      parts.push_back(
          ComposeBinary(tcl, ComposeBinary(u, tcr, &next_var), &next_var));
    }
    RqExprPtr core = RqExpr::Or(std::move(parts));
    if (nonlinear) core = RqExpr::Closure(0, 1, std::move(core));
    return core;
  }

  Status Run() {
    for (const DatalogProgram::Scc& scc : program.DependencySccs()) {
      if (!scc.recursive) {
        PredId pred = scc.predicates[0];
        if (is_edb[pred]) continue;
        RQ_ASSIGN_OR_RETURN(exprs[pred], TranslateNonrecursive(pred));
        continue;
      }
      RQ_ASSIGN_OR_RETURN(RqExprPtr expr, TranslateRecursive(scc));
      exprs[scc.predicates[0]] = std::move(expr);
    }
    return Status::Ok();
  }
};

}  // namespace

GrqAnalysis AnalyzeGrq(const DatalogProgram& program) {
  GrqAnalysis analysis;
  Status valid = program.Validate();
  if (!valid.ok()) {
    analysis.reason = valid.message();
    return analysis;
  }
  GrqTranslator translator(program);
  Status status = translator.Run();
  analysis.is_grq = status.ok();
  if (!status.ok()) analysis.reason = status.message();
  return analysis;
}

Result<RqQuery> DatalogToRq(const DatalogProgram& program) {
  RQ_RETURN_IF_ERROR(program.Validate());
  if (program.goal() == kInvalidPred) {
    return InvalidArgumentError("DatalogToRq: program has no goal");
  }
  GrqTranslator translator(program);
  RQ_RETURN_IF_ERROR(translator.Run());

  PredId goal = program.goal();
  size_t arity = program.PredicateArity(goal);
  RqQuery query;
  if (translator.is_edb[goal]) {
    std::vector<VarId> vars;
    for (size_t i = 0; i < arity; ++i) vars.push_back(static_cast<VarId>(i));
    query.root = RqExpr::Atom(program.PredicateName(goal), vars);
  } else {
    query.root = translator.exprs[goal];
  }
  for (size_t i = 0; i < arity; ++i) {
    query.head.push_back(static_cast<VarId>(i));
    query.var_names.push_back("x" + std::to_string(i));
  }
  RQ_RETURN_IF_ERROR(query.Validate());
  return query;
}

}  // namespace rq

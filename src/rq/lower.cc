#include "rq/lower.h"

#include <algorithm>

namespace rq {

namespace {

bool FreesAre(const RqExpr& e, VarId a, VarId b) {
  std::vector<VarId> expected{a, b};
  std::sort(expected.begin(), expected.end());
  return e.FreeVars() == expected;
}

// Flattens nested Exists/And into conjuncts and collected bound variables.
void Flatten(const RqExprPtr& e, std::vector<RqExprPtr>* conjuncts,
             std::vector<VarId>* bound) {
  switch (e->kind()) {
    case RqExpr::Kind::kAnd:
      for (const RqExprPtr& c : e->children()) Flatten(c, conjuncts, bound);
      return;
    case RqExpr::Kind::kExists:
      bound->insert(bound->end(), e->bound_vars().begin(),
                    e->bound_vars().end());
      Flatten(e->children()[0], conjuncts, bound);
      return;
    default:
      conjuncts->push_back(e);
      return;
  }
}

std::optional<RegexPtr> Lower(const RqExprPtr& e, VarId from, VarId to,
                              Alphabet* alphabet);

// Attempts to order `conjuncts` into a chain from `from` to `to` whose
// middle variables are exactly `middles`, lowering each link.
std::optional<RegexPtr> LowerChain(const std::vector<RqExprPtr>& conjuncts,
                                   const std::vector<VarId>& middles,
                                   VarId from, VarId to, Alphabet* alphabet) {
  // Every conjunct must have exactly two distinct free variables.
  for (const RqExprPtr& c : conjuncts) {
    if (c->FreeVars().size() != 2) return std::nullopt;
  }
  // Each middle variable must appear in exactly two conjuncts; from/to in
  // exactly one each (a simple path).
  std::vector<bool> used(conjuncts.size(), false);
  std::vector<RegexPtr> pieces;
  VarId current = from;
  for (size_t step = 0; step < conjuncts.size(); ++step) {
    int found = -1;
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (used[i]) continue;
      const auto& fv = conjuncts[i]->FreeVars();
      if (std::binary_search(fv.begin(), fv.end(), current)) {
        if (found >= 0) return std::nullopt;  // branching, not a chain
        found = static_cast<int>(i);
      }
    }
    if (found < 0) return std::nullopt;
    const auto& fv = conjuncts[found]->FreeVars();
    VarId next = fv[0] == current ? fv[1] : fv[0];
    if (next == current) return std::nullopt;
    // The next hop must be a declared middle, or `to` on the final step.
    bool is_middle = std::binary_search(middles.begin(), middles.end(), next);
    if (step + 1 == conjuncts.size()) {
      if (next != to) return std::nullopt;
    } else if (!is_middle) {
      return std::nullopt;
    }
    std::optional<RegexPtr> piece =
        Lower(conjuncts[found], current, next, alphabet);
    if (!piece.has_value()) return std::nullopt;
    pieces.push_back(std::move(*piece));
    used[found] = true;
    current = next;
  }
  if (current != to) return std::nullopt;
  return Regex::Concat(std::move(pieces));
}

std::optional<RegexPtr> Lower(const RqExprPtr& e, VarId from, VarId to,
                              Alphabet* alphabet) {
  if (!FreesAre(*e, from, to)) return std::nullopt;
  switch (e->kind()) {
    case RqExpr::Kind::kAtom: {
      if (e->atom_vars().size() != 2) return std::nullopt;
      VarId u = e->atom_vars()[0];
      VarId v = e->atom_vars()[1];
      if (u == v) return std::nullopt;
      uint32_t label = alphabet->InternLabel(e->predicate());
      if (u == from && v == to) {
        return Regex::Atom(ForwardSymbolOf(label));
      }
      if (u == to && v == from) {
        return Regex::Atom(InverseSymbolOf(label));
      }
      return std::nullopt;
    }
    case RqExpr::Kind::kOr: {
      std::vector<RegexPtr> parts;
      for (const RqExprPtr& c : e->children()) {
        std::optional<RegexPtr> part = Lower(c, from, to, alphabet);
        if (!part.has_value()) return std::nullopt;
        parts.push_back(std::move(*part));
      }
      return Regex::Union(std::move(parts));
    }
    case RqExpr::Kind::kClosure: {
      // Transitive closure commutes with inversion, so querying the closure
      // in either orientation is the Plus of the child queried in that same
      // orientation.
      std::optional<RegexPtr> child =
          Lower(e->children()[0], from, to, alphabet);
      if (!child.has_value()) return std::nullopt;
      return Regex::Plus(std::move(*child));
    }
    case RqExpr::Kind::kExists:
    case RqExpr::Kind::kAnd: {
      std::vector<RqExprPtr> conjuncts;
      std::vector<VarId> middles;
      Flatten(e, &conjuncts, &middles);
      std::sort(middles.begin(), middles.end());
      middles.erase(std::unique(middles.begin(), middles.end()),
                    middles.end());
      if (conjuncts.size() == 1 && middles.empty()) {
        return Lower(conjuncts[0], from, to, alphabet);
      }
      return LowerChain(conjuncts, middles, from, to, alphabet);
    }
    case RqExpr::Kind::kEq:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::optional<RegexPtr> TryLowerToRegex(const RqExpr& e, VarId from, VarId to,
                                        Alphabet* alphabet) {
  if (from == to) return std::nullopt;
  // Wrap in a shared_ptr-compatible view: we only have a const ref; build a
  // cheap alias shared_ptr with a no-op deleter.
  RqExprPtr alias(&e, [](const RqExpr*) {});
  return Lower(alias, from, to, alphabet);
}

std::optional<RegexPtr> TryLowerQuery(const RqQuery& query,
                                      Alphabet* alphabet) {
  if (query.head.size() != 2 || query.head[0] == query.head[1]) {
    return std::nullopt;
  }
  if (query.root == nullptr) return std::nullopt;
  return Lower(query.root, query.head[0], query.head[1], alphabet);
}

std::optional<Uc2Rpq> TryLowerToUc2Rpq(const RqQuery& query,
                                       Alphabet* alphabet) {
  if (query.root == nullptr || !query.Validate().ok()) return std::nullopt;
  std::vector<RqExprPtr> disjuncts =
      query.root->kind() == RqExpr::Kind::kOr
          ? query.root->children()
          : std::vector<RqExprPtr>{query.root};
  Uc2Rpq out;
  for (const RqExprPtr& disjunct : disjuncts) {
    // Flatten projections and conjunctions; every conjunct must be a
    // path-shaped piece between exactly two variables.
    std::vector<RqExprPtr> conjuncts;
    std::vector<VarId> bound;
    Flatten(disjunct, &conjuncts, &bound);
    Crpq crpq;
    crpq.head = query.head;
    uint32_t max_var = 0;
    for (VarId v : crpq.head) max_var = std::max(max_var, v + 1);
    for (const RqExprPtr& conjunct : conjuncts) {
      const auto& fv = conjunct->FreeVars();
      if (fv.size() != 2) return std::nullopt;
      std::optional<RegexPtr> regex =
          Lower(conjunct, fv[0], fv[1], alphabet);
      if (!regex.has_value()) return std::nullopt;
      crpq.atoms.push_back({std::move(*regex), fv[0], fv[1]});
      max_var = std::max({max_var, fv[0] + 1, fv[1] + 1});
    }
    crpq.num_vars = max_var;
    if (!crpq.Validate().ok()) return std::nullopt;
    out.disjuncts.push_back(std::move(crpq));
  }
  if (!out.Validate().ok()) return std::nullopt;
  return out;
}

}  // namespace rq

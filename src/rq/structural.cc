#include "rq/structural.h"

#include <algorithm>
#include <unordered_map>

namespace rq {

namespace {

// Structural equality under a growing variable bijection.
bool EqualExpr(const RqExpr& a, const RqExpr& b,
               std::unordered_map<VarId, VarId>& fwd,
               std::unordered_map<VarId, VarId>& bwd) {
  auto bind = [&](VarId va, VarId vb) {
    auto fit = fwd.find(va);
    auto bit = bwd.find(vb);
    if (fit == fwd.end() && bit == bwd.end()) {
      fwd.emplace(va, vb);
      bwd.emplace(vb, va);
      return true;
    }
    return fit != fwd.end() && bit != bwd.end() && fit->second == vb &&
           bit->second == va;
  };
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case RqExpr::Kind::kAtom: {
      if (a.predicate() != b.predicate()) return false;
      if (a.atom_vars().size() != b.atom_vars().size()) return false;
      for (size_t i = 0; i < a.atom_vars().size(); ++i) {
        if (!bind(a.atom_vars()[i], b.atom_vars()[i])) return false;
      }
      return true;
    }
    case RqExpr::Kind::kAnd:
    case RqExpr::Kind::kOr: {
      if (a.children().size() != b.children().size()) return false;
      for (size_t i = 0; i < a.children().size(); ++i) {
        if (!EqualExpr(*a.children()[i], *b.children()[i], fwd, bwd)) {
          return false;
        }
      }
      return true;
    }
    case RqExpr::Kind::kExists: {
      if (a.bound_vars().size() != b.bound_vars().size()) return false;
      for (size_t i = 0; i < a.bound_vars().size(); ++i) {
        if (!bind(a.bound_vars()[i], b.bound_vars()[i])) return false;
      }
      return EqualExpr(*a.children()[0], *b.children()[0], fwd, bwd);
    }
    case RqExpr::Kind::kEq:
      if (!bind(a.eq_a(), b.eq_a()) || !bind(a.eq_b(), b.eq_b())) {
        return false;
      }
      return EqualExpr(*a.children()[0], *b.children()[0], fwd, bwd);
    case RqExpr::Kind::kClosure:
      if (!bind(a.closure_from(), b.closure_from()) ||
          !bind(a.closure_to(), b.closure_to())) {
        return false;
      }
      return EqualExpr(*a.children()[0], *b.children()[0], fwd, bwd);
  }
  return false;
}

// Discharges a subgoal with the full checker.
bool Subgoal(const RqQuery& q1, const RqQuery& q2,
             const RqContainmentOptions& options) {
  Result<RqContainmentResult> result = CheckRqContainment(q1, q2, options);
  return result.ok() && result->certainty == Certainty::kProved;
}

RqQuery MakeQuery(RqExprPtr root, std::vector<VarId> head) {
  RqQuery q;
  q.root = std::move(root);
  q.head = std::move(head);
  return q;
}

bool HeadIsClosurePair(const RqQuery& q) {
  // Parameterized closures (extra free vars in the body) are excluded: the
  // parameters must stay fixed along the chain, so TC-MONO over the
  // projected bodies would be unsound.
  return q.head.size() == 2 && q.head[0] != q.head[1] &&
         q.root->kind() == RqExpr::Kind::kClosure &&
         q.root->FreeVars().size() == 2 &&
         ((q.head[0] == q.root->closure_from() &&
           q.head[1] == q.root->closure_to()) ||
          (q.head[0] == q.root->closure_to() &&
           q.head[1] == q.root->closure_from()));
}

}  // namespace

bool StructurallyEqual(const RqQuery& q1, const RqQuery& q2) {
  if (q1.head.size() != q2.head.size()) return false;
  std::unordered_map<VarId, VarId> fwd;
  std::unordered_map<VarId, VarId> bwd;
  for (size_t i = 0; i < q1.head.size(); ++i) {
    auto fit = fwd.find(q1.head[i]);
    auto bit = bwd.find(q2.head[i]);
    if (fit == fwd.end() && bit == bwd.end()) {
      fwd.emplace(q1.head[i], q2.head[i]);
      bwd.emplace(q2.head[i], q1.head[i]);
    } else if (fit == fwd.end() || bit == bwd.end() ||
               fit->second != q2.head[i] || bit->second != q1.head[i]) {
      return false;
    }
  }
  return EqualExpr(*q1.root, *q2.root, fwd, bwd);
}

bool StructurallyContained(const RqQuery& q1, const RqQuery& q2,
                           const RqContainmentOptions& options,
                           int depth) {
  if (depth <= 0) return false;
  // EQ.
  if (StructurallyEqual(q1, q2)) return true;

  // OR-L (exact decomposition): a union is contained iff every disjunct
  // is.
  if (q1.root->kind() == RqExpr::Kind::kOr) {
    bool all = true;
    for (const RqExprPtr& child : q1.root->children()) {
      if (!Subgoal(MakeQuery(child, q1.head), q2, options)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }

  // OR-R: q1 ⊑ some disjunct of q2.
  if (q2.root->kind() == RqExpr::Kind::kOr) {
    for (const RqExprPtr& child : q2.root->children()) {
      if (Subgoal(q1, MakeQuery(child, q2.head), options)) return true;
    }
  }

  // TC-MONO: body1 ⊑ body2 ⟹ body1⁺ ⊑ body2⁺ (closure commutes with
  // orientation, so the query heads carry over).
  if (HeadIsClosurePair(q1) && HeadIsClosurePair(q2)) {
    if (Subgoal(MakeQuery(q1.root->children()[0], q1.head),
                MakeQuery(q2.root->children()[0], q2.head), options)) {
      return true;
    }
  }

  // TC-INTRO-R: q1 ⊑ body2 ⟹ q1 ⊑ body2⁺ (a single step is in the
  // closure).
  if (HeadIsClosurePair(q2) && q1.head.size() == 2) {
    if (Subgoal(q1, MakeQuery(q2.root->children()[0], q2.head), options)) {
      return true;
    }
  }

  // Congruences require identical head vectors and free-variable sets
  // (projections then commute with the childwise containments).
  if (q1.head != q2.head ||
      q1.root->FreeVars() != q2.root->FreeVars()) {
    return false;
  }

  // EX-CONG.
  if (q1.root->kind() == RqExpr::Kind::kExists &&
      q2.root->kind() == RqExpr::Kind::kExists &&
      q1.root->bound_vars() == q2.root->bound_vars()) {
    const RqExprPtr& c1 = q1.root->children()[0];
    const RqExprPtr& c2 = q2.root->children()[0];
    if (c1->FreeVars() == c2->FreeVars() &&
        Subgoal(MakeQuery(c1, c1->FreeVars()),
                MakeQuery(c2, c2->FreeVars()), options)) {
      return true;
    }
  }

  // EQ-CONG (selection).
  if (q1.root->kind() == RqExpr::Kind::kEq &&
      q2.root->kind() == RqExpr::Kind::kEq &&
      q1.root->eq_a() == q2.root->eq_a() &&
      q1.root->eq_b() == q2.root->eq_b()) {
    const RqExprPtr& c1 = q1.root->children()[0];
    const RqExprPtr& c2 = q2.root->children()[0];
    if (c1->FreeVars() == c2->FreeVars() &&
        Subgoal(MakeQuery(c1, c1->FreeVars()),
                MakeQuery(c2, c2->FreeVars()), options)) {
      return true;
    }
  }

  // AND-CONG / AND-WKN: every conjunct of q2 is entailed by some conjunct
  // of q1 with the same free variables (reuse allowed, so dropping
  // conjuncts — weakening — is covered).
  if (q2.root->kind() == RqExpr::Kind::kAnd) {
    std::vector<RqExprPtr> left =
        q1.root->kind() == RqExpr::Kind::kAnd
            ? q1.root->children()
            : std::vector<RqExprPtr>{q1.root};
    bool all = true;
    for (const RqExprPtr& b : q2.root->children()) {
      bool matched = false;
      for (const RqExprPtr& a : left) {
        if (a->FreeVars() != b->FreeVars()) continue;
        if (Subgoal(MakeQuery(a, a->FreeVars()),
                    MakeQuery(b, b->FreeVars()), options)) {
          matched = true;
          break;
        }
      }
      if (!matched) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }

  return false;
}

}  // namespace rq

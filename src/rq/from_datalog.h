// GRQ: Generalized Regular Queries (paper §4.1, Theorem 8).
//
// GRQ is the fragment of Datalog where recursion is used only to express
// transitive closure. This module recognizes that fragment structurally and
// extracts an equivalent RqQuery, which lifts every RQ facility (evaluation
// cross-checking, containment with certificates) to Datalog programs in the
// fragment.
//
// Accepted recursion shapes, per recursive SCC:
//   * the SCC is a single binary predicate P;
//   * "base" rules derive P without using P in the body (arbitrary positive
//     bodies over earlier predicates);
//   * "step" rules extend P linearly on the right
//         P(x, z) :- P(x, y), tail(y, .., z).
//     or on the left
//         P(x, z) :- head(x, .., y), P(y, z).
//     where the non-P part is over earlier predicates and chains y to z
//     (resp. x to y);
//   * optionally the nonlinear rule  P(x, z) :- P(x, y), P(y, z).
// The least fixpoint of such an SCC is  L* ∘ U ∘ R*  (U the base union,
// L/R the left/right step relations), wrapped in a transitive closure when
// the nonlinear rule is present — all expressible in RQ. The §4.1 embedding
// (RqToDatalog) emits exactly the strict TC shape, so round-tripping is
// exact (tested).
#ifndef RQ_RQ_FROM_DATALOG_H_
#define RQ_RQ_FROM_DATALOG_H_

#include <string>

#include "common/status.h"
#include "datalog/program.h"
#include "rq/rq_expr.h"

namespace rq {

struct GrqAnalysis {
  bool is_grq = false;
  // When !is_grq: which SCC/rule violated the fragment and why.
  std::string reason;
};

// Structural recognition (the program's goal is not required).
GrqAnalysis AnalyzeGrq(const DatalogProgram& program);

// Extracts an RqQuery equivalent to the program's goal predicate. Fails
// with InvalidArgument when the program is not (recognizably) GRQ; the
// message carries the reason.
Result<RqQuery> DatalogToRq(const DatalogProgram& program);

}  // namespace rq

#endif  // RQ_RQ_FROM_DATALOG_H_

// Sound structural proof rules for RQ containment.
//
// The exact RQ containment problem is 2EXPSPACE-complete (Theorem 7); the
// expansion engine refutes exactly but can prove only closure-free left
// sides. These rules recover exact YES verdicts for a large class of
// closure-bearing pairs by recursing on query structure:
//
//   EQ       q1 ≡ q2 up to a variable bijection            ⟹ q1 ⊑ q2
//   OR-R     q1 ⊑ some disjunct of q2                       ⟹ q1 ⊑ q2
//   TC-MONO  body1 ⊑ body2                                  ⟹ body1⁺ ⊑ body2⁺
//   AND-CONG pairwise child containment (same free vars)    ⟹ ∧ ⊑ ∧
//   AND-WKN  q2's conjuncts a subset of q1's (same frees)   ⟹ ∧big ⊑ ∧small
//   EX-CONG  child containment under same projection        ⟹ ∃ ⊑ ∃
//   EQ-CONG  child containment under same selection         ⟹ σ ⊑ σ
//
// Subgoals are discharged with the full checker (so a TC-MONO subgoal over
// closure-free bodies lands in the exact expansion test). Every rule is
// sound; the set is deliberately incomplete.
#ifndef RQ_RQ_STRUCTURAL_H_
#define RQ_RQ_STRUCTURAL_H_

#include "rq/containment.h"
#include "rq/rq_expr.h"

namespace rq {

// True if the rules (recursively, with full containment checks on
// subgoals) prove q1 ⊑ q2. `depth` bounds rule recursion.
bool StructurallyContained(const RqQuery& q1, const RqQuery& q2,
                           const RqContainmentOptions& options,
                           int depth = 8);

// Structural equality up to a bijective variable renaming consistent with
// the two heads.
bool StructurallyEqual(const RqQuery& q1, const RqQuery& q2);

}  // namespace rq

#endif  // RQ_RQ_STRUCTURAL_H_

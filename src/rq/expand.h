// Expansions of Regular Queries into conjunctive queries.
//
// Like Datalog (paper §2.2 / [46]), an RQ equals a union of conjunctive
// queries: finite when the query is closure-free, infinite otherwise. Each
// transitive closure contributes one chain per unrolling length, so
// ExpandRq enumerates the expansions whose closures unroll at most
// `max_tc_unroll` times. The `complete` flag reports whether the returned
// set is the whole (finite) union. Bounded expansions are the refutation
// engine of RQ/GRQ containment: the exact problem is 2EXPSPACE-complete
// (Theorem 7), but any expansion whose canonical database defeats the
// candidate container is a concrete, checkable counterexample.
#ifndef RQ_RQ_EXPAND_H_
#define RQ_RQ_EXPAND_H_

#include <cstddef>

#include "common/status.h"
#include "relational/cq.h"
#include "rq/rq_expr.h"

namespace rq {

struct RqExpandLimits {
  size_t max_tc_unroll = 3;
  size_t max_expansions = 20000;
  size_t max_atoms_per_expansion = 400;
};

struct RqExpansions {
  std::vector<ConjunctiveQuery> expansions;
  bool complete = false;   // true iff the query is closure-free and nothing
                           // was truncated: the union is exact
  bool truncated = false;  // max_expansions or max_atoms cut enumeration
};

Result<RqExpansions> ExpandRq(const RqQuery& query,
                              const RqExpandLimits& limits = {});

}  // namespace rq

#endif  // RQ_RQ_EXPAND_H_

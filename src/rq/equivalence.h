// Query equivalence — the problem the paper reduces to containment
// ("Q is equivalent to Q' if Q is contained in Q' and Q' is contained in
// Q", §2.3). A thin two-direction wrapper that combines the verdicts
// honestly: equivalence is proved only when both containments are.
#ifndef RQ_RQ_EQUIVALENCE_H_
#define RQ_RQ_EQUIVALENCE_H_

#include "rq/containment.h"

namespace rq {

enum class EquivalenceVerdict {
  kEquivalent,        // both directions proved
  kNotEquivalent,     // some direction refuted (certificate attached)
  kUnknownUpToBound,  // neither refuted, at least one direction unproved
};
const char* EquivalenceVerdictName(EquivalenceVerdict verdict);

struct RqEquivalenceResult {
  EquivalenceVerdict verdict = EquivalenceVerdict::kUnknownUpToBound;
  // The two directional results (q1 ⊑ q2, then q2 ⊑ q1).
  RqContainmentResult forward;
  RqContainmentResult backward;
};

Result<RqEquivalenceResult> CheckRqEquivalence(
    const RqQuery& q1, const RqQuery& q2,
    const RqContainmentOptions& options = {});

}  // namespace rq

#endif  // RQ_RQ_EQUIVALENCE_H_

#include "rq/parser.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "common/strings.h"

namespace rq {

namespace {

class RqParser {
 public:
  explicit RqParser(std::string_view text) : text_(text) {}

  Result<RqQuery> Parse() {
    RqQuery query;
    SkipSpace();
    // Optional explicit head: IDENT '(' vars ')' ':='.
    size_t saved = pos_;
    std::string ident;
    if (TryIdent(&ident) && Peek() == '(' && !IsReserved(ident)) {
      RQ_ASSIGN_OR_RETURN(std::vector<std::string> names, ParseVarList());
      SkipSpace();
      if (Peek() == ':' && pos_ + 1 < text_.size() &&
          text_[pos_ + 1] == '=') {
        pos_ += 2;
        for (const std::string& name : names) {
          explicit_head_.push_back(InternVar(name));
        }
        has_explicit_head_ = true;
      } else {
        pos_ = saved;  // it was an atom, reparse below
        vars_.clear();
        names_.clear();
      }
    } else {
      pos_ = saved;
    }
    RQ_ASSIGN_OR_RETURN(RqExprPtr root, ParseExpr());
    SkipSpace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("rq: trailing input at offset " +
                                  std::to_string(pos_));
    }
    query.root = root;
    query.var_names = names_;
    if (has_explicit_head_) {
      for (VarId v : explicit_head_) {
        const auto& fv = root->FreeVars();
        if (!std::binary_search(fv.begin(), fv.end(), v)) {
          return InvalidArgumentError("rq: head variable '" +
                                      names_[v] +
                                      "' is not free in the expression");
        }
      }
      query.head = explicit_head_;
    } else {
      query.head = root->FreeVars();
    }
    RQ_RETURN_IF_ERROR(query.Validate());
    return query;
  }

 private:
  static bool IsReserved(const std::string& word) {
    return word == "exists" || word == "tc" || word == "eq";
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool TryConsume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool TryIdent(std::string* out) {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
         text_[pos_] == '_')) {
      while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
      *out = std::string(text_.substr(start, pos_ - start));
      return true;
    }
    return false;
  }

  VarId InternVar(const std::string& name) {
    auto it = vars_.find(name);
    if (it != vars_.end()) return it->second;
    VarId id = static_cast<VarId>(names_.size());
    vars_.emplace(name, id);
    names_.push_back(name);
    return id;
  }

  // Parses '(' name (',' name)* ')'.
  Result<std::vector<std::string>> ParseVarList() {
    if (!TryConsume('(')) {
      return InvalidArgumentError("rq: expected '('");
    }
    std::vector<std::string> out;
    for (;;) {
      std::string name;
      if (!TryIdent(&name)) {
        return InvalidArgumentError("rq: expected variable name");
      }
      out.push_back(std::move(name));
      if (TryConsume(',')) continue;
      break;
    }
    if (!TryConsume(')')) {
      return InvalidArgumentError("rq: expected ')'");
    }
    return out;
  }

  // Parses '[' name (',' name)* ']'.
  Result<std::vector<VarId>> ParseBracketVars() {
    if (!TryConsume('[')) {
      return InvalidArgumentError("rq: expected '['");
    }
    std::vector<VarId> out;
    for (;;) {
      std::string name;
      if (!TryIdent(&name)) {
        return InvalidArgumentError("rq: expected variable in brackets");
      }
      out.push_back(InternVar(name));
      if (TryConsume(',')) continue;
      break;
    }
    if (!TryConsume(']')) {
      return InvalidArgumentError("rq: expected ']'");
    }
    return out;
  }

  Result<RqExprPtr> ParseExpr() {
    RQ_ASSIGN_OR_RETURN(RqExprPtr first, ParseAnd());
    std::vector<RqExprPtr> parts{first};
    while (TryConsume('|')) {
      RQ_ASSIGN_OR_RETURN(RqExprPtr next, ParseAnd());
      parts.push_back(next);
    }
    if (parts.size() > 1) {
      for (size_t i = 1; i < parts.size(); ++i) {
        if (parts[i]->FreeVars() != parts[0]->FreeVars()) {
          return InvalidArgumentError(
              "rq: disjuncts must have the same free variables");
        }
      }
    }
    return RqExpr::Or(std::move(parts));
  }

  Result<RqExprPtr> ParseAnd() {
    RQ_ASSIGN_OR_RETURN(RqExprPtr first, ParsePrim());
    std::vector<RqExprPtr> parts{first};
    while (TryConsume('&')) {
      RQ_ASSIGN_OR_RETURN(RqExprPtr next, ParsePrim());
      parts.push_back(next);
    }
    return RqExpr::And(std::move(parts));
  }

  Result<RqExprPtr> ParsePrim() {
    SkipSpace();
    if (TryConsume('(')) {
      RQ_ASSIGN_OR_RETURN(RqExprPtr inner, ParseExpr());
      if (!TryConsume(')')) {
        return InvalidArgumentError("rq: expected ')'");
      }
      return inner;
    }
    std::string ident;
    if (!TryIdent(&ident)) {
      return InvalidArgumentError("rq: expected atom or operator at offset " +
                                  std::to_string(pos_));
    }
    if (ident == "exists") {
      RQ_ASSIGN_OR_RETURN(std::vector<VarId> bound, ParseBracketVars());
      RQ_ASSIGN_OR_RETURN(RqExprPtr child, ParseParenExpr());
      for (VarId v : bound) {
        const auto& fv = child->FreeVars();
        if (!std::binary_search(fv.begin(), fv.end(), v)) {
          return InvalidArgumentError("rq: exists-variable '" + names_[v] +
                                      "' is not free in its scope");
        }
      }
      return RqExpr::Exists(std::move(bound), std::move(child));
    }
    if (ident == "tc" || ident == "eq") {
      RQ_ASSIGN_OR_RETURN(std::vector<VarId> pair, ParseBracketVars());
      if (pair.size() != 2 || pair[0] == pair[1]) {
        return InvalidArgumentError("rq: " + ident +
                                    " needs two distinct variables");
      }
      RQ_ASSIGN_OR_RETURN(RqExprPtr child, ParseParenExpr());
      const auto& fv = child->FreeVars();
      for (VarId v : pair) {
        if (!std::binary_search(fv.begin(), fv.end(), v)) {
          return InvalidArgumentError("rq: " + ident + " variable '" +
                                      names_[v] + "' is not free");
        }
      }
      if (ident == "eq") {
        return RqExpr::Eq(pair[0], pair[1], std::move(child));
      }
      // Free variables of the subquery beyond the closure pair are
      // parameters, held fixed along the chain (docs/SYNTAX.md).
      return RqExpr::Closure(pair[0], pair[1], std::move(child));
    }
    // Atom.
    RQ_ASSIGN_OR_RETURN(std::vector<std::string> args, ParseVarList());
    std::vector<VarId> vars;
    vars.reserve(args.size());
    for (const std::string& a : args) vars.push_back(InternVar(a));
    return RqExpr::Atom(ident, std::move(vars));
  }

  Result<RqExprPtr> ParseParenExpr() {
    if (!TryConsume('(')) {
      return InvalidArgumentError("rq: expected '('");
    }
    RQ_ASSIGN_OR_RETURN(RqExprPtr inner, ParseExpr());
    if (!TryConsume(')')) {
      return InvalidArgumentError("rq: expected ')'");
    }
    return inner;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::unordered_map<std::string, VarId> vars_;
  std::vector<std::string> names_;
  bool has_explicit_head_ = false;
  std::vector<VarId> explicit_head_;
};

}  // namespace

Result<RqQuery> ParseRq(std::string_view text) {
  return RqParser(text).Parse();
}

}  // namespace rq

#include "rq/expand.h"

#include <algorithm>
#include <unordered_map>

#include "common/deadline.h"
#include "common/mem.h"
#include "obs/subsystems.h"
#include "obs/trace.h"

namespace rq {

namespace {

// A partially built disjunct: atoms plus pending variable equalities
// (introduced by Eq nodes; resolved by union-find at the end).
struct Alternative {
  std::vector<CqAtom> atoms;
  std::vector<std::pair<VarId, VarId>> equalities;
};

// Approximate footprint of one materialized alternative, charged against
// MemSubsystem::kRq as the enumeration grows (the CRPQ-containment
// EXPSPACE pressure point). An estimate: discarded intermediates are not
// released individually — the ExpandRq-level MemScope squares the books.
int64_t AlternativeBytes(const Alternative& alt) {
  size_t bytes = sizeof(Alternative) +
                 alt.equalities.size() * sizeof(std::pair<VarId, VarId>);
  for (const CqAtom& atom : alt.atoms) {
    bytes += sizeof(CqAtom) + atom.vars.size() * sizeof(VarId);
  }
  return static_cast<int64_t>(bytes);
}

struct Expander {
  const RqExpandLimits* limits;
  uint32_t next_var;
  bool truncated = false;
  // Set when the installed ExecContext trips mid-enumeration; Gen bails
  // out with empty results and ExpandRq propagates it.
  Status status;

  using Env = std::unordered_map<VarId, VarId>;

  VarId Lookup(const Env& env, VarId v) {
    auto it = env.find(v);
    return it == env.end() ? v : it->second;
  }

  // Cross product of two alternative lists.
  std::vector<Alternative> Cross(std::vector<Alternative> a,
                                 std::vector<Alternative> b) {
    std::vector<Alternative> out;
    for (const Alternative& x : a) {
      for (const Alternative& y : b) {
        if (!status.ok()) return out;
        if (out.size() >= limits->max_expansions) {
          truncated = true;
          return out;
        }
        Alternative merged = x;
        merged.atoms.insert(merged.atoms.end(), y.atoms.begin(),
                            y.atoms.end());
        merged.equalities.insert(merged.equalities.end(),
                                 y.equalities.begin(), y.equalities.end());
        if (merged.atoms.size() <= limits->max_atoms_per_expansion) {
          MemCharge(AlternativeBytes(merged));
          out.push_back(std::move(merged));
        } else {
          truncated = true;
        }
      }
    }
    return out;
  }

  std::vector<Alternative> Gen(const RqExpr& e, const Env& env) {
    if (!status.ok()) return {};
    if (Status s = CheckExecContext(); !s.ok()) {
      status = std::move(s);
      return {};
    }
    switch (e.kind()) {
      case RqExpr::Kind::kAtom: {
        Alternative alt;
        CqAtom atom;
        atom.predicate = e.predicate();
        for (VarId v : e.atom_vars()) atom.vars.push_back(Lookup(env, v));
        alt.atoms.push_back(std::move(atom));
        MemCharge(AlternativeBytes(alt));
        return {std::move(alt)};
      }
      case RqExpr::Kind::kAnd: {
        std::vector<Alternative> acc = Gen(*e.children()[0], env);
        for (size_t i = 1; i < e.children().size(); ++i) {
          // Crossing an empty list stays empty, so skip the (potentially
          // exponential) Gen of the remaining children. A bare `truncated`
          // check would be wrong here: alternatives already in `acc` still
          // need the remaining children's atoms to be genuine expansions.
          if (acc.empty()) break;
          acc = Cross(std::move(acc), Gen(*e.children()[i], env));
        }
        return acc;
      }
      case RqExpr::Kind::kOr: {
        std::vector<Alternative> acc;
        for (const RqExprPtr& c : e.children()) {
          // Once the cap is reached nothing from the remaining disjuncts
          // can be kept; skip their Gen instead of discarding its output.
          if (acc.size() >= limits->max_expansions) {
            truncated = true;
            break;
          }
          std::vector<Alternative> part = Gen(*c, env);
          for (Alternative& alt : part) {
            if (acc.size() >= limits->max_expansions) {
              truncated = true;
              break;
            }
            acc.push_back(std::move(alt));
          }
        }
        return acc;
      }
      case RqExpr::Kind::kExists: {
        Env inner = env;
        for (VarId v : e.bound_vars()) inner[v] = next_var++;
        return Gen(*e.children()[0], inner);
      }
      case RqExpr::Kind::kEq: {
        std::vector<Alternative> out = Gen(*e.children()[0], env);
        VarId a = Lookup(env, e.eq_a());
        VarId b = Lookup(env, e.eq_b());
        for (Alternative& alt : out) alt.equalities.push_back({a, b});
        return out;
      }
      case RqExpr::Kind::kClosure: {
        // Chains of length 1..max_tc_unroll.
        VarId from = Lookup(env, e.closure_from());
        VarId to = Lookup(env, e.closure_to());
        std::vector<Alternative> out;
        for (size_t len = 1; len <= limits->max_tc_unroll; ++len) {
          // A full `out` can accept nothing from this or any longer
          // unrolling; stop before generating the (exponentially growing)
          // chains instead of throwing them away.
          if (out.size() >= limits->max_expansions) {
            truncated = true;
            break;
          }
          std::vector<Alternative> chain;
          VarId prev = from;
          for (size_t i = 0; i < len; ++i) {
            // Same reasoning as kAnd: an empty chain stays empty.
            if (i > 0 && chain.empty()) break;
            VarId next = (i + 1 == len) ? to : next_var++;
            // The link env starts from the enclosing env so free variables
            // of the closure body other than the endpoints (parameters,
            // possibly renamed by an enclosing Exists) keep their outer
            // bindings; only the endpoints are rebound per link.
            Env link = env;
            link[e.closure_from()] = prev;
            link[e.closure_to()] = next;
            // Bound vars inside the child are freshened per link by the
            // recursive Exists handling.
            std::vector<Alternative> part = Gen(*e.children()[0], link);
            chain = (i == 0) ? std::move(part)
                             : Cross(std::move(chain), std::move(part));
            prev = next;
          }
          for (Alternative& alt : chain) {
            if (out.size() >= limits->max_expansions) {
              truncated = true;
              break;
            }
            out.push_back(std::move(alt));
          }
        }
        return out;
      }
    }
    RQ_CHECK(false);
    return {};
  }
};

// Union-find for resolving Eq-induced equalities.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n) : parent_(n) {
    for (uint32_t i = 0; i < n; ++i) parent_[i] = i;
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

Result<RqExpansions> ExpandRq(const RqQuery& query,
                              const RqExpandLimits& limits) {
  RQ_TRACE_SPAN_VAR(span, "rq.expand");
  MemScope mem_scope(MemSubsystem::kRq);
  RQ_RETURN_IF_ERROR(query.Validate());
  Expander expander;
  expander.limits = &limits;
  expander.next_var = query.root->MaxVarIdPlus1();

  std::vector<Alternative> alts = expander.Gen(*query.root, {});
  RQ_RETURN_IF_ERROR(expander.status);

  RqExpansions out;
  out.truncated = expander.truncated;
  out.complete = !query.root->UsesClosure() && !expander.truncated;
  for (Alternative& alt : alts) {
    ConjunctiveQuery cq;
    cq.num_vars = expander.next_var;
    cq.head = query.head;
    cq.atoms = std::move(alt.atoms);
    if (!alt.equalities.empty()) {
      UnionFind uf(expander.next_var);
      for (const auto& [a, b] : alt.equalities) uf.Merge(a, b);
      for (CqAtom& atom : cq.atoms) {
        for (VarId& v : atom.vars) v = uf.Find(v);
      }
      for (VarId& v : cq.head) v = uf.Find(v);
    }
    RQ_RETURN_IF_ERROR(cq.Validate());
    out.expansions.push_back(std::move(cq));
  }
  obs::RqCounters::Get().expansions.Add(out.expansions.size());
  obs::RqCounters::Get().live_expansions.Set(
      static_cast<int64_t>(out.expansions.size()));
  span.AddAttr("expansions", out.expansions.size());
  return out;
}

}  // namespace rq

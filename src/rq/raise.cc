#include "rq/raise.h"

#include <algorithm>

namespace rq {

std::optional<RqExprPtr> RaiseRegexToRq(const Regex& regex, VarId from,
                                        VarId to, const Alphabet& alphabet,
                                        uint32_t* next_var) {
  if (from == to) return std::nullopt;
  switch (regex.kind()) {
    case RegexKind::kEmpty:
    case RegexKind::kEpsilon:
      return std::nullopt;
    case RegexKind::kAtom: {
      uint32_t label = SymbolLabel(regex.symbol());
      if (label >= alphabet.num_labels()) return std::nullopt;
      const std::string& name = alphabet.LabelName(label);
      if (IsInverseSymbol(regex.symbol())) {
        return RqExpr::Atom(name, {to, from});
      }
      return RqExpr::Atom(name, {from, to});
    }
    case RegexKind::kConcat: {
      // from -c1-> m1 -c2-> m2 ... -cn-> to, middles projected.
      const auto& kids = regex.children();
      if (kids.empty()) return std::nullopt;
      std::vector<RqExprPtr> pieces;
      std::vector<VarId> middles;
      VarId current = from;
      for (size_t i = 0; i < kids.size(); ++i) {
        VarId next = (i + 1 == kids.size()) ? to : (*next_var)++;
        if (i + 1 < kids.size()) middles.push_back(next);
        std::optional<RqExprPtr> piece =
            RaiseRegexToRq(*kids[i], current, next, alphabet, next_var);
        if (!piece.has_value()) return std::nullopt;
        pieces.push_back(std::move(*piece));
        current = next;
      }
      RqExprPtr body = RqExpr::And(std::move(pieces));
      if (middles.empty()) return body;
      return RqExpr::Exists(std::move(middles), std::move(body));
    }
    case RegexKind::kUnion: {
      std::vector<RqExprPtr> parts;
      for (const RegexPtr& c : regex.children()) {
        std::optional<RqExprPtr> part =
            RaiseRegexToRq(*c, from, to, alphabet, next_var);
        if (!part.has_value()) return std::nullopt;
        parts.push_back(std::move(*part));
      }
      if (parts.empty()) return std::nullopt;
      return RqExpr::Or(std::move(parts));
    }
    case RegexKind::kPlus: {
      std::optional<RqExprPtr> child =
          RaiseRegexToRq(*regex.children()[0], from, to, alphabet, next_var);
      if (!child.has_value()) return std::nullopt;
      return RqExpr::Closure(from, to, std::move(*child));
    }
    case RegexKind::kStar:
    case RegexKind::kOptional:
      // Would require the identity relation (the empty word connects a
      // node to itself), which the algebra lacks.
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<RqQuery> RaiseUc2RpqToRq(const Uc2Rpq& query,
                                       const Alphabet& alphabet) {
  if (!query.Validate().ok()) return std::nullopt;
  RqQuery out;
  out.head = query.disjuncts[0].head;
  // Fresh variables start above every disjunct's variable space.
  uint32_t next_var = 0;
  for (const Crpq& disjunct : query.disjuncts) {
    next_var = std::max(next_var, disjunct.num_vars);
  }
  std::vector<RqExprPtr> disjuncts;
  for (const Crpq& disjunct : query.disjuncts) {
    if (disjunct.head != out.head) {
      // Or-nodes need identical free variables; require syntactically
      // aligned heads (parsers produce this naturally).
      return std::nullopt;
    }
    std::vector<RqExprPtr> conjuncts;
    for (const CrpqAtom& atom : disjunct.atoms) {
      if (atom.from == atom.to) return std::nullopt;
      std::optional<RqExprPtr> raised = RaiseRegexToRq(
          *atom.regex, atom.from, atom.to, alphabet, &next_var);
      if (!raised.has_value()) return std::nullopt;
      conjuncts.push_back(std::move(*raised));
    }
    RqExprPtr body = RqExpr::And(std::move(conjuncts));
    // Project everything that is not a head variable.
    std::vector<VarId> to_project;
    for (VarId v : body->FreeVars()) {
      if (std::find(out.head.begin(), out.head.end(), v) ==
          out.head.end()) {
        to_project.push_back(v);
      }
    }
    if (!to_project.empty()) {
      body = RqExpr::Exists(std::move(to_project), std::move(body));
    }
    // Every head variable must be free (guaranteed by Crpq::Validate).
    disjuncts.push_back(std::move(body));
  }
  for (size_t i = 1; i < disjuncts.size(); ++i) {
    if (disjuncts[i]->FreeVars() != disjuncts[0]->FreeVars()) {
      return std::nullopt;
    }
  }
  out.root = RqExpr::Or(std::move(disjuncts));
  if (!out.Validate().ok()) return std::nullopt;
  return out;
}

}  // namespace rq

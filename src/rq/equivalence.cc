#include "rq/equivalence.h"

namespace rq {

const char* EquivalenceVerdictName(EquivalenceVerdict verdict) {
  switch (verdict) {
    case EquivalenceVerdict::kEquivalent:
      return "equivalent";
    case EquivalenceVerdict::kNotEquivalent:
      return "not-equivalent";
    case EquivalenceVerdict::kUnknownUpToBound:
      return "unknown-up-to-bound";
  }
  return "?";
}

Result<RqEquivalenceResult> CheckRqEquivalence(
    const RqQuery& q1, const RqQuery& q2,
    const RqContainmentOptions& options) {
  RqEquivalenceResult out;
  RQ_ASSIGN_OR_RETURN(out.forward, CheckRqContainment(q1, q2, options));
  if (out.forward.certainty == Certainty::kRefuted) {
    out.verdict = EquivalenceVerdict::kNotEquivalent;
    return out;
  }
  RQ_ASSIGN_OR_RETURN(out.backward, CheckRqContainment(q2, q1, options));
  if (out.backward.certainty == Certainty::kRefuted) {
    out.verdict = EquivalenceVerdict::kNotEquivalent;
    return out;
  }
  if (out.forward.certainty == Certainty::kProved &&
      out.backward.certainty == Certainty::kProved) {
    out.verdict = EquivalenceVerdict::kEquivalent;
  } else {
    out.verdict = EquivalenceVerdict::kUnknownUpToBound;
  }
  return out;
}

}  // namespace rq

// Evaluation of Regular Queries over relational databases.
//
// Graph databases evaluate RQs through their relational view (each edge
// label is a binary relation; see GraphToDatabase). Operators evaluate
// bottom-up into materialized relations; transitive closure runs a
// semi-naive fixpoint. This engine is also the oracle the containment
// machinery uses: a query is evaluated over canonical databases of the
// other query's expansions.
#ifndef RQ_RQ_EVAL_H_
#define RQ_RQ_EVAL_H_

#include "common/status.h"
#include "graph/graph_db.h"
#include "relational/relation.h"
#include "rq/rq_expr.h"

namespace rq {

// An intermediate result: a relation whose columns are the sorted free
// variables of the producing expression.
struct RqRelation {
  std::vector<VarId> vars;  // sorted; relation columns in this order
  Relation relation{0};
};

// Index of variable `v` within the sorted column list `vars`, or
// InvalidArgumentError when `v` is not a column. The evaluator routes all
// column lookups through this so a malformed expression tree (however
// constructed) surfaces as a Status through the Result<> channel instead
// of aborting the process.
Result<size_t> FindColumn(const std::vector<VarId>& vars, VarId v);

// Evaluates an expression; columns follow e.FreeVars() order.
Result<RqRelation> EvalRqExpr(const Database& db, const RqExpr& e);

// Evaluates a query; columns follow query.head order (variables may repeat).
Result<Relation> EvalRqQuery(const Database& db, const RqQuery& query);

// The relational view of a graph database: one binary relation per edge
// label, tuples (src, dst).
Database GraphToDatabase(const GraphDb& graph);

// Transitive closure of a binary relation by semi-naive iteration.
Relation BinaryTransitiveClosure(const Relation& base);

}  // namespace rq

#endif  // RQ_RQ_EVAL_H_

// Raising path-query fragments into the RQ algebra — the converse of
// rq/lower.h, and the formal content of §3.4's observation that RQ
// subsumes UC2RPQ.
//
// An ε-free regular expression between two variables maps directly:
// atoms to (possibly swapped) binary atoms, concatenation to projected
// composition, union to disjunction, + to transitive closure. Expressions
// whose language contains the empty word (star, optional, ε) would need an
// identity relation, which the RQ algebra does not provide — raising those
// returns nullopt. A UC2RPQ raises disjunct-by-disjunct, with non-head
// variables projected so the disjuncts share their free variables.
#ifndef RQ_RQ_RAISE_H_
#define RQ_RQ_RAISE_H_

#include <optional>

#include "crpq/crpq.h"
#include "regex/regex.h"
#include "rq/rq_expr.h"

namespace rq {

// Raises a regex viewed as a binary query from `from` to `to`. `next_var`
// supplies fresh middle variables. nullopt if the expression (or a
// required subexpression) can accept the empty word or the empty language.
std::optional<RqExprPtr> RaiseRegexToRq(const Regex& regex, VarId from,
                                        VarId to, const Alphabet& alphabet,
                                        uint32_t* next_var);

// Raises a whole UC2RPQ. nullopt if any atom fails to raise.
std::optional<RqQuery> RaiseUc2RpqToRq(const Uc2Rpq& query,
                                       const Alphabet& alphabet);

}  // namespace rq

#endif  // RQ_RQ_RAISE_H_

#include "rq/to_datalog.h"

#include <algorithm>

namespace rq {

namespace {

struct Translator {
  DatalogProgram program;
  std::string prefix;
  uint32_t next_pred = 0;
  uint32_t next_var;

  Result<PredId> FreshPred(size_t arity) {
    std::string name = prefix + "_" + std::to_string(next_pred++);
    return program.InternPredicate(name, arity);
  }

  // Builds a rule whose variables are global expr var ids.
  static void FinishRule(DatalogRule* rule) {
    uint32_t max_var = 0;
    auto scan = [&max_var](const DatalogAtom& atom) {
      for (VarId v : atom.vars) max_var = std::max(max_var, v + 1);
    };
    scan(rule->head);
    for (const DatalogAtom& atom : rule->body) scan(atom);
    rule->num_vars = max_var;
  }

  Result<PredId> Translate(const RqExpr& e) {
    const std::vector<VarId>& frees = e.FreeVars();
    switch (e.kind()) {
      case RqExpr::Kind::kAtom: {
        RQ_ASSIGN_OR_RETURN(PredId self, FreshPred(frees.size()));
        RQ_ASSIGN_OR_RETURN(
            PredId edb,
            program.InternPredicate(e.predicate(), e.atom_vars().size()));
        DatalogRule rule;
        rule.head = {self, frees};
        rule.body = {{edb, e.atom_vars()}};
        FinishRule(&rule);
        program.AddRule(std::move(rule));
        return self;
      }
      case RqExpr::Kind::kAnd: {
        RQ_ASSIGN_OR_RETURN(PredId self, FreshPred(frees.size()));
        DatalogRule rule;
        rule.head = {self, frees};
        for (const RqExprPtr& c : e.children()) {
          RQ_ASSIGN_OR_RETURN(PredId child, Translate(*c));
          rule.body.push_back({child, c->FreeVars()});
        }
        FinishRule(&rule);
        program.AddRule(std::move(rule));
        return self;
      }
      case RqExpr::Kind::kOr: {
        RQ_ASSIGN_OR_RETURN(PredId self, FreshPred(frees.size()));
        for (const RqExprPtr& c : e.children()) {
          RQ_ASSIGN_OR_RETURN(PredId child, Translate(*c));
          DatalogRule rule;
          rule.head = {self, frees};
          rule.body = {{child, frees}};
          FinishRule(&rule);
          program.AddRule(std::move(rule));
        }
        return self;
      }
      case RqExpr::Kind::kExists: {
        RQ_ASSIGN_OR_RETURN(PredId self, FreshPred(frees.size()));
        RQ_ASSIGN_OR_RETURN(PredId child, Translate(*e.children()[0]));
        DatalogRule rule;
        rule.head = {self, frees};
        rule.body = {{child, e.children()[0]->FreeVars()}};
        FinishRule(&rule);
        program.AddRule(std::move(rule));
        return self;
      }
      case RqExpr::Kind::kEq: {
        RQ_ASSIGN_OR_RETURN(PredId self, FreshPred(frees.size()));
        RQ_ASSIGN_OR_RETURN(PredId child, Translate(*e.children()[0]));
        // Selection: use one variable for both selected columns.
        auto substituted = [&](const std::vector<VarId>& vars) {
          std::vector<VarId> out = vars;
          for (VarId& v : out) {
            if (v == e.eq_b()) v = e.eq_a();
          }
          return out;
        };
        DatalogRule rule;
        rule.head = {self, substituted(frees)};
        rule.body = {{child, substituted(e.children()[0]->FreeVars())}};
        FinishRule(&rule);
        program.AddRule(std::move(rule));
        return self;
      }
      case RqExpr::Kind::kClosure: {
        RQ_ASSIGN_OR_RETURN(PredId self, FreshPred(frees.size()));
        RQ_ASSIGN_OR_RETURN(PredId child, Translate(*e.children()[0]));
        const VarId mid = next_var++;
        // Parameter variables (free vars besides the endpoints) ride along
        // unchanged through both rules, pinning them across the chain.
        auto with = [&](VarId which, VarId replacement) {
          std::vector<VarId> vars = frees;
          for (VarId& v : vars) {
            if (v == which) v = replacement;
          }
          return vars;
        };
        // Base: self(x, y, p̄) :- child(x, y, p̄).
        DatalogRule base;
        base.head = {self, frees};
        base.body = {{child, frees}};
        FinishRule(&base);
        program.AddRule(std::move(base));
        // Step: self(x, z, p̄) :- self(x, m, p̄), child(m, z, p̄).
        DatalogRule step;
        step.head = {self, frees};
        step.body = {{self, with(e.closure_to(), mid)},
                     {child, with(e.closure_from(), mid)}};
        FinishRule(&step);
        program.AddRule(std::move(step));
        return self;
      }
    }
    RQ_CHECK(false);
    return InvalidArgumentError("unreachable");
  }
};

}  // namespace

Result<DatalogProgram> RqToDatalog(const RqQuery& query,
                                   std::string_view goal_name) {
  RQ_RETURN_IF_ERROR(query.Validate());
  for (const std::string& pred : query.root->Predicates()) {
    if (pred == goal_name ||
        (pred.size() > goal_name.size() &&
         pred.compare(0, goal_name.size(), goal_name) == 0 &&
         pred[goal_name.size()] == '_')) {
      return InvalidArgumentError(
          "RqToDatalog: query predicate '" + pred +
          "' collides with generated names; pick another goal_name");
    }
  }
  Translator translator;
  translator.prefix = std::string(goal_name);
  translator.next_var = query.root->MaxVarIdPlus1();
  RQ_ASSIGN_OR_RETURN(PredId root_pred, translator.Translate(*query.root));
  RQ_ASSIGN_OR_RETURN(
      PredId goal,
      translator.program.InternPredicate(goal_name, query.head.size()));
  DatalogRule goal_rule;
  goal_rule.head = {goal, query.head};
  goal_rule.body = {{root_pred, query.root->FreeVars()}};
  Translator::FinishRule(&goal_rule);
  translator.program.AddRule(std::move(goal_rule));
  translator.program.SetGoal(goal);
  RQ_RETURN_IF_ERROR(translator.program.Validate());
  return translator.program;
}

}  // namespace rq

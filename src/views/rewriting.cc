#include "views/rewriting.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "automata/containment.h"
#include "automata/ops.h"
#include "common/deadline.h"
#include "common/strings.h"
#include "pathquery/path_query.h"

namespace rq {

namespace {

struct SubsetHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (uint32_t x : v) {
      h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

// Substitutes each view symbol in the rewriting by the view's definition,
// yielding an NFA over the data alphabet for the rewriting's expansion.
// Implemented by splicing a copy of the view NFA in place of each view
// transition.
Nfa ExpandRewriting(const Nfa& rewriting, const std::vector<View>& views,
                    uint32_t data_num_symbols) {
  Nfa out(data_num_symbols);
  for (uint32_t s = 0; s < rewriting.num_states(); ++s) {
    out.AddState();
    out.SetAccepting(s, rewriting.IsAccepting(s));
  }
  for (uint32_t s : rewriting.initial()) out.AddInitial(s);
  for (uint32_t s = 0; s < rewriting.num_states(); ++s) {
    for (const NfaTransition& t : rewriting.TransitionsFrom(s)) {
      const View& view = views[SymbolLabel(t.symbol)];
      Nfa piece = view.definition->ToNfa(data_num_symbols);
      // Splice: offset piece states into `out`, link s -ε-> piece initials
      // and piece accepting -ε-> t.to.
      uint32_t offset = out.num_states();
      for (uint32_t p = 0; p < piece.num_states(); ++p) out.AddState();
      for (uint32_t p = 0; p < piece.num_states(); ++p) {
        for (const NfaTransition& pt : piece.TransitionsFrom(p)) {
          out.AddTransition(offset + p, pt.symbol, offset + pt.to);
        }
        for (uint32_t e : piece.EpsilonsFrom(p)) {
          out.AddEpsilon(offset + p, offset + e);
        }
        if (piece.IsAccepting(p)) out.AddEpsilon(offset + p, t.to);
      }
      for (uint32_t i : piece.initial()) out.AddEpsilon(s, offset + i);
    }
    for (uint32_t e : rewriting.EpsilonsFrom(s)) out.AddEpsilon(s, e);
  }
  return out;
}

}  // namespace

Result<ViewRewriting> MaximalRewriting(const Regex& query,
                                       const std::vector<View>& views,
                                       const Alphabet& alphabet,
                                       size_t max_states) {
  if (query.UsesInverse()) {
    return UnimplementedError(
        "MaximalRewriting: two-way queries are not supported (see header)");
  }
  if (views.empty()) {
    return InvalidArgumentError("MaximalRewriting: no views");
  }
  ViewRewriting out;
  for (size_t vi = 0; vi < views.size(); ++vi) {
    const View& view = views[vi];
    if (view.definition == nullptr || view.definition->UsesInverse()) {
      return UnimplementedError(
          "MaximalRewriting: two-way views are not supported");
    }
    if (!IsIdentifier(view.name)) {
      return InvalidArgumentError("MaximalRewriting: bad view name '" +
                                  view.name + "'");
    }
    uint32_t label = out.view_alphabet.InternLabel(view.name);
    if (label != vi) {
      return InvalidArgumentError("MaximalRewriting: duplicate view name '" +
                                  view.name + "'");
    }
  }

  const uint32_t k =
      std::max(static_cast<uint32_t>(alphabet.num_symbols()),
               query.MinNumSymbols());
  Dfa dfa = Minimize(Determinize(query.ToNfa(k)));
  const uint32_t n = dfa.num_states();

  // Per view: relation R_V over D-states.
  std::vector<std::vector<std::vector<bool>>> reach(views.size());
  for (size_t vi = 0; vi < views.size(); ++vi) {
    Nfa vnfa = views[vi].definition->ToNfa(k).WithoutEpsilons().Trimmed();
    reach[vi].assign(n, std::vector<bool>(n, false));
    for (uint32_t s = 0; s < n; ++s) {
      // BFS over (dfa state, view state) from (s, init).
      std::vector<bool> seen(static_cast<size_t>(n) * vnfa.num_states(),
                             false);
      std::deque<std::pair<uint32_t, uint32_t>> work;
      auto push = [&](uint32_t d, uint32_t v) {
        size_t key = static_cast<size_t>(d) * vnfa.num_states() + v;
        if (!seen[key]) {
          seen[key] = true;
          work.emplace_back(d, v);
        }
      };
      for (uint32_t v0 : vnfa.initial()) push(s, v0);
      while (!work.empty()) {
        RQ_RETURN_IF_ERROR(CheckExecContext());
        auto [d, v] = work.front();
        work.pop_front();
        if (vnfa.IsAccepting(v)) reach[vi][s][d] = true;
        for (const NfaTransition& t : vnfa.TransitionsFrom(v)) {
          push(dfa.Next(d, t.symbol), t.to);
        }
      }
    }
  }

  // Subset construction over the view alphabet.
  const uint32_t view_symbols =
      static_cast<uint32_t>(out.view_alphabet.num_symbols());
  out.automaton = Nfa(view_symbols);
  std::unordered_map<std::vector<uint32_t>, uint32_t, SubsetHash> ids;
  std::vector<std::vector<uint32_t>> subsets;
  std::deque<uint32_t> work;
  auto accepting = [&](const std::vector<uint32_t>& subset) {
    for (uint32_t s : subset) {
      if (!dfa.IsAccepting(s)) return false;
    }
    return true;
  };
  auto intern = [&](std::vector<uint32_t> subset) -> Result<uint32_t> {
    auto it = ids.find(subset);
    if (it != ids.end()) return it->second;
    if (subsets.size() >= max_states) {
      return ResourceExhaustedError("MaximalRewriting: subset budget");
    }
    uint32_t id = out.automaton.AddState();
    out.automaton.SetAccepting(id, accepting(subset));
    ids.emplace(subset, id);
    subsets.push_back(std::move(subset));
    work.push_back(id);
    return id;
  };
  RQ_ASSIGN_OR_RETURN(uint32_t start, intern({dfa.initial()}));
  out.automaton.AddInitial(start);
  while (!work.empty()) {
    RQ_RETURN_IF_ERROR(CheckExecContext());
    uint32_t id = work.front();
    work.pop_front();
    std::vector<uint32_t> subset = subsets[id];
    for (size_t vi = 0; vi < views.size(); ++vi) {
      std::vector<bool> next_mask(n, false);
      for (uint32_t s : subset) {
        for (uint32_t t = 0; t < n; ++t) {
          if (reach[vi][s][t]) next_mask[t] = true;
        }
      }
      std::vector<uint32_t> next;
      for (uint32_t t = 0; t < n; ++t) {
        if (next_mask[t]) next.push_back(t);
      }
      RQ_ASSIGN_OR_RETURN(uint32_t next_id, intern(std::move(next)));
      out.automaton.AddTransition(
          id, ForwardSymbolOf(static_cast<uint32_t>(vi)), next_id);
    }
  }
  out.automaton = out.automaton.Trimmed();
  out.empty = out.automaton.IsEmptyLanguage();
  return out;
}

Result<bool> RewritingIsExact(const ViewRewriting& rewriting,
                              const Regex& query,
                              const std::vector<View>& views,
                              const Alphabet& alphabet) {
  const uint32_t k =
      std::max(static_cast<uint32_t>(alphabet.num_symbols()),
               query.MinNumSymbols());
  Nfa expansion = ExpandRewriting(rewriting.automaton, views, k);
  // Containment expansion ⊆ Q holds by construction (asserted in tests);
  // exactness is the converse.
  LanguageContainmentResult lang =
      CheckLanguageContainment(query.ToNfa(k), expansion);
  RQ_RETURN_IF_ERROR(lang.status);
  return lang.contained;
}

Result<Relation> AnswerUsingViews(const GraphDb& db,
                                  const ViewRewriting& rewriting,
                                  const std::vector<View>& views) {
  // Materialize view answers and build the view graph.
  GraphDb view_graph;
  view_graph.EnsureNodes(db.num_nodes());
  for (size_t vi = 0; vi < views.size(); ++vi) {
    uint32_t label = view_graph.alphabet().InternLabel(views[vi].name);
    for (const auto& [x, y] : EvalPathQuery(db, *views[vi].definition)) {
      view_graph.AddEdge(x, label, y);
    }
  }
  Relation out(2);
  if (rewriting.empty) return out;
  for (const auto& [x, y] : EvalPathQueryNfa(view_graph,
                                             rewriting.automaton)) {
    out.Insert({x, y});
  }
  return out;
}

}  // namespace rq

// Maximal rewriting of RPQs using views (the paper's reference [12],
// Calvanese, De Giacomo, Lenzerini & Vardi: "Query processing using views
// for regular path queries").
//
// Given views V1..Vk (RPQs over the data alphabet) and a query Q, the
// maximal rewriting is the largest language R over the *view* alphabet
// such that every word v_{i1}..v_{im} ∈ R expands (substituting each view
// by its language) into a language contained in L(Q). It is regular and
// computable with the same automata toolkit the containment results use:
//
//   * determinize Q into D;
//   * for each view V, compute its transition relation on D's states:
//     (s, t) ∈ R_V  iff  some u ∈ L(V) drives D from s to t;
//   * run the subset construction over the view alphabet with these
//     relations; a subset is accepting iff it contains only accepting
//     D-states (so *every* expansion of the word is accepted by Q).
//
// Answering a query from view answers alone is then evaluation of the
// rewriting automaton over the "view graph" whose edges are the
// materialized view tuples. This is sound for every rewriting and complete
// exactly when the rewriting's expansion covers L(Q) (RewritingIsExact).
//
// Scope: one-way queries and views (no inverse symbols) — the exact 2RPQ
// generalization needs the two-way machinery of [12] and is future work.
#ifndef RQ_VIEWS_REWRITING_H_
#define RQ_VIEWS_REWRITING_H_

#include <string>
#include <vector>

#include "automata/nfa.h"
#include "common/status.h"
#include "graph/graph_db.h"
#include "regex/regex.h"
#include "relational/relation.h"

namespace rq {

struct View {
  std::string name;
  RegexPtr definition;
};

struct ViewRewriting {
  // One label per view, in the order given (label id = view index).
  Alphabet view_alphabet;
  // Automaton over forward view symbols accepting the maximal rewriting.
  Nfa automaton{0};
  // True if the rewriting language is empty (the views cannot answer any
  // part of the query).
  bool empty = true;
};

// Computes the maximal rewriting. Query and views must be one-way (no
// inverse atoms); view names must be distinct identifiers. `max_states`
// bounds the subset construction.
Result<ViewRewriting> MaximalRewriting(const Regex& query,
                                       const std::vector<View>& views,
                                       const Alphabet& alphabet,
                                       size_t max_states = 100000);

// True if the rewriting is exact: substituting each view's language back
// into the rewriting yields exactly L(Q) (it is always contained; exactness
// adds the converse). Exact rewritings answer Q completely from view
// answers on every database.
Result<bool> RewritingIsExact(const ViewRewriting& rewriting,
                              const Regex& query,
                              const std::vector<View>& views,
                              const Alphabet& alphabet);

// Builds the view graph (one edge per materialized view tuple) and runs
// the rewriting automaton over it. Sound: the result is always a subset of
// Q(db); equal to Q(db) on every db iff the rewriting is exact.
Result<Relation> AnswerUsingViews(const GraphDb& db,
                                  const ViewRewriting& rewriting,
                                  const std::vector<View>& views);

}  // namespace rq

#endif  // RQ_VIEWS_REWRITING_H_

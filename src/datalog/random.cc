#include "datalog/random.h"

#include <string>

namespace rq {

DatalogProgram RandomDatalogProgram(const RandomDatalogOptions& options,
                                    Rng& rng) {
  RQ_CHECK(options.num_edb > 0 && options.num_idb > 0);
  RQ_CHECK(options.max_vars >= 2);
  DatalogProgram program;
  std::vector<PredId> edb;
  std::vector<PredId> idb;
  for (size_t i = 0; i < options.num_edb; ++i) {
    edb.push_back(
        program.InternPredicate("e" + std::to_string(i), 2).value());
  }
  for (size_t i = 0; i < options.num_idb; ++i) {
    idb.push_back(
        program.InternPredicate("p" + std::to_string(i), 2).value());
  }

  for (size_t i = 0; i < options.num_idb; ++i) {
    size_t num_rules = 1 + rng.Below(options.max_rules_per_idb);
    for (size_t r = 0; r < num_rules; ++r) {
      DatalogRule rule;
      rule.num_vars = static_cast<uint32_t>(
          2 + rng.Below(options.max_vars - 1));
      size_t body_atoms = 1 + rng.Below(options.max_body_atoms);
      std::vector<bool> in_body(rule.num_vars, false);
      for (size_t b = 0; b < body_atoms; ++b) {
        DatalogAtom atom;
        // Body predicates: EDB, or IDB up to index i (up to and including i
        // when recursion is allowed, below i otherwise).
        bool use_idb = rng.Chance(0.4) && i > 0;
        bool self = options.allow_recursion && rng.Chance(0.25);
        if (self) {
          atom.predicate = idb[i];
        } else if (use_idb) {
          atom.predicate = idb[rng.Below(i)];
        } else {
          atom.predicate = edb[rng.Below(edb.size())];
        }
        VarId u = static_cast<VarId>(rng.Below(rule.num_vars));
        VarId v = static_cast<VarId>(rng.Below(rule.num_vars));
        atom.vars = {u, v};
        in_body[u] = true;
        in_body[v] = true;
        rule.body.push_back(std::move(atom));
      }
      // Head: two variables that occur in the body.
      std::vector<VarId> candidates;
      for (VarId v = 0; v < rule.num_vars; ++v) {
        if (in_body[v]) candidates.push_back(v);
      }
      rule.head.predicate = idb[i];
      rule.head.vars = {candidates[rng.Below(candidates.size())],
                        candidates[rng.Below(candidates.size())]};
      program.AddRule(std::move(rule));
    }
  }
  program.SetGoal(idb.back());
  RQ_CHECK(program.Validate().ok());
  return program;
}

DatalogProgram RandomGrqProgram(size_t components, Rng& rng) {
  RQ_CHECK(components > 0);
  DatalogProgram program;
  std::vector<PredId> layers;
  layers.push_back(program.InternPredicate("base0", 2).value());
  layers.push_back(program.InternPredicate("base1", 2).value());
  // base0/base1 are EDB (no rules).
  for (size_t c = 0; c < components; ++c) {
    PredId self =
        program.InternPredicate("q" + std::to_string(c), 2).value();
    if (rng.Chance(0.5)) {
      // Transitive closure of a random earlier predicate.
      PredId lower = layers[rng.Below(layers.size())];
      DatalogRule base;
      base.num_vars = 2;
      base.head = {self, {0, 1}};
      base.body = {{lower, {0, 1}}};
      program.AddRule(std::move(base));
      DatalogRule step;
      step.num_vars = 3;
      step.head = {self, {0, 2}};
      step.body = {{self, {0, 1}}, {lower, {1, 2}}};
      program.AddRule(std::move(step));
    } else {
      // Union of one or two conjunctive rules over earlier predicates.
      size_t num_rules = 1 + rng.Below(2);
      for (size_t r = 0; r < num_rules; ++r) {
        DatalogRule rule;
        rule.num_vars = 3;
        PredId a = layers[rng.Below(layers.size())];
        PredId b = layers[rng.Below(layers.size())];
        rule.head = {self, {0, 2}};
        if (rng.Chance(0.5)) {
          rule.body = {{a, {0, 1}}, {b, {1, 2}}};
        } else {
          // Backward middle hop keeps it conjunctive but non-chain... still
          // a valid GRQ body (composition with an inverse step).
          rule.body = {{a, {0, 1}}, {b, {2, 1}}};
        }
        program.AddRule(std::move(rule));
      }
    }
    layers.push_back(self);
  }
  program.SetGoal(layers.back());
  RQ_CHECK(program.Validate().ok());
  return program;
}

}  // namespace rq

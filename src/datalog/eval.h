// Bottom-up Datalog evaluation: naive and semi-naive fixpoints (paper §2.2).
//
// Evaluation is stratified by the dependence graph's SCC condensation:
// components are computed dependencies-first, non-recursive components with
// a single pass, recursive components with a fixpoint. The semi-naive mode
// joins each rule once per recursive body atom against that predicate's
// delta, so a fact participates in new derivations only in the round after
// it appears; the naive mode re-derives everything every round. The
// benchmark bench_datalog_eval measures the classic gap between the two.
//
// Round-counting contract (shared by both modes): a *round* is one pass
// over an SCC's rule set evaluated against the relations as they stood at
// the start of that pass. A non-recursive SCC contributes exactly one
// round; a recursive SCC contributes one round per fixpoint pass executed,
// including the final pass that derives nothing (the fixpoint
// confirmation). Both modes evaluate rounds against the round-start
// snapshot — naive defers inserts until a pass completes, and semi-naive's
// seeding pass counts as round one (when it derives nothing the fixpoint
// is already confirmed and no delta pass runs) — so for any program and
// database `rounds` is identical in the two modes; only the work done per
// round (rule_applications, tuples_considered) differs. All four fields
// are mirrored into the process-wide observability registry under the
// `datalog.*` counter names (see docs/OBSERVABILITY.md); this struct is
// the per-call adapter view.
#ifndef RQ_DATALOG_EVAL_H_
#define RQ_DATALOG_EVAL_H_

#include <cstdint>

#include "common/status.h"
#include "datalog/program.h"
#include "relational/relation.h"

namespace rq {

enum class DatalogEvalMode { kNaive, kSemiNaive };

struct DatalogEvalStats {
  uint64_t rounds = 0;            // fixpoint iterations across all SCCs
  uint64_t rule_applications = 0; // rule-body joins executed
  uint64_t tuples_considered = 0; // tuples produced by joins (pre-dedup)
  uint64_t tuples_derived = 0;    // new tuples added
};

// Evaluates the program over `edb`. Returns a database holding the EDB
// relations plus one relation per IDB predicate. `stats` is optional.
Result<Database> EvalDatalogProgram(const DatalogProgram& program,
                                    const Database& edb, DatalogEvalMode mode,
                                    DatalogEvalStats* stats = nullptr);

// Convenience: evaluates and returns the goal predicate's relation.
Result<Relation> EvalDatalogGoal(const DatalogProgram& program,
                                 const Database& edb,
                                 DatalogEvalMode mode =
                                     DatalogEvalMode::kSemiNaive,
                                 DatalogEvalStats* stats = nullptr);

}  // namespace rq

#endif  // RQ_DATALOG_EVAL_H_

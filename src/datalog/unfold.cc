#include "datalog/unfold.h"

#include <algorithm>
#include <deque>

namespace rq {

namespace {

struct PendingAtom {
  PredId predicate;
  std::vector<VarId> vars;
  size_t depth;  // remaining expansion budget
};

struct Partial {
  std::vector<CqAtom> edb_atoms;
  std::deque<PendingAtom> pending;
  std::vector<VarId> head;
  uint32_t num_vars = 0;
};

// Replaces `from` by `to` everywhere in the partial (variable unification
// needed when a rule head repeats a variable).
void SubstituteVar(Partial* p, VarId from, VarId to) {
  auto fix = [&](std::vector<VarId>& vars) {
    for (VarId& v : vars) {
      if (v == from) v = to;
    }
  };
  for (CqAtom& atom : p->edb_atoms) fix(atom.vars);
  for (PendingAtom& atom : p->pending) fix(atom.vars);
  fix(p->head);
}

}  // namespace

Result<DatalogExpansions> ExpandDatalog(const DatalogProgram& program,
                                        const ExpandLimits& limits) {
  RQ_RETURN_IF_ERROR(program.Validate());
  if (program.goal() == kInvalidPred) {
    return InvalidArgumentError("ExpandDatalog: program has no goal");
  }
  DatalogExpansions out;

  std::vector<bool> is_idb(program.num_predicates(), false);
  for (PredId p : program.IdbPredicates()) is_idb[p] = true;

  const size_t goal_arity = program.PredicateArity(program.goal());
  Partial root;
  root.num_vars = static_cast<uint32_t>(goal_arity);
  for (size_t i = 0; i < goal_arity; ++i) {
    root.head.push_back(static_cast<VarId>(i));
  }
  if (is_idb[program.goal()]) {
    root.pending.push_back({program.goal(), root.head, limits.max_depth});
  } else {
    root.edb_atoms.push_back(
        {program.PredicateName(program.goal()), root.head});
  }

  // Work budget: partials processed. Guards against programs whose
  // expansion trees blow up before any complete expansion (or per-partial
  // cap) is reached.
  const size_t max_steps = (limits.max_expansions + 1) * 64;
  size_t steps = 0;

  std::vector<Partial> stack{std::move(root)};
  while (!stack.empty()) {
    if (++steps > max_steps) {
      out.truncated = true;
      break;
    }
    Partial partial = std::move(stack.back());
    stack.pop_back();
    if (partial.edb_atoms.size() + partial.pending.size() >
        limits.max_atoms_per_expansion) {
      out.truncated = true;
      continue;
    }
    if (partial.pending.empty()) {
      if (out.expansions.size() >= limits.max_expansions) {
        out.truncated = true;
        break;
      }
      ConjunctiveQuery cq;
      cq.head = partial.head;
      cq.atoms = std::move(partial.edb_atoms);
      cq.num_vars = partial.num_vars;
      // Compact unused variable ids so Validate's bookkeeping stays tight.
      RQ_RETURN_IF_ERROR(cq.Validate());
      out.expansions.push_back(std::move(cq));
      continue;
    }
    PendingAtom next = std::move(partial.pending.front());
    partial.pending.pop_front();
    if (next.depth == 0) {
      out.depth_limited = true;
      continue;  // this branch cannot bottom out within the budget
    }
    for (const DatalogRule* rule : program.RulesFor(next.predicate)) {
      Partial child = partial;
      // Map rule variables to child variables: head variables positionally
      // onto the atom's variables (unifying child variables when the rule
      // head repeats one), remaining rule variables fresh.
      std::vector<VarId> mapping(rule->num_vars, kInvalidPred);
      std::vector<VarId> atom_vars = next.vars;
      for (size_t i = 0; i < rule->head.vars.size(); ++i) {
        VarId rv = rule->head.vars[i];
        VarId target = atom_vars[i];
        if (mapping[rv] == kInvalidPred) {
          mapping[rv] = target;
        } else if (mapping[rv] != target) {
          SubstituteVar(&child, target, mapping[rv]);
          for (VarId& v : atom_vars) {
            if (v == target) v = mapping[rv];
          }
        }
      }
      for (VarId rv = 0; rv < rule->num_vars; ++rv) {
        if (mapping[rv] == kInvalidPred) mapping[rv] = child.num_vars++;
      }
      for (const DatalogAtom& atom : rule->body) {
        std::vector<VarId> vars;
        vars.reserve(atom.vars.size());
        for (VarId v : atom.vars) vars.push_back(mapping[v]);
        if (is_idb[atom.predicate]) {
          child.pending.push_back(
              {atom.predicate, std::move(vars), next.depth - 1});
        } else {
          child.edb_atoms.push_back(
              {program.PredicateName(atom.predicate), std::move(vars)});
        }
      }
      stack.push_back(std::move(child));
    }
  }
  return out;
}

Result<UnionOfConjunctiveQueries> UnfoldNonrecursive(
    const DatalogProgram& program, const UnfoldLimits& limits) {
  RQ_RETURN_IF_ERROR(program.Validate());
  if (program.IsRecursive()) {
    return InvalidArgumentError(
        "UnfoldNonrecursive: program is recursive; a recursive program is "
        "an infinite union of conjunctive queries");
  }
  ExpandLimits expand_limits;
  // A nonrecursive program's derivation depth is bounded by the number of
  // predicates (each level strictly descends in the dependence order).
  expand_limits.max_depth = program.num_predicates() + 1;
  expand_limits.max_expansions = limits.max_disjuncts + 1;
  expand_limits.max_atoms_per_expansion = limits.max_atoms_per_disjunct;
  RQ_ASSIGN_OR_RETURN(DatalogExpansions expanded,
                      ExpandDatalog(program, expand_limits));
  if (expanded.truncated ||
      expanded.expansions.size() > limits.max_disjuncts) {
    return ResourceExhaustedError(
        "UnfoldNonrecursive: more than " +
        std::to_string(limits.max_disjuncts) + " disjuncts");
  }
  RQ_CHECK(!expanded.depth_limited);
  UnionOfConjunctiveQueries out;
  out.disjuncts = std::move(expanded.expansions);
  if (out.disjuncts.empty()) {
    return InvalidArgumentError(
        "UnfoldNonrecursive: goal has no derivations (no rules and not an "
        "EDB predicate)");
  }
  return out;
}

}  // namespace rq

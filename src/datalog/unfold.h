// Unfolding Datalog into (unions of) conjunctive queries.
//
// A nonrecursive program is equivalent to a finite UCQ (paper §2.2); the
// unfolding substitutes IDB atoms by rule bodies until only EDB atoms
// remain, with a possibly exponential blow-up that the caller bounds.
//
// A recursive program equals an infinite union of conjunctive queries (its
// expansions, one per derivation tree [46]); ExpandDatalog enumerates the
// expansions whose derivation trees have bounded depth. Bounded expansions
// drive the sound-but-incomplete side of containment checking for recursive
// classes (the exact procedures being 2EXPSPACE-complete, Theorems 7-8):
// every expansion that fails to be contained yields a concrete
// counterexample database, while exhausting a bound proves nothing by
// itself (callers report kUnknownUpToBound).
#ifndef RQ_DATALOG_UNFOLD_H_
#define RQ_DATALOG_UNFOLD_H_

#include <cstddef>

#include "common/status.h"
#include "datalog/program.h"
#include "relational/cq.h"

namespace rq {

struct UnfoldLimits {
  size_t max_disjuncts = 10000;
  size_t max_atoms_per_disjunct = 200;
};

// Unfolds a nonrecursive program's goal into an equivalent UCQ over the EDB
// predicates. Errors if the program is recursive or the limits are hit.
Result<UnionOfConjunctiveQueries> UnfoldNonrecursive(
    const DatalogProgram& program, const UnfoldLimits& limits = {});

struct ExpandLimits {
  // Maximum derivation-tree depth (an IDB atom at depth max_depth cannot be
  // expanded further; such branches are dropped).
  size_t max_depth = 4;
  size_t max_expansions = 20000;
  size_t max_atoms_per_expansion = 400;
};

// Enumerates expansions (derivation trees of depth <= max_depth) of the
// goal predicate as conjunctive queries over EDB predicates. For a
// nonrecursive program with sufficient depth this is exactly the UCQ
// unfolding. Truncation by max_expansions is reported via `truncated`.
struct DatalogExpansions {
  std::vector<ConjunctiveQuery> expansions;
  // True if max_expansions cut the enumeration short (max_depth alone does
  // not set this; it bounds the tree depth by design).
  bool truncated = false;
  // True if some IDB atom hit the depth bound (so deeper expansions exist).
  bool depth_limited = false;
};
Result<DatalogExpansions> ExpandDatalog(const DatalogProgram& program,
                                        const ExpandLimits& limits = {});

}  // namespace rq

#endif  // RQ_DATALOG_UNFOLD_H_

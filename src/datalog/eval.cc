#include "datalog/eval.h"

#include <algorithm>

#include "common/deadline.h"
#include "common/mem.h"
#include "obs/flight_recorder.h"
#include "obs/subsystems.h"
#include "obs/trace.h"

namespace rq {

namespace {

// A stored tuple lives twice (insertion-order vector + membership set);
// the set node costs roughly two pointers plus the hash.
int64_t TupleBytes(size_t arity) {
  return static_cast<int64_t>(
      2 * (sizeof(Tuple) + arity * sizeof(Value)) + 32);
}

// Applies one rule, reading body atom i from `sources[i]` and inserting new
// head tuples into `out` (only tuples absent from `existing`). Returns the
// number of new tuples. Polls the installed ExecContext per candidate
// binding; a trip lands in `*stop` and aborts the join early.
size_t ApplyRule(const DatalogRule& rule,
                 const std::vector<const Relation*>& sources,
                 const Relation& existing, Relation* out,
                 DatalogEvalStats* stats, Status* stop) {
  std::vector<MatchAtom> atoms;
  atoms.reserve(rule.body.size());
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (sources[i] == nullptr || sources[i]->empty()) return 0;
    atoms.push_back({sources[i], rule.body[i].vars});
  }
  size_t added = 0;
  MatchConjunction(atoms, rule.num_vars,
                   [&](const std::vector<Value>& binding) {
                     if (Status s = CheckExecContext(); !s.ok()) {
                       *stop = std::move(s);
                       return false;
                     }
                     if (stats != nullptr) ++stats->tuples_considered;
                     Tuple t;
                     t.reserve(rule.head.vars.size());
                     for (VarId v : rule.head.vars) t.push_back(binding[v]);
                     if (!existing.Contains(t) && out->Insert(t)) {
                       ++added;
                       MemCharge(TupleBytes(t.size()));
                     }
                     return true;
                   });
  if (stats != nullptr) ++stats->rule_applications;
  return added;
}

// Fixpoint body; the public EvalDatalogProgram wraps it with flight
// recording so timeouts and errors record their verdict.
Result<Database> EvalDatalogProgramImpl(const DatalogProgram& program,
                                        const Database& edb,
                                        DatalogEvalMode mode,
                                        DatalogEvalStats* stats) {
  RQ_TRACE_SPAN_VAR(span, "datalog.eval");
  // Fact stores and per-round delta relations are the fixpoint's memory;
  // ApplyRule charges every derived tuple and the InsertAll flushes below
  // charge the copies kept in the head relations.
  MemScope mem_scope(MemSubsystem::kDatalog);
  RQ_RETURN_IF_ERROR(program.Validate());
  DatalogEvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = DatalogEvalStats();

  // Working database: copy of EDB plus empty IDB relations.
  Database db;
  for (const std::string& name : edb.RelationNames()) {
    const Relation* rel = edb.Find(name);
    RQ_ASSIGN_OR_RETURN(Relation * copy, db.GetOrCreate(name, rel->arity()));
    copy->InsertAll(*rel);
    MemCharge(TupleBytes(rel->arity()) *
              static_cast<int64_t>(rel->size()));
  }
  for (PredId p : program.IdbPredicates()) {
    if (edb.Find(program.PredicateName(p)) != nullptr) {
      return InvalidArgumentError("IDB predicate " +
                                  program.PredicateName(p) +
                                  " also present in the EDB");
    }
    RQ_RETURN_IF_ERROR(db.GetOrCreate(program.PredicateName(p),
                                      program.PredicateArity(p))
                           .status());
  }
  // EDB predicates used by the program but missing from the given database
  // are empty relations.
  for (PredId p = 0; p < program.num_predicates(); ++p) {
    RQ_RETURN_IF_ERROR(
        db.GetOrCreate(program.PredicateName(p), program.PredicateArity(p))
            .status());
  }

  auto rel_of = [&](PredId p) {
    return db.FindMutable(program.PredicateName(p));
  };

  std::vector<DatalogProgram::Scc> sccs = program.DependencySccs();
  std::vector<uint32_t> scc_of(program.num_predicates(), 0);
  for (uint32_t i = 0; i < sccs.size(); ++i) {
    for (PredId p : sccs[i].predicates) scc_of[p] = i;
  }

  Status stop;  // set by ApplyRule when the installed ExecContext trips
  for (uint32_t scc_index = 0; scc_index < sccs.size(); ++scc_index) {
    RQ_RETURN_IF_ERROR(CheckExecContext());
    const DatalogProgram::Scc& scc = sccs[scc_index];
    // Rules contributing to this SCC.
    std::vector<const DatalogRule*> rules;
    for (const DatalogRule& rule : program.rules()) {
      if (scc_of[rule.head.predicate] == scc_index) rules.push_back(&rule);
    }
    if (rules.empty()) continue;

    // Dense index of the SCC's predicates, shared by both recursive modes
    // (per-round fresh/delta relations are stored per SCC predicate).
    std::vector<PredId> scc_preds = scc.predicates;
    auto scc_pred_index = [&](PredId p) -> int {
      for (size_t i = 0; i < scc_preds.size(); ++i) {
        if (scc_preds[i] == p) return static_cast<int>(i);
      }
      return -1;
    };

    if (!scc.recursive) {
      // One pass: all body atoms refer to earlier SCCs.
      for (const DatalogRule* rule : rules) {
        std::vector<const Relation*> sources;
        for (const DatalogAtom& atom : rule->body) {
          sources.push_back(rel_of(atom.predicate));
        }
        Relation* head_rel = rel_of(rule->head.predicate);
        Relation fresh(head_rel->arity());
        stats->tuples_derived +=
            ApplyRule(*rule, sources, *head_rel, &fresh, stats, &stop);
        RQ_RETURN_IF_ERROR(stop);
        MemCharge(TupleBytes(head_rel->arity()) *
                  static_cast<int64_t>(head_rel->InsertAll(fresh)));
      }
      ++stats->rounds;
      continue;
    }

    if (mode == DatalogEvalMode::kNaive) {
      // Re-run every rule over the relations as they stood at the start of
      // the round (snapshot semantics), inserting only after every rule ran.
      // This makes a "round" mean the same thing in both modes — see the
      // round-counting contract on DatalogEvalStats in eval.h.
      for (;;) {
        RQ_RETURN_IF_ERROR(CheckExecContext());
        ++stats->rounds;
        std::vector<Relation> fresh;
        for (PredId p : scc_preds) {
          fresh.emplace_back(program.PredicateArity(p));
        }
        size_t added = 0;
        for (const DatalogRule* rule : rules) {
          std::vector<const Relation*> sources;
          for (const DatalogAtom& atom : rule->body) {
            sources.push_back(rel_of(atom.predicate));
          }
          int hd = scc_pred_index(rule->head.predicate);
          added += ApplyRule(*rule, sources, *rel_of(rule->head.predicate),
                             &fresh[hd], stats, &stop);
          RQ_RETURN_IF_ERROR(stop);
        }
        stats->tuples_derived += added;
        if (added == 0) break;
        for (size_t i = 0; i < scc_preds.size(); ++i) {
          Relation* rel = rel_of(scc_preds[i]);
          MemCharge(TupleBytes(rel->arity()) *
                    static_cast<int64_t>(rel->InsertAll(fresh[i])));
        }
      }
      continue;
    }

    // Semi-naive. Deltas per SCC predicate, seeded by one full pass (SCC
    // relations start empty, so only exit rules fire).
    std::vector<Relation> delta;
    for (PredId p : scc_preds) {
      delta.emplace_back(program.PredicateArity(p));
    }
    ++stats->rounds;
    size_t seed_added = 0;
    for (const DatalogRule* rule : rules) {
      std::vector<const Relation*> sources;
      for (const DatalogAtom& atom : rule->body) {
        sources.push_back(rel_of(atom.predicate));
      }
      Relation* head_rel = rel_of(rule->head.predicate);
      int di = scc_pred_index(rule->head.predicate);
      seed_added +=
          ApplyRule(*rule, sources, *head_rel, &delta[di], stats, &stop);
      RQ_RETURN_IF_ERROR(stop);
    }
    stats->tuples_derived += seed_added;
    for (size_t i = 0; i < scc_preds.size(); ++i) {
      Relation* rel = rel_of(scc_preds[i]);
      MemCharge(TupleBytes(rel->arity()) *
                static_cast<int64_t>(rel->InsertAll(delta[i])));
    }
    // An empty seed delta already confirms the fixpoint: every delta-bound
    // rule application below would join against an empty relation. Skipping
    // the loop keeps the round count identical to naive mode.
    if (seed_added == 0) continue;

    for (;;) {
      RQ_RETURN_IF_ERROR(CheckExecContext());
      ++stats->rounds;
      std::vector<Relation> next_delta;
      for (PredId p : scc_preds) {
        next_delta.emplace_back(program.PredicateArity(p));
      }
      size_t added = 0;
      for (const DatalogRule* rule : rules) {
        // One application per occurrence of an SCC predicate in the body,
        // with that occurrence bound to the delta.
        for (size_t i = 0; i < rule->body.size(); ++i) {
          int di = scc_pred_index(rule->body[i].predicate);
          if (di < 0) continue;
          std::vector<const Relation*> sources;
          for (size_t j = 0; j < rule->body.size(); ++j) {
            if (j == i) {
              sources.push_back(&delta[di]);
            } else {
              sources.push_back(rel_of(rule->body[j].predicate));
            }
          }
          Relation* head_rel = rel_of(rule->head.predicate);
          int hd = scc_pred_index(rule->head.predicate);
          added += ApplyRule(*rule, sources, *head_rel, &next_delta[hd],
                             stats, &stop);
          RQ_RETURN_IF_ERROR(stop);
        }
      }
      stats->tuples_derived += added;
      if (added == 0) break;
      for (size_t i = 0; i < scc_preds.size(); ++i) {
        Relation* rel = rel_of(scc_preds[i]);
        MemCharge(TupleBytes(rel->arity()) *
                  static_cast<int64_t>(rel->InsertAll(next_delta[i])));
      }
      delta = std::move(next_delta);
    }
  }

  // Flush this evaluation into the shared observability registry (the
  // datalog.* vocabulary; the legacy stats struct doubles as the local
  // accumulator so hot loops never touch shared state).
  obs::DatalogCounters& counters = obs::DatalogCounters::Get();
  counters.evals.Increment();
  counters.rounds.Add(stats->rounds);
  counters.rule_applications.Add(stats->rule_applications);
  counters.tuples_considered.Add(stats->tuples_considered);
  counters.tuples_derived.Add(stats->tuples_derived);
  counters.rounds_per_eval.Record(stats->rounds);
  span.AddAttr("rounds", stats->rounds);
  span.AddAttr("tuples_considered", stats->tuples_considered);
  return db;
}

}  // namespace

Result<Database> EvalDatalogProgram(const DatalogProgram& program,
                                    const Database& edb, DatalogEvalMode mode,
                                    DatalogEvalStats* stats) {
  obs::FlightTimer timer(obs::QueryKind::kDatalogEval);
  DatalogEvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  Result<Database> result =
      EvalDatalogProgramImpl(program, edb, mode, stats);
  timer.Finish(result.ok() ? obs::kFlightVerdictOk
                           : obs::FlightVerdictFromError(result.status()),
               stats->rounds);
  return result;
}

Result<Relation> EvalDatalogGoal(const DatalogProgram& program,
                                 const Database& edb, DatalogEvalMode mode,
                                 DatalogEvalStats* stats) {
  if (program.goal() == kInvalidPred) {
    return InvalidArgumentError("program has no goal predicate");
  }
  RQ_ASSIGN_OR_RETURN(Database db, EvalDatalogProgram(program, edb, mode,
                                                      stats));
  const Relation* rel = db.Find(program.PredicateName(program.goal()));
  RQ_CHECK(rel != nullptr);
  return *rel;
}

}  // namespace rq

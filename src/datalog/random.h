// Random Datalog program generation for property tests and benchmarks.
//
// Generated programs are always valid (range-restricted, consistent
// arities, nonempty bodies) and come in two flavors: arbitrary positive
// programs, and GRQ-shaped programs (recursion confined to transitive
// closure) for exercising the §4.1 machinery.
#ifndef RQ_DATALOG_RANDOM_H_
#define RQ_DATALOG_RANDOM_H_

#include "common/rng.h"
#include "datalog/program.h"

namespace rq {

struct RandomDatalogOptions {
  size_t num_edb = 2;          // e0, e1, ... all binary
  size_t num_idb = 3;          // p0, p1, ...
  size_t max_rules_per_idb = 3;
  size_t max_body_atoms = 3;
  size_t max_vars = 5;
  bool allow_recursion = true;
};

// Arbitrary positive program; goal = last IDB predicate. All predicates
// binary (the graph-database setting of §3).
DatalogProgram RandomDatalogProgram(const RandomDatalogOptions& options,
                                    Rng& rng);

// GRQ-shaped program: a tower of components, each either a union of
// conjunctive rules over earlier predicates or a strict transitive-closure
// pair of rules. Always passes AnalyzeGrq.
DatalogProgram RandomGrqProgram(size_t components, Rng& rng);

}  // namespace rq

#endif  // RQ_DATALOG_RANDOM_H_

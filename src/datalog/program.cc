#include "datalog/program.h"

#include <algorithm>

#include "common/strings.h"

namespace rq {

Result<PredId> DatalogProgram::InternPredicate(std::string_view name,
                                               size_t arity) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    if (arities_[it->second] != arity) {
      return InvalidArgumentError(
          "predicate " + std::string(name) + " used with arity " +
          std::to_string(arity) + " but declared with arity " +
          std::to_string(arities_[it->second]));
    }
    return it->second;
  }
  PredId id = static_cast<PredId>(names_.size());
  names_.emplace_back(name);
  arities_.push_back(arity);
  index_.emplace(names_.back(), id);
  return id;
}

Result<PredId> DatalogProgram::FindPredicate(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return NotFoundError("unknown predicate: " + std::string(name));
  }
  return it->second;
}

void DatalogProgram::AddRule(DatalogRule rule) {
  rules_.push_back(std::move(rule));
}

bool DatalogProgram::IsIdb(PredId p) const {
  for (const DatalogRule& rule : rules_) {
    if (rule.head.predicate == p) return true;
  }
  return false;
}

std::vector<PredId> DatalogProgram::IdbPredicates() const {
  std::vector<bool> idb(num_predicates(), false);
  for (const DatalogRule& rule : rules_) idb[rule.head.predicate] = true;
  std::vector<PredId> out;
  for (PredId p = 0; p < num_predicates(); ++p) {
    if (idb[p]) out.push_back(p);
  }
  return out;
}

std::vector<PredId> DatalogProgram::EdbPredicates() const {
  std::vector<bool> idb(num_predicates(), false);
  for (const DatalogRule& rule : rules_) idb[rule.head.predicate] = true;
  std::vector<PredId> out;
  for (PredId p = 0; p < num_predicates(); ++p) {
    if (!idb[p]) out.push_back(p);
  }
  return out;
}

Status DatalogProgram::Validate() const {
  for (const DatalogRule& rule : rules_) {
    if (rule.head.predicate >= num_predicates()) {
      return InvalidArgumentError("rule head predicate out of range");
    }
    if (rule.head.vars.size() != arities_[rule.head.predicate]) {
      return InvalidArgumentError("rule head arity mismatch for " +
                                  names_[rule.head.predicate]);
    }
    if (rule.body.empty()) {
      return InvalidArgumentError(
          "rule for " + names_[rule.head.predicate] +
          " has an empty body (facts belong in the EDB)");
    }
    std::vector<bool> in_body(rule.num_vars, false);
    for (const DatalogAtom& atom : rule.body) {
      if (atom.predicate >= num_predicates()) {
        return InvalidArgumentError("body predicate out of range");
      }
      if (atom.vars.size() != arities_[atom.predicate]) {
        return InvalidArgumentError("body arity mismatch for " +
                                    names_[atom.predicate]);
      }
      for (VarId v : atom.vars) {
        if (v >= rule.num_vars) {
          return InvalidArgumentError("body variable id out of range");
        }
        in_body[v] = true;
      }
    }
    for (VarId v : rule.head.vars) {
      if (v >= rule.num_vars) {
        return InvalidArgumentError("head variable id out of range");
      }
      if (!in_body[v]) {
        return InvalidArgumentError(
            "rule for " + names_[rule.head.predicate] +
            " is not range restricted (head variable not in body)");
      }
    }
  }
  if (goal_ != kInvalidPred && goal_ >= num_predicates()) {
    return InvalidArgumentError("goal predicate out of range");
  }
  return Status::Ok();
}

std::vector<DatalogProgram::Scc> DatalogProgram::DependencySccs() const {
  // Dependence edges: body predicate -> head predicate ("head depends on
  // body"). Tarjan emits SCCs in reverse topological order of the condensed
  // graph over these edges; we want dependencies first, which is exactly
  // Tarjan's emission order when edges point body -> head... To keep the
  // reasoning simple we build successor lists body->head and reverse the
  // final SCC list as needed.
  const size_t n = num_predicates();
  std::vector<std::vector<PredId>> succ(n);
  for (const DatalogRule& rule : rules_) {
    for (const DatalogAtom& atom : rule.body) {
      succ[atom.predicate].push_back(rule.head.predicate);
    }
  }
  for (auto& s : succ) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }

  // Iterative Tarjan.
  std::vector<uint32_t> indexes(n, 0xffffffffu);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<PredId> stack;
  std::vector<Scc> sccs;
  uint32_t counter = 0;

  struct Frame {
    PredId v;
    size_t child;
  };
  for (PredId root = 0; root < n; ++root) {
    if (indexes[root] != 0xffffffffu) continue;
    std::vector<Frame> frames{{root, 0}};
    indexes[root] = lowlink[root] = counter++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.child < succ[frame.v].size()) {
        PredId w = succ[frame.v][frame.child++];
        if (indexes[w] == 0xffffffffu) {
          indexes[w] = lowlink[w] = counter++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[frame.v] = std::min(lowlink[frame.v], indexes[w]);
        }
      } else {
        PredId v = frame.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] =
              std::min(lowlink[frames.back().v], lowlink[v]);
        }
        if (lowlink[v] == indexes[v]) {
          Scc scc;
          for (;;) {
            PredId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            scc.predicates.push_back(w);
            if (w == v) break;
          }
          std::sort(scc.predicates.begin(), scc.predicates.end());
          sccs.push_back(std::move(scc));
        }
      }
    }
  }
  // Tarjan emits an SCC only after all SCCs it can reach; with edges
  // body->head, an SCC is emitted after everything derivable FROM it. We
  // need dependencies (bodies) first, i.e. reverse emission order.
  std::reverse(sccs.begin(), sccs.end());

  // Mark recursive SCCs (size > 1, or a self-dependence).
  std::vector<uint32_t> scc_of(n, 0);
  for (uint32_t i = 0; i < sccs.size(); ++i) {
    for (PredId p : sccs[i].predicates) scc_of[p] = i;
  }
  for (const DatalogRule& rule : rules_) {
    for (const DatalogAtom& atom : rule.body) {
      if (scc_of[atom.predicate] == scc_of[rule.head.predicate]) {
        sccs[scc_of[rule.head.predicate]].recursive = true;
      }
    }
  }
  for (Scc& scc : sccs) {
    if (scc.predicates.size() > 1) scc.recursive = true;
  }
  return sccs;
}

std::vector<bool> DatalogProgram::RecursivePredicates() const {
  std::vector<bool> out(num_predicates(), false);
  for (const Scc& scc : DependencySccs()) {
    if (scc.recursive) {
      for (PredId p : scc.predicates) out[p] = true;
    }
  }
  return out;
}

bool DatalogProgram::IsRecursive() const {
  for (const Scc& scc : DependencySccs()) {
    if (scc.recursive) return true;
  }
  return false;
}

bool DatalogProgram::IsMonadic() const {
  std::vector<bool> recursive = RecursivePredicates();
  for (PredId p = 0; p < num_predicates(); ++p) {
    if (recursive[p] && PredicateArity(p) != 1) return false;
  }
  return true;
}

bool DatalogProgram::IsLinear() const {
  std::vector<DatalogProgram::Scc> sccs = DependencySccs();
  std::vector<uint32_t> scc_of(num_predicates(), 0);
  for (uint32_t i = 0; i < sccs.size(); ++i) {
    for (PredId p : sccs[i].predicates) scc_of[p] = i;
  }
  for (const DatalogRule& rule : rules_) {
    int same_scc = 0;
    for (const DatalogAtom& atom : rule.body) {
      if (scc_of[atom.predicate] == scc_of[rule.head.predicate] &&
          sccs[scc_of[atom.predicate]].recursive) {
        ++same_scc;
      }
    }
    if (same_scc > 1) return false;
  }
  return true;
}

std::vector<const DatalogRule*> DatalogProgram::RulesFor(PredId p) const {
  std::vector<const DatalogRule*> out;
  for (const DatalogRule& rule : rules_) {
    if (rule.head.predicate == p) out.push_back(&rule);
  }
  return out;
}

std::string RuleToString(const DatalogProgram& program,
                         const DatalogRule& rule) {
  auto var_name = [&](VarId v) -> std::string {
    if (v < rule.var_names.size() && !rule.var_names[v].empty()) {
      return rule.var_names[v];
    }
    return "V" + std::to_string(v);
  };
  auto atom_str = [&](const DatalogAtom& atom) {
    std::string out = program.PredicateName(atom.predicate);
    out.push_back('(');
    for (size_t i = 0; i < atom.vars.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += var_name(atom.vars[i]);
    }
    out.push_back(')');
    return out;
  };
  std::string out = atom_str(rule.head) + " :- ";
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i > 0) out += ", ";
    out += atom_str(rule.body[i]);
  }
  out += ".";
  return out;
}

std::string DatalogProgram::ToString() const {
  std::string out;
  for (const DatalogRule& rule : rules_) {
    out += RuleToString(*this, rule);
    out.push_back('\n');
  }
  if (goal_ != kInvalidPred) {
    out += "?- " + names_[goal_] + ".\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

struct ParsedAtom {
  std::string predicate;
  std::vector<std::string> args;
};

// Parses "pred(a, b)"; advances pos.
Result<ParsedAtom> ParseOneAtom(std::string_view text, size_t* pos) {
  auto skip = [&] {
    while (*pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[*pos]))) {
      ++*pos;
    }
  };
  skip();
  size_t start = *pos;
  while (*pos < text.size() && IsIdentChar(text[*pos])) ++*pos;
  if (*pos == start) {
    return InvalidArgumentError("datalog: expected predicate name");
  }
  ParsedAtom atom;
  atom.predicate = std::string(text.substr(start, *pos - start));
  skip();
  if (*pos >= text.size() || text[*pos] != '(') {
    return InvalidArgumentError("datalog: expected '(' after " +
                                atom.predicate);
  }
  ++*pos;
  for (;;) {
    skip();
    size_t vstart = *pos;
    while (*pos < text.size() && IsIdentChar(text[*pos])) ++*pos;
    if (*pos == vstart) {
      return InvalidArgumentError("datalog: expected variable in " +
                                  atom.predicate);
    }
    atom.args.emplace_back(text.substr(vstart, *pos - vstart));
    skip();
    if (*pos < text.size() && text[*pos] == ',') {
      ++*pos;
      continue;
    }
    break;
  }
  if (*pos >= text.size() || text[*pos] != ')') {
    return InvalidArgumentError("datalog: expected ')' in " + atom.predicate);
  }
  ++*pos;
  return atom;
}

}  // namespace

Result<DatalogProgram> ParseDatalog(std::string_view text) {
  DatalogProgram program;
  // Split into statements on '.', respecting nothing fancy (no strings).
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    if (line.back() != '.') {
      return InvalidArgumentError("datalog: statement must end with '.': " +
                                  std::string(line));
    }
    line.remove_suffix(1);
    line = StripWhitespace(line);
    if (StartsWith(line, "?-")) {
      std::string_view name = StripWhitespace(line.substr(2));
      if (!IsIdentifier(name)) {
        return InvalidArgumentError("datalog: bad goal name");
      }
      RQ_ASSIGN_OR_RETURN(PredId goal, program.FindPredicate(name));
      program.SetGoal(goal);
      continue;
    }
    size_t sep = line.find(":-");
    if (sep == std::string_view::npos) {
      return InvalidArgumentError("datalog: missing ':-' in rule: " +
                                  std::string(line));
    }
    std::string_view head_text = StripWhitespace(line.substr(0, sep));
    std::string_view body_text = StripWhitespace(line.substr(sep + 2));

    size_t pos = 0;
    RQ_ASSIGN_OR_RETURN(ParsedAtom head_atom, ParseOneAtom(head_text, &pos));
    if (StripWhitespace(head_text.substr(pos)) != "") {
      return InvalidArgumentError("datalog: junk after head atom");
    }
    std::vector<ParsedAtom> body_atoms;
    pos = 0;
    for (;;) {
      RQ_ASSIGN_OR_RETURN(ParsedAtom atom, ParseOneAtom(body_text, &pos));
      body_atoms.push_back(std::move(atom));
      while (pos < body_text.size() &&
             std::isspace(static_cast<unsigned char>(body_text[pos]))) {
        ++pos;
      }
      if (pos < body_text.size() && body_text[pos] == ',') {
        ++pos;
        continue;
      }
      break;
    }
    if (pos != body_text.size()) {
      return InvalidArgumentError("datalog: junk after body: " +
                                  std::string(body_text.substr(pos)));
    }

    DatalogRule rule;
    std::unordered_map<std::string, VarId> vars;
    auto intern_var = [&](const std::string& name) {
      auto it = vars.find(name);
      if (it != vars.end()) return it->second;
      VarId id = rule.num_vars++;
      vars.emplace(name, id);
      rule.var_names.push_back(name);
      return id;
    };
    RQ_ASSIGN_OR_RETURN(
        PredId head_pred,
        program.InternPredicate(head_atom.predicate, head_atom.args.size()));
    rule.head.predicate = head_pred;
    for (const std::string& v : head_atom.args) {
      rule.head.vars.push_back(intern_var(v));
    }
    for (const ParsedAtom& atom : body_atoms) {
      RQ_ASSIGN_OR_RETURN(
          PredId pred,
          program.InternPredicate(atom.predicate, atom.args.size()));
      DatalogAtom out;
      out.predicate = pred;
      for (const std::string& v : atom.args) {
        out.vars.push_back(intern_var(v));
      }
      rule.body.push_back(std::move(out));
    }
    program.AddRule(std::move(rule));
  }
  RQ_RETURN_IF_ERROR(program.Validate());
  return program;
}

}  // namespace rq

// Datalog programs (paper §2.2): Horn rules over predicates, a designated
// goal predicate, the dependence graph, and the structural classifications
// the paper discusses (nonrecursive, monadic, linear).
#ifndef RQ_DATALOG_PROGRAM_H_
#define RQ_DATALOG_PROGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/matcher.h"

namespace rq {

using PredId = uint32_t;

inline constexpr PredId kInvalidPred = 0xffffffffu;

struct DatalogAtom {
  PredId predicate;
  std::vector<VarId> vars;
};

// One Horn rule. Variables are dense ids local to the rule; names optional.
struct DatalogRule {
  DatalogAtom head;
  std::vector<DatalogAtom> body;
  uint32_t num_vars = 0;
  std::vector<std::string> var_names;
};

class DatalogProgram {
 public:
  DatalogProgram() = default;

  // Interns a predicate; fails on arity mismatch with a previous use.
  Result<PredId> InternPredicate(std::string_view name, size_t arity);
  Result<PredId> FindPredicate(std::string_view name) const;

  const std::string& PredicateName(PredId p) const {
    RQ_CHECK(p < names_.size());
    return names_[p];
  }
  size_t PredicateArity(PredId p) const {
    RQ_CHECK(p < arities_.size());
    return arities_[p];
  }
  size_t num_predicates() const { return names_.size(); }

  void AddRule(DatalogRule rule);
  const std::vector<DatalogRule>& rules() const { return rules_; }

  void SetGoal(PredId goal) { goal_ = goal; }
  PredId goal() const { return goal_; }

  // A predicate is intensional (IDB) iff it occurs in some rule head.
  bool IsIdb(PredId p) const;
  std::vector<PredId> IdbPredicates() const;
  std::vector<PredId> EdbPredicates() const;

  // Range restriction, goal validity, body predicates known.
  Status Validate() const;

  // Strongly connected components of the dependence graph, in topological
  // order (dependencies first). Only predicates that occur in the program
  // appear. An SCC is "recursive" if it has >1 predicate or a self-loop.
  struct Scc {
    std::vector<PredId> predicates;
    bool recursive = false;
  };
  std::vector<Scc> DependencySccs() const;

  // A predicate is recursive if it lies in a recursive SCC.
  std::vector<bool> RecursivePredicates() const;

  bool IsRecursive() const;
  // Monadic Datalog: every recursive predicate has arity 1 (§2.3).
  bool IsMonadic() const;
  // Linear: every rule body contains at most one atom from the head's SCC.
  bool IsLinear() const;

  // Rules whose head is `p`.
  std::vector<const DatalogRule*> RulesFor(PredId p) const;

  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<size_t> arities_;
  std::unordered_map<std::string, PredId> index_;
  std::vector<DatalogRule> rules_;
  PredId goal_ = kInvalidPred;
};

// Parses a textual program:
//   path(X, Y) :- edge(X, Y).
//   path(X, Z) :- path(X, Y), edge(Y, Z).
//   ?- path.
// Rules end with '.'; '#' starts a comment line; "?- name." sets the goal
// (optional; the goal can also be set programmatically).
Result<DatalogProgram> ParseDatalog(std::string_view text);

std::string RuleToString(const DatalogProgram& program,
                         const DatalogRule& rule);

}  // namespace rq

#endif  // RQ_DATALOG_PROGRAM_H_

#include "crpq/to_datalog.h"

#include <string>

#include "pathquery/to_datalog.h"

namespace rq {

Result<DatalogProgram> Uc2RpqToDatalog(const Uc2Rpq& query,
                                       const Alphabet& alphabet) {
  RQ_RETURN_IF_ERROR(query.Validate());
  DatalogProgram program;
  const size_t arity = query.disjuncts[0].head.size();
  RQ_ASSIGN_OR_RETURN(PredId ans, program.InternPredicate("ans", arity));

  size_t component = 0;
  for (const Crpq& disjunct : query.disjuncts) {
    DatalogRule rule;
    rule.num_vars = disjunct.num_vars;
    rule.var_names = disjunct.var_names;
    rule.head.predicate = ans;
    rule.head.vars = disjunct.head;
    for (const CrpqAtom& atom : disjunct.atoms) {
      std::string prefix = "rpq" + std::to_string(component++) + "_";
      RQ_ASSIGN_OR_RETURN(
          PredId atom_ans,
          AppendPathAutomaton(&program, *atom.regex, alphabet, prefix));
      rule.body.push_back({atom_ans, {atom.from, atom.to}});
    }
    program.AddRule(std::move(rule));
  }
  program.SetGoal(ans);
  RQ_RETURN_IF_ERROR(program.Validate());
  return program;
}

}  // namespace rq

// Embedding UC2RPQs into Datalog (paper §3.4: "the classes of
// graph-database queries we have discussed ... can all be expressed in
// graph-database Datalog").
//
// Each 2RPQ atom becomes a linear automaton component (AppendPathAutomaton)
// and each disjunct becomes one goal rule joining its atoms' answer
// predicates. Together with RqToDatalog this completes the paper's claim
// for every class in the ladder.
#ifndef RQ_CRPQ_TO_DATALOG_H_
#define RQ_CRPQ_TO_DATALOG_H_

#include "common/status.h"
#include "crpq/crpq.h"
#include "datalog/program.h"

namespace rq {

// Goal predicate is "ans" with the query's head arity. Note the embedding
// quantifies over the active domain (nodes incident to at least one edge),
// so answers on isolated nodes (possible when an atom's language contains
// the empty word) are not produced; EvalUc2Rpq and the translation agree on
// databases without isolated nodes.
Result<DatalogProgram> Uc2RpqToDatalog(const Uc2Rpq& query,
                                       const Alphabet& alphabet);

}  // namespace rq

#endif  // RQ_CRPQ_TO_DATALOG_H_

#include "crpq/crpq.h"

#include <algorithm>
#include <unordered_map>

#include "automata/words.h"
#include "common/deadline.h"
#include "common/strings.h"
#include "containment/batch.h"
#include "obs/flight_recorder.h"
#include "obs/profile.h"
#include "pathquery/containment.h"
#include "pathquery/path_query.h"

namespace rq {

Status Crpq::Validate() const {
  if (atoms.empty()) return InvalidArgumentError("C2RPQ: no atoms");
  if (head.empty()) return InvalidArgumentError("C2RPQ: empty head");
  std::vector<bool> in_body(num_vars, false);
  for (const CrpqAtom& atom : atoms) {
    if (atom.regex == nullptr) {
      return InvalidArgumentError("C2RPQ: null regex");
    }
    if (atom.from >= num_vars || atom.to >= num_vars) {
      return InvalidArgumentError("C2RPQ: variable id out of range");
    }
    in_body[atom.from] = true;
    in_body[atom.to] = true;
  }
  for (VarId v : head) {
    if (v >= num_vars || !in_body[v]) {
      return InvalidArgumentError(
          "C2RPQ: head variable does not occur in the body");
    }
  }
  return Status::Ok();
}

namespace {

std::string CrpqVarName(const Crpq& q, VarId v) {
  if (v < q.var_names.size() && !q.var_names[v].empty()) {
    return q.var_names[v];
  }
  return "v" + std::to_string(v);
}

}  // namespace

std::string Crpq::ToString(const Alphabet& alphabet) const {
  std::string out = "q(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out += ", ";
    out += CrpqVarName(*this, head[i]);
  }
  out += ") :- ";
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += "(" + atoms[i].regex->ToString(alphabet) + ")(" +
           CrpqVarName(*this, atoms[i].from) + ", " +
           CrpqVarName(*this, atoms[i].to) + ")";
  }
  return out;
}

Status Uc2Rpq::Validate() const {
  if (disjuncts.empty()) return InvalidArgumentError("UC2RPQ: no disjuncts");
  for (const Crpq& q : disjuncts) {
    RQ_RETURN_IF_ERROR(q.Validate());
    if (q.head.size() != disjuncts[0].head.size()) {
      return InvalidArgumentError("UC2RPQ: disjunct arity mismatch");
    }
  }
  return Status::Ok();
}

std::string Uc2Rpq::ToString(const Alphabet& alphabet) const {
  std::string out;
  for (const Crpq& q : disjuncts) {
    out += q.ToString(alphabet);
    out.push_back('\n');
  }
  return out;
}

Result<Crpq> ParseCrpq(std::string_view text, Alphabet* alphabet) {
  size_t sep = text.find(":-");
  if (sep == std::string_view::npos) {
    return InvalidArgumentError("C2RPQ: missing ':-' in '" +
                                std::string(text) + "'");
  }
  Crpq query;
  std::unordered_map<std::string, VarId> vars;
  auto intern = [&](std::string_view name) {
    auto it = vars.find(std::string(name));
    if (it != vars.end()) return it->second;
    VarId id = query.num_vars++;
    vars.emplace(std::string(name), id);
    query.var_names.emplace_back(name);
    return id;
  };

  // Head: ident(v1, ..., vk).
  std::string_view head = StripWhitespace(text.substr(0, sep));
  size_t open = head.find('(');
  if (open == std::string_view::npos || head.back() != ')') {
    return InvalidArgumentError("C2RPQ: malformed head");
  }
  for (const std::string& piece :
       StrSplit(head.substr(open + 1, head.size() - open - 2), ',')) {
    std::string_view name = StripWhitespace(piece);
    if (!IsIdentifier(name)) {
      return InvalidArgumentError("C2RPQ: bad head variable '" +
                                  std::string(name) + "'");
    }
    query.head.push_back(intern(name));
  }

  // Body: atoms "(regex)(u, v)" separated by commas at depth 0.
  std::string_view body = StripWhitespace(text.substr(sep + 2));
  size_t pos = 0;
  auto skip_space = [&] {
    while (pos < body.size() &&
           std::isspace(static_cast<unsigned char>(body[pos]))) {
      ++pos;
    }
  };
  for (;;) {
    skip_space();
    if (pos >= body.size() || body[pos] != '(') {
      return InvalidArgumentError("C2RPQ: expected '(' starting an atom");
    }
    // Find the matching ')'.
    size_t depth = 0;
    size_t start = pos;
    size_t end = pos;
    for (; end < body.size(); ++end) {
      if (body[end] == '(') ++depth;
      if (body[end] == ')') {
        if (--depth == 0) break;
      }
    }
    if (end >= body.size()) {
      return InvalidArgumentError("C2RPQ: unbalanced parentheses in regex");
    }
    RQ_ASSIGN_OR_RETURN(
        RegexPtr regex,
        ParseRegex(body.substr(start + 1, end - start - 1), alphabet));
    pos = end + 1;
    skip_space();
    if (pos >= body.size() || body[pos] != '(') {
      return InvalidArgumentError("C2RPQ: expected '(u, v)' after regex");
    }
    size_t close = body.find(')', pos);
    if (close == std::string_view::npos) {
      return InvalidArgumentError("C2RPQ: missing ')' after variables");
    }
    std::vector<std::string> pieces =
        StrSplit(body.substr(pos + 1, close - pos - 1), ',');
    if (pieces.size() != 2) {
      return InvalidArgumentError("C2RPQ: atoms take exactly two variables");
    }
    std::string_view u = StripWhitespace(pieces[0]);
    std::string_view v = StripWhitespace(pieces[1]);
    if (!IsIdentifier(u) || !IsIdentifier(v)) {
      return InvalidArgumentError("C2RPQ: bad atom variables");
    }
    query.atoms.push_back({regex, intern(u), intern(v)});
    pos = close + 1;
    skip_space();
    if (pos < body.size() && body[pos] == ',') {
      ++pos;
      continue;
    }
    break;
  }
  if (pos != body.size()) {
    return InvalidArgumentError("C2RPQ: trailing input '" +
                                std::string(body.substr(pos)) + "'");
  }
  RQ_RETURN_IF_ERROR(query.Validate());
  return query;
}

Result<Uc2Rpq> ParseUc2Rpq(std::string_view text, Alphabet* alphabet) {
  Uc2Rpq out;
  for (const std::string& line : StrSplit(text, '\n')) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    RQ_ASSIGN_OR_RETURN(Crpq q, ParseCrpq(stripped, alphabet));
    out.disjuncts.push_back(std::move(q));
  }
  RQ_RETURN_IF_ERROR(out.Validate());
  return out;
}

Result<Relation> EvalCrpq(const GraphSnapshot& snapshot, const Crpq& query,
                          const PathEvalOptions& options) {
  RQ_RETURN_IF_ERROR(query.Validate());
  // Instantiate each distinct 2RPQ as a binary relation (phase one), then
  // join (phase two). Every atom runs over the same shared snapshot.
  std::unordered_map<const Regex*, Relation> cache;
  std::vector<MatchAtom> atoms;
  std::vector<std::vector<VarId>> var_lists;
  var_lists.reserve(query.atoms.size());
  for (const CrpqAtom& atom : query.atoms) {
    RQ_RETURN_IF_ERROR(CheckExecContext());
    auto it = cache.find(atom.regex.get());
    if (it == cache.end()) {
      Relation rel(2);
      for (const auto& [x, y] : EvalPathQuery(snapshot, *atom.regex,
                                              options)) {
        rel.Insert({x, y});
      }
      it = cache.emplace(atom.regex.get(), std::move(rel)).first;
    }
    var_lists.push_back({atom.from, atom.to});
  }
  size_t i = 0;
  for (const CrpqAtom& atom : query.atoms) {
    atoms.push_back({&cache.at(atom.regex.get()), var_lists[i++]});
  }
  Relation out(query.head.size());
  MatchConjunction(atoms, query.num_vars,
                   [&](const std::vector<Value>& binding) {
                     Tuple t;
                     t.reserve(query.head.size());
                     for (VarId v : query.head) t.push_back(binding[v]);
                     out.Insert(t);
                     return true;
                   });
  return out;
}

Result<Relation> EvalCrpq(const GraphDb& db, const Crpq& query,
                          const PathEvalOptions& options) {
  return EvalCrpq(*db.Snapshot(), query, options);
}

Result<Relation> EvalUc2Rpq(const GraphSnapshot& snapshot,
                            const Uc2Rpq& query,
                            const PathEvalOptions& options) {
  obs::FlightTimer timer(obs::QueryKind::kUc2RpqEval);
  RQ_RETURN_IF_ERROR(query.Validate());
  Relation out(query.disjuncts[0].head.size());
  for (const Crpq& q : query.disjuncts) {
    RQ_ASSIGN_OR_RETURN(Relation part, EvalCrpq(snapshot, q, options));
    out.InsertAll(part);
  }
  timer.Finish(obs::kFlightVerdictOk, out.tuples().size());
  return out;
}

Result<Relation> EvalUc2Rpq(const GraphDb& db, const Uc2Rpq& query,
                            const PathEvalOptions& options) {
  return EvalUc2Rpq(*db.Snapshot(), query, options);
}

namespace {

// Union-find over query variables (empty-word atoms merge endpoints).
class VarUnionFind {
 public:
  explicit VarUnionFind(uint32_t n) : parent_(n) {
    for (uint32_t i = 0; i < n; ++i) parent_[i] = i;
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

// Builds the canonical graph of one expansion: per atom, a concrete word.
struct CanonicalExpansion {
  GraphDb graph;
  std::vector<NodeId> node_of_var;
};

CanonicalExpansion BuildCanonical(const Crpq& query,
                                  const std::vector<std::vector<Symbol>>&
                                      words,
                                  const Alphabet& alphabet) {
  CanonicalExpansion out;
  for (uint32_t label = 0; label < alphabet.num_labels(); ++label) {
    out.graph.alphabet().InternLabel(alphabet.LabelName(label));
  }
  VarUnionFind uf(query.num_vars);
  for (size_t i = 0; i < query.atoms.size(); ++i) {
    if (words[i].empty()) uf.Merge(query.atoms[i].from, query.atoms[i].to);
  }
  std::vector<NodeId> node(query.num_vars, 0);
  std::vector<bool> created(query.num_vars, false);
  auto node_of = [&](VarId v) {
    uint32_t root = uf.Find(v);
    if (!created[root]) {
      node[root] = out.graph.AddNode();
      created[root] = true;
    }
    return node[root];
  };
  for (size_t i = 0; i < query.atoms.size(); ++i) {
    const std::vector<Symbol>& word = words[i];
    if (word.empty()) continue;
    NodeId prev = node_of(query.atoms[i].from);
    for (size_t j = 0; j < word.size(); ++j) {
      NodeId next = (j + 1 == word.size()) ? node_of(query.atoms[i].to)
                                           : out.graph.AddNode();
      uint32_t label = SymbolLabel(word[j]);
      if (IsInverseSymbol(word[j])) {
        out.graph.AddEdge(next, label, prev);
      } else {
        out.graph.AddEdge(prev, label, next);
      }
      prev = next;
    }
  }
  out.node_of_var.resize(query.num_vars);
  for (VarId v = 0; v < query.num_vars; ++v) {
    out.node_of_var[v] = node_of(v);
  }
  return out;
}

// Dispatcher body; the public CheckUc2RpqContainment wraps it with flight
// recording and per-query profile annotation.
Result<CrpqContainmentResult> CheckUc2RpqContainmentImpl(
    const Uc2Rpq& q1, const Uc2Rpq& q2, const Alphabet& alphabet,
    const CrpqContainmentOptions& options) {
  RQ_RETURN_IF_ERROR(q1.Validate());
  RQ_RETURN_IF_ERROR(q2.Validate());
  if (q1.disjuncts[0].head.size() != q2.disjuncts[0].head.size()) {
    return InvalidArgumentError(
        "CheckUc2RpqContainment: head arity mismatch");
  }
  CrpqContainmentResult result;

  // Exact dispatch: every disjunct on both sides a single 2RPQ atom over
  // its head pair. Then Q2 is the single 2RPQ r21 | ... | r2m (semipath
  // semantics of a union of single-atom disjuncts IS the union regex), and
  // Q1 ⊑ Q2 iff each q1-disjunct regex is path-contained in it. The
  // per-disjunct checks are independent, so they fan out across the batch
  // engine (src/containment/batch.h); results come back in disjunct order.
  auto single_atom_regex = [](const Crpq& d) -> RegexPtr {
    if (d.atoms.size() != 1 || d.head.size() != 2) return nullptr;
    if (d.head[0] == d.head[1]) return nullptr;
    const CrpqAtom& atom = d.atoms[0];
    if (atom.from == d.head[0] && atom.to == d.head[1]) return atom.regex;
    if (atom.from == d.head[1] && atom.to == d.head[0]) {
      return atom.regex->InverseExpression();
    }
    return nullptr;
  };
  auto all_single_atom = [&](const Uc2Rpq& q, std::vector<RegexPtr>* out) {
    for (const Crpq& d : q.disjuncts) {
      RegexPtr r = single_atom_regex(d);
      if (r == nullptr) return false;
      out->push_back(std::move(r));
    }
    return true;
  };
  std::vector<RegexPtr> r1s;
  std::vector<RegexPtr> r2s;
  if (all_single_atom(q1, &r1s) && all_single_atom(q2, &r2s)) {
    RegexPtr r2 = r2s.size() == 1 ? r2s[0] : Regex::Union(r2s);
    std::vector<PathContainmentJob> batch;
    batch.reserve(r1s.size());
    for (const RegexPtr& r1 : r1s) batch.push_back({r1.get(), r2.get()});
    ContainmentBatchOptions batch_options;
    batch_options.jobs = options.jobs;
    std::vector<PathContainmentResult> verdicts =
        CheckPathContainmentBatch(batch, alphabet, batch_options);
    result.method = "2rpq-fold";
    for (const PathContainmentResult& path : verdicts) {
      RQ_RETURN_IF_ERROR(path.status);
      if (path.contained) continue;
      result.certainty = Certainty::kRefuted;
      SemipathWitness witness =
          BuildSemipathWitness(alphabet, path.counterexample);
      result.witness_x = witness.start;
      result.witness_y = witness.end;
      result.witness_tuple = {witness.start, witness.end};
      result.counterexample = std::move(witness.db);
      return result;
    }
    result.certainty = Certainty::kProved;
    return result;
  }

  // Expansion test.
  bool complete = true;
  bool truncated = false;
  const uint32_t k =
      (std::max(static_cast<uint32_t>(alphabet.num_symbols()), 2u) + 1) &
      ~1u;
  for (const Crpq& disjunct : q1.disjuncts) {
    // Enumerate candidate words per atom.
    std::vector<std::vector<std::vector<Symbol>>> words(
        disjunct.atoms.size());
    bool disjunct_empty = false;
    for (size_t i = 0; i < disjunct.atoms.size(); ++i) {
      RQ_RETURN_IF_ERROR(CheckExecContext());
      Nfa nfa = disjunct.atoms[i]
                    .regex->ToNfa(std::max(
                        k, disjunct.atoms[i].regex->MinNumSymbols()))
                    .WithoutEpsilons()
                    .Trimmed();
      bool finite = IsFiniteLanguage(nfa);
      size_t max_len = finite
                           ? std::max<size_t>(options.max_word_length,
                                              nfa.num_states() + 1)
                           : options.max_word_length;
      words[i] =
          EnumerateAcceptedWords(nfa, max_len, options.max_expansions + 1);
      if (words[i].size() > options.max_expansions) {
        words[i].resize(options.max_expansions);
        complete = false;
        truncated = true;
      }
      if (!finite) complete = false;
      if (words[i].empty()) {
        if (finite) {
          // Empty language: the disjunct is unsatisfiable, trivially
          // contained.
          disjunct_empty = true;
        } else {
          complete = false;  // words exist beyond the bound
          disjunct_empty = true;  // nothing to test within the bound
        }
        break;
      }
    }
    if (disjunct_empty) continue;

    // Cartesian product over atom word choices (odometer).
    std::vector<size_t> idx(disjunct.atoms.size(), 0);
    for (;;) {
      RQ_RETURN_IF_ERROR(CheckExecContext());
      if (result.expansions_checked >= options.max_expansions) {
        complete = false;
        truncated = true;
        break;
      }
      ++result.expansions_checked;
      std::vector<std::vector<Symbol>> choice;
      choice.reserve(idx.size());
      for (size_t i = 0; i < idx.size(); ++i) {
        choice.push_back(words[i][idx[i]]);
      }
      CanonicalExpansion canonical =
          BuildCanonical(disjunct, choice, alphabet);
      // Canonical graphs are tiny; evaluating them serially avoids paying
      // a worker-pool spin-up per expansion when a global --jobs is set
      // (parallelism belongs to the per-disjunct batch dispatch above).
      RQ_ASSIGN_OR_RETURN(
          Relation answers,
          EvalUc2Rpq(canonical.graph, q2, PathEvalOptions{.jobs = 1}));
      Tuple head_tuple;
      for (VarId v : disjunct.head) {
        head_tuple.push_back(canonical.node_of_var[v]);
      }
      if (!answers.Contains(head_tuple)) {
        result.certainty = Certainty::kRefuted;
        result.method = "expansion";
        result.truncated = truncated;
        result.witness_tuple = head_tuple;
        result.witness_x = head_tuple.empty()
                               ? 0
                               : static_cast<NodeId>(head_tuple[0]);
        result.witness_y = head_tuple.size() > 1
                               ? static_cast<NodeId>(head_tuple[1])
                               : result.witness_x;
        result.counterexample = std::move(canonical.graph);
        return result;
      }
      // Advance the odometer.
      size_t pos = 0;
      while (pos < idx.size()) {
        if (++idx[pos] < words[pos].size()) break;
        idx[pos] = 0;
        ++pos;
      }
      if (pos == idx.size()) break;
    }
  }
  result.method = complete ? "expansion-exact" : "expansion-bounded";
  result.certainty =
      complete ? Certainty::kProved : Certainty::kUnknownUpToBound;
  result.truncated = truncated;
  return result;
}

}  // namespace

Result<CrpqContainmentResult> CheckUc2RpqContainment(
    const Uc2Rpq& q1, const Uc2Rpq& q2, const Alphabet& alphabet,
    const CrpqContainmentOptions& options) {
  obs::FlightTimer timer(obs::QueryKind::kUc2RpqContainment);
  Result<CrpqContainmentResult> result =
      CheckUc2RpqContainmentImpl(q1, q2, alphabet, options);
  if (!result.ok()) {
    timer.Finish(obs::FlightVerdictFromError(result.status()), 0);
    return result;
  }
  timer.Finish(FlightVerdictFromCertainty(result->certainty),
               result->expansions_checked);
  if (obs::QueryProfile* profile = obs::QueryProfile::Active()) {
    profile->AddNote("uc2rpq.method",
                     result->truncated ? result->method + " (truncated)"
                                       : result->method);
  }
  return result;
}

}  // namespace rq

// Conjunctive two-way regular path queries and their unions (paper §3.3).
//
// A C2RPQ is a conjunctive query whose atoms are 2RPQs: κ(x, y) asks for a
// semipath from x to y conforming to the regular expression κ. UC2RPQ is
// the closure under union. Example 1 of the paper (the triangle query) is
//   q(x, y) :- (r)(x, y), (r)(x, z), (r)(y, z)
// in the syntax accepted here: each atom is '(' regex ')' '(' v ',' v ')'.
//
// Evaluation instantiates every 2RPQ atom as a binary relation over the
// graph (product-automaton BFS) and then joins them as a conjunctive query,
// exactly the two-phase semantics the paper describes.
//
// Containment (Theorem 6: EXPSPACE-complete) is handled by:
//   * exact 2RPQ dispatch when both sides are single-atom queries over the
//     head variables;
//   * the expansion test otherwise: an expansion of Q1 replaces each atom
//     by a concrete word of its language, folding into a canonical graph;
//     Q1 ⊑ Q2 iff Q2 answers the head pair on every such graph. The word
//     enumeration is exhaustive for finite languages (exact verdict) and
//     bounded otherwise (exact refutations, kUnknownUpToBound on success).
#ifndef RQ_CRPQ_CRPQ_H_
#define RQ_CRPQ_CRPQ_H_

#include <optional>
#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "common/status.h"
#include "graph/graph_db.h"
#include "pathquery/path_query.h"
#include "regex/regex.h"
#include "relational/matcher.h"
#include "relational/relation.h"
#include "rq/containment.h"

namespace rq {

struct CrpqAtom {
  RegexPtr regex;
  VarId from;
  VarId to;
};

struct Crpq {
  std::vector<VarId> head;
  std::vector<CrpqAtom> atoms;
  uint32_t num_vars = 0;
  std::vector<std::string> var_names;

  Status Validate() const;
  std::string ToString(const Alphabet& alphabet) const;
};

struct Uc2Rpq {
  std::vector<Crpq> disjuncts;

  Status Validate() const;
  std::string ToString(const Alphabet& alphabet) const;
};

// Parses "q(x, y) :- (knows+)(x, z), (member- member)(z, y)". Labels are
// interned into `alphabet`.
Result<Crpq> ParseCrpq(std::string_view text, Alphabet* alphabet);
// One disjunct per non-empty line.
Result<Uc2Rpq> ParseUc2Rpq(std::string_view text, Alphabet* alphabet);

// Evaluation over a graph database (whose alphabet must be the alphabet the
// query was parsed against). Atom 2RPQs instantiate through the shared
// product-BFS kernel; `options` fans the per-atom source sets across the
// worker pool (pathquery/path_query.h). The GraphDb overloads take one CSR
// snapshot for the whole query (all atoms / all disjuncts); pass a
// snapshot yourself to amortize it across queries.
Result<Relation> EvalCrpq(const GraphDb& db, const Crpq& query,
                          const PathEvalOptions& options = {});
Result<Relation> EvalCrpq(const GraphSnapshot& snapshot, const Crpq& query,
                          const PathEvalOptions& options = {});
Result<Relation> EvalUc2Rpq(const GraphDb& db, const Uc2Rpq& query,
                            const PathEvalOptions& options = {});
Result<Relation> EvalUc2Rpq(const GraphSnapshot& snapshot,
                            const Uc2Rpq& query,
                            const PathEvalOptions& options = {});

struct CrpqContainmentOptions {
  // Longest atom-language word instantiated during expansion.
  size_t max_word_length = 4;
  size_t max_expansions = 50000;
  // Worker threads for the per-disjunct batch dispatch; 0 means the
  // process default (SetDefaultContainmentJobs / rqcheck --jobs).
  unsigned jobs = 0;
};

struct CrpqContainmentResult {
  Certainty certainty = Certainty::kUnknownUpToBound;
  std::string method;  // "2rpq-fold" or "expansion-exact"/"-bounded"
  // When refuted: canonical graph + head pair answered by q1 but not q2.
  std::optional<GraphDb> counterexample;
  // Head tuple (node ids in `counterexample`) answered by q1 but not q2.
  Tuple witness_tuple;
  // Convenience aliases of the first two witness columns.
  NodeId witness_x = 0;
  NodeId witness_y = 0;
  size_t expansions_checked = 0;
  // True when the expansion enumeration hit max_word_length/max_expansions
  // before exhausting q1's language: a kUnknownUpToBound verdict then means
  // "cap hit", not "infinite language bounded exactly".
  bool truncated = false;
};

Result<CrpqContainmentResult> CheckUc2RpqContainment(
    const Uc2Rpq& q1, const Uc2Rpq& q2, const Alphabet& alphabet,
    const CrpqContainmentOptions& options = {});

}  // namespace rq

#endif  // RQ_CRPQ_CRPQ_H_

// Embedding path queries into graph-database Datalog.
//
// The paper notes (§3.4) that RPQ, 2RPQ, UC2RPQ and RQ all embed into
// Datalog over binary EDB predicates. This is the path-query case: the
// query's automaton becomes one IDB predicate per state,
//   s_i(X, X)  :- nodes(X).                   for initial states i
//   s_j(X, Z)  :- s_i(X, Y), l(Y, Z).         for transitions i -l-> j
//   s_j(X, Z)  :- s_i(X, Y), l(Z, Y).         for transitions i -l⁻-> j
//   ans(X, Y)  :- s_f(X, Y).                  for accepting states f
// with nodes(·) ranging over the active domain. The translation is linear
// Datalog; it is the second evaluation engine the integration tests pit
// against the product-automaton BFS.
#ifndef RQ_PATHQUERY_TO_DATALOG_H_
#define RQ_PATHQUERY_TO_DATALOG_H_

#include "automata/alphabet.h"
#include "common/status.h"
#include "datalog/program.h"
#include "regex/regex.h"

namespace rq {

// Translates a path query over `alphabet` into a Datalog program with goal
// predicate "ans". Generated predicates are prefixed "rpq_"; label names
// matching the prefix are rejected.
Result<DatalogProgram> PathQueryToDatalog(const Regex& regex,
                                          const Alphabet& alphabet);

// Appends the rules for one path query into an existing program, with all
// generated predicates named "<prefix>..." and the active-domain predicate
// "<prefix>nodes". Returns the binary answer predicate. Used by the C2RPQ
// embedding, which joins several answer predicates in one goal rule.
Result<PredId> AppendPathAutomaton(DatalogProgram* program,
                                   const Regex& regex,
                                   const Alphabet& alphabet,
                                   const std::string& prefix);

}  // namespace rq

#endif  // RQ_PATHQUERY_TO_DATALOG_H_

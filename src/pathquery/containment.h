// Exact containment for RPQs and 2RPQs (paper §3.2).
//
// RPQs: Q1 ⊑ Q2 iff L(Q1) ⊆ L(Q2) (Language-Theoretic Lemma 1), decided by
// the on-the-fly product-with-complement search.
//
// 2RPQs: the language characterization fails (p ⊑ p p- p but
// L(p) ⊄ L(p p- p)); instead Q1 ⊑ Q2 iff L(Q1) ⊆ fold(L(Q2))
// (Language-Theoretic Lemma 2). Following Theorem 5's pipeline, we build an
// NFA for Q1, the Lemma 3 fold-2NFA for Q2, and search the product of the
// NFA with a lazily determinized view of the 2NFA (Shepherdson behavior
// tables) for a word in L(Q1) \ fold(L(Q2)). The search is exact and, like
// the paper's algorithm, materializes only what it visits.
//
// A non-containment verdict carries a machine-checkable certificate: the
// witness word u and its canonical semipath database, on which Q1 answers
// (start, end) but Q2 does not.
#ifndef RQ_PATHQUERY_CONTAINMENT_H_
#define RQ_PATHQUERY_CONTAINMENT_H_

#include <cstdint>
#include <vector>

#include "automata/alphabet.h"
#include "common/status.h"
#include "graph/graph_db.h"
#include "regex/regex.h"

namespace rq {

struct PathContainmentResult {
  bool contained = false;
  // When !contained: a word of L(Q1) witnessing non-containment (over Sigma
  // for RPQs, Sigma± for 2RPQs).
  std::vector<Symbol> counterexample;
  // Number of product states the decision procedure explored.
  uint64_t explored_states = 0;
  // True if the two-way (fold) pipeline ran; false if Lemma 1 sufficed.
  bool used_fold_pipeline = false;
  // Non-OK (kDeadlineExceeded / kCancelled) when the installed ExecContext
  // tripped mid-check; `contained` is meaningless then (docs/ROBUSTNESS.md).
  Status status;
};

// Decides Q1 ⊑ Q2 for path queries over the alphabet. Dispatches to the
// Lemma 1 check when both queries are one-way, and to the Theorem 5 fold
// pipeline otherwise.
PathContainmentResult CheckPathQueryContainment(const Regex& q1,
                                                const Regex& q2,
                                                const Alphabet& alphabet);

// Always runs the two-way fold pipeline (exposed for tests/benches).
PathContainmentResult CheckTwoWayContainment(const Regex& q1, const Regex& q2,
                                             const Alphabet& alphabet);

// Builds the canonical semipath database for a counterexample word; Q1
// answers (start, end) on it, Q2 must not (validated in tests).
struct SemipathWitness {
  GraphDb db;
  NodeId start;
  NodeId end;
};
SemipathWitness BuildSemipathWitness(const Alphabet& alphabet,
                                     const std::vector<Symbol>& word);

}  // namespace rq

#endif  // RQ_PATHQUERY_CONTAINMENT_H_

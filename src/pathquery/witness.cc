#include "pathquery/witness.h"

#include <algorithm>

#include "automata/nfa.h"
#include "common/bitset.h"
#include "graph/snapshot.h"

namespace rq {

std::optional<std::vector<SemipathStep>> FindWitnessSemipath(
    const GraphDb& db, const Regex& regex, NodeId x, NodeId y) {
  const uint32_t k =
      std::max(static_cast<uint32_t>(db.alphabet().num_symbols()),
               regex.MinNumSymbols());
  Nfa nfa = regex.ToNfa(k).WithoutEpsilons().Trimmed();

  // Same product BFS as the evaluators (pathquery/path_query.cc), run over
  // an immutable CSR snapshot, but tracking per-visit parents so the
  // shortest accepting semipath can be reconstructed. The visits vector
  // doubles as the BFS queue (indices only ever grow), and the bitset
  // keyed node * |Q| + state deduplicates product states.
  const GraphSnapshotPtr snapshot = db.Snapshot();
  const size_t num_states = nfa.num_states();
  const size_t num_nodes = snapshot->num_nodes();
  if (num_states == 0 || x >= num_nodes) return std::nullopt;

  struct Visit {
    uint32_t parent;  // index into visits, or UINT32_MAX
    NodeId node;
    uint32_t state;
    Symbol via;  // kInvalidSymbol at roots
  };
  std::vector<Visit> visits;
  Bitset seen(num_nodes * num_states);
  auto push = [&](NodeId node, uint32_t state, uint32_t parent, Symbol via) {
    size_t key = static_cast<size_t>(node) * num_states + state;
    if (seen.Test(key)) return;
    seen.Set(key);
    visits.push_back({parent, node, state, via});
  };
  for (uint32_t s : nfa.initial()) {
    push(x, s, 0xffffffffu, kInvalidSymbol);
  }
  for (uint32_t idx = 0; idx < visits.size(); ++idx) {
    Visit visit = visits[idx];
    if (visit.node == y && nfa.IsAccepting(visit.state)) {
      std::vector<SemipathStep> path;
      for (uint32_t i = idx; visits[i].parent != 0xffffffffu;
           i = visits[i].parent) {
        path.push_back({visits[visits[i].parent].node, visits[i].via,
                        visits[i].node});
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const NfaTransition& t : nfa.TransitionsFrom(visit.state)) {
      for (NodeId next : snapshot->Successors(visit.node, t.symbol)) {
        push(next, t.to, idx, t.symbol);
      }
    }
  }
  return std::nullopt;
}

std::string SemipathToString(const GraphDb& db,
                             const std::vector<SemipathStep>& path) {
  if (path.empty()) return "(empty semipath)";
  std::string out = db.NodeName(path.front().from);
  for (const SemipathStep& step : path) {
    const std::string label =
        db.alphabet().LabelName(SymbolLabel(step.symbol));
    if (IsInverseSymbol(step.symbol)) {
      out += " <-" + label + "- ";
    } else {
      out += " -" + label + "-> ";
    }
    out += db.NodeName(step.to);
  }
  return out;
}

}  // namespace rq

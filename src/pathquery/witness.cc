#include "pathquery/witness.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "automata/nfa.h"

namespace rq {

std::optional<std::vector<SemipathStep>> FindWitnessSemipath(
    const GraphDb& db, const Regex& regex, NodeId x, NodeId y) {
  const uint32_t k =
      std::max(static_cast<uint32_t>(db.alphabet().num_symbols()),
               regex.MinNumSymbols());
  Nfa nfa = regex.ToNfa(k).WithoutEpsilons().Trimmed();

  struct Visit {
    uint32_t parent;  // index into visits, or UINT32_MAX
    NodeId node;
    uint32_t state;
    Symbol via;  // kInvalidSymbol at roots
  };
  std::vector<Visit> visits;
  std::unordered_map<uint64_t, uint32_t> seen;
  std::deque<uint32_t> work;
  auto key_of = [&](NodeId node, uint32_t state) {
    return (static_cast<uint64_t>(node) << 32) | state;
  };
  auto push = [&](NodeId node, uint32_t state, uint32_t parent, Symbol via) {
    uint64_t key = key_of(node, state);
    if (seen.contains(key)) return;
    seen.emplace(key, static_cast<uint32_t>(visits.size()));
    visits.push_back({parent, node, state, via});
    work.push_back(static_cast<uint32_t>(visits.size() - 1));
  };
  for (uint32_t s : nfa.initial()) {
    push(x, s, 0xffffffffu, kInvalidSymbol);
  }
  while (!work.empty()) {
    uint32_t idx = work.front();
    work.pop_front();
    Visit visit = visits[idx];
    if (visit.node == y && nfa.IsAccepting(visit.state)) {
      std::vector<SemipathStep> path;
      for (uint32_t i = idx; visits[i].parent != 0xffffffffu;
           i = visits[i].parent) {
        path.push_back({visits[visits[i].parent].node, visits[i].via,
                        visits[i].node});
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (const NfaTransition& t : nfa.TransitionsFrom(visit.state)) {
      for (NodeId next : db.Successors(visit.node, t.symbol)) {
        push(next, t.to, idx, t.symbol);
      }
    }
  }
  return std::nullopt;
}

std::string SemipathToString(const GraphDb& db,
                             const std::vector<SemipathStep>& path) {
  if (path.empty()) return "(empty semipath)";
  std::string out = db.NodeName(path.front().from);
  for (const SemipathStep& step : path) {
    const std::string label =
        db.alphabet().LabelName(SymbolLabel(step.symbol));
    if (IsInverseSymbol(step.symbol)) {
      out += " <-" + label + "- ";
    } else {
      out += " -" + label + "-> ";
    }
    out += db.NodeName(step.to);
  }
  return out;
}

}  // namespace rq

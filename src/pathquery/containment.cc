#include "pathquery/containment.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "automata/containment.h"
#include "automata/nfa.h"
#include "automata/reduce.h"
#include "cache/automata_cache.h"
#include "cache/key.h"
#include "common/deadline.h"
#include "common/mem.h"
#include "graph/generators.h"
#include "obs/flight_recorder.h"
#include "obs/profile.h"
#include "obs/subsystems.h"
#include "obs/trace.h"
#include "twoway/fold.h"
#include "twoway/tables.h"

namespace rq {

namespace {

uint32_t SymbolUniverse(const Regex& q1, const Regex& q2,
                        const Alphabet& alphabet) {
  uint32_t k = std::max({static_cast<uint32_t>(alphabet.num_symbols()),
                         q1.MinNumSymbols(), q2.MinNumSymbols()});
  // The fold machinery pairs every forward symbol with its inverse; keep the
  // universe even so InverseSymbol stays in range.
  return (k + 1) & ~1u;
}

PathContainmentResult CheckTwoWayContainmentImpl(const Regex& q1,
                                                 const Regex& q2,
                                                 const Alphabet& alphabet) {
  const uint32_t k = SymbolUniverse(q1, q2, alphabet);
  PathContainmentResult result;
  result.used_fold_pipeline = true;
  // The interned Shepherdson tables below are where the 2RPQ pipeline's
  // doubly exponential space actually lives; attribute it to the fold
  // pipeline so profiles and byte budgets see it.
  MemScope mem_scope(MemSubsystem::kFold);

  // Step 1: NFAs for both queries (linear), quotiented by simulation —
  // the fold 2NFA's state count is n·(|Σ±|+1) in a2's n, so shrinking a2
  // shrinks everything downstream. Both compilations and the fold are
  // memoized when the automata cache is on (docs/CACHING.md).
  std::shared_ptr<const Nfa> a1_ptr = cache::CachedCompiledNfa(q1, k);
  std::shared_ptr<const Nfa> a2_ptr = cache::CachedCompiledNfa(q2, k);
  const Nfa& a1 = *a1_ptr;
  // Step 2: 2NFA for fold(L(Q2)) (Lemma 3, polynomial). FoldTwoNfa stops
  // early when the context trips; the poll below discards the truncation.
  std::shared_ptr<const TwoNfa> fold2_ptr = cache::CachedFoldTwoNfa(*a2_ptr);
  if (Status s = CheckExecContext(); !s.ok()) {
    result.status = std::move(s);
    return result;
  }
  const TwoNfa& fold2 = *fold2_ptr;
  // Steps 3-5: search L(Q1) ∩ complement(fold(L(Q2))) on the fly. The
  // complement side is represented by deterministic Shepherdson tables, so
  // each product node has one successor per symbol on the right side.
  TwoNfaSimulator sim(fold2);

  std::unordered_map<TwoNfaTable, uint32_t, TwoNfaTableHash> table_ids;
  std::vector<TwoNfaTable> tables;
  std::vector<bool> table_accepts;
  auto intern_table = [&](TwoNfaTable table) {
    auto it = table_ids.find(table);
    if (it != table_ids.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(tables.size());
    // Two copies per interned table: the map key and the tables slot.
    MemCharge(static_cast<int64_t>(2 * ApproxTableBytes(table) +
                                   sizeof(TwoNfaTable) + sizeof(uint32_t)));
    table_ids.emplace(table, id);
    table_accepts.push_back(sim.Accepts(table));
    tables.push_back(std::move(table));
    return id;
  };

  struct Node {
    uint32_t a_state;
    uint32_t table_id;
    uint32_t parent;
    Symbol via;
  };
  std::vector<Node> nodes;
  std::unordered_map<uint64_t, uint32_t> seen;
  std::deque<uint32_t> work;
  auto push = [&](uint32_t a_state, uint32_t table_id, uint32_t parent,
                  Symbol via) {
    uint64_t key = (static_cast<uint64_t>(a_state) << 32) | table_id;
    if (seen.contains(key)) return;
    MemCharge(static_cast<int64_t>(sizeof(Node) + sizeof(uint64_t) +
                                   2 * sizeof(uint32_t)));
    seen.emplace(key, static_cast<uint32_t>(nodes.size()));
    nodes.push_back({a_state, table_id, parent, via});
    work.push_back(static_cast<uint32_t>(nodes.size() - 1));
  };

  uint32_t t0 = intern_table(sim.InitialTable());
  for (uint32_t s : a1.initial()) push(s, t0, 0xffffffffu, kInvalidSymbol);

  while (!work.empty()) {
    // The table product is the EXPSPACE pressure point (doubly exponential
    // table space); poll per node so adversarial inputs time out promptly.
    if (Status s = CheckExecContext(); !s.ok()) {
      result.status = std::move(s);
      return result;
    }
    uint32_t idx = work.front();
    work.pop_front();
    Node node = nodes[idx];
    ++result.explored_states;
    if (a1.IsAccepting(node.a_state) && !table_accepts[node.table_id]) {
      // Counterexample: word in L(Q1) \ fold(L(Q2)).
      std::vector<Symbol> word;
      for (uint32_t i = idx; i != 0xffffffffu; i = nodes[i].parent) {
        if (nodes[i].via != kInvalidSymbol) word.push_back(nodes[i].via);
      }
      std::reverse(word.begin(), word.end());
      result.contained = false;
      result.counterexample = std::move(word);
      return result;
    }
    // Group A1 transitions by symbol so we step the table once per symbol.
    const auto& trans = a1.TransitionsFrom(node.a_state);
    for (size_t i = 0; i < trans.size();) {
      Symbol symbol = trans[i].symbol;
      uint32_t next_table =
          intern_table(sim.Step(tables[node.table_id], symbol));
      for (; i < trans.size() && trans[i].symbol == symbol; ++i) {
        push(trans[i].to, next_table, idx, symbol);
      }
    }
  }
  result.contained = true;
  return result;
}

}  // namespace

PathContainmentResult CheckTwoWayContainment(const Regex& q1, const Regex& q2,
                                             const Alphabet& alphabet) {
  // Whole-pipeline verdict memoization: the fold verdict is keyed on both
  // regexes plus the symbol universe and stored in the shared verdict LRU
  // under the "fold" tag. On a hit only cache.* counters move.
  cache::AutomataCache& ac = cache::AutomataCache::Global();
  std::string key;
  if (ac.enabled()) {
    key = "fold|";
    cache::AppendU32(SymbolUniverse(q1, q2, alphabet), &key);
    cache::AppendEncoding(q1, &key);
    cache::AppendEncoding(q2, &key);
    if (auto hit = ac.verdict().Get(key)) {
      PathContainmentResult result;
      result.contained = hit->contained;
      result.counterexample = hit->counterexample;
      result.explored_states = hit->explored_states;
      result.used_fold_pipeline = true;
      return result;
    }
  }
  // The fold-pipeline product search shares the containment.* vocabulary
  // with the one-way checkers (docs/OBSERVABILITY.md).
  RQ_TRACE_SPAN_VAR(span, "containment.fold_pipeline");
  PathContainmentResult result = CheckTwoWayContainmentImpl(q1, q2, alphabet);
  obs::ContainmentCounters& counters = obs::ContainmentCounters::Get();
  counters.checks.Increment();
  counters.states_explored.Add(result.explored_states);
  counters.states_explored_per_check.Record(result.explored_states);
  if (!result.contained) counters.refuted.Increment();
  span.AddAttr("states_explored", result.explored_states);
  // A check cut short by deadline/cancellation produced no verdict; never
  // memoize it.
  if (ac.enabled() && result.status.ok()) {
    LanguageContainmentResult stored;
    stored.contained = result.contained;
    stored.counterexample = result.counterexample;
    stored.explored_states = result.explored_states;
    size_t bytes = cache::ApproxBytes(stored);
    ac.verdict().Put(std::move(key), std::move(stored), bytes);
  }
  return result;
}

PathContainmentResult CheckPathQueryContainment(const Regex& q1,
                                                const Regex& q2,
                                                const Alphabet& alphabet) {
  obs::FlightTimer timer(obs::QueryKind::kPathContainment);
  PathContainmentResult result;
  if (!q1.UsesInverse() && !q2.UsesInverse()) {
    // Lemma 1: plain language containment (memoized compilations; the
    // verdict itself is memoized inside CheckLanguageContainment).
    const uint32_t k = SymbolUniverse(q1, q2, alphabet);
    LanguageContainmentResult lang = CheckLanguageContainment(
        *cache::CachedRegexToNfa(q1, k), *cache::CachedRegexToNfa(q2, k));
    result.contained = lang.contained;
    result.counterexample = std::move(lang.counterexample);
    result.explored_states = lang.explored_states;
    result.used_fold_pipeline = false;
    result.status = std::move(lang.status);
  } else {
    result = CheckTwoWayContainment(q1, q2, alphabet);
  }
  if (obs::QueryProfile* profile = obs::QueryProfile::Active()) {
    profile->AddNote("path.pipeline",
                     result.used_fold_pipeline ? "2rpq-fold" : "lemma1");
  }
  timer.Finish(!result.status.ok()
                   ? obs::FlightVerdictFromError(result.status)
                   : (result.contained ? obs::kFlightVerdictOk
                                       : obs::kFlightVerdictRefuted),
               result.explored_states);
  return result;
}

SemipathWitness BuildSemipathWitness(const Alphabet& alphabet,
                                     const std::vector<Symbol>& word) {
  SemipathWitness witness;
  // Copy the labels into the witness database's own alphabet, preserving
  // label ids so the word's symbols remain valid.
  for (uint32_t label = 0; label < alphabet.num_labels(); ++label) {
    witness.db.alphabet().InternLabel(alphabet.LabelName(label));
  }
  SemipathEndpoints ends = AppendSemipath(&witness.db, word);
  witness.start = ends.start;
  witness.end = ends.end;
  return witness;
}

}  // namespace rq

// Witness semipaths: provenance for path-query answers.
//
// A pair (x, y) is in a 2RPQ's answer iff some semipath from x to y
// conforms to the expression (paper §3.1). FindWitnessSemipath returns a
// shortest such semipath — the concrete navigation, edge by edge, with the
// direction each edge was traversed — so callers can explain or audit an
// answer rather than trust a boolean.
#ifndef RQ_PATHQUERY_WITNESS_H_
#define RQ_PATHQUERY_WITNESS_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/graph_db.h"
#include "regex/regex.h"

namespace rq {

struct SemipathStep {
  NodeId from;
  Symbol symbol;  // inverse symbol = the edge was walked backward
  NodeId to;
};

// A shortest conforming semipath from x to y, or nullopt when (x, y) is
// not in the answer. The empty vector is returned when the empty word
// matches and x == y.
std::optional<std::vector<SemipathStep>> FindWitnessSemipath(
    const GraphDb& db, const Regex& regex, NodeId x, NodeId y);

// Renders "alice -knows-> bob <-knows- carol".
std::string SemipathToString(const GraphDb& db,
                             const std::vector<SemipathStep>& path);

}  // namespace rq

#endif  // RQ_PATHQUERY_WITNESS_H_

#include "pathquery/path_query.h"

#include <algorithm>
#include <numeric>

#include "common/bitset.h"
#include "common/deadline.h"
#include "common/mem.h"
#include "common/parallel.h"
#include "obs/flight_recorder.h"
#include "obs/subsystems.h"
#include "obs/trace.h"

namespace rq {

Result<PathQuery> ParsePathQuery(std::string_view text, Alphabet* alphabet) {
  RQ_ASSIGN_OR_RETURN(RegexPtr regex, ParseRegex(text, alphabet));
  return PathQuery{std::move(regex)};
}

namespace {

// The single evaluation kernel (paper §3.1/§3.3): level-synchronous BFS
// over the product of the graph and the automaton. Visited product states
// live in a bitset keyed node * |Q| + state; the frontier is a dense
// vector swapped per level. `nfa` must be epsilon-free. Thread-safe for
// concurrent calls over one shared snapshot — all mutable state is local,
// and the obs sinks are internally synchronized (flushed once per eval,
// once per level for the frontier histogram).
std::vector<NodeId> ProductBfs(const GraphSnapshot& snapshot, const Nfa& nfa,
                               NodeId start) {
  obs::GraphEvalCounters& counters = obs::GraphEvalCounters::Get();
  counters.evals.Increment();

  const size_t num_states = nfa.num_states();
  const size_t num_nodes = snapshot.num_nodes();
  std::vector<NodeId> out;
  if (num_states == 0 || start >= num_nodes) return out;

  struct ProductState {
    NodeId node;
    uint32_t state;
  };
  // The visited bitset is the product-space allocation (|V| * |Q| bits);
  // frontier growth is charged per level below, as a delta against the
  // previous level, so the live gauge tracks the current frontier only.
  MemScope mem_scope(MemSubsystem::kGraph);
  Bitset visited(num_nodes * num_states);
  Bitset answer(num_nodes);
  MemCharge(static_cast<int64_t>(
      (num_nodes * num_states + num_nodes) / 8 + 2 * sizeof(Bitset)));
  std::vector<ProductState> frontier;
  std::vector<ProductState> next;
  uint64_t states_visited = 0;
  size_t peak_frontier = 0;
  int64_t frontier_charged = 0;

  auto push = [&](NodeId node, uint32_t state) {
    size_t key = static_cast<size_t>(node) * num_states + state;
    if (visited.Test(key)) return;
    visited.Set(key);
    next.push_back({node, state});
  };
  for (uint32_t s : nfa.initial()) push(start, s);
  std::swap(frontier, next);

  // The BFS has no Status channel; when the installed ExecContext trips we
  // abandon the remaining frontier and return the partial answer set — the
  // Status-returning caller polls the same context and discards it.
  bool stopped = false;
  while (!frontier.empty() && !stopped) {
    counters.frontier_per_level.Record(frontier.size());
    peak_frontier = std::max(peak_frontier, frontier.size());
    int64_t level_bytes =
        static_cast<int64_t>(frontier.size() * sizeof(ProductState));
    MemCharge(level_bytes - frontier_charged);
    frontier_charged = level_bytes;
    for (const ProductState& ps : frontier) {
      if (ExecStopRequested()) {
        stopped = true;
        break;
      }
      ++states_visited;
      if (nfa.IsAccepting(ps.state)) answer.Set(ps.node);
      for (const NfaTransition& t : nfa.TransitionsFrom(ps.state)) {
        for (NodeId successor : snapshot.Successors(ps.node, t.symbol)) {
          push(successor, t.to);
        }
      }
    }
    frontier.clear();
    std::swap(frontier, next);
  }

  counters.product_states.Add(states_visited);
  counters.product_states_per_eval.Record(states_visited);
  counters.peak_frontier.Set(static_cast<int64_t>(peak_frontier));

  out.reserve(answer.Count());
  answer.ForEach([&](size_t y) { out.push_back(static_cast<NodeId>(y)); });
  return out;
}

uint32_t SymbolUniverse(size_t num_symbols, const Regex& regex) {
  return std::max(static_cast<uint32_t>(num_symbols),
                  regex.MinNumSymbols());
}

}  // namespace

std::vector<NodeId> EvalPathQueryFrom(const GraphSnapshot& snapshot,
                                      const Nfa& input, NodeId start) {
  const Nfa nfa = input.HasEpsilons() ? input.WithoutEpsilons() : input;
  return ProductBfs(snapshot, nfa, start);
}

std::vector<NodeId> EvalPathQueryFrom(const GraphDb& db, const Nfa& nfa,
                                      NodeId start) {
  return EvalPathQueryFrom(*db.Snapshot(), nfa, start);
}

std::vector<std::vector<NodeId>> EvalPathQueryFromSources(
    const GraphSnapshot& snapshot, const Nfa& input,
    const std::vector<NodeId>& sources, const PathEvalOptions& options) {
  RQ_TRACE_SPAN_VAR(span, "graph.eval_sources");
  span.AddAttr("sources", sources.size());
  obs::FlightTimer timer(obs::QueryKind::kGraphEval);
  const Nfa nfa = input.HasEpsilons() ? input.WithoutEpsilons() : input;
  std::vector<std::vector<NodeId>> answers(sources.size());
  unsigned jobs = options.jobs != 0 ? options.jobs : DefaultParallelJobs();
  // Pool workers don't inherit the caller's thread-local ExecContext;
  // mirror it per worker slot so every BFS observes the same deadline and
  // cancel token (ChildOf(nullptr) is a free no-op context).
  ExecContext* parent = ExecContext::Current();
  MemContext* mem_parent = MemContext::Current();
  unsigned slots = jobs > 1 ? jobs : 1;
  std::vector<ExecContext> worker_ctx;
  std::vector<MemContext> worker_mem;
  worker_ctx.reserve(slots);
  worker_mem.reserve(slots);
  for (unsigned w = 0; w < slots; ++w) {
    worker_ctx.push_back(ExecContext::ChildOf(parent));
    worker_mem.push_back(MemContext::ChildOf(mem_parent));
  }
  ParallelForWorker(sources.size(), jobs, [&](unsigned w, size_t i) {
    ScopedExecContext scoped(&worker_ctx[w]);
    ScopedMemContext scoped_mem(mem_parent != nullptr ? &worker_mem[w]
                                                      : nullptr);
    answers[i] = ProductBfs(snapshot, nfa, sources[i]);
  });
  uint64_t total_answers = 0;
  for (const std::vector<NodeId>& a : answers) total_answers += a.size();
  // Map the parent context's verdict (partial answers are the workers'
  // problem to discard; callers poll CheckExecContext after this returns).
  Status parent_status = CheckExecContext();
  timer.Finish(parent_status.ok()
                   ? obs::kFlightVerdictOk
                   : obs::FlightVerdictFromError(parent_status),
               total_answers);
  return answers;
}

std::vector<std::pair<NodeId, NodeId>> EvalPathQueryNfa(
    const GraphSnapshot& snapshot, const Nfa& input,
    const PathEvalOptions& options) {
  std::vector<NodeId> sources(snapshot.num_nodes());
  std::iota(sources.begin(), sources.end(), NodeId{0});
  std::vector<std::vector<NodeId>> answers =
      EvalPathQueryFromSources(snapshot, input, sources, options);
  std::vector<std::pair<NodeId, NodeId>> out;
  for (size_t x = 0; x < answers.size(); ++x) {
    for (NodeId y : answers[x]) out.emplace_back(static_cast<NodeId>(x), y);
  }
  return out;  // already sorted: outer loop ascending, inner sorted
}

std::vector<std::pair<NodeId, NodeId>> EvalPathQueryNfa(
    const GraphDb& db, const Nfa& nfa, const PathEvalOptions& options) {
  return EvalPathQueryNfa(*db.Snapshot(), nfa, options);
}

std::vector<std::pair<NodeId, NodeId>> EvalPathQuery(
    const GraphSnapshot& snapshot, const Regex& regex,
    const PathEvalOptions& options) {
  Nfa nfa = regex.ToNfa(SymbolUniverse(snapshot.num_symbols(), regex));
  return EvalPathQueryNfa(snapshot, nfa, options);
}

std::vector<std::pair<NodeId, NodeId>> EvalPathQuery(
    const GraphDb& db, const Regex& regex, const PathEvalOptions& options) {
  Nfa nfa =
      regex.ToNfa(SymbolUniverse(db.alphabet().num_symbols(), regex));
  return EvalPathQueryNfa(*db.Snapshot(), nfa, options);
}

bool PathQueryAnswers(const GraphDb& db, const Regex& regex, NodeId x,
                      NodeId y) {
  Nfa nfa =
      regex.ToNfa(SymbolUniverse(db.alphabet().num_symbols(), regex));
  std::vector<NodeId> ys =
      EvalPathQueryFrom(*db.Snapshot(), nfa.WithoutEpsilons(), x);
  return std::binary_search(ys.begin(), ys.end(), y);
}

}  // namespace rq

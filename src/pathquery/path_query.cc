#include "pathquery/path_query.h"

#include <algorithm>
#include <deque>

namespace rq {

Result<PathQuery> ParsePathQuery(std::string_view text, Alphabet* alphabet) {
  RQ_ASSIGN_OR_RETURN(RegexPtr regex, ParseRegex(text, alphabet));
  return PathQuery{std::move(regex)};
}

std::vector<NodeId> EvalPathQueryFrom(const GraphDb& db, const Nfa& input,
                                      NodeId start) {
  const Nfa nfa = input.HasEpsilons() ? input.WithoutEpsilons() : input;
  const size_t num_states = nfa.num_states();
  std::vector<bool> seen(db.num_nodes() * num_states, false);
  std::deque<std::pair<NodeId, uint32_t>> work;
  auto push = [&](NodeId node, uint32_t state) {
    size_t key = static_cast<size_t>(node) * num_states + state;
    if (!seen[key]) {
      seen[key] = true;
      work.emplace_back(node, state);
    }
  };
  for (uint32_t s : nfa.initial()) push(start, s);

  std::vector<bool> answer(db.num_nodes(), false);
  while (!work.empty()) {
    auto [node, state] = work.front();
    work.pop_front();
    if (nfa.IsAccepting(state)) answer[node] = true;
    for (const NfaTransition& t : nfa.TransitionsFrom(state)) {
      for (NodeId next : db.Successors(node, t.symbol)) {
        push(next, t.to);
      }
    }
  }
  std::vector<NodeId> out;
  for (NodeId y = 0; y < db.num_nodes(); ++y) {
    if (answer[y]) out.push_back(y);
  }
  return out;
}

std::vector<std::pair<NodeId, NodeId>> EvalPathQueryNfa(const GraphDb& db,
                                                        const Nfa& input) {
  const Nfa nfa = input.HasEpsilons() ? input.WithoutEpsilons() : input;
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId x = 0; x < db.num_nodes(); ++x) {
    for (NodeId y : EvalPathQueryFrom(db, nfa, x)) {
      out.emplace_back(x, y);
    }
  }
  return out;  // already sorted: outer loop ascending, inner sorted
}

namespace {

uint32_t SymbolUniverse(const GraphDb& db, const Regex& regex) {
  return std::max(static_cast<uint32_t>(db.alphabet().num_symbols()),
                  regex.MinNumSymbols());
}

}  // namespace

std::vector<std::pair<NodeId, NodeId>> EvalPathQuery(const GraphDb& db,
                                                     const Regex& regex) {
  Nfa nfa = regex.ToNfa(SymbolUniverse(db, regex));
  return EvalPathQueryNfa(db, nfa);
}

bool PathQueryAnswers(const GraphDb& db, const Regex& regex, NodeId x,
                      NodeId y) {
  Nfa nfa = regex.ToNfa(SymbolUniverse(db, regex));
  std::vector<NodeId> ys = EvalPathQueryFrom(db, nfa.WithoutEpsilons(), x);
  return std::binary_search(ys.begin(), ys.end(), y);
}

}  // namespace rq

#include "pathquery/to_datalog.h"

#include <algorithm>

#include "automata/nfa.h"
#include "common/strings.h"

namespace rq {

Result<PredId> AppendPathAutomaton(DatalogProgram* program,
                                   const Regex& regex,
                                   const Alphabet& alphabet,
                                   const std::string& prefix) {
  const uint32_t k =
      std::max(static_cast<uint32_t>(alphabet.num_symbols()),
               regex.MinNumSymbols());
  Nfa nfa = regex.ToNfa(k).WithoutEpsilons().Trimmed();

  for (uint32_t label = 0; label < alphabet.num_labels(); ++label) {
    if (StartsWith(alphabet.LabelName(label), prefix)) {
      return InvalidArgumentError(
          "AppendPathAutomaton: label collides with generated names: " +
          alphabet.LabelName(label));
    }
  }
  RQ_ASSIGN_OR_RETURN(PredId nodes,
                      program->InternPredicate(prefix + "nodes", 1));
  RQ_ASSIGN_OR_RETURN(PredId ans,
                      program->InternPredicate(prefix + "ans", 2));

  // Active domain: endpoints of every edge label.
  for (uint32_t label = 0; label < alphabet.num_labels(); ++label) {
    RQ_ASSIGN_OR_RETURN(
        PredId edb, program->InternPredicate(alphabet.LabelName(label), 2));
    for (int position = 0; position < 2; ++position) {
      DatalogRule rule;
      rule.num_vars = 2;
      rule.var_names = {"X", "Y"};
      rule.head = {nodes, {static_cast<VarId>(position)}};
      rule.body = {{edb, {0, 1}}};
      program->AddRule(std::move(rule));
    }
  }

  auto state_pred = [&](uint32_t state) -> Result<PredId> {
    return program->InternPredicate(prefix + "s" + std::to_string(state), 2);
  };

  for (uint32_t s : nfa.initial()) {
    RQ_ASSIGN_OR_RETURN(PredId sp, state_pred(s));
    DatalogRule rule;
    rule.num_vars = 1;
    rule.var_names = {"X"};
    rule.head = {sp, {0, 0}};
    rule.body = {{nodes, {0}}};
    program->AddRule(std::move(rule));
  }
  for (uint32_t s = 0; s < nfa.num_states(); ++s) {
    for (const NfaTransition& t : nfa.TransitionsFrom(s)) {
      RQ_ASSIGN_OR_RETURN(PredId from, state_pred(s));
      RQ_ASSIGN_OR_RETURN(PredId to, state_pred(t.to));
      RQ_ASSIGN_OR_RETURN(
          PredId edb,
          program->InternPredicate(
              alphabet.LabelName(SymbolLabel(t.symbol)), 2));
      DatalogRule rule;
      rule.num_vars = 3;
      rule.var_names = {"X", "Y", "Z"};
      rule.head = {to, {0, 2}};
      if (IsInverseSymbol(t.symbol)) {
        rule.body = {{from, {0, 1}}, {edb, {2, 1}}};
      } else {
        rule.body = {{from, {0, 1}}, {edb, {1, 2}}};
      }
      program->AddRule(std::move(rule));
    }
    if (nfa.IsAccepting(s)) {
      RQ_ASSIGN_OR_RETURN(PredId sp, state_pred(s));
      DatalogRule rule;
      rule.num_vars = 2;
      rule.var_names = {"X", "Y"};
      rule.head = {ans, {0, 1}};
      rule.body = {{sp, {0, 1}}};
      program->AddRule(std::move(rule));
    }
  }
  return ans;
}

Result<DatalogProgram> PathQueryToDatalog(const Regex& regex,
                                          const Alphabet& alphabet) {
  DatalogProgram program;
  RQ_ASSIGN_OR_RETURN(
      PredId inner_ans,
      AppendPathAutomaton(&program, regex, alphabet, "rpq_"));
  RQ_ASSIGN_OR_RETURN(PredId ans, program.InternPredicate("ans", 2));
  DatalogRule rule;
  rule.num_vars = 2;
  rule.var_names = {"X", "Y"};
  rule.head = {ans, {0, 1}};
  rule.body = {{inner_ans, {0, 1}}};
  program.AddRule(std::move(rule));
  program.SetGoal(ans);
  RQ_RETURN_IF_ERROR(program.Validate());
  return program;
}

}  // namespace rq

// Regular path queries and two-way regular path queries (paper §3.1).
//
// An RPQ is a regular expression over the edge alphabet; its answer on a
// graph database D is the set of node pairs connected by a directed path
// spelling a word of the language. A 2RPQ may use inverse symbols r- and is
// evaluated over semipaths (paths that may traverse edges backward). Both
// evaluate with the same product-of-graph-and-automaton BFS, because
// GraphDb::Successors already resolves inverse symbols to backward steps.
#ifndef RQ_PATHQUERY_PATH_QUERY_H_
#define RQ_PATHQUERY_PATH_QUERY_H_

#include <string>
#include <utility>
#include <vector>

#include "automata/nfa.h"
#include "graph/graph_db.h"
#include "regex/regex.h"

namespace rq {

// A parsed path query bound to a database alphabet.
struct PathQuery {
  RegexPtr regex;

  // True if the query uses inverse symbols (2RPQ rather than RPQ).
  bool IsTwoWay() const { return regex->UsesInverse(); }
};

// Parses a path query; labels are interned into db_alphabet.
Result<PathQuery> ParsePathQuery(std::string_view text, Alphabet* alphabet);

// All nodes y such that (start, y) is in the answer.
std::vector<NodeId> EvalPathQueryFrom(const GraphDb& db, const Nfa& nfa,
                                      NodeId start);

// The full answer set, sorted by (x, y).
std::vector<std::pair<NodeId, NodeId>> EvalPathQuery(const GraphDb& db,
                                                     const Regex& regex);
std::vector<std::pair<NodeId, NodeId>> EvalPathQueryNfa(const GraphDb& db,
                                                        const Nfa& nfa);

// Membership test for one pair.
bool PathQueryAnswers(const GraphDb& db, const Regex& regex, NodeId x,
                      NodeId y);

}  // namespace rq

#endif  // RQ_PATHQUERY_PATH_QUERY_H_

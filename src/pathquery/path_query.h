// Regular path queries and two-way regular path queries (paper §3.1).
//
// An RPQ is a regular expression over the edge alphabet; its answer on a
// graph database D is the set of node pairs connected by a directed path
// spelling a word of the language. A 2RPQ may use inverse symbols r- and is
// evaluated over semipaths (paths that may traverse edges backward). Both
// evaluate with the same product-of-graph-and-automaton BFS, because the
// graph's adjacency already resolves inverse symbols to backward steps.
//
// Every evaluator runs over an immutable GraphSnapshot (graph/snapshot.h):
// the CSR arrays are safe to share across threads, so the multi-source
// entry point fans its sources across the worker pool (common/parallel.h)
// — one single-source product BFS per worker, answers stitched back in
// source order. The GraphDb overloads are conveniences that take one
// snapshot internally; callers issuing several queries against the same
// graph should snapshot once and reuse it.
#ifndef RQ_PATHQUERY_PATH_QUERY_H_
#define RQ_PATHQUERY_PATH_QUERY_H_

#include <string>
#include <utility>
#include <vector>

#include "automata/nfa.h"
#include "graph/graph_db.h"
#include "graph/snapshot.h"
#include "regex/regex.h"

namespace rq {

// A parsed path query bound to a database alphabet.
struct PathQuery {
  RegexPtr regex;

  // True if the query uses inverse symbols (2RPQ rather than RPQ).
  bool IsTwoWay() const { return regex->UsesInverse(); }
};

// Knobs for the multi-source evaluators.
struct PathEvalOptions {
  // Worker threads fanning sources across the pool; 0 means
  // DefaultParallelJobs() (the process-wide --jobs knob). Values <= 1 run
  // serially on the calling thread.
  unsigned jobs = 0;
};

// Parses a path query; labels are interned into db_alphabet.
Result<PathQuery> ParsePathQuery(std::string_view text, Alphabet* alphabet);

// All nodes y such that (start, y) is in the answer, sorted.
std::vector<NodeId> EvalPathQueryFrom(const GraphSnapshot& snapshot,
                                      const Nfa& nfa, NodeId start);
std::vector<NodeId> EvalPathQueryFrom(const GraphDb& db, const Nfa& nfa,
                                      NodeId start);

// Batch evaluation: answers[i] holds the sorted nodes reachable from
// sources[i]. Sources fan out across options.jobs workers over the shared
// snapshot; results always come back in source order regardless of
// scheduling.
std::vector<std::vector<NodeId>> EvalPathQueryFromSources(
    const GraphSnapshot& snapshot, const Nfa& nfa,
    const std::vector<NodeId>& sources, const PathEvalOptions& options = {});

// The full answer set, sorted by (x, y). All-pairs semantics = the
// multi-source evaluation from every node.
std::vector<std::pair<NodeId, NodeId>> EvalPathQuery(
    const GraphSnapshot& snapshot, const Regex& regex,
    const PathEvalOptions& options = {});
std::vector<std::pair<NodeId, NodeId>> EvalPathQuery(
    const GraphDb& db, const Regex& regex,
    const PathEvalOptions& options = {});
std::vector<std::pair<NodeId, NodeId>> EvalPathQueryNfa(
    const GraphSnapshot& snapshot, const Nfa& nfa,
    const PathEvalOptions& options = {});
std::vector<std::pair<NodeId, NodeId>> EvalPathQueryNfa(
    const GraphDb& db, const Nfa& nfa, const PathEvalOptions& options = {});

// Membership test for one pair.
bool PathQueryAnswers(const GraphDb& db, const Regex& regex, NodeId x,
                      NodeId y);

}  // namespace rq

#endif  // RQ_PATHQUERY_PATH_QUERY_H_

#include "twoway/two_nfa.h"

#include <deque>

namespace rq {

bool TwoNfa::Accepts(const std::vector<Symbol>& word) const {
  const size_t n = word.size();
  const size_t num_cells = n + 2;  // ⊢ w ⊣
  auto tape_symbol = [&](size_t cell) -> Symbol {
    if (cell == 0) return LeftMarker();
    if (cell == n + 1) return RightMarker();
    return word[cell - 1];
  };

  std::vector<bool> seen(static_cast<size_t>(num_states()) * num_cells,
                         false);
  std::deque<std::pair<uint32_t, size_t>> work;
  auto push = [&](uint32_t state, size_t cell) {
    size_t key = static_cast<size_t>(state) * num_cells + cell;
    if (!seen[key]) {
      seen[key] = true;
      work.emplace_back(state, cell);
    }
  };
  for (uint32_t s : initial_) push(s, 0);

  while (!work.empty()) {
    auto [state, cell] = work.front();
    work.pop_front();
    if (cell == n + 1 && accepting_[state]) return true;
    Symbol sym = tape_symbol(cell);
    for (const TwoNfaTransition& t : transitions_[state]) {
      if (t.symbol != sym) continue;
      int64_t next = static_cast<int64_t>(cell) + static_cast<int>(t.dir);
      if (next < 0 || next > static_cast<int64_t>(n + 1)) continue;
      push(t.to, static_cast<size_t>(next));
    }
  }
  return false;
}

std::string TwoNfa::ToString(const Alphabet& alphabet) const {
  auto symbol_name = [&](Symbol s) -> std::string {
    if (s == LeftMarker()) return "<|";
    if (s == RightMarker()) return "|>";
    return alphabet.SymbolName(s);
  };
  std::string out = "2NFA states=" + std::to_string(num_states()) + "\n";
  out += "initial:";
  for (uint32_t s : initial_) out += " " + std::to_string(s);
  out += "\naccepting:";
  for (uint32_t s = 0; s < num_states(); ++s) {
    if (accepting_[s]) out += " " + std::to_string(s);
  }
  out += "\n";
  for (uint32_t s = 0; s < num_states(); ++s) {
    for (const TwoNfaTransition& t : transitions_[s]) {
      const char* dir = t.dir == Dir::kLeft    ? "<"
                        : t.dir == Dir::kRight ? ">"
                                               : "=";
      out += std::to_string(s) + " -" + symbol_name(t.symbol) + "," + dir +
             "-> " + std::to_string(t.to) + "\n";
    }
  }
  return out;
}

}  // namespace rq

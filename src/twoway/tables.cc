#include "twoway/tables.h"

#include <deque>
#include <unordered_map>

#include "common/deadline.h"
#include "common/mem.h"

namespace rq {

size_t ApproxTableBytes(const TwoNfaTable& table) {
  // Each bitset owns ceil(n/64) heap words; the back elements' headers
  // live in the vector's heap buffer (counted via capacity).
  size_t words = (table.init.size() + 63) / 64;
  return words * sizeof(uint64_t) * (table.back.size() + 1) +
         table.back.capacity() * sizeof(Bitset);
}

size_t TwoNfaTable::Hash() const {
  size_t h = init.Hash();
  for (const Bitset& b : back) {
    h ^= b.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

TwoNfaSimulator::TwoNfaSimulator(const TwoNfa& m)
    : num_states_(m.num_states()),
      num_symbols_(m.num_symbols()),
      accepting_(m.num_states()),
      initial_(m.num_states()),
      by_symbol_from_(m.num_tape_symbols()) {
  for (auto& per_state : by_symbol_from_) per_state.resize(m.num_states());
  for (uint32_t s = 0; s < m.num_states(); ++s) {
    if (m.IsAccepting(s)) accepting_.Set(s);
    for (const TwoNfaTransition& t : m.TransitionsFrom(s)) {
      by_symbol_from_[t.symbol][s].push_back({t.to, t.dir});
    }
  }
  for (uint32_t s : m.initial()) initial_.Set(s);
}

Bitset TwoNfaSimulator::CellClosure(const Bitset& seed, Symbol tape_symbol,
                                    const std::vector<Bitset>* back,
                                    Bitset* exits) const {
  Bitset in_cell = seed;
  std::deque<uint32_t> work;
  seed.ForEach([&](size_t s) { work.push_back(static_cast<uint32_t>(s)); });
  auto add = [&](uint32_t s) {
    if (!in_cell.Test(s)) {
      in_cell.Set(s);
      work.push_back(s);
    }
  };
  const auto& arrows_from = by_symbol_from_[tape_symbol];
  while (!work.empty()) {
    uint32_t s = work.front();
    work.pop_front();
    for (const Arrow& arrow : arrows_from[s]) {
      switch (arrow.dir) {
        case Dir::kStay:
          add(arrow.to);
          break;
        case Dir::kLeft:
          if (back != nullptr) {
            (*back)[arrow.to].ForEach(
                [&](size_t r) { add(static_cast<uint32_t>(r)); });
          }
          break;
        case Dir::kRight:
          if (exits != nullptr) exits->Set(arrow.to);
          break;
      }
    }
  }
  return in_cell;
}

TwoNfaTable TwoNfaSimulator::InitialTable() const {
  const Symbol left = num_symbols_;  // LeftMarker tape symbol id
  TwoNfaTable table;
  {
    Bitset exits(num_states_);
    CellClosure(initial_, left, /*back=*/nullptr, &exits);
    table.init = exits;
  }
  table.back.reserve(num_states_);
  for (uint32_t s = 0; s < num_states_; ++s) {
    Bitset seed(num_states_);
    seed.Set(s);
    Bitset exits(num_states_);
    CellClosure(seed, left, /*back=*/nullptr, &exits);
    table.back.push_back(std::move(exits));
  }
  return table;
}

TwoNfaTable TwoNfaSimulator::Step(const TwoNfaTable& table, Symbol a) const {
  RQ_CHECK(a < num_symbols_);
  TwoNfaTable next;
  // A state exiting right of the old prefix arrives at the new cell; within
  // the new cell, left moves re-enter the old prefix and return via its back
  // table. States exiting the new cell rightward exit the extended prefix.
  {
    Bitset exits(num_states_);
    CellClosure(table.init, a, &table.back, &exits);
    next.init = exits;
  }
  next.back.reserve(num_states_);
  for (uint32_t s = 0; s < num_states_; ++s) {
    Bitset seed(num_states_);
    seed.Set(s);
    Bitset exits(num_states_);
    CellClosure(seed, a, &table.back, &exits);
    next.back.push_back(std::move(exits));
  }
  return next;
}

bool TwoNfaSimulator::Accepts(const TwoNfaTable& table) const {
  const Symbol right = num_symbols_ + 1;  // RightMarker tape symbol id
  Bitset at_marker =
      CellClosure(table.init, right, &table.back, /*exits=*/nullptr);
  return at_marker.Intersects(accepting_);
}

bool TwoNfaSimulator::AcceptsWord(const std::vector<Symbol>& word) const {
  TwoNfaTable table = InitialTable();
  for (Symbol a : word) table = Step(table, a);
  return Accepts(table);
}

Result<Dfa> MaterializeTableDfa(const TwoNfa& m, size_t max_states) {
  // The table space is the 2^(n²+n) blowup (tables.h); every interned
  // table is charged so byte budgets can stop the enumeration where
  // max_states alone would let it balloon first.
  MemScope mem_scope(MemSubsystem::kFold);
  TwoNfaSimulator sim(m);
  std::unordered_map<TwoNfaTable, uint32_t, TwoNfaTableHash> ids;
  std::vector<TwoNfaTable> tables;
  std::deque<uint32_t> work;

  auto intern = [&](TwoNfaTable table) {
    auto it = ids.find(table);
    if (it != ids.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(tables.size());
    // Two copies per interned table: the map key and the tables slot.
    MemCharge(static_cast<int64_t>(2 * ApproxTableBytes(table) +
                                   sizeof(TwoNfaTable) + sizeof(uint32_t)));
    ids.emplace(table, id);
    tables.push_back(std::move(table));
    work.push_back(id);
    return id;
  };

  intern(sim.InitialTable());
  std::vector<std::vector<uint32_t>> rows;
  while (!work.empty()) {
    RQ_RETURN_IF_ERROR(CheckExecContext());
    uint32_t id = work.front();
    work.pop_front();
    if (tables.size() > max_states) {
      return ResourceExhaustedError(
          "table DFA exceeds max_states=" + std::to_string(max_states));
    }
    if (rows.size() <= id) rows.resize(id + 1);
    rows[id].resize(sim.num_symbols());
    MemCharge(static_cast<int64_t>(sim.num_symbols() * sizeof(uint32_t)));
    for (Symbol a = 0; a < sim.num_symbols(); ++a) {
      TwoNfaTable next = sim.Step(tables[id], a);
      rows[id][a] = intern(std::move(next));
    }
  }
  if (tables.size() > max_states) {
    return ResourceExhaustedError(
        "table DFA exceeds max_states=" + std::to_string(max_states));
  }
  rows.resize(tables.size());

  Dfa dfa(static_cast<uint32_t>(tables.size()), sim.num_symbols());
  dfa.SetInitial(0);
  for (uint32_t id = 0; id < tables.size(); ++id) {
    dfa.SetAccepting(id, sim.Accepts(tables[id]));
    for (Symbol a = 0; a < sim.num_symbols(); ++a) {
      dfa.SetTransition(id, a, rows[id][a]);
    }
  }
  return dfa;
}

}  // namespace rq

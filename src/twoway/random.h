// Random 2NFA generation for property tests and the Lemma 4 benchmarks.
#ifndef RQ_TWOWAY_RANDOM_H_
#define RQ_TWOWAY_RANDOM_H_

#include <cstddef>

#include "common/rng.h"
#include "twoway/two_nfa.h"

namespace rq {

// A random 2NFA with `num_states` states over `num_symbols` regular
// symbols. `transitions_per_state` transitions are drawn per state with
// random symbols (including occasional marker transitions: stay/right on ⊢,
// stay/left on ⊣) and random directions.
TwoNfa RandomTwoNfa(size_t num_states, uint32_t num_symbols,
                    size_t transitions_per_state, uint64_t seed);

}  // namespace rq

#endif  // RQ_TWOWAY_RANDOM_H_

#include "twoway/fold.h"

#include <deque>

#include "common/deadline.h"
#include "common/mem.h"
#include "obs/subsystems.h"
#include "obs/trace.h"

namespace rq {

bool Folds(const std::vector<Symbol>& v, const std::vector<Symbol>& u) {
  const size_t m = v.size();
  const size_t n = u.size();
  // seen[j][i]: after consuming v_1..v_j the fold position can be i.
  std::vector<std::vector<bool>> seen(m + 1,
                                      std::vector<bool>(n + 1, false));
  seen[0][0] = true;
  for (size_t j = 0; j < m; ++j) {
    for (size_t i = 0; i <= n; ++i) {
      if (!seen[j][i]) continue;
      // Forward: i -> i+1 consuming u_{i+1}.
      if (i < n && v[j] == u[i]) seen[j + 1][i + 1] = true;
      // Backward: i -> i-1 consuming (u_i)⁻.
      if (i > 0 && v[j] == InverseSymbol(u[i - 1])) seen[j + 1][i - 1] = true;
    }
  }
  return seen[m][n];
}

TwoNfa FoldTwoNfa(const Nfa& input) {
  RQ_TRACE_SPAN_VAR(span, "fold.construct");
  MemScope mem_scope(MemSubsystem::kFold);
  const Nfa a = input.HasEpsilons() ? input.WithoutEpsilons() : input;
  const uint32_t k = a.num_symbols();
  TwoNfa out(k);

  // State encoding: (s, none) = s*(k+1); (s, pending b) = s*(k+1) + 1 + b.
  const uint32_t width = k + 1;
  for (uint32_t s = 0; s < a.num_states(); ++s) {
    for (uint32_t p = 0; p < width; ++p) out.AddState();
  }
  // Charges are batched per kChargeStride states: one atomic update per
  // stride instead of per state, with budget slack bounded by one stride
  // (the same bargain the deadline stride makes with the clock).
  constexpr uint32_t kChargeStride = 64;
  int64_t pending_bytes = static_cast<int64_t>(
      static_cast<uint64_t>(a.num_states()) * width *
      sizeof(std::vector<TwoNfaTransition>));
  auto none_state = [&](uint32_t s) { return s * width; };
  auto pending_state = [&](uint32_t s, Symbol b) { return s * width + 1 + b; };

  for (uint32_t s = 0; s < a.num_states(); ++s) {
    // Stop early (truncated 2NFA) when the installed ExecContext trips; the
    // Status-returning caller polls the same context and discards it.
    if (ExecStopRequested()) break;
    // Leave the left marker (used by initial states; harmless elsewhere).
    out.AddTransition(none_state(s), out.LeftMarker(), none_state(s),
                      Dir::kRight);
    // Forward steps: consume u_{i+1} under the head, fold position +1.
    for (const NfaTransition& t : a.TransitionsFrom(s)) {
      out.AddTransition(none_state(s), t.symbol, none_state(t.to),
                        Dir::kRight);
    }
    // Backward steps, phase 1: A consumes letter b; we must verify that b is
    // the inverse of the tape cell to the left, so move left carrying b.
    // This fires on any tape cell including the right marker (a fold can
    // turn around at the right end of u).
    for (const NfaTransition& t : a.TransitionsFrom(s)) {
      for (Symbol c = 0; c < k; ++c) {
        out.AddTransition(none_state(s), c, pending_state(t.to, t.symbol),
                          Dir::kLeft);
      }
      out.AddTransition(none_state(s), out.RightMarker(),
                        pending_state(t.to, t.symbol), Dir::kLeft);
    }
    // Backward steps, phase 2: verify pending letter against the cell.
    // (On ⊢ there is no transition: a fold cannot step left of position 0.)
    for (Symbol b = 0; b < k; ++b) {
      Symbol cell = InverseSymbol(b);  // b must equal (u_i)⁻, so u_i = b⁻
      out.AddTransition(pending_state(s, b), cell, none_state(s), Dir::kStay);
    }
    // Transitions added for this source NFA state: the fold table rows are
    // where the k-fold width actually lands in memory.
    uint64_t deg = a.TransitionsFrom(s).size();
    pending_bytes += static_cast<int64_t>((1 + k + deg * (k + 2)) *
                                          sizeof(TwoNfaTransition));
    if ((s + 1) % kChargeStride == 0) {
      MemCharge(pending_bytes);
      pending_bytes = 0;
    }
  }
  MemCharge(pending_bytes);
  for (uint32_t s : a.initial()) out.AddInitial(none_state(s));
  for (uint32_t s = 0; s < a.num_states(); ++s) {
    if (a.IsAccepting(s)) out.SetAccepting(none_state(s));
  }
  uint64_t num_transitions = 0;
  for (uint32_t s = 0; s < out.num_states(); ++s) {
    num_transitions += out.TransitionsFrom(s).size();
  }
  obs::FoldCounters& counters = obs::FoldCounters::Get();
  counters.constructions.Increment();
  counters.states.Add(out.num_states());
  counters.transitions.Add(num_transitions);
  counters.states_per_construction.Record(out.num_states());
  counters.peak_states.Set(out.num_states());
  span.AddAttr("states", out.num_states());
  span.AddAttr("transitions", num_transitions);
  return out;
}

bool FoldsOntoWord(const Nfa& input, const std::vector<Symbol>& u) {
  const Nfa a = input.HasEpsilons() ? input.WithoutEpsilons() : input;
  const size_t n = u.size();
  // Configurations: (state of a, fold position 0..n).
  std::vector<bool> seen(static_cast<size_t>(a.num_states()) * (n + 1),
                         false);
  std::deque<std::pair<uint32_t, size_t>> work;
  auto push = [&](uint32_t s, size_t i) {
    size_t key = static_cast<size_t>(s) * (n + 1) + i;
    if (!seen[key]) {
      seen[key] = true;
      work.emplace_back(s, i);
    }
  };
  for (uint32_t s : a.initial()) push(s, 0);
  while (!work.empty()) {
    auto [s, i] = work.front();
    work.pop_front();
    if (i == n && a.IsAccepting(s)) return true;
    for (const NfaTransition& t : a.TransitionsFrom(s)) {
      if (i < n && t.symbol == u[i]) push(t.to, i + 1);
      if (i > 0 && t.symbol == InverseSymbol(u[i - 1])) push(t.to, i - 1);
    }
  }
  return false;
}

}  // namespace rq

#include "twoway/complement.h"

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/mem.h"
#include "obs/subsystems.h"
#include "obs/trace.h"

namespace rq {

namespace {

// Per tape symbol, per source state: masks of Stay/Left/Right targets.
struct CellArrows {
  std::vector<uint32_t> stay;
  std::vector<uint32_t> left;
  std::vector<uint32_t> right;
};

// Checks the local closure constraints of a cell carrying a tape symbol with
// arrows `ca`, for set `mid` with left neighbor `pred`; on success stores
// the minimal right-neighbor requirement in `right_req`.
bool CellOk(const CellArrows& ca, uint32_t pred, uint32_t mid,
            uint32_t* right_req) {
  uint32_t req = 0;
  uint32_t m = mid;
  while (m != 0) {
    uint32_t s = static_cast<uint32_t>(__builtin_ctz(m));
    m &= m - 1;
    if ((ca.stay[s] & ~mid) != 0) return false;
    if ((ca.left[s] & ~pred) != 0) return false;
    req |= ca.right[s];
  }
  *right_req = req;
  return true;
}

}  // namespace

namespace {

// Per interned (pred, mid) pair: the hash-map entry plus the Nfa state's
// vector headers. Transitions are charged separately as they are added.
constexpr int64_t kComplementStateBytes = 64;

Result<Nfa> VardiComplementNfaImpl(const TwoNfa& m, size_t max_states) {
  // The 4^n subset interning is the EXPSPACE pressure point
  // (docs/ROBUSTNESS.md): charge per fresh state and per transition so a
  // memory budget trips mid-enumeration via the CheckExecContext polls.
  MemScope mem_scope(MemSubsystem::kComplement);
  const uint32_t n = m.num_states();
  if (n > 20) {
    return InvalidArgumentError(
        "VardiComplementNfa: 2NFA too large (" + std::to_string(n) +
        " states; limit 20)");
  }
  const uint32_t k = m.num_symbols();
  const uint32_t full = (n >= 32) ? 0xffffffffu : ((1u << n) - 1);

  // Index arrows per tape symbol.
  std::vector<CellArrows> arrows(m.num_tape_symbols());
  for (auto& ca : arrows) {
    ca.stay.assign(n, 0);
    ca.left.assign(n, 0);
    ca.right.assign(n, 0);
  }
  for (uint32_t s = 0; s < n; ++s) {
    for (const TwoNfaTransition& t : m.TransitionsFrom(s)) {
      CellArrows& ca = arrows[t.symbol];
      if (t.dir == Dir::kStay) ca.stay[s] |= 1u << t.to;
      if (t.dir == Dir::kLeft) ca.left[s] |= 1u << t.to;
      if (t.dir == Dir::kRight) ca.right[s] |= 1u << t.to;
    }
  }
  uint32_t initial_mask = 0;
  uint32_t accepting_mask = 0;
  for (uint32_t s : m.initial()) initial_mask |= 1u << s;
  for (uint32_t s = 0; s < n; ++s) {
    if (m.IsAccepting(s)) accepting_mask |= 1u << s;
  }

  Nfa out(k);
  std::unordered_map<uint64_t, uint32_t> ids;
  std::deque<std::pair<uint32_t, uint32_t>> work;
  const CellArrows& right_marker = arrows[m.RightMarker()];

  auto is_accepting_pair = [&](uint32_t pred, uint32_t mid) {
    if ((mid & accepting_mask) != 0) return false;
    uint32_t req = 0;
    if (!CellOk(right_marker, pred, mid, &req)) return false;
    // Right moves off ⊣ leave the tape; the run dies, so any req is fine.
    return true;
  };

  auto intern = [&](uint32_t pred, uint32_t mid) -> Result<uint32_t> {
    uint64_t key = (static_cast<uint64_t>(pred) << 32) | mid;
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    if (out.num_states() >= max_states) {
      return ResourceExhaustedError(
          "VardiComplementNfa exceeds max_states=" +
          std::to_string(max_states));
    }
    uint32_t id = out.AddState();
    out.SetAccepting(id, is_accepting_pair(pred, mid));
    ids.emplace(key, id);
    work.emplace_back(pred, mid);
    MemCharge(kComplementStateBytes);
    return id;
  };

  // Initial pairs (U_0, U_1): U_0 ⊇ initial states, closed at ⊢.
  const CellArrows& left_marker = arrows[m.LeftMarker()];
  for (uint32_t u0 = 0; u0 <= full; ++u0) {
    if ((u0 & initial_mask) != initial_mask) continue;
    uint32_t req = 0;
    // Left moves at ⊢ fall off the tape (die): treat pred as "anything".
    if (!CellOk(left_marker, full, u0, &req)) continue;
    // Enumerate U_1 ⊇ req. Up to 2^n iterations per pair, and intern only
    // caps FRESH states — existing ids keep the loop spinning — so poll the
    // ExecContext inside, not just per work item.
    uint32_t rest = full & ~req;
    for (uint32_t extra = rest;; extra = (extra - 1) & rest) {
      RQ_RETURN_IF_ERROR(CheckExecContext());
      RQ_ASSIGN_OR_RETURN(uint32_t id, intern(u0, req | extra));
      out.AddInitial(id);
      if (extra == 0) break;
    }
  }

  while (!work.empty()) {
    auto [pred, mid] = work.front();
    work.pop_front();
    uint64_t key = (static_cast<uint64_t>(pred) << 32) | mid;
    uint32_t from = ids[key];
    for (Symbol a = 0; a < k; ++a) {
      uint32_t req = 0;
      if (!CellOk(arrows[a], pred, mid, &req)) continue;
      uint32_t rest = full & ~req;
      for (uint32_t extra = rest;; extra = (extra - 1) & rest) {
        RQ_RETURN_IF_ERROR(CheckExecContext());
        RQ_ASSIGN_OR_RETURN(uint32_t id, intern(mid, req | extra));
        out.AddTransition(from, a, id);
        MemCharge(sizeof(NfaTransition));
        if (extra == 0) break;
      }
    }
  }
  if (out.num_states() == 0) {
    uint32_t s = out.AddState();
    out.AddInitial(s);
  }
  return out;
}

}  // namespace

Result<Nfa> VardiComplementNfa(const TwoNfa& m, size_t max_states) {
  RQ_TRACE_SPAN_VAR(span, "complement.construct");
  Result<Nfa> result = VardiComplementNfaImpl(m, max_states);
  obs::ComplementCounters& counters = obs::ComplementCounters::Get();
  counters.constructions.Increment();
  if (result.ok()) {
    counters.states.Add(result->num_states());
    counters.peak_states.Set(result->num_states());
    span.AddAttr("states", result->num_states());
  } else if (result.status().code() == StatusCode::kResourceExhausted) {
    counters.budget_exhausted.Increment();
  }
  return result;
}

}  // namespace rq

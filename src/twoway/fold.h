// The fold construction (paper §3.2, Lemmas 2-3).
//
// A word v over Sigma± folds onto u (v ; u) when v can be traced on u
// moving forward and backward: there are positions i_0=0,...,i_m=|u| with
// each step either i_{j+1}=i_j+1 and v_{j+1}=u_{i_{j+1}}, or i_{j+1}=i_j-1
// and v_{j+1}=(u_{i_j})⁻. fold(L) = { u : v ; u for some v ∈ L }.
//
// Lemma 3: if A is an n-state NFA over Sigma±, fold(L(A)) is accepted by a
// 2NFA with n·(|Sigma±|+1) states. FoldTwoNfa builds exactly that 2NFA: each
// state is (s, pending) where pending is either "none" (fold position is one
// left of the head) or a letter b of Sigma± that A just consumed on a
// backward step, to be checked against the tape cell to the left.
#ifndef RQ_TWOWAY_FOLD_H_
#define RQ_TWOWAY_FOLD_H_

#include <vector>

#include "automata/alphabet.h"
#include "automata/nfa.h"
#include "twoway/two_nfa.h"

namespace rq {

// Word-level folding predicate, straight from the paper's definition
// (dynamic program over (prefix of v, position in u)). Ground truth for
// tests of the 2NFA construction.
bool Folds(const std::vector<Symbol>& v, const std::vector<Symbol>& u);

// Lemma 3 construction: 2NFA accepting fold(L(a)) with
// a.num_states() * (num_symbols + 1) states. `a` may contain epsilons (they
// are eliminated first; the bound applies to the epsilon-free automaton).
TwoNfa FoldTwoNfa(const Nfa& a);

// Independent membership check u ∈ fold(L(a)) by BFS over pairs
// (state of a, fold position in u), not via the 2NFA. Used to cross-validate
// FoldTwoNfa in tests.
bool FoldsOntoWord(const Nfa& a, const std::vector<Symbol>& u);

}  // namespace rq

#endif  // RQ_TWOWAY_FOLD_H_

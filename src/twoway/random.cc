#include "twoway/random.h"

namespace rq {

TwoNfa RandomTwoNfa(size_t num_states, uint32_t num_symbols,
                    size_t transitions_per_state, uint64_t seed) {
  RQ_CHECK(num_states > 0 && num_symbols > 0);
  TwoNfa m(num_symbols);
  Rng rng(seed);
  for (size_t s = 0; s < num_states; ++s) m.AddState();
  for (uint32_t s = 0; s < num_states; ++s) {
    for (size_t t = 0; t < transitions_per_state; ++t) {
      uint32_t to = static_cast<uint32_t>(rng.Below(num_states));
      double roll = rng.NextDouble();
      if (roll < 0.08) {
        // Leave the left marker (only sensible move there).
        m.AddTransition(s, m.LeftMarker(), to,
                        rng.Chance(0.5) ? Dir::kRight : Dir::kStay);
      } else if (roll < 0.16) {
        // At the right marker: stay or walk back in.
        m.AddTransition(s, m.RightMarker(), to,
                        rng.Chance(0.5) ? Dir::kLeft : Dir::kStay);
      } else {
        Symbol a = static_cast<Symbol>(rng.Below(num_symbols));
        int d = static_cast<int>(rng.Below(3)) - 1;
        m.AddTransition(s, a, to, static_cast<Dir>(d));
      }
    }
  }
  // One or two initial and accepting states.
  m.AddInitial(static_cast<uint32_t>(rng.Below(num_states)));
  if (rng.Chance(0.3)) {
    m.AddInitial(static_cast<uint32_t>(rng.Below(num_states)));
  }
  m.SetAccepting(static_cast<uint32_t>(rng.Below(num_states)));
  if (rng.Chance(0.3)) {
    m.SetAccepting(static_cast<uint32_t>(rng.Below(num_states)));
  }
  return m;
}

}  // namespace rq

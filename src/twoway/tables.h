// Shepherdson behavior tables: a deterministic one-way view of a 2NFA.
//
// After reading a prefix p of the input, all future behavior of a 2NFA on
// the tape ⊢p… is captured by a table:
//   * init    — the states in which the automaton can exit ⊢p to the right
//               when started from its initial configuration, and
//   * back[s] — the states in which it can exit ⊢p to the right when it
//               enters from the right boundary in state s (moving left).
// Tables compose letter by letter, giving a (lazily explored) deterministic
// automaton equivalent to the 2NFA, with at most 2^(n²+n) states. This is
// the practical engine behind our 2RPQ containment pipeline (Theorem 5): it
// avoids materializing the Lemma 4 complement while staying exact.
#ifndef RQ_TWOWAY_TABLES_H_
#define RQ_TWOWAY_TABLES_H_

#include <cstdint>
#include <vector>

#include "automata/dfa.h"
#include "common/bitset.h"
#include "common/status.h"
#include "twoway/two_nfa.h"

namespace rq {

struct TwoNfaTable {
  Bitset init;
  std::vector<Bitset> back;

  size_t Hash() const;
  friend bool operator==(const TwoNfaTable& a, const TwoNfaTable& b) {
    return a.init == b.init && a.back == b.back;
  }
};

struct TwoNfaTableHash {
  size_t operator()(const TwoNfaTable& t) const { return t.Hash(); }
};

// Heap bytes held by one table: (num_states + 1) bitsets of
// ceil(num_states/64) words each, plus the back-vector spine. Used to
// charge table interning against the thread's MemContext — the table
// space is the 2^(n²+n) blowup of the 2RPQ pipeline, so this is where
// byte budgets must bite.
size_t ApproxTableBytes(const TwoNfaTable& table);

// Computes table transitions for a fixed 2NFA. Holds a copy of the 2NFA's
// transition relation indexed by tape symbol for fast closures.
class TwoNfaSimulator {
 public:
  explicit TwoNfaSimulator(const TwoNfa& m);

  // Table of the empty prefix (tape ⊢ only).
  TwoNfaTable InitialTable() const;

  // Table after appending regular symbol `a` to the prefix.
  TwoNfaTable Step(const TwoNfaTable& table, Symbol a) const;

  // True if the word whose prefix-table is `table` is accepted (closure over
  // the right marker reaches an accepting state).
  bool Accepts(const TwoNfaTable& table) const;

  // Membership via tables (cross-validation against TwoNfa::Accepts).
  bool AcceptsWord(const std::vector<Symbol>& word) const;

  uint32_t num_states() const { return num_states_; }
  uint32_t num_symbols() const { return num_symbols_; }

 private:
  struct Arrow {
    uint32_t to;
    Dir dir;
  };

  // Closure of `seed` within a cell carrying `tape_symbol`, where left moves
  // re-enter the prefix summarized by `back` (nullptr: left moves die).
  // Returns the set of states co-located in the cell; `exits` collects the
  // states exiting right.
  Bitset CellClosure(const Bitset& seed, Symbol tape_symbol,
                     const std::vector<Bitset>* back, Bitset* exits) const;

  uint32_t num_states_;
  uint32_t num_symbols_;
  Bitset accepting_;
  Bitset initial_;
  // Transitions indexed by [tape symbol][source state].
  std::vector<std::vector<std::vector<Arrow>>> by_symbol_from_;
};

// Materializes the deterministic table automaton as a complete DFA over the
// 2NFA's regular symbols. Errors with ResourceExhausted if more than
// `max_states` tables are reachable. This is the "naive route" baseline of
// Lemma 4's discussion (2NFA → one-way automaton, exponential).
Result<Dfa> MaterializeTableDfa(const TwoNfa& m, size_t max_states);

}  // namespace rq

#endif  // RQ_TWOWAY_TABLES_H_

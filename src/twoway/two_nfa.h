// Two-way nondeterministic finite automata (paper §3.2).
//
// The paper defines 2NFA runs directly on the word w_1..w_n, starting at
// position 1 and accepting at position n+1. To let an automaton inspect the
// word boundaries (which the fold construction of Lemma 3 needs: a fold can
// turn around at either end of the word), our 2NFA runs on the end-marked
// tape  ⊢ w_1 .. w_n ⊣  with cells 0..n+1. The head starts on ⊢ (cell 0);
// the automaton accepts if some run reaches an accepting state on ⊣
// (cell n+1). Moves that would leave the tape kill the run. This model is
// interconvertible with the paper's and keeps Lemma 3's state count.
#ifndef RQ_TWOWAY_TWO_NFA_H_
#define RQ_TWOWAY_TWO_NFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "common/status.h"

namespace rq {

// Head movement of a two-way transition.
enum class Dir : int8_t { kLeft = -1, kStay = 0, kRight = 1 };

struct TwoNfaTransition {
  Symbol symbol;  // tape symbol: a regular symbol, or the marker below
  uint32_t to;
  Dir dir;
};

class TwoNfa {
 public:
  // `num_symbols` regular symbols; two extra tape symbols are defined:
  // LeftMarker() and RightMarker().
  explicit TwoNfa(uint32_t num_symbols) : num_symbols_(num_symbols) {}

  Symbol LeftMarker() const { return num_symbols_; }
  Symbol RightMarker() const { return num_symbols_ + 1; }
  uint32_t num_symbols() const { return num_symbols_; }
  uint32_t num_tape_symbols() const { return num_symbols_ + 2; }

  uint32_t AddState() {
    transitions_.emplace_back();
    accepting_.push_back(false);
    return static_cast<uint32_t>(transitions_.size() - 1);
  }

  void AddTransition(uint32_t from, Symbol tape_symbol, uint32_t to, Dir dir) {
    RQ_CHECK(from < num_states() && to < num_states());
    RQ_CHECK(tape_symbol < num_tape_symbols());
    transitions_[from].push_back({tape_symbol, to, dir});
  }

  void AddInitial(uint32_t state) {
    RQ_CHECK(state < num_states());
    initial_.push_back(state);
  }
  void SetAccepting(uint32_t state, bool accepting = true) {
    RQ_CHECK(state < num_states());
    accepting_[state] = accepting;
  }

  uint32_t num_states() const {
    return static_cast<uint32_t>(transitions_.size());
  }
  const std::vector<uint32_t>& initial() const { return initial_; }
  bool IsAccepting(uint32_t state) const { return accepting_[state]; }
  const std::vector<TwoNfaTransition>& TransitionsFrom(uint32_t state) const {
    return transitions_[state];
  }
  size_t CountTransitions() const {
    size_t n = 0;
    for (const auto& t : transitions_) n += t.size();
    return n;
  }

  // Direct membership test by BFS over configurations (state, cell).
  // O(num_states * (|word|+2) * transitions). Ground truth for tests.
  bool Accepts(const std::vector<Symbol>& word) const;

  std::string ToString(const Alphabet& alphabet) const;

 private:
  uint32_t num_symbols_;
  std::vector<uint32_t> initial_;
  std::vector<bool> accepting_;
  std::vector<std::vector<TwoNfaTransition>> transitions_;
};

}  // namespace rq

#endif  // RQ_TWOWAY_TWO_NFA_H_

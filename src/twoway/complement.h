// Single-exponential complementation of 2NFAs (paper Lemma 4, Vardi 1989).
//
// A word w = w_1..w_n is rejected by a 2NFA A iff there is a certificate:
// sets U_0..U_{n+1} of states, one per tape cell of ⊢w⊣, such that
//   (1) every initial state is in U_0,
//   (2) the sets are closed under transitions: s ∈ U_i and (s',c) ∈
//       ρ(s, tape_i) with i+c on the tape imply s' ∈ U_{i+c}, and
//   (3) U_{n+1} contains no accepting state.
// (The reachable-configuration sets are the minimal certificate.) An NFA can
// guess the certificate cell by cell, holding the two sets flanking the
// current cell: states are pairs (U_{i-1}, U_i), giving 2^O(n) states.
//
// This materializes that NFA explicitly. It is exponential by design — the
// benchmark bench_2nfa_complement measures exactly this growth — so callers
// must pass a state budget.
#ifndef RQ_TWOWAY_COMPLEMENT_H_
#define RQ_TWOWAY_COMPLEMENT_H_

#include <cstddef>

#include "automata/nfa.h"
#include "common/status.h"
#include "twoway/two_nfa.h"

namespace rq {

// Builds an NFA over the 2NFA's regular symbols accepting the complement of
// L(m). Requires m.num_states() <= 20 (subset masks). Fails with
// ResourceExhausted if more than `max_states` pair-states are reachable.
Result<Nfa> VardiComplementNfa(const TwoNfa& m, size_t max_states);

}  // namespace rq

#endif  // RQ_TWOWAY_COMPLEMENT_H_

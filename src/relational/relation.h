// Relations and relational databases of arbitrary arity (paper §2).
//
// These back three things: the Datalog engine (§2.2), canonical databases
// for homomorphism-based containment (§2.3), and the relational view of
// graph databases (each edge label is a binary relation, §3.1).
#ifndef RQ_RELATIONAL_RELATION_H_
#define RQ_RELATIONAL_RELATION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace rq {

// Values are opaque 64-bit constants (node ids, frozen variables, ...).
using Value = uint64_t;
using Tuple = std::vector<Value>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (Value v : t) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

// A set of tuples of fixed arity with lazy per-column hash indexes.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  // Inserts a tuple; returns true if it was new.
  bool Insert(const Tuple& tuple);

  bool Contains(const Tuple& tuple) const {
    return set_.contains(tuple);
  }

  // Insertion-ordered tuples.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  // Sorted copy (for deterministic comparisons and printing).
  std::vector<Tuple> SortedTuples() const;

  // Inserts every tuple of `other` (arity must match); returns the number of
  // new tuples.
  size_t InsertAll(const Relation& other);

  // Row indexes of tuples whose `column` equals `value`. The reference is
  // invalidated by the next Insert.
  const std::vector<uint32_t>& RowsWithValue(size_t column,
                                             Value value) const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.arity_ == b.arity_ && a.set_ == b.set_;
  }

 private:
  size_t arity_;
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, TupleHash> set_;

  mutable bool index_dirty_ = true;
  mutable std::vector<std::unordered_map<Value, std::vector<uint32_t>>>
      column_index_;
  mutable std::vector<uint32_t> empty_rows_;
};

// A named collection of relations.
class Database {
 public:
  Database() = default;

  // Gets or creates a relation. Fails on arity mismatch with an existing
  // relation of the same name.
  Result<Relation*> GetOrCreate(std::string_view name, size_t arity);

  // nullptr if absent.
  const Relation* Find(std::string_view name) const;
  Relation* FindMutable(std::string_view name);

  std::vector<std::string> RelationNames() const;

  size_t TotalTuples() const;

  std::string ToString() const;

 private:
  std::unordered_map<std::string, Relation> relations_;
};

}  // namespace rq

#endif  // RQ_RELATIONAL_RELATION_H_

// Generic backtracking matcher: finds all assignments of variables to
// values satisfying a conjunction of atoms over relations.
//
// This single engine powers conjunctive-query evaluation, Datalog rule
// application, and homomorphism search for Chandra-Merlin containment
// (evaluating Q2 on the canonical database of Q1 *is* the homomorphism
// test). Atoms are matched most-constrained-first; an atom with at least one
// bound variable scans only the rows indexed by that value.
#ifndef RQ_RELATIONAL_MATCHER_H_
#define RQ_RELATIONAL_MATCHER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "relational/relation.h"

namespace rq {

using VarId = uint32_t;

// One atom of the conjunction: a relation and the variables filling its
// columns (repeats allowed, e.g. r(x, x)).
struct MatchAtom {
  const Relation* relation;
  std::vector<VarId> vars;
};

// Invokes `on_match` for every satisfying assignment (indexed by VarId,
// size num_vars). Variables pre-bound in `binding` (entries != kUnbound) are
// respected. Returns the number of matches, or stops early (and returns the
// count so far) once `on_match` returns false.
inline constexpr Value kUnboundValue = 0xffffffffffffffffULL;

size_t MatchConjunction(const std::vector<MatchAtom>& atoms, uint32_t num_vars,
                        const std::function<bool(const std::vector<Value>&)>&
                            on_match);

// Ablation variant: matches atoms strictly in the given order instead of
// most-constrained-first (candidate filtering via bound columns still
// applies). Same results; bench_matcher_ablation measures the join-order
// heuristic's payoff.
size_t MatchConjunctionInOrder(
    const std::vector<MatchAtom>& atoms, uint32_t num_vars,
    const std::function<bool(const std::vector<Value>&)>& on_match);

// Convenience: true if at least one satisfying assignment exists.
bool ConjunctionSatisfiable(const std::vector<MatchAtom>& atoms,
                            uint32_t num_vars);

}  // namespace rq

#endif  // RQ_RELATIONAL_MATCHER_H_

#include "relational/incremental.h"

#include <vector>

namespace rq {

size_t IncrementalClosure::AddEdge(Value x, Value y) {
  base_.Insert({x, y});
  if (closure_.Contains({x, y})) {
    // x already reaches y, so every pair the product below would produce is
    // already derivable through the old closure.
    return 0;
  }
  // Sources: everything reaching x, plus x itself.
  std::vector<Value> sources{x};
  for (uint32_t row : closure_.RowsWithValue(1, x)) {
    sources.push_back(closure_.tuples()[row][0]);
  }
  // Targets: everything reachable from y, plus y itself.
  std::vector<Value> targets{y};
  for (uint32_t row : closure_.RowsWithValue(0, y)) {
    targets.push_back(closure_.tuples()[row][1]);
  }
  size_t added = 0;
  for (Value a : sources) {
    for (Value b : targets) {
      if (closure_.Insert({a, b})) ++added;
    }
  }
  return added;
}

}  // namespace rq

#include "relational/incremental.h"

#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/mem.h"
#include "obs/subsystems.h"

namespace rq {

IncrementalClosure::IncrementalClosure(IncrementalClosure&& other) noexcept
    : base_(std::move(other.base_)),
      closure_(std::move(other.closure_)),
      mem_bytes_(other.mem_bytes_) {
  other.base_ = Relation(2);
  other.closure_ = Relation(2);
  other.mem_bytes_ = 0;
}

IncrementalClosure& IncrementalClosure::operator=(
    IncrementalClosure&& other) noexcept {
  if (this == &other) return *this;
  ReleaseCharge();
  base_ = std::move(other.base_);
  closure_ = std::move(other.closure_);
  mem_bytes_ = other.mem_bytes_;
  other.base_ = Relation(2);
  other.closure_ = Relation(2);
  other.mem_bytes_ = 0;
  return *this;
}

IncrementalClosure::~IncrementalClosure() { ReleaseCharge(); }

void IncrementalClosure::ReleaseCharge() {
  if (mem_bytes_ != 0) {
    MemReleaseDurable(MemSubsystem::kIncr, static_cast<int64_t>(mem_bytes_));
    mem_bytes_ = 0;
  }
}

void IncrementalClosure::SettleCharge() {
  size_t now = (base_.size() + closure_.size()) * kApproxClosurePairBytes;
  if (now != mem_bytes_) {
    MemChargeDurable(MemSubsystem::kIncr, static_cast<int64_t>(now) -
                                              static_cast<int64_t>(mem_bytes_));
    mem_bytes_ = now;
  }
}

void IncrementalClosure::Seed(Relation base, Relation closure) {
  base_ = std::move(base);
  closure_ = std::move(closure);
  SettleCharge();
}

Result<ClosureDelta> IncrementalClosure::AddEdge(Value x, Value y,
                                                 size_t max_delta_product) {
  base_.Insert({x, y});
  if (closure_.Contains({x, y})) {
    // x already reaches y, so every pair the product below would produce is
    // already derivable through the old closure.
    SettleCharge();
    return ClosureDelta{};
  }
  // The working vectors and the product loop run under an attribution
  // scope: the transient bytes count against the calling request's budget
  // and flow back out when the scope ends; the retained closure pairs are
  // settled into the durable mem.incr_bytes charge below.
  MemScope scope(MemSubsystem::kIncr);

  // Sources: everything reaching x, plus x itself.
  std::vector<Value> sources{x};
  for (uint32_t row : closure_.RowsWithValue(1, x)) {
    sources.push_back(closure_.tuples()[row][0]);
  }
  // Targets: everything reachable from y, plus y itself.
  std::vector<Value> targets{y};
  for (uint32_t row : closure_.RowsWithValue(0, y)) {
    targets.push_back(closure_.tuples()[row][1]);
  }
  MemCharge(static_cast<int64_t>((sources.size() + targets.size()) *
                                 sizeof(Value)));
  if (Status s = CheckExecContext(); !s.ok()) {
    // Nothing inserted into the closure yet; it is still exact for the old
    // base, but the new edge is unaccounted — same contract as a trip
    // mid-product: stop trusting it.
    return s;
  }
  if (max_delta_product > 0 &&
      sources.size() * targets.size() > max_delta_product) {
    ClosureDelta delta;
    delta.over_budget = true;
    SettleCharge();
    return delta;
  }
  ClosureDelta delta;
  for (Value a : sources) {
    for (Value b : targets) {
      // Deadline + memory budget poll on the product loop: worst case this
      // is O(V^2) inserts for one edge (common/deadline.h amortizes the
      // clock reads, so per-pair polling is cheap).
      if (Status s = CheckExecContext(); !s.ok()) {
        SettleCharge();
        return s;
      }
      if (closure_.Insert({a, b})) {
        ++delta.pairs_added;
        MemCharge(static_cast<int64_t>(kApproxClosurePairBytes));
      }
    }
  }
  SettleCharge();
  return delta;
}

Result<size_t> PerLabelClosure::AddEdge(uint32_t label, Value x, Value y) {
  auto it = labels_.find(label);
  if (it == labels_.end() || !it->second.live) return size_t{0};
  Entry& entry = it->second;
  Result<ClosureDelta> delta = entry.inc.AddEdge(x, y, max_delta_product_);
  if (!delta.ok()) {
    Demote(&entry);
    return delta.status();
  }
  if (delta->over_budget) {
    Demote(&entry);
    return size_t{0};
  }
  obs::IncrCounters::Get().pairs_added.Add(delta->pairs_added);
  return delta->pairs_added;
}

void PerLabelClosure::Seed(uint32_t label, Relation base, Relation closure) {
  Entry& entry = labels_[label];
  entry.inc.Seed(std::move(base), std::move(closure));
  entry.live = true;
  obs::IncrCounters::Get().seeds.Increment();
}

void PerLabelClosure::Demote(Entry* entry) {
  // Drop the stale image (and its durable charge) rather than keeping a
  // relation nobody may read; a later Seed() revives the label.
  entry->inc = IncrementalClosure();
  entry->live = false;
  obs::IncrCounters::Get().fallbacks.Increment();
}

bool PerLabelClosure::live(uint32_t label) const {
  auto it = labels_.find(label);
  return it != labels_.end() && it->second.live;
}

const Relation* PerLabelClosure::closure(uint32_t label) const {
  auto it = labels_.find(label);
  if (it == labels_.end() || !it->second.live) return nullptr;
  return &it->second.inc.closure();
}

size_t PerLabelClosure::num_live() const {
  size_t n = 0;
  for (const auto& [label, entry] : labels_) {
    if (entry.live) ++n;
  }
  return n;
}

}  // namespace rq

#include "relational/cq.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"
#include "obs/subsystems.h"
#include "obs/trace.h"

namespace rq {

Status ConjunctiveQuery::Validate() const {
  std::vector<bool> in_body(num_vars, false);
  for (const CqAtom& atom : atoms) {
    if (atom.predicate.empty()) {
      return InvalidArgumentError("CQ: empty predicate name");
    }
    for (VarId v : atom.vars) {
      if (v >= num_vars) {
        return InvalidArgumentError("CQ: variable id out of range");
      }
      in_body[v] = true;
    }
  }
  for (VarId v : head) {
    if (v >= num_vars) {
      return InvalidArgumentError("CQ: head variable id out of range");
    }
    if (!in_body[v]) {
      return InvalidArgumentError(
          "CQ: head variable does not occur in the body (not range "
          "restricted)");
    }
  }
  // Consistent arities per predicate within the query.
  std::unordered_map<std::string, size_t> arities;
  for (const CqAtom& atom : atoms) {
    auto [it, inserted] = arities.emplace(atom.predicate, atom.vars.size());
    if (!inserted && it->second != atom.vars.size()) {
      return InvalidArgumentError("CQ: predicate " + atom.predicate +
                                  " used with two arities");
    }
  }
  return Status::Ok();
}

Database ConjunctiveQuery::CanonicalDatabase() const {
  Database db;
  for (const CqAtom& atom : atoms) {
    Relation* rel = db.GetOrCreate(atom.predicate, atom.vars.size()).value();
    Tuple t;
    t.reserve(atom.vars.size());
    for (VarId v : atom.vars) t.push_back(static_cast<Value>(v));
    rel->Insert(t);
  }
  return db;
}

Tuple ConjunctiveQuery::FrozenHead() const {
  Tuple t;
  t.reserve(head.size());
  for (VarId v : head) t.push_back(static_cast<Value>(v));
  return t;
}

namespace {

std::string VarName(const ConjunctiveQuery& q, VarId v) {
  if (v < q.var_names.size() && !q.var_names[v].empty()) {
    return q.var_names[v];
  }
  return "v" + std::to_string(v);
}

}  // namespace

std::string ConjunctiveQuery::ToString() const {
  std::string out = "q(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += VarName(*this, head[i]);
  }
  out += ") :- ";
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms[i].predicate;
    out.push_back('(');
    for (size_t j = 0; j < atoms[i].vars.size(); ++j) {
      if (j > 0) out.push_back(',');
      out += VarName(*this, atoms[i].vars[j]);
    }
    out.push_back(')');
  }
  return out;
}

Status UnionOfConjunctiveQueries::Validate() const {
  if (disjuncts.empty()) {
    return InvalidArgumentError("UCQ: no disjuncts");
  }
  size_t arity = disjuncts[0].arity();
  for (const ConjunctiveQuery& q : disjuncts) {
    RQ_RETURN_IF_ERROR(q.Validate());
    if (q.arity() != arity) {
      return InvalidArgumentError("UCQ: disjuncts of different arities");
    }
  }
  return Status::Ok();
}

std::string UnionOfConjunctiveQueries::ToString() const {
  std::string out;
  for (const ConjunctiveQuery& q : disjuncts) {
    out += q.ToString();
    out.push_back('\n');
  }
  return out;
}

Result<Relation> EvalCq(const Database& db, const ConjunctiveQuery& query) {
  RQ_RETURN_IF_ERROR(query.Validate());
  Relation out(query.arity());
  // Any atom over a missing relation makes the query empty.
  std::vector<MatchAtom> atoms;
  atoms.reserve(query.atoms.size());
  for (const CqAtom& atom : query.atoms) {
    const Relation* rel = db.Find(atom.predicate);
    if (rel == nullptr) return out;
    if (rel->arity() != atom.vars.size()) {
      return InvalidArgumentError("EvalCq: arity mismatch on " +
                                  atom.predicate);
    }
    atoms.push_back({rel, atom.vars});
  }
  MatchConjunction(atoms, query.num_vars,
                   [&](const std::vector<Value>& binding) {
                     Tuple t;
                     t.reserve(query.head.size());
                     for (VarId v : query.head) t.push_back(binding[v]);
                     out.Insert(t);
                     return true;
                   });
  return out;
}

Result<Relation> EvalUcq(const Database& db,
                         const UnionOfConjunctiveQueries& query) {
  RQ_RETURN_IF_ERROR(query.Validate());
  Relation out(query.disjuncts[0].arity());
  for (const ConjunctiveQuery& q : query.disjuncts) {
    RQ_ASSIGN_OR_RETURN(Relation part, EvalCq(db, q));
    out.InsertAll(part);
  }
  return out;
}

Result<bool> CqContained(const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2) {
  RQ_TRACE_SPAN("cq.containment");
  RQ_RETURN_IF_ERROR(q1.Validate());
  RQ_RETURN_IF_ERROR(q2.Validate());
  if (q1.arity() != q2.arity()) {
    return InvalidArgumentError("CqContained: arity mismatch");
  }
  obs::CqCounters& counters = obs::CqCounters::Get();
  counters.hom_checks.Increment();
  counters.canonical_evals.Increment();
  Database canonical = q1.CanonicalDatabase();
  RQ_ASSIGN_OR_RETURN(Relation answers, EvalCq(canonical, q2));
  return answers.Contains(q1.FrozenHead());
}

Result<std::optional<std::vector<Value>>> CqContainmentWitness(
    const ConjunctiveQuery& q1, const ConjunctiveQuery& q2) {
  RQ_RETURN_IF_ERROR(q1.Validate());
  RQ_RETURN_IF_ERROR(q2.Validate());
  if (q1.arity() != q2.arity()) {
    return InvalidArgumentError("CqContainmentWitness: arity mismatch");
  }
  Database canonical = q1.CanonicalDatabase();
  // Match q2's body over the canonical database with its head variables
  // pre-constrained to q1's frozen head via an auxiliary single-tuple
  // relation joined on the head variables.
  Relation head_anchor(q1.arity());
  head_anchor.Insert(q1.FrozenHead());
  std::vector<MatchAtom> atoms;
  atoms.push_back({&head_anchor, q2.head});
  for (const CqAtom& atom : q2.atoms) {
    const Relation* rel = canonical.Find(atom.predicate);
    if (rel == nullptr) return std::optional<std::vector<Value>>(std::nullopt);
    if (rel->arity() != atom.vars.size()) {
      return InvalidArgumentError("CqContainmentWitness: arity mismatch on " +
                                  atom.predicate);
    }
    atoms.push_back({rel, atom.vars});
  }
  obs::CqCounters::Get().hom_checks.Increment();
  std::optional<std::vector<Value>> witness;
  MatchConjunction(atoms, q2.num_vars,
                   [&](const std::vector<Value>& binding) {
                     witness = binding;
                     return false;  // first homomorphism suffices
                   });
  return witness;
}

Result<bool> UcqContained(const UnionOfConjunctiveQueries& q1,
                          const UnionOfConjunctiveQueries& q2) {
  RQ_TRACE_SPAN("cq.ucq_containment");
  RQ_RETURN_IF_ERROR(q1.Validate());
  RQ_RETURN_IF_ERROR(q2.Validate());
  if (q1.disjuncts[0].arity() != q2.disjuncts[0].arity()) {
    return InvalidArgumentError("UcqContained: arity mismatch");
  }
  obs::CqCounters& counters = obs::CqCounters::Get();
  for (const ConjunctiveQuery& q : q1.disjuncts) {
    // One canonical database per left disjunct; evaluating the right union
    // over it performs one homomorphism check per right disjunct.
    counters.canonical_evals.Increment();
    counters.hom_checks.Add(q2.disjuncts.size());
    Database canonical = q.CanonicalDatabase();
    RQ_ASSIGN_OR_RETURN(Relation answers, EvalUcq(canonical, q2));
    if (!answers.Contains(q.FrozenHead())) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

// Shared by ParseCq and the Datalog parser: parses "pred(v1,...,vk)" atoms.
struct AtomText {
  std::string predicate;
  std::vector<std::string> args;
};

Result<std::vector<AtomText>> ParseAtomList(std::string_view text) {
  std::vector<AtomText> out;
  size_t pos = 0;
  auto skip_space = [&] {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  };
  for (;;) {
    skip_space();
    if (pos >= text.size()) break;
    size_t start = pos;
    while (pos < text.size() && IsIdentChar(text[pos])) ++pos;
    if (pos == start) {
      return InvalidArgumentError("atom list: expected predicate name at '" +
                                  std::string(text.substr(pos)) + "'");
    }
    AtomText atom;
    atom.predicate = std::string(text.substr(start, pos - start));
    skip_space();
    if (pos >= text.size() || text[pos] != '(') {
      return InvalidArgumentError("atom list: expected '(' after " +
                                  atom.predicate);
    }
    ++pos;
    for (;;) {
      skip_space();
      size_t vstart = pos;
      while (pos < text.size() && IsIdentChar(text[pos])) ++pos;
      if (pos == vstart) {
        return InvalidArgumentError("atom list: expected variable in " +
                                    atom.predicate);
      }
      atom.args.emplace_back(text.substr(vstart, pos - vstart));
      skip_space();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      break;
    }
    if (pos >= text.size() || text[pos] != ')') {
      return InvalidArgumentError("atom list: expected ')' in " +
                                  atom.predicate);
    }
    ++pos;
    out.push_back(std::move(atom));
    skip_space();
    if (pos < text.size() && text[pos] == ',') {
      ++pos;
      continue;
    }
    break;
  }
  if (pos != text.size()) {
    return InvalidArgumentError("atom list: trailing input '" +
                                std::string(text.substr(pos)) + "'");
  }
  return out;
}

}  // namespace

Result<ConjunctiveQuery> ParseCq(std::string_view text) {
  size_t sep = text.find(":-");
  if (sep == std::string_view::npos) {
    return InvalidArgumentError("CQ: missing ':-' in '" + std::string(text) +
                                "'");
  }
  RQ_ASSIGN_OR_RETURN(std::vector<AtomText> head_atoms,
                      ParseAtomList(StripWhitespace(text.substr(0, sep))));
  if (head_atoms.size() != 1) {
    return InvalidArgumentError("CQ: head must be a single atom");
  }
  RQ_ASSIGN_OR_RETURN(std::vector<AtomText> body_atoms,
                      ParseAtomList(StripWhitespace(text.substr(sep + 2))));
  if (body_atoms.empty()) {
    return InvalidArgumentError("CQ: empty body");
  }

  ConjunctiveQuery query;
  std::unordered_map<std::string, VarId> var_ids;
  auto intern = [&](const std::string& name) {
    auto it = var_ids.find(name);
    if (it != var_ids.end()) return it->second;
    VarId id = query.num_vars++;
    var_ids.emplace(name, id);
    query.var_names.push_back(name);
    return id;
  };
  for (const std::string& v : head_atoms[0].args) {
    query.head.push_back(intern(v));
  }
  for (const AtomText& atom : body_atoms) {
    CqAtom out;
    out.predicate = atom.predicate;
    for (const std::string& v : atom.args) out.vars.push_back(intern(v));
    query.atoms.push_back(std::move(out));
  }
  RQ_RETURN_IF_ERROR(query.Validate());
  return query;
}

Result<UnionOfConjunctiveQueries> ParseUcq(std::string_view text) {
  UnionOfConjunctiveQueries out;
  for (const std::string& line : StrSplit(text, '\n')) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    RQ_ASSIGN_OR_RETURN(ConjunctiveQuery q, ParseCq(stripped));
    out.disjuncts.push_back(std::move(q));
  }
  RQ_RETURN_IF_ERROR(out.Validate());
  return out;
}

ConjunctiveQuery RandomBinaryCq(size_t num_atoms, size_t num_vars,
                                size_t num_predicates, Rng& rng) {
  RQ_CHECK(num_atoms > 0 && num_vars >= 2 && num_predicates > 0);
  ConjunctiveQuery query;
  query.num_vars = static_cast<uint32_t>(num_vars);
  // Connected pattern: atom i links a variable already used to any variable.
  std::vector<VarId> used = {0};
  for (size_t i = 0; i < num_atoms; ++i) {
    VarId a = used[rng.Below(used.size())];
    VarId b = static_cast<VarId>(rng.Below(num_vars));
    if (rng.Chance(0.5)) std::swap(a, b);
    CqAtom atom;
    atom.predicate = "p" + std::to_string(rng.Below(num_predicates));
    atom.vars = {a, b};
    query.atoms.push_back(std::move(atom));
    used.push_back(a);
    used.push_back(b);
  }
  // Head: two variables that occur in the body.
  query.head = {used[rng.Below(used.size())], used[rng.Below(used.size())]};
  // Drop variables never used from num_vars accounting? Keep simple: ensure
  // all var ids < num_vars appear at least somewhere by clamping ids.
  return query;
}

}  // namespace rq

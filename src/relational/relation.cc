#include "relational/relation.h"

#include <algorithm>

namespace rq {

bool Relation::Insert(const Tuple& tuple) {
  RQ_CHECK(tuple.size() == arity_);
  auto [it, inserted] = set_.insert(tuple);
  if (inserted) {
    tuples_.push_back(tuple);
    if (!index_dirty_) {
      // Keep an already-built index current instead of invalidating it —
      // interleaved insert/lookup workloads (semi-naive deltas,
      // incremental closure) would otherwise rebuild per insertion.
      uint32_t row = static_cast<uint32_t>(tuples_.size() - 1);
      for (size_t c = 0; c < arity_; ++c) {
        column_index_[c][tuple[c]].push_back(row);
      }
    }
  }
  return inserted;
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out = tuples_;
  std::sort(out.begin(), out.end());
  return out;
}

size_t Relation::InsertAll(const Relation& other) {
  RQ_CHECK(other.arity_ == arity_);
  size_t added = 0;
  for (const Tuple& t : other.tuples_) {
    if (Insert(t)) ++added;
  }
  return added;
}

const std::vector<uint32_t>& Relation::RowsWithValue(size_t column,
                                                     Value value) const {
  RQ_CHECK(column < arity_);
  if (index_dirty_) {
    column_index_.assign(arity_, {});
    for (uint32_t row = 0; row < tuples_.size(); ++row) {
      for (size_t c = 0; c < arity_; ++c) {
        column_index_[c][tuples_[row][c]].push_back(row);
      }
    }
    index_dirty_ = false;
  }
  auto it = column_index_[column].find(value);
  if (it == column_index_[column].end()) return empty_rows_;
  return it->second;
}

Result<Relation*> Database::GetOrCreate(std::string_view name, size_t arity) {
  auto it = relations_.find(std::string(name));
  if (it != relations_.end()) {
    if (it->second.arity() != arity) {
      return InvalidArgumentError(
          "relation " + std::string(name) + " has arity " +
          std::to_string(it->second.arity()) + ", requested " +
          std::to_string(arity));
    }
    return &it->second;
  }
  auto [inserted, ok] =
      relations_.emplace(std::string(name), Relation(arity));
  (void)ok;
  return &inserted->second;
}

const Relation* Database::Find(std::string_view name) const {
  auto it = relations_.find(std::string(name));
  return it == relations_.end() ? nullptr : &it->second;
}

Relation* Database::FindMutable(std::string_view name) {
  auto it = relations_.find(std::string(name));
  return it == relations_.end() ? nullptr : &it->second;
}

std::vector<std::string> Database::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, rel] : relations_) n += rel.size();
  return n;
}

std::string Database::ToString() const {
  std::string out;
  for (const std::string& name : RelationNames()) {
    const Relation* rel = Find(name);
    for (const Tuple& t : rel->SortedTuples()) {
      out += name;
      out.push_back('(');
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += std::to_string(t[i]);
      }
      out += ")\n";
    }
  }
  return out;
}

}  // namespace rq

// Incremental maintenance of binary transitive closures under edge
// insertions.
//
// Recursion-as-transitive-closure is the paper's central restriction
// (§3.4/§4.1); maintaining TC incrementally is the corresponding systems
// concern. On inserting (x, y), the new closure pairs are exactly
// (pred*(x) ∪ {x}) × (succ*(y) ∪ {y}) minus what is already present —
// computable from the old closure alone, no recomputation of the fixpoint.
// bench_incremental measures the payoff against recomputation;
// server/graph_store.h uses the per-label generalization to keep
// closure-shaped (`a+`) eval answers warm across live mutations
// (docs/SERVING.md "Updates").
//
// That delta product is worst-case O(V^2) for a single insert (think the
// edge completing a long chain into a cycle), so AddEdge obeys the same
// resource contract as every other long-running loop here: it polls
// CheckExecContext() (deadline + memory budget, common/deadline.h) and
// charges its working set and retained pairs under MemScope /
// MemSubsystem::kIncr (common/mem.h). Callers may additionally bound the
// product itself with max_delta_product; a blown bound comes back as
// over_budget = true rather than an error, leaving the caller to fall back
// to a from-scratch evaluation.
#ifndef RQ_RELATIONAL_INCREMENTAL_H_
#define RQ_RELATIONAL_INCREMENTAL_H_

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "relational/relation.h"

namespace rq {

// Rough retained heap cost of one closure pair (two Tuple copies — the
// insertion-ordered vector and the membership set — plus a hash slot);
// what the durable mem.incr_bytes charge and callers' budget math use.
inline constexpr size_t kApproxClosurePairBytes = 112;

// What one AddEdge did to the closure.
struct ClosureDelta {
  size_t pairs_added = 0;
  // True when the sources × targets delta product exceeded the caller's
  // max_delta_product bound. The base edge was still recorded but the
  // closure was NOT extended — it is now the closure of the base minus
  // this edge, and the caller must rebuild or stop trusting it.
  bool over_budget = false;
};

class IncrementalClosure {
 public:
  IncrementalClosure() : base_(2), closure_(2) {}

  // The closure carries a durable mem.incr_bytes charge; copying would
  // double-release it. Moves transfer the charge.
  IncrementalClosure(const IncrementalClosure&) = delete;
  IncrementalClosure& operator=(const IncrementalClosure&) = delete;
  IncrementalClosure(IncrementalClosure&& other) noexcept;
  IncrementalClosure& operator=(IncrementalClosure&& other) noexcept;
  ~IncrementalClosure();

  // Inserts a base edge and extends the closure with the delta product.
  // max_delta_product == 0 means unbounded. Returns kDeadlineExceeded /
  // kResourceExhausted / kCancelled when the installed ExecContext trips
  // mid-product — the closure is then PARTIAL (some delta pairs inserted,
  // some not) and must not be trusted as a transitive closure anymore.
  Result<ClosureDelta> AddEdge(Value x, Value y,
                               size_t max_delta_product = 0);

  // Replaces the contents with a precomputed base/closure image (the lazy
  // seeding path: compute the closure from scratch once, maintain it from
  // deltas afterwards).
  void Seed(Relation base, Relation closure);

  // True if (x, y) is in the current closure.
  bool Reaches(Value x, Value y) const { return closure_.Contains({x, y}); }

  const Relation& base() const { return base_; }
  const Relation& closure() const { return closure_; }
  // Retained bytes currently charged durably under mem.incr_bytes.
  size_t ApproxBytes() const { return mem_bytes_; }

 private:
  void ReleaseCharge();
  void SettleCharge();  // re-derives mem_bytes_ from the relation sizes

  Relation base_;
  Relation closure_;
  size_t mem_bytes_ = 0;
};

// Per-label generalization: one IncrementalClosure per edge label, with
// explicit liveness. A label starts untracked; Seed() promotes it to live
// (closure maintained from deltas); a blown delta budget or a resource
// trip mid-product demotes it (the stale closure is dropped, the demotion
// is counted in incr.fallbacks, and readers must fall back to from-scratch
// evaluation until the label is re-seeded).
class PerLabelClosure {
 public:
  // max_delta_product bounds every AddEdge's sources × targets product;
  // 0 = unbounded.
  explicit PerLabelClosure(size_t max_delta_product = 0)
      : max_delta_product_(max_delta_product) {}

  // Routes one labeled edge insert. Untracked and demoted labels return 0.
  // Live labels return the closure pairs added (counted in
  // incr.pairs_added); over-budget demotes and returns 0; a non-OK Status
  // (deadline/memory/cancel) demotes and propagates.
  Result<size_t> AddEdge(uint32_t label, Value x, Value y);

  // Promotes `label` to live with a from-scratch image (replacing any
  // previous state). `base` is the label's edge relation, `closure` its
  // transitive closure.
  void Seed(uint32_t label, Relation base, Relation closure);

  bool live(uint32_t label) const;
  // The maintained closure, or null unless live.
  const Relation* closure(uint32_t label) const;
  size_t num_live() const;
  size_t max_delta_product() const { return max_delta_product_; }

 private:
  struct Entry {
    IncrementalClosure inc;
    bool live = false;
  };

  void Demote(Entry* entry);

  std::unordered_map<uint32_t, Entry> labels_;
  size_t max_delta_product_;
};

}  // namespace rq

#endif  // RQ_RELATIONAL_INCREMENTAL_H_

// Incremental maintenance of a binary transitive closure under edge
// insertions.
//
// Recursion-as-transitive-closure is the paper's central restriction
// (§3.4/§4.1); maintaining TC incrementally is the corresponding systems
// concern. On inserting (x, y), the new closure pairs are exactly
// (pred*(x) ∪ {x}) × (succ*(y) ∪ {y}) minus what is already present —
// computable from the old closure alone, no recomputation of the fixpoint.
// bench_incremental measures the payoff against recomputation.
#ifndef RQ_RELATIONAL_INCREMENTAL_H_
#define RQ_RELATIONAL_INCREMENTAL_H_

#include "relational/relation.h"

namespace rq {

class IncrementalClosure {
 public:
  IncrementalClosure() : base_(2), closure_(2) {}

  // Inserts a base edge and updates the closure. Returns the number of new
  // closure pairs (0 if the edge adds nothing).
  size_t AddEdge(Value x, Value y);

  // True if (x, y) is in the current closure.
  bool Reaches(Value x, Value y) const { return closure_.Contains({x, y}); }

  const Relation& base() const { return base_; }
  const Relation& closure() const { return closure_; }

 private:
  Relation base_;
  Relation closure_;
};

}  // namespace rq

#endif  // RQ_RELATIONAL_INCREMENTAL_H_

#include "relational/matcher.h"

#include <algorithm>

namespace rq {

namespace {

struct SearchState {
  const std::vector<MatchAtom>* atoms;
  bool reorder = true;
  std::vector<bool> used;            // atom already matched
  std::vector<Value> binding;        // per var, kUnboundValue if free
  std::vector<uint32_t> bound_count; // per atom, number of bound vars
  const std::function<bool(const std::vector<Value>&)>* on_match;
  size_t matches = 0;
  bool stopped = false;
};

// Picks the unmatched atom with the most bound variables, breaking ties by
// smaller relation (cheap greedy join order).
int PickAtom(const SearchState& st) {
  int best = -1;
  for (size_t i = 0; i < st.atoms->size(); ++i) {
    if (st.used[i]) continue;
    if (!st.reorder) return static_cast<int>(i);
    if (best == -1) {
      best = static_cast<int>(i);
      continue;
    }
    const MatchAtom& a = (*st.atoms)[i];
    const MatchAtom& b = (*st.atoms)[best];
    if (st.bound_count[i] > st.bound_count[best] ||
        (st.bound_count[i] == st.bound_count[best] &&
         a.relation->size() < b.relation->size())) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

void Recurse(SearchState& st) {
  if (st.stopped) return;
  int pick = PickAtom(st);
  if (pick < 0) {
    ++st.matches;
    if (!(*st.on_match)(st.binding)) st.stopped = true;
    return;
  }
  const MatchAtom& atom = (*st.atoms)[pick];
  st.used[pick] = true;

  // Candidate rows: restrict by the first bound column if any.
  const std::vector<Tuple>& tuples = atom.relation->tuples();
  const std::vector<uint32_t>* rows = nullptr;
  int bound_col = -1;
  for (size_t c = 0; c < atom.vars.size(); ++c) {
    if (st.binding[atom.vars[c]] != kUnboundValue) {
      bound_col = static_cast<int>(c);
      break;
    }
  }
  std::vector<uint32_t> all_rows;
  if (bound_col >= 0) {
    rows = &atom.relation->RowsWithValue(
        static_cast<size_t>(bound_col),
        st.binding[atom.vars[static_cast<size_t>(bound_col)]]);
  } else {
    all_rows.resize(tuples.size());
    for (uint32_t i = 0; i < tuples.size(); ++i) all_rows[i] = i;
    rows = &all_rows;
  }

  for (uint32_t row : *rows) {
    if (st.stopped) break;
    const Tuple& tuple = tuples[row];
    // Try to extend the binding with this tuple.
    std::vector<VarId> newly_bound;
    bool ok = true;
    for (size_t c = 0; c < atom.vars.size(); ++c) {
      VarId v = atom.vars[c];
      if (st.binding[v] == kUnboundValue) {
        st.binding[v] = tuple[c];
        newly_bound.push_back(v);
        // A repeated variable bound later in this same tuple must agree;
        // the check below handles it because binding[v] is now set.
      } else if (st.binding[v] != tuple[c]) {
        ok = false;
        break;
      }
    }
    if (ok) {
      // Update bound counts for remaining atoms.
      std::vector<std::pair<size_t, uint32_t>> saved_counts;
      if (!newly_bound.empty()) {
        for (size_t i = 0; i < st.atoms->size(); ++i) {
          if (st.used[i]) continue;
          uint32_t add = 0;
          for (VarId v : (*st.atoms)[i].vars) {
            for (VarId nb : newly_bound) {
              if (v == nb) ++add;
            }
          }
          if (add > 0) {
            saved_counts.emplace_back(i, st.bound_count[i]);
            st.bound_count[i] += add;
          }
        }
      }
      Recurse(st);
      for (auto& [i, old] : saved_counts) st.bound_count[i] = old;
    }
    for (VarId v : newly_bound) st.binding[v] = kUnboundValue;
  }
  st.used[pick] = false;
}

}  // namespace

namespace {

size_t MatchImpl(const std::vector<MatchAtom>& atoms, uint32_t num_vars,
                 const std::function<bool(const std::vector<Value>&)>&
                     on_match,
                 bool reorder) {
  for (const MatchAtom& atom : atoms) {
    RQ_CHECK(atom.relation != nullptr);
    RQ_CHECK(atom.relation->arity() == atom.vars.size());
    for (VarId v : atom.vars) RQ_CHECK(v < num_vars);
  }
  SearchState st;
  st.atoms = &atoms;
  st.reorder = reorder;
  st.used.assign(atoms.size(), false);
  st.binding.assign(num_vars, kUnboundValue);
  st.bound_count.assign(atoms.size(), 0);
  st.on_match = &on_match;
  Recurse(st);
  return st.matches;
}

}  // namespace

size_t MatchConjunction(const std::vector<MatchAtom>& atoms, uint32_t num_vars,
                        const std::function<bool(const std::vector<Value>&)>&
                            on_match) {
  return MatchImpl(atoms, num_vars, on_match, /*reorder=*/true);
}

size_t MatchConjunctionInOrder(
    const std::vector<MatchAtom>& atoms, uint32_t num_vars,
    const std::function<bool(const std::vector<Value>&)>& on_match) {
  return MatchImpl(atoms, num_vars, on_match, /*reorder=*/false);
}

bool ConjunctionSatisfiable(const std::vector<MatchAtom>& atoms,
                            uint32_t num_vars) {
  bool found = false;
  MatchConjunction(atoms, num_vars, [&](const std::vector<Value>&) {
    found = true;
    return false;  // stop at first match
  });
  return found;
}

}  // namespace rq

// Conjunctive queries and unions of conjunctive queries (paper §2.1),
// with the classical containment tests:
//   * CQ ⊆ CQ — Chandra-Merlin [18]: Q1 ⊆ Q2 iff there is a homomorphism
//     from Q2 into the canonical (frozen) database of Q1 mapping head to
//     head; we decide it by evaluating Q2 over the canonical database.
//   * UCQ ⊆ UCQ — Sagiv-Yannakakis [50]: each disjunct of the left side
//     must be contained in some disjunct of the right side; equivalently,
//     the right UCQ must answer the frozen head on each left canonical
//     database.
//
// Queries are pure (no constants, no negation): exactly the class the paper
// works with. Every head variable must occur in the body (range
// restriction); Validate() enforces this.
#ifndef RQ_RELATIONAL_CQ_H_
#define RQ_RELATIONAL_CQ_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "relational/matcher.h"
#include "relational/relation.h"

namespace rq {

struct CqAtom {
  std::string predicate;
  std::vector<VarId> vars;
};

// A conjunctive query: head variable tuple + body atoms. Variables are
// dense ids 0..num_vars-1; names (for parsing/printing) are kept alongside.
struct ConjunctiveQuery {
  std::vector<VarId> head;
  std::vector<CqAtom> atoms;
  uint32_t num_vars = 0;
  std::vector<std::string> var_names;  // optional, size num_vars when set

  // Head arity.
  size_t arity() const { return head.size(); }

  // Checks range restriction and variable-id consistency.
  Status Validate() const;

  // The canonical ("frozen") database: each variable becomes the constant
  // equal to its id, each atom becomes a tuple.
  Database CanonicalDatabase() const;

  // The frozen head tuple matching CanonicalDatabase().
  Tuple FrozenHead() const;

  std::string ToString() const;
};

struct UnionOfConjunctiveQueries {
  std::vector<ConjunctiveQuery> disjuncts;

  Status Validate() const;
  std::string ToString() const;
};

// Evaluates a CQ over a database; returns a relation of head-arity tuples.
// Atoms over relations absent from the database yield an empty result.
Result<Relation> EvalCq(const Database& db, const ConjunctiveQuery& query);

// Evaluates a UCQ (union of the disjunct answers). All disjuncts must have
// equal arity.
Result<Relation> EvalUcq(const Database& db,
                         const UnionOfConjunctiveQueries& query);

// Chandra-Merlin containment test for CQs.
Result<bool> CqContained(const ConjunctiveQuery& q1,
                         const ConjunctiveQuery& q2);

// A containment certificate: the homomorphism h from q2's variables into
// q1's canonical database (variable ids of q1, frozen as values) with
// h(head of q2) = head of q1. The vector is indexed by q2's variable ids;
// variables of q2 that occur nowhere map to kUnboundValue. nullopt when
// q1 ⊄ q2.
Result<std::optional<std::vector<Value>>> CqContainmentWitness(
    const ConjunctiveQuery& q1, const ConjunctiveQuery& q2);

// Sagiv-Yannakakis containment test for UCQs.
Result<bool> UcqContained(const UnionOfConjunctiveQueries& q1,
                          const UnionOfConjunctiveQueries& q2);

// Parses "q(x,y) :- edge(x,z), edge(z,y)". The head predicate name is
// ignored (queries are anonymous); variables are identifiers.
Result<ConjunctiveQuery> ParseCq(std::string_view text);

// Parses one CQ per non-empty line into a UCQ.
Result<UnionOfConjunctiveQueries> ParseUcq(std::string_view text);

// Random CQ for tests/benches: a connected pattern of `num_atoms` binary
// atoms over `num_predicates` predicate names p0..p_{k-1} and about
// `num_vars` variables, with a binary head.
ConjunctiveQuery RandomBinaryCq(size_t num_atoms, size_t num_vars,
                                size_t num_predicates, Rng& rng);

}  // namespace rq

#endif  // RQ_RELATIONAL_CQ_H_

#include "common/parallel.h"

namespace rq {

namespace {
std::atomic<unsigned> g_default_jobs{1};
}  // namespace

void SetDefaultParallelJobs(unsigned jobs) {
  g_default_jobs.store(jobs == 0 ? 1 : jobs, std::memory_order_relaxed);
}

unsigned DefaultParallelJobs() {
  return g_default_jobs.load(std::memory_order_relaxed);
}

}  // namespace rq

// Shared ticket-queue worker pool.
//
// ParallelFor(n, jobs, work) runs work(i) for i in [0, n) on `jobs`
// std::jthread workers. The queue is an atomic ticket counter: each worker
// claims the next unclaimed index, so uneven per-item costs balance
// automatically and no static partition can stall the pool. jobs <= 1 (or
// n <= 1) runs inline on the calling thread with no pool at all, so serial
// callers pay nothing.
//
// `work` must only touch per-index state or state that is internally
// synchronized (obs counters/histograms/gauges and the automata cache
// qualify). Exceptions must not escape `work`.
//
// This is the pool behind batched containment (containment/batch.h) and
// multi-source graph evaluation (pathquery/path_query.h).
#ifndef RQ_COMMON_PARALLEL_H_
#define RQ_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace rq {

// Process-wide default worker count used when a caller's jobs option is 0.
// Starts at 1 (serial); the CLI --jobs flags (rqcheck, rqeval, bench
// harness) raise it. Batched containment and multi-source graph evaluation
// both read it.
void SetDefaultParallelJobs(unsigned jobs);
unsigned DefaultParallelJobs();

// Worker-attributed variant: work(worker, i) additionally receives the
// dense id of the pool thread running it (0..workers-1; always 0 on the
// inline serial path). Lets callers keep PER-WORKER accumulators that are
// touched by exactly one thread — the batch containment engine uses this
// to isolate per-worker profile deltas (obs/profile.h) without shared
// state in the job loop.
template <typename Work>
void ParallelForWorker(size_t n, unsigned jobs, Work&& work) {
  if (jobs <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) work(0u, i);
    return;
  }
  unsigned workers = jobs < n ? jobs : static_cast<unsigned>(n);
  std::atomic<size_t> next{0};
  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&next, n, &work, w] {
        for (;;) {
          size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          work(w, i);
        }
      });
    }
  }  // jthreads join here
}

template <typename Work>
void ParallelFor(size_t n, unsigned jobs, Work&& work) {
  ParallelForWorker(n, jobs,
                    [&work](unsigned /*worker*/, size_t i) { work(i); });
}

}  // namespace rq

#endif  // RQ_COMMON_PARALLEL_H_

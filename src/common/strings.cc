#include "common/strings.h"

#include <cctype>

namespace rq {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentifier(std::string_view text) {
  if (text.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(text[0]))) return false;
  for (char c : text) {
    if (!IsIdentChar(c)) return false;
  }
  return true;
}

}  // namespace rq

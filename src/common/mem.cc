#include "common/mem.h"

#include <cstddef>

#include "obs/mem_stats.h"

namespace rq {
namespace {

thread_local MemContext* g_current_mem_context = nullptr;
thread_local MemScope* g_current_mem_scope = nullptr;

void RaisePeak(std::atomic<int64_t>& peak, int64_t candidate) {
  int64_t seen = peak.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !peak.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

// The shared tail of MemCharge / MemScope release / MemChargeDurable:
// moves the installed context chain (unless the charge is durable) and the
// global gauges. Scope net tracking stays in the callers — a scope's own
// release must not flow into the enclosing scope's net.
void ApplyCharge(MemSubsystem subsystem, int64_t bytes, bool durable) {
  if (!durable) {
    if (MemContext* ctx = g_current_mem_context; ctx != nullptr) {
      ctx->Charge(subsystem, bytes);
    }
  }
  obs::MemStats& stats = obs::MemStats::Get();
  stats.subsystem_bytes[static_cast<size_t>(subsystem)]->Add(bytes);
  stats.tracked_bytes.Add(bytes);
  if (bytes > 0) stats.alloc_bytes.Record(static_cast<uint64_t>(bytes));
  obs::MaybeRecordMemTimelineSample();
}

}  // namespace

const char* MemSubsystemName(MemSubsystem subsystem) {
  switch (subsystem) {
    case MemSubsystem::kAutomata:
      return "automata";
    case MemSubsystem::kFold:
      return "fold";
    case MemSubsystem::kComplement:
      return "complement";
    case MemSubsystem::kRq:
      return "rq";
    case MemSubsystem::kDatalog:
      return "datalog";
    case MemSubsystem::kGraph:
      return "graph";
    case MemSubsystem::kCache:
      return "cache";
    case MemSubsystem::kIncr:
      return "incr";
    case MemSubsystem::kOther:
      return "other";
  }
  return "other";
}

MemContext* MemContext::Current() { return g_current_mem_context; }

void MemContext::Charge(MemSubsystem subsystem, int64_t bytes) {
  if (bytes == 0) return;
  size_t idx = static_cast<size_t>(subsystem);
  for (Shared* s = shared_.get(); s != nullptr; s = s->parent.get()) {
    int64_t now =
        s->bytes[idx].fetch_add(bytes, std::memory_order_relaxed) + bytes;
    RaisePeak(s->peak_bytes[idx], now);
    int64_t total =
        s->total.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    RaisePeak(s->peak_total, total);
    if (s->budget_bytes != 0 &&
        total > static_cast<int64_t>(s->budget_bytes)) {
      s->exceeded.store(true, std::memory_order_relaxed);
    }
  }
}

uint64_t MemContext::subsystem_bytes(MemSubsystem subsystem) const {
  int64_t v = shared_->bytes[static_cast<size_t>(subsystem)].load(
      std::memory_order_relaxed);
  return v < 0 ? 0 : static_cast<uint64_t>(v);
}

uint64_t MemContext::peak_subsystem_bytes(MemSubsystem subsystem) const {
  int64_t v = shared_->peak_bytes[static_cast<size_t>(subsystem)].load(
      std::memory_order_relaxed);
  return v < 0 ? 0 : static_cast<uint64_t>(v);
}

uint64_t MemContext::total_bytes() const {
  int64_t v = shared_->total.load(std::memory_order_relaxed);
  return v < 0 ? 0 : static_cast<uint64_t>(v);
}

uint64_t MemContext::peak_total_bytes() const {
  int64_t v = shared_->peak_total.load(std::memory_order_relaxed);
  return v < 0 ? 0 : static_cast<uint64_t>(v);
}

bool MemContext::exceeded() const {
  for (const Shared* s = shared_.get(); s != nullptr;
       s = s->parent.get()) {
    if (s->exceeded.load(std::memory_order_relaxed)) return true;
  }
  return false;
}

Status MemContext::Check() {
  if (stopped_) return status_;
  if (exceeded()) return Trip();
  return Status::Ok();
}

Status MemContext::Trip() {
  stopped_ = true;
  status_ = ResourceExhaustedError("memory budget exceeded");
  obs::MemStats::Get().budget_exceeded.Add(1);
  return status_;
}

ScopedMemContext::ScopedMemContext(MemContext* ctx)
    : installed_(ctx), previous_(g_current_mem_context) {
  if (installed_ != nullptr) g_current_mem_context = installed_;
}

ScopedMemContext::~ScopedMemContext() {
  if (installed_ != nullptr) g_current_mem_context = previous_;
}

MemScope::MemScope(MemSubsystem subsystem)
    : subsystem_(subsystem), previous_(g_current_mem_scope) {
  g_current_mem_scope = this;
}

MemScope::~MemScope() {
  g_current_mem_scope = previous_;
  // Release the scope's net charge directly — not through MemCharge, which
  // would book the release against the (now innermost) enclosing scope.
  if (net_ != 0) ApplyCharge(subsystem_, -net_, /*durable=*/false);
}

void MemCharge(int64_t bytes) {
  if (bytes == 0) return;
  MemScope* scope = g_current_mem_scope;
  MemSubsystem subsystem =
      scope != nullptr ? scope->subsystem_ : MemSubsystem::kOther;
  if (scope != nullptr) scope->net_ += bytes;
  ApplyCharge(subsystem, bytes, /*durable=*/false);
}

void MemChargeDurable(MemSubsystem subsystem, int64_t bytes) {
  if (bytes == 0) return;
  ApplyCharge(subsystem, bytes, /*durable=*/true);
}

Status CheckMemBudget() {
  MemContext* ctx = g_current_mem_context;
  if (ctx == nullptr) return Status::Ok();
  return ctx->Check();
}

}  // namespace rq

// Memory accounting, attribution, and budgets (docs/OBSERVABILITY.md
// "Memory accounting"; budget semantics in docs/ROBUSTNESS.md).
//
// The paper's constructions are state-blowup algorithms — determinization,
// 2NFA folding, and Vardi complementation are exponential, UC2RPQ expansion
// is worse — so their real-world cost is bytes as much as wall-clock. This
// layer is the space-side twin of common/deadline.h: hot allocation sites
// charge tagged byte counts through a thread-local MemContext, the obs
// layer surfaces live/peak bytes per subsystem, and an optional byte budget
// latches kResourceExhausted through the same CheckExecContext() polls the
// deadline layer installed (so every loop that honors deadlines honors
// memory budgets with no further changes, and truncated-by-memory
// constructions are never cached for the same reason truncated-by-deadline
// ones are not).
//
// Charging discipline:
//  * Transient working memory (subset-construction rows, expansion
//    frontiers, delta relations, BFS bitsets) is charged inside a
//    MemScope(subsystem): MemCharge(bytes) attributes to the innermost
//    scope and the scope releases its net charge on destruction, so the
//    mem.<subsystem>_bytes gauges track live bytes and their peaks record
//    the high-water mark.
//  * Durable memory (cache entries, graph CSR snapshots) outlives any
//    query: MemChargeDurable / MemReleaseDurable move the global gauges
//    only and never count against a query's budget — the bytes were
//    already charged transiently while being built.
//
// Cost model: MemCharge with no context installed is two thread-local
// loads plus the global gauge updates (a handful of relaxed atomics).
// Sites charge per allocation event (a row, a frontier, a relation), never
// per byte, mirroring the flush-per-operation discipline of obs/counters.h.
//
// Pool workers do not inherit the calling thread's installation; fan-out
// sites build per-worker mirrors with MemContext::ChildOf (the mirrors
// share the parent's accounting and budget, so concurrent workers charge
// one pot), exactly like ExecContext::ChildOf.
#ifndef RQ_COMMON_MEM_H_
#define RQ_COMMON_MEM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace rq {

// Attribution tags for byte charges. One gauge pair (live + peak) exists
// per subsystem: mem.<name>_bytes.
enum class MemSubsystem : uint8_t {
  kAutomata = 0,  // NFA determinization subset rows, product construction
  kFold,          // 2NFA -> NFA fold state vectors and transition tables
  kComplement,    // Vardi complement subset interning
  kRq,            // RQ/UC2RPQ expansion frontiers
  kDatalog,       // Datalog fact stores and delta relations
  kGraph,         // CSR snapshots and product-BFS bitsets/frontiers
  kCache,         // automata cache entries (durable)
  kIncr,          // incrementally maintained closures (relational/incremental.h)
  kOther,         // charges outside any MemScope
};
inline constexpr int kMemSubsystemCount = 9;

// "automata", "fold", ... (the <name> in mem.<name>_bytes).
const char* MemSubsystemName(MemSubsystem subsystem);

// Per-query (or per-job) byte accounting plus an optional budget. One
// context belongs to one thread (the latched Status is unsynchronized);
// to charge the same pot from a pool worker, build a mirror with ChildOf
// and install it on that worker. Copying a context yields such a mirror:
// the accounting pot is shared (and kept alive), the error latch is fresh.
//
// A context built with a parent chains to it: charges propagate up the
// chain (a batch job's bytes also count against the batch-wide context)
// and a budget trip anywhere on the chain stops this context too.
class MemContext {
 public:
  MemContext() : shared_(std::make_shared<Shared>()) {}
  // budget_bytes == 0 means unlimited. `parent` (may be null) receives
  // every charge made against this context and its budget is also
  // enforced on the chain.
  explicit MemContext(uint64_t budget_bytes,
                      const MemContext* parent = nullptr)
      : shared_(std::make_shared<Shared>()) {
    shared_->budget_bytes = budget_bytes;
    if (parent != nullptr) shared_->parent = parent->shared_;
  }

  // Mirrors: same pot and budget, fresh latch.
  MemContext(const MemContext& other) : shared_(other.shared_) {}
  MemContext& operator=(const MemContext& other) {
    shared_ = other.shared_;
    stopped_ = false;
    status_ = Status::Ok();
    return *this;
  }

  // A mirror charging the same accounting (and observing the same budget)
  // as `parent`; fresh independent context when parent is null. For pool
  // workers.
  static MemContext ChildOf(const MemContext* parent) {
    return parent == nullptr ? MemContext() : MemContext(*parent);
  }

  // The context installed on the calling thread, or null.
  static MemContext* Current();

  // Adds `bytes` (negative to release) under `subsystem` to this context
  // and every ancestor; sets the exceeded flag on any pot whose budget the
  // new total crosses. Thread-safe (mirrors charge concurrently).
  void Charge(MemSubsystem subsystem, int64_t bytes);

  uint64_t subsystem_bytes(MemSubsystem subsystem) const;
  uint64_t peak_subsystem_bytes(MemSubsystem subsystem) const;
  uint64_t total_bytes() const;
  uint64_t peak_total_bytes() const;
  uint64_t budget_bytes() const { return shared_->budget_bytes; }
  // Innermost budget on the chain (this context's own pot).
  bool has_budget() const { return shared_->budget_bytes != 0; }

  // True once any budget on the chain has been crossed (sticky).
  bool exceeded() const;

  // Cooperative poll. Returns Ok or ResourceExhaustedError; a non-OK
  // verdict latches for the context's lifetime. Bumps mem.budget_exceeded
  // once on the first trip.
  Status Check();

  // True once Check() has returned non-OK (no fresh poll).
  bool stopped() const { return stopped_; }

 private:
  struct Shared {
    std::array<std::atomic<int64_t>, kMemSubsystemCount> bytes{};
    std::array<std::atomic<int64_t>, kMemSubsystemCount> peak_bytes{};
    std::atomic<int64_t> total{0};
    std::atomic<int64_t> peak_total{0};
    std::atomic<bool> exceeded{false};
    uint64_t budget_bytes = 0;            // 0 = unlimited; set before sharing
    std::shared_ptr<Shared> parent;       // set before sharing
  };

  Status Trip();

  std::shared_ptr<Shared> shared_;  // one pot per root, shared by mirrors
  bool stopped_ = false;
  Status status_;
};

// Installs `ctx` as the calling thread's current context for the scope
// (null = no-op); restores the previous installation on destruction.
class ScopedMemContext {
 public:
  explicit ScopedMemContext(MemContext* ctx);
  ~ScopedMemContext();

  ScopedMemContext(const ScopedMemContext&) = delete;
  ScopedMemContext& operator=(const ScopedMemContext&) = delete;

 private:
  MemContext* installed_;
  MemContext* previous_;
};

// Attribution scope for transient working memory. While alive, MemCharge()
// on this thread attributes to `subsystem`; on destruction the scope
// releases whatever net charge flowed through it, returning the live
// gauges (and the installed context) to their prior level while leaving
// all peaks intact. Scopes nest; the innermost wins.
class MemScope {
 public:
  explicit MemScope(MemSubsystem subsystem);
  ~MemScope();

  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;

  MemSubsystem subsystem() const { return subsystem_; }
  // Net bytes charged through this scope so far.
  int64_t net_bytes() const { return net_; }

 private:
  friend void MemCharge(int64_t);

  MemSubsystem subsystem_;
  MemScope* previous_;  // enclosing scope on this thread, or null
  int64_t net_ = 0;
};

// Charges `bytes` (negative to release) against the innermost MemScope's
// subsystem (kOther with no scope, and then nothing auto-releases — prefer
// a scope or the durable API). Updates the thread's installed MemContext
// chain and the global mem.* gauges/histogram.
void MemCharge(int64_t bytes);

// Charges/releases process-lifetime memory (cache entries, snapshots):
// global gauges only — never scoped, never against a query budget.
void MemChargeDurable(MemSubsystem subsystem, int64_t bytes);
inline void MemReleaseDurable(MemSubsystem subsystem, int64_t bytes) {
  MemChargeDurable(subsystem, -bytes);
}

// Polls the calling thread's installed MemContext; Ok when none is
// installed. CheckExecContext() (common/deadline.h) calls this, so every
// deadline polling site enforces memory budgets too.
Status CheckMemBudget();

}  // namespace rq

#endif  // RQ_COMMON_MEM_H_

// Lightweight Status / Result<T> error handling for librq.
//
// Library code does not throw; recoverable failures (parse errors, malformed
// queries, arity mismatches) are reported through Status. Programming errors
// are handled with RQ_CHECK, which aborts.
#ifndef RQ_COMMON_STATUS_H_
#define RQ_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace rq {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kDeadlineExceeded,
  kCancelled,
};

// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path (no
// allocation); errors carry a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);

// A value of type T or a non-OK Status. Modeled after absl::StatusOr.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : payload_(std::move(value)) {}
  Result(Status status) : payload_(std::move(status)) {
    RqCheckNotOkConstruction();
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(payload_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(payload_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(payload_).ToString().c_str());
      std::abort();
    }
  }
  void RqCheckNotOkConstruction() const {
    if (ok()) return;  // holds T, fine.
    if (std::get<Status>(payload_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  std::variant<T, Status> payload_;
};

}  // namespace rq

// Propagates a non-OK status out of the current function.
#define RQ_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::rq::Status rq_status_tmp_ = (expr);         \
    if (!rq_status_tmp_.ok()) return rq_status_tmp_; \
  } while (0)

#define RQ_STATUS_MACROS_CONCAT_IMPL(x, y) x##y
#define RQ_STATUS_MACROS_CONCAT(x, y) RQ_STATUS_MACROS_CONCAT_IMPL(x, y)

// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
// move-assigns the value into `lhs` (which may be a declaration).
#define RQ_ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  RQ_ASSIGN_OR_RETURN_IMPL(                                               \
      RQ_STATUS_MACROS_CONCAT(rq_result_tmp_, __LINE__), lhs, rexpr)

#define RQ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

// Fatal assertion for invariants; always on.
#define RQ_CHECK(cond)                                                 \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "RQ_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #cond);                                   \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

#endif  // RQ_COMMON_STATUS_H_

// Small string utilities shared across parsers and printers.
#ifndef RQ_COMMON_STRINGS_H_
#define RQ_COMMON_STRINGS_H_

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rq {

// Heterogeneous (transparent) hash for string-keyed maps: lets
// unordered_map<std::string, V, TransparentStringHash, std::equal_to<>>
// answer find(string_view) without materializing a temporary std::string
// per lookup.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const char* s) const {
    return std::hash<std::string_view>{}(s);
  }
};

// A string-keyed map with allocation-free string_view lookups.
template <typename V>
using StringMap =
    std::unordered_map<std::string, V, TransparentStringHash,
                       std::equal_to<>>;

// Splits on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Joins with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// True if c is valid in an identifier ([A-Za-z0-9_]).
bool IsIdentChar(char c);

// True if the whole string is a nonempty identifier starting with a letter
// or underscore.
bool IsIdentifier(std::string_view text);

}  // namespace rq

#endif  // RQ_COMMON_STRINGS_H_

// Small string utilities shared across parsers and printers.
#ifndef RQ_COMMON_STRINGS_H_
#define RQ_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace rq {

// Splits on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Joins with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// True if c is valid in an identifier ([A-Za-z0-9_]).
bool IsIdentChar(char c);

// True if the whole string is a nonempty identifier starting with a letter
// or underscore.
bool IsIdentifier(std::string_view text);

}  // namespace rq

#endif  // RQ_COMMON_STRINGS_H_

// Deterministic pseudo-random number generation for workload generators,
// property tests, and benchmarks. All randomized code in librq takes an
// explicit seed so every run is reproducible.
#ifndef RQ_COMMON_RNG_H_
#define RQ_COMMON_RNG_H_

#include <cstdint>

#include "common/status.h"

namespace rq {

// SplitMix64: tiny, fast, passes BigCrush for this use. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    RQ_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform in [lo, hi], inclusive. Requires lo <= hi.
  int64_t Between(int64_t lo, int64_t hi) {
    RQ_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial.
  bool Chance(double p) { return NextDouble() < p; }

  // Forks an independent stream (useful for parallel-looking generators).
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  uint64_t state_;
};

}  // namespace rq

#endif  // RQ_COMMON_RNG_H_

// Wall-clock deadlines and cooperative cancellation (docs/ROBUSTNESS.md).
//
// The containment ladder tops out at EXPSPACE/2EXPSPACE procedures, so a
// production deployment cannot run them unbounded: every long-running loop
// in the library polls a lightweight ExecContext — a steady-clock Deadline
// plus an optional shared CancelToken — and unwinds with kDeadlineExceeded
// or kCancelled instead of hanging. The context is installed thread-locally
// (ScopedExecContext), mirroring the obs::QueryProfile::Active() idiom, so
// deep loops consult it through CheckExecContext() without threading a
// parameter through every signature.
//
// Cost model: CheckExecContext() with no context installed is one
// thread-local load and a branch. With a context it adds one relaxed
// atomic load (the cancel token) and reads the clock only once per
// ExecContext::kStride polls, so even per-node polling in the product
// search loops is noise. A non-OK verdict latches: once a context trips,
// every subsequent Check returns the same error, which lets construction
// kernels without a Status channel (FoldTwoNfa, ProductBfs) simply stop
// early and rely on a Status-returning caller to poll the same context.
//
// Pool workers do not inherit the calling thread's installation; fan-out
// sites (containment/batch.cc, EvalPathQueryFromSources) capture the
// parent context before spawning and install a per-worker mirror built
// with ExecContext::ChildOf.
#ifndef RQ_COMMON_DEADLINE_H_
#define RQ_COMMON_DEADLINE_H_

#include <atomic>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace rq {

// A point on the steady clock. Default-constructed deadlines are infinite
// (never expire), so a Deadline member costs nothing until a caller asks
// for a bound.
class Deadline {
 public:
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }
  static Deadline AfterNanos(int64_t ns);
  static Deadline AfterMillis(int64_t ms) {
    return AfterNanos(ms * 1'000'000);
  }
  // The earlier of two deadlines (an infinite one never wins).
  static Deadline Earlier(Deadline a, Deadline b) {
    return a.ns_ < b.ns_ ? a : b;
  }

  bool IsInfinite() const { return ns_ == kInfiniteNs; }
  bool Expired() const;
  // Nanoseconds until expiry (negative if past); kInfiniteNs when infinite.
  int64_t RemainingNanos() const;

  static constexpr int64_t kInfiniteNs =
      std::numeric_limits<int64_t>::max();

 private:
  explicit Deadline(int64_t steady_ns) : ns_(steady_ns) {}

  int64_t ns_ = kInfiniteNs;  // steady-clock nanoseconds since epoch
};

// Cooperative cancellation flag, shareable across threads. Cancel() is
// sticky; there is no un-cancel.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// A deadline plus an optional cancel token, polled by long-running loops.
// One context belongs to one thread (Check() keeps unsynchronized stride
// state); to observe the same bounds from a pool worker, build a mirror
// with ChildOf and install it on that worker.
class ExecContext {
 public:
  // Clock reads are amortized: Check() consults the cancel token every
  // call but the deadline only once per kStride calls.
  static constexpr uint32_t kStride = 64;

  ExecContext() = default;
  explicit ExecContext(Deadline deadline, CancelToken* cancel = nullptr)
      : deadline_(deadline), cancel_(cancel) {}

  // A fresh context observing the same deadline and token as `parent`
  // (default/no-op context when parent is null). For pool workers.
  static ExecContext ChildOf(const ExecContext* parent) {
    return parent == nullptr
               ? ExecContext()
               : ExecContext(parent->deadline(), parent->cancel_token());
  }

  // The context installed on the calling thread, or null.
  static ExecContext* Current();

  const Deadline& deadline() const { return deadline_; }
  CancelToken* cancel_token() const { return cancel_; }

  // Cooperative poll. Returns Ok, DeadlineExceededError, or
  // CancelledError; a non-OK verdict latches for the context's lifetime.
  // Bumps deadline.expired / deadline.cancelled once on the first trip.
  Status Check();

  // True once Check() has returned non-OK (no fresh poll).
  bool stopped() const { return stopped_; }

 private:
  friend class ScopedExecContext;

  Status Trip(Status status);

  Deadline deadline_;
  CancelToken* cancel_ = nullptr;
  uint32_t polls_until_clock_ = 0;  // 0 so the first Check reads the clock
  bool stopped_ = false;
  bool slack_recorded_ = false;
  Status status_;
};

// Installs `ctx` as the calling thread's current context for the scope
// (null = no-op). On destruction restores the previous installation and,
// for a finite-deadline context that finished in time, records the
// remaining slack into the deadline.slack_ns histogram (once per context,
// even if the same context is re-installed per work item).
class ScopedExecContext {
 public:
  explicit ScopedExecContext(ExecContext* ctx);
  ~ScopedExecContext();

  ScopedExecContext(const ScopedExecContext&) = delete;
  ScopedExecContext& operator=(const ScopedExecContext&) = delete;

 private:
  ExecContext* installed_;
  ExecContext* previous_;
};

// Polls the calling thread's installed context; Ok when none is installed.
// Also polls the thread's MemContext (common/mem.h), so every deadline
// polling site enforces memory budgets with no further changes.
Status CheckExecContext();

// Convenience for kernels without a Status channel: true once the current
// context has tripped (or trips on this poll). Such kernels stop early and
// leave error reporting to a Status-returning caller polling the same
// context.
inline bool ExecStopRequested() { return !CheckExecContext().ok(); }

}  // namespace rq

#endif  // RQ_COMMON_DEADLINE_H_

#include "common/deadline.h"

#include <chrono>

#include "common/mem.h"
#include "obs/subsystems.h"

namespace rq {
namespace {

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

thread_local ExecContext* g_current_exec_context = nullptr;

}  // namespace

Deadline Deadline::AfterNanos(int64_t ns) {
  return Deadline(SteadyNowNanos() + ns);
}

bool Deadline::Expired() const {
  return ns_ != kInfiniteNs && SteadyNowNanos() >= ns_;
}

int64_t Deadline::RemainingNanos() const {
  if (ns_ == kInfiniteNs) return kInfiniteNs;
  return ns_ - SteadyNowNanos();
}

ExecContext* ExecContext::Current() { return g_current_exec_context; }

Status ExecContext::Check() {
  if (stopped_) return status_;
  if (cancel_ != nullptr && cancel_->Cancelled()) {
    return Trip(CancelledError("execution cancelled"));
  }
  if (!deadline_.IsInfinite()) {
    if (polls_until_clock_ == 0) {
      polls_until_clock_ = kStride;
      if (deadline_.Expired()) {
        return Trip(DeadlineExceededError("deadline exceeded"));
      }
    }
    --polls_until_clock_;
  }
  return Status::Ok();
}

Status ExecContext::Trip(Status status) {
  stopped_ = true;
  status_ = std::move(status);
  if (status_.code() == StatusCode::kDeadlineExceeded) {
    obs::DeadlineCounters::Get().expired.Add(1);
  } else {
    obs::DeadlineCounters::Get().cancelled.Add(1);
  }
  return status_;
}

ScopedExecContext::ScopedExecContext(ExecContext* ctx)
    : installed_(ctx), previous_(g_current_exec_context) {
  if (installed_ != nullptr) g_current_exec_context = installed_;
}

ScopedExecContext::~ScopedExecContext() {
  if (installed_ == nullptr) return;
  g_current_exec_context = previous_;
  if (installed_->slack_recorded_ || installed_->stopped_ ||
      installed_->deadline_.IsInfinite()) {
    return;
  }
  installed_->slack_recorded_ = true;
  int64_t slack = installed_->deadline_.RemainingNanos();
  if (slack < 0) slack = 0;
  obs::DeadlineCounters::Get().slack_ns.Record(
      static_cast<uint64_t>(slack));
}

Status CheckExecContext() {
  // Memory budgets (common/mem.h) piggyback on the deadline polling sites:
  // one extra thread-local load when no MemContext is installed.
  Status mem = CheckMemBudget();
  if (!mem.ok()) return mem;
  ExecContext* ctx = g_current_exec_context;
  if (ctx == nullptr) return Status::Ok();
  return ctx->Check();
}

}  // namespace rq

// Fixed-capacity dynamic bitset used by the two-way automata machinery,
// where state sets of a few hundred bits are manipulated in tight loops.
#ifndef RQ_COMMON_BITSET_H_
#define RQ_COMMON_BITSET_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace rq {

class Bitset {
 public:
  Bitset() : num_bits_(0) {}
  explicit Bitset(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t size() const { return num_bits_; }

  bool Test(size_t i) const {
    RQ_CHECK(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(size_t i) {
    RQ_CHECK(i < num_bits_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Reset(size_t i) {
    RQ_CHECK(i < num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  void Clear() {
    for (uint64_t& w : words_) w = 0;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  bool None() const { return !Any(); }

  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  // this |= other. Returns true if any bit changed.
  bool UnionWith(const Bitset& other) {
    RQ_CHECK(other.num_bits_ == num_bits_);
    bool changed = false;
    for (size_t i = 0; i < words_.size(); ++i) {
      uint64_t before = words_[i];
      words_[i] |= other.words_[i];
      changed = changed || (words_[i] != before);
    }
    return changed;
  }

  void IntersectWith(const Bitset& other) {
    RQ_CHECK(other.num_bits_ == num_bits_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  bool Intersects(const Bitset& other) const {
    RQ_CHECK(other.num_bits_ == num_bits_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

  // True if this ⊆ other.
  bool IsSubsetOf(const Bitset& other) const {
    RQ_CHECK(other.num_bits_ == num_bits_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & ~other.words_[i]) != 0) return false;
    }
    return true;
  }

  // Calls f(i) for every set bit, in increasing order.
  template <typename F>
  void ForEach(F f) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(w));
        f(wi * 64 + bit);
        w &= w - 1;
      }
    }
  }

  size_t Hash() const {
    size_t h = 0xcbf29ce484222325ULL;
    for (uint64_t w : words_) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  size_t num_bits_;
  std::vector<uint64_t> words_;
};

}  // namespace rq

#endif  // RQ_COMMON_BITSET_H_

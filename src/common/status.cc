#include "common/status.h"

namespace rq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}

}  // namespace rq

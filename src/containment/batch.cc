#include "containment/batch.h"

#include <atomic>

#include "common/parallel.h"
#include "common/status.h"
#include "obs/subsystems.h"
#include "obs/trace.h"

namespace rq {

namespace {

// Runs `work(i)` for i in [0, n) on the shared ticket-queue pool
// (common/parallel.h), wrapped in the batch engine's bookkeeping. `work`
// must only touch per-index state (the checkers' shared state — obs
// counters and the automata cache — is internally synchronized).
template <typename Work>
void RunJobs(size_t n, unsigned jobs, Work work) {
  obs::BatchCounters& counters = obs::BatchCounters::Get();
  counters.batches.Increment();
  counters.batch_checks.Add(n);
  // Queue-depth gauge: all n jobs enter the backlog up front; each
  // finished job drains one. The peak is the deepest backlog across any
  // overlapping batches. One gauge update per job, not per inner step, so
  // the checkers' hot loops stay untouched.
  counters.queue_depth.Add(static_cast<int64_t>(n));
  ParallelFor(n, jobs, [&counters, &work](size_t i) {
    work(i);
    counters.queue_depth.Sub(1);
  });
}

unsigned EffectiveJobs(const ContainmentBatchOptions& options) {
  return options.jobs != 0 ? options.jobs : DefaultContainmentJobs();
}

}  // namespace

void SetDefaultContainmentJobs(unsigned jobs) {
  SetDefaultParallelJobs(jobs);
}

unsigned DefaultContainmentJobs() { return DefaultParallelJobs(); }

std::vector<LanguageContainmentResult> CheckContainmentBatch(
    const std::vector<NfaContainmentJob>& jobs,
    const ContainmentBatchOptions& options) {
  RQ_TRACE_SPAN_VAR(span, "containment.batch");
  span.AddAttr("jobs", jobs.size());
  std::vector<LanguageContainmentResult> results(jobs.size());
  RunJobs(jobs.size(), EffectiveJobs(options), [&](size_t i) {
    RQ_CHECK(jobs[i].a != nullptr && jobs[i].b != nullptr);
    switch (options.algo) {
      case ContainmentAlgo::kOnTheFly:
        results[i] = CheckLanguageContainment(*jobs[i].a, *jobs[i].b);
        break;
      case ContainmentAlgo::kAntichain:
        results[i] =
            CheckLanguageContainmentAntichain(*jobs[i].a, *jobs[i].b);
        break;
      case ContainmentAlgo::kExplicit:
        results[i] =
            CheckLanguageContainmentExplicit(*jobs[i].a, *jobs[i].b);
        break;
    }
  });
  return results;
}

std::vector<PathContainmentResult> CheckPathContainmentBatch(
    const std::vector<PathContainmentJob>& jobs, const Alphabet& alphabet,
    const ContainmentBatchOptions& options) {
  RQ_TRACE_SPAN_VAR(span, "containment.batch");
  span.AddAttr("jobs", jobs.size());
  std::vector<PathContainmentResult> results(jobs.size());
  RunJobs(jobs.size(), EffectiveJobs(options), [&](size_t i) {
    RQ_CHECK(jobs[i].q1 != nullptr && jobs[i].q2 != nullptr);
    results[i] = CheckPathQueryContainment(*jobs[i].q1, *jobs[i].q2, alphabet);
  });
  return results;
}

}  // namespace rq

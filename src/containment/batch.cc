#include "containment/batch.h"

#include <atomic>
#include <thread>

#include "common/status.h"
#include "obs/subsystems.h"
#include "obs/trace.h"

namespace rq {

namespace {

std::atomic<unsigned> g_default_jobs{1};

// Runs `work(i)` for i in [0, n) on `jobs` workers. The shared queue is an
// atomic ticket counter: each worker claims the next unclaimed index, so
// long checks don't stall the others behind a static partition. `work` must
// only touch per-index state (the checkers' shared state — obs counters and
// the automata cache — is internally synchronized).
template <typename Work>
void RunJobs(size_t n, unsigned jobs, Work work) {
  obs::BatchCounters& counters = obs::BatchCounters::Get();
  counters.batches.Increment();
  counters.batch_checks.Add(n);
  // Queue-depth gauge: all n jobs enter the backlog up front; each
  // finished job drains one. The peak is the deepest backlog across any
  // overlapping batches. One gauge update per job, not per inner step, so
  // the checkers' hot loops stay untouched.
  counters.queue_depth.Add(static_cast<int64_t>(n));
  auto drained_work = [&counters, &work](size_t i) {
    work(i);
    counters.queue_depth.Sub(1);
  };
  if (jobs <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) drained_work(i);
    return;
  }
  unsigned workers = jobs < n ? jobs : static_cast<unsigned>(n);
  std::atomic<size_t> next{0};
  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&next, n, &drained_work] {
        for (;;) {
          size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          drained_work(i);
        }
      });
    }
  }  // jthreads join here
}

unsigned EffectiveJobs(const ContainmentBatchOptions& options) {
  return options.jobs != 0 ? options.jobs : DefaultContainmentJobs();
}

}  // namespace

void SetDefaultContainmentJobs(unsigned jobs) {
  g_default_jobs.store(jobs == 0 ? 1 : jobs, std::memory_order_relaxed);
}

unsigned DefaultContainmentJobs() {
  return g_default_jobs.load(std::memory_order_relaxed);
}

std::vector<LanguageContainmentResult> CheckContainmentBatch(
    const std::vector<NfaContainmentJob>& jobs,
    const ContainmentBatchOptions& options) {
  RQ_TRACE_SPAN_VAR(span, "containment.batch");
  span.AddAttr("jobs", jobs.size());
  std::vector<LanguageContainmentResult> results(jobs.size());
  RunJobs(jobs.size(), EffectiveJobs(options), [&](size_t i) {
    RQ_CHECK(jobs[i].a != nullptr && jobs[i].b != nullptr);
    switch (options.algo) {
      case ContainmentAlgo::kOnTheFly:
        results[i] = CheckLanguageContainment(*jobs[i].a, *jobs[i].b);
        break;
      case ContainmentAlgo::kAntichain:
        results[i] =
            CheckLanguageContainmentAntichain(*jobs[i].a, *jobs[i].b);
        break;
      case ContainmentAlgo::kExplicit:
        results[i] =
            CheckLanguageContainmentExplicit(*jobs[i].a, *jobs[i].b);
        break;
    }
  });
  return results;
}

std::vector<PathContainmentResult> CheckPathContainmentBatch(
    const std::vector<PathContainmentJob>& jobs, const Alphabet& alphabet,
    const ContainmentBatchOptions& options) {
  RQ_TRACE_SPAN_VAR(span, "containment.batch");
  span.AddAttr("jobs", jobs.size());
  std::vector<PathContainmentResult> results(jobs.size());
  RunJobs(jobs.size(), EffectiveJobs(options), [&](size_t i) {
    RQ_CHECK(jobs[i].q1 != nullptr && jobs[i].q2 != nullptr);
    results[i] = CheckPathQueryContainment(*jobs[i].q1, *jobs[i].q2, alphabet);
  });
  return results;
}

}  // namespace rq

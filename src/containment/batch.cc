#include "containment/batch.h"

#include <atomic>
#include <chrono>
#include <vector>

#include "common/deadline.h"
#include "common/mem.h"
#include "common/parallel.h"
#include "common/status.h"
#include "obs/profile.h"
#include "obs/subsystems.h"
#include "obs/trace.h"

namespace rq {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Runs `work(i)` for i in [0, n) on the shared ticket-queue pool
// (common/parallel.h), wrapped in the batch engine's bookkeeping. `work`
// must only touch per-index state (the checkers' shared state — obs
// counters and the automata cache — is internally synchronized).
//
// Per-worker delta isolation for the profiler: when a query profile is
// active (obs/profile.h), each pool thread accumulates its own job count
// and busy wall-time in a slot only it touches, and the rows are flushed
// to the profile once after the pool joins — worker attribution without
// any shared mutable state inside the job loop.
template <typename Work>
void RunJobs(size_t n, unsigned jobs, Work work) {
  obs::BatchCounters& counters = obs::BatchCounters::Get();
  counters.batches.Increment();
  counters.batch_checks.Add(n);
  // Queue-depth gauge: all n jobs enter the backlog up front; each
  // finished job drains one. The peak is the deepest backlog across any
  // overlapping batches. One gauge update per job, not per inner step, so
  // the checkers' hot loops stay untouched.
  counters.queue_depth.Add(static_cast<int64_t>(n));
  obs::QueryProfile* profile = obs::QueryProfile::Active();
  if (profile == nullptr) {
    ParallelFor(n, jobs, [&counters, &work](size_t i) {
      work(i);
      counters.queue_depth.Sub(1);
    });
    return;
  }
  struct WorkerStats {
    uint64_t jobs = 0;
    uint64_t busy_ns = 0;
  };
  unsigned slots = jobs > 1 ? jobs : 1;
  std::vector<WorkerStats> per_worker(slots);
  ParallelForWorker(n, jobs,
                    [&counters, &work, &per_worker](unsigned worker,
                                                    size_t i) {
                      uint64_t begin = SteadyNowNs();
                      work(i);
                      counters.queue_depth.Sub(1);
                      WorkerStats& stats = per_worker[worker];
                      ++stats.jobs;
                      stats.busy_ns += SteadyNowNs() - begin;
                    });
  for (unsigned w = 0; w < slots; ++w) {
    if (per_worker[w].jobs == 0) continue;
    profile->RecordWorker(w, per_worker[w].jobs, per_worker[w].busy_ns);
  }
}

unsigned EffectiveJobs(const ContainmentBatchOptions& options) {
  return options.jobs != 0 ? options.jobs : DefaultContainmentJobs();
}

// Per-batch deadline/cancellation bookkeeping shared by both batch entry
// points. The parent ExecContext is captured on the CALLING thread (pool
// workers do not inherit its thread-local installation); each job then
// runs under a fresh child context combining:
//   * a fresh job deadline (options.job_timeout_ms, measured from pickup)
//     clipped to the parent's deadline, and
//   * one cancel source — the caller-supplied token, else the parent's
//     token, else the batch's internal first-error token.
// Jobs not yet started when any of those sources fires report kCancelled
// without running; jobs already running unwind at their next poll only if
// their own context watches the fired token.
// Memory budgets follow the same shape: the caller's installed MemContext
// is captured here, and each job runs under a fresh per-job context
// (options.memory_budget_bytes, 0 = unlimited) chained to it — job bytes
// roll up into the caller's accounting, and a trip of either budget fails
// the job with kResourceExhausted at its next poll.
struct BatchExecGuard {
  const ContainmentBatchOptions& options;
  ExecContext* parent;
  MemContext* mem_parent;
  CancelToken first_error;

  explicit BatchExecGuard(const ContainmentBatchOptions& opts)
      : options(opts),
        parent(ExecContext::Current()),
        mem_parent(MemContext::Current()) {}

  CancelToken* JobCancelToken() {
    if (options.cancel != nullptr) return options.cancel;
    if (parent != nullptr && parent->cancel_token() != nullptr) {
      return parent->cancel_token();
    }
    return &first_error;
  }

  bool CancelledBeforeStart() {
    return first_error.Cancelled() ||
           (options.cancel != nullptr && options.cancel->Cancelled()) ||
           (parent != nullptr && parent->cancel_token() != nullptr &&
            parent->cancel_token()->Cancelled());
  }

  // Fresh per-job memory context: carries the per-job budget and chains to
  // the caller's context (if any). Returns a budget-free root when neither
  // exists — NeedsMemContext() gates installing it at all.
  bool NeedsMemContext() const {
    return options.memory_budget_bytes != 0 || mem_parent != nullptr;
  }

  MemContext JobMemContext() const {
    return MemContext(options.memory_budget_bytes, mem_parent);
  }

  Deadline JobDeadline() const {
    Deadline d = options.job_timeout_ms > 0
                     ? Deadline::AfterMillis(options.job_timeout_ms)
                     : Deadline::Infinite();
    if (parent != nullptr) d = Deadline::Earlier(d, parent->deadline());
    return d;
  }

  void OnJobResult(const Status& status) {
    if (!status.ok() && options.cancel_on_error) first_error.Cancel();
  }
};

}  // namespace

void SetDefaultContainmentJobs(unsigned jobs) {
  SetDefaultParallelJobs(jobs);
}

unsigned DefaultContainmentJobs() { return DefaultParallelJobs(); }

std::vector<LanguageContainmentResult> CheckContainmentBatch(
    const std::vector<NfaContainmentJob>& jobs,
    const ContainmentBatchOptions& options) {
  RQ_TRACE_SPAN_VAR(span, "containment.batch");
  span.AddAttr("jobs", jobs.size());
  std::vector<LanguageContainmentResult> results(jobs.size());
  // Validate up front: a bad job fails with a per-job status instead of
  // aborting the process from a worker thread, and — unlike runtime
  // failures — never cancels the rest of the batch.
  std::vector<bool> invalid(jobs.size(), false);
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].a == nullptr || jobs[i].b == nullptr) {
      invalid[i] = true;
      results[i].status = InvalidArgumentError(
          "CheckContainmentBatch: job " + std::to_string(i) +
          " has a null automaton");
    }
  }
  BatchExecGuard guard(options);
  RunJobs(jobs.size(), EffectiveJobs(options), [&](size_t i) {
    if (invalid[i]) return;
    if (guard.CancelledBeforeStart()) {
      results[i].status = CancelledError(
          "CheckContainmentBatch: job " + std::to_string(i) +
          " cancelled before start");
      return;
    }
    ExecContext ctx(guard.JobDeadline(), guard.JobCancelToken());
    MemContext mem_ctx = guard.JobMemContext();
    {
      ScopedExecContext scoped(&ctx);
      ScopedMemContext scoped_mem(guard.NeedsMemContext() ? &mem_ctx
                                                          : nullptr);
      switch (options.algo) {
        case ContainmentAlgo::kOnTheFly:
          results[i] = CheckLanguageContainment(*jobs[i].a, *jobs[i].b);
          break;
        case ContainmentAlgo::kAntichain:
          results[i] =
              CheckLanguageContainmentAntichain(*jobs[i].a, *jobs[i].b);
          break;
        case ContainmentAlgo::kExplicit:
          results[i] =
              CheckLanguageContainmentExplicit(*jobs[i].a, *jobs[i].b);
          break;
      }
    }
    guard.OnJobResult(results[i].status);
  });
  return results;
}

std::vector<PathContainmentResult> CheckPathContainmentBatch(
    const std::vector<PathContainmentJob>& jobs, const Alphabet& alphabet,
    const ContainmentBatchOptions& options) {
  RQ_TRACE_SPAN_VAR(span, "containment.batch");
  span.AddAttr("jobs", jobs.size());
  std::vector<PathContainmentResult> results(jobs.size());
  std::vector<bool> invalid(jobs.size(), false);
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].q1 == nullptr || jobs[i].q2 == nullptr) {
      invalid[i] = true;
      results[i].status = InvalidArgumentError(
          "CheckPathContainmentBatch: job " + std::to_string(i) +
          " has a null regex");
    }
  }
  BatchExecGuard guard(options);
  RunJobs(jobs.size(), EffectiveJobs(options), [&](size_t i) {
    if (invalid[i]) return;
    if (guard.CancelledBeforeStart()) {
      results[i].status = CancelledError(
          "CheckPathContainmentBatch: job " + std::to_string(i) +
          " cancelled before start");
      return;
    }
    ExecContext ctx(guard.JobDeadline(), guard.JobCancelToken());
    MemContext mem_ctx = guard.JobMemContext();
    {
      ScopedExecContext scoped(&ctx);
      ScopedMemContext scoped_mem(guard.NeedsMemContext() ? &mem_ctx
                                                          : nullptr);
      results[i] =
          CheckPathQueryContainment(*jobs[i].q1, *jobs[i].q2, alphabet);
    }
    guard.OnJobResult(results[i].status);
  });
  return results;
}

}  // namespace rq

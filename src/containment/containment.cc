#include "containment/containment.h"

#include "common/deadline.h"
#include "datalog/eval.h"
#include "obs/flight_recorder.h"
#include "obs/profile.h"
#include "rq/from_datalog.h"

namespace rq {

namespace {

// Dispatcher body; the public CheckDatalogContainment wraps it with flight
// recording and per-query profile annotation.
Result<RqContainmentResult> CheckDatalogContainmentImpl(
    const DatalogProgram& q1, const DatalogProgram& q2,
    const DatalogContainmentOptions& options) {
  RQ_RETURN_IF_ERROR(q1.Validate());
  RQ_RETURN_IF_ERROR(q2.Validate());
  if (q1.goal() == kInvalidPred || q2.goal() == kInvalidPred) {
    return InvalidArgumentError("CheckDatalogContainment: goals required");
  }
  if (q1.PredicateArity(q1.goal()) != q2.PredicateArity(q2.goal())) {
    return InvalidArgumentError(
        "CheckDatalogContainment: goal arity mismatch");
  }

  // Theorem 8 route: both programs in the GRQ fragment reduce to RQ
  // containment.
  if (options.try_grq) {
    Result<RqQuery> rq1 = DatalogToRq(q1);
    Result<RqQuery> rq2 = DatalogToRq(q2);
    if (rq1.ok() && rq2.ok()) {
      RQ_ASSIGN_OR_RETURN(
          RqContainmentResult result,
          CheckRqContainment(*rq1, *rq2, options.rq));
      result.method = "grq:" + result.method;
      return result;
    }
  }

  // Fallback: bounded proof-tree expansions of q1, each checked exactly by
  // evaluating q2 on the expansion's canonical database.
  RQ_ASSIGN_OR_RETURN(DatalogExpansions expansions,
                      ExpandDatalog(q1, options.expand));
  bool complete = !expansions.truncated && !expansions.depth_limited;
  RqContainmentResult result;
  result.method =
      complete ? "datalog-expansion-exact" : "datalog-expansion-bounded";
  for (const ConjunctiveQuery& cq : expansions.expansions) {
    RQ_RETURN_IF_ERROR(CheckExecContext());
    ++result.expansions_checked;
    Database canonical = cq.CanonicalDatabase();
    RQ_ASSIGN_OR_RETURN(
        Relation answers,
        EvalDatalogGoal(q2, canonical, DatalogEvalMode::kSemiNaive));
    if (!answers.Contains(cq.FrozenHead())) {
      result.certainty = Certainty::kRefuted;
      result.counterexample = std::move(canonical);
      result.witness_tuple = cq.FrozenHead();
      return result;
    }
  }
  result.certainty =
      complete ? Certainty::kProved : Certainty::kUnknownUpToBound;
  return result;
}

}  // namespace

Result<RqContainmentResult> CheckDatalogContainment(
    const DatalogProgram& q1, const DatalogProgram& q2,
    const DatalogContainmentOptions& options) {
  obs::FlightTimer timer(obs::QueryKind::kDatalogContainment);
  Result<RqContainmentResult> result =
      CheckDatalogContainmentImpl(q1, q2, options);
  if (!result.ok()) {
    timer.Finish(obs::FlightVerdictFromError(result.status()), 0);
    return result;
  }
  timer.Finish(FlightVerdictFromCertainty(result->certainty),
               result->expansions_checked);
  if (obs::QueryProfile* profile = obs::QueryProfile::Active()) {
    profile->AddNote("datalog.method", result->method);
  }
  return result;
}

}  // namespace rq

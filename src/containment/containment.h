// Unified query-containment entry points (the decision problems the paper
// tracks across its whole ladder, §2.3/§3.2/§3.3/§3.4/§4).
//
// Exact procedures by class (all implemented in the modules below and
// re-exported here):
//   RPQ  ⊑ RPQ    — automata/containment.h + pathquery/containment.h
//   2RPQ ⊑ 2RPQ   — pathquery/containment.h   (fold pipeline, Theorem 5)
//   CQ   ⊑ CQ     — relational/cq.h           (Chandra-Merlin)
//   UCQ  ⊑ UCQ    — relational/cq.h           (Sagiv-Yannakakis)
//   RQ   ⊑ RQ     — rq/containment.h          (dispatch + expansions)
//
// This header adds Datalog ⊑ Datalog: when both programs are GRQ
// (recursion = transitive closure only), containment goes through the RQ
// extraction exactly as §4.1 prescribes; otherwise the checker falls back
// to bounded proof-tree expansions, which refute exactly and prove only
// for nonrecursive left-hand sides.
#ifndef RQ_CONTAINMENT_CONTAINMENT_H_
#define RQ_CONTAINMENT_CONTAINMENT_H_

#include "common/status.h"
#include "datalog/program.h"
#include "datalog/unfold.h"
#include "rq/containment.h"

namespace rq {

struct DatalogContainmentOptions {
  ExpandLimits expand;
  bool try_grq = true;
  RqContainmentOptions rq;
};

// Decides (or bounds) goal(q1) ⊑ goal(q2). Both programs need goals of the
// same arity. Returns the same verdict structure as RQ containment;
// `method` is prefixed with "grq:" when the GRQ extraction applied.
Result<RqContainmentResult> CheckDatalogContainment(
    const DatalogProgram& q1, const DatalogProgram& q2,
    const DatalogContainmentOptions& options = {});

}  // namespace rq

#endif  // RQ_CONTAINMENT_CONTAINMENT_H_

// Parallel batch containment: fans a vector of independent containment
// checks across a std::jthread worker pool. Each worker pulls job indices
// off a shared queue, so uneven check costs balance automatically; results
// land at their job's index, so output order is deterministic regardless of
// scheduling. Single-pair semantics are exactly those of the underlying
// checkers (automata/containment.h, pathquery/containment.h) — including
// their use of the automata cache, which is thread-safe and deduplicates
// shared sub-constructions across concurrent workers (docs/CACHING.md).
#ifndef RQ_CONTAINMENT_BATCH_H_
#define RQ_CONTAINMENT_BATCH_H_

#include <cstdint>
#include <vector>

#include "automata/containment.h"
#include "common/deadline.h"
#include "pathquery/containment.h"
#include "regex/regex.h"

namespace rq {

// Which single-pair decision procedure the batch runs.
enum class ContainmentAlgo {
  kOnTheFly,   // CheckLanguageContainment
  kAntichain,  // CheckLanguageContainmentAntichain
  kExplicit,   // CheckLanguageContainmentExplicit
};

struct ContainmentBatchOptions {
  // Worker threads; 0 means DefaultContainmentJobs(). Values <= 1 run the
  // batch inline on the calling thread (no pool).
  unsigned jobs = 0;
  ContainmentAlgo algo = ContainmentAlgo::kOnTheFly;
  // Per-job wall-clock budget in milliseconds (0 = none). Each job gets a
  // FRESH deadline when a worker picks it up, clipped to the caller's own
  // installed ExecContext deadline; expiry fails that job with
  // kDeadlineExceeded in its result Status (docs/ROBUSTNESS.md).
  int64_t job_timeout_ms = 0;
  // Optional external cancellation: trip it from any thread and jobs not
  // yet started report kCancelled (running jobs unwind at their next
  // poll). Must outlive the batch call.
  CancelToken* cancel = nullptr;
  // When a job fails at runtime (deadline, cancellation, internal error),
  // cancel the jobs still queued behind it — they report kCancelled.
  // Up-front validation failures (null pointers) never trigger this; the
  // rest of the batch still runs.
  bool cancel_on_error = true;
  // Per-job memory budget in bytes (0 = none). Each job runs under a fresh
  // MemContext (common/mem.h) chained to the caller's installed context, so
  // job bytes also count against any caller-wide budget. A job crossing
  // either budget fails with kResourceExhausted in its result Status at its
  // next poll, through the same sites that enforce job_timeout_ms.
  uint64_t memory_budget_bytes = 0;
};

// Process-wide default worker count used when options.jobs == 0. Starts at
// 1 (serial); rqcheck/rqeval --jobs N and the bench harness raise it.
// Aliases the shared knob in common/parallel.h, which multi-source graph
// evaluation (pathquery/path_query.h) also reads.
void SetDefaultContainmentJobs(unsigned jobs);
unsigned DefaultContainmentJobs();

// One L(a) ⊆ L(b) check. Both automata must outlive the batch call and
// share num_symbols.
struct NfaContainmentJob {
  const Nfa* a = nullptr;
  const Nfa* b = nullptr;
};

// Runs every job and returns the verdicts in job order. A job never aborts
// the process or the batch: null-pointer jobs come back with a per-job
// kInvalidArgument status (the other jobs still run), and deadline /
// cancellation trips land in the affected job's result Status.
std::vector<LanguageContainmentResult> CheckContainmentBatch(
    const std::vector<NfaContainmentJob>& jobs,
    const ContainmentBatchOptions& options = {});

// One path-query containment check Q1 ⊑ Q2 (RPQ or 2RPQ; dispatch per pair
// as in CheckPathQueryContainment). Regexes must outlive the call.
struct PathContainmentJob {
  const Regex* q1 = nullptr;
  const Regex* q2 = nullptr;
};

std::vector<PathContainmentResult> CheckPathContainmentBatch(
    const std::vector<PathContainmentJob>& jobs, const Alphabet& alphabet,
    const ContainmentBatchOptions& options = {});

}  // namespace rq

#endif  // RQ_CONTAINMENT_BATCH_H_

// Containment-driven query optimization (the paper's §1/§2.3 framing of
// containment as the key to query optimization: "Q is equivalent to Q' if
// Q is contained in Q' and Q' is contained in Q").
//
// Everything here is verdict-preserving: rewrites are applied only when the
// relevant exact containment test proves equivalence.
#ifndef RQ_OPTIMIZE_MINIMIZE_H_
#define RQ_OPTIMIZE_MINIMIZE_H_

#include "common/status.h"
#include "regex/regex.h"
#include "relational/cq.h"

namespace rq {

// Removes every disjunct contained in the union of the others
// (Sagiv-Yannakakis). The result is equivalent to the input and minimal in
// the sense that no remaining disjunct is redundant.
Result<UnionOfConjunctiveQueries> PruneRedundantDisjuncts(
    UnionOfConjunctiveQueries query);

// Computes the core of a conjunctive query: greedily drops body atoms as
// long as the query stays equivalent (Chandra-Merlin). The result is a
// minimal equivalent subquery; by the classical theory it is unique up to
// isomorphism.
Result<ConjunctiveQuery> MinimizeConjunctiveQuery(ConjunctiveQuery query);

enum class RewriteVerdict {
  kEquivalent,       // adopt: both containments proved
  kOverApproximates, // rewrite ⊒ original only (sound for superset uses)
  kUnderApproximates,// rewrite ⊑ original only
  kIncomparable,
};
const char* RewriteVerdictName(RewriteVerdict verdict);

// Classifies a proposed path-query rewrite against the original with the
// exact RPQ/2RPQ containment procedures.
RewriteVerdict ValidatePathRewrite(const Regex& original,
                                   const Regex& proposed,
                                   const Alphabet& alphabet);

}  // namespace rq

#endif  // RQ_OPTIMIZE_MINIMIZE_H_

#include "optimize/minimize.h"

#include "pathquery/containment.h"

namespace rq {

Result<UnionOfConjunctiveQueries> PruneRedundantDisjuncts(
    UnionOfConjunctiveQueries query) {
  RQ_RETURN_IF_ERROR(query.Validate());
  for (size_t i = 0; i < query.disjuncts.size();) {
    if (query.disjuncts.size() == 1) break;
    UnionOfConjunctiveQueries rest;
    for (size_t j = 0; j < query.disjuncts.size(); ++j) {
      if (j != i) rest.disjuncts.push_back(query.disjuncts[j]);
    }
    UnionOfConjunctiveQueries self;
    self.disjuncts.push_back(query.disjuncts[i]);
    RQ_ASSIGN_OR_RETURN(bool redundant, UcqContained(self, rest));
    if (redundant) {
      query.disjuncts.erase(query.disjuncts.begin() +
                            static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return query;
}

Result<ConjunctiveQuery> MinimizeConjunctiveQuery(ConjunctiveQuery query) {
  RQ_RETURN_IF_ERROR(query.Validate());
  for (size_t i = 0; i < query.atoms.size();) {
    if (query.atoms.size() == 1) break;
    ConjunctiveQuery candidate = query;
    candidate.atoms.erase(candidate.atoms.begin() +
                          static_cast<ptrdiff_t>(i));
    if (!candidate.Validate().ok()) {
      ++i;  // dropping this atom would unsafely expose a head variable
      continue;
    }
    // Dropping atoms only weakens (candidate ⊒ query); equivalence needs
    // candidate ⊑ query.
    RQ_ASSIGN_OR_RETURN(bool equivalent, CqContained(candidate, query));
    if (equivalent) {
      query = std::move(candidate);
    } else {
      ++i;
    }
  }
  return query;
}

const char* RewriteVerdictName(RewriteVerdict verdict) {
  switch (verdict) {
    case RewriteVerdict::kEquivalent:
      return "equivalent";
    case RewriteVerdict::kOverApproximates:
      return "over-approximates";
    case RewriteVerdict::kUnderApproximates:
      return "under-approximates";
    case RewriteVerdict::kIncomparable:
      return "incomparable";
  }
  return "?";
}

RewriteVerdict ValidatePathRewrite(const Regex& original,
                                   const Regex& proposed,
                                   const Alphabet& alphabet) {
  bool forward =
      CheckPathQueryContainment(original, proposed, alphabet).contained;
  bool backward =
      CheckPathQueryContainment(proposed, original, alphabet).contained;
  if (forward && backward) return RewriteVerdict::kEquivalent;
  if (forward) return RewriteVerdict::kOverApproximates;
  if (backward) return RewriteVerdict::kUnderApproximates;
  return RewriteVerdict::kIncomparable;
}

}  // namespace rq

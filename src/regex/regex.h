// Regular expressions over interned symbol alphabets (including inverse
// atoms `r-` for Sigma±, paper §3.1).
//
// Surface syntax accepted by Parse():
//   atom       ::= IDENT | IDENT '-'          (label, inverse label)
//   primary    ::= atom | '(' union ')' | '()'    ('()' is epsilon)
//   postfix    ::= primary ('*' | '+' | '?')*
//   concat     ::= postfix postfix*               (juxtaposition)
//   union      ::= concat ('|' concat)*
// Examples: "knows+", "(parent | parent-)*", "a (b | c)* d-".
#ifndef RQ_REGEX_REGEX_H_
#define RQ_REGEX_REGEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "automata/alphabet.h"
#include "automata/nfa.h"
#include "common/rng.h"
#include "common/status.h"

namespace rq {

enum class RegexKind {
  kEmpty,     // the empty language
  kEpsilon,   // the empty word
  kAtom,      // one symbol (possibly an inverse symbol)
  kConcat,    // children in sequence
  kUnion,     // any child
  kStar,      // zero or more
  kPlus,      // one or more
  kOptional,  // zero or one
};

class Regex;
using RegexPtr = std::shared_ptr<const Regex>;

// Immutable regular-expression tree. Build via the static factories.
class Regex {
 public:
  static RegexPtr Empty();
  static RegexPtr Epsilon();
  static RegexPtr Atom(Symbol symbol);
  static RegexPtr Concat(std::vector<RegexPtr> children);
  static RegexPtr Union(std::vector<RegexPtr> children);
  static RegexPtr Star(RegexPtr child);
  static RegexPtr Plus(RegexPtr child);
  static RegexPtr Optional(RegexPtr child);

  RegexKind kind() const { return kind_; }
  Symbol symbol() const {
    RQ_CHECK(kind_ == RegexKind::kAtom);
    return symbol_;
  }
  const std::vector<RegexPtr>& children() const { return children_; }

  // Number of AST nodes.
  size_t Size() const;

  // True if any atom is an inverse symbol (query is 2-way, not plain RPQ).
  bool UsesInverse() const;

  // One past the largest symbol mentioned (0 if none). ToNfa needs
  // num_symbols >= this.
  uint32_t MinNumSymbols() const;

  // Mirrors the expression: reverses concatenations and flips every atom.
  // For a 2RPQ Q this computes Q's inverse query (used by semipath code).
  RegexPtr InverseExpression() const;

  std::string ToString(const Alphabet& alphabet) const;

  // Thompson construction; result uses epsilon transitions, one initial
  // state, states are O(Size()).
  Nfa ToNfa(uint32_t num_symbols) const;

 private:
  Regex(RegexKind kind, Symbol symbol, std::vector<RegexPtr> children)
      : kind_(kind), symbol_(symbol), children_(std::move(children)) {}

  RegexKind kind_;
  Symbol symbol_;
  std::vector<RegexPtr> children_;
};

// Parses the surface syntax above; interns new labels into `alphabet`.
Result<RegexPtr> ParseRegex(std::string_view text, Alphabet* alphabet);

// Random regex for property tests/benches. `max_depth` bounds nesting;
// `allow_inverse` controls whether inverse atoms may appear.
RegexPtr RandomRegex(const Alphabet& alphabet, int max_depth,
                     bool allow_inverse, Rng& rng);

}  // namespace rq

#endif  // RQ_REGEX_REGEX_H_

// Equivalence-preserving regular-expression simplification.
//
// A bottom-up rewriting pass applying the classical identities
//   ∅ | r = r      ∅ · r = ∅       ε · r = r       r | r = r
//   (r*)* = r*     (r?)* = r*      (r+)* = r*      ε* = ε      ∅* = ε
//   (r*)+ = r*     (r?)+ = r*      (r*)? = r*      ε? = ε
//   r* r* = r*     nested unions/concats flatten, unions dedup (ACI)
// plus nullability-based ones (r? = r when ε ∈ L(r)). Used as a
// normalization pre-pass by the optimizer; equivalence is property-tested
// against the automata and derivative engines.
#ifndef RQ_REGEX_SIMPLIFY_H_
#define RQ_REGEX_SIMPLIFY_H_

#include "regex/regex.h"

namespace rq {

// Returns an equivalent, usually smaller expression. Idempotent.
RegexPtr SimplifyRegex(const RegexPtr& re);

}  // namespace rq

#endif  // RQ_REGEX_SIMPLIFY_H_

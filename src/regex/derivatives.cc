#include "regex/derivatives.h"

#include <algorithm>
#include <deque>
#include <map>
#include <string>
#include <unordered_set>

namespace rq {

namespace {

// Canonical structural key (symbol ids, not names) used for ACI
// normalization and memoization.
void KeyInto(const Regex& re, std::string* out) {
  switch (re.kind()) {
    case RegexKind::kEmpty:
      out->append("0");
      return;
    case RegexKind::kEpsilon:
      out->append("e");
      return;
    case RegexKind::kAtom:
      out->append("a");
      out->append(std::to_string(re.symbol()));
      return;
    case RegexKind::kConcat:
      out->append("(.");
      break;
    case RegexKind::kUnion:
      out->append("(|");
      break;
    case RegexKind::kStar:
      out->append("(*");
      break;
    case RegexKind::kPlus:
      out->append("(+");
      break;
    case RegexKind::kOptional:
      out->append("(?");
      break;
  }
  for (const RegexPtr& c : re.children()) {
    out->push_back(' ');
    KeyInto(*c, out);
  }
  out->push_back(')');
}

std::string Key(const Regex& re) {
  std::string out;
  KeyInto(re, &out);
  return out;
}

// Smart union: flatten, drop ∅, dedup and sort by key (ACI normalization,
// which keeps the derivative space finite).
RegexPtr NormUnion(std::vector<RegexPtr> children) {
  std::vector<RegexPtr> flat;
  for (RegexPtr& c : children) {
    if (c->kind() == RegexKind::kEmpty) continue;
    if (c->kind() == RegexKind::kUnion) {
      for (const RegexPtr& g : c->children()) flat.push_back(g);
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return Regex::Empty();
  std::map<std::string, RegexPtr> dedup;
  for (RegexPtr& c : flat) dedup.emplace(Key(*c), c);
  std::vector<RegexPtr> out;
  out.reserve(dedup.size());
  for (auto& [key, c] : dedup) out.push_back(std::move(c));
  return Regex::Union(std::move(out));
}

// Smart concat: flatten, absorb ∅, drop ε.
RegexPtr NormConcat(std::vector<RegexPtr> children) {
  std::vector<RegexPtr> flat;
  for (RegexPtr& c : children) {
    if (c->kind() == RegexKind::kEmpty) return Regex::Empty();
    if (c->kind() == RegexKind::kEpsilon) continue;
    if (c->kind() == RegexKind::kConcat) {
      for (const RegexPtr& g : c->children()) flat.push_back(g);
    } else {
      flat.push_back(std::move(c));
    }
  }
  return Regex::Concat(std::move(flat));
}

}  // namespace

bool IsNullable(const Regex& re) {
  switch (re.kind()) {
    case RegexKind::kEmpty:
    case RegexKind::kAtom:
      return false;
    case RegexKind::kEpsilon:
    case RegexKind::kStar:
    case RegexKind::kOptional:
      return true;
    case RegexKind::kPlus:
      return IsNullable(*re.children()[0]);
    case RegexKind::kConcat:
      for (const RegexPtr& c : re.children()) {
        if (!IsNullable(*c)) return false;
      }
      return true;
    case RegexKind::kUnion:
      for (const RegexPtr& c : re.children()) {
        if (IsNullable(*c)) return true;
      }
      return false;
  }
  RQ_CHECK(false);
  return false;
}

RegexPtr Derivative(const RegexPtr& re, Symbol symbol) {
  switch (re->kind()) {
    case RegexKind::kEmpty:
    case RegexKind::kEpsilon:
      return Regex::Empty();
    case RegexKind::kAtom:
      return re->symbol() == symbol ? Regex::Epsilon() : Regex::Empty();
    case RegexKind::kConcat: {
      // d(r1 r2 .. rn) = d(r1)·rest ∪ [nullable(r1)] d(rest).
      const auto& kids = re->children();
      std::vector<RegexPtr> rest(kids.begin() + 1, kids.end());
      RegexPtr rest_re = Regex::Concat(rest);
      std::vector<RegexPtr> tail{Derivative(kids[0], symbol)};
      tail.push_back(rest_re);
      RegexPtr first = NormConcat(std::move(tail));
      if (!IsNullable(*kids[0])) return first;
      return NormUnion({first, Derivative(rest_re, symbol)});
    }
    case RegexKind::kUnion: {
      std::vector<RegexPtr> parts;
      parts.reserve(re->children().size());
      for (const RegexPtr& c : re->children()) {
        parts.push_back(Derivative(c, symbol));
      }
      return NormUnion(std::move(parts));
    }
    case RegexKind::kStar:
      return NormConcat(
          {Derivative(re->children()[0], symbol), re});
    case RegexKind::kPlus: {
      RegexPtr star = Regex::Star(re->children()[0]);
      return NormConcat({Derivative(re->children()[0], symbol), star});
    }
    case RegexKind::kOptional:
      return Derivative(re->children()[0], symbol);
  }
  RQ_CHECK(false);
  return Regex::Empty();
}

bool DerivativeMatch(const RegexPtr& re, const std::vector<Symbol>& word) {
  RegexPtr current = re;
  for (Symbol a : word) {
    if (current->kind() == RegexKind::kEmpty) return false;
    current = Derivative(current, a);
  }
  return IsNullable(*current);
}

Result<bool> DerivativeContainment(const RegexPtr& r1, const RegexPtr& r2,
                                   uint32_t num_symbols,
                                   size_t max_states) {
  std::unordered_set<std::string> seen;
  std::deque<std::pair<RegexPtr, RegexPtr>> work;
  auto push = [&](RegexPtr a, RegexPtr b) {
    if (a->kind() == RegexKind::kEmpty) return;  // ∅ ⊆ anything
    std::string key = Key(*a) + "#" + Key(*b);
    if (seen.insert(std::move(key)).second) {
      work.emplace_back(std::move(a), std::move(b));
    }
  };
  push(r1, r2);
  while (!work.empty()) {
    if (seen.size() > max_states) {
      return ResourceExhaustedError(
          "DerivativeContainment: more than " +
          std::to_string(max_states) + " derivative pairs");
    }
    auto [a, b] = std::move(work.front());
    work.pop_front();
    if (IsNullable(*a) && !IsNullable(*b)) return false;
    for (Symbol s = 0; s < num_symbols; ++s) {
      push(Derivative(a, s), Derivative(b, s));
    }
  }
  return true;
}

}  // namespace rq

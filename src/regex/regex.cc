#include "regex/regex.h"

#include <algorithm>
#include <cctype>

#include "common/strings.h"
#include "obs/subsystems.h"

namespace rq {

RegexPtr Regex::Empty() {
  return RegexPtr(new Regex(RegexKind::kEmpty, kInvalidSymbol, {}));
}
RegexPtr Regex::Epsilon() {
  return RegexPtr(new Regex(RegexKind::kEpsilon, kInvalidSymbol, {}));
}
RegexPtr Regex::Atom(Symbol symbol) {
  return RegexPtr(new Regex(RegexKind::kAtom, symbol, {}));
}
RegexPtr Regex::Concat(std::vector<RegexPtr> children) {
  if (children.empty()) return Epsilon();
  if (children.size() == 1) return children[0];
  return RegexPtr(
      new Regex(RegexKind::kConcat, kInvalidSymbol, std::move(children)));
}
RegexPtr Regex::Union(std::vector<RegexPtr> children) {
  RQ_CHECK(!children.empty());
  if (children.size() == 1) return children[0];
  return RegexPtr(
      new Regex(RegexKind::kUnion, kInvalidSymbol, std::move(children)));
}
RegexPtr Regex::Star(RegexPtr child) {
  return RegexPtr(
      new Regex(RegexKind::kStar, kInvalidSymbol, {std::move(child)}));
}
RegexPtr Regex::Plus(RegexPtr child) {
  return RegexPtr(
      new Regex(RegexKind::kPlus, kInvalidSymbol, {std::move(child)}));
}
RegexPtr Regex::Optional(RegexPtr child) {
  return RegexPtr(
      new Regex(RegexKind::kOptional, kInvalidSymbol, {std::move(child)}));
}

size_t Regex::Size() const {
  size_t n = 1;
  for (const RegexPtr& c : children_) n += c->Size();
  return n;
}

bool Regex::UsesInverse() const {
  if (kind_ == RegexKind::kAtom) return IsInverseSymbol(symbol_);
  for (const RegexPtr& c : children_) {
    if (c->UsesInverse()) return true;
  }
  return false;
}

uint32_t Regex::MinNumSymbols() const {
  uint32_t n = 0;
  if (kind_ == RegexKind::kAtom) n = symbol_ + 1;
  for (const RegexPtr& c : children_) n = std::max(n, c->MinNumSymbols());
  return n;
}

RegexPtr Regex::InverseExpression() const {
  switch (kind_) {
    case RegexKind::kEmpty:
      return Empty();
    case RegexKind::kEpsilon:
      return Epsilon();
    case RegexKind::kAtom:
      return Atom(InverseSymbol(symbol_));
    case RegexKind::kConcat: {
      std::vector<RegexPtr> rev;
      rev.reserve(children_.size());
      for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
        rev.push_back((*it)->InverseExpression());
      }
      return Concat(std::move(rev));
    }
    case RegexKind::kUnion: {
      std::vector<RegexPtr> out;
      out.reserve(children_.size());
      for (const RegexPtr& c : children_) out.push_back(c->InverseExpression());
      return Union(std::move(out));
    }
    case RegexKind::kStar:
      return Star(children_[0]->InverseExpression());
    case RegexKind::kPlus:
      return Plus(children_[0]->InverseExpression());
    case RegexKind::kOptional:
      return Optional(children_[0]->InverseExpression());
  }
  RQ_CHECK(false);
  return Empty();
}

namespace {

int Precedence(RegexKind kind) {
  switch (kind) {
    case RegexKind::kUnion:
      return 0;
    case RegexKind::kConcat:
      return 1;
    default:
      // Atoms and postfix operators never need parentheses (postfix chains
      // like a*? parse left-to-right anyway).
      return 3;
  }
}

void Render(const Regex& re, const Alphabet& alphabet, int parent_prec,
            std::string* out) {
  int prec = Precedence(re.kind());
  bool parens = prec < parent_prec;
  if (parens) out->push_back('(');
  switch (re.kind()) {
    case RegexKind::kEmpty:
      out->append("<empty>");
      break;
    case RegexKind::kEpsilon:
      out->append("()");
      break;
    case RegexKind::kAtom:
      out->append(alphabet.SymbolName(re.symbol()));
      break;
    case RegexKind::kConcat:
      for (size_t i = 0; i < re.children().size(); ++i) {
        if (i > 0) out->push_back(' ');
        Render(*re.children()[i], alphabet, 1, out);
      }
      break;
    case RegexKind::kUnion:
      for (size_t i = 0; i < re.children().size(); ++i) {
        if (i > 0) out->append(" | ");
        Render(*re.children()[i], alphabet, 0, out);
      }
      break;
    case RegexKind::kStar:
      Render(*re.children()[0], alphabet, 3, out);
      out->push_back('*');
      break;
    case RegexKind::kPlus:
      Render(*re.children()[0], alphabet, 3, out);
      out->push_back('+');
      break;
    case RegexKind::kOptional:
      Render(*re.children()[0], alphabet, 3, out);
      out->push_back('?');
      break;
  }
  if (parens) out->push_back(')');
}

}  // namespace

std::string Regex::ToString(const Alphabet& alphabet) const {
  std::string out;
  Render(*this, alphabet, 0, &out);
  return out;
}

namespace {

// Thompson fragments: one entry, one exit per subexpression.
struct Fragment {
  uint32_t entry;
  uint32_t exit;
};

Fragment Build(const Regex& re, Nfa* nfa) {
  switch (re.kind()) {
    case RegexKind::kEmpty: {
      uint32_t in = nfa->AddState();
      uint32_t out = nfa->AddState();
      return {in, out};  // no path
    }
    case RegexKind::kEpsilon: {
      uint32_t in = nfa->AddState();
      uint32_t out = nfa->AddState();
      nfa->AddEpsilon(in, out);
      return {in, out};
    }
    case RegexKind::kAtom: {
      uint32_t in = nfa->AddState();
      uint32_t out = nfa->AddState();
      nfa->AddTransition(in, re.symbol(), out);
      return {in, out};
    }
    case RegexKind::kConcat: {
      Fragment first = Build(*re.children()[0], nfa);
      Fragment prev = first;
      for (size_t i = 1; i < re.children().size(); ++i) {
        Fragment next = Build(*re.children()[i], nfa);
        nfa->AddEpsilon(prev.exit, next.entry);
        prev = next;
      }
      return {first.entry, prev.exit};
    }
    case RegexKind::kUnion: {
      uint32_t in = nfa->AddState();
      uint32_t out = nfa->AddState();
      for (const RegexPtr& c : re.children()) {
        Fragment f = Build(*c, nfa);
        nfa->AddEpsilon(in, f.entry);
        nfa->AddEpsilon(f.exit, out);
      }
      return {in, out};
    }
    case RegexKind::kStar: {
      uint32_t in = nfa->AddState();
      uint32_t out = nfa->AddState();
      Fragment f = Build(*re.children()[0], nfa);
      nfa->AddEpsilon(in, out);
      nfa->AddEpsilon(in, f.entry);
      nfa->AddEpsilon(f.exit, out);
      nfa->AddEpsilon(f.exit, f.entry);
      return {in, out};
    }
    case RegexKind::kPlus: {
      uint32_t in = nfa->AddState();
      uint32_t out = nfa->AddState();
      Fragment f = Build(*re.children()[0], nfa);
      nfa->AddEpsilon(in, f.entry);
      nfa->AddEpsilon(f.exit, out);
      nfa->AddEpsilon(f.exit, f.entry);
      return {in, out};
    }
    case RegexKind::kOptional: {
      uint32_t in = nfa->AddState();
      uint32_t out = nfa->AddState();
      Fragment f = Build(*re.children()[0], nfa);
      nfa->AddEpsilon(in, out);
      nfa->AddEpsilon(in, f.entry);
      nfa->AddEpsilon(f.exit, out);
      return {in, out};
    }
  }
  RQ_CHECK(false);
  return {0, 0};
}

}  // namespace

Nfa Regex::ToNfa(uint32_t num_symbols) const {
  Nfa nfa(num_symbols);
  Fragment f = Build(*this, &nfa);
  nfa.AddInitial(f.entry);
  nfa.SetAccepting(f.exit);
  obs::RegexCounters& counters = obs::RegexCounters::Get();
  counters.nfa_builds.Increment();
  counters.nfa_states.Add(nfa.num_states());
  return nfa;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class RegexParser {
 public:
  RegexParser(std::string_view text, Alphabet* alphabet)
      : text_(text), alphabet_(alphabet) {}

  Result<RegexPtr> Parse() {
    RQ_ASSIGN_OR_RETURN(RegexPtr re, ParseUnion());
    SkipSpace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("regex: trailing input at offset " +
                                  std::to_string(pos_) + " in '" +
                                  std::string(text_) + "'");
    }
    return re;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtPrimaryStart() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    return c == '(' || std::isalpha(static_cast<unsigned char>(c)) ||
           c == '_';
  }

  Result<RegexPtr> ParseUnion() {
    std::vector<RegexPtr> parts;
    RQ_ASSIGN_OR_RETURN(RegexPtr first, ParseConcat());
    parts.push_back(std::move(first));
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '|') {
        ++pos_;
        RQ_ASSIGN_OR_RETURN(RegexPtr next, ParseConcat());
        parts.push_back(std::move(next));
      } else {
        break;
      }
    }
    return Regex::Union(std::move(parts));
  }

  Result<RegexPtr> ParseConcat() {
    std::vector<RegexPtr> parts;
    if (!AtPrimaryStart()) {
      return InvalidArgumentError("regex: expected expression at offset " +
                                  std::to_string(pos_) + " in '" +
                                  std::string(text_) + "'");
    }
    while (AtPrimaryStart()) {
      RQ_ASSIGN_OR_RETURN(RegexPtr part, ParsePostfix());
      parts.push_back(std::move(part));
    }
    return Regex::Concat(std::move(parts));
  }

  Result<RegexPtr> ParsePostfix() {
    RQ_ASSIGN_OR_RETURN(RegexPtr re, ParsePrimary());
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      if (c == '*') {
        re = Regex::Star(std::move(re));
        ++pos_;
      } else if (c == '+') {
        re = Regex::Plus(std::move(re));
        ++pos_;
      } else if (c == '?') {
        re = Regex::Optional(std::move(re));
        ++pos_;
      } else {
        break;
      }
    }
    return re;
  }

  Result<RegexPtr> ParsePrimary() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return InvalidArgumentError("regex: unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ')') {
        ++pos_;
        return Regex::Epsilon();
      }
      RQ_ASSIGN_OR_RETURN(RegexPtr inner, ParseUnion());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return InvalidArgumentError("regex: missing ')'");
      }
      ++pos_;
      return inner;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
      std::string_view name = text_.substr(start, pos_ - start);
      bool inverse = false;
      if (pos_ < text_.size() && text_[pos_] == '-') {
        inverse = true;
        ++pos_;
      }
      uint32_t label = alphabet_->InternLabel(name);
      return Regex::Atom(inverse ? InverseSymbolOf(label)
                                 : ForwardSymbolOf(label));
    }
    return InvalidArgumentError(std::string("regex: unexpected character '") +
                                c + "' at offset " + std::to_string(pos_));
  }

  std::string_view text_;
  Alphabet* alphabet_;
  size_t pos_ = 0;
};

}  // namespace

Result<RegexPtr> ParseRegex(std::string_view text, Alphabet* alphabet) {
  return RegexParser(text, alphabet).Parse();
}

RegexPtr RandomRegex(const Alphabet& alphabet, int max_depth,
                     bool allow_inverse, Rng& rng) {
  RQ_CHECK(alphabet.num_labels() > 0);
  auto random_atom = [&]() {
    uint32_t label = static_cast<uint32_t>(rng.Below(alphabet.num_labels()));
    bool inverse = allow_inverse && rng.Chance(0.35);
    return Regex::Atom(inverse ? InverseSymbolOf(label)
                               : ForwardSymbolOf(label));
  };
  if (max_depth <= 0) return random_atom();
  switch (rng.Below(8)) {
    case 0:
    case 1:
      return random_atom();
    case 2: {
      std::vector<RegexPtr> kids;
      size_t n = 2 + rng.Below(2);
      for (size_t i = 0; i < n; ++i) {
        kids.push_back(RandomRegex(alphabet, max_depth - 1, allow_inverse,
                                   rng));
      }
      return Regex::Concat(std::move(kids));
    }
    case 3: {
      std::vector<RegexPtr> kids;
      size_t n = 2 + rng.Below(2);
      for (size_t i = 0; i < n; ++i) {
        kids.push_back(RandomRegex(alphabet, max_depth - 1, allow_inverse,
                                   rng));
      }
      return Regex::Union(std::move(kids));
    }
    case 4:
      return Regex::Star(
          RandomRegex(alphabet, max_depth - 1, allow_inverse, rng));
    case 5:
      return Regex::Plus(
          RandomRegex(alphabet, max_depth - 1, allow_inverse, rng));
    case 6:
      return Regex::Optional(
          RandomRegex(alphabet, max_depth - 1, allow_inverse, rng));
    default: {
      std::vector<RegexPtr> kids;
      kids.push_back(RandomRegex(alphabet, max_depth - 1, allow_inverse, rng));
      kids.push_back(random_atom());
      return Regex::Concat(std::move(kids));
    }
  }
}

}  // namespace rq

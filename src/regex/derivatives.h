// Brzozowski derivatives: a second, automaton-free regular-expression
// engine.
//
// The derivative of a language L by symbol a is a⁻¹L = { w : aw ∈ L };
// Brzozowski showed derivatives of a regular expression are computable
// syntactically, giving matching (repeatedly differentiate, test
// nullability) without ever building an NFA. librq uses it as an
// independent oracle against the Thompson/subset machinery in tests, and
// as a lazily-unfolded deterministic automaton for containment checking.
#ifndef RQ_REGEX_DERIVATIVES_H_
#define RQ_REGEX_DERIVATIVES_H_

#include <vector>

#include "regex/regex.h"

namespace rq {

// True iff the empty word is in L(re).
bool IsNullable(const Regex& re);

// The derivative of re by `symbol`, lightly normalized (empties pruned,
// nested concatenations of epsilon collapsed) so repeated differentiation
// does not blow up syntactically.
RegexPtr Derivative(const RegexPtr& re, Symbol symbol);

// Membership by iterated derivatives.
bool DerivativeMatch(const RegexPtr& re, const std::vector<Symbol>& word);

// Language containment by a product walk over derivative pairs: explores
// pairs (d_w(r1), d_w(r2)) for growing w, memoized by printed form.
// Exact for regular expressions (the derivative space is finite modulo the
// normalization; `max_states` guards the memo table). Returns error if the
// guard is exceeded.
Result<bool> DerivativeContainment(const RegexPtr& r1, const RegexPtr& r2,
                                   uint32_t num_symbols,
                                   size_t max_states = 100000);

}  // namespace rq

#endif  // RQ_REGEX_DERIVATIVES_H_

#include "regex/simplify.h"

#include <map>
#include <string>

#include "regex/derivatives.h"

namespace rq {

namespace {

// Structural key for union deduplication (mirrors derivatives.cc).
void KeyInto(const Regex& re, std::string* out) {
  switch (re.kind()) {
    case RegexKind::kEmpty:
      out->append("0");
      return;
    case RegexKind::kEpsilon:
      out->append("e");
      return;
    case RegexKind::kAtom:
      out->append("a");
      out->append(std::to_string(re.symbol()));
      return;
    case RegexKind::kConcat:
      out->append("(.");
      break;
    case RegexKind::kUnion:
      out->append("(|");
      break;
    case RegexKind::kStar:
      out->append("(*");
      break;
    case RegexKind::kPlus:
      out->append("(+");
      break;
    case RegexKind::kOptional:
      out->append("(?");
      break;
  }
  for (const RegexPtr& c : re.children()) {
    out->push_back(' ');
    KeyInto(*c, out);
  }
  out->push_back(')');
}

std::string Key(const Regex& re) {
  std::string out;
  KeyInto(re, &out);
  return out;
}

RegexPtr SimplifyStar(RegexPtr child) {
  switch (child->kind()) {
    case RegexKind::kEmpty:
    case RegexKind::kEpsilon:
      return Regex::Epsilon();
    case RegexKind::kStar:
      return child;  // (r*)* = r*
    case RegexKind::kPlus:
    case RegexKind::kOptional:
      return Regex::Star(child->children()[0]);  // (r+)* = (r?)* = r*
    default:
      return Regex::Star(std::move(child));
  }
}

RegexPtr SimplifyPlus(RegexPtr child) {
  switch (child->kind()) {
    case RegexKind::kEmpty:
      return Regex::Empty();
    case RegexKind::kEpsilon:
      return Regex::Epsilon();
    case RegexKind::kStar:
      return child;  // (r*)+ = r*
    case RegexKind::kPlus:
      return child;  // (r+)+ = r+
    case RegexKind::kOptional:
      return Regex::Star(child->children()[0]);  // (r?)+ = r*
    default:
      if (IsNullable(*child)) {
        return Regex::Star(std::move(child));  // ε ∈ L(r): r+ = r*
      }
      return Regex::Plus(std::move(child));
  }
}

RegexPtr SimplifyOptional(RegexPtr child) {
  switch (child->kind()) {
    case RegexKind::kEmpty:
    case RegexKind::kEpsilon:
      return Regex::Epsilon();
    case RegexKind::kStar:
      return child;  // (r*)? = r*
    case RegexKind::kPlus:
      return Regex::Star(child->children()[0]);  // (r+)? = r*
    case RegexKind::kOptional:
      return child;
    default:
      if (IsNullable(*child)) return child;  // ε already in L(r)
      return Regex::Optional(std::move(child));
  }
}

}  // namespace

RegexPtr SimplifyRegex(const RegexPtr& re) {
  switch (re->kind()) {
    case RegexKind::kEmpty:
    case RegexKind::kEpsilon:
    case RegexKind::kAtom:
      return re;
    case RegexKind::kUnion: {
      // Simplify children, flatten, drop ∅, dedup (keep first occurrence
      // order for readability).
      std::vector<RegexPtr> flat;
      bool saw_epsilon_equivalent = false;
      for (const RegexPtr& c : re->children()) {
        RegexPtr s = SimplifyRegex(c);
        if (s->kind() == RegexKind::kEmpty) continue;
        if (s->kind() == RegexKind::kUnion) {
          for (const RegexPtr& g : s->children()) flat.push_back(g);
        } else {
          flat.push_back(std::move(s));
        }
      }
      std::map<std::string, size_t> seen;
      std::vector<RegexPtr> out;
      bool union_nullable = false;
      for (RegexPtr& c : flat) {
        std::string key = Key(*c);
        if (seen.contains(key)) continue;
        seen.emplace(std::move(key), out.size());
        union_nullable = union_nullable || IsNullable(*c);
        out.push_back(std::move(c));
      }
      if (out.empty()) return Regex::Empty();
      // ε | r with nullable r collapses: drop explicit ε if another
      // disjunct is nullable.
      if (out.size() > 1) {
        std::vector<RegexPtr> kept;
        for (RegexPtr& c : out) {
          if (c->kind() == RegexKind::kEpsilon) {
            bool other_nullable = false;
            for (const RegexPtr& other : out) {
              if (other.get() != c.get() && IsNullable(*other)) {
                other_nullable = true;
                break;
              }
            }
            if (other_nullable) continue;
          }
          kept.push_back(std::move(c));
        }
        out = std::move(kept);
      }
      (void)saw_epsilon_equivalent;
      return Regex::Union(std::move(out));
    }
    case RegexKind::kConcat: {
      std::vector<RegexPtr> flat;
      for (const RegexPtr& c : re->children()) {
        RegexPtr s = SimplifyRegex(c);
        if (s->kind() == RegexKind::kEmpty) return Regex::Empty();
        if (s->kind() == RegexKind::kEpsilon) continue;
        if (s->kind() == RegexKind::kConcat) {
          for (const RegexPtr& g : s->children()) flat.push_back(g);
        } else {
          flat.push_back(std::move(s));
        }
      }
      // r* r* = r*; r* r+ = r+ (and symmetric).
      std::vector<RegexPtr> out;
      for (RegexPtr& c : flat) {
        if (!out.empty()) {
          RegexPtr& prev = out.back();
          bool prev_star = prev->kind() == RegexKind::kStar;
          bool cur_star = c->kind() == RegexKind::kStar;
          if (prev_star && cur_star &&
              Key(*prev->children()[0]) == Key(*c->children()[0])) {
            continue;  // r* r* = r*
          }
          if (prev_star && c->kind() == RegexKind::kPlus &&
              Key(*prev->children()[0]) == Key(*c->children()[0])) {
            prev = c;  // r* r+ = r+
            continue;
          }
          if (prev->kind() == RegexKind::kPlus && cur_star &&
              Key(*prev->children()[0]) == Key(*c->children()[0])) {
            continue;  // r+ r* = r+
          }
        }
        out.push_back(std::move(c));
      }
      return Regex::Concat(std::move(out));
    }
    case RegexKind::kStar:
      return SimplifyStar(SimplifyRegex(re->children()[0]));
    case RegexKind::kPlus:
      return SimplifyPlus(SimplifyRegex(re->children()[0]));
    case RegexKind::kOptional:
      return SimplifyOptional(SimplifyRegex(re->children()[0]));
  }
  RQ_CHECK(false);
  return re;
}

}  // namespace rq

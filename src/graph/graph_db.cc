#include "graph/graph_db.h"

#include <algorithm>

#include "common/strings.h"
#include "graph/snapshot.h"

namespace rq {

NodeId GraphDb::AddNode() {
  node_names_.emplace_back();
  return static_cast<NodeId>(num_nodes_++);
}

NodeId GraphDb::AddNamedNode(std::string_view name) {
  auto it = node_index_.find(name);
  if (it != node_index_.end()) return it->second;
  NodeId id = static_cast<NodeId>(num_nodes_++);
  node_names_.emplace_back(name);
  node_index_.emplace(node_names_.back(), id);
  return id;
}

void GraphDb::EnsureNodes(size_t count) {
  while (num_nodes_ < count) AddNode();
}

std::string GraphDb::NodeName(NodeId node) const {
  RQ_CHECK(node < num_nodes_);
  if (node < node_names_.size() && !node_names_[node].empty()) {
    return node_names_[node];
  }
  return "n" + std::to_string(node);
}

Result<NodeId> GraphDb::FindNode(std::string_view name) const {
  auto it = node_index_.find(name);
  if (it == node_index_.end()) {
    return NotFoundError("unknown node: " + std::string(name));
  }
  return it->second;
}

void GraphDb::AddEdge(NodeId src, uint32_t label, NodeId dst) {
  RQ_CHECK(src < num_nodes_ && dst < num_nodes_);
  RQ_CHECK(label < alphabet_.num_labels());
  edges_.push_back({src, label, dst});
}

std::shared_ptr<const GraphSnapshot> GraphDb::Snapshot() const {
  return std::make_shared<GraphSnapshot>(*this);
}

std::vector<NodeId> GraphDb::Successors(NodeId node, Symbol symbol) const {
  std::vector<NodeId> out;
  uint32_t label = SymbolLabel(symbol);
  for (const Edge& e : edges_) {
    if (e.label != label) continue;
    if (IsInverseSymbol(symbol)) {
      if (e.dst == node) out.push_back(e.src);
    } else {
      if (e.src == node) out.push_back(e.dst);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::pair<NodeId, NodeId>> GraphDb::SymbolPairs(
    Symbol symbol) const {
  std::vector<std::pair<NodeId, NodeId>> out;
  uint32_t label = SymbolLabel(symbol);
  for (const Edge& e : edges_) {
    if (e.label != label) continue;
    if (IsInverseSymbol(symbol)) {
      out.emplace_back(e.dst, e.src);
    } else {
      out.emplace_back(e.src, e.dst);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string GraphDb::ToText() const {
  std::string out;
  for (const Edge& e : edges_) {
    out += NodeName(e.src);
    out.push_back(' ');
    out += alphabet_.LabelName(e.label);
    out.push_back(' ');
    out += NodeName(e.dst);
    out.push_back('\n');
  }
  return out;
}

Result<GraphDb> GraphDb::FromText(std::string_view text) {
  GraphDb db;
  size_t line_no = 0;
  for (const std::string& raw : StrSplit(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> parts;
    for (const std::string& p : StrSplit(line, ' ')) {
      if (!p.empty()) parts.push_back(p);
    }
    if (parts.size() != 3) {
      return InvalidArgumentError("graph line " + std::to_string(line_no) +
                                  ": expected 'src label dst'");
    }
    NodeId src = db.AddNamedNode(parts[0]);
    NodeId dst = db.AddNamedNode(parts[2]);
    db.AddEdge(src, parts[1], dst);
  }
  return db;
}

}  // namespace rq

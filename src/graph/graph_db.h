// Edge-labeled directed graph databases (paper §3.1).
//
// A graph database is a finite directed graph whose edges carry labels from
// a finite alphabet Sigma; an edge r(x, y) states that relation r holds
// between objects x and y. Nodes are dense uint32 ids with optional names;
// labels live in an Alphabet shared with the queries, so query symbols and
// edge labels agree by construction. Both directions are indexed: a
// traversal step over an inverse symbol r- walks r-edges backward, which is
// what 2RPQ semipath semantics require.
#ifndef RQ_GRAPH_GRAPH_DB_H_
#define RQ_GRAPH_GRAPH_DB_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "automata/alphabet.h"
#include "common/status.h"

namespace rq {

using NodeId = uint32_t;

struct Edge {
  NodeId src;
  uint32_t label;
  NodeId dst;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.label == b.label && a.dst == b.dst;
  }
};

class GraphDb {
 public:
  GraphDb() = default;

  // The label alphabet. Queries over this database should parse their
  // regexes against this same alphabet.
  Alphabet& alphabet() { return alphabet_; }
  const Alphabet& alphabet() const { return alphabet_; }

  // Adds an anonymous node.
  NodeId AddNode();
  // Adds (or finds) a named node.
  NodeId AddNamedNode(std::string_view name);
  // Ensures nodes 0..count-1 exist.
  void EnsureNodes(size_t count);

  // Node name, or "n<id>" for anonymous nodes.
  std::string NodeName(NodeId node) const;
  Result<NodeId> FindNode(std::string_view name) const;

  void AddEdge(NodeId src, uint32_t label, NodeId dst);
  void AddEdge(NodeId src, std::string_view label, NodeId dst) {
    AddEdge(src, alphabet_.InternLabel(label), dst);
  }

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  // Nodes reachable from `node` in one step over `symbol` (forward edges
  // for forward symbols, backward edges for inverse symbols). The returned
  // reference is invalidated by the next AddEdge.
  const std::vector<NodeId>& Successors(NodeId node, Symbol symbol) const;

  // All node pairs (x, y) connected by one `symbol` step, sorted.
  std::vector<std::pair<NodeId, NodeId>> SymbolPairs(Symbol symbol) const;

  // Serialization: one "src label dst" line per edge, node names preserved.
  std::string ToText() const;
  static Result<GraphDb> FromText(std::string_view text);

 private:
  void RebuildIndexIfNeeded() const;

  Alphabet alphabet_;
  size_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::string> node_names_;  // empty string = anonymous
  std::unordered_map<std::string, NodeId> node_index_;

  // adjacency_[node * num_symbols + symbol] -> successor list.
  mutable bool index_dirty_ = true;
  mutable size_t indexed_symbols_ = 0;
  mutable std::vector<std::vector<NodeId>> adjacency_;
  mutable std::vector<NodeId> empty_;
};

}  // namespace rq

#endif  // RQ_GRAPH_GRAPH_DB_H_

// Edge-labeled directed graph databases (paper §3.1).
//
// A graph database is a finite directed graph whose edges carry labels from
// a finite alphabet Sigma; an edge r(x, y) states that relation r holds
// between objects x and y. Nodes are dense uint32 ids with optional names;
// labels live in an Alphabet shared with the queries, so query symbols and
// edge labels agree by construction. Both directions are indexed: a
// traversal step over an inverse symbol r- walks r-edges backward, which is
// what 2RPQ semipath semantics require.
//
// Thread-safety contract (docs/EVALUATION.md has the long form):
//   * GraphDb is a plain container: writes (AddNode/AddEdge/...) require
//     external synchronization, like a std::vector. No const method
//     mutates hidden state — the lazily-rebuilt adjacency index that used
//     to make concurrent const readers race is gone.
//   * Once mutation stops, any number of threads may read concurrently.
//   * Evaluation hot paths do not touch GraphDb at all: they run over an
//     immutable GraphSnapshot (graph/snapshot.h) obtained from
//     Snapshot(). The snapshot is a frozen CSR copy — it stays valid and
//     safely shareable across threads for its whole lifetime, no matter
//     what is done to the GraphDb afterwards.
//   * Aliasing contract (load-bearing for the live-mutation serving path,
//     docs/SERVING.md "Updates"): a GraphSnapshot shares NO storage with
//     the GraphDb it was built from — construction copies every edge into
//     the snapshot's own offset/target arrays. AddEdge / AddNode /
//     AddNamedNode after Snapshot() therefore never invalidate, resize
//     under, or otherwise touch memory a live snapshot reads; a writer may
//     keep mutating and re-snapshotting (serialized among writers) while
//     readers iterate older snapshots concurrently. What remains UNSAFE is
//     only the build itself: Snapshot() reads the edge vector, so it must
//     not run concurrently with a write to the same GraphDb.
//     tests/graph/snapshot_concurrency_test.cc pins this down under tsan.
#ifndef RQ_GRAPH_GRAPH_DB_H_
#define RQ_GRAPH_GRAPH_DB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "automata/alphabet.h"
#include "common/status.h"
#include "common/strings.h"

namespace rq {

using NodeId = uint32_t;

class GraphSnapshot;

struct Edge {
  NodeId src;
  uint32_t label;
  NodeId dst;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.label == b.label && a.dst == b.dst;
  }
};

class GraphDb {
 public:
  GraphDb() = default;

  // The label alphabet. Queries over this database should parse their
  // regexes against this same alphabet.
  Alphabet& alphabet() { return alphabet_; }
  const Alphabet& alphabet() const { return alphabet_; }

  // Adds an anonymous node.
  NodeId AddNode();
  // Adds (or finds) a named node.
  NodeId AddNamedNode(std::string_view name);
  // Ensures nodes 0..count-1 exist.
  void EnsureNodes(size_t count);

  // Node name, or "n<id>" for anonymous nodes.
  std::string NodeName(NodeId node) const;
  Result<NodeId> FindNode(std::string_view name) const;

  void AddEdge(NodeId src, uint32_t label, NodeId dst);
  void AddEdge(NodeId src, std::string_view label, NodeId dst) {
    AddEdge(src, alphabet_.InternLabel(label), dst);
  }

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  // Freezes the current edge set into an immutable CSR snapshot
  // (graph/snapshot.h) — the representation every evaluation hot path
  // runs on. Built eagerly, each call; hold the handle across an
  // evaluation (or batch of them) rather than re-snapshotting per query.
  // Safe to call from concurrent readers; not concurrently with writes.
  std::shared_ptr<const GraphSnapshot> Snapshot() const;

  // Nodes reachable from `node` in one step over `symbol` (forward edges
  // for forward symbols, backward edges for inverse symbols), sorted and
  // deduplicated.
  //
  // Convenience for tests and one-off probes: every call is an O(edges)
  // scan with no hidden index (so it is safe under concurrent const
  // readers and the result, returned by value, never dangles). Hot paths
  // must use Snapshot()->Successors(), which is O(1) per step.
  std::vector<NodeId> Successors(NodeId node, Symbol symbol) const;

  // All node pairs (x, y) connected by one `symbol` step, sorted.
  // O(edges) scan; prefer Snapshot()->SymbolPairs() in hot paths.
  std::vector<std::pair<NodeId, NodeId>> SymbolPairs(Symbol symbol) const;

  // Serialization: one "src label dst" line per edge, node names preserved.
  std::string ToText() const;
  static Result<GraphDb> FromText(std::string_view text);

 private:
  Alphabet alphabet_;
  size_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::string> node_names_;  // empty string = anonymous
  StringMap<NodeId> node_index_;  // transparent: string_view lookups
};

}  // namespace rq

#endif  // RQ_GRAPH_GRAPH_DB_H_

// Synthetic graph-database generators.
//
// The paper carries no datasets (it is an overview paper), so every workload
// in the tests and benchmarks is generated here, deterministically from an
// explicit seed.
#ifndef RQ_GRAPH_GENERATORS_H_
#define RQ_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph_db.h"

namespace rq {

// Uniform random edges: `num_edges` edges among `num_nodes` nodes, labels
// drawn uniformly from `labels`.
GraphDb RandomGraph(size_t num_nodes, size_t num_edges,
                    const std::vector<std::string>& labels, uint64_t seed);

// Directed path 0 -> 1 -> ... -> n-1, all edges labeled `label`.
GraphDb PathGraph(size_t num_nodes, const std::string& label);

// Directed cycle over n nodes labeled `label`.
GraphDb CycleGraph(size_t num_nodes, const std::string& label);

// w x h grid with "right" and "down" edges.
GraphDb GridGraph(size_t width, size_t height);

// Layered DAG: `layers` layers of `width` nodes; every consecutive pair of
// layers gets `edges_per_layer` random edges with labels from `labels`.
GraphDb LayeredDag(size_t layers, size_t width, size_t edges_per_layer,
                   const std::vector<std::string>& labels, uint64_t seed);

// A small synthetic social network: "knows" edges grown by preferential
// attachment, "member" edges into group nodes, "posted"/"likes" edges into
// post nodes. Used by the examples and the evaluation benches.
GraphDb SocialNetwork(size_t num_people, size_t num_groups, size_t num_posts,
                      uint64_t seed);

// The canonical line database of a word over Sigma±: nodes 0..n with, for
// each position i, a forward edge (i-1 -> i) for a forward symbol or a
// backward edge (i -> i-1) for an inverse symbol. Evaluating a 2RPQ Q on
// this database answers (0, n) iff some word of L(Q) folds onto the word —
// this is how 2RPQ containment counterexamples are validated. The word's
// labels must already be interned in `db->alphabet()`.
struct SemipathEndpoints {
  NodeId start;
  NodeId end;
};
SemipathEndpoints AppendSemipath(GraphDb* db, const std::vector<Symbol>& word);

}  // namespace rq

#endif  // RQ_GRAPH_GENERATORS_H_

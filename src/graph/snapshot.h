// Immutable CSR snapshots of a graph database.
//
// GraphSnapshot freezes a GraphDb's adjacency structure into per-symbol
// compressed-sparse-row arrays: one offsets/targets pair covering every
// (symbol, node) bucket, forward and inverse symbols alike, each bucket
// sorted and deduplicated. The snapshot owns its arrays and never mutates
// after construction, which makes it safe by construction where the old
// lazily-rebuilt index raced:
//
//   * Any number of threads may call any const method concurrently, with
//     no locks — the product-BFS evaluation hot paths (pathquery/,
//     crpq/) fan sources across worker threads over one shared snapshot.
//   * Successors() returns a std::span into the snapshot's own arrays;
//     it stays valid for the snapshot's lifetime regardless of what
//     happens to the originating GraphDb (AddEdge on the GraphDb is
//     invisible to existing snapshots — take a new snapshot to see it).
//
// Build cost is O(nodes * symbols + edges) time and one counting sort; a
// snapshot is a value you take once per evaluation (or batch of
// evaluations), not per step. Obtain one with GraphDb::Snapshot(), which
// returns a shared_ptr handle that is cheap to copy across threads.
#ifndef RQ_GRAPH_SNAPSHOT_H_
#define RQ_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph_db.h"

namespace rq {

class GraphSnapshot {
 public:
  // Builds the CSR arrays from the database's current edge set. Prefer
  // GraphDb::Snapshot(), which wraps the result in a shared handle.
  // Must not run concurrently with mutation of `db` (GraphDb writes are
  // externally synchronized); may run concurrently with other readers.
  explicit GraphSnapshot(const GraphDb& db);
  ~GraphSnapshot();

  // The CSR arrays carry a durable mem.graph_bytes charge for the
  // snapshot's lifetime (common/mem.h); copying would double-release it.
  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  // Bytes held by the CSR arrays (the durable charge above).
  size_t ApproxBytes() const { return mem_bytes_; }

  size_t num_nodes() const { return num_nodes_; }
  // Symbols indexed at snapshot time (2 * labels interned back then).
  // Symbols interned afterwards simply have no edges here: Successors()
  // bounds-checks and returns an empty span for them.
  size_t num_symbols() const { return num_symbols_; }
  size_t num_edges() const { return num_edges_; }

  // Nodes reachable from `node` in one step over `symbol` (forward edges
  // for forward symbols, backward edges for inverse symbols), sorted and
  // deduplicated. Out-of-range node or symbol yields an empty span. The
  // span is valid for the lifetime of this snapshot.
  std::span<const NodeId> Successors(NodeId node, Symbol symbol) const {
    if (node >= num_nodes_ || symbol >= num_symbols_) return {};
    size_t row = static_cast<size_t>(symbol) * num_nodes_ + node;
    return {targets_.data() + offsets_[row],
            offsets_[row + 1] - offsets_[row]};
  }

  size_t OutDegree(NodeId node, Symbol symbol) const {
    return Successors(node, symbol).size();
  }

  // All node pairs (x, y) connected by one `symbol` step, sorted and
  // deduplicated. Served straight from the CSR rows — O(answer), not the
  // O(edges) rescan GraphDb::SymbolPairs pays.
  std::vector<std::pair<NodeId, NodeId>> SymbolPairs(Symbol symbol) const;

 private:
  size_t num_nodes_ = 0;
  size_t num_symbols_ = 0;
  size_t num_edges_ = 0;
  // Bucket for (symbol, node) is targets_[offsets_[symbol * num_nodes +
  // node] .. offsets_[symbol * num_nodes + node + 1]).
  std::vector<uint32_t> offsets_;
  std::vector<NodeId> targets_;
  size_t mem_bytes_ = 0;
};

// The shared handle GraphDb::Snapshot() returns: copy it freely across
// threads; the arrays live until the last handle drops.
using GraphSnapshotPtr = std::shared_ptr<const GraphSnapshot>;

}  // namespace rq

#endif  // RQ_GRAPH_SNAPSHOT_H_

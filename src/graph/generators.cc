#include "graph/generators.h"

namespace rq {

GraphDb RandomGraph(size_t num_nodes, size_t num_edges,
                    const std::vector<std::string>& labels, uint64_t seed) {
  RQ_CHECK(num_nodes > 0 && !labels.empty());
  GraphDb db;
  db.EnsureNodes(num_nodes);
  std::vector<uint32_t> label_ids;
  label_ids.reserve(labels.size());
  for (const std::string& l : labels) {
    label_ids.push_back(db.alphabet().InternLabel(l));
  }
  Rng rng(seed);
  for (size_t i = 0; i < num_edges; ++i) {
    NodeId src = static_cast<NodeId>(rng.Below(num_nodes));
    NodeId dst = static_cast<NodeId>(rng.Below(num_nodes));
    uint32_t label = label_ids[rng.Below(label_ids.size())];
    db.AddEdge(src, label, dst);
  }
  return db;
}

GraphDb PathGraph(size_t num_nodes, const std::string& label) {
  RQ_CHECK(num_nodes > 0);
  GraphDb db;
  db.EnsureNodes(num_nodes);
  uint32_t l = db.alphabet().InternLabel(label);
  for (size_t i = 0; i + 1 < num_nodes; ++i) {
    db.AddEdge(static_cast<NodeId>(i), l, static_cast<NodeId>(i + 1));
  }
  return db;
}

GraphDb CycleGraph(size_t num_nodes, const std::string& label) {
  GraphDb db = PathGraph(num_nodes, label);
  if (num_nodes > 1) {
    uint32_t l = db.alphabet().InternLabel(label);
    db.AddEdge(static_cast<NodeId>(num_nodes - 1), l, 0);
  }
  return db;
}

GraphDb GridGraph(size_t width, size_t height) {
  RQ_CHECK(width > 0 && height > 0);
  GraphDb db;
  db.EnsureNodes(width * height);
  uint32_t right = db.alphabet().InternLabel("right");
  uint32_t down = db.alphabet().InternLabel("down");
  auto id = [&](size_t x, size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (size_t y = 0; y < height; ++y) {
    for (size_t x = 0; x < width; ++x) {
      if (x + 1 < width) db.AddEdge(id(x, y), right, id(x + 1, y));
      if (y + 1 < height) db.AddEdge(id(x, y), down, id(x, y + 1));
    }
  }
  return db;
}

GraphDb LayeredDag(size_t layers, size_t width, size_t edges_per_layer,
                   const std::vector<std::string>& labels, uint64_t seed) {
  RQ_CHECK(layers > 0 && width > 0 && !labels.empty());
  GraphDb db;
  db.EnsureNodes(layers * width);
  std::vector<uint32_t> label_ids;
  for (const std::string& l : labels) {
    label_ids.push_back(db.alphabet().InternLabel(l));
  }
  Rng rng(seed);
  for (size_t layer = 0; layer + 1 < layers; ++layer) {
    for (size_t e = 0; e < edges_per_layer; ++e) {
      NodeId src = static_cast<NodeId>(layer * width + rng.Below(width));
      NodeId dst =
          static_cast<NodeId>((layer + 1) * width + rng.Below(width));
      db.AddEdge(src, label_ids[rng.Below(label_ids.size())], dst);
    }
  }
  return db;
}

GraphDb SocialNetwork(size_t num_people, size_t num_groups, size_t num_posts,
                      uint64_t seed) {
  RQ_CHECK(num_people >= 2);
  GraphDb db;
  uint32_t knows = db.alphabet().InternLabel("knows");
  uint32_t member = db.alphabet().InternLabel("member");
  uint32_t posted = db.alphabet().InternLabel("posted");
  uint32_t likes = db.alphabet().InternLabel("likes");
  Rng rng(seed);

  // People 0..num_people-1. Preferential attachment on "knows": each new
  // person knows ~2 earlier people, biased toward endpoints of existing
  // edges.
  db.EnsureNodes(num_people);
  std::vector<NodeId> endpoint_pool = {0};
  for (size_t p = 1; p < num_people; ++p) {
    size_t degree = 1 + rng.Below(2);
    for (size_t d = 0; d < degree; ++d) {
      NodeId target;
      if (rng.Chance(0.6)) {
        target = endpoint_pool[rng.Below(endpoint_pool.size())];
      } else {
        target = static_cast<NodeId>(rng.Below(p));
      }
      if (target == p) continue;
      db.AddEdge(static_cast<NodeId>(p), knows, target);
      endpoint_pool.push_back(static_cast<NodeId>(p));
      endpoint_pool.push_back(target);
    }
  }
  // Groups: each person joins 0-2 groups.
  NodeId first_group = static_cast<NodeId>(db.num_nodes());
  db.EnsureNodes(db.num_nodes() + num_groups);
  if (num_groups > 0) {
    for (size_t p = 0; p < num_people; ++p) {
      size_t memberships = rng.Below(3);
      for (size_t g = 0; g < memberships; ++g) {
        db.AddEdge(static_cast<NodeId>(p), member,
                   first_group + static_cast<NodeId>(rng.Below(num_groups)));
      }
    }
  }
  // Posts: authored by a random person, liked by 0-3 others.
  NodeId first_post = static_cast<NodeId>(db.num_nodes());
  db.EnsureNodes(db.num_nodes() + num_posts);
  for (size_t i = 0; i < num_posts; ++i) {
    NodeId post = first_post + static_cast<NodeId>(i);
    db.AddEdge(static_cast<NodeId>(rng.Below(num_people)), posted, post);
    size_t nlikes = rng.Below(4);
    for (size_t l = 0; l < nlikes; ++l) {
      db.AddEdge(static_cast<NodeId>(rng.Below(num_people)), likes, post);
    }
  }
  return db;
}

SemipathEndpoints AppendSemipath(GraphDb* db,
                                 const std::vector<Symbol>& word) {
  NodeId start = db->AddNode();
  NodeId prev = start;
  for (Symbol s : word) {
    NodeId next = db->AddNode();
    uint32_t label = SymbolLabel(s);
    RQ_CHECK(label < db->alphabet().num_labels());
    if (IsInverseSymbol(s)) {
      db->AddEdge(next, label, prev);
    } else {
      db->AddEdge(prev, label, next);
    }
    prev = next;
  }
  return {start, prev};
}

}  // namespace rq

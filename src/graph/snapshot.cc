#include "graph/snapshot.h"

#include <algorithm>

#include "common/mem.h"
#include "obs/subsystems.h"

namespace rq {

GraphSnapshot::GraphSnapshot(const GraphDb& db)
    : num_nodes_(db.num_nodes()),
      num_symbols_(db.alphabet().num_symbols()),
      num_edges_(db.num_edges()) {
  const size_t rows = num_nodes_ * num_symbols_;
  // Every edge lands in exactly two buckets (forward + inverse), so the
  // pre-dedup target count is 2 * edges; uint32 offsets cap the snapshot
  // at ~2B adjacency entries, far beyond in-memory graph sizes here.
  RQ_CHECK(db.num_edges() * 2 <= 0xffffffffull);
  offsets_.assign(rows + 1, 0);

  // Counting sort: bucket sizes, prefix-sum into offsets, then fill.
  for (const Edge& e : db.edges()) {
    ++offsets_[static_cast<size_t>(ForwardSymbolOf(e.label)) * num_nodes_ +
               e.src + 1];
    ++offsets_[static_cast<size_t>(InverseSymbolOf(e.label)) * num_nodes_ +
               e.dst + 1];
  }
  for (size_t row = 0; row < rows; ++row) offsets_[row + 1] += offsets_[row];
  targets_.resize(offsets_[rows]);
  std::vector<uint32_t> fill(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : db.edges()) {
    targets_[fill[static_cast<size_t>(ForwardSymbolOf(e.label)) * num_nodes_ +
                  e.src]++] = e.dst;
    targets_[fill[static_cast<size_t>(InverseSymbolOf(e.label)) * num_nodes_ +
                  e.dst]++] = e.src;
  }

  // Sort each bucket and compact out duplicate parallel edges in place.
  // Rows are processed in offset order, so the write cursor never passes
  // a row still waiting to be read.
  uint32_t write = 0;
  for (size_t row = 0; row < rows; ++row) {
    uint32_t begin = offsets_[row];
    uint32_t end = offsets_[row + 1];
    std::sort(targets_.begin() + begin, targets_.begin() + end);
    offsets_[row] = write;
    for (uint32_t i = begin; i < end; ++i) {
      if (i > begin && targets_[i] == targets_[i - 1]) continue;
      targets_[write++] = targets_[i];
    }
  }
  offsets_[rows] = write;
  targets_.resize(write);
  targets_.shrink_to_fit();

  // Snapshots outlive any single query (shared handles), so their CSR
  // arrays are a durable mem.graph_bytes charge, released on destruction.
  mem_bytes_ = offsets_.capacity() * sizeof(uint32_t) +
               targets_.capacity() * sizeof(NodeId) + sizeof(*this);
  MemChargeDurable(MemSubsystem::kGraph, static_cast<int64_t>(mem_bytes_));

  obs::GraphEvalCounters::Get().snapshots.Increment();
}

GraphSnapshot::~GraphSnapshot() {
  MemReleaseDurable(MemSubsystem::kGraph, static_cast<int64_t>(mem_bytes_));
}

std::vector<std::pair<NodeId, NodeId>> GraphSnapshot::SymbolPairs(
    Symbol symbol) const {
  std::vector<std::pair<NodeId, NodeId>> out;
  if (symbol >= num_symbols_) return out;
  const size_t base = static_cast<size_t>(symbol) * num_nodes_;
  out.reserve(offsets_[base + num_nodes_] - offsets_[base]);
  for (NodeId x = 0; x < num_nodes_; ++x) {
    for (uint32_t i = offsets_[base + x]; i < offsets_[base + x + 1]; ++i) {
      out.emplace_back(x, targets_[i]);
    }
  }
  return out;  // already sorted: outer loop ascending, buckets sorted
}

}  // namespace rq

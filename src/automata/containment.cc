#include "automata/containment.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "automata/dfa.h"
#include "automata/ops.h"
#include "cache/automata_cache.h"
#include "common/deadline.h"
#include "common/mem.h"
#include "obs/subsystems.h"
#include "obs/trace.h"

namespace rq {

namespace {

// Flushes one finished check into the containment counter vocabulary
// (docs/OBSERVABILITY.md). Counts are batched per check, not per node, so
// the search loops stay free of shared-memory traffic.
void RecordCheck(obs::ScopedSpan& span,
                 const LanguageContainmentResult& result) {
  obs::ContainmentCounters& counters = obs::ContainmentCounters::Get();
  counters.checks.Increment();
  counters.states_explored.Add(result.explored_states);
  counters.states_explored_per_check.Record(result.explored_states);
  if (!result.contained) counters.refuted.Increment();
  span.AddAttr("states_explored", result.explored_states);
}

struct PairKey {
  uint32_t a_state;
  uint32_t subset_id;

  friend bool operator==(const PairKey& x, const PairKey& y) {
    return x.a_state == y.a_state && x.subset_id == y.subset_id;
  }
};

struct PairKeyHash {
  size_t operator()(const PairKey& k) const {
    // splitmix64 finalizer over both fields: well-mixed in either half and,
    // unlike a size_t shift by 32, defined on 32-bit size_t targets.
    uint64_t z = (static_cast<uint64_t>(k.a_state) << 32) | k.subset_id;
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};

struct SubsetHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (uint32_t x : v) {
      h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

LanguageContainmentResult CheckLanguageContainmentImpl(const Nfa& a_in,
                                                       const Nfa& b_in) {
  RQ_CHECK(a_in.num_symbols() == b_in.num_symbols());
  // Memoized (or aliasing, if already epsilon-free) views; see
  // docs/CACHING.md.
  std::shared_ptr<const Nfa> a_ptr = cache::CachedEpsilonFree(a_in);
  std::shared_ptr<const Nfa> b_ptr = cache::CachedEpsilonFree(b_in);
  const Nfa& a = *a_ptr;
  const Nfa& b = *b_ptr;

  LanguageContainmentResult result;

  // The subset table and search frontier are the blowup of this procedure:
  // worst case 2^|b| interned subsets. The CheckExecContext poll in the
  // search loop enforces any installed memory budget.
  MemScope mem_scope(MemSubsystem::kAutomata);

  // Intern b-subsets so search nodes are small.
  std::unordered_map<std::vector<uint32_t>, uint32_t, SubsetHash> subset_ids;
  std::vector<std::vector<uint32_t>> subsets;
  std::vector<bool> subset_accepting;
  auto intern_subset = [&](std::vector<uint32_t> subset) {
    auto it = subset_ids.find(subset);
    if (it != subset_ids.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(subsets.size());
    bool accepting = false;
    for (uint32_t s : subset) accepting = accepting || b.IsAccepting(s);
    // Interned twice (map key + table row) plus the id/flag bookkeeping.
    MemCharge(static_cast<int64_t>(
        2 * subset.size() * sizeof(uint32_t) + 2 * sizeof(uint32_t)));
    subset_ids.emplace(subset, id);
    subsets.push_back(std::move(subset));
    subset_accepting.push_back(accepting);
    return id;
  };

  struct Node {
    PairKey key;
    uint32_t parent;  // index into nodes, or UINT32_MAX
    Symbol via;
  };
  std::vector<Node> nodes;
  std::unordered_map<PairKey, uint32_t, PairKeyHash> seen;
  std::deque<uint32_t> work;

  uint32_t b0 = intern_subset(b.EpsilonClosure(b.initial()));
  for (uint32_t s : a.initial()) {
    PairKey key{s, b0};
    if (seen.contains(key)) continue;
    seen.emplace(key, static_cast<uint32_t>(nodes.size()));
    nodes.push_back({key, 0xffffffffu, kInvalidSymbol});
    work.push_back(static_cast<uint32_t>(nodes.size() - 1));
  }

  auto extract_word = [&](uint32_t idx) {
    std::vector<Symbol> word;
    for (uint32_t i = idx; i != 0xffffffffu; i = nodes[i].parent) {
      if (nodes[i].via != kInvalidSymbol) word.push_back(nodes[i].via);
    }
    std::reverse(word.begin(), word.end());
    return word;
  };

  while (!work.empty()) {
    if (Status s = CheckExecContext(); !s.ok()) {
      result.status = std::move(s);
      return result;
    }
    uint32_t idx = work.front();
    work.pop_front();
    PairKey key = nodes[idx].key;
    ++result.explored_states;
    if (a.IsAccepting(key.a_state) && !subset_accepting[key.subset_id]) {
      result.contained = false;
      result.counterexample = extract_word(idx);
      return result;
    }
    // Group transitions of the A-state by symbol so each symbol computes the
    // B-subset successor once.
    const auto& trans = a.TransitionsFrom(key.a_state);
    for (size_t i = 0; i < trans.size();) {
      Symbol symbol = trans[i].symbol;
      // subsets may reallocate during intern; take a copy of the source.
      std::vector<uint32_t> source = subsets[key.subset_id];
      uint32_t next_subset = intern_subset(b.Step(source, symbol));
      for (; i < trans.size() && trans[i].symbol == symbol; ++i) {
        PairKey next{trans[i].to, next_subset};
        if (seen.contains(next)) continue;
        seen.emplace(next, static_cast<uint32_t>(nodes.size()));
        nodes.push_back({next, idx, symbol});
        work.push_back(static_cast<uint32_t>(nodes.size() - 1));
        MemCharge(static_cast<int64_t>(sizeof(Node) + sizeof(PairKey) +
                                       2 * sizeof(uint32_t)));
      }
    }
  }
  result.contained = true;
  return result;
}

LanguageContainmentResult CheckLanguageContainmentAntichainImpl(
    const Nfa& a_in, const Nfa& b_in) {
  RQ_CHECK(a_in.num_symbols() == b_in.num_symbols());
  std::shared_ptr<const Nfa> a_ptr = cache::CachedEpsilonFree(a_in);
  std::shared_ptr<const Nfa> b_ptr = cache::CachedEpsilonFree(b_in);
  const Nfa& a = *a_ptr;
  const Nfa& b = *b_ptr;

  LanguageContainmentResult result;

  // Same blowup surface as the OTF checker, pruned by ⊆-subsumption; the
  // antichains and queued nodes carry uninterned subset copies.
  MemScope mem_scope(MemSubsystem::kAutomata);

  struct Node {
    uint32_t a_state;
    std::vector<uint32_t> subset;
    uint32_t parent;
    Symbol via;
  };
  std::vector<Node> nodes;
  std::deque<uint32_t> work;
  // Per A-state antichain of ⊆-minimal explored subsets.
  std::vector<std::vector<std::vector<uint32_t>>> antichain(a.num_states());

  auto subset_of = [](const std::vector<uint32_t>& x,
                      const std::vector<uint32_t>& y) {
    return std::includes(y.begin(), y.end(), x.begin(), x.end());
  };
  auto push = [&](uint32_t a_state, std::vector<uint32_t> subset,
                  uint32_t parent, Symbol via) {
    auto& chain = antichain[a_state];
    for (const auto& existing : chain) {
      if (subset_of(existing, subset)) return;  // subsumed
    }
    // Remove supersets of the new subset.
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [&](const std::vector<uint32_t>& existing) {
                                 return subset_of(subset, existing);
                               }),
                chain.end());
    // Antichain copy + node copy (the pruned supersets above are not
    // released individually; the function-level scope squares the books).
    MemCharge(static_cast<int64_t>(2 * subset.size() * sizeof(uint32_t) +
                                   sizeof(Node) + sizeof(uint32_t)));
    chain.push_back(subset);
    nodes.push_back({a_state, std::move(subset), parent, via});
    work.push_back(static_cast<uint32_t>(nodes.size() - 1));
  };

  std::vector<uint32_t> b0 = b.EpsilonClosure(b.initial());
  for (uint32_t s : a.initial()) push(s, b0, 0xffffffffu, kInvalidSymbol);

  auto subset_accepting = [&](const std::vector<uint32_t>& subset) {
    for (uint32_t s : subset) {
      if (b.IsAccepting(s)) return true;
    }
    return false;
  };

  while (!work.empty()) {
    if (Status s = CheckExecContext(); !s.ok()) {
      result.status = std::move(s);
      return result;
    }
    uint32_t idx = work.front();
    work.pop_front();
    // Note: a node may have been superseded in the antichain after being
    // queued; exploring it anyway is sound (just possibly redundant).
    ++result.explored_states;
    if (a.IsAccepting(nodes[idx].a_state) &&
        !subset_accepting(nodes[idx].subset)) {
      std::vector<Symbol> word;
      for (uint32_t i = idx; i != 0xffffffffu; i = nodes[i].parent) {
        if (nodes[i].via != kInvalidSymbol) word.push_back(nodes[i].via);
      }
      std::reverse(word.begin(), word.end());
      result.contained = false;
      result.counterexample = std::move(word);
      return result;
    }
    const auto& trans = a.TransitionsFrom(nodes[idx].a_state);
    for (size_t i = 0; i < trans.size();) {
      Symbol symbol = trans[i].symbol;
      std::vector<uint32_t> next_subset = b.Step(nodes[idx].subset, symbol);
      for (; i < trans.size() && trans[i].symbol == symbol; ++i) {
        push(trans[i].to, next_subset, idx, symbol);
      }
    }
  }
  result.contained = true;
  return result;
}

LanguageContainmentResult CheckLanguageContainmentExplicitImpl(const Nfa& a,
                                                               const Nfa& b) {
  RQ_CHECK(a.num_symbols() == b.num_symbols());
  LanguageContainmentResult result;
  if (Status s = CheckExecContext(); !s.ok()) {
    result.status = std::move(s);
    return result;
  }
  // Determinize stops early when the context trips; poll again afterwards
  // so a truncated complement is never used for a verdict.
  std::shared_ptr<const Dfa> complement = cache::CachedComplementToDfa(b);
  if (Status s = CheckExecContext(); !s.ok()) {
    result.status = std::move(s);
    return result;
  }
  Nfa diff = Intersect(a, NfaFromDfa(*complement));
  result.explored_states = diff.num_states();
  std::vector<Symbol> witness;
  bool empty = diff.IsEmptyLanguage(&witness);
  result.contained = empty;
  if (!empty) result.counterexample = std::move(witness);
  return result;
}

// Shared wrapper: consult the verdict cache, otherwise run `impl` under a
// span and flush the containment counters. On a cache hit only cache.*
// counters move — containment.checks / states_explored track actual
// decision-procedure work (docs/OBSERVABILITY.md).
template <typename Impl>
LanguageContainmentResult CheckWithVerdictCache(const char* span_name,
                                                const char* algo,
                                                const Nfa& a, const Nfa& b,
                                                Impl impl) {
  cache::AutomataCache& ac = cache::AutomataCache::Global();
  std::string key;
  if (ac.enabled()) {
    key = cache::VerdictKey(algo, a, b);
    if (auto hit = ac.verdict().Get(key)) return *hit;
  }
  RQ_TRACE_SPAN_VAR(span, span_name);
  LanguageContainmentResult result = impl(a, b);
  RecordCheck(span, result);
  // Never cache a verdict cut short by deadline/cancellation — it is not a
  // verdict, and the key would otherwise serve it to unbounded callers.
  if (ac.enabled() && result.status.ok()) {
    ac.verdict().Put(std::move(key), result, cache::ApproxBytes(result));
  }
  return result;
}

}  // namespace

LanguageContainmentResult CheckLanguageContainment(const Nfa& a, const Nfa& b) {
  return CheckWithVerdictCache("containment.check", "otf", a, b,
                               CheckLanguageContainmentImpl);
}

LanguageContainmentResult CheckLanguageContainmentAntichain(const Nfa& a,
                                                            const Nfa& b) {
  return CheckWithVerdictCache("containment.check_antichain", "antichain", a,
                               b, CheckLanguageContainmentAntichainImpl);
}

LanguageContainmentResult CheckLanguageContainmentExplicit(const Nfa& a,
                                                           const Nfa& b) {
  return CheckWithVerdictCache("containment.check_explicit", "explicit", a, b,
                               CheckLanguageContainmentExplicitImpl);
}

bool LanguagesEqual(const Nfa& a, const Nfa& b) {
  return CheckLanguageContainment(a, b).contained &&
         CheckLanguageContainment(b, a).contained;
}

}  // namespace rq

#include "automata/alphabet.h"

#include <algorithm>

#include "common/strings.h"

namespace rq {

uint32_t Alphabet::InternLabel(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(labels_.size());
  labels_.emplace_back(name);
  index_.emplace(labels_.back(), id);
  return id;
}

Result<uint32_t> Alphabet::FindLabel(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return NotFoundError("unknown label: " + std::string(name));
  }
  return it->second;
}

std::string Alphabet::SymbolName(Symbol s) const {
  std::string out = LabelName(SymbolLabel(s));
  if (IsInverseSymbol(s)) out.push_back('-');
  return out;
}

Result<Symbol> Alphabet::ParseSymbol(std::string_view text) const {
  text = StripWhitespace(text);
  bool inverse = false;
  if (!text.empty() && text.back() == '-') {
    inverse = true;
    text.remove_suffix(1);
  }
  if (!IsIdentifier(text)) {
    return InvalidArgumentError("bad symbol: " + std::string(text));
  }
  RQ_ASSIGN_OR_RETURN(uint32_t label, FindLabel(text));
  return inverse ? InverseSymbolOf(label) : ForwardSymbolOf(label);
}

std::string WordToString(const Alphabet& alphabet,
                         const std::vector<Symbol>& word) {
  std::string out;
  for (size_t i = 0; i < word.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += alphabet.SymbolName(word[i]);
  }
  return out;
}

std::vector<Symbol> InverseWord(const std::vector<Symbol>& word) {
  std::vector<Symbol> out(word.rbegin(), word.rend());
  for (Symbol& s : out) s = InverseSymbol(s);
  return out;
}

}  // namespace rq

// Classical automata constructions (paper §3.2 steps 1-4): subset
// construction, complementation, product, union, and DFA minimization.
#ifndef RQ_AUTOMATA_OPS_H_
#define RQ_AUTOMATA_OPS_H_

#include <cstdint>

#include "automata/dfa.h"
#include "automata/nfa.h"

namespace rq {

// Subset construction. Exponential worst case; only reachable subsets are
// materialized. The result is complete (has an explicit dead state when
// needed).
Dfa Determinize(const Nfa& nfa);

// One-state-per-DFA-state NFA view (for code that wants a uniform type).
Nfa NfaFromDfa(const Dfa& dfa);

// Product automaton: L(a) ∩ L(b). Requires equal num_symbols. Epsilon-free
// inputs recommended (epsilons are eliminated internally otherwise).
Nfa Intersect(const Nfa& a, const Nfa& b);

// Union automaton: L(a) ∪ L(b) (disjoint-union of state sets).
Nfa Union(const Nfa& a, const Nfa& b);

// Concatenation L(a)·L(b) using epsilon links.
Nfa Concat(const Nfa& a, const Nfa& b);

// Complement by determinization then flipping: exponential blow-up, the
// "naive" route the paper contrasts with on-the-fly search.
Dfa ComplementToDfa(const Nfa& nfa);

// Moore partition-refinement minimization of a complete DFA. Keeps only
// reachable states first.
Dfa Minimize(const Dfa& dfa);

// Language equality via minimized canonical forms (used to cross-check the
// on-the-fly containment code in tests).
bool LanguagesEqualByMinimization(const Nfa& a, const Nfa& b);

}  // namespace rq

#endif  // RQ_AUTOMATA_OPS_H_

// Nondeterministic finite automata over interned symbols.
//
// This is the workhorse representation of the paper's §3.2: regular
// expressions compile to NFAs (Thompson), and all containment pipelines run
// on NFAs via the classical constructions in automata/ops.h.
#ifndef RQ_AUTOMATA_NFA_H_
#define RQ_AUTOMATA_NFA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/alphabet.h"
#include "common/status.h"

namespace rq {

struct NfaTransition {
  Symbol symbol;
  uint32_t to;

  friend bool operator==(const NfaTransition& a, const NfaTransition& b) {
    return a.symbol == b.symbol && a.to == b.to;
  }
};

// An NFA with optional epsilon transitions. States are dense 0..n-1.
class Nfa {
 public:
  // `num_symbols` fixes the symbol universe 0..num_symbols-1 (typically
  // alphabet.num_symbols() for Sigma±, or 2*k using only forward symbols).
  explicit Nfa(uint32_t num_symbols) : num_symbols_(num_symbols) {}

  uint32_t AddState() {
    transitions_.emplace_back();
    epsilons_.emplace_back();
    accepting_.push_back(false);
    return static_cast<uint32_t>(transitions_.size() - 1);
  }

  void AddTransition(uint32_t from, Symbol symbol, uint32_t to) {
    RQ_CHECK(from < num_states() && to < num_states());
    RQ_CHECK(symbol < num_symbols_);
    transitions_[from].push_back({symbol, to});
  }

  void AddEpsilon(uint32_t from, uint32_t to) {
    RQ_CHECK(from < num_states() && to < num_states());
    epsilons_[from].push_back(to);
  }

  void AddInitial(uint32_t state) {
    RQ_CHECK(state < num_states());
    initial_.push_back(state);
  }

  void SetAccepting(uint32_t state, bool accepting = true) {
    RQ_CHECK(state < num_states());
    accepting_[state] = accepting;
  }

  uint32_t num_states() const {
    return static_cast<uint32_t>(transitions_.size());
  }
  uint32_t num_symbols() const { return num_symbols_; }
  const std::vector<uint32_t>& initial() const { return initial_; }
  bool IsAccepting(uint32_t state) const { return accepting_[state]; }
  const std::vector<NfaTransition>& TransitionsFrom(uint32_t state) const {
    return transitions_[state];
  }
  const std::vector<uint32_t>& EpsilonsFrom(uint32_t state) const {
    return epsilons_[state];
  }

  bool HasEpsilons() const;
  size_t CountTransitions() const;

  // Epsilon closure of `states`, returned sorted and deduplicated.
  std::vector<uint32_t> EpsilonClosure(std::vector<uint32_t> states) const;

  // Set of states reachable from `states` (already closed) by `symbol`,
  // epsilon-closed, sorted, deduplicated.
  std::vector<uint32_t> Step(const std::vector<uint32_t>& states,
                             Symbol symbol) const;

  // Membership test by subset simulation.
  bool Accepts(const std::vector<Symbol>& word) const;

  // True if some accepting state is reachable from some initial state.
  // If nonempty and `witness` != nullptr, stores a shortest accepted word.
  bool IsEmptyLanguage(std::vector<Symbol>* witness = nullptr) const;

  // Equivalent epsilon-free NFA (same state set; epsilon edges folded into
  // symbol transitions and acceptance).
  Nfa WithoutEpsilons() const;

  // Accepts the reversed language.
  Nfa Reversed() const;

  // States reachable from the initial states (forward, over symbols and
  // epsilons), sorted.
  std::vector<uint32_t> ReachableStates() const;

  // Drops states that are unreachable or cannot reach an accepting state.
  Nfa Trimmed() const;

  // Debug rendering (one transition per line).
  std::string ToString(const Alphabet& alphabet) const;

 private:
  uint32_t num_symbols_;
  std::vector<uint32_t> initial_;
  std::vector<bool> accepting_;
  std::vector<std::vector<NfaTransition>> transitions_;
  std::vector<std::vector<uint32_t>> epsilons_;
};

}  // namespace rq

#endif  // RQ_AUTOMATA_NFA_H_

// NFA reduction by simulation quotient.
//
// The simulation preorder s ≼ t (t can mimic every move of s and is
// accepting whenever s is) is computed as a greatest fixpoint in O(n²·m);
// merging mutually-similar states preserves the language exactly. Smaller
// NFAs shrink everything downstream — most notably the fold 2NFA of the
// Theorem 5 pipeline, whose state count is n·(|Σ±|+1) in the NFA's n.
#ifndef RQ_AUTOMATA_REDUCE_H_
#define RQ_AUTOMATA_REDUCE_H_

#include <vector>

#include "automata/nfa.h"

namespace rq {

// simulated_by[s][t] == true iff t simulates s. Input must be epsilon-free
// (internally eliminated otherwise).
std::vector<std::vector<bool>> SimulationPreorder(const Nfa& nfa);

// Quotients by mutual simulation. Language-preserving; never larger.
Nfa ReduceBySimulation(const Nfa& nfa);

}  // namespace rq

#endif  // RQ_AUTOMATA_REDUCE_H_

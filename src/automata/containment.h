// On-the-fly regular-language containment (paper §3.2, steps 1-4).
//
// Checks L(A1) ⊆ L(A2) by searching the product of A1 with the lazily
// determinized complement of A2 for an accepting path, materializing only
// the (state, subset) pairs the search visits — the construction the paper
// credits for the PSPACE upper bound of RPQ containment (Lemma 1 + [42]).
#ifndef RQ_AUTOMATA_CONTAINMENT_H_
#define RQ_AUTOMATA_CONTAINMENT_H_

#include <cstdint>
#include <vector>

#include "automata/nfa.h"
#include "common/status.h"

namespace rq {

struct LanguageContainmentResult {
  bool contained = false;
  // When !contained: a shortest word in L(a) \ L(b).
  std::vector<Symbol> counterexample;
  // Number of product states explored (for benchmarking the on-the-fly vs
  // explicit-complement tradeoff).
  uint64_t explored_states = 0;
  // Non-OK (kDeadlineExceeded / kCancelled) when the installed ExecContext
  // tripped mid-search; `contained` is meaningless then. Always OK when no
  // context is installed (common/deadline.h, docs/ROBUSTNESS.md).
  Status status;
};

// Decides L(a) ⊆ L(b). Both automata must share num_symbols.
LanguageContainmentResult CheckLanguageContainment(const Nfa& a, const Nfa& b);

// Decides L(a) == L(b) via two containment checks.
bool LanguagesEqual(const Nfa& a, const Nfa& b);

// Explicit-construction variant used as the baseline in bench_rpq_containment
// (builds the full complement DFA up front, then intersects).
LanguageContainmentResult CheckLanguageContainmentExplicit(const Nfa& a,
                                                           const Nfa& b);

// Antichain-pruned variant of the on-the-fly search: a product node
// (q, S) is subsumed by an explored (q, S') with S' ⊆ S — any word that
// escapes S escapes S' — so only ⊆-minimal subsets are kept per state.
// Same verdicts; counterexamples are valid but not necessarily shortest.
// bench_antichain_ablation measures the pruning payoff.
LanguageContainmentResult CheckLanguageContainmentAntichain(const Nfa& a,
                                                            const Nfa& b);

}  // namespace rq

#endif  // RQ_AUTOMATA_CONTAINMENT_H_

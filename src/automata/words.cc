#include "automata/words.h"

#include <algorithm>
#include <deque>

namespace rq {

std::vector<std::vector<Symbol>> EnumerateAcceptedWords(const Nfa& input,
                                                        size_t max_length,
                                                        size_t limit) {
  const Nfa nfa = input.HasEpsilons() ? input.WithoutEpsilons() : input;
  std::vector<std::vector<Symbol>> out;
  if (limit == 0) return out;

  struct Item {
    std::vector<Symbol> word;
    std::vector<uint32_t> states;
  };
  std::deque<Item> work;
  work.push_back({{}, nfa.EpsilonClosure(nfa.initial())});
  while (!work.empty()) {
    Item item = std::move(work.front());
    work.pop_front();
    bool accepting = false;
    for (uint32_t s : item.states) accepting = accepting || nfa.IsAccepting(s);
    if (accepting) {
      out.push_back(item.word);
      if (out.size() >= limit) return out;
    }
    if (item.word.size() >= max_length) continue;
    for (Symbol a = 0; a < nfa.num_symbols(); ++a) {
      std::vector<uint32_t> next = nfa.Step(item.states, a);
      if (next.empty()) continue;
      std::vector<Symbol> word = item.word;
      word.push_back(a);
      work.push_back({std::move(word), std::move(next)});
    }
  }
  return out;
}

std::optional<std::vector<Symbol>> SampleAcceptedWord(const Nfa& input,
                                                      size_t max_length,
                                                      size_t attempts,
                                                      Rng& rng) {
  const Nfa nfa = input.HasEpsilons() ? input.WithoutEpsilons() : input;
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    std::vector<uint32_t> states = nfa.EpsilonClosure(nfa.initial());
    std::vector<Symbol> word;
    size_t target =
        static_cast<size_t>(rng.Between(0, static_cast<int64_t>(max_length)));
    for (size_t step = 0; step < target; ++step) {
      // Collect symbols with nonempty successors.
      std::vector<Symbol> candidates;
      for (Symbol a = 0; a < nfa.num_symbols(); ++a) {
        if (!nfa.Step(states, a).empty()) candidates.push_back(a);
      }
      if (candidates.empty()) break;
      Symbol pick = candidates[rng.Below(candidates.size())];
      states = nfa.Step(states, pick);
      word.push_back(pick);
    }
    for (uint32_t s : states) {
      if (nfa.IsAccepting(s)) return word;
    }
  }
  return std::nullopt;
}

bool IsFiniteLanguage(const Nfa& input) {
  Nfa trimmed = input.Trimmed();
  const Nfa nfa =
      trimmed.HasEpsilons() ? trimmed.WithoutEpsilons() : trimmed;
  // A trimmed automaton has an infinite language iff it has a cycle (every
  // state lies on an initial→accepting path). DFS cycle detection.
  enum class Mark { kUnseen, kActive, kDone };
  std::vector<Mark> mark(nfa.num_states(), Mark::kUnseen);
  // Iterative DFS.
  for (uint32_t root = 0; root < nfa.num_states(); ++root) {
    if (mark[root] != Mark::kUnseen) continue;
    std::vector<std::pair<uint32_t, size_t>> stack{{root, 0}};
    mark[root] = Mark::kActive;
    while (!stack.empty()) {
      auto& [state, next_index] = stack.back();
      const auto& trans = nfa.TransitionsFrom(state);
      if (next_index < trans.size()) {
        uint32_t to = trans[next_index++].to;
        if (mark[to] == Mark::kActive) return false;  // cycle
        if (mark[to] == Mark::kUnseen) {
          mark[to] = Mark::kActive;
          stack.push_back({to, 0});
        }
      } else {
        mark[state] = Mark::kDone;
        stack.pop_back();
      }
    }
  }
  return true;
}

std::optional<uint64_t> CountWordsUpTo(const Nfa& nfa, uint64_t cap) {
  if (!IsFiniteLanguage(nfa)) return std::nullopt;
  // Finite language: every accepted word has < num_states letters once the
  // automaton is trimmed (no cycles). Enumerate with a generous cap.
  Nfa trimmed = nfa.Trimmed();
  std::vector<std::vector<Symbol>> words =
      EnumerateAcceptedWords(trimmed, trimmed.num_states() + 1,
                             static_cast<size_t>(cap) + 1);
  if (words.size() > cap) return std::nullopt;
  return static_cast<uint64_t>(words.size());
}

}  // namespace rq

// Complete deterministic finite automata with a dense transition table.
#ifndef RQ_AUTOMATA_DFA_H_
#define RQ_AUTOMATA_DFA_H_

#include <cstdint>
#include <vector>

#include "automata/alphabet.h"
#include "common/status.h"

namespace rq {

// A complete DFA: every state has exactly one successor per symbol.
class Dfa {
 public:
  Dfa(uint32_t num_states, uint32_t num_symbols)
      : num_symbols_(num_symbols),
        initial_(0),
        accepting_(num_states, false),
        table_(static_cast<size_t>(num_states) * num_symbols, 0) {}

  uint32_t num_states() const {
    return static_cast<uint32_t>(accepting_.size());
  }
  uint32_t num_symbols() const { return num_symbols_; }

  void SetInitial(uint32_t state) { initial_ = state; }
  uint32_t initial() const { return initial_; }

  void SetAccepting(uint32_t state, bool accepting = true) {
    accepting_[state] = accepting;
  }
  bool IsAccepting(uint32_t state) const { return accepting_[state]; }

  void SetTransition(uint32_t from, Symbol symbol, uint32_t to) {
    table_[static_cast<size_t>(from) * num_symbols_ + symbol] = to;
  }
  uint32_t Next(uint32_t from, Symbol symbol) const {
    return table_[static_cast<size_t>(from) * num_symbols_ + symbol];
  }

  bool Accepts(const std::vector<Symbol>& word) const {
    uint32_t s = initial_;
    for (Symbol symbol : word) s = Next(s, symbol);
    return accepting_[s];
  }

  // Flips accepting states; complete DFAs complement in O(n).
  Dfa Complemented() const {
    Dfa out = *this;
    for (uint32_t s = 0; s < out.num_states(); ++s) {
      out.accepting_[s] = !out.accepting_[s];
    }
    return out;
  }

 private:
  uint32_t num_symbols_;
  uint32_t initial_;
  std::vector<bool> accepting_;
  std::vector<uint32_t> table_;
};

}  // namespace rq

#endif  // RQ_AUTOMATA_DFA_H_

#include "automata/reduce.h"

#include <algorithm>

namespace rq {

std::vector<std::vector<bool>> SimulationPreorder(const Nfa& input) {
  const Nfa nfa = input.HasEpsilons() ? input.WithoutEpsilons() : input;
  const uint32_t n = nfa.num_states();
  // sim[s][t]: t simulates s. Start from the acceptance-compatible full
  // relation and refine to the greatest fixpoint.
  std::vector<std::vector<bool>> sim(n, std::vector<bool>(n, true));
  for (uint32_t s = 0; s < n; ++s) {
    for (uint32_t t = 0; t < n; ++t) {
      if (nfa.IsAccepting(s) && !nfa.IsAccepting(t)) sim[s][t] = false;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t s = 0; s < n; ++s) {
      for (uint32_t t = 0; t < n; ++t) {
        if (!sim[s][t]) continue;
        // Every move of s must be matched by some move of t on the same
        // symbol into a simulating state.
        bool ok = true;
        for (const NfaTransition& ts : nfa.TransitionsFrom(s)) {
          bool matched = false;
          for (const NfaTransition& tt : nfa.TransitionsFrom(t)) {
            if (tt.symbol == ts.symbol && sim[ts.to][tt.to]) {
              matched = true;
              break;
            }
          }
          if (!matched) {
            ok = false;
            break;
          }
        }
        if (!ok) {
          sim[s][t] = false;
          changed = true;
        }
      }
    }
  }
  return sim;
}

Nfa ReduceBySimulation(const Nfa& input) {
  const Nfa nfa = input.HasEpsilons() ? input.WithoutEpsilons() : input;
  const uint32_t n = nfa.num_states();
  if (n == 0) return nfa;
  std::vector<std::vector<bool>> sim = SimulationPreorder(nfa);

  // Classes of mutual simulation; representative = smallest member.
  std::vector<uint32_t> cls(n);
  std::vector<uint32_t> reps;
  for (uint32_t s = 0; s < n; ++s) {
    uint32_t found = 0xffffffffu;
    for (uint32_t r : reps) {
      if (sim[s][r] && sim[r][s]) {
        found = cls[r];
        break;
      }
    }
    if (found == 0xffffffffu) {
      found = static_cast<uint32_t>(reps.size());
      reps.push_back(s);
    }
    cls[s] = found;
  }

  Nfa out(nfa.num_symbols());
  for (size_t c = 0; c < reps.size(); ++c) out.AddState();
  std::vector<bool> is_initial(reps.size(), false);
  for (uint32_t s : nfa.initial()) is_initial[cls[s]] = true;
  for (size_t c = 0; c < reps.size(); ++c) {
    if (is_initial[c]) out.AddInitial(static_cast<uint32_t>(c));
  }
  // Transitions: union over class members, targets mapped to classes.
  for (uint32_t s = 0; s < n; ++s) {
    if (nfa.IsAccepting(s)) out.SetAccepting(cls[s]);
  }
  std::vector<std::vector<NfaTransition>> merged(reps.size());
  for (uint32_t s = 0; s < n; ++s) {
    for (const NfaTransition& t : nfa.TransitionsFrom(s)) {
      merged[cls[s]].push_back({t.symbol, cls[t.to]});
    }
  }
  for (size_t c = 0; c < reps.size(); ++c) {
    auto& list = merged[c];
    std::sort(list.begin(), list.end(),
              [](const NfaTransition& a, const NfaTransition& b) {
                return a.symbol != b.symbol ? a.symbol < b.symbol
                                            : a.to < b.to;
              });
    list.erase(std::unique(list.begin(), list.end()), list.end());
    for (const NfaTransition& t : list) {
      out.AddTransition(static_cast<uint32_t>(c), t.symbol, t.to);
    }
  }
  return out.Trimmed();
}

}  // namespace rq

#include "automata/ops.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "common/deadline.h"
#include "common/mem.h"

namespace rq {

namespace {

// Hash for sorted state-set keys.
struct VectorHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    size_t h = 0xcbf29ce484222325ULL;
    for (uint32_t x : v) {
      h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace

Dfa Determinize(const Nfa& input) {
  const Nfa nfa = input.HasEpsilons() ? input.WithoutEpsilons() : input;
  const uint32_t k = nfa.num_symbols();

  // The subset construction is the exponential step: charge each interned
  // subset (kept twice: hash key + subsets row) and each transition row.
  MemScope mem_scope(MemSubsystem::kAutomata);

  std::unordered_map<std::vector<uint32_t>, uint32_t, VectorHash> ids;
  std::vector<std::vector<uint32_t>> subsets;
  std::deque<uint32_t> work;

  auto intern = [&](std::vector<uint32_t> subset) {
    auto it = ids.find(subset);
    if (it != ids.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(subsets.size());
    MemCharge(static_cast<int64_t>(
        2 * (subset.size() * sizeof(uint32_t) + sizeof(subset))));
    ids.emplace(subset, id);
    subsets.push_back(std::move(subset));
    work.push_back(id);
    return id;
  };

  std::vector<uint32_t> start = nfa.EpsilonClosure(nfa.initial());
  uint32_t start_id = intern(std::move(start));

  // Transition rows, built as we explore. The subset construction is the
  // exponential step; when the installed ExecContext trips we stop early
  // and return the truncated DFA — Status-returning callers poll the same
  // context right after and discard it (docs/ROBUSTNESS.md).
  std::vector<std::vector<uint32_t>> rows;
  while (!work.empty()) {
    if (ExecStopRequested()) break;
    uint32_t id = work.front();
    work.pop_front();
    if (rows.size() <= id) rows.resize(id + 1);
    rows[id].resize(k);
    MemCharge(static_cast<int64_t>(k * sizeof(uint32_t)));
    // Copy: `subsets` may reallocate while interning successors.
    std::vector<uint32_t> subset = subsets[id];
    for (Symbol s = 0; s < k; ++s) {
      rows[id][s] = intern(nfa.Step(subset, s));
    }
  }
  rows.resize(subsets.size());
  for (auto& row : rows) {
    if (row.empty()) row.resize(k, 0);  // filled below if still pending
  }

  Dfa dfa(static_cast<uint32_t>(subsets.size()), k);
  dfa.SetInitial(start_id);
  for (uint32_t id = 0; id < subsets.size(); ++id) {
    bool accepting = false;
    for (uint32_t s : subsets[id]) {
      accepting = accepting || nfa.IsAccepting(s);
    }
    dfa.SetAccepting(id, accepting);
    for (Symbol s = 0; s < k; ++s) dfa.SetTransition(id, s, rows[id][s]);
  }
  return dfa;
}

Nfa NfaFromDfa(const Dfa& dfa) {
  Nfa out(dfa.num_symbols());
  for (uint32_t s = 0; s < dfa.num_states(); ++s) out.AddState();
  for (uint32_t s = 0; s < dfa.num_states(); ++s) {
    out.SetAccepting(s, dfa.IsAccepting(s));
    for (Symbol a = 0; a < dfa.num_symbols(); ++a) {
      out.AddTransition(s, a, dfa.Next(s, a));
    }
  }
  out.AddInitial(dfa.initial());
  return out;
}

Nfa Intersect(const Nfa& a_in, const Nfa& b_in) {
  RQ_CHECK(a_in.num_symbols() == b_in.num_symbols());
  const Nfa a = a_in.HasEpsilons() ? a_in.WithoutEpsilons() : a_in;
  const Nfa b = b_in.HasEpsilons() ? b_in.WithoutEpsilons() : b_in;

  // Lazy product: only reachable pairs get states.
  std::unordered_map<uint64_t, uint32_t> ids;
  std::deque<std::pair<uint32_t, uint32_t>> work;
  Nfa out(a.num_symbols());

  auto intern = [&](uint32_t sa, uint32_t sb) {
    uint64_t key = (static_cast<uint64_t>(sa) << 32) | sb;
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    uint32_t id = out.AddState();
    out.SetAccepting(id, a.IsAccepting(sa) && b.IsAccepting(sb));
    ids.emplace(key, id);
    work.emplace_back(sa, sb);
    return id;
  };

  for (uint32_t sa : a.initial()) {
    for (uint32_t sb : b.initial()) {
      out.AddInitial(intern(sa, sb));
    }
  }
  while (!work.empty()) {
    auto [sa, sb] = work.front();
    work.pop_front();
    uint32_t from = ids[(static_cast<uint64_t>(sa) << 32) | sb];
    for (const NfaTransition& ta : a.TransitionsFrom(sa)) {
      for (const NfaTransition& tb : b.TransitionsFrom(sb)) {
        if (ta.symbol != tb.symbol) continue;
        out.AddTransition(from, ta.symbol, intern(ta.to, tb.to));
      }
    }
  }
  if (out.num_states() == 0) {
    uint32_t s = out.AddState();
    out.AddInitial(s);
  }
  return out;
}

Nfa Union(const Nfa& a, const Nfa& b) {
  RQ_CHECK(a.num_symbols() == b.num_symbols());
  Nfa out(a.num_symbols());
  for (uint32_t s = 0; s < a.num_states() + b.num_states(); ++s) {
    out.AddState();
  }
  uint32_t offset = a.num_states();
  for (uint32_t s = 0; s < a.num_states(); ++s) {
    out.SetAccepting(s, a.IsAccepting(s));
    for (const NfaTransition& t : a.TransitionsFrom(s)) {
      out.AddTransition(s, t.symbol, t.to);
    }
    for (uint32_t t : a.EpsilonsFrom(s)) out.AddEpsilon(s, t);
  }
  for (uint32_t s = 0; s < b.num_states(); ++s) {
    out.SetAccepting(offset + s, b.IsAccepting(s));
    for (const NfaTransition& t : b.TransitionsFrom(s)) {
      out.AddTransition(offset + s, t.symbol, offset + t.to);
    }
    for (uint32_t t : b.EpsilonsFrom(s)) {
      out.AddEpsilon(offset + s, offset + t);
    }
  }
  for (uint32_t s : a.initial()) out.AddInitial(s);
  for (uint32_t s : b.initial()) out.AddInitial(offset + s);
  return out;
}

Nfa Concat(const Nfa& a, const Nfa& b) {
  RQ_CHECK(a.num_symbols() == b.num_symbols());
  Nfa out = Union(a, b);  // same layout; fix initial/accepting/links below.
  uint32_t offset = a.num_states();
  // Rebuild: out currently has both initial sets and both accepting sets.
  Nfa fixed(a.num_symbols());
  for (uint32_t s = 0; s < out.num_states(); ++s) fixed.AddState();
  for (uint32_t s = 0; s < out.num_states(); ++s) {
    for (const NfaTransition& t : out.TransitionsFrom(s)) {
      fixed.AddTransition(s, t.symbol, t.to);
    }
    for (uint32_t t : out.EpsilonsFrom(s)) fixed.AddEpsilon(s, t);
  }
  for (uint32_t s : a.initial()) fixed.AddInitial(s);
  for (uint32_t s = 0; s < a.num_states(); ++s) {
    if (a.IsAccepting(s)) {
      for (uint32_t i : b.initial()) fixed.AddEpsilon(s, offset + i);
    }
  }
  for (uint32_t s = 0; s < b.num_states(); ++s) {
    fixed.SetAccepting(offset + s, b.IsAccepting(s));
  }
  return fixed;
}

Dfa ComplementToDfa(const Nfa& nfa) { return Determinize(nfa).Complemented(); }

namespace {

// Restricts a DFA to states reachable from the initial state.
Dfa DropUnreachable(const Dfa& dfa) {
  std::vector<uint32_t> remap(dfa.num_states(), 0xffffffffu);
  std::vector<uint32_t> order;
  std::deque<uint32_t> work;
  remap[dfa.initial()] = 0;
  order.push_back(dfa.initial());
  work.push_back(dfa.initial());
  while (!work.empty()) {
    uint32_t s = work.front();
    work.pop_front();
    for (Symbol a = 0; a < dfa.num_symbols(); ++a) {
      uint32_t t = dfa.Next(s, a);
      if (remap[t] == 0xffffffffu) {
        remap[t] = static_cast<uint32_t>(order.size());
        order.push_back(t);
        work.push_back(t);
      }
    }
  }
  Dfa out(static_cast<uint32_t>(order.size()), dfa.num_symbols());
  out.SetInitial(0);
  for (uint32_t i = 0; i < order.size(); ++i) {
    out.SetAccepting(i, dfa.IsAccepting(order[i]));
    for (Symbol a = 0; a < dfa.num_symbols(); ++a) {
      out.SetTransition(i, a, remap[dfa.Next(order[i], a)]);
    }
  }
  return out;
}

}  // namespace

Dfa Minimize(const Dfa& input) {
  Dfa dfa = DropUnreachable(input);
  const uint32_t n = dfa.num_states();
  const uint32_t k = dfa.num_symbols();

  // Moore's algorithm: refine by (class, successor classes) signature.
  std::vector<uint32_t> cls(n);
  for (uint32_t s = 0; s < n; ++s) cls[s] = dfa.IsAccepting(s) ? 1 : 0;
  uint32_t num_classes = 2;
  for (;;) {
    std::map<std::vector<uint32_t>, uint32_t> sig_to_class;
    std::vector<uint32_t> next_cls(n);
    for (uint32_t s = 0; s < n; ++s) {
      std::vector<uint32_t> sig;
      sig.reserve(k + 1);
      sig.push_back(cls[s]);
      for (Symbol a = 0; a < k; ++a) sig.push_back(cls[dfa.Next(s, a)]);
      auto [it, inserted] = sig_to_class.emplace(
          std::move(sig), static_cast<uint32_t>(sig_to_class.size()));
      next_cls[s] = it->second;
      (void)inserted;
    }
    uint32_t next_num = static_cast<uint32_t>(sig_to_class.size());
    if (next_num == num_classes) break;
    num_classes = next_num;
    cls = std::move(next_cls);
  }

  Dfa out(num_classes, k);
  out.SetInitial(cls[dfa.initial()]);
  for (uint32_t s = 0; s < n; ++s) {
    out.SetAccepting(cls[s], dfa.IsAccepting(s));
    for (Symbol a = 0; a < k; ++a) {
      out.SetTransition(cls[s], a, cls[dfa.Next(s, a)]);
    }
  }
  return out;
}

bool LanguagesEqualByMinimization(const Nfa& a, const Nfa& b) {
  Dfa ma = Minimize(Determinize(a));
  Dfa mb = Minimize(Determinize(b));
  if (ma.num_states() != mb.num_states()) return false;
  // Isomorphism check from the initial states (minimal DFAs are canonical
  // up to state renaming).
  std::vector<uint32_t> map_ab(ma.num_states(), 0xffffffffu);
  std::deque<uint32_t> work;
  map_ab[ma.initial()] = mb.initial();
  work.push_back(ma.initial());
  while (!work.empty()) {
    uint32_t s = work.front();
    work.pop_front();
    uint32_t t = map_ab[s];
    if (ma.IsAccepting(s) != mb.IsAccepting(t)) return false;
    for (Symbol x = 0; x < ma.num_symbols(); ++x) {
      uint32_t sn = ma.Next(s, x);
      uint32_t tn = mb.Next(t, x);
      if (map_ab[sn] == 0xffffffffu) {
        map_ab[sn] = tn;
        work.push_back(sn);
      } else if (map_ab[sn] != tn) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace rq

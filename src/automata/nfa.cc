#include "automata/nfa.h"

#include <algorithm>
#include <deque>
#include <queue>

namespace rq {

bool Nfa::HasEpsilons() const {
  for (const auto& eps : epsilons_) {
    if (!eps.empty()) return true;
  }
  return false;
}

size_t Nfa::CountTransitions() const {
  size_t n = 0;
  for (const auto& t : transitions_) n += t.size();
  for (const auto& e : epsilons_) n += e.size();
  return n;
}

std::vector<uint32_t> Nfa::EpsilonClosure(std::vector<uint32_t> states) const {
  std::vector<bool> seen(num_states(), false);
  std::deque<uint32_t> work;
  for (uint32_t s : states) {
    if (!seen[s]) {
      seen[s] = true;
      work.push_back(s);
    }
  }
  std::vector<uint32_t> out;
  while (!work.empty()) {
    uint32_t s = work.front();
    work.pop_front();
    out.push_back(s);
    for (uint32_t t : epsilons_[s]) {
      if (!seen[t]) {
        seen[t] = true;
        work.push_back(t);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint32_t> Nfa::Step(const std::vector<uint32_t>& states,
                                Symbol symbol) const {
  std::vector<uint32_t> next;
  for (uint32_t s : states) {
    for (const NfaTransition& t : transitions_[s]) {
      if (t.symbol == symbol) next.push_back(t.to);
    }
  }
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
  return EpsilonClosure(std::move(next));
}

bool Nfa::Accepts(const std::vector<Symbol>& word) const {
  std::vector<uint32_t> current = EpsilonClosure(initial_);
  for (Symbol symbol : word) {
    if (current.empty()) return false;
    current = Step(current, symbol);
  }
  for (uint32_t s : current) {
    if (accepting_[s]) return true;
  }
  return false;
}

bool Nfa::IsEmptyLanguage(std::vector<Symbol>* witness) const {
  // BFS over single states; epsilon edges are zero-cost moves, so plain BFS
  // with epsilon edges treated like symbol edges still finds a shortest
  // accepted word if we track word length separately via 0/1 BFS.
  struct Item {
    uint32_t state;
    uint32_t parent;    // index into `items`, or UINT32_MAX
    Symbol via;         // kInvalidSymbol for epsilon / roots
  };
  std::vector<Item> items;
  std::vector<bool> seen(num_states(), false);
  std::deque<uint32_t> work;  // indices into items; 0-1 BFS deque
  for (uint32_t s : initial_) {
    if (!seen[s]) {
      seen[s] = true;
      items.push_back({s, 0xffffffffu, kInvalidSymbol});
      work.push_back(static_cast<uint32_t>(items.size() - 1));
    }
  }
  while (!work.empty()) {
    uint32_t idx = work.front();
    work.pop_front();
    uint32_t s = items[idx].state;
    if (accepting_[s]) {
      if (witness != nullptr) {
        std::vector<Symbol> word;
        for (uint32_t i = idx; i != 0xffffffffu; i = items[i].parent) {
          if (items[i].via != kInvalidSymbol) word.push_back(items[i].via);
        }
        std::reverse(word.begin(), word.end());
        *witness = std::move(word);
      }
      return false;
    }
    for (uint32_t t : epsilons_[s]) {
      if (!seen[t]) {
        seen[t] = true;
        items.push_back({t, idx, kInvalidSymbol});
        work.push_front(static_cast<uint32_t>(items.size() - 1));
      }
    }
    for (const NfaTransition& tr : transitions_[s]) {
      if (!seen[tr.to]) {
        seen[tr.to] = true;
        items.push_back({tr.to, idx, tr.symbol});
        work.push_back(static_cast<uint32_t>(items.size() - 1));
      }
    }
  }
  return true;
}

Nfa Nfa::WithoutEpsilons() const {
  Nfa out(num_symbols_);
  for (uint32_t s = 0; s < num_states(); ++s) out.AddState();
  for (uint32_t s = 0; s < num_states(); ++s) {
    std::vector<uint32_t> closure = EpsilonClosure({s});
    bool accepting = false;
    std::vector<NfaTransition> merged;
    for (uint32_t c : closure) {
      accepting = accepting || accepting_[c];
      for (const NfaTransition& t : transitions_[c]) merged.push_back(t);
    }
    std::sort(merged.begin(), merged.end(),
              [](const NfaTransition& a, const NfaTransition& b) {
                return a.symbol != b.symbol ? a.symbol < b.symbol
                                            : a.to < b.to;
              });
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    out.SetAccepting(s, accepting);
    for (const NfaTransition& t : merged) {
      out.AddTransition(s, t.symbol, t.to);
    }
  }
  for (uint32_t s : initial_) out.AddInitial(s);
  return out;
}

Nfa Nfa::Reversed() const {
  Nfa out(num_symbols_);
  for (uint32_t s = 0; s < num_states(); ++s) out.AddState();
  for (uint32_t s = 0; s < num_states(); ++s) {
    for (const NfaTransition& t : transitions_[s]) {
      out.AddTransition(t.to, t.symbol, s);
    }
    for (uint32_t t : epsilons_[s]) out.AddEpsilon(t, s);
    if (accepting_[s]) out.AddInitial(s);
  }
  for (uint32_t s : initial_) out.SetAccepting(s);
  return out;
}

std::vector<uint32_t> Nfa::ReachableStates() const {
  std::vector<bool> seen(num_states(), false);
  std::deque<uint32_t> work;
  for (uint32_t s : initial_) {
    if (!seen[s]) {
      seen[s] = true;
      work.push_back(s);
    }
  }
  std::vector<uint32_t> out;
  while (!work.empty()) {
    uint32_t s = work.front();
    work.pop_front();
    out.push_back(s);
    for (const NfaTransition& t : transitions_[s]) {
      if (!seen[t.to]) {
        seen[t.to] = true;
        work.push_back(t.to);
      }
    }
    for (uint32_t t : epsilons_[s]) {
      if (!seen[t]) {
        seen[t] = true;
        work.push_back(t);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Nfa Nfa::Trimmed() const {
  std::vector<uint32_t> forward = ReachableStates();
  std::vector<uint32_t> backward = Reversed().ReachableStates();
  std::vector<bool> keep(num_states(), false);
  {
    std::vector<bool> fwd(num_states(), false);
    for (uint32_t s : forward) fwd[s] = true;
    for (uint32_t s : backward) {
      if (fwd[s]) keep[s] = true;
    }
  }
  std::vector<uint32_t> remap(num_states(), 0xffffffffu);
  Nfa out(num_symbols_);
  for (uint32_t s = 0; s < num_states(); ++s) {
    if (keep[s]) remap[s] = out.AddState();
  }
  // Keep at least one state so callers always have a valid (empty) NFA.
  if (out.num_states() == 0) {
    uint32_t s = out.AddState();
    out.AddInitial(s);
    return out;
  }
  for (uint32_t s = 0; s < num_states(); ++s) {
    if (!keep[s]) continue;
    out.SetAccepting(remap[s], accepting_[s]);
    for (const NfaTransition& t : transitions_[s]) {
      if (keep[t.to]) out.AddTransition(remap[s], t.symbol, remap[t.to]);
    }
    for (uint32_t t : epsilons_[s]) {
      if (keep[t]) out.AddEpsilon(remap[s], remap[t]);
    }
  }
  for (uint32_t s : initial_) {
    if (keep[s]) out.AddInitial(remap[s]);
  }
  return out;
}

std::string Nfa::ToString(const Alphabet& alphabet) const {
  std::string out = "NFA states=" + std::to_string(num_states()) + "\n";
  out += "initial:";
  for (uint32_t s : initial_) out += " " + std::to_string(s);
  out += "\naccepting:";
  for (uint32_t s = 0; s < num_states(); ++s) {
    if (accepting_[s]) out += " " + std::to_string(s);
  }
  out += "\n";
  for (uint32_t s = 0; s < num_states(); ++s) {
    for (const NfaTransition& t : transitions_[s]) {
      out += std::to_string(s) + " -" + alphabet.SymbolName(t.symbol) +
             "-> " + std::to_string(t.to) + "\n";
    }
    for (uint32_t t : epsilons_[s]) {
      out += std::to_string(s) + " -eps-> " + std::to_string(t) + "\n";
    }
  }
  return out;
}

}  // namespace rq

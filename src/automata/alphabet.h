// Interned symbol alphabets, including two-way alphabets Sigma± with
// inverse symbols (paper §3.1).
//
// Every base label `r` registered with an Alphabet yields two symbols: the
// forward symbol for `r` and the inverse symbol `r-`. Symbols are dense
// integer ids: label k has forward symbol 2k and inverse symbol 2k+1, so
// taking the inverse of a symbol is a single bit flip. Code that works over
// plain Sigma (e.g. RPQs) simply never mentions inverse symbols.
#ifndef RQ_AUTOMATA_ALPHABET_H_
#define RQ_AUTOMATA_ALPHABET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/strings.h"

namespace rq {

// A symbol of Sigma±: forward or inverse occurrence of a base label.
using Symbol = uint32_t;

inline constexpr Symbol kInvalidSymbol = 0xffffffffu;

// Flips direction: r <-> r-.
inline Symbol InverseSymbol(Symbol s) { return s ^ 1u; }

// True for inverse symbols r-.
inline bool IsInverseSymbol(Symbol s) { return (s & 1u) != 0; }

// The base label id of a symbol.
inline uint32_t SymbolLabel(Symbol s) { return s >> 1; }

// Forward/inverse symbol of base label `label`.
inline Symbol ForwardSymbolOf(uint32_t label) { return label << 1; }
inline Symbol InverseSymbolOf(uint32_t label) { return (label << 1) | 1u; }

// Label interning table shared by a database and the queries over it.
class Alphabet {
 public:
  Alphabet() = default;

  // Returns the label id for `name`, interning it if new.
  uint32_t InternLabel(std::string_view name);

  // Returns the label id for `name` or an error if unknown.
  Result<uint32_t> FindLabel(std::string_view name) const;

  // Convenience: forward symbol of a (possibly new) label.
  Symbol InternForward(std::string_view name) {
    return ForwardSymbolOf(InternLabel(name));
  }
  // Convenience: inverse symbol of a (possibly new) label.
  Symbol InternInverse(std::string_view name) {
    return InverseSymbolOf(InternLabel(name));
  }

  size_t num_labels() const { return labels_.size(); }
  // Number of symbols in Sigma± (2 * num_labels).
  size_t num_symbols() const { return labels_.size() * 2; }

  const std::string& LabelName(uint32_t label) const {
    RQ_CHECK(label < labels_.size());
    return labels_[label];
  }

  // Renders a symbol, e.g. "knows" or "knows-".
  std::string SymbolName(Symbol s) const;

  // Parses "name" or "name-" into a symbol (label must already exist).
  Result<Symbol> ParseSymbol(std::string_view text) const;

 private:
  std::vector<std::string> labels_;
  StringMap<uint32_t> index_;  // transparent: string_view lookups
};

// Renders a word over Sigma± as space-separated symbol names.
std::string WordToString(const Alphabet& alphabet,
                         const std::vector<Symbol>& word);

// Inverse of a word: reverse it and flip every symbol. fold()-related
// identities in the tests rely on this.
std::vector<Symbol> InverseWord(const std::vector<Symbol>& word);

}  // namespace rq

#endif  // RQ_AUTOMATA_ALPHABET_H_

// Language sampling and enumeration used by property tests and benches.
#ifndef RQ_AUTOMATA_WORDS_H_
#define RQ_AUTOMATA_WORDS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "automata/nfa.h"
#include "common/rng.h"

namespace rq {

// Enumerates accepted words in length-lexicographic order, up to `max_length`
// letters, returning at most `limit` words.
std::vector<std::vector<Symbol>> EnumerateAcceptedWords(const Nfa& nfa,
                                                        size_t max_length,
                                                        size_t limit);

// Samples a random accepted word of length <= max_length by random walk with
// restarts; returns nullopt if none found within `attempts` restarts.
std::optional<std::vector<Symbol>> SampleAcceptedWord(const Nfa& nfa,
                                                      size_t max_length,
                                                      size_t attempts,
                                                      Rng& rng);

// True if the language is finite (no cycle on a useful state).
bool IsFiniteLanguage(const Nfa& nfa);

// Number of accepted words if the language is finite and has at most `cap`
// words; nullopt otherwise.
std::optional<uint64_t> CountWordsUpTo(const Nfa& nfa, uint64_t cap);

}  // namespace rq

#endif  // RQ_AUTOMATA_WORDS_H_

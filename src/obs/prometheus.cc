#include "obs/prometheus.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "obs/counters.h"
#include "obs/flight_recorder.h"
#include "obs/gauge.h"
#include "obs/histogram.h"

namespace rq {
namespace obs {

namespace {

void AppendLine(std::string* out, const std::string& name,
                const char* suffix, const std::string& labels,
                uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  *out += name;
  *out += suffix;
  *out += labels;
  *out += ' ';
  *out += buf;
  *out += '\n';
}

void AppendType(std::string* out, const std::string& name,
                const char* type) {
  *out += "# TYPE ";
  *out += name;
  *out += ' ';
  *out += type;
  *out += '\n';
}

}  // namespace

std::string PrometheusMetricName(std::string_view name) {
  std::string out = "rq_";
  out.reserve(name.size() + 3);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string RenderPrometheusText() {
  std::string out;

  // The flight recorder's ticket total is not a registry counter (it lives
  // in the recorder); surface it here so scrapes see ring pressure next to
  // the obs.flight_dropped counter.
  AppendType(&out, "rq_flight_recorded_total", "counter");
  AppendLine(&out, "rq_flight_recorded_total", "", "",
             FlightRecorder::Global().TotalRecorded());

  for (const CounterSample& sample : Registry::Global().Snapshot()) {
    std::string name = PrometheusMetricName(sample.name);
    AppendType(&out, name, "counter");
    AppendLine(&out, name, "", "", sample.value);
  }

  for (const GaugeSample& sample : GaugeRegistry::Global().Snapshot()) {
    std::string name = PrometheusMetricName(sample.name);
    AppendType(&out, name, "gauge");
    // Gauge levels are int64 but never negative in the rq vocabulary
    // (sizes, depths, byte totals); clamp defensively.
    AppendLine(&out, name, "", "",
               sample.value > 0 ? static_cast<uint64_t>(sample.value) : 0);
    AppendType(&out, name + "_peak", "gauge");
    AppendLine(&out, name + "_peak", "", "",
               sample.peak > 0 ? static_cast<uint64_t>(sample.peak) : 0);
  }

  for (const HistogramBucketsSample& sample :
       HistogramRegistry::Global().SnapshotBuckets()) {
    std::string name = PrometheusMetricName(sample.name) + "_dist";
    AppendType(&out, name, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (sample.buckets[i] == 0) continue;
      cumulative += sample.buckets[i];
      if (i + 1 >= Histogram::kNumBuckets) break;  // folded into +Inf
      char le[32];
      std::snprintf(le, sizeof(le), "{le=\"%" PRIu64 "\"}",
                    Histogram::BucketLowerBound(i + 1) - 1);
      AppendLine(&out, name, "_bucket", le, cumulative);
    }
    AppendLine(&out, name, "_bucket", "{le=\"+Inf\"}", sample.count);
    AppendLine(&out, name, "_sum", "", sample.sum);
    AppendLine(&out, name, "_count", "", sample.count);
  }

  return out;
}

Status WritePrometheusTextFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InvalidArgumentError("cannot open " + path + " for writing");
  }
  std::string text = RenderPrometheusText();
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return InternalError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace rq

#include "obs/prometheus.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "obs/counters.h"
#include "obs/flight_recorder.h"
#include "obs/gauge.h"
#include "obs/histogram.h"
#include "obs/mem_stats.h"

namespace rq {
namespace obs {

namespace {

void AppendLine(std::string* out, const std::string& name,
                const char* suffix, const std::string& labels,
                uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  *out += name;
  *out += suffix;
  *out += labels;
  *out += ' ';
  *out += buf;
  *out += '\n';
}

void AppendType(std::string* out, const std::string& name,
                const char* type) {
  *out += "# TYPE ";
  *out += name;
  *out += ' ';
  *out += type;
  *out += '\n';
}

// HELP precedes TYPE per convention; `help` is escaped here so callers
// pass raw strings (dotted registry names, descriptions).
void AppendHelp(std::string* out, const std::string& name,
                std::string_view help) {
  *out += "# HELP ";
  *out += name;
  *out += ' ';
  *out += PrometheusEscapeHelp(help);
  *out += '\n';
}

}  // namespace

std::string PrometheusMetricName(std::string_view name) {
  std::string out = "rq_";
  out.reserve(name.size() + 3);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string PrometheusEscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PrometheusEscapeHelp(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RenderPrometheusText() {
  // Refresh the OS view so every scrape carries a current RSS sample next
  // to the self-reported mem.* accounting (obs/mem_stats.h).
  SampleRssGauge();
  std::string out;

  // The flight recorder's ticket total is not a registry counter (it lives
  // in the recorder); surface it here so scrapes see ring pressure next to
  // the obs.flight_dropped counter.
  AppendHelp(&out, "rq_flight_recorded_total",
             "total queries recorded by the flight recorder ring");
  AppendType(&out, "rq_flight_recorded_total", "counter");
  AppendLine(&out, "rq_flight_recorded_total", "", "",
             FlightRecorder::Global().TotalRecorded());

  // Query identity: the CLI's raw query text as a label on a constant-1
  // info gauge. The label value is arbitrary user input — escaping is what
  // keeps one backslash in a regex from corrupting the whole exposition.
  if (std::string label = FlightRecorder::Global().QueryLabel();
      !label.empty()) {
    AppendHelp(&out, "rq_query_info",
               "query label installed by the CLI (raw query text)");
    AppendType(&out, "rq_query_info", "gauge");
    AppendLine(&out, "rq_query_info", "",
               "{query=\"" + PrometheusEscapeLabelValue(label) + "\"}", 1);
  }

  for (const CounterSample& sample : Registry::Global().Snapshot()) {
    std::string name = PrometheusMetricName(sample.name);
    AppendHelp(&out, name, sample.name);
    AppendType(&out, name, "counter");
    AppendLine(&out, name, "", "", sample.value);
  }

  for (const GaugeSample& sample : GaugeRegistry::Global().Snapshot()) {
    std::string name = PrometheusMetricName(sample.name);
    AppendHelp(&out, name, sample.name);
    AppendType(&out, name, "gauge");
    // Gauge levels are int64 but never negative in the rq vocabulary
    // (sizes, depths, byte totals); clamp defensively.
    AppendLine(&out, name, "", "",
               sample.value > 0 ? static_cast<uint64_t>(sample.value) : 0);
    AppendHelp(&out, name + "_peak", sample.name + " (high-water mark)");
    AppendType(&out, name + "_peak", "gauge");
    AppendLine(&out, name + "_peak", "", "",
               sample.peak > 0 ? static_cast<uint64_t>(sample.peak) : 0);
  }

  for (const HistogramBucketsSample& sample :
       HistogramRegistry::Global().SnapshotBuckets()) {
    std::string name = PrometheusMetricName(sample.name) + "_dist";
    AppendHelp(&out, name, sample.name);
    AppendType(&out, name, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (sample.buckets[i] == 0) continue;
      cumulative += sample.buckets[i];
      if (i + 1 >= Histogram::kNumBuckets) break;  // folded into +Inf
      char le[32];
      std::snprintf(le, sizeof(le), "{le=\"%" PRIu64 "\"}",
                    Histogram::BucketLowerBound(i + 1) - 1);
      AppendLine(&out, name, "_bucket", le, cumulative);
    }
    AppendLine(&out, name, "_bucket", "{le=\"+Inf\"}", sample.count);
    AppendLine(&out, name, "_sum", "", sample.sum);
    AppendLine(&out, name, "_count", "", sample.count);
  }

  return out;
}

Status WritePrometheusTextFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InvalidArgumentError("cannot open " + path + " for writing");
  }
  std::string text = RenderPrometheusText();
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return InternalError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace rq

// Always-on flight recorder: a lock-free fixed-size ring of completed-query
// summaries plus a latency-gated slow-query log (the observability layer's
// incident store; see docs/OBSERVABILITY.md).
//
// Production engines need post-hoc answers to "what was this process doing
// just before it fell over?" without having had tracing enabled. The flight
// recorder runs unconditionally: every top-level query operation — a path /
// RQ / Datalog containment check, a graph or Datalog evaluation — records
// one fixed-size summary (kind, verdict, duration, primary work metric) on
// completion. Recording is a ticket fetch_add plus a handful of relaxed
// atomic stores guarded by a per-slot seqlock tag, so it is safe from any
// thread and costs nothing measurable per query (each subsystem already
// flushes its counters once per operation at the same point).
//
// The ring keeps the newest kCapacity summaries, dropping oldest-first on
// overflow; evicted summaries are counted by `obs.flight_dropped`
// (alongside `obs.dropped_spans` for the tracer's cap). Readers detect
// slots being concurrently overwritten via the seqlock tag and skip them —
// a snapshot never contains a torn entry (asserted under tsan in
// tests/concurrency/flight_recorder_concurrency_test.cc).
//
// Queries slower than the threshold (default 100 ms; see
// SetSlowQueryThresholdNs, env RQ_SLOW_QUERY_MS) additionally land in the
// slow-query log — a mutex-guarded bounded deque that may carry the query
// label installed by the CLI (SetFlightQueryLabel). Slow queries are rare
// by construction, so the lock is off the hot path.
//
// Dumps: WriteFlightDump renders ring + slow log as text on demand
// (rqcheck/rqeval --flight-dump); DumpFlightRecorderToFd is
// async-signal-safe (no locks, no allocation, write(2) only) and is what
// the fatal-signal handler installed by InstallFlightSignalHandler calls
// before re-raising, so a crashing process leaves its last kCapacity
// queries on stderr.
#ifndef RQ_OBS_FLIGHT_RECORDER_H_
#define RQ_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rq {
namespace obs {

// Top-level query operations the recorder distinguishes. Values are stable
// (they appear in dumps); append only.
enum class QueryKind : uint8_t {
  kUnknown = 0,
  kPathContainment,     // CheckPathQueryContainment (RPQ / 2RPQ fold)
  kUc2RpqContainment,   // CheckUc2RpqContainment
  kRqContainment,       // CheckRqContainment
  kDatalogContainment,  // CheckDatalogContainment
  kGraphEval,           // EvalPathQueryFromSources (multi-source BFS)
  kUc2RpqEval,          // EvalUc2Rpq
  kRqEval,              // EvalRqQuery
  kDatalogEval,         // EvalDatalogProgram
};
const char* QueryKindName(QueryKind kind);

// Verdict codes carried by a summary. Containment checks map their
// Certainty (proved/refuted/unknown); evaluations record kOk. The primary
// `work` metric is per-kind: states explored for containment, expansions
// checked for RQ containment, fixpoint rounds for Datalog, product states
// for graph evaluation, answer tuples for the relational evaluators.
inline constexpr int32_t kFlightVerdictOk = 0;
inline constexpr int32_t kFlightVerdictRefuted = 1;
inline constexpr int32_t kFlightVerdictUnknown = 2;
inline constexpr int32_t kFlightVerdictError = 3;
inline constexpr int32_t kFlightVerdictTimeout = 4;
inline constexpr int32_t kFlightVerdictAbandoned = -1;
const char* FlightVerdictName(int32_t verdict);

// Verdict for an entry point unwinding with `error`: deadline expiry and
// cancellation record kFlightVerdictTimeout (the operation was cut short,
// not wrong), anything else kFlightVerdictError.
inline int32_t FlightVerdictFromError(const Status& error) {
  return (error.code() == StatusCode::kDeadlineExceeded ||
          error.code() == StatusCode::kCancelled)
             ? kFlightVerdictTimeout
             : kFlightVerdictError;
}

// Reader-side copy of one completed-query summary (oldest-first in
// snapshots; seq is the global completion ticket, starting at 0).
struct FlightEntry {
  uint64_t seq = 0;
  QueryKind kind = QueryKind::kUnknown;
  int32_t verdict = kFlightVerdictOk;
  uint64_t start_ns = 0;     // steady-clock, relative to recorder creation
  uint64_t duration_ns = 0;
  uint64_t work = 0;         // per-kind primary work metric (see above)
  uint64_t mem_peak = 0;     // peak tracked bytes (MemContext high-water;
                             // 0 when no context was installed)
};

// One slow-query log row (richer than a ring slot: carries the label the
// CLI installed via SetFlightQueryLabel, empty when none was set).
struct SlowQueryEntry {
  uint64_t seq = 0;
  QueryKind kind = QueryKind::kUnknown;
  int32_t verdict = kFlightVerdictOk;
  uint64_t duration_ns = 0;
  uint64_t work = 0;
  uint64_t mem_peak = 0;
  std::string label;
};

class FlightRecorder {
 public:
  static constexpr size_t kCapacity = 256;      // ring slots (power of two)
  static constexpr size_t kMaxSlowQueries = 64; // slow-log rows kept

  static FlightRecorder& Global();

  // Records one completed query. Lock-free; callable from any thread.
  // `mem_peak` is the query's MemContext high-water mark in bytes (0 when
  // none was installed around the operation).
  void Record(QueryKind kind, int32_t verdict, uint64_t duration_ns,
              uint64_t work, uint64_t mem_peak = 0);

  // Consistent copies of the ring (oldest-first, torn slots skipped) and
  // the slow-query log (oldest-first).
  std::vector<FlightEntry> Snapshot() const;
  std::vector<SlowQueryEntry> SlowQueries() const;

  // Total queries ever recorded (ring tickets issued).
  uint64_t TotalRecorded() const;

  // Latency gate for the slow-query log; 0 disables it. The initial value
  // is 100 ms, overridable via env RQ_SLOW_QUERY_MS at first use.
  void SetSlowQueryThresholdNs(uint64_t ns);
  uint64_t SlowQueryThresholdNs() const;

  // Context label copied into subsequent slow-query entries (the CLI's
  // query text); empty clears it. See SetFlightQueryLabel.
  void SetQueryLabel(std::string label);
  // The currently installed label ("" when none). The Prometheus exporter
  // surfaces it as rq_query_info{query="..."}.
  std::string QueryLabel() const;

  // Async-signal-safe text dump of the ring to a file descriptor: no
  // locks, no allocation, integer formatting into a stack buffer. The
  // slow-query log is mutex-guarded and therefore NOT dumped here — use
  // WriteFlightDump outside signal context for the full picture.
  void DumpToFd(int fd) const;

  // Clears ring, slow log, and ticket counter (tests; not atomic with
  // respect to concurrent Record calls).
  void Reset();

 private:
  FlightRecorder();

  struct Slot {
    // Seqlock tag: 0 = never written; odd = write in progress; even and
    // nonzero = stable, holding (seq + 1) * 2 for the entry it carries.
    std::atomic<uint64_t> tag{0};
    std::atomic<uint64_t> kind_verdict{0};  // kind << 32 | (uint32)verdict
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> duration_ns{0};
    std::atomic<uint64_t> work{0};
    std::atomic<uint64_t> mem_peak{0};
  };

  std::atomic<uint64_t> next_seq_{0};
  uint64_t epoch_ns_ = 0;  // steady-clock origin for start_ns
  Slot slots_[kCapacity];

  std::atomic<uint64_t> slow_threshold_ns_;
  mutable std::mutex slow_mu_;
  std::deque<SlowQueryEntry> slow_;
  std::string label_;  // guarded by slow_mu_
};

// RAII timing helper for the top-level entry points: starts the clock at
// construction; Finish(verdict, work) records the summary, sampling the
// calling thread's installed MemContext (if any) for the entry's mem_peak
// field. A timer destroyed without Finish records kFlightVerdictAbandoned
// (an error path unwound through the entry point).
//
// Nested timers on the SAME thread are suppressed: only the outermost
// records, so a CheckRqContainment that dispatches to the 2RPQ fold or
// evaluates Q2 over a hundred expansions contributes one ring entry, not
// hundreds of sub-operation entries. Work fanned out to pool threads (the
// batch containment engine) starts at depth zero per worker and records
// per job — in a batch, the individual checks ARE the queries.
class FlightTimer {
 public:
  explicit FlightTimer(QueryKind kind);
  ~FlightTimer();

  FlightTimer(const FlightTimer&) = delete;
  FlightTimer& operator=(const FlightTimer&) = delete;

  void Finish(int32_t verdict, uint64_t work);

 private:
  QueryKind kind_;
  uint64_t start_ns_;
  bool finished_ = false;
  bool outermost_ = false;  // false for a nested timer: records nothing
};

// Installs `label` (typically the CLI's query text) as the context
// attached to subsequent slow-query log entries; empty clears it.
void SetFlightQueryLabel(std::string label);

// Human-readable dump of ring + slow log; path "-" writes to stderr.
Status WriteFlightDump(const std::string& path);

// Installs fatal-signal handlers (SIGSEGV, SIGBUS, SIGFPE, SIGILL,
// SIGABRT) that dump the ring to stderr and re-raise with default
// disposition. Idempotent; POSIX-only (no-op elsewhere).
void InstallFlightSignalHandler();

}  // namespace obs
}  // namespace rq

#endif  // RQ_OBS_FLIGHT_RECORDER_H_

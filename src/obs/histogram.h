// Lock-free log-bucketed latency/value histograms (the observability
// layer's distribution store; see docs/OBSERVABILITY.md).
//
// A Histogram is a fixed array of relaxed-atomic buckets: 4 singleton
// buckets for values < 4, then one power-of-2 range per leading-bit
// position (2..63), each split into kSubBuckets (4) linear sub-buckets —
// any uint64 value lands in one of 252 buckets with <= 25% relative
// bucket width. Record() is three relaxed atomic adds plus a CAS-max — no lock,
// no allocation — so it is safe from any thread and cheap enough to call
// once per operation (per containment check, per fold construction, per
// fixpoint evaluation), matching the counter flush discipline.
//
// Quantile extraction (p50/p90/p99) returns the LOWER BOUND of the bucket
// containing the requested rank: exact for values < kSubBuckets and for
// values on bucket boundaries (powers of two and their quarter points),
// and an underestimate by < 25% otherwise. The maximum is tracked exactly.
//
// Like counters, named histograms live forever in a process-wide registry
// (`<subsystem>.<noun>` naming, typically sharing the name of the counter
// whose per-operation distribution they record). Standalone instances can
// also be constructed directly (the span tracer owns one per span name for
// duration distributions; see obs/trace.h).
#ifndef RQ_OBS_HISTOGRAM_H_
#define RQ_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rq {
namespace obs {

class Histogram {
 public:
  static constexpr size_t kSubBucketBits = 2;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;  // 4
  // Sub-bucket groups for leading-bit positions 1..63 (the group for
  // bit positions 0-1 is the 4 singleton buckets), so the top bucket's
  // lower bound (2^63 + 3 * 2^61) still fits in a uint64.
  static constexpr size_t kNumBuckets = 63 * kSubBuckets;             // 252

  explicit Histogram(std::string name = std::string())
      : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  // Lower bound of the bucket holding the value at rank ceil(q * count),
  // computed over a relaxed snapshot of the buckets; 0 when empty, the
  // exact maximum for q >= 1. q outside [0, 1] is clamped.
  uint64_t ValueAtQuantile(double q) const;

  // Relaxed copy of the raw per-bucket counts. This is the substrate both
  // for windowed quantiles (obs/profile.h diffs two snapshots) and for the
  // Prometheus cumulative-bucket rendering (obs/prometheus.h maps bucket
  // index i to the inclusive upper bound BucketLowerBound(i + 1) - 1).
  std::array<uint64_t, kNumBuckets> SnapshotBuckets() const;

  // Quantile extraction over an externally held bucket snapshot (same
  // lower-bound semantics as ValueAtQuantile; 0 when the snapshot is
  // empty). Lets callers compute quantiles of a bucket DIFFERENCE — the
  // per-query windows of obs/profile.h — without a live Histogram.
  static uint64_t QuantileFromBuckets(
      const std::array<uint64_t, kNumBuckets>& buckets, double q);

  // Zeroes every bucket and the count/sum/max. Not atomic with respect to
  // concurrent Record() calls (meant for tests and per-run bench resets).
  void Reset();

  // Bucket mapping, exposed for boundary tests.
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(size_t index);

 private:
  std::string name_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

// Snapshot row for export (export.h, schema rq-obs/2).
struct HistogramSample {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
};

// Full-resolution snapshot row: summary plus the raw bucket counts
// (obs/profile.h windows, obs/prometheus.h cumulative buckets).
struct HistogramBucketsSample {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};
};

// Process-wide histogram registry, mirroring the counter registry: lookup
// takes a lock and interns the name; callers cache the stable handle.
class HistogramRegistry {
 public:
  static HistogramRegistry& Global();

  Histogram* GetHistogram(std::string_view name);

  // Name-sorted snapshot with quantiles extracted.
  std::vector<HistogramSample> Snapshot() const;

  // Name-sorted snapshot carrying the raw buckets.
  std::vector<HistogramBucketsSample> SnapshotBuckets() const;

  // Resets every histogram (per-run bench deltas; histograms themselves
  // stay registered).
  void ResetAll();

 private:
  HistogramRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;
};

// Shorthand for HistogramRegistry::Global().GetHistogram(name).
Histogram* GetHistogram(std::string_view name);

}  // namespace obs
}  // namespace rq

#endif  // RQ_OBS_HISTOGRAM_H_

// Observability surface of the memory accountant (common/mem.h): the
// global mem.* gauge/histogram/counter handles the charging hooks flush
// into, the export-time RSS sample, and a bounded timeline feeding
// Chrome-trace counter ("C") events. Vocabulary in docs/OBSERVABILITY.md.
#ifndef RQ_OBS_MEM_STATS_H_
#define RQ_OBS_MEM_STATS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/mem.h"
#include "obs/counters.h"
#include "obs/gauge.h"
#include "obs/histogram.h"

namespace rq {
namespace obs {

// Typed view over the mem.* registry entries (the memory twin of the
// structs in obs/subsystems.h). Live levels rise and fall with charges and
// releases; peaks are the process-wide high-water marks.
struct MemStats {
  // mem.<subsystem>_bytes, indexed by MemSubsystem.
  std::array<Gauge*, kMemSubsystemCount> subsystem_bytes;
  // Sum of all subsystem charges currently live.
  Gauge& tracked_bytes = *GetGauge("mem.tracked_bytes");
  // OS view (getrusage ru_maxrss), sampled by SampleRssGauge at export
  // time so self-reported accounting can be sanity-checked.
  Gauge& peak_rss_bytes = *GetGauge("mem.peak_rss_bytes");
  // Per-charge distribution of positive charge sizes.
  Histogram& alloc_bytes = *GetHistogram("mem.alloc_bytes");
  // Budget trips (once per MemContext that latched kResourceExhausted).
  Counter& budget_exceeded = *GetCounter("mem.budget_exceeded");

  static MemStats& Get();

  MemStats();
};

// Unit getrusage reports ru_maxrss in. POSIX leaves it unspecified: Linux
// uses kilobytes, macOS and the BSDs report bytes. Scaling unconditionally
// by 1024 inflated mem.peak_rss_bytes 1024x off-Linux — enough to make the
// tracked <= rss sanity bound vacuously true and the gauge useless.
enum class RuMaxRssUnit { kKilobytes, kBytes };

// The unit this build's platform reports.
#if defined(__APPLE__) || defined(__FreeBSD__) || defined(__NetBSD__) || \
    defined(__OpenBSD__) || defined(__DragonFly__)
inline constexpr RuMaxRssUnit kPlatformRuMaxRssUnit = RuMaxRssUnit::kBytes;
#else
inline constexpr RuMaxRssUnit kPlatformRuMaxRssUnit =
    RuMaxRssUnit::kKilobytes;
#endif

// Converts a raw ru_maxrss reading to bytes under the given unit. Split
// out (with the unit explicit) so the scaling is testable on every
// platform, not just the one the test happens to run on.
inline uint64_t RuMaxRssToBytes(
    uint64_t raw, RuMaxRssUnit unit = kPlatformRuMaxRssUnit) {
  return unit == RuMaxRssUnit::kKilobytes ? raw * 1024 : raw;
}

// Reads the process peak RSS from the OS (ru_maxrss scaled to bytes per
// kPlatformRuMaxRssUnit; 0 where unsupported) and Set()s
// mem.peak_rss_bytes. Called by the JSON / Prometheus / profile exporters
// so the gauge is fresh in every dump.
uint64_t SampleRssGauge();

// One point on the memory timeline: the live per-subsystem levels at
// `ts_ns` (absolute steady-clock nanoseconds).
struct MemTimelineSample {
  uint64_t ts_ns = 0;
  std::array<int64_t, kMemSubsystemCount> bytes{};
};

// The charging hook records a sample whenever tracked bytes moved by at
// least kMemTimelineDeltaBytes since the last sample — but only while span
// tracing is enabled, so the mutex + vector cost nothing in production.
// Bounded at kMemTimelineCap samples (oldest kept; a saturated timeline
// simply stops growing).
inline constexpr int64_t kMemTimelineDeltaBytes = 64 * 1024;
inline constexpr size_t kMemTimelineCap = 4096;

// Called by MemCharge after moving the gauges. Cheap no-op when tracing
// is disabled.
void MaybeRecordMemTimelineSample();

std::vector<MemTimelineSample> CollectMemTimeline();
void ClearMemTimeline();

}  // namespace obs
}  // namespace rq

#endif  // RQ_OBS_MEM_STATS_H_

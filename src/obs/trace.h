// Scoped span tracing (the observability layer's timing store; see
// docs/OBSERVABILITY.md).
//
//   void FoldTwoNfa(...) {
//     RQ_TRACE_SPAN("fold.construct");
//     ...
//   }
//
// Spans record wall-time and nesting (depth + parent index), and may carry
// numeric attributes (typically counter values for the traced operation).
// Tracing is off by default: a disabled RQ_TRACE_SPAN costs one relaxed
// atomic load and a predictable branch, so instrumented hot paths stay at
// full speed (bench_rpq_containment is the regression guard, budget ≤2%).
//
// Two enabled modes:
//  * kAggregate — only per-name aggregates (count, total wall-time, and a
//    duration histogram yielding p50/p90/p99/max) are kept; bounded
//    memory, suitable for benchmark loops running millions of operations.
//  * kFull — every span is additionally recorded as a row (name, start,
//    duration, depth, parent, tid), capped at kMaxRecordedSpans to bound
//    memory; spans beyond the cap still aggregate and are counted by the
//    `obs.dropped_spans` counter. Suitable for tracing single CLI
//    invocations (rqcheck --trace / --chrome-trace).
//
// Span names follow the counter naming scheme `<subsystem>.<verb-or-noun>`.
// Thread attribution: each thread that records a span is assigned a small
// dense id (`tid`, 0 for the first recording thread) for the lifetime of
// the trace session; `SpanRecord::parent` is always resolved WITHIN the
// owning thread — concurrent batch workers each form their own span tree
// (one Chrome-trace lane per worker, obs/chrome_trace.h). Session resets
// (SetTraceMode / ClearTrace) bump an internal generation; spans that
// straddle a reset are discarded rather than linked into the new session.
#ifndef RQ_OBS_TRACE_H_
#define RQ_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rq {
namespace obs {

enum class TraceMode {
  kDisabled,
  kAggregate,
  kFull,
};

// A finished (or still open, duration 0) span row, in start order.
struct SpanRecord {
  std::string name;
  uint64_t start_ns = 0;     // relative to the trace session start
  uint64_t duration_ns = 0;  // 0 while the span is open
  uint32_t depth = 0;        // nesting depth within its thread, root = 0
  int32_t parent = -1;  // index of the enclosing span (same tid), -1 = root
  uint32_t tid = 0;     // dense per-session thread id (0 = first thread)
  std::vector<std::pair<std::string, uint64_t>> attrs;
};

// Per-name aggregate over all spans since the session started (both
// enabled modes maintain these). Quantiles come from a log-bucketed
// duration histogram (obs/histogram.h): exact max, bucket-lower-bound
// estimates for p50/p90/p99.
struct SpanStats {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p90_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t max_ns = 0;
};

inline constexpr size_t kMaxRecordedSpans = 1 << 20;

TraceMode CurrentTraceMode();
// Switching modes clears any previously collected spans and aggregates and
// restarts the session clock.
void SetTraceMode(TraceMode mode);
// Clears collected spans/aggregates and restarts the session clock without
// changing the mode.
void ClearTrace();

// Absolute steady-clock nanoseconds when the current trace session
// started; SpanRecord::start_ns values are relative to this point (so are
// the Chrome-trace memory counter events built from obs/mem_stats.h).
uint64_t TraceSessionStartNs();

// Copies of the collected data. Records are in start order; stats are
// name-sorted.
std::vector<SpanRecord> CollectSpanRecords();
std::vector<SpanStats> CollectSpanStats();
// Number of spans that exceeded kMaxRecordedSpans in kFull mode this
// session (they are aggregated but not recorded as rows). Also exposed
// process-wide as the `obs.dropped_spans` counter.
uint64_t DroppedSpanRecords();

// RAII span. `name` must outlive the span (string literals only).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (CurrentTraceMode() != TraceMode::kDisabled) Begin(name);
  }
  ~ScopedSpan() {
    if (active_) End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches a numeric attribute (no-op when tracing is disabled or the
  // span's row was dropped by the cap).
  void AddAttr(const char* key, uint64_t value);

 private:
  void Begin(const char* name);
  void End();

  bool active_ = false;
  const char* name_ = nullptr;
  int32_t record_index_ = -1;  // -1 when not recorded (aggregate-only)
  uint64_t generation_ = 0;    // session the span belongs to
  uint64_t start_abs_ns_ = 0;  // absolute steady-clock time at Begin
};

#define RQ_OBS_CONCAT_INNER(a, b) a##b
#define RQ_OBS_CONCAT(a, b) RQ_OBS_CONCAT_INNER(a, b)

// Opens a span for the rest of the enclosing scope.
#define RQ_TRACE_SPAN(name) \
  ::rq::obs::ScopedSpan RQ_OBS_CONCAT(rq_obs_span_, __LINE__)(name)

// Variant that names the span object so attributes can be attached.
#define RQ_TRACE_SPAN_VAR(var, name) ::rq::obs::ScopedSpan var(name)

}  // namespace obs
}  // namespace rq

#endif  // RQ_OBS_TRACE_H_

#include "obs/subsystems.h"

namespace rq {
namespace obs {

// Each view is a leaked singleton: the handles inside point into the
// process-lifetime registry, so tearing them down at exit buys nothing.

RegexCounters& RegexCounters::Get() {
  static RegexCounters* instance = new RegexCounters();
  return *instance;
}

ContainmentCounters& ContainmentCounters::Get() {
  static ContainmentCounters* instance = new ContainmentCounters();
  return *instance;
}

FoldCounters& FoldCounters::Get() {
  static FoldCounters* instance = new FoldCounters();
  return *instance;
}

ComplementCounters& ComplementCounters::Get() {
  static ComplementCounters* instance = new ComplementCounters();
  return *instance;
}

CqCounters& CqCounters::Get() {
  static CqCounters* instance = new CqCounters();
  return *instance;
}

RqCounters& RqCounters::Get() {
  static RqCounters* instance = new RqCounters();
  return *instance;
}

CacheCounters& CacheCounters::Get() {
  static CacheCounters* instance = new CacheCounters();
  return *instance;
}

GraphEvalCounters& GraphEvalCounters::Get() {
  static GraphEvalCounters* instance = new GraphEvalCounters();
  return *instance;
}

IncrCounters& IncrCounters::Get() {
  static IncrCounters* instance = new IncrCounters();
  return *instance;
}

BatchCounters& BatchCounters::Get() {
  static BatchCounters* instance = new BatchCounters();
  return *instance;
}

ServerCounters& ServerCounters::Get() {
  static ServerCounters* instance = new ServerCounters();
  return *instance;
}

ObsCounters& ObsCounters::Get() {
  static ObsCounters* instance = new ObsCounters();
  return *instance;
}

DeadlineCounters& DeadlineCounters::Get() {
  static DeadlineCounters* instance = new DeadlineCounters();
  return *instance;
}

DatalogCounters& DatalogCounters::Get() {
  static DatalogCounters* instance = new DatalogCounters();
  return *instance;
}

}  // namespace obs
}  // namespace rq

// JSON export of the observability state (schema "rq-obs/2") and the
// human-readable span tree used by `rqcheck --trace` / `rqeval --trace`.
//
// Snapshot schema (stable; see docs/OBSERVABILITY.md):
//
//   {
//     "schema": "rq-obs/2",
//     "counters":   [ {"name": "...", "value": N}, ... ],          // sorted
//     "gauges":     [ {"name": "...", "value": N, "peak": N}, ... ],
//     "histograms": [ {"name": "...", "count": N, "sum": N, "max": N,
//                      "p50": N, "p90": N, "p99": N}, ... ],
//     "span_stats": [ {"name": "...", "count": N, "total_ns": N,
//                      "p50_ns": N, "p90_ns": N, "p99_ns": N,
//                      "max_ns": N}, ... ],                        // sorted
//     "spans": [ {"name": "...", "start_ns": N, "duration_ns": N,
//                 "depth": N, "parent": I,                       // -1 = root
//                 "tid": N,                  // per-session thread id
//                 "attrs": {"key": N, ...}}, ... ],              // start order
//     "dropped_spans": N
//   }
//
// "spans" is present only when full tracing was on; "span_stats" covers
// both enabled modes. One JSON object per snapshot; arrays hold one entry
// per counter / gauge / histogram / span. Schema history: "rq-obs/1" had
// no gauges/histograms sections, no span-stats quantiles, and no tid.
#ifndef RQ_OBS_EXPORT_H_
#define RQ_OBS_EXPORT_H_

#include <cstdio>
#include <string>

#include "common/status.h"
#include "obs/json.h"

namespace rq {
namespace obs {

// The full observability snapshot as a JSON document.
JsonValue SnapshotJson();

// Serialized snapshot (pretty-printed, trailing newline).
std::string SnapshotJsonString();

// Writes the snapshot to `path` (overwrites).
Status WriteSnapshotJsonFile(const std::string& path);

// Prints the recorded spans as an indented tree with durations and attrs,
// followed by the non-zero counters, gauges, and histograms. Requires full
// tracing; in aggregate mode prints per-name totals and quantiles instead.
void PrintSpanTree(std::FILE* out);

}  // namespace obs
}  // namespace rq

#endif  // RQ_OBS_EXPORT_H_

#include "obs/profile.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "obs/counters.h"
#include "obs/gauge.h"
#include "obs/mem_stats.h"
#include "obs/trace.h"

namespace rq {
namespace obs {

namespace {

std::atomic<QueryProfile*> g_active{nullptr};

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

QueryProfile* QueryProfile::Active() {
  return g_active.load(std::memory_order_acquire);
}

void QueryProfile::Begin(std::string tool, std::string query_class,
                         std::string query_text) {
  QueryProfile* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_acq_rel)) {
    return;  // another profile is collecting; stay inactive
  }
  active_ = true;
  tool_ = std::move(tool);
  query_class_ = std::move(query_class);
  query_text_ = std::move(query_text);

  for (const CounterSample& sample : Registry::Global().Snapshot()) {
    counter_baseline_[sample.name] = sample.value;
  }
  for (const HistogramBucketsSample& sample :
       HistogramRegistry::Global().SnapshotBuckets()) {
    HistogramBaseline baseline;
    baseline.count = sample.count;
    baseline.sum = sample.sum;
    baseline.buckets = sample.buckets;
    histogram_baseline_[sample.name] = baseline;
  }
  for (const GaugeSample& sample : GaugeRegistry::Global().Snapshot()) {
    gauge_baseline_[sample.name] = {sample.value, sample.peak};
  }
  if (CurrentTraceMode() != TraceMode::kDisabled) {
    for (const SpanStats& stats : CollectSpanStats()) {
      span_baseline_[stats.name] = {stats.count, stats.total_ns};
    }
  }
  begin_ns_ = SteadyNowNs();
}

void QueryProfile::End() {
  if (!active_) return;
  wall_ns_ = SteadyNowNs() - begin_ns_;

  // Per-query memory attribution from the installed context (peaks, not
  // live levels: transient scopes have already released by now). Sampled
  // before the gauge snapshot below so mem.peak_rss_bytes is fresh in the
  // window.
  if (const MemContext* mem = MemContext::Current(); mem != nullptr) {
    memory_.present = true;
    memory_.peak_total_bytes = mem->peak_total_bytes();
    memory_.budget_bytes = mem->budget_bytes();
    memory_.exceeded = mem->exceeded();
    for (int i = 0; i < kMemSubsystemCount; ++i) {
      memory_.peak_subsystem_bytes[i] =
          mem->peak_subsystem_bytes(static_cast<MemSubsystem>(i));
    }
  }
  SampleRssGauge();

  for (const CounterSample& sample : Registry::Global().Snapshot()) {
    auto it = counter_baseline_.find(sample.name);
    uint64_t before = it != counter_baseline_.end() ? it->second : 0;
    if (sample.value > before) {
      counters_.push_back({sample.name, sample.value - before});
    }
  }
  for (const HistogramBucketsSample& sample :
       HistogramRegistry::Global().SnapshotBuckets()) {
    auto it = histogram_baseline_.find(sample.name);
    HistogramBaseline before =
        it != histogram_baseline_.end() ? it->second : HistogramBaseline{};
    if (sample.count <= before.count) continue;
    ProfileHistogramDelta delta;
    delta.name = sample.name;
    delta.count = sample.count - before.count;
    delta.sum = sample.sum - before.sum;
    std::array<uint64_t, Histogram::kNumBuckets> window{};
    size_t highest = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      window[i] = sample.buckets[i] - before.buckets[i];
      if (window[i] > 0) highest = i;
    }
    delta.p50 = Histogram::QuantileFromBuckets(window, 0.50);
    delta.p90 = Histogram::QuantileFromBuckets(window, 0.90);
    delta.p99 = Histogram::QuantileFromBuckets(window, 0.99);
    delta.max = Histogram::BucketLowerBound(highest);
    histograms_.push_back(std::move(delta));
  }
  for (const GaugeSample& sample : GaugeRegistry::Global().Snapshot()) {
    auto it = gauge_baseline_.find(sample.name);
    GaugeBaseline before =
        it != gauge_baseline_.end() ? it->second : GaugeBaseline{};
    bool peak_raised = sample.peak > before.peak;
    if (sample.value == before.value && !peak_raised) continue;
    ProfileGaugeDelta delta;
    delta.name = sample.name;
    delta.begin_value = before.value;
    delta.end_value = sample.value;
    delta.end_peak = sample.peak;
    delta.peak_raised = peak_raised;
    gauges_.push_back(std::move(delta));
  }
  if (CurrentTraceMode() != TraceMode::kDisabled) {
    for (const SpanStats& stats : CollectSpanStats()) {
      auto it = span_baseline_.find(stats.name);
      SpanBaseline before =
          it != span_baseline_.end() ? it->second : SpanBaseline{};
      if (stats.count <= before.count) continue;
      spans_.push_back({stats.name, stats.count - before.count,
                        stats.total_ns - before.total_ns});
    }
  }

  collected_ = true;
  active_ = false;
  g_active.store(nullptr, std::memory_order_release);
}

void QueryProfile::AddNote(const std::string& key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  notes_[key] = std::move(value);
}

void QueryProfile::AddStat(const std::string& key, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_[key] += value;
}

void QueryProfile::RecordWorker(uint32_t worker, uint64_t jobs,
                                uint64_t busy_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  workers_.push_back({worker, jobs, busy_ns});
}

JsonValue QueryProfile::ToJson() const {
  JsonValue root = JsonValue::Object();
  root.Set("schema", JsonValue::String("rq-profile/1"));
  root.Set("tool", JsonValue::String(tool_));
  root.Set("class", JsonValue::String(query_class_));
  root.Set("query", JsonValue::String(query_text_));
  root.Set("collected", JsonValue::Bool(collected_));
  root.Set("wall_ns", JsonValue::Number(wall_ns_));

  JsonValue counters = JsonValue::Array();
  for (const ProfileCounterDelta& delta : counters_) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(delta.name));
    entry.Set("delta", JsonValue::Number(delta.delta));
    counters.Append(std::move(entry));
  }
  root.Set("counters", std::move(counters));

  JsonValue histograms = JsonValue::Array();
  for (const ProfileHistogramDelta& delta : histograms_) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(delta.name));
    entry.Set("count", JsonValue::Number(delta.count));
    entry.Set("sum", JsonValue::Number(delta.sum));
    entry.Set("p50", JsonValue::Number(delta.p50));
    entry.Set("p90", JsonValue::Number(delta.p90));
    entry.Set("p99", JsonValue::Number(delta.p99));
    entry.Set("max", JsonValue::Number(delta.max));
    histograms.Append(std::move(entry));
  }
  root.Set("histograms", std::move(histograms));

  JsonValue gauges = JsonValue::Array();
  for (const ProfileGaugeDelta& delta : gauges_) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(delta.name));
    entry.Set("begin", JsonValue::Number(delta.begin_value));
    entry.Set("end", JsonValue::Number(delta.end_value));
    entry.Set("peak", JsonValue::Number(delta.end_peak));
    entry.Set("peak_raised", JsonValue::Bool(delta.peak_raised));
    gauges.Append(std::move(entry));
  }
  root.Set("gauges", std::move(gauges));

  JsonValue spans = JsonValue::Array();
  for (const ProfileSpanDelta& delta : spans_) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(delta.name));
    entry.Set("count", JsonValue::Number(delta.count));
    entry.Set("total_ns", JsonValue::Number(delta.total_ns));
    spans.Append(std::move(entry));
  }
  root.Set("span_stats", std::move(spans));

  std::lock_guard<std::mutex> lock(mu_);
  JsonValue workers = JsonValue::Array();
  for (const ProfileWorker& worker : workers_) {
    JsonValue entry = JsonValue::Object();
    entry.Set("worker", JsonValue::Number(static_cast<uint64_t>(worker.worker)));
    entry.Set("jobs", JsonValue::Number(worker.jobs));
    entry.Set("busy_ns", JsonValue::Number(worker.busy_ns));
    workers.Append(std::move(entry));
  }
  root.Set("workers", std::move(workers));

  if (memory_.present) {
    JsonValue memory = JsonValue::Object();
    memory.Set("peak_total_bytes", JsonValue::Number(memory_.peak_total_bytes));
    memory.Set("budget_bytes", JsonValue::Number(memory_.budget_bytes));
    memory.Set("exceeded", JsonValue::Bool(memory_.exceeded));
    JsonValue per_subsystem = JsonValue::Object();
    for (int i = 0; i < kMemSubsystemCount; ++i) {
      if (memory_.peak_subsystem_bytes[i] == 0) continue;
      per_subsystem.Set(MemSubsystemName(static_cast<MemSubsystem>(i)),
                        JsonValue::Number(memory_.peak_subsystem_bytes[i]));
    }
    memory.Set("peak_subsystem_bytes", std::move(per_subsystem));
    root.Set("memory", std::move(memory));
  }

  JsonValue stats = JsonValue::Object();
  for (const auto& [key, value] : stats_) {
    stats.Set(key, JsonValue::Number(value));
  }
  root.Set("stats", std::move(stats));

  JsonValue notes = JsonValue::Object();
  for (const auto& [key, value] : notes_) {
    notes.Set(key, JsonValue::String(value));
  }
  root.Set("notes", std::move(notes));
  return root;
}

std::string QueryProfile::ToText() const {
  std::string out;
  out += "== rq-profile/1: " + tool_ + " " + query_class_ + "  (" +
         FormatMs(wall_ns_) + " wall)\n";
  if (!query_text_.empty()) out += "query: " + query_text_ + "\n";
  if (!collected_) {
    out += "(profile inactive: another profile was already collecting)\n";
    return out;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!notes_.empty()) {
      out += "plan:\n";
      for (const auto& [key, value] : notes_) {
        out += "  " + key + " = " + value + "\n";
      }
    }
    if (!stats_.empty()) {
      out += "stats:\n";
      for (const auto& [key, value] : stats_) {
        out += "  " + key + " = " + std::to_string(value) + "\n";
      }
    }
  }
  if (!spans_.empty()) {
    out += "phases (span time inside this query):\n";
    for (const ProfileSpanDelta& delta : spans_) {
      out += "  " + delta.name + "  count=" + std::to_string(delta.count) +
             "  total=" + FormatMs(delta.total_ns) + "\n";
    }
  }
  if (!counters_.empty()) {
    out += "counters (delta):\n";
    for (const ProfileCounterDelta& delta : counters_) {
      out += "  " + delta.name + "  +" + std::to_string(delta.delta) + "\n";
    }
  }
  if (!histograms_.empty()) {
    out += "distributions (this query only):\n";
    for (const ProfileHistogramDelta& delta : histograms_) {
      out += "  " + delta.name + "  count=" + std::to_string(delta.count) +
             "  p50=" + std::to_string(delta.p50) +
             "  p99=" + std::to_string(delta.p99) +
             "  max~=" + std::to_string(delta.max) + "\n";
    }
  }
  if (!gauges_.empty()) {
    out += "gauges:\n";
    for (const ProfileGaugeDelta& delta : gauges_) {
      out += "  " + delta.name + "  " +
             std::to_string(delta.begin_value) + " -> " +
             std::to_string(delta.end_value);
      if (delta.peak_raised) {
        out += "  (new peak " + std::to_string(delta.end_peak) + ")";
      }
      out += "\n";
    }
  }
  if (memory_.present) {
    out += "memory (peak bytes, this query):\n";
    out += "  total  " + std::to_string(memory_.peak_total_bytes);
    if (memory_.budget_bytes != 0) {
      out += "  (budget " + std::to_string(memory_.budget_bytes) +
             (memory_.exceeded ? ", EXCEEDED)" : ")");
    }
    out += "\n";
    for (int i = 0; i < kMemSubsystemCount; ++i) {
      if (memory_.peak_subsystem_bytes[i] == 0) continue;
      out += std::string("  ") +
             MemSubsystemName(static_cast<MemSubsystem>(i)) + "  " +
             std::to_string(memory_.peak_subsystem_bytes[i]) + "\n";
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!workers_.empty()) {
      out += "batch workers:\n";
      for (const ProfileWorker& worker : workers_) {
        out += "  w" + std::to_string(worker.worker) +
               ": jobs=" + std::to_string(worker.jobs) +
               "  busy=" + FormatMs(worker.busy_ns) + "\n";
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace rq

#include "obs/counters.h"

namespace rq {
namespace obs {

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

Counter* Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  auto counter = std::unique_ptr<Counter>(new Counter(std::string(name)));
  Counter* raw = counter.get();
  counters_.emplace(std::string(name), std::move(counter));
  return raw;
}

std::vector<CounterSample> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, counter->value()});
  }
  return out;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->value_.store(0, std::memory_order_relaxed);
  }
}

Counter* GetCounter(std::string_view name) {
  return Registry::Global().GetCounter(name);
}

CounterDelta::CounterDelta() {
  for (CounterSample& sample : Registry::Global().Snapshot()) {
    baseline_.emplace(std::move(sample.name), sample.value);
  }
}

uint64_t CounterDelta::Delta(std::string_view name) const {
  uint64_t now = Registry::Global().GetCounter(name)->value();
  auto it = baseline_.find(name);
  uint64_t base = it == baseline_.end() ? 0 : it->second;
  return now - base;
}

std::vector<CounterSample> CounterDelta::Deltas() const {
  std::vector<CounterSample> out;
  for (CounterSample& sample : Registry::Global().Snapshot()) {
    auto it = baseline_.find(sample.name);
    uint64_t base = it == baseline_.end() ? 0 : it->second;
    if (sample.value > base) out.push_back({sample.name, sample.value - base});
  }
  return out;
}

}  // namespace obs
}  // namespace rq

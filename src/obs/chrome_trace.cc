#include "obs/chrome_trace.h"

#include <cstdio>
#include <set>
#include <string>
#include <string_view>

#include "obs/mem_stats.h"
#include "obs/trace.h"

namespace rq {
namespace obs {

namespace {

// "fold.construct" -> "fold"; names without a dot are their own category.
std::string CategoryOf(std::string_view name) {
  size_t dot = name.find('.');
  return std::string(dot == std::string_view::npos ? name
                                                   : name.substr(0, dot));
}

JsonValue ThreadNameEvent(uint32_t tid) {
  JsonValue event = JsonValue::Object();
  event.Set("name", JsonValue::String("thread_name"));
  event.Set("ph", JsonValue::String("M"));
  event.Set("pid", JsonValue::Number(uint64_t{1}));
  event.Set("tid", JsonValue::Number(static_cast<uint64_t>(tid)));
  JsonValue args = JsonValue::Object();
  args.Set("name", JsonValue::String(
                       tid == 0 ? "main" : "worker-" + std::to_string(tid)));
  event.Set("args", std::move(args));
  return event;
}

}  // namespace

JsonValue ChromeTraceJson() {
  std::vector<SpanRecord> records = CollectSpanRecords();

  JsonValue events = JsonValue::Array();
  std::set<uint32_t> tids;
  for (const SpanRecord& record : records) tids.insert(record.tid);
  for (uint32_t tid : tids) events.Append(ThreadNameEvent(tid));

  for (const SpanRecord& record : records) {
    JsonValue event = JsonValue::Object();
    event.Set("name", JsonValue::String(record.name));
    event.Set("cat", JsonValue::String(CategoryOf(record.name)));
    event.Set("ph", JsonValue::String("X"));
    // Trace-event timestamps are microseconds; doubles keep sub-µs detail.
    event.Set("ts",
              JsonValue::Number(static_cast<double>(record.start_ns) / 1e3));
    event.Set("dur", JsonValue::Number(
                         static_cast<double>(record.duration_ns) / 1e3));
    event.Set("pid", JsonValue::Number(uint64_t{1}));
    event.Set("tid", JsonValue::Number(static_cast<uint64_t>(record.tid)));
    if (!record.attrs.empty()) {
      JsonValue args = JsonValue::Object();
      for (const auto& [key, value] : record.attrs) {
        args.Set(key, JsonValue::Number(value));
      }
      event.Set("args", std::move(args));
    }
    events.Append(std::move(event));
  }

  // Memory counter ("C") events: one stacked-area lane of live bytes per
  // subsystem, sampled by the charging hook (obs/mem_stats.h). Timeline
  // timestamps are absolute; span timestamps are session-relative, so
  // rebase on the session start and drop pre-session samples.
  uint64_t session_start = TraceSessionStartNs();
  for (const MemTimelineSample& sample : CollectMemTimeline()) {
    if (sample.ts_ns < session_start) continue;
    JsonValue event = JsonValue::Object();
    event.Set("name", JsonValue::String("mem.tracked_bytes"));
    event.Set("cat", JsonValue::String("mem"));
    event.Set("ph", JsonValue::String("C"));
    event.Set("ts", JsonValue::Number(
                        static_cast<double>(sample.ts_ns - session_start) /
                        1e3));
    event.Set("pid", JsonValue::Number(uint64_t{1}));
    JsonValue args = JsonValue::Object();
    for (int i = 0; i < kMemSubsystemCount; ++i) {
      args.Set(MemSubsystemName(static_cast<MemSubsystem>(i)),
               JsonValue::Number(static_cast<double>(
                   sample.bytes[static_cast<size_t>(i)])));
    }
    event.Set("args", std::move(args));
    events.Append(std::move(event));
  }

  JsonValue root = JsonValue::Object();
  root.Set("traceEvents", std::move(events));
  root.Set("displayTimeUnit", JsonValue::String("ns"));
  return root;
}

Status WriteChromeTraceFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return InvalidArgumentError("cannot open " + path + " for writing");
  }
  std::string text = ChromeTraceJson().Dump(1);
  text.push_back('\n');
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return InternalError("short write to " + path);
  }
  return Status::Ok();
}

}  // namespace obs
}  // namespace rq

// Prometheus text-exposition rendering of the observability registries
// (exposition format version 0.0.4; the scrape-format sibling of the
// rq-obs/2 JSON export in obs/export.h — see docs/OBSERVABILITY.md).
//
// Every registered counter, gauge, and histogram is rendered with the
// metric name sanitized to [a-zA-Z0-9_:] and namespaced `rq_`
// (`containment.states_explored` -> `rq_containment_states_explored`):
//
//  * counters  -> `# TYPE rq_<name> counter` + one sample;
//  * gauges    -> two gauge families, `rq_<name>` (current level) and
//    `rq_<name>_peak` (high-water mark);
//  * histograms -> a `rq_<name>_dist` histogram family with cumulative
//    `_bucket{le="..."}` / `_sum` / `_count` series. The `_dist` suffix
//    keeps the family distinct from the same-named counter (a histogram
//    shares its counter's dotted name by convention; Prometheus forbids
//    one name with two types). Bucket index i of the 252-bucket
//    log-bucketed layout (obs/histogram.h) holds integer values in
//    [BucketLowerBound(i), BucketLowerBound(i+1)), so its inclusive upper
//    bound — the Prometheus `le` — is BucketLowerBound(i+1) - 1; the
//    rendering emits one cumulative line per OCCUPIED bucket plus the
//    mandatory `le="+Inf"` (equal to `_count`), keeping the output sparse
//    while preserving exact cumulative semantics for integer samples.
//
// Every family carries a `# HELP` line holding the original dotted
// registry name (escaped per the format: `\\` and `\n`), so a scrape can
// be mapped back to the docs/OBSERVABILITY.md vocabulary without
// un-sanitizing. When the CLI installed a flight-recorder query label
// (SetFlightQueryLabel), the exposition also carries
// `rq_query_info{query="<label>"} 1` with the label value escaped
// (`\\`, `\"`, `\n`) — query text is arbitrary and may contain
// backslashes or quotes.
//
// Also exported: `rq_flight_recorded_total` / the `obs.flight_dropped`
// counter (flight recorder pressure) arrive through the counter registry
// like everything else.
//
// Surfaced as `--prometheus <path>` on rqcheck, rqeval, and the bench
// harness; bench/run_all.sh --smoke validates the emission with
// bench/check_prometheus.py.
#ifndef RQ_OBS_PROMETHEUS_H_
#define RQ_OBS_PROMETHEUS_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace rq {
namespace obs {

// `rq_` + name with every character outside [a-zA-Z0-9_:] replaced by '_'.
std::string PrometheusMetricName(std::string_view name);

// Escaping per the text exposition format. Label values escape backslash,
// double-quote, and newline (`\\`, `\"`, `\n`); HELP text escapes
// backslash and newline only. Needed because the exposition carries
// arbitrary strings: the original dotted metric name in `# HELP` lines and
// the CLI's raw query text in the `rq_query_info` label — both may contain
// backslashes (regex escapes) or quotes.
std::string PrometheusEscapeLabelValue(std::string_view value);
std::string PrometheusEscapeHelp(std::string_view text);

// The full exposition document (counters, gauges, histograms).
std::string RenderPrometheusText();

// Writes the exposition to `path` (overwrites).
Status WritePrometheusTextFile(const std::string& path);

}  // namespace obs
}  // namespace rq

#endif  // RQ_OBS_PROMETHEUS_H_

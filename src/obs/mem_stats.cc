#include "obs/mem_stats.h"

#include <chrono>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <string>

#include "obs/trace.h"

#if !defined(_WIN32)
#include <sys/resource.h>
#endif

namespace rq {
namespace obs {

MemStats::MemStats() {
  for (int i = 0; i < kMemSubsystemCount; ++i) {
    subsystem_bytes[static_cast<size_t>(i)] = GetGauge(
        std::string("mem.") +
        MemSubsystemName(static_cast<MemSubsystem>(i)) + "_bytes");
  }
}

MemStats& MemStats::Get() {
  static MemStats* stats = new MemStats();  // never destroyed
  return *stats;
}

uint64_t SampleRssGauge() {
#if !defined(_WIN32)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    // ru_maxrss is kilobytes on Linux but bytes on macOS/BSD; the
    // platform-gated unit lives in mem_stats.h (RuMaxRssToBytes).
    uint64_t bytes = RuMaxRssToBytes(static_cast<uint64_t>(usage.ru_maxrss));
    MemStats::Get().peak_rss_bytes.Set(static_cast<int64_t>(bytes));
    return bytes;
  }
#endif
  return 0;
}

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Timeline {
  std::mutex mu;
  std::vector<MemTimelineSample> samples;
  int64_t last_total = 0;
};

Timeline& GetTimeline() {
  static Timeline* timeline = new Timeline();  // never destroyed
  return *timeline;
}

}  // namespace

void MaybeRecordMemTimelineSample() {
  if (CurrentTraceMode() == TraceMode::kDisabled) return;
  MemStats& stats = MemStats::Get();
  int64_t total = stats.tracked_bytes.value();
  Timeline& timeline = GetTimeline();
  std::lock_guard<std::mutex> lock(timeline.mu);
  if (timeline.samples.size() >= kMemTimelineCap) return;
  int64_t delta = total - timeline.last_total;
  if (!timeline.samples.empty() &&
      (delta < 0 ? -delta : delta) < kMemTimelineDeltaBytes) {
    return;
  }
  timeline.last_total = total;
  MemTimelineSample sample;
  sample.ts_ns = SteadyNowNs();
  for (int i = 0; i < kMemSubsystemCount; ++i) {
    sample.bytes[static_cast<size_t>(i)] =
        stats.subsystem_bytes[static_cast<size_t>(i)]->value();
  }
  timeline.samples.push_back(sample);
}

std::vector<MemTimelineSample> CollectMemTimeline() {
  Timeline& timeline = GetTimeline();
  std::lock_guard<std::mutex> lock(timeline.mu);
  return timeline.samples;
}

void ClearMemTimeline() {
  Timeline& timeline = GetTimeline();
  std::lock_guard<std::mutex> lock(timeline.mu);
  timeline.samples.clear();
  timeline.last_total = 0;
}

}  // namespace obs
}  // namespace rq

// Chrome trace-event JSON export of full-mode spans, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
//
// The export is the "JSON Object Format" of the Trace Event spec: a root
// object whose "traceEvents" array holds one complete event ("ph": "X")
// per recorded span — name, category (the `<subsystem>` prefix of the
// span name), microsecond start/duration, and the span's numeric attrs as
// "args" — plus one metadata event ("ph": "M", "thread_name") per thread
// that recorded spans. Threads map 1:1 onto trace lanes: the first
// recording thread (tid 0) is named "main", later ones "worker-<tid>", so
// a --jobs N batch run renders as one lane per worker.
//
// Requires full tracing (TraceMode::kFull); with no recorded spans the
// export is a valid trace with an empty traceEvents array. Surfaced as
// `rqcheck --chrome-trace <path>`, `rqeval --chrome-trace <path>`, and
// the bench harness's `--chrome-trace <path>`.
#ifndef RQ_OBS_CHROME_TRACE_H_
#define RQ_OBS_CHROME_TRACE_H_

#include <string>

#include "common/status.h"
#include "obs/json.h"

namespace rq {
namespace obs {

// The recorded spans as a Chrome trace-event JSON document.
JsonValue ChromeTraceJson();

// Writes ChromeTraceJson() to `path` (overwrites).
Status WriteChromeTraceFile(const std::string& path);

}  // namespace obs
}  // namespace rq

#endif  // RQ_OBS_CHROME_TRACE_H_

#include "obs/histogram.h"

#include <bit>
#include <cmath>

namespace rq {
namespace obs {

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  // msb >= kSubBucketBits here; keep the leading 1 plus kSubBucketBits
  // bits, so each power-of-2 range splits into kSubBuckets linear pieces.
  int msb = 63 - std::countl_zero(value);
  int shift = msb - static_cast<int>(kSubBucketBits);
  size_t sub = static_cast<size_t>((value >> shift) & (kSubBuckets - 1));
  return (static_cast<size_t>(msb) - 1) * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  int msb = static_cast<int>(index / kSubBuckets) + 1;
  uint64_t sub = index % kSubBuckets;
  return (uint64_t{1} << msb) +
         (sub << (msb - static_cast<int>(kSubBucketBits)));
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  if (q >= 1.0) return max();
  return QuantileFromBuckets(SnapshotBuckets(), q);
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::SnapshotBuckets()
    const {
  std::array<uint64_t, kNumBuckets> snapshot;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

uint64_t Histogram::QuantileFromBuckets(
    const std::array<uint64_t, kNumBuckets>& buckets, double q) {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  uint64_t target = static_cast<uint64_t>(std::ceil(q * total));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) return BucketLowerBound(i);
  }
  return BucketLowerBound(kNumBuckets - 1);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

HistogramRegistry& HistogramRegistry::Global() {
  static HistogramRegistry* registry = new HistogramRegistry();
  return *registry;
}

Histogram* HistogramRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    std::string key(name);
    auto histogram =
        std::unique_ptr<Histogram>(new Histogram(std::string(name)));
    it = histograms_.emplace(std::move(key), std::move(histogram)).first;
  }
  return it->second.get();
}

std::vector<HistogramSample> HistogramRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.count = histogram->count();
    sample.sum = histogram->sum();
    sample.max = histogram->max();
    sample.p50 = histogram->ValueAtQuantile(0.50);
    sample.p90 = histogram->ValueAtQuantile(0.90);
    sample.p99 = histogram->ValueAtQuantile(0.99);
    out.push_back(std::move(sample));
  }
  return out;
}

std::vector<HistogramBucketsSample> HistogramRegistry::SnapshotBuckets()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramBucketsSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramBucketsSample sample;
    sample.name = name;
    sample.count = histogram->count();
    sample.sum = histogram->sum();
    sample.max = histogram->max();
    sample.buckets = histogram->SnapshotBuckets();
    out.push_back(std::move(sample));
  }
  return out;
}

void HistogramRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

Histogram* GetHistogram(std::string_view name) {
  return HistogramRegistry::Global().GetHistogram(name);
}

}  // namespace obs
}  // namespace rq
